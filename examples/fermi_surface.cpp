// Fermi surface scan (the physics of the paper's Fig. 5): the momentum
// distribution <n_k> along the symmetry path (0,0) -> (pi,pi) -> (pi,0)
// -> (0,0), with the exact U = 0 Fermi function printed alongside for
// reference.
//
//   ./fermi_surface [--l 8] [--u 2.0] [--beta 6.0] [--slices 60]
//                   [--warmup 100] [--sweeps 200] [--seed 2]
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "cli/args.h"
#include "cli/table.h"
#include "dqmc/simulation.h"
#include "hubbard/free_fermion.h"

namespace {

using dqmc::hubbard::Lattice;
using dqmc::hubbard::Momentum;
using dqmc::linalg::idx;

/// Indices of the momentum grid along (0,0)->(pi,pi)->(pi,0)->(0,0) for an
/// even L x L lattice, with a human-readable label per point.
std::vector<std::pair<idx, std::string>> symmetry_path(const Lattice& lat) {
  const idx l = lat.lx();
  const idx half = l / 2;
  std::vector<std::pair<idx, std::string>> path;
  auto kindex = [&](idx nx, idx ny) { return nx + l * ny; };
  auto label = [&](idx nx, idx ny) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "(%.2fpi,%.2fpi)",
                  2.0 * static_cast<double>(nx) / static_cast<double>(l),
                  2.0 * static_cast<double>(ny) / static_cast<double>(l));
    return std::string(buf);
  };
  for (idx i = 0; i <= half; ++i) path.push_back({kindex(i, i), label(i, i)});
  for (idx i = half - 1; i >= 0; --i) path.push_back({kindex(half, i), label(half, i)});
  for (idx i = half - 1; i >= 1; --i) path.push_back({kindex(i, 0), label(i, 0)});
  path.push_back({kindex(0, 0), label(0, 0)});
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dqmc;
  cli::Args args(argc, argv,
                 {"l", "u", "beta", "slices", "warmup", "sweeps", "seed"});

  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = args.get_long("l", 8);
  cfg.model.u = args.get_double("u", 2.0);
  cfg.model.beta = args.get_double("beta", 6.0);
  cfg.model.slices = args.get_long("slices", 60);
  cfg.warmup_sweeps = args.get_long("warmup", 100);
  cfg.measurement_sweeps = args.get_long("sweeps", 200);
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 2));
  DQMC_CHECK_MSG(cfg.lx % 2 == 0, "--l must be even for the symmetry path");

  std::printf("momentum distribution on a %lldx%lld lattice, U=%.2f, "
              "beta=%.2f (rho = 1)\n\n",
              static_cast<long long>(cfg.lx), static_cast<long long>(cfg.ly),
              cfg.model.u, cfg.model.beta);

  core::SimulationResults res = core::run_simulation(cfg);

  const Lattice lat = cfg.make_lattice();
  const auto ks = lat.momenta();
  hubbard::ModelParams free = cfg.model;
  free.u = 0.0;

  cli::Table table({"k", "<n_k> DQMC", "err", "<n_k> U=0 exact"});
  for (const auto& [k, label] : symmetry_path(lat)) {
    const auto est = res.measurements.momentum_dist(k);
    table.add_row({label, cli::Table::num(est.mean, 4),
                   cli::Table::num(est.error, 4),
                   cli::Table::num(hubbard::free_momentum_occupation(
                                       free, ks[static_cast<std::size_t>(k)]),
                                   4)});
  }
  table.print();
  std::printf(
      "\nThe Fermi surface is the sharp drop along (0,0)->(pi,pi); U > 0\n"
      "broadens it relative to the exact U=0 step. average sign %.3f\n",
      res.measurements.average_sign().mean);
  return 0;
}
