// Multilayer stacks — the application motivating the paper (Section I):
// several Hubbard planes coupled by a perpendicular hopping t_perp, as a
// minimal model of correlated-oxide interfaces. Prints layer-resolved
// density, local moment, and interlayer spin correlations.
//
//   ./multilayer_interface [--l 4] [--layers 3] [--tperp 0.5] [--u 4.0]
//                          [--beta 4.0] [--slices 40] [--warmup 100]
//                          [--sweeps 200] [--seed 4]
#include <cstdio>

#include "cli/args.h"
#include "cli/table.h"
#include "dqmc/engine.h"
#include "dqmc/measurements.h"
#include "dqmc/simulation.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv, {"l", "layers", "tperp", "u", "beta", "slices",
                              "warmup", "sweeps", "seed"});

  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = args.get_long("l", 4);
  cfg.layers = args.get_long("layers", 3);
  cfg.model.t_perp = args.get_double("tperp", 0.5);
  cfg.model.u = args.get_double("u", 4.0);
  cfg.model.beta = args.get_double("beta", 4.0);
  cfg.model.slices = args.get_long("slices", 40);
  cfg.warmup_sweeps = args.get_long("warmup", 100);
  cfg.measurement_sweeps = args.get_long("sweeps", 200);
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 4));

  const hubbard::Lattice lat = cfg.make_lattice();
  std::printf("multilayer Hubbard stack: %lld layers of %lldx%lld, "
              "t_perp=%.2f, U=%.2f, beta=%.2f (N = %lld sites)\n\n",
              static_cast<long long>(cfg.layers),
              static_cast<long long>(cfg.lx), static_cast<long long>(cfg.ly),
              cfg.model.t_perp, cfg.model.u, cfg.model.beta,
              static_cast<long long>(lat.num_sites()));

  // Layer-resolved observables need raw Green's functions, so drive the
  // engine directly instead of using the packaged accumulator only.
  core::DqmcEngine engine(lat, cfg.model, cfg.engine, cfg.seed);
  core::SimulationResults res(cfg);
  core::run_simulation(engine, cfg, res);

  // One extra measurement pass for the layer-resolved quantities from the
  // final configuration (illustrative; the averaged bulk numbers above use
  // the full statistics).
  const linalg::Matrix& gup = engine.greens(hubbard::Spin::Up);
  const linalg::Matrix& gdn = engine.greens(hubbard::Spin::Down);

  cli::Table table({"layer", "<n> (last config)", "<m_z^2> (last config)"});
  for (idx z = 0; z < cfg.layers; ++z) {
    double density = 0.0, moment = 0.0;
    for (idx y = 0; y < cfg.ly; ++y) {
      for (idx x = 0; x < cfg.lx; ++x) {
        const idx s = lat.site(x, y, z);
        const double nu = 1.0 - gup(s, s);
        const double nd = 1.0 - gdn(s, s);
        density += nu + nd;
        moment += nu + nd - 2.0 * nu * nd;
      }
    }
    const double plane = static_cast<double>(lat.sites_per_layer());
    table.add_row({cli::Table::integer(z), cli::Table::num(density / plane, 4),
                   cli::Table::num(moment / plane, 4)});
  }
  table.print();

  const auto& m = res.measurements;
  std::printf("\nstack-averaged (full statistics):\n");
  cli::Table avg({"observable", "value"});
  avg.add_row({"density", cli::Table::pm(m.density().mean, m.density().error)});
  avg.add_row({"double occupancy",
               cli::Table::pm(m.double_occupancy().mean, m.double_occupancy().error)});
  avg.add_row({"local moment",
               cli::Table::pm(m.moment_sq().mean, m.moment_sq().error)});
  avg.add_row({"S(pi,pi)", cli::Table::pm(m.af_structure_factor().mean,
                                          m.af_structure_factor().error)});
  avg.print();

  std::printf(
      "\nSurface layers (0 and %lld) have lower coordination, so their local\n"
      "moments exceed the middle layers' — the boundary effect that makes\n"
      "6-8 layer stacks (N >~ 1024) necessary for interface physics.\n",
      static_cast<long long>(cfg.layers - 1));
  return 0;
}
