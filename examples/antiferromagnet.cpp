// Antiferromagnetic correlations (the physics of the paper's Fig. 7):
// real-space z-spin correlation C_zz(r) showing the chessboard pattern of
// the half-filled Hubbard model, rendered as an ASCII heatmap, plus the
// long-distance correlation C_zz(L/2, L/2) used for bulk extrapolation.
//
//   ./antiferromagnet [--l 6] [--u 4.0] [--beta 5.0] [--slices 50]
//                     [--warmup 150] [--sweeps 300] [--seed 3]
#include <cstdio>
#include <vector>

#include "cli/args.h"
#include "cli/table.h"
#include "dqmc/simulation.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv,
                 {"l", "u", "beta", "slices", "warmup", "sweeps", "seed"});

  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = args.get_long("l", 6);
  cfg.model.u = args.get_double("u", 4.0);
  cfg.model.beta = args.get_double("beta", 5.0);
  cfg.model.slices = args.get_long("slices", 50);
  cfg.warmup_sweeps = args.get_long("warmup", 150);
  cfg.measurement_sweeps = args.get_long("sweeps", 300);
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 3));

  std::printf("z-spin correlations on a %lldx%lld lattice, U=%.2f, beta=%.2f\n\n",
              static_cast<long long>(cfg.lx), static_cast<long long>(cfg.ly),
              cfg.model.u, cfg.model.beta);

  core::SimulationResults res = core::run_simulation(cfg);
  const hubbard::Lattice lat = cfg.make_lattice();

  // C_zz over the (dx, dy) grid (single layer: dz slot = 0).
  std::vector<double> grid(static_cast<std::size_t>(cfg.lx * cfg.ly));
  for (idx dy = 0; dy < cfg.ly; ++dy) {
    for (idx dx = 0; dx < cfg.lx; ++dx) {
      const idx d = dx + cfg.lx * dy;
      grid[static_cast<std::size_t>(dy * cfg.lx + dx)] =
          res.measurements.spin_corr(d).mean;
    }
  }

  std::printf("C_zz(dx, dy) heatmap (chessboard = antiferromagnetic order):\n");
  std::fputs(cli::ascii_heatmap(grid, static_cast<int>(cfg.ly),
                                static_cast<int>(cfg.lx), /*symmetric=*/true)
                 .c_str(),
             stdout);

  cli::Table table({"observable", "value"});
  const idx dmax = (cfg.lx / 2) + cfg.lx * (cfg.ly / 2);
  table.add_row({"C_zz(0,0)  (local moment)",
                 cli::Table::pm(res.measurements.spin_corr(0).mean,
                                res.measurements.spin_corr(0).error)});
  table.add_row({"C_zz(1,0)  (nearest neighbour)",
                 cli::Table::pm(res.measurements.spin_corr(1).mean,
                                res.measurements.spin_corr(1).error)});
  table.add_row({"C_zz(L/2,L/2) (longest distance)",
                 cli::Table::pm(res.measurements.spin_corr(dmax).mean,
                                res.measurements.spin_corr(dmax).error)});
  table.add_row({"S(pi,pi) structure factor",
                 cli::Table::pm(res.measurements.af_structure_factor().mean,
                                res.measurements.af_structure_factor().error)});
  std::printf("\n");
  table.print();
  std::printf(
      "\nNearest-neighbour C_zz < 0 and C_zz(L/2,L/2) > 0 together signal\n"
      "the staggered (pi,pi) order; the structure factor grows with both U\n"
      "and lattice size when order develops.\n");
  return 0;
}
