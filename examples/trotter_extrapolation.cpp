// Trotter extrapolation — the standard production workflow for removing
// the O(dtau^2) discretization error: run the same physics at several
// dtau values and extrapolate observables to dtau -> 0 with a quadratic
// fit. Compared against many-body exact diagonalization on the 2x2
// cluster, where the extrapolated value must land.
//
//   ./trotter_extrapolation [--u 4.0] [--beta 2.0] [--sweeps 400]
//                           [--warmup 100] [--seed 12]
#include <cstdio>
#include <vector>

#include "cli/args.h"
#include "cli/table.h"
#include "dqmc/simulation.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv, {"u", "beta", "sweeps", "warmup", "seed"});

  core::SimulationConfig base;
  base.lx = base.ly = 2;
  base.model.u = args.get_double("u", 4.0);
  base.model.beta = args.get_double("beta", 2.0);
  base.engine.cluster_size = 5;
  base.warmup_sweeps = args.get_long("warmup", 100);
  base.measurement_sweeps = args.get_long("sweeps", 400);
  base.seed = static_cast<std::uint64_t>(args.get_long("seed", 12));

  std::printf("Trotter extrapolation on the 2x2 cluster, U=%.2f, beta=%.2f\n\n",
              base.model.u, base.model.beta);

  // Three dtau values with fixed beta.
  const idx slice_counts[3] = {10, 20, 40};
  double dtau2[3], docc[3], err[3];
  cli::Table table({"L", "dtau", "double occupancy", "err"});
  for (int i = 0; i < 3; ++i) {
    core::SimulationConfig cfg = base;
    cfg.model.slices = slice_counts[i];
    core::SimulationResults res = core::run_simulation(cfg);
    const auto d = res.measurements.double_occupancy();
    dtau2[i] = cfg.model.dtau() * cfg.model.dtau();
    docc[i] = d.mean;
    err[i] = d.error;
    table.add_row({cli::Table::integer(static_cast<long>(slice_counts[i])),
                   cli::Table::num(cfg.model.dtau(), 3),
                   cli::Table::num(d.mean, 5), cli::Table::num(d.error, 5)});
  }
  table.print();

  // Least-squares linear fit docc = a + b * dtau^2.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int i = 0; i < 3; ++i) {
    sx += dtau2[i];
    sy += docc[i];
    sxx += dtau2[i] * dtau2[i];
    sxy += dtau2[i] * docc[i];
  }
  const double b = (3.0 * sxy - sx * sy) / (3.0 * sxx - sx * sx);
  const double a = (sy - b * sx) / 3.0;
  (void)err;

  std::printf("\nextrapolated dtau->0 double occupancy: %.5f "
              "(slope %.4f per dtau^2)\n",
              a, b);
  std::printf("Compare with exact diagonalization (see\n"
              "tests/dqmc/test_simulation.cpp, which automates this check);\n"
              "the finite-dtau rows should straddle or approach the\n"
              "extrapolated value monotonically.\n");
  return 0;
}
