// The fermion sign problem away from half filling — the fundamental
// limitation that (together with the N^3 cost) bounds what DQMC can reach,
// and the reason the paper's production runs sit at rho = 1 where
// particle-hole symmetry guarantees <sign> = 1.
//
// Sweeps the chemical potential (measured from half filling) and reports
// the resulting density and average sign: the sign decays as mu moves off
// 0 and as beta grows.
//
//   ./doped_sign_problem [--l 4] [--u 4.0] [--beta 3.0] [--slices 30]
//                        [--warmup 50] [--sweeps 150] [--seed 9]
#include <cstdio>

#include "cli/args.h"
#include "cli/table.h"
#include "dqmc/simulation.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  cli::Args args(argc, argv,
                 {"l", "u", "beta", "slices", "warmup", "sweeps", "seed"});

  core::SimulationConfig base;
  base.lx = base.ly = args.get_long("l", 4);
  base.model.u = args.get_double("u", 4.0);
  base.model.beta = args.get_double("beta", 3.0);
  base.model.slices = args.get_long("slices", 30);
  base.warmup_sweeps = args.get_long("warmup", 50);
  base.measurement_sweeps = args.get_long("sweeps", 150);
  base.seed = static_cast<std::uint64_t>(args.get_long("seed", 9));

  std::printf("sign problem vs doping: %lldx%lld, U=%.2f, beta=%.2f\n"
              "(mu is measured from half filling)\n\n",
              static_cast<long long>(base.lx), static_cast<long long>(base.ly),
              base.model.u, base.model.beta);

  cli::Table table({"mu", "density", "<sign>", "double occ."});
  for (double mu : {0.0, -0.25, -0.5, -1.0, -1.5}) {
    core::SimulationConfig cfg = base;
    cfg.model.mu = mu;
    core::SimulationResults res = core::run_simulation(cfg);
    const auto& m = res.measurements;
    table.add_row({cli::Table::num(mu, 2),
                   cli::Table::pm(m.density().mean, m.density().error),
                   cli::Table::pm(m.average_sign().mean, m.average_sign().error, 3),
                   cli::Table::pm(m.double_occupancy().mean,
                                  m.double_occupancy().error)});
  }
  table.print();
  std::printf(
      "\nAt mu = 0 particle-hole symmetry keeps <sign> = 1 exactly; doping\n"
      "breaks it and the shrinking <sign> inflates every error bar by\n"
      "1/<sign> — the exponential wall of fermionic QMC.\n");
  return 0;
}
