// dqmc_fleet: the multi-process driver — shard a multi-chain run over a
// fleet of forked worker processes (docs/FLEET.md).
//
//   ./dqmc_fleet --config sim.in --walkers 8 --fleet-workers 4 [--progress]
//               [--measure direct|fft]
//
// The merged observables, fault summary, and trajectory-hash fold are
// bitwise identical to the same run under single-process dqmc_run
// --walkers/--walker-batch: shards are the same lockstep walker crowds,
// with the same per-chain seeds, dealt to workers instead of task-runtime
// threads. Worker count, steals, and even a SIGKILLed worker mid-run do
// not change a digit of the physics.
//
// Fleet knobs (config keys fleet_workers, fleet_snapshot_interval,
// fleet_steal, fleet_wedge_timeout_ms, fleet_max_reassigns work too):
//   --fleet-workers N       worker processes to fork (default 2)
//   --snapshot-interval N   boundaries between resume snapshots (default 1)
//   --no-steal              disable idle-worker walker stealing
//   --wedge-timeout-ms N    SIGKILL + reassign a silent worker after N ms
//   --max-reassigns N       reassignments one shard survives (default 3)
//
// Fault drills (the kill-a-worker determinism suite uses the same flags):
//   --worker-failpoint SPEC  arm SPEC inside worker processes (e.g.
//                            "fleet.worker.kill:40" SIGKILLs the worker at
//                            its 40th walker-sweep tick)
//   --failpoint-worker I     restrict the spec to worker index I (-1 = all)
//
// Observability: --metrics-json writes the run manifest with an extra
// "fleet" section (frames, snapshots, steals, deaths, per-worker fates);
// --telemetry-jsonl / --crash-dump are per-worker BASE paths — each worker
// writes <base>.w<index>.p<pid>(.json|.jsonl) so parallel workers never
// clobber each other's artifacts.
#include <cstdio>

#include <fstream>
#include <memory>

#include "cli/args.h"
#include "cli/config_file.h"
#include "cli/table.h"
#include "dqmc/run_manifest.h"
#include "fleet/coordinator.h"
#include "obs/metrics.h"
#include "obs/progress.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv,
                 {"config", "progress", "warmup", "sweeps", "seed", "backend",
                  "measure", "walkers", "walker-batch", "metrics-json",
                  "fleet-workers", "snapshot-interval", "no-steal",
                  "wedge-timeout-ms", "max-reassigns", "worker-failpoint",
                  "failpoint-worker", "telemetry-jsonl", "crash-dump"});

  core::SimulationConfig cfg;
  core::SupervisorPolicy policy;
  fleet::FleetConfig fc;
  idx walkers = 4;
  if (args.has("config")) {
    const cli::ConfigFile file = cli::ConfigFile::load(args.get("config", ""));
    cfg = cli::simulation_config_from(file);
    policy = cli::supervisor_policy_from(file);
    fc = cli::fleet_config_from(file);
    walkers = file.get_long("walkers", walkers);
  } else {
    std::printf("(no --config given; running the built-in 4x4 demo)\n");
    cfg.lx = cfg.ly = 4;
    cfg.model.u = 4.0;
    cfg.model.beta = 4.0;
    cfg.model.slices = 40;
    cfg.warmup_sweeps = 50;
    cfg.measurement_sweeps = 100;
  }
  if (args.has("warmup")) cfg.warmup_sweeps = args.get_long("warmup", 0);
  if (args.has("sweeps")) cfg.measurement_sweeps = args.get_long("sweeps", 0);
  if (args.has("seed")) {
    cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  }
  if (args.has("backend")) {
    cfg.engine.backend =
        backend::backend_kind_from_string(args.get("backend", "host"));
  }
  if (args.has("measure")) {
    cfg.engine.measure =
        core::measure_kind_from_string(args.get("measure", "direct"));
  }
  if (args.has("walkers")) walkers = args.get_long("walkers", walkers);
  if (args.has("walker-batch")) {
    cfg.walker_batch = args.get_long("walker-batch", 0);
  }
  // A shard IS a walker crowd: default to crowds of two when the config
  // didn't pick a batch, so a fleet run always has something to shard.
  if (cfg.walker_batch < 1) cfg.walker_batch = 2;
  if (args.has("fleet-workers")) {
    fc.workers = args.get_long("fleet-workers", fc.workers);
  }
  if (args.has("snapshot-interval")) {
    fc.snapshot_interval =
        args.get_long("snapshot-interval", fc.snapshot_interval);
  }
  if (args.get_flag("no-steal")) fc.steal = false;
  if (args.has("wedge-timeout-ms")) {
    fc.wedge_timeout_ms = args.get_long("wedge-timeout-ms", 0);
  }
  if (args.has("max-reassigns")) {
    fc.max_reassigns = static_cast<int>(args.get_long("max-reassigns", 3));
  }
  fc.worker_failpoints = args.get("worker-failpoint", "");
  fc.failpoint_worker =
      static_cast<int>(args.get_long("failpoint-worker", -1));
  fc.telemetry_path = args.get("telemetry-jsonl", "");
  fc.crash_dump_path = args.get("crash-dump", "");
  DQMC_CHECK_MSG(walkers >= 1, "--walkers must be >= 1");

  obs::metrics().set_enabled(true);

  std::printf("fleet: %lld workers, %lld chains in crowds of %lld, "
              "seed=%llu, backend=%s\n\n",
              static_cast<long long>(fc.workers),
              static_cast<long long>(walkers),
              static_cast<long long>(cfg.walker_batch),
              static_cast<unsigned long long>(cfg.seed),
              backend::backend_kind_name(cfg.engine.backend));

  // Coordinator-side progress: workers report committed segments at their
  // lockstep boundaries, so the bar advances in segment-sized bursts.
  std::unique_ptr<obs::ProgressReporter> reporter;
  core::ProgressFn progress = nullptr;
  if (args.get_flag("progress")) {
    obs::ProgressOptions popt;
    popt.human = true;
    popt.label = "dqmc_fleet";
    popt.total_sweeps =
        static_cast<std::uint64_t>(walkers) *
        static_cast<std::uint64_t>(cfg.warmup_sweeps + cfg.measurement_sweeps);
    popt.warmup_sweeps = static_cast<std::uint64_t>(walkers) *
                         static_cast<std::uint64_t>(cfg.warmup_sweeps);
    popt.walkers = static_cast<int>(walkers);
    reporter = std::make_unique<obs::ProgressReporter>(popt);
    progress = [&reporter](idx, idx, bool warmup) {
      reporter->on_sweep(warmup);
    };
  }

  const fleet::FleetResult res =
      fleet::run_fleet(cfg, policy, fc, walkers, progress);
  if (reporter) reporter->finish();
  const auto& m = res.results.measurements;

  cli::Table table({"observable", "value"});
  table.add_row({"density", cli::Table::pm(m.density().mean, m.density().error)});
  table.add_row({"double occupancy",
                 cli::Table::pm(m.double_occupancy().mean,
                                m.double_occupancy().error)});
  table.add_row({"local moment <m_z^2>",
                 cli::Table::pm(m.moment_sq().mean, m.moment_sq().error)});
  table.add_row({"S(pi,pi)", cli::Table::pm(m.af_structure_factor().mean,
                                            m.af_structure_factor().error)});
  table.add_row({"average sign",
                 cli::Table::pm(m.average_sign().mean, m.average_sign().error)});
  table.print();

  std::printf("\ntrajectory hash %016llx, elapsed %s\n",
              static_cast<unsigned long long>(res.results.trajectory_hash),
              format_seconds(res.results.elapsed_seconds).c_str());
  const fleet::FleetReport& fr = res.fleet;
  std::printf("fleet: %lld shards over %lld workers, %llu frames "
              "(%llu bytes), %llu snapshots, %llu steals (%llu declined), "
              "%llu deaths, %llu reassignments, %llu protocol faults\n",
              static_cast<long long>(fr.shards),
              static_cast<long long>(fr.workers), fr.frames_received,
              fr.bytes_received, fr.snapshots, fr.steals, fr.steals_declined,
              fr.worker_deaths, fr.reassignments, fr.protocol_faults);
  for (const fleet::WorkerSummary& w : fr.worker_summaries) {
    std::printf("  worker %d (pid %ld): %llu shards, %llu frames, %s%s%s\n",
                w.index, w.pid, w.shards_completed, w.frames_received,
                w.fate.c_str(),
                w.telemetry_path.empty() ? "" : ", telemetry ",
                w.telemetry_path.c_str());
  }
  for (const fault::FaultEvent& ev : fr.events) {
    std::printf("  %s (%s) -> %s: %s\n", ev.site.c_str(),
                ev.fault_class.c_str(), ev.action.c_str(), ev.detail.c_str());
  }

  if (args.has("metrics-json")) {
    const std::string path = args.get("metrics-json", "");
    obs::Json doc = core::run_manifest(res.results);
    doc.set("fleet", fr.json_value());
    std::ofstream out(path);
    DQMC_CHECK_MSG(out.good(), "cannot open manifest path: " + path);
    out << doc.dump(2) << "\n";
    std::printf("manifest written to %s\n", path.c_str());
  }
  return 0;
}
