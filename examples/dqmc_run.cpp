// dqmc_run: the production driver — a full simulation specified by a
// QUEST-style input file, mirroring how the paper's package is used.
//
//   ./dqmc_run --config sim.in [--progress] [--backend host|gpusim]
//              [--kinetic dense|checkerboard]
//
// Example input file:
//   # half-filled 8x8 Hubbard model
//   lx     = 8
//   u      = 4.0
//   beta   = 5.0
//   slices = 50         # dtau = 0.1
//   warmup = 200
//   sweeps = 1000
//   algorithm = prepivot
//   checkpoint_out = run1.ckpt     # save the Markov state at the end
//   # checkpoint_in = run0.ckpt    # ...or resume a previous run
//
// With no --config, a built-in demo configuration is used.
//
// Observability:
//   --warmup N / --sweeps N / --seed N   override the config-file schedule
//   --metrics-json FILE   write the run manifest (config, seed, phase
//                         times, metrics registry, numerical health,
//                         fault-recovery summary)
//   --trace-json FILE     record a Chrome-trace timeline of every pipeline
//                         span; open in chrome://tracing or ui.perfetto.dev
//   --telemetry-jsonl FILE   stream periodic progress/ETA/throughput
//                         records as JSON lines (docs/OBSERVABILITY.md has
//                         the record schema)
//   --telemetry-interval MS  min spacing between telemetry records (250)
//   --crash-dump FILE     where the flight recorder flushes its forensic
//                         dump on a fault, fatal signal, or uncaught
//                         exception (default crash_dump.json; empty string
//                         disables). The flight recorder is always on in
//                         this driver; --trace-json / --metrics-json are
//                         also flushed on abnormal exit.
//
// Fault tolerance (docs/RELIABILITY.md): the run executes under the walker
// supervisor — checkpointed segments, retry with backoff, restart from the
// last checkpoint, gpusim->host degradation — so injected or genuine
// faults recover without forking the trajectory.
//   --failpoint SITE:N    arm a deterministic fail point (repeatable via a
//                         comma-separated spec; see src/fault/failpoint.h);
//                         config key `failpoints` does the same
//   --max-retries N       replay attempts per segment before escalating
//   --checkpoint-interval N   sweeps per recovery checkpoint segment
//
// Multi-walker runs (docs/PERFORMANCE.md, "Walker batching"):
//   --walkers N           run N independent chains (seeds seed .. seed+N-1)
//                         and merge their bins; config key `walkers` too
//   --walker-batch W      advance those chains in lockstep crowds of up to
//                         W walkers whose per-slice linear algebra is folded
//                         into batched backend launches; per-chain
//                         trajectories are bitwise identical to W=0
//
// Kinetic factor (docs/PERFORMANCE.md, "Checkerboard kinetic factor"):
//   --kinetic dense|checkerboard   apply e^{-dtau K} as a dense GEMM or as
//                         the O(N)-per-column split-bond replay; config key
//                         `kinetic` does the same
//
// Stability (docs/STABILITY.md):
//   --stabilizer graded|svdstack   stabilization strategy: the graded QR
//                         accumulation (default; algorithm picks the QR
//                         flavor) or the singular-value-exact SVD stack for
//                         beta >> 32; config key `stabilizer` does the same
//   --precision fp64|fp32 wrap precision policy: fp32 runs the per-slice
//                         wraps in single precision with the structural
//                         fp64 correction at every stabilization interval;
//                         config key `precision` does the same
//
// Measurements (docs/PERFORMANCE.md):
//   --measure direct|fft  measurement kernel family: the historical O(N^2)
//                         site-pair loops (default) or the FFT-accelerated
//                         momentum/correlator pipeline — same observables
//                         to ~1e-12, bitwise-identical trajectories; config
//                         key `measure` does the same
#include <cstdio>

#include <memory>

#include "cli/args.h"
#include "cli/config_file.h"
#include "cli/table.h"
#include "dqmc/run_manifest.h"
#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv,
                 {"config", "progress", "warmup", "sweeps", "seed",
                  "backend", "kinetic", "stabilizer", "precision", "measure",
                  "trace-json", "metrics-json",
                  "failpoint", "max-retries", "checkpoint-interval", "walkers",
                  "walker-batch", "telemetry-jsonl", "telemetry-interval",
                  "crash-dump"});

  core::SimulationConfig cfg;
  core::SupervisorPolicy policy;
  idx walkers = 1;
  if (args.has("config")) {
    const cli::ConfigFile file = cli::ConfigFile::load(args.get("config", ""));
    cfg = cli::simulation_config_from(file);
    policy = cli::supervisor_policy_from(file);
    walkers = file.get_long("walkers", 1);
    // Arming happens HERE, not in the parser: loading a config never has
    // fail-point side effects unless this driver asks for them.
    if (file.has("failpoints")) {
      fault::failpoints().arm_spec(file.get("failpoints", ""));
    }
  } else {
    std::printf("(no --config given; running the built-in 4x4 demo)\n");
    cfg.lx = cfg.ly = 4;
    cfg.model.u = 4.0;
    cfg.model.beta = 4.0;
    cfg.model.slices = 40;
    cfg.warmup_sweeps = 100;
    cfg.measurement_sweeps = 200;
  }
  if (args.has("warmup")) cfg.warmup_sweeps = args.get_long("warmup", 0);
  if (args.has("sweeps")) cfg.measurement_sweeps = args.get_long("sweeps", 0);
  if (args.has("seed")) {
    cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  }
  if (args.has("backend")) {
    // Trajectories are bitwise identical across backends; gpusim adds the
    // virtual-clock device accounting to the manifest.
    cfg.engine.backend =
        backend::backend_kind_from_string(args.get("backend", "host"));
  }
  if (args.has("kinetic")) {
    cfg.engine.kinetic =
        hubbard::kinetic_kind_from_string(args.get("kinetic", "dense"));
  }
  if (args.has("stabilizer")) {
    const std::string stab = args.get("stabilizer", "graded");
    if (stab == "svdstack") {
      cfg.engine.algorithm = core::StratAlgorithm::kSvdStack;
    } else {
      DQMC_CHECK_MSG(stab == "graded",
                     "--stabilizer must be 'graded' or 'svdstack'");
    }
  }
  if (args.has("precision")) {
    cfg.engine.precision =
        backend::precision_from_string(args.get("precision", "fp64"));
  }
  if (args.has("measure")) {
    cfg.engine.measure =
        core::measure_kind_from_string(args.get("measure", "direct"));
  }
  if (args.has("failpoint")) {
    fault::failpoints().arm_spec(args.get("failpoint", ""));
  }
  if (args.has("max-retries")) {
    policy.max_retries = static_cast<int>(args.get_long("max-retries", 3));
  }
  if (args.has("checkpoint-interval")) {
    policy.checkpoint_interval = args.get_long("checkpoint-interval", 25);
  }
  if (args.has("walkers")) walkers = args.get_long("walkers", 1);
  if (args.has("walker-batch")) {
    cfg.walker_batch = args.get_long("walker-batch", 0);
  }
  DQMC_CHECK_MSG(walkers >= 1, "--walkers must be >= 1");
  policy.validate();

  const std::string trace_path = args.get("trace-json", "");
  const std::string metrics_path = args.get("metrics-json", "");
  const std::string telemetry_path = args.get("telemetry-jsonl", "");
  const std::string dump_path = args.get("crash-dump", "crash_dump.json");
  // Metrics and health are cheap; keep them on for the summary and manifest.
  // Tracing records every span, so it is opt-in via --trace-json.
  obs::metrics().set_enabled(true);
  obs::health().set_enabled(true);
  obs::Tracer::global().set_enabled(!trace_path.empty());
  obs::Tracer::global().set_current_thread_name("main");
  // Flight recorder: always armed in the production driver. On a fault the
  // supervisor flushes the dump; on a fatal signal or uncaught exception
  // the crash handlers also flush the trace/metrics artifacts that would
  // otherwise be lost.
  obs::flight_recorder().set_enabled(true);
  obs::flight_recorder().set_dump_path(dump_path);
  obs::flight_recorder().set_export_paths(trace_path, metrics_path);
  obs::flight_recorder().install_crash_handlers();

  std::printf("lattice %lldx%lldx%lld  t=%.3f t'=%.3f U=%.3f mu=%.3f "
              "beta=%.3f L=%lld (dtau=%.4f)\n",
              static_cast<long long>(cfg.lx), static_cast<long long>(cfg.ly),
              static_cast<long long>(cfg.layers), cfg.model.t,
              cfg.model.t_perp, cfg.model.u, cfg.model.mu, cfg.model.beta,
              static_cast<long long>(cfg.model.slices), cfg.model.dtau());
  std::printf("%lld warmup + %lld measurement sweeps, algorithm=%s, "
              "k=%lld, d=%lld, seed=%llu, backend=%s\n\n",
              static_cast<long long>(cfg.warmup_sweeps),
              static_cast<long long>(cfg.measurement_sweeps),
              core::strat_algorithm_name(cfg.engine.algorithm),
              static_cast<long long>(cfg.engine.cluster_size),
              static_cast<long long>(cfg.engine.delay_rank),
              static_cast<unsigned long long>(cfg.seed),
              backend::backend_kind_name(cfg.engine.backend));

  // Progress/telemetry: one reporter aggregates every chain-sweep unit —
  // single chain, concurrent unbatched chains, and lockstep crowds alike —
  // into the human line (--progress) and the JSONL stream
  // (--telemetry-jsonl).
  std::unique_ptr<obs::ProgressReporter> reporter;
  core::ProgressFn progress = nullptr;
  const bool human_progress = args.get_flag("progress");
  if (human_progress || !telemetry_path.empty()) {
    obs::ProgressOptions popt;
    popt.jsonl_path = telemetry_path;
    popt.interval_ms =
        static_cast<double>(args.get_long("telemetry-interval", 250));
    popt.human = human_progress;
    popt.label = "dqmc_run";
    popt.total_sweeps =
        static_cast<std::uint64_t>(walkers) *
        static_cast<std::uint64_t>(cfg.warmup_sweeps + cfg.measurement_sweeps);
    popt.warmup_sweeps = static_cast<std::uint64_t>(walkers) *
                         static_cast<std::uint64_t>(cfg.warmup_sweeps);
    popt.walkers = static_cast<int>(walkers);
    reporter = std::make_unique<obs::ProgressReporter>(popt);
    progress = [&reporter](idx, idx, bool warmup) {
      reporter->on_sweep(warmup);
    };
  }

  if (walkers > 1) {
    std::printf("%lld walkers", static_cast<long long>(walkers));
    if (cfg.walker_batch > 0) {
      std::printf(" in lockstep crowds of up to %lld",
                  static_cast<long long>(cfg.walker_batch));
    }
    std::printf("\n\n");
  }

  core::SimulationResults res =
      walkers > 1
          ? core::run_supervised_parallel(cfg, policy, walkers, progress)
          : core::run_supervised_simulation(cfg, policy, progress);
  if (reporter) reporter->finish();
  const auto& m = res.measurements;

  cli::Table table({"observable", "value"});
  table.add_row({"density", cli::Table::pm(m.density().mean, m.density().error)});
  table.add_row({"double occupancy",
                 cli::Table::pm(m.double_occupancy().mean, m.double_occupancy().error)});
  table.add_row({"hopping energy / site",
                 cli::Table::pm(m.kinetic_energy().mean, m.kinetic_energy().error)});
  table.add_row({"local moment <m_z^2>",
                 cli::Table::pm(m.moment_sq().mean, m.moment_sq().error)});
  table.add_row({"S(pi,pi)", cli::Table::pm(m.af_structure_factor().mean,
                                            m.af_structure_factor().error)});
  table.add_row({"P_s (s-wave pairing)",
                 cli::Table::pm(m.pair_s().mean, m.pair_s().error)});
  table.add_row({"P_d (d-wave pairing)",
                 cli::Table::pm(m.pair_d().mean, m.pair_d().error)});
  table.add_row({"average sign",
                 cli::Table::pm(m.average_sign().mean, m.average_sign().error)});
  table.print();

  std::printf("\nelapsed %s\n", format_seconds(res.elapsed_seconds).c_str());
  std::printf("\n%s", res.profiler.report().c_str());
  // Acceptance, Green's evaluations, flush ranks, GEMM GFLOP/s, ... all come
  // from the metrics registry now — one formatter instead of ad-hoc printf.
  std::printf("\n%s", obs::metrics().report().c_str());

  const backend::BackendStats& bs = res.backend_stats;
  std::printf("\nbackend %s: compute %s, transfer %s, %llu launches, "
              "%llu transfers, exposed wait %s, %llu wrap uploads skipped\n",
              res.backend_name.c_str(),
              format_seconds(bs.compute_seconds).c_str(),
              format_seconds(bs.transfer_seconds).c_str(),
              static_cast<unsigned long long>(bs.kernel_launches),
              static_cast<unsigned long long>(bs.transfers),
              format_seconds(bs.exposed_wait_seconds).c_str(),
              static_cast<unsigned long long>(res.wrap_uploads_skipped));

  const obs::HealthMonitor::Summary hs = obs::health().summary();
  std::printf("\nhealth: wrap drift max %.3e, sortedness min %.3f, "
              "average sign %.3f, violations %llu\n",
              hs.wrap_drift.max, hs.sortedness.min, hs.average_sign(),
              static_cast<unsigned long long>(hs.violations));

  const fault::FaultReport& fr = res.fault_report;
  std::printf("fault: %llu observed, %llu retries, %llu restarts, "
              "%llu degradations, final backend %s%s\n",
              static_cast<unsigned long long>(fr.faults),
              static_cast<unsigned long long>(fr.retries),
              static_cast<unsigned long long>(fr.restarts),
              static_cast<unsigned long long>(fr.degradations),
              fr.final_backend.c_str(), fr.degraded ? " (degraded)" : "");
  for (const fault::FaultEvent& ev : fr.events) {
    std::printf("  [sweep %lld] %s (%s) -> %s: %s\n",
                static_cast<long long>(ev.sweep), ev.site.c_str(),
                ev.fault_class.c_str(), ev.action.c_str(), ev.detail.c_str());
  }

  if (!metrics_path.empty()) {
    core::write_run_manifest(res, metrics_path);
    std::printf("manifest written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::Tracer::global().write_json(trace_path);
    std::printf("trace written to %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), obs::Tracer::global().recorded(),
                static_cast<unsigned long long>(obs::Tracer::global().dropped()));
  }
  return 0;
}
