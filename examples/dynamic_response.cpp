// Dynamic (imaginary-time) response functions — QUEST's "dynamic
// measurement" capability on top of the stable time-displaced Green's
// functions: the local propagator Gloc(tau) and the staggered spin
// susceptibility chi_AF(tau) with its tau-integral.
//
//   ./dynamic_response [--l 4] [--u 4.0] [--beta 4.0] [--slices 40]
//                      [--warmup 50] [--sweeps 100] [--seed 6]
#include <cstdio>

#include "cli/args.h"
#include "cli/table.h"
#include "common/stopwatch.h"
#include "dqmc/dynamic_measurements.h"
#include "dqmc/engine.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv,
                 {"l", "u", "beta", "slices", "warmup", "sweeps", "seed"});

  hubbard::Lattice lat(args.get_long("l", 4), args.get_long("l", 4));
  hubbard::ModelParams model;
  model.u = args.get_double("u", 4.0);
  model.beta = args.get_double("beta", 4.0);
  model.slices = args.get_long("slices", 40);
  const idx warmup = args.get_long("warmup", 50);
  const idx sweeps = args.get_long("sweeps", 100);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 6));

  std::printf("dynamic response: %lldx%lld, U=%.2f, beta=%.2f, L=%lld\n",
              static_cast<long long>(lat.lx()), static_cast<long long>(lat.ly()),
              model.u, model.beta, static_cast<long long>(model.slices));

  core::DqmcEngine engine(lat, model, core::EngineConfig{}, seed);
  engine.initialize();
  for (idx s = 0; s < warmup; ++s) engine.sweep();

  core::TimeDisplacedGreens tdg(engine.factory(), engine.field());
  core::DynamicAccumulator acc(model.slices);
  Stopwatch watch;
  for (idx s = 0; s < sweeps; ++s) {
    engine.sweep();
    const core::TimeDisplaced up = tdg.compute(hubbard::Spin::Up);
    const core::TimeDisplaced dn = tdg.compute(hubbard::Spin::Down);
    acc.add(core::measure_dynamic(lat, model.dtau(), up, dn),
            engine.config_sign());
  }

  std::printf("measured %lld configurations in %s\n\n",
              static_cast<long long>(sweeps),
              format_seconds(watch.seconds()).c_str());

  cli::Table table({"tau", "Gloc(tau)", "err", "chi_AF(tau)", "err"});
  const idx stride = std::max<idx>(1, model.slices / 10);
  for (idx l = 0; l <= model.slices; l += stride) {
    const auto g = acc.gloc(l);
    const auto x = acc.chi_af(l);
    table.add_row({cli::Table::num(model.dtau() * static_cast<double>(l), 2),
                   cli::Table::num(g.mean, 4), cli::Table::num(g.error, 4),
                   cli::Table::num(x.mean, 4), cli::Table::num(x.error, 4)});
  }
  table.print();

  const auto chi = acc.chi_af_integrated();
  std::printf("\nintegrated AF susceptibility chi_AF = %s\n",
              cli::Table::pm(chi.mean, chi.error).c_str());
  std::printf("Gloc decays from n-like weight at tau=0 toward its\n"
              "anti-periodic partner at tau=beta; chi_AF(tau) is widest when\n"
              "antiferromagnetic correlations are strong (large U, low T).\n");
  return 0;
}
