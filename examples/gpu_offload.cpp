// GPU offload demo (Section VI): the same simulation run on the host
// backend and on the simulated-GPU backend, showing that the Markov chain
// trajectories are identical and reporting the device's virtual-clock
// accounting (transfers vs compute vs exposed stalls).
//
// NOTE: the "GPU" is the cost-modeled simulated device described in
// DESIGN.md and docs/BACKENDS.md — results are computed on the host with
// identical arithmetic, while the virtual clock tracks what a
// Tesla-C2050-class part would spend.
//
//   ./gpu_offload [--l 6] [--u 4.0] [--beta 3.0] [--slices 40]
//                 [--sweeps 5] [--seed 5]
#include <cstdio>

#include "cli/args.h"
#include "cli/table.h"
#include "common/stopwatch.h"
#include "dqmc/engine.h"
#include "linalg/norms.h"

using dqmc::linalg::idx;

int main(int argc, char** argv) {
  using namespace dqmc;
  cli::Args args(argc, argv, {"l", "u", "beta", "slices", "sweeps", "seed"});

  hubbard::Lattice lat(args.get_long("l", 6), args.get_long("l", 6));
  hubbard::ModelParams model;
  model.u = args.get_double("u", 4.0);
  model.beta = args.get_double("beta", 3.0);
  model.slices = args.get_long("slices", 40);
  const idx sweeps = args.get_long("sweeps", 5);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 5));

  core::EngineConfig cpu_cfg;
  core::EngineConfig gpu_cfg;
  gpu_cfg.backend = backend::BackendKind::kGpuSim;

  std::printf("host backend vs simulated-GPU backend, %lldx%lld, L=%lld, "
              "%lld sweeps\n\n",
              static_cast<long long>(lat.lx()),
              static_cast<long long>(lat.ly()),
              static_cast<long long>(model.slices),
              static_cast<long long>(sweeps));

  core::DqmcEngine cpu(lat, model, cpu_cfg, seed);
  core::DqmcEngine gpu(lat, model, gpu_cfg, seed);
  cpu.initialize();
  gpu.initialize();

  Stopwatch cpu_watch;
  core::SweepStats cpu_stats;
  for (idx s = 0; s < sweeps; ++s) cpu_stats = cpu.sweep();
  const double cpu_elapsed = cpu_watch.seconds();

  Stopwatch gpu_watch;
  core::SweepStats gpu_stats;
  for (idx s = 0; s < sweeps; ++s) gpu_stats = gpu.sweep();
  gpu.compute_backend().synchronize();
  const double gpu_elapsed = gpu_watch.seconds();

  const double drift = linalg::relative_difference(
      gpu.greens(hubbard::Spin::Up), cpu.greens(hubbard::Spin::Up));

  cli::Table table({"engine", "acceptance", "host wall time"});
  table.add_row({"host backend", cli::Table::num(cpu_stats.acceptance(), 3),
                 format_seconds(cpu_elapsed)});
  table.add_row({"gpusim backend", cli::Table::num(gpu_stats.acceptance(), 3),
                 format_seconds(gpu_elapsed)});
  table.print();

  std::printf("\nGreen's function relative difference host vs gpusim: %.2e\n"
              "(identical arithmetic; any difference is a bug)\n\n",
              drift);

  const backend::BackendStats stats = gpu.compute_backend().stats();
  std::printf("simulated device accounting (virtual clock, C2050 model):\n");
  cli::Table dev({"metric", "value"});
  dev.add_row({"kernel launches", cli::Table::integer(static_cast<long>(stats.kernel_launches))});
  dev.add_row({"PCIe transfers", cli::Table::integer(static_cast<long>(stats.transfers))});
  dev.add_row({"bytes host->device", cli::Table::sci(static_cast<double>(stats.bytes_h2d))});
  dev.add_row({"bytes device->host", cli::Table::sci(static_cast<double>(stats.bytes_d2h))});
  dev.add_row({"modeled compute", format_seconds(stats.compute_seconds)});
  dev.add_row({"modeled transfer", format_seconds(stats.transfer_seconds)});
  dev.add_row({"exposed wait", format_seconds(stats.exposed_wait_seconds)});
  dev.add_row({"pipeline cost", format_seconds(stats.pipeline_seconds())});
  dev.add_row({"wrap uploads skipped",
               cli::Table::integer(static_cast<long>(gpu.wrap_uploads_skipped()))});
  dev.print();
  return 0;
}
