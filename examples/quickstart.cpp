// Quickstart: a complete DQMC simulation of the half-filled 4x4 Hubbard
// model in ~30 lines of library code.
//
//   ./quickstart [--l 4] [--u 4.0] [--beta 3.0] [--slices 30]
//                [--warmup 100] [--sweeps 300] [--seed 1]
//
// Prints the standard equal-time observables with Monte Carlo error bars.
#include <cstdio>

#include "cli/args.h"
#include "cli/table.h"
#include "dqmc/simulation.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  cli::Args args(argc, argv,
                 {"l", "u", "beta", "slices", "warmup", "sweeps", "seed"});

  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = args.get_long("l", 4);
  cfg.model.u = args.get_double("u", 4.0);
  cfg.model.beta = args.get_double("beta", 3.0);
  cfg.model.slices = args.get_long("slices", 30);
  cfg.warmup_sweeps = args.get_long("warmup", 100);
  cfg.measurement_sweeps = args.get_long("sweeps", 300);
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));

  std::printf("dqmcpp quickstart: %lldx%lld Hubbard model, U=%.2f, beta=%.2f, "
              "L=%lld (dtau=%.3f)\n",
              static_cast<long long>(cfg.lx), static_cast<long long>(cfg.ly),
              cfg.model.u, cfg.model.beta,
              static_cast<long long>(cfg.model.slices), cfg.model.dtau());
  std::printf("running %lld warmup + %lld measurement sweeps...\n\n",
              static_cast<long long>(cfg.warmup_sweeps),
              static_cast<long long>(cfg.measurement_sweeps));

  core::SimulationResults res = core::run_simulation(cfg);
  const auto& m = res.measurements;

  cli::Table table({"observable", "value"});
  table.add_row({"density <n>", cli::Table::pm(m.density().mean, m.density().error)});
  table.add_row({"double occupancy <n+ n->",
                 cli::Table::pm(m.double_occupancy().mean, m.double_occupancy().error)});
  table.add_row({"hopping energy / site",
                 cli::Table::pm(m.kinetic_energy().mean, m.kinetic_energy().error)});
  table.add_row({"local moment <m_z^2>",
                 cli::Table::pm(m.moment_sq().mean, m.moment_sq().error)});
  table.add_row({"AF structure factor S(pi,pi)",
                 cli::Table::pm(m.af_structure_factor().mean, m.af_structure_factor().error)});
  table.add_row({"s-wave pair field P_s",
                 cli::Table::pm(m.pair_s().mean, m.pair_s().error)});
  table.add_row({"d-wave pair field P_d",
                 cli::Table::pm(m.pair_d().mean, m.pair_d().error)});
  table.add_row({"average sign",
                 cli::Table::pm(m.average_sign().mean, m.average_sign().error)});
  table.print();

  std::printf("\nacceptance rate %.1f%%, elapsed %s\n",
              100.0 * res.sweep_stats.acceptance(),
              format_seconds(res.elapsed_seconds).c_str());
  std::printf("\npipeline profile:\n%s", res.profiler.report().c_str());
  return 0;
}
