// Independent-chain parallelism — the "trivially parallel" axis of DQMC
// production runs: several Markov chains with different seeds run
// concurrently and their sign-weighted accumulators merge into one result
// with sqrt(chains)-smaller error bars.
//
//   ./parallel_chains [--l 4] [--u 4.0] [--beta 3.0] [--slices 30]
//                     [--chains 4] [--sweeps 200] [--warmup 60] [--seed 21]
//                     [--walker-batch W] [--measure direct|fft] [--progress]
//                     [--telemetry-jsonl FILE] [--telemetry-interval MS]
//
// --walker-batch W > 0 advances the chains in lockstep crowds of up to W
// walkers with their per-slice linear algebra folded into batched backend
// launches (bitwise identical results; docs/PERFORMANCE.md).
//
// --progress renders a live one-line progress/ETA display for the parallel
// phase; --telemetry-jsonl streams the same aggregates as JSON lines
// (docs/OBSERVABILITY.md has the record schema).
#include <cstdio>
#include <memory>

#include "cli/args.h"
#include "cli/table.h"
#include "common/stopwatch.h"
#include "dqmc/simulation.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "parallel/topology.h"

int main(int argc, char** argv) {
  using namespace dqmc;
  using linalg::idx;
  cli::Args args(argc, argv, {"l", "u", "beta", "slices", "chains", "sweeps",
                              "warmup", "seed", "walker-batch", "measure",
                              "progress", "telemetry-jsonl",
                              "telemetry-interval"});

  core::SimulationConfig cfg;
  cfg.lx = cfg.ly = args.get_long("l", 4);
  cfg.model.u = args.get_double("u", 4.0);
  cfg.model.beta = args.get_double("beta", 3.0);
  cfg.model.slices = args.get_long("slices", 30);
  cfg.warmup_sweeps = args.get_long("warmup", 60);
  cfg.measurement_sweeps = args.get_long("sweeps", 200);
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 21));
  cfg.walker_batch = args.get_long("walker-batch", 0);
  if (args.has("measure")) {
    cfg.engine.measure =
        core::measure_kind_from_string(args.get("measure", "direct"));
  }
  const idx chains = args.get_long("chains", 4);

  const std::string telemetry_path = args.get("telemetry-jsonl", "");
  const bool human_progress = args.get_flag("progress");
  if (!telemetry_path.empty()) obs::metrics().set_enabled(true);

  std::printf("%lld independent chains of %lld+%lld sweeps each "
              "(%lldx%lld, U=%.2f, beta=%.2f)\n\n",
              static_cast<long long>(chains),
              static_cast<long long>(cfg.warmup_sweeps),
              static_cast<long long>(cfg.measurement_sweeps),
              static_cast<long long>(cfg.lx), static_cast<long long>(cfg.ly),
              cfg.model.u, cfg.model.beta);

  Stopwatch w1;
  core::SimulationResults single = core::run_simulation(cfg);
  const double t1 = w1.seconds();

  // The reporter covers the parallel phase only, so its sweep budget is
  // chains x (warmup + measurement) chain-sweep units.
  std::unique_ptr<obs::ProgressReporter> reporter;
  core::ProgressFn progress = nullptr;
  if (human_progress || !telemetry_path.empty()) {
    obs::ProgressOptions popt;
    popt.jsonl_path = telemetry_path;
    popt.interval_ms =
        static_cast<double>(args.get_long("telemetry-interval", 250));
    popt.human = human_progress;
    popt.label = "parallel_chains";
    popt.total_sweeps =
        static_cast<std::uint64_t>(chains) *
        static_cast<std::uint64_t>(cfg.warmup_sweeps + cfg.measurement_sweeps);
    popt.warmup_sweeps = static_cast<std::uint64_t>(chains) *
                         static_cast<std::uint64_t>(cfg.warmup_sweeps);
    popt.walkers = static_cast<int>(chains);
    reporter = std::make_unique<obs::ProgressReporter>(popt);
    progress = [&reporter](idx, idx, bool warmup) {
      reporter->on_sweep(warmup);
    };
  }

  Stopwatch wn;
  core::SimulationResults merged =
      core::run_parallel_simulation(cfg, chains, 0, progress);
  const double tn = wn.seconds();
  if (reporter) reporter->finish();

  cli::Table table({"", "samples", "double occupancy", "S(pi,pi)", "wall"});
  const auto d1 = single.measurements.double_occupancy();
  const auto a1 = single.measurements.af_structure_factor();
  table.add_row({"1 chain", cli::Table::integer(single.measurements.samples()),
                 cli::Table::pm(d1.mean, d1.error),
                 cli::Table::pm(a1.mean, a1.error), format_seconds(t1)});
  const auto dn = merged.measurements.double_occupancy();
  const auto an = merged.measurements.af_structure_factor();
  char label[32];
  std::snprintf(label, sizeof label, "%lld chains", static_cast<long long>(chains));
  table.add_row({label, cli::Table::integer(merged.measurements.samples()),
                 cli::Table::pm(dn.mean, dn.error),
                 cli::Table::pm(an.mean, an.error), format_seconds(tn)});
  table.print();

  std::printf("\nThe merged error bars shrink ~1/sqrt(chains); on a machine\n"
              "with %d hardware threads the chains run concurrently, so the\n"
              "wall time stays near a single chain's.\n",
              dqmc::par::num_threads());
  return 0;
}
