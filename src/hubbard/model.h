// Physical parameters of the Hubbard model simulation.
#pragma once

#include <cmath>

#include "common/error.h"
#include "hubbard/lattice.h"

namespace dqmc::hubbard {

/// Parameters of H = H_T + H_V + H_mu (Section II-A of the paper), in the
/// particle-hole symmetric convention: the interaction is written
/// U (n_up - 1/2)(n_dn - 1/2) and `mu` is measured FROM HALF FILLING, so
/// mu = 0 gives density rho = 1 on any bipartite lattice and a
/// sign-problem-free simulation.
struct ModelParams {
  double t = 1.0;       ///< nearest-neighbor hopping (energy unit)
  double t_perp = 1.0;  ///< interlayer hopping (multilayer lattices)
  double u = 2.0;       ///< on-site repulsion U >= 0
  double mu = 0.0;      ///< chemical potential measured from half filling
  double beta = 4.0;    ///< inverse temperature
  idx slices = 40;      ///< L: imaginary-time slices; dtau = beta / L

  double dtau() const { return beta / static_cast<double>(slices); }

  /// HS coupling nu = acosh(e^{U dtau / 2}) (Section II-A).
  double hs_nu() const {
    const double x = std::exp(0.5 * u * dtau());
    return std::acosh(x);
  }

  /// Validate the physical ranges; throws InvalidArgument.
  void validate() const {
    DQMC_CHECK_MSG(u >= 0.0, "repulsive Hubbard model requires U >= 0");
    DQMC_CHECK_MSG(beta > 0.0, "beta must be positive");
    DQMC_CHECK_MSG(slices >= 1, "need at least one time slice");
    DQMC_CHECK_MSG(t >= 0.0, "hopping must be non-negative");
  }
};

/// Spin projection labels (sigma in {+, -}).
enum class Spin : int { Up = +1, Down = -1 };
inline constexpr Spin kSpins[2] = {Spin::Up, Spin::Down};
inline int spin_index(Spin s) { return s == Spin::Up ? 0 : 1; }
inline double spin_sign(Spin s) { return s == Spin::Up ? +1.0 : -1.0; }

}  // namespace dqmc::hubbard
