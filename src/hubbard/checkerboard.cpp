#include "hubbard/checkerboard.h"

#include <cmath>

namespace dqmc::hubbard {

CheckerboardB::CheckerboardB(const Lattice& lattice,
                             const ModelParams& params) {
  params.validate();
  op_.n = lattice.num_sites();
  op_.diag_scale = std::exp(params.dtau() * params.mu);

  // Greedy edge coloring: place each bond in the first group where neither
  // endpoint is already used. The even periodic square lattice needs 4
  // groups; odd extents or multilayer stacks a few more.
  std::vector<std::vector<bool>> used;  // [group][site]
  for (const auto& bond : lattice.bonds()) {
    const double hop = bond.interlayer ? params.t_perp : params.t;
    std::size_t g = 0;
    for (; g < op_.groups.size(); ++g) {
      if (!used[g][static_cast<std::size_t>(bond.a)] &&
          !used[g][static_cast<std::size_t>(bond.b)])
        break;
    }
    if (g == op_.groups.size()) {
      op_.groups.emplace_back();
      used.emplace_back(static_cast<std::size_t>(op_.n), false);
    }
    used[g][static_cast<std::size_t>(bond.a)] = true;
    used[g][static_cast<std::size_t>(bond.b)] = true;
    op_.groups[g].push_back(linalg::CbBond{bond.a, bond.b,
                                           std::cosh(params.dtau() * hop),
                                           std::sinh(params.dtau() * hop)});
  }
  op_.validate();
}

void CheckerboardB::apply_left(MatrixView x) const {
  linalg::cb_apply(op_, linalg::CbSide::kLeft, /*inverse=*/false, x);
}

void CheckerboardB::apply_inverse_left(MatrixView x) const {
  linalg::cb_apply(op_, linalg::CbSide::kLeft, /*inverse=*/true, x);
}

void CheckerboardB::apply_right(MatrixView x) const {
  linalg::cb_apply(op_, linalg::CbSide::kRight, /*inverse=*/false, x);
}

void CheckerboardB::apply_inverse_right(MatrixView x) const {
  linalg::cb_apply(op_, linalg::CbSide::kRight, /*inverse=*/true, x);
}

Matrix CheckerboardB::dense() const {
  Matrix b = Matrix::identity(n());
  apply_left(b);
  return b;
}

Matrix CheckerboardB::dense_inverse() const {
  Matrix b = Matrix::identity(n());
  apply_inverse_left(b);
  return b;
}

}  // namespace dqmc::hubbard
