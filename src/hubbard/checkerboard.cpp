#include "hubbard/checkerboard.h"

#include <cmath>

#include "linalg/blas1.h"

namespace dqmc::hubbard {

CheckerboardB::CheckerboardB(const Lattice& lattice,
                             const ModelParams& params)
    : n_(lattice.num_sites()) {
  params.validate();
  mu_scale_ = std::exp(params.dtau() * params.mu);

  // Greedy edge coloring: place each bond in the first group where neither
  // endpoint is already used. The even periodic square lattice needs 4
  // groups; odd extents or multilayer stacks a few more.
  std::vector<std::vector<bool>> used;  // [group][site]
  for (const auto& bond : lattice.bonds()) {
    const double hop = bond.interlayer ? params.t_perp : params.t;
    std::size_t g = 0;
    for (; g < groups_.size(); ++g) {
      if (!used[g][static_cast<std::size_t>(bond.a)] &&
          !used[g][static_cast<std::size_t>(bond.b)])
        break;
    }
    if (g == groups_.size()) {
      groups_.emplace_back();
      used.emplace_back(static_cast<std::size_t>(n_), false);
    }
    used[g][static_cast<std::size_t>(bond.a)] = true;
    used[g][static_cast<std::size_t>(bond.b)] = true;
    groups_[g].push_back(Bond{bond.a, bond.b,
                              std::cosh(params.dtau() * hop),
                              std::sinh(params.dtau() * hop)});
  }
}

void CheckerboardB::apply_groups(MatrixView x, bool inverse) const {
  const idx cols = x.cols();
  // Forward order for B, reverse order (with sinh negated) for B^{-1}:
  // each group factor is its own 2x2 hyperbolic rotation, whose inverse
  // flips the sinh sign (cosh^2 - sinh^2 = 1).
  const idx ng = num_groups();
  for (idx step = 0; step < ng; ++step) {
    const auto& group =
        groups_[static_cast<std::size_t>(inverse ? ng - 1 - step : step)];
    const double sign = inverse ? -1.0 : 1.0;
    for (const Bond& bond : group) {
      double* xa = &x(bond.a, 0);
      double* xb = &x(bond.b, 0);
      const idx ld = x.ld();
      for (idx j = 0; j < cols; ++j) {
        const double va = xa[j * ld];
        const double vb = xb[j * ld];
        xa[j * ld] = bond.cosh_t * va + sign * bond.sinh_t * vb;
        xb[j * ld] = sign * bond.sinh_t * va + bond.cosh_t * vb;
      }
    }
  }
}

void CheckerboardB::apply_left(MatrixView x) const {
  DQMC_CHECK(x.rows() == n_);
  apply_groups(x, /*inverse=*/false);
  if (mu_scale_ != 1.0) {
    for (idx j = 0; j < x.cols(); ++j)
      linalg::scal(n_, mu_scale_, x.col(j));
  }
}

void CheckerboardB::apply_inverse_left(MatrixView x) const {
  DQMC_CHECK(x.rows() == n_);
  if (mu_scale_ != 1.0) {
    for (idx j = 0; j < x.cols(); ++j)
      linalg::scal(n_, 1.0 / mu_scale_, x.col(j));
  }
  apply_groups(x, /*inverse=*/true);
}

Matrix CheckerboardB::dense() const {
  Matrix b = Matrix::identity(n_);
  apply_left(b);
  return b;
}

Matrix CheckerboardB::dense_inverse() const {
  Matrix b = Matrix::identity(n_);
  apply_inverse_left(b);
  return b;
}

}  // namespace dqmc::hubbard
