// Lattice geometry: 2D periodic rectangular lattices and multilayer stacks.
//
// QUEST's default geometry is the Lx x Ly periodic rectangular lattice; the
// paper's motivation (Section I) is stacking 6-8 such layers to model
// interfaces, so the lattice here supports `layers` copies of the plane
// coupled by a perpendicular hopping t_perp (open boundaries in z, as for a
// physical film).
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace dqmc::hubbard {

using linalg::idx;

/// Integer site coordinate (x, y, layer).
struct SiteCoord {
  idx x = 0;
  idx y = 0;
  idx z = 0;
};

/// A momentum-space point of the 2D Brillouin zone.
struct Momentum {
  double kx = 0.0;
  double ky = 0.0;
};

class Lattice {
 public:
  /// Periodic Lx x Ly plane stacked `layers` times (layers >= 1). The
  /// in-plane directions are periodic; the stacking direction is open.
  Lattice(idx lx, idx ly, idx layers = 1);

  /// Square single-layer convenience.
  static Lattice square(idx l) { return Lattice(l, l, 1); }

  idx lx() const { return lx_; }
  idx ly() const { return ly_; }
  idx layers() const { return layers_; }
  idx sites_per_layer() const { return lx_ * ly_; }
  idx num_sites() const { return lx_ * ly_ * layers_; }

  /// Flatten (x, y, z) -> site index.
  idx site(idx x, idx y, idx z = 0) const;
  /// Inverse of site().
  SiteCoord coord(idx s) const;

  /// In-plane neighbor with periodic wrap; dz is NOT wrapped (open) and
  /// must stay inside [0, layers).
  idx neighbor(idx s, idx dx, idx dy, idx dz = 0) const;

  /// Unordered list of nearest-neighbor bonds (each pair once), including
  /// interlayer bonds when layers > 1.
  struct Bond {
    idx a, b;
    bool interlayer;
  };
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// All N in-plane momenta k = (2 pi nx / Lx, 2 pi ny / Ly) of one layer.
  std::vector<Momentum> momenta() const;

  /// Displacement d = r_b - r_a with minimum-image convention in-plane,
  /// plain difference across layers.
  SiteCoord displacement(idx a, idx b) const;

  /// Index of a displacement for accumulation tables: in-plane part folded
  /// into [0,Lx) x [0,Ly), layer difference shifted to [0, 2*layers-1).
  idx displacement_index(idx a, idx b) const;
  idx num_displacements() const { return lx_ * ly_ * (2 * layers_ - 1); }

 private:
  idx lx_, ly_, layers_;
  std::vector<Bond> bonds_;
};

}  // namespace dqmc::hubbard
