// Checkerboard (split-bond) approximation of B = e^{-dtau K}.
//
// QUEST offers this sparse alternative to the dense matrix exponential for
// large lattices: the bond set is partitioned into groups of non-sharing
// bonds (graph edge coloring; 4 groups on the even periodic square
// lattice), and
//
//   B_cb = e^{dtau mu} * prod_g e^{-dtau K_g},
//
// where each e^{-dtau K_g} factors into independent 2x2 rotations
// [[cosh(dtau t), sinh(dtau t)], [sinh(dtau t), cosh(dtau t)]] per bond —
// applicable to a dense matrix in O(bonds x columns) instead of a GEMM.
// The splitting error is O(dtau^2), the same order as the Trotter error
// already accepted by the simulation.
#pragma once

#include <vector>

#include "hubbard/lattice.h"
#include "hubbard/model.h"

namespace dqmc::hubbard {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;

class CheckerboardB {
 public:
  CheckerboardB(const Lattice& lattice, const ModelParams& params);

  idx n() const { return n_; }
  /// Number of bond groups (colors) the lattice needed.
  idx num_groups() const { return static_cast<idx>(groups_.size()); }

  /// x <- B_cb * x (in place; x is n() x anything).
  void apply_left(MatrixView x) const;
  /// x <- B_cb^{-1} * x (exact inverse of the approximation).
  void apply_inverse_left(MatrixView x) const;

  /// Dense representation (for tests and for seeding the graded engine).
  Matrix dense() const;
  Matrix dense_inverse() const;

 private:
  struct Bond {
    idx a, b;
    double cosh_t, sinh_t;  // cosh/sinh(dtau * hop)
  };

  void apply_groups(MatrixView x, bool inverse) const;

  idx n_;
  double mu_scale_;      // e^{dtau mu} (the -mu diagonal of K)
  std::vector<std::vector<Bond>> groups_;
};

}  // namespace dqmc::hubbard
