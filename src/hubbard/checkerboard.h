// Checkerboard (split-bond) approximation of B = e^{-dtau K}.
//
// QUEST offers this sparse alternative to the dense matrix exponential for
// large lattices: the bond set is partitioned into groups of non-sharing
// bonds (graph edge coloring; 4 groups on the even periodic square
// lattice), and
//
//   B_cb = e^{dtau mu} * prod_g e^{-dtau K_g},
//
// where each e^{-dtau K_g} factors into independent 2x2 rotations
// [[cosh(dtau t), sinh(dtau t)], [sinh(dtau t), cosh(dtau t)]] per bond —
// applicable to a dense matrix in O(bonds x columns) instead of a GEMM.
// The splitting error is O(dtau^2), the same order as the Trotter error
// already accepted by the simulation.
//
// This class builds the bond groups from a Lattice (any extent — odd L and
// bilayer t_perp stacks just need more colors) and delegates the actual
// applies to linalg::cb_apply, the same kernel the compute backends replay,
// so the factory cpu path and the backend chains agree bitwise.
#pragma once

#include "hubbard/lattice.h"
#include "hubbard/model.h"
#include "linalg/cb_operator.h"

namespace dqmc::hubbard {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;

class CheckerboardB {
 public:
  CheckerboardB(const Lattice& lattice, const ModelParams& params);

  idx n() const { return op_.n; }
  /// Number of bond groups (colors) the lattice needed.
  idx num_groups() const { return op_.num_groups(); }
  idx num_bonds() const { return op_.num_bonds(); }

  /// The structured operator itself — what backends upload and replay.
  const linalg::CbOperator& op() const { return op_; }

  /// x <- B_cb * x (in place; x must have n() rows, any column count).
  void apply_left(MatrixView x) const;
  /// x <- B_cb^{-1} * x (exact inverse of the approximation).
  void apply_inverse_left(MatrixView x) const;
  /// x <- x * B_cb (in place; x must have n() columns, any row count).
  void apply_right(MatrixView x) const;
  /// x <- x * B_cb^{-1} — the form the wrap G <- B G B^{-1} needs.
  void apply_inverse_right(MatrixView x) const;

  /// Dense representation (for tests and for seeding the graded engine).
  Matrix dense() const;
  Matrix dense_inverse() const;

 private:
  linalg::CbOperator op_;
};

}  // namespace dqmc::hubbard
