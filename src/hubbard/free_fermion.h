// Exact U = 0 (free-fermion) reference solutions.
//
// At U = 0 the HS field decouples (nu = 0) and every DQMC quantity has a
// closed form through the spectrum of K. These are the oracles for the
// validation tests and the U = 0 sanity rows of the physics benches:
//   G        = (I + e^{-beta K})^{-1}           (equal-time Green's function)
//   <n_k>    = f(eps_k) = 1 / (1 + e^{beta eps_k})
//   <n>      = (2/N) sum_k f(eps_k)             (both spins)
#pragma once

#include "hubbard/kinetic.h"
#include "hubbard/lattice.h"
#include "hubbard/model.h"

namespace dqmc::hubbard {

/// Exact equal-time Green's function G(i,j) = <c_i c^dag_j> at U = 0.
Matrix free_greens_function(const Lattice& lattice, const ModelParams& params);

/// Tight-binding dispersion of one layer:
/// eps(k) = -2t (cos kx + cos ky) - mu.
double free_dispersion(const ModelParams& params, Momentum k);

/// Fermi factor 1 / (1 + e^{beta eps}).
double fermi_function(double beta, double eps);

/// Exact <n_{k,sigma}> per spin on a single-layer lattice.
double free_momentum_occupation(const ModelParams& params, Momentum k);

/// Exact density per site (both spins) on a single-layer lattice.
double free_density(const Lattice& lattice, const ModelParams& params);

/// Exact kinetic + chemical energy per site at U = 0 (both spins):
/// (2/N) sum_k eps_k f(eps_k).
double free_energy_per_site(const Lattice& lattice, const ModelParams& params);

}  // namespace dqmc::hubbard
