#include "hubbard/lattice.h"

#include <cmath>
#include <numbers>

namespace dqmc::hubbard {

Lattice::Lattice(idx lx, idx ly, idx layers)
    : lx_(lx), ly_(ly), layers_(layers) {
  DQMC_CHECK_MSG(lx >= 2 && ly >= 2, "lattice extents must be >= 2");
  DQMC_CHECK_MSG(layers >= 1, "need at least one layer");

  // Enumerate each nearest-neighbor bond once: +x and +y within a layer
  // (periodic), +z across layers (open).
  for (idx z = 0; z < layers_; ++z) {
    for (idx y = 0; y < ly_; ++y) {
      for (idx x = 0; x < lx_; ++x) {
        const idx s = site(x, y, z);
        // With extent 2, s+1 and s-1 are the same site; emit the bond once.
        if (lx_ > 2 || x == 0) bonds_.push_back({s, site((x + 1) % lx_, y, z), false});
        if (ly_ > 2 || y == 0) bonds_.push_back({s, site(x, (y + 1) % ly_, z), false});
        if (z + 1 < layers_) bonds_.push_back({s, site(x, y, z + 1), true});
      }
    }
  }
}

idx Lattice::site(idx x, idx y, idx z) const {
  DQMC_ASSERT(x >= 0 && x < lx_ && y >= 0 && y < ly_ && z >= 0 && z < layers_);
  return x + lx_ * (y + ly_ * z);
}

SiteCoord Lattice::coord(idx s) const {
  DQMC_ASSERT(s >= 0 && s < num_sites());
  SiteCoord c;
  c.x = s % lx_;
  c.y = (s / lx_) % ly_;
  c.z = s / (lx_ * ly_);
  return c;
}

idx Lattice::neighbor(idx s, idx dx, idx dy, idx dz) const {
  const SiteCoord c = coord(s);
  const idx nx = ((c.x + dx) % lx_ + lx_) % lx_;
  const idx ny = ((c.y + dy) % ly_ + ly_) % ly_;
  const idx nz = c.z + dz;
  DQMC_CHECK_MSG(nz >= 0 && nz < layers_, "interlayer neighbor out of range");
  return site(nx, ny, nz);
}

std::vector<Momentum> Lattice::momenta() const {
  std::vector<Momentum> ks;
  ks.reserve(static_cast<std::size_t>(sites_per_layer()));
  for (idx ny = 0; ny < ly_; ++ny) {
    for (idx nx = 0; nx < lx_; ++nx) {
      ks.push_back({2.0 * std::numbers::pi * static_cast<double>(nx) / static_cast<double>(lx_),
                    2.0 * std::numbers::pi * static_cast<double>(ny) / static_cast<double>(ly_)});
    }
  }
  return ks;
}

SiteCoord Lattice::displacement(idx a, idx b) const {
  const SiteCoord ca = coord(a), cb = coord(b);
  SiteCoord d;
  d.x = cb.x - ca.x;
  d.y = cb.y - ca.y;
  d.z = cb.z - ca.z;
  // Minimum image in the periodic directions.
  if (d.x > lx_ / 2) d.x -= lx_;
  if (d.x < -(lx_ - 1) / 2) d.x += lx_;
  if (d.y > ly_ / 2) d.y -= ly_;
  if (d.y < -(ly_ - 1) / 2) d.y += ly_;
  return d;
}

idx Lattice::displacement_index(idx a, idx b) const {
  const SiteCoord ca = coord(a), cb = coord(b);
  const idx dx = ((cb.x - ca.x) % lx_ + lx_) % lx_;
  const idx dy = ((cb.y - ca.y) % ly_ + ly_) % ly_;
  const idx dz = cb.z - ca.z + (layers_ - 1);  // [0, 2*layers-1)
  return dx + lx_ * (dy + ly_ * dz);
}

}  // namespace dqmc::hubbard
