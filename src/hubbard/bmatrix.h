// Factory for the time-slice propagators B_{l,sigma} = V_{l,sigma} B.
//
// B = e^{-dtau K} is fixed for the whole simulation (computed once, also on
// the simulated GPU in the hybrid engine); V_{l,sigma} is the diagonal
// e^{sigma nu diag(h_l)} that changes with every accepted Metropolis flip.
// B_l is therefore *never* formed by a GEMM against a diagonal matrix — all
// appliers below do a row scaling plus (at most) one application of B,
// which is the structure every performance argument in the paper leans on.
//
// The kinetic factor itself is a KineticOperator: dense (GEMM appliers) or
// checkerboard (O(bonds x cols) structured appliers), selected at
// construction. In checkerboard mode b()/b_inv() are the rendered products
// of the structured factors, so dense consumers and structured fast paths
// represent the same operator — bitwise.
#pragma once

#include <cstdint>

#include "hubbard/kinetic_operator.h"
#include "hubbard/model.h"

namespace dqmc::hubbard {

using linalg::ConstMatrixView;
using linalg::MatrixView;
using linalg::Vector;

/// One HS field value per site: +1 / -1.
using hs_t = std::int8_t;

class BMatrixFactory {
 public:
  BMatrixFactory(const Lattice& lattice, const ModelParams& params,
                 KineticKind kinetic = KineticKind::kDense);

  idx n() const { return kinetic_.n(); }
  double nu() const { return nu_; }
  const ModelParams& params() const { return params_; }
  const KineticOperator& kinetic() const { return kinetic_; }
  const Matrix& b() const { return kinetic_.b(); }
  const Matrix& b_inv() const { return kinetic_.b_inv(); }
  const linalg::SymmetricEigen& kinetic_eig() const { return kinetic_.eig(); }

  /// V diagonal for slice field h (n() entries) and spin sigma:
  /// v[i] = e^{sigma nu h[i]}.
  Vector v_diagonal(const hs_t* h, Spin sigma) const;
  /// Elementwise inverse diagonal e^{-sigma nu h[i]}.
  Vector v_diagonal_inv(const hs_t* h, Spin sigma) const;

  /// Explicit B_l = diag(v) * B (used by tests and the direct-inverse
  /// reference path; production code uses the appliers).
  Matrix make_b(const hs_t* h, Spin sigma) const;

  /// out <- B_l * in  (apply B, then a row scaling by v). Dense mode runs
  /// one GEMM; checkerboard mode copies `in` and replays the bond groups.
  void apply_b_left(const hs_t* h, Spin sigma, ConstMatrixView in,
                    MatrixView out) const;

  /// g <- B_l * g * B_l^{-1}: the wrapping update (Section III-B-1),
  /// computed as diag(v) * (B * g * B^{-1}) * diag(v)^{-1}.
  /// `work` must be an n() x n() scratch matrix (unused in checkerboard
  /// mode, where both B factors apply in place).
  void wrap(const hs_t* h, Spin sigma, MatrixView g, MatrixView work) const;

 private:
  ModelParams params_;
  double nu_;
  KineticOperator kinetic_;
};

}  // namespace dqmc::hubbard
