// The single-particle kinetic matrix K and its exponentials.
//
// K collects hopping and chemical potential: H_K = sum c^dag K c with
// K(a,b) = -t on nearest-neighbor bonds (-t_perp across layers) and
// K(a,a) = -mu. B = e^{-dtau K} is formed exactly from the spectral
// decomposition (K is symmetric), along with B^{-1} = e^{+dtau K} which the
// wrapping update needs.
#pragma once

#include "hubbard/lattice.h"
#include "hubbard/model.h"
#include "linalg/eig_sym.h"

namespace dqmc::hubbard {

using linalg::Matrix;

/// Assemble the N x N kinetic matrix for `lattice` and `params`.
Matrix kinetic_matrix(const Lattice& lattice, const ModelParams& params);

/// e^{-dtau K} and e^{+dtau K}, plus the spectral decomposition of K
/// (reused by the free-fermion reference solution).
struct KineticExponentials {
  Matrix b;       ///< e^{-dtau K}
  Matrix b_inv;   ///< e^{+dtau K}
  linalg::SymmetricEigen eig;  ///< decomposition of K itself
};
KineticExponentials kinetic_exponentials(const Lattice& lattice,
                                         const ModelParams& params);

}  // namespace dqmc::hubbard
