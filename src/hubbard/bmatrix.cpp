#include "hubbard/bmatrix.h"

#include <cmath>

#include "linalg/blas3.h"
#include "linalg/diag.h"

namespace dqmc::hubbard {

BMatrixFactory::BMatrixFactory(const Lattice& lattice,
                               const ModelParams& params, KineticKind kinetic)
    : params_(params), nu_(params.hs_nu()), kinetic_(lattice, params, kinetic) {}

Vector BMatrixFactory::v_diagonal(const hs_t* h, Spin sigma) const {
  const idx nn = n();
  Vector v(nn);
  const double s = spin_sign(sigma) * nu_;
  for (idx i = 0; i < nn; ++i) v[i] = std::exp(s * static_cast<double>(h[i]));
  return v;
}

Vector BMatrixFactory::v_diagonal_inv(const hs_t* h, Spin sigma) const {
  const idx nn = n();
  Vector v(nn);
  const double s = -spin_sign(sigma) * nu_;
  for (idx i = 0; i < nn; ++i) v[i] = std::exp(s * static_cast<double>(h[i]));
  return v;
}

Matrix BMatrixFactory::make_b(const hs_t* h, Spin sigma) const {
  Matrix out = b();
  const Vector v = v_diagonal(h, sigma);
  linalg::scale_rows(v.data(), out);
  return out;
}

void BMatrixFactory::apply_b_left(const hs_t* h, Spin sigma,
                                  ConstMatrixView in, MatrixView out) const {
  DQMC_CHECK(in.rows() == n() && out.rows() == n() && in.cols() == out.cols());
  if (kinetic_.structured()) {
    // copy + in-place bond replay; linalg::copy preserves bits, so this
    // matches the backend chain's structured path exactly.
    linalg::copy(in, out);
    kinetic_.apply_left(out);
  } else {
    linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, b(), in, 0.0, out);
  }
  const Vector v = v_diagonal(h, sigma);
  linalg::scale_rows(v.data(), out);
}

void BMatrixFactory::wrap(const hs_t* h, Spin sigma, MatrixView g,
                          MatrixView work) const {
  DQMC_CHECK(g.rows() == n() && g.cols() == n());
  DQMC_CHECK(work.rows() == n() && work.cols() == n());
  if (kinetic_.structured()) {
    // Both kinetic factors replay in place — no scratch, no GEMM.
    kinetic_.apply_left(g);
    kinetic_.apply_inverse_right(g);
  } else {
    // work = B * g; g = work * B^{-1}; then the diagonal conjugation.
    linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, b(), g, 0.0, work);
    linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, work, b_inv(), 0.0,
                 g);
  }
  const Vector v = v_diagonal(h, sigma);
  linalg::scale_rows_cols_inv(v.data(), v.data(), g);
}

}  // namespace dqmc::hubbard
