#include "hubbard/kinetic.h"

#include <cmath>

#include "linalg/blas3.h"
#include "linalg/diag.h"

namespace dqmc::hubbard {

Matrix kinetic_matrix(const Lattice& lattice, const ModelParams& params) {
  params.validate();
  const idx n = lattice.num_sites();
  Matrix k = Matrix::zero(n, n);
  for (const auto& bond : lattice.bonds()) {
    const double hop = bond.interlayer ? params.t_perp : params.t;
    k(bond.a, bond.b) -= hop;
    k(bond.b, bond.a) -= hop;
  }
  for (idx i = 0; i < n; ++i) k(i, i) = -params.mu;
  return k;
}

KineticExponentials kinetic_exponentials(const Lattice& lattice,
                                         const ModelParams& params) {
  const Matrix k = kinetic_matrix(lattice, params);
  linalg::SymmetricEigen eig = linalg::eig_sym(k);
  const double dtau = params.dtau();
  const idx n = k.rows();

  auto assemble = [&](double sign) {
    linalg::Vector w(n);
    for (idx i = 0; i < n; ++i) w[i] = std::exp(sign * dtau * eig.eigenvalues[i]);
    Matrix scaled = eig.eigenvectors;
    linalg::scale_cols(w.data(), scaled);
    return linalg::matmul(scaled, eig.eigenvectors, linalg::Trans::No,
                          linalg::Trans::Yes);
  };

  KineticExponentials out{assemble(-1.0), assemble(+1.0), std::move(eig)};
  return out;
}

}  // namespace dqmc::hubbard
