// The kinetic factor B = e^{-dtau K} as a structured operator.
//
// Two variants, selected per run (config key `kinetic`):
//   dense        — the exact eigendecomposition exponential; every apply is
//                  a GEMM against the precomputed n x n matrix.
//   checkerboard — the split-bond factorization (checkerboard.h); applies
//                  cost O(bonds x columns) with the same O(dtau^2) error
//                  order as the Trotter splitting itself.
//
// In checkerboard mode the dense() accessors return the RENDERED product of
// the structured factors (not the exact exponential), so every consumer of
// the dense matrix — graded stratification seeds, time-displaced chains,
// tests — represents exactly the same operator the structured fast paths
// apply. Dense-vs-structured parity is then a bitwise question, and the
// physics comparison against the exact exponential is isolated to the one
// documented O(dtau^2) splitting error.
#pragma once

#include <memory>
#include <string>

#include "hubbard/checkerboard.h"
#include "hubbard/kinetic.h"

namespace dqmc::hubbard {

enum class KineticKind {
  kDense,
  kCheckerboard,
};

const char* kinetic_kind_name(KineticKind kind);
/// Parses "dense" / "checkerboard"; throws InvalidArgument otherwise.
KineticKind kinetic_kind_from_string(const std::string& name);

class KineticOperator {
 public:
  KineticOperator(const Lattice& lattice, const ModelParams& params,
                  KineticKind kind);

  KineticKind kind() const { return kind_; }
  bool structured() const { return kind_ == KineticKind::kCheckerboard; }
  idx n() const { return b_.rows(); }

  /// Dense rendering of B (exact exponential in dense mode, the product of
  /// the checkerboard factors in structured mode).
  const Matrix& b() const { return b_; }
  const Matrix& b_inv() const { return b_inv_; }
  /// Eigendecomposition of K — always the exact one, both modes (free
  /// fermion references and spectral diagnostics need it regardless).
  const linalg::SymmetricEigen& eig() const { return eig_; }

  /// Structured form; only valid in checkerboard mode.
  const CheckerboardB& checkerboard() const;
  const linalg::CbOperator& cb() const { return checkerboard().op(); }

  /// In-place applies. Dense mode runs a GEMM through scratch; structured
  /// mode replays the bond groups (no scratch, no GEMM).
  ///   apply_left:          x <- B x
  ///   apply_inverse_left:  x <- B^{-1} x
  ///   apply_right:         x <- x B
  ///   apply_inverse_right: x <- x B^{-1}   (the wrap's right factor)
  void apply_left(MatrixView x) const;
  void apply_inverse_left(MatrixView x) const;
  void apply_right(MatrixView x) const;
  void apply_inverse_right(MatrixView x) const;

 private:
  void apply_dense(const Matrix& op, bool right, MatrixView x) const;

  KineticKind kind_;
  Matrix b_, b_inv_;
  linalg::SymmetricEigen eig_;
  std::unique_ptr<CheckerboardB> cb_;
};

}  // namespace dqmc::hubbard
