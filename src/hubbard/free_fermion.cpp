#include "hubbard/free_fermion.h"

#include <cmath>

#include "linalg/blas3.h"
#include "linalg/diag.h"

namespace dqmc::hubbard {

Matrix free_greens_function(const Lattice& lattice,
                            const ModelParams& params) {
  // G = (I + e^{-beta K})^{-1} = V diag(1/(1 + e^{-beta w})) V^T.
  const Matrix k = kinetic_matrix(lattice, params);
  linalg::SymmetricEigen eig = linalg::eig_sym(k);
  const idx n = k.rows();
  linalg::Vector g(n);
  for (idx i = 0; i < n; ++i) {
    // 1/(1+e^{-beta w}) evaluated stably for both signs of w.
    const double bw = params.beta * eig.eigenvalues[i];
    g[i] = (bw >= 0.0) ? 1.0 / (1.0 + std::exp(-bw))
                       : std::exp(bw) / (1.0 + std::exp(bw));
  }
  Matrix scaled = eig.eigenvectors;
  linalg::scale_cols(g.data(), scaled);
  return linalg::matmul(scaled, eig.eigenvectors, linalg::Trans::No,
                        linalg::Trans::Yes);
}

double free_dispersion(const ModelParams& params, Momentum k) {
  return -2.0 * params.t * (std::cos(k.kx) + std::cos(k.ky)) - params.mu;
}

double fermi_function(double beta, double eps) {
  const double be = beta * eps;
  return (be >= 0.0) ? std::exp(-be) / (1.0 + std::exp(-be))
                     : 1.0 / (1.0 + std::exp(be));
}

double free_momentum_occupation(const ModelParams& params, Momentum k) {
  return fermi_function(params.beta, free_dispersion(params, k));
}

double free_density(const Lattice& lattice, const ModelParams& params) {
  DQMC_CHECK_MSG(lattice.layers() == 1,
                 "closed-form density is implemented for single layers");
  double sum = 0.0;
  for (const Momentum& k : lattice.momenta())
    sum += free_momentum_occupation(params, k);
  return 2.0 * sum / static_cast<double>(lattice.num_sites());
}

double free_energy_per_site(const Lattice& lattice,
                            const ModelParams& params) {
  DQMC_CHECK_MSG(lattice.layers() == 1,
                 "closed-form energy is implemented for single layers");
  double sum = 0.0;
  for (const Momentum& k : lattice.momenta()) {
    const double eps = free_dispersion(params, k);
    sum += eps * fermi_function(params.beta, eps);
  }
  return 2.0 * sum / static_cast<double>(lattice.num_sites());
}

}  // namespace dqmc::hubbard
