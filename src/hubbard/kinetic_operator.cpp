#include "hubbard/kinetic_operator.h"

#include "common/error.h"
#include "linalg/blas3.h"

namespace dqmc::hubbard {

const char* kinetic_kind_name(KineticKind kind) {
  switch (kind) {
    case KineticKind::kDense:
      return "dense";
    case KineticKind::kCheckerboard:
      return "checkerboard";
  }
  return "unknown";
}

KineticKind kinetic_kind_from_string(const std::string& name) {
  if (name == "dense") return KineticKind::kDense;
  if (name == "checkerboard") return KineticKind::kCheckerboard;
  throw InvalidArgument("unknown kinetic kind '" + name +
                        "' (expected dense or checkerboard)");
}

KineticOperator::KineticOperator(const Lattice& lattice,
                                 const ModelParams& params, KineticKind kind)
    : kind_(kind) {
  KineticExponentials ke = kinetic_exponentials(lattice, params);
  eig_ = std::move(ke.eig);
  if (kind_ == KineticKind::kCheckerboard) {
    cb_ = std::make_unique<CheckerboardB>(lattice, params);
    b_ = cb_->dense();
    b_inv_ = cb_->dense_inverse();
  } else {
    b_ = std::move(ke.b);
    b_inv_ = std::move(ke.b_inv);
  }
}

const CheckerboardB& KineticOperator::checkerboard() const {
  DQMC_CHECK_MSG(cb_ != nullptr,
                 "KineticOperator: structured form requested in dense mode");
  return *cb_;
}

void KineticOperator::apply_dense(const Matrix& op, bool right,
                                  MatrixView x) const {
  Matrix scratch(x.rows(), x.cols());
  if (right) {
    linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, x, op, 0.0,
                 scratch.view());
  } else {
    linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, op, x, 0.0,
                 scratch.view());
  }
  for (idx j = 0; j < x.cols(); ++j)
    for (idx i = 0; i < x.rows(); ++i) x(i, j) = scratch(i, j);
}

void KineticOperator::apply_left(MatrixView x) const {
  if (structured()) {
    cb_->apply_left(x);
  } else {
    apply_dense(b_, /*right=*/false, x);
  }
}

void KineticOperator::apply_inverse_left(MatrixView x) const {
  if (structured()) {
    cb_->apply_inverse_left(x);
  } else {
    apply_dense(b_inv_, /*right=*/false, x);
  }
}

void KineticOperator::apply_right(MatrixView x) const {
  if (structured()) {
    cb_->apply_right(x);
  } else {
    apply_dense(b_, /*right=*/true, x);
  }
}

void KineticOperator::apply_inverse_right(MatrixView x) const {
  if (structured()) {
    cb_->apply_inverse_right(x);
  } else {
    apply_dense(b_inv_, /*right=*/true, x);
  }
}

}  // namespace dqmc::hubbard
