#include "linalg/diag.h"

#include "parallel/parallel_for.h"

namespace dqmc::linalg {

void scale_rows(const double* d, MatrixView a) {
  // Column-major: thread over columns so each task streams one contiguous
  // column while re-reading the (cache-resident) scale vector.
  par::parallel_for(
      0, a.cols(),
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        double* col = a.col(j);
        for (idx i = 0; i < a.rows(); ++i) col[i] *= d[i];
      },
      {.grain = 8});
}

void scale_cols(const double* d, MatrixView a) {
  par::parallel_for(
      0, a.cols(),
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        const double s = d[j];
        double* col = a.col(j);
        for (idx i = 0; i < a.rows(); ++i) col[i] *= s;
      },
      {.grain = 8});
}

void scale_rows_cols_inv(const double* r, const double* c, MatrixView a) {
  par::parallel_for(
      0, a.cols(),
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        const double cinv = 1.0 / c[j];
        double* col = a.col(j);
        for (idx i = 0; i < a.rows(); ++i) col[i] *= r[i] * cinv;
      },
      {.grain = 8});
}

void scale_rows_into(const double* d, ConstMatrixView a, MatrixView out) {
  DQMC_CHECK(a.rows() == out.rows() && a.cols() == out.cols());
  par::parallel_for(
      0, a.cols(),
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        const double* src = a.col(j);
        double* dst = out.col(j);
        for (idx i = 0; i < a.rows(); ++i) dst[i] = d[i] * src[i];
      },
      {.grain = 8});
}

Vector diagonal(ConstMatrixView a) {
  DQMC_CHECK(a.rows() == a.cols());
  Vector d(a.rows());
  for (idx i = 0; i < a.rows(); ++i) d[i] = a(i, i);
  return d;
}

Vector reciprocal(const Vector& d) {
  Vector r(d.size());
  for (idx i = 0; i < d.size(); ++i) {
    DQMC_CHECK_MSG(d[i] != 0.0, "reciprocal of zero diagonal entry");
    r[i] = 1.0 / d[i];
  }
  return r;
}

}  // namespace dqmc::linalg
