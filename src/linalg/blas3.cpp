#include "linalg/blas3.h"

#include <algorithm>
#include <vector>

#include "common/aligned.h"
#include "linalg/blas1.h"
#include "linalg/gemm_kernel.h"
#include "parallel/parallel_for.h"

namespace dqmc::linalg {

using namespace detail;

namespace {

/// Scale C by beta (handles 0 and 1 fast paths).
void scale_c(MatrixView c, double beta) {
  if (beta == 1.0) return;
  for (idx j = 0; j < c.cols(); ++j) {
    if (beta == 0.0) {
      std::fill(c.col(j), c.col(j) + c.rows(), 0.0);
    } else {
      scal(c.rows(), beta, c.col(j));
    }
  }
}

/// Inner GEBP block: C(mc x nc) += alpha * Apacked(mc x kc) * Bpacked(kc x nc)
/// with the M dimension split across threads (each thread owns disjoint rows
/// of C, so no synchronization is needed on the output).
void gebp(idx mc, idx nc, idx kc, double alpha, const double* apack,
          const double* bpack, double beta, MatrixView c) {
  const idx mtiles = (mc + kMR - 1) / kMR;
  par::parallel_for(
      0, mtiles,
      [&](par::index_t it) {
        const idx i = static_cast<idx>(it) * kMR;
        const idx mr = std::min(kMR, mc - i);
        const double* a = apack + i * kc;
        for (idx j = 0; j < nc; j += kNR) {
          const idx nr = std::min(kNR, nc - j);
          micro_kernel(kc, alpha, a, bpack + j * kc, beta,
                       &c(i, j), c.ld(), mr, nr);
        }
      },
      // One row-tile of work is kc*nc flops heavy; always worth threading
      // when there is more than one tile per worker.
      {.grain = 1});
}

}  // namespace

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const bool ta = transa == Trans::Yes;
  const bool tb = transb == Trans::Yes;
  const idx m = ta ? a.cols() : a.rows();
  const idx k = ta ? a.rows() : a.cols();
  const idx kb = tb ? b.cols() : b.rows();
  const idx n = tb ? b.rows() : b.cols();
  DQMC_CHECK_MSG(k == kb, "gemm inner dimensions differ");
  DQMC_CHECK_MSG(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0) {
    scale_c(c, beta);
    return;
  }

  // General beta is applied once up front; the packed loops then accumulate.
  scale_c(c, beta);

  AlignedBuffer<double> apack(static_cast<std::size_t>(round_up(std::min(m, kMC), kMR)) * kKC);
  AlignedBuffer<double> bpack(static_cast<std::size_t>(kKC) * round_up(std::min(n, kNC), kNR));

  for (idx jc = 0; jc < n; jc += kNC) {
    const idx nc = std::min(kNC, n - jc);
    for (idx pc = 0; pc < k; pc += kKC) {
      const idx kc = std::min(kKC, k - pc);
      pack_b(b, tb, pc, jc, kc, nc, bpack.data());
      for (idx ic = 0; ic < m; ic += kMC) {
        const idx mc = std::min(kMC, m - ic);
        pack_a(a, ta, ic, pc, mc, kc, apack.data());
        gebp(mc, nc, kc, alpha, apack.data(), bpack.data(), /*beta=*/1.0,
             c.block(ic, jc, mc, nc));
      }
    }
  }
}

Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans transa,
              Trans transb) {
  const idx m = transa == Trans::Yes ? a.cols() : a.rows();
  const idx n = transb == Trans::Yes ? b.rows() : b.cols();
  Matrix c(m, n);
  gemm(transa, transb, 1.0, a, b, 0.0, c);
  return c;
}

namespace {

/// Block size for the triangular level-3 drivers: diagonal blocks run the
/// unblocked kernels, everything else becomes GEMM.
constexpr idx kTriBlock = 64;

/// Is the effective factor op(T) upper triangular?
bool effective_upper(UpLo uplo, Trans trans) {
  return (uplo == UpLo::Upper && trans == Trans::No) ||
         (uplo == UpLo::Lower && trans == Trans::Yes);
}

/// Unblocked B <- op(Tkk) * B for a small diagonal block (column-parallel).
void trmm_left_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t,
                         MatrixView b) {
  const idx m = b.rows();
  const bool unit = diag == Diag::Unit;
  par::parallel_for(
      0, b.cols(),
      [&](par::index_t jj) {
        double* x = b.col(static_cast<idx>(jj));
        if (effective_upper(uplo, trans)) {
          for (idx i = 0; i < m; ++i) {
            double s = unit ? x[i] : t(i, i) * x[i];
            for (idx p = i + 1; p < m; ++p)
              s += (trans == Trans::No ? t(i, p) : t(p, i)) * x[p];
            x[i] = s;
          }
        } else {
          for (idx i = m - 1; i >= 0; --i) {
            double s = unit ? x[i] : t(i, i) * x[i];
            for (idx p = 0; p < i; ++p)
              s += (trans == Trans::No ? t(i, p) : t(p, i)) * x[p];
            x[i] = s;
          }
        }
      },
      {.grain = 4});
}

/// Unblocked op(Tkk) X = B solve for a small diagonal block.
void trsm_left_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t,
                         MatrixView b) {
  par::parallel_for(
      0, b.cols(),
      [&](par::index_t j) {
        trsv(uplo, trans, diag, t, b.col(static_cast<idx>(j)));
      },
      {.grain = 4});
}

}  // namespace

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  DQMC_CHECK(t.rows() == t.cols());
  if (side == Side::Left) {
    DQMC_CHECK(t.rows() == b.rows());
    const idx m = b.rows(), n = b.cols();
    if (alpha != 1.0)
      for (idx j = 0; j < n; ++j) scal(m, alpha, b.col(j));

    // Blocked substitution: solve one kTriBlock diagonal block at a time,
    // then eliminate it from the remaining rows with a GEMM — the level-3
    // formulation that keeps trsm near gemm speed.
    if (effective_upper(uplo, trans)) {
      // Bottom-up.
      for (idx k = (m - 1) / kTriBlock * kTriBlock; k >= 0; k -= kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        trsm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb),
                            b.block(k, 0, nb, n));
        if (k > 0) {
          // rows [0, k) -= op(T)(0:k, k:k+nb) * X_k
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, t.block(0, k, k, nb),
                 b.block(k, 0, nb, n), 1.0, b.block(0, 0, k, n));
          } else {
            gemm(Trans::Yes, Trans::No, -1.0, t.block(k, 0, nb, k),
                 b.block(k, 0, nb, n), 1.0, b.block(0, 0, k, n));
          }
        }
        if (k == 0) break;  // idx is signed, but avoid wrap past zero
      }
    } else {
      // Top-down.
      for (idx k = 0; k < m; k += kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        trsm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb),
                            b.block(k, 0, nb, n));
        const idx rest = m - k - nb;
        if (rest > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, t.block(k + nb, k, rest, nb),
                 b.block(k, 0, nb, n), 1.0, b.block(k + nb, 0, rest, n));
          } else {
            gemm(Trans::Yes, Trans::No, -1.0, t.block(k, k + nb, nb, rest),
                 b.block(k, 0, nb, n), 1.0, b.block(k + nb, 0, rest, n));
          }
        }
      }
    }
    return;
  }

  // Right side: X * op(T) = alpha * B. Row-oriented substitution expressed
  // column-wise on X (columns of T drive the elimination order).
  DQMC_CHECK(t.rows() == b.cols());
  const idx n = t.rows();
  const idx m = b.rows();
  if (alpha != 1.0)
    for (idx j = 0; j < b.cols(); ++j) scal(m, alpha, b.col(j));
  const bool unit = diag == Diag::Unit;

  if ((uplo == UpLo::Upper && trans == Trans::No) ||
      (uplo == UpLo::Lower && trans == Trans::Yes)) {
    // Effective triangular factor is upper: process columns left to right.
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < j; ++i) {
        const double tij = trans == Trans::No ? t(i, j) : t(j, i);
        axpy(m, -tij, b.col(i), b.col(j));
      }
      if (!unit) scal(m, 1.0 / t(j, j), b.col(j));
    }
  } else {
    // Effective factor lower: right to left.
    for (idx j = n - 1; j >= 0; --j) {
      for (idx i = j + 1; i < n; ++i) {
        const double tij = trans == Trans::No ? t(i, j) : t(j, i);
        axpy(m, -tij, b.col(i), b.col(j));
      }
      if (!unit) scal(m, 1.0 / t(j, j), b.col(j));
    }
  }
}

void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  DQMC_CHECK(t.rows() == t.cols());
  const bool unit = diag == Diag::Unit;
  const idx m = b.rows(), n = b.cols();

  if (side == Side::Left) {
    DQMC_CHECK(t.rows() == m);
    // Blocked in place: each block row is op(T)_kk * B_k (unblocked) plus a
    // GEMM against the not-yet-overwritten part of B.
    if (effective_upper(uplo, trans)) {
      // Top-down: row block k only reads rows >= k.
      for (idx k = 0; k < m; k += kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        MatrixView bk = b.block(k, 0, nb, n);
        trmm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
        const idx rest = m - k - nb;
        if (rest > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, 1.0, t.block(k, k + nb, nb, rest),
                 b.block(k + nb, 0, rest, n), 1.0, bk);
          } else {
            gemm(Trans::Yes, Trans::No, 1.0, t.block(k + nb, k, rest, nb),
                 b.block(k + nb, 0, rest, n), 1.0, bk);
          }
        }
      }
    } else {
      // Bottom-up: row block k only reads rows <= k.
      for (idx k = (m - 1) / kTriBlock * kTriBlock; k >= 0; k -= kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        MatrixView bk = b.block(k, 0, nb, n);
        trmm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
        if (k > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, 1.0, t.block(k, 0, nb, k),
                 b.block(0, 0, k, n), 1.0, bk);
          } else {
            gemm(Trans::Yes, Trans::No, 1.0, t.block(0, k, k, nb),
                 b.block(0, 0, k, n), 1.0, bk);
          }
        }
        if (k == 0) break;
      }
    }
    if (alpha != 1.0)
      for (idx j = 0; j < n; ++j) scal(m, alpha, b.col(j));
    return;
  }

  DQMC_CHECK(t.rows() == n);
  // Right side: B <- alpha * B * op(T), processed so each output column only
  // reads not-yet-overwritten inputs.
  if ((uplo == UpLo::Upper && trans == Trans::No) ||
      (uplo == UpLo::Lower && trans == Trans::Yes)) {
    for (idx j = n - 1; j >= 0; --j) {
      const double tjj = unit ? 1.0 : t(j, j);
      scal(m, tjj, b.col(j));
      for (idx i = 0; i < j; ++i) {
        const double tij = trans == Trans::No ? t(i, j) : t(j, i);
        axpy(m, tij, b.col(i), b.col(j));
      }
      if (alpha != 1.0) scal(m, alpha, b.col(j));
    }
  } else {
    for (idx j = 0; j < n; ++j) {
      const double tjj = unit ? 1.0 : t(j, j);
      scal(m, tjj, b.col(j));
      for (idx i = j + 1; i < n; ++i) {
        const double tij = trans == Trans::No ? t(i, j) : t(j, i);
        axpy(m, tij, b.col(i), b.col(j));
      }
      if (alpha != 1.0) scal(m, alpha, b.col(j));
    }
  }
}

}  // namespace dqmc::linalg
