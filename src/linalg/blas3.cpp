#include "linalg/blas3.h"

#include <algorithm>
#include <vector>

#include "common/aligned.h"
#include "linalg/blas1.h"
#include "linalg/gemm_kernel.h"
#include "parallel/parallel_for.h"

namespace dqmc::linalg {

using namespace detail;

namespace {

/// Scale C by beta (handles 0 and 1 fast paths), columns in parallel.
void scale_c(MatrixView c, double beta) {
  if (beta == 1.0) return;
  par::parallel_for(
      0, c.cols(),
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        if (beta == 0.0) {
          std::fill(c.col(j), c.col(j) + c.rows(), 0.0);
        } else {
          scal(c.rows(), beta, c.col(j));
        }
      },
      {.grain = 64});
}

/// Width of one GEBP column slab. Multiple of kNR so slab boundaries fall on
/// packed-strip boundaries; ~40 register tiles of work per (row-tile, slab)
/// task keeps tasks coarse while still exposing M x N parallelism.
constexpr idx kGebpNC = 240;

/// Inner GEBP block: C(mc x nc) += alpha * Apacked(mc x kc) * Bpacked(kc x nc)
/// partitioned 2D over (M row-tiles) x (N column slabs). Each task owns a
/// disjoint block of C, so no synchronization is needed on the output, and
/// the tile arithmetic is identical whichever thread runs it (bitwise
/// deterministic for any worker count).
void gebp(idx mc, idx nc, idx kc, double alpha, const double* apack,
          const double* bpack, MatrixView c) {
  const idx mtiles = (mc + kMR - 1) / kMR;
  const idx nslabs = (nc + kGebpNC - 1) / kGebpNC;
  par::parallel_for(
      0, mtiles * nslabs,
      [&](par::index_t task) {
        // Row tile fastest: consecutive tasks reuse the same B slab.
        const idx i = static_cast<idx>(task % mtiles) * kMR;
        const idx j0 = static_cast<idx>(task / mtiles) * kGebpNC;
        const idx j1 = std::min(nc, j0 + kGebpNC);
        const idx mr = std::min(kMR, mc - i);
        const double* a = apack + i * kc;
        for (idx j = j0; j < j1; j += kNR) {
          const idx nr = std::min(kNR, nc - j);
          micro_kernel(kc, alpha, a, bpack + j * kc, /*beta=*/1.0,
                       &c(i, j), c.ld(), mr, nr);
        }
      },
      // One tile of work is kc*kGebpNC flops heavy; always worth threading
      // when there is more than one tile per worker.
      {.grain = 1});
}

}  // namespace

void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c) {
  const bool ta = transa == Trans::Yes;
  const bool tb = transb == Trans::Yes;
  const idx m = ta ? a.cols() : a.rows();
  const idx k = ta ? a.rows() : a.cols();
  const idx kb = tb ? b.cols() : b.rows();
  const idx n = tb ? b.rows() : b.cols();
  DQMC_CHECK_MSG(k == kb, "gemm inner dimensions differ");
  DQMC_CHECK_MSG(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0) {
    scale_c(c, beta);
    return;
  }

  // General beta is applied once up front; the packed loops then accumulate.
  scale_c(c, beta);

  AlignedBuffer<double> bpack(static_cast<std::size_t>(kKC) * round_up(std::min(n, kNC), kNR));
  const std::size_t apack_elems =
      static_cast<std::size_t>(round_up(std::min(m, kMC), kMR)) * kKC;
  const idx mblocks = (m + kMC - 1) / kMC;

  for (idx jc = 0; jc < n; jc += kNC) {
    const idx nc = std::min(kNC, n - jc);
    for (idx pc = 0; pc < k; pc += kKC) {
      const idx kc = std::min(kKC, k - pc);

      // Parallel pack of the shared B panel: each task packs a disjoint run
      // of kNR-wide strips (the packed layout composes over strip ranges, so
      // the buffer contents are identical to a serial pack).
      const idx nstrips = (nc + kNR - 1) / kNR;
      par::parallel_for_chunks(
          0, nstrips,
          [&](par::index_t s0, par::index_t s1) {
            const idx js = static_cast<idx>(s0) * kNR;
            const idx w = std::min(nc - js, static_cast<idx>(s1 - s0) * kNR);
            pack_b(b, tb, pc, jc + js, kc, w, bpack.data() + js * kc);
          },
          {.grain = 16});

      // BLIS-style threading of the ic loop: each task packs its own A block
      // into a task-local buffer and runs GEBP against the shared B panel.
      // The buffer is task-local (not thread-local) on purpose: a thread that
      // helps inside a nested wait may pick up a second ic task before its
      // first finished using the buffer.
      par::parallel_for_chunks(
          0, mblocks,
          [&](par::index_t blk0, par::index_t blk1) {
            AlignedBuffer<double> apack(apack_elems);
            for (par::index_t blk = blk0; blk < blk1; ++blk) {
              const idx ic = static_cast<idx>(blk) * kMC;
              const idx mc = std::min(kMC, m - ic);
              pack_a(a, ta, ic, pc, mc, kc, apack.data());
              gebp(mc, nc, kc, alpha, apack.data(), bpack.data(),
                   c.block(ic, jc, mc, nc));
            }
          },
          {.grain = 1});
    }
  }
}

void gemm_batched(Trans transa, Trans transb, double alpha,
                  const std::vector<ConstMatrixView>& a,
                  const std::vector<ConstMatrixView>& b, double beta,
                  const std::vector<MatrixView>& c) {
  const idx count = static_cast<idx>(c.size());
  DQMC_CHECK_MSG(count >= 1, "gemm_batched needs at least one output");
  DQMC_CHECK_MSG(a.size() == c.size() || a.size() == 1,
                 "gemm_batched: a must have one view per item or a single "
                 "shared view");
  DQMC_CHECK_MSG(b.size() == c.size() || b.size() == 1,
                 "gemm_batched: b must have one view per item or a single "
                 "shared view");

  const bool ta = transa == Trans::Yes;
  const bool tb = transb == Trans::Yes;
  const idx m = ta ? a[0].cols() : a[0].rows();
  const idx k = ta ? a[0].rows() : a[0].cols();
  const idx n = tb ? b[0].rows() : b[0].cols();
  for (const ConstMatrixView& ai : a) {
    DQMC_CHECK_MSG((ta ? ai.cols() : ai.rows()) == m &&
                       (ta ? ai.rows() : ai.cols()) == k,
                   "gemm_batched: all A items must share op-dimensions");
  }
  for (const ConstMatrixView& bi : b) {
    DQMC_CHECK_MSG((tb ? bi.cols() : bi.rows()) == k &&
                       (tb ? bi.rows() : bi.cols()) == n,
                   "gemm_batched: all B items must share op-dimensions");
  }
  for (const MatrixView& ci : c) {
    DQMC_CHECK_MSG(ci.rows() == m && ci.cols() == n,
                   "gemm_batched output shape mismatch");
  }

  if (count == 1) {  // trivially the single-item kernel
    gemm(transa, transb, alpha, a[0], b[0], beta, c[0]);
    return;
  }
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0) {
    for (idx i = 0; i < count; ++i) scale_c(c[i], beta);
    return;
  }
  for (idx i = 0; i < count; ++i) scale_c(c[i], beta);

  const bool shared_a = a.size() == 1;
  const bool shared_b = b.size() == 1;
  const std::size_t bpack_elems =
      static_cast<std::size_t>(kKC) * round_up(std::min(n, kNC), kNR);
  const std::size_t apack_elems =
      static_cast<std::size_t>(round_up(std::min(m, kMC), kMR)) * kKC;
  const idx mblocks = (m + kMC - 1) / kMC;
  // A shared panel is packed once and streamed by every item's GEBP passes;
  // per-item panels get one slot each in the same buffer.
  AlignedBuffer<double> bpack(shared_b ? bpack_elems : bpack_elems * count);
  AlignedBuffer<double> apack_shared(shared_a ? apack_elems * mblocks : 0);

  for (idx jc = 0; jc < n; jc += kNC) {
    const idx nc = std::min(kNC, n - jc);
    for (idx pc = 0; pc < k; pc += kKC) {
      const idx kc = std::min(kKC, k - pc);
      const idx nstrips = (nc + kNR - 1) / kNR;

      if (shared_b) {
        // Same strip-range pack as gemm(): identical buffer contents.
        par::parallel_for_chunks(
            0, nstrips,
            [&](par::index_t s0, par::index_t s1) {
              const idx js = static_cast<idx>(s0) * kNR;
              const idx w = std::min(nc - js, static_cast<idx>(s1 - s0) * kNR);
              pack_b(b[0], tb, pc, jc + js, kc, w, bpack.data() + js * kc);
            },
            {.grain = 16});
      } else {
        // One flat task space over (item, strip); each strip packs exactly
        // the bytes a serial per-item pack_b would, so every item's panel is
        // bit-identical to its gemm() pack.
        par::parallel_for_chunks(
            0, count * nstrips,
            [&](par::index_t t0, par::index_t t1) {
              for (par::index_t t = t0; t < t1; ++t) {
                const idx item = static_cast<idx>(t) / nstrips;
                const idx js = (static_cast<idx>(t) % nstrips) * kNR;
                const idx w = std::min(kNR, nc - js);
                pack_b(b[item], tb, pc, jc + js, kc, w,
                       bpack.data() + item * bpack_elems + js * kc);
              }
            },
            {.grain = 16});
      }

      if (shared_a) {
        par::parallel_for_chunks(
            0, mblocks,
            [&](par::index_t blk0, par::index_t blk1) {
              for (par::index_t blk = blk0; blk < blk1; ++blk) {
                const idx ic = static_cast<idx>(blk) * kMC;
                const idx mc = std::min(kMC, m - ic);
                pack_a(a[0], ta, ic, pc, mc, kc,
                       apack_shared.data() + blk * apack_elems);
              }
            },
            {.grain = 1});
      }

      // All W x mblocks GEBP passes stream over the packed panels in one
      // task region. Each task owns a disjoint block of one item's C and
      // runs the identical tile arithmetic gemm() would, so the schedule
      // (and the batching itself) never changes any item's bits.
      par::parallel_for_chunks(
          0, count * mblocks,
          [&](par::index_t t0, par::index_t t1) {
            AlignedBuffer<double> apack(shared_a ? 0 : apack_elems);
            for (par::index_t t = t0; t < t1; ++t) {
              // Block index fastest: consecutive tasks walk one item.
              const idx item = static_cast<idx>(t) / mblocks;
              const idx blk = static_cast<idx>(t) % mblocks;
              const idx ic = blk * kMC;
              const idx mc = std::min(kMC, m - ic);
              const double* ap;
              if (shared_a) {
                ap = apack_shared.data() + blk * apack_elems;
              } else {
                pack_a(a[item], ta, ic, pc, mc, kc, apack.data());
                ap = apack.data();
              }
              const double* bp = shared_b
                                     ? bpack.data()
                                     : bpack.data() + item * bpack_elems;
              gebp(mc, nc, kc, alpha, ap, bp, c[item].block(ic, jc, mc, nc));
            }
          },
          {.grain = 1});
    }
  }
}

Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans transa,
              Trans transb) {
  const idx m = transa == Trans::Yes ? a.cols() : a.rows();
  const idx n = transb == Trans::Yes ? b.rows() : b.cols();
  Matrix c(m, n);
  gemm(transa, transb, 1.0, a, b, 0.0, c);
  return c;
}

namespace {

/// Block size for the triangular level-3 drivers: diagonal blocks run the
/// unblocked kernels, everything else becomes GEMM.
constexpr idx kTriBlock = 64;

/// Is the effective factor op(T) upper triangular?
bool effective_upper(UpLo uplo, Trans trans) {
  return (uplo == UpLo::Upper && trans == Trans::No) ||
         (uplo == UpLo::Lower && trans == Trans::Yes);
}

/// Unblocked B <- op(Tkk) * B for a small diagonal block (column-parallel).
void trmm_left_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t,
                         MatrixView b) {
  const idx m = b.rows();
  const bool unit = diag == Diag::Unit;
  par::parallel_for(
      0, b.cols(),
      [&](par::index_t jj) {
        double* x = b.col(static_cast<idx>(jj));
        if (effective_upper(uplo, trans)) {
          for (idx i = 0; i < m; ++i) {
            double s = unit ? x[i] : t(i, i) * x[i];
            for (idx p = i + 1; p < m; ++p)
              s += (trans == Trans::No ? t(i, p) : t(p, i)) * x[p];
            x[i] = s;
          }
        } else {
          for (idx i = m - 1; i >= 0; --i) {
            double s = unit ? x[i] : t(i, i) * x[i];
            for (idx p = 0; p < i; ++p)
              s += (trans == Trans::No ? t(i, p) : t(p, i)) * x[p];
            x[i] = s;
          }
        }
      },
      {.grain = 4});
}

/// Unblocked op(Tkk) X = B solve for a small diagonal block.
void trsm_left_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t,
                         MatrixView b) {
  par::parallel_for(
      0, b.cols(),
      [&](par::index_t j) {
        trsv(uplo, trans, diag, t, b.col(static_cast<idx>(j)));
      },
      {.grain = 4});
}

/// Unblocked X * op(Tkk) = B solve for a small diagonal block. Each row of X
/// is an independent solve, so the row range is split across threads; every
/// row runs the same column-substitution arithmetic regardless of chunking.
void trsm_right_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t,
                          MatrixView b) {
  const idx n = t.rows();
  const bool unit = diag == Diag::Unit;
  par::parallel_for_chunks(
      0, b.rows(),
      [&](par::index_t lo_, par::index_t hi_) {
        const idx lo = static_cast<idx>(lo_);
        const idx len = static_cast<idx>(hi_) - lo;
        if (effective_upper(uplo, trans)) {
          for (idx j = 0; j < n; ++j) {
            for (idx i = 0; i < j; ++i) {
              const double tij = trans == Trans::No ? t(i, j) : t(j, i);
              axpy(len, -tij, b.col(i) + lo, b.col(j) + lo);
            }
            if (!unit) scal(len, 1.0 / t(j, j), b.col(j) + lo);
          }
        } else {
          for (idx j = n - 1; j >= 0; --j) {
            for (idx i = j + 1; i < n; ++i) {
              const double tij = trans == Trans::No ? t(i, j) : t(j, i);
              axpy(len, -tij, b.col(i) + lo, b.col(j) + lo);
            }
            if (!unit) scal(len, 1.0 / t(j, j), b.col(j) + lo);
          }
        }
      },
      {.grain = 64});
}

/// Unblocked B <- B * op(Tkk) for a small diagonal block (row-chunk
/// parallel, same independence argument as trsm_right_unblocked).
void trmm_right_unblocked(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t,
                          MatrixView b) {
  const idx n = t.rows();
  const bool unit = diag == Diag::Unit;
  par::parallel_for_chunks(
      0, b.rows(),
      [&](par::index_t lo_, par::index_t hi_) {
        const idx lo = static_cast<idx>(lo_);
        const idx len = static_cast<idx>(hi_) - lo;
        if (effective_upper(uplo, trans)) {
          // Column j reads columns < j: go right to left.
          for (idx j = n - 1; j >= 0; --j) {
            if (!unit) scal(len, t(j, j), b.col(j) + lo);
            for (idx i = 0; i < j; ++i) {
              const double tij = trans == Trans::No ? t(i, j) : t(j, i);
              axpy(len, tij, b.col(i) + lo, b.col(j) + lo);
            }
          }
        } else {
          // Column j reads columns > j: go left to right.
          for (idx j = 0; j < n; ++j) {
            if (!unit) scal(len, t(j, j), b.col(j) + lo);
            for (idx i = j + 1; i < n; ++i) {
              const double tij = trans == Trans::No ? t(i, j) : t(j, i);
              axpy(len, tij, b.col(i) + lo, b.col(j) + lo);
            }
          }
        }
      },
      {.grain = 64});
}

/// Scale all columns of b by alpha, columns in parallel.
void scale_cols(double alpha, MatrixView b) {
  if (alpha == 1.0) return;
  par::parallel_for(
      0, b.cols(),
      [&](par::index_t j) { scal(b.rows(), alpha, b.col(static_cast<idx>(j))); },
      {.grain = 64});
}

}  // namespace

void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  DQMC_CHECK(t.rows() == t.cols());
  if (side == Side::Left) {
    DQMC_CHECK(t.rows() == b.rows());
    const idx m = b.rows(), n = b.cols();
    scale_cols(alpha, b);

    // Blocked substitution: solve one kTriBlock diagonal block at a time,
    // then eliminate it from the remaining rows with a GEMM — the level-3
    // formulation that keeps trsm near gemm speed.
    if (effective_upper(uplo, trans)) {
      // Bottom-up.
      for (idx k = (m - 1) / kTriBlock * kTriBlock; k >= 0; k -= kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        trsm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb),
                            b.block(k, 0, nb, n));
        if (k > 0) {
          // rows [0, k) -= op(T)(0:k, k:k+nb) * X_k
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, t.block(0, k, k, nb),
                 b.block(k, 0, nb, n), 1.0, b.block(0, 0, k, n));
          } else {
            gemm(Trans::Yes, Trans::No, -1.0, t.block(k, 0, nb, k),
                 b.block(k, 0, nb, n), 1.0, b.block(0, 0, k, n));
          }
        }
        if (k == 0) break;  // idx is signed, but avoid wrap past zero
      }
    } else {
      // Top-down.
      for (idx k = 0; k < m; k += kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        trsm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb),
                            b.block(k, 0, nb, n));
        const idx rest = m - k - nb;
        if (rest > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, t.block(k + nb, k, rest, nb),
                 b.block(k, 0, nb, n), 1.0, b.block(k + nb, 0, rest, n));
          } else {
            gemm(Trans::Yes, Trans::No, -1.0, t.block(k, k + nb, nb, rest),
                 b.block(k, 0, nb, n), 1.0, b.block(k + nb, 0, rest, n));
          }
        }
      }
    }
    return;
  }

  // Right side: X * op(T) = alpha * B. Blocked like the left side: eliminate
  // the already-solved column blocks with a GEMM, then solve the diagonal
  // block with the unblocked kernel.
  DQMC_CHECK(t.rows() == b.cols());
  const idx n = t.rows();
  const idx m = b.rows();
  scale_cols(alpha, b);

  if (effective_upper(uplo, trans)) {
    // Left to right: column block k depends on solved blocks [0, k).
    for (idx k = 0; k < n; k += kTriBlock) {
      const idx nb = std::min(kTriBlock, n - k);
      MatrixView bk = b.block(0, k, m, nb);
      if (k > 0) {
        // B_k -= X(:, 0:k) * op(T)(0:k, k:k+nb)
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, -1.0, b.block(0, 0, m, k),
               t.block(0, k, k, nb), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, -1.0, b.block(0, 0, m, k),
               t.block(k, 0, nb, k), 1.0, bk);
        }
      }
      trsm_right_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
    }
  } else {
    // Effective factor lower: right to left.
    for (idx k = (n - 1) / kTriBlock * kTriBlock; k >= 0; k -= kTriBlock) {
      const idx nb = std::min(kTriBlock, n - k);
      MatrixView bk = b.block(0, k, m, nb);
      const idx rest = n - k - nb;
      if (rest > 0) {
        // B_k -= X(:, k+nb:n) * op(T)(k+nb:n, k:k+nb)
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, -1.0, b.block(0, k + nb, m, rest),
               t.block(k + nb, k, rest, nb), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, -1.0, b.block(0, k + nb, m, rest),
               t.block(k, k + nb, nb, rest), 1.0, bk);
        }
      }
      trsm_right_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
      if (k == 0) break;  // idx is signed, but avoid wrap past zero
    }
  }
}

void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b) {
  DQMC_CHECK(t.rows() == t.cols());
  const idx m = b.rows(), n = b.cols();

  if (side == Side::Left) {
    DQMC_CHECK(t.rows() == m);
    // Blocked in place: each block row is op(T)_kk * B_k (unblocked) plus a
    // GEMM against the not-yet-overwritten part of B.
    if (effective_upper(uplo, trans)) {
      // Top-down: row block k only reads rows >= k.
      for (idx k = 0; k < m; k += kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        MatrixView bk = b.block(k, 0, nb, n);
        trmm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
        const idx rest = m - k - nb;
        if (rest > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, 1.0, t.block(k, k + nb, nb, rest),
                 b.block(k + nb, 0, rest, n), 1.0, bk);
          } else {
            gemm(Trans::Yes, Trans::No, 1.0, t.block(k + nb, k, rest, nb),
                 b.block(k + nb, 0, rest, n), 1.0, bk);
          }
        }
      }
    } else {
      // Bottom-up: row block k only reads rows <= k.
      for (idx k = (m - 1) / kTriBlock * kTriBlock; k >= 0; k -= kTriBlock) {
        const idx nb = std::min(kTriBlock, m - k);
        MatrixView bk = b.block(k, 0, nb, n);
        trmm_left_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
        if (k > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, 1.0, t.block(k, 0, nb, k),
                 b.block(0, 0, k, n), 1.0, bk);
          } else {
            gemm(Trans::Yes, Trans::No, 1.0, t.block(0, k, k, nb),
                 b.block(0, 0, k, n), 1.0, bk);
          }
        }
        if (k == 0) break;
      }
    }
    scale_cols(alpha, b);
    return;
  }

  DQMC_CHECK(t.rows() == n);
  // Right side: B <- alpha * B * op(T), blocked like the left side. Each
  // column block is op(T)_kk applied in place (unblocked) plus a GEMM against
  // the not-yet-overwritten part of B; the traversal order guarantees every
  // GEMM input block is still original.
  if (effective_upper(uplo, trans)) {
    // Column block k reads input columns <= k: go right to left.
    for (idx k = (n - 1) / kTriBlock * kTriBlock; k >= 0; k -= kTriBlock) {
      const idx nb = std::min(kTriBlock, n - k);
      MatrixView bk = b.block(0, k, m, nb);
      trmm_right_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
      if (k > 0) {
        // B_k += B(:, 0:k) * op(T)(0:k, k:k+nb)
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, 1.0, b.block(0, 0, m, k),
               t.block(0, k, k, nb), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, 1.0, b.block(0, 0, m, k),
               t.block(k, 0, nb, k), 1.0, bk);
        }
      }
      if (k == 0) break;
    }
  } else {
    // Column block k reads input columns >= k: go left to right.
    for (idx k = 0; k < n; k += kTriBlock) {
      const idx nb = std::min(kTriBlock, n - k);
      MatrixView bk = b.block(0, k, m, nb);
      trmm_right_unblocked(uplo, trans, diag, t.block(k, k, nb, nb), bk);
      const idx rest = n - k - nb;
      if (rest > 0) {
        // B_k += B(:, k+nb:n) * op(T)(k+nb:n, k:k+nb)
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, 1.0, b.block(0, k + nb, m, rest),
               t.block(k + nb, k, rest, nb), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, 1.0, b.block(0, k + nb, m, rest),
               t.block(k, k + nb, nb, rest), 1.0, bk);
        }
      }
    }
  }
  scale_cols(alpha, b);
}

}  // namespace dqmc::linalg
