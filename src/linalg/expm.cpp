#include "linalg/expm.h"

#include <cmath>

#include "linalg/blas3.h"
#include "linalg/diag.h"

namespace dqmc::linalg {

namespace {

/// V diag(w) V^T given the eigenvector matrix and transformed eigenvalues.
Matrix assemble(const Matrix& v, const Vector& w) {
  Matrix scaled = v;  // scaled = V * diag(w)
  scale_cols(w.data(), scaled);
  return matmul(scaled, v, Trans::No, Trans::Yes);
}

}  // namespace

Matrix expm_symmetric(ConstMatrixView a, double t) {
  const SymmetricEigen eig = eig_sym(a);
  Vector w(eig.eigenvalues.size());
  for (idx i = 0; i < w.size(); ++i) w[i] = std::exp(t * eig.eigenvalues[i]);
  return assemble(eig.eigenvectors, w);
}

ExpmPair expm_symmetric_pair(ConstMatrixView a, double t) {
  const SymmetricEigen eig = eig_sym(a);
  Vector wp(eig.eigenvalues.size()), wn(eig.eigenvalues.size());
  for (idx i = 0; i < wp.size(); ++i) {
    wp[i] = std::exp(t * eig.eigenvalues[i]);
    wn[i] = std::exp(-t * eig.eigenvalues[i]);
  }
  return {assemble(eig.eigenvectors, wp), assemble(eig.eigenvectors, wn)};
}

Matrix spectral_function(const SymmetricEigen& eig, double (*f)(double)) {
  Vector w(eig.eigenvalues.size());
  for (idx i = 0; i < w.size(); ++i) w[i] = f(eig.eigenvalues[i]);
  return assemble(eig.eigenvectors, w);
}

}  // namespace dqmc::linalg
