// QR with column pivoting (DGEQP3/DGEQP2 analogue) and the pre-pivoting
// permutation of the paper's Algorithm 3.
//
// qrp_factor is the numerically stabilizing baseline of classic
// stratification: at every step it moves the remaining column of largest
// norm to the front, producing |R(0,0)| >= |R(1,1)| >= ... . The pivot
// search needs up-to-date partial column norms — the level-2 serialization
// the paper identifies as the multicore bottleneck.
//
// prepivot_permutation is the paper's replacement: ONE descending sort of
// the full column norms before an unpivoted blocked QR. It is exact when the
// matrix is already column-graded, which the stratification loop
// progressively enforces.
#pragma once

#include "linalg/matrix.h"
#include "linalg/permutation.h"
#include "linalg/qr.h"

namespace dqmc::linalg {

/// Result of a pivoted QR: A * P = Q * R with |R| diagonal non-increasing.
/// `jpvt` follows the Permutation convention: (A*P)(:,j) = A(:, jpvt[j]).
struct QRPFactorization {
  Matrix factors;  ///< R on/above the diagonal, Householder v's below
  Vector tau;
  Permutation jpvt;

  idx rows() const { return factors.rows(); }
  idx cols() const { return factors.cols(); }
};

/// Factor A*P = Q*R with greedy column pivoting, blocked DGEQP3-style:
/// pivot selection and the F-matrix updates are level-2 (the unavoidable
/// serialization the paper identifies), but the bulk trailing update is one
/// GEMM per panel (LAPACK dlaqps). Square matrices only.
QRPFactorization qrp_factor(Matrix a, idx panel = 32);

/// Fully unblocked variant (LAPACK dgeqp2): every trailing update is
/// level-2. Kept as the conservative reference implementation; handles
/// rectangular matrices.
QRPFactorization qrp_factor_unblocked(Matrix a);

/// The pre-pivoting step of Algorithm 3: permutation sorting the columns of
/// `a` by descending 2-norm (stable, so already-graded matrices keep their
/// order). Column norms are computed with the threaded kernel.
Permutation prepivot_permutation(ConstMatrixView a);

/// Convenience used by the stratification engine: gather columns of `a`
/// by `p` into `out` (out = a * P).
void gather_columns(ConstMatrixView a, const Permutation& p, MatrixView out);

}  // namespace dqmc::linalg
