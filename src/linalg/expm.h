// Matrix exponential of a symmetric matrix via its spectral decomposition.
//
// DQMC forms B = e^{-dtau K} once at setup (K is the symmetric hopping
// matrix); the spectral route is exact to rounding and also yields
// B^{-1} = e^{+dtau K} for free, which the wrapping update needs.
#pragma once

#include "linalg/eig_sym.h"
#include "linalg/matrix.h"

namespace dqmc::linalg {

/// e^{t*A} for symmetric A: V diag(e^{t w}) V^T.
Matrix expm_symmetric(ConstMatrixView a, double t = 1.0);

/// Both e^{t*A} and e^{-t*A} from one eigendecomposition.
struct ExpmPair {
  Matrix exp_pos;  ///< e^{+t A}
  Matrix exp_neg;  ///< e^{-t A}
};
ExpmPair expm_symmetric_pair(ConstMatrixView a, double t);

/// Rebuild f(A) = V diag(f(w)) V^T from a precomputed decomposition.
Matrix spectral_function(const SymmetricEigen& eig, double (*f)(double));

}  // namespace dqmc::linalg
