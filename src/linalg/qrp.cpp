#include "linalg/qrp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "linalg/blas1.h"
#include "linalg/blas2.h"
#include "linalg/blas3.h"
#include "linalg/householder.h"
#include "linalg/norms.h"

namespace dqmc::linalg {

namespace {

/// Threshold below which a downdated partial norm cannot be trusted
/// (LAPACK's tol3z).
const double kTol3z = std::sqrt(std::numeric_limits<double>::epsilon());

}  // namespace

QRPFactorization qrp_factor_unblocked(Matrix a) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  QRPFactorization f{std::move(a), Vector(kmax), Permutation(n)};
  Matrix& A = f.factors;

  // Partial (vn1) and reference (vn2) column norms for the downdate
  // safeguard, cf. LAPACK dlaqp2.
  Vector vn1 = column_norms(A);
  Vector vn2 = vn1;
  std::vector<double> work(static_cast<std::size_t>(n));

  for (idx k = 0; k < kmax; ++k) {
    // Pivot: remaining column with the largest partial norm.
    idx pvt = k;
    for (idx j = k + 1; j < n; ++j)
      if (vn1[j] > vn1[pvt]) pvt = j;

    if (pvt != k) {
      swap(m, A.col(pvt), 1, A.col(k), 1);
      std::swap(f.jpvt[pvt], f.jpvt[k]);
      vn1[pvt] = vn1[k];
      vn2[pvt] = vn2[k];
    }

    f.tau[k] = make_householder(m - k, &A(k, k));
    if (k + 1 < n) {
      apply_householder_left(f.tau[k], &A(k, k),
                             A.block(k, k + 1, m - k, n - k - 1), work.data());
    }

    // Downdate the partial norms of the trailing columns; recompute when
    // cancellation makes the running value untrustworthy.
    for (idx j = k + 1; j < n; ++j) {
      if (vn1[j] == 0.0) continue;
      double temp = std::fabs(A(k, j)) / vn1[j];
      temp = std::max(0.0, (1.0 + temp) * (1.0 - temp));
      const double ratio = vn1[j] / vn2[j];
      const double temp2 = temp * ratio * ratio;
      if (temp2 <= kTol3z) {
        if (k + 1 < m) {
          vn1[j] = nrm2(m - k - 1, &A(k + 1, j));
          vn2[j] = vn1[j];
        } else {
          vn1[j] = 0.0;
          vn2[j] = 0.0;
        }
      } else {
        vn1[j] *= std::sqrt(temp);
      }
    }
  }
  return f;
}

QRPFactorization qrp_factor(Matrix a, idx panel) {
  DQMC_CHECK_MSG(a.rows() == a.cols(),
                 "blocked qrp_factor expects a square matrix; use "
                 "qrp_factor_unblocked for rectangular inputs");
  DQMC_CHECK(panel >= 1);
  const idx n = a.rows();
  QRPFactorization f{std::move(a), Vector(n), Permutation(n)};
  Matrix& A = f.factors;

  Vector vn1 = column_norms(A);
  Vector vn2 = vn1;

  // Per-panel auxiliary F (LAPACK dlaqps): row l of F holds the update
  // coefficients of global column p0+l against the panel's reflectors, so
  // trailing columns can stay stale until the end-of-panel GEMM.
  Matrix fmat;            // (n - p0) x nb
  std::vector<double> w;  // scratch for V^T v

  for (idx p0 = 0; p0 < n; p0 += panel) {
    const idx nb = std::min(panel, n - p0);
    const idx ncols = n - p0;  // trailing columns including the panel
    fmat.resize(ncols, nb);
    fmat.fill(0.0);
    w.assign(static_cast<std::size_t>(nb), 0.0);

    for (idx j = 0; j < nb; ++j) {
      const idx jj = p0 + j;  // global pivot column/row

      // 1) Pivot among the not-yet-factored columns.
      idx pvt = jj;
      for (idx c = jj + 1; c < n; ++c)
        if (vn1[c] > vn1[pvt]) pvt = c;
      if (pvt != jj) {
        swap(n, A.col(pvt), 1, A.col(jj), 1);
        swap(nb, &fmat(pvt - p0, 0), fmat.ld(), &fmat(j, 0), fmat.ld());
        std::swap(f.jpvt[pvt], f.jpvt[jj]);
        vn1[pvt] = vn1[jj];
        vn2[pvt] = vn2[jj];
      }

      // 2) Bring column jj up to date below the finalized rows: apply the j
      //    pending reflector tails, A(jj:n, jj) -= V(jj:n, 0:j) F(j, 0:j)^T
      //    (rows p0..jj-1 were finalized by step 5 of earlier iterations).
      for (idx l = 0; l < j; ++l) {
        axpy(n - jj, -fmat(j, l), &A(jj, p0 + l), &A(jj, jj));
      }

      // 3) Householder annihilating A(jj+1:n, jj).
      f.tau[jj] = make_householder(n - jj, &A(jj, jj));

      // 4) F(:, j) = tau * (A_stale^T v - F V^T v) over the trailing
      //    columns (rows j+1.. of F). The A^T v GEMV is the level-2 pivot
      //    bookkeeping that keeps DGEQP3 below DGEQRF (paper Fig. 1).
      if (f.tau[jj] != 0.0 && j + 1 < ncols) {
        const double tau = f.tau[jj];
        // v = [1, A(jj+1:n, jj)]; w = V(jj:n, 0:j)^T v.
        for (idx l = 0; l < j; ++l) {
          w[static_cast<std::size_t>(l)] =
              A(jj, p0 + l) + dot(n - jj - 1, &A(jj + 1, p0 + l), &A(jj + 1, jj));
        }
        for (idx c = j + 1; c < ncols; ++c) {
          double s = A(jj, p0 + c) +
                     dot(n - jj - 1, &A(jj + 1, p0 + c), &A(jj + 1, jj));
          for (idx l = 0; l < j; ++l)
            s -= fmat(c, l) * w[static_cast<std::size_t>(l)];
          fmat(c, j) = tau * s;
        }
      }

      // 5) Update the pivot row across the trailing columns with all j+1
      //    reflectors (later reflectors are zero on this row, so the row is
      //    final after this):
      //    A(jj, jj+1:n) -= V(jj, 0:j+1) * F(j+1:, 0:j+1)^T,
      //    with V(jj, j) = 1 (unit diagonal of the reflector).
      for (idx c = j + 1; c < ncols; ++c) {
        double upd = fmat(c, j);  // l = j term, V(jj, j) = 1
        for (idx l = 0; l < j; ++l) upd += A(jj, p0 + l) * fmat(c, l);
        A(jj, p0 + c) -= upd;
      }

      // 6) Norm downdates using the (now final) pivot-row entries.
      for (idx c = jj + 1; c < n; ++c) {
        if (vn1[c] == 0.0) continue;
        double temp = std::fabs(A(jj, c)) / vn1[c];
        temp = std::max(0.0, (1.0 + temp) * (1.0 - temp));
        const double ratio = vn1[c] / vn2[c];
        if (temp * ratio * ratio <= kTol3z) {
          // Recompute from the TRUE column: stale A minus pending updates.
          const idx rows = n - jj - 1;
          if (rows <= 0) {
            vn1[c] = vn2[c] = 0.0;
            continue;
          }
          std::vector<double> col(static_cast<std::size_t>(rows));
          for (idx r = 0; r < rows; ++r) col[static_cast<std::size_t>(r)] = A(jj + 1 + r, c);
          for (idx l = 0; l <= j; ++l) {
            axpy(rows, -fmat(c - p0, l), &A(jj + 1, p0 + l), col.data());
          }
          vn1[c] = nrm2(rows, col.data());
          vn2[c] = vn1[c];
        } else {
          vn1[c] *= std::sqrt(temp);
        }
      }
    }

    // End of panel: one GEMM applies every deferred update to the rows
    // BELOW the panel (rows p0..p0+nb of the trailing columns were already
    // finalized row-by-row in step 5):
    // A(p0+nb:n, p0+nb:n) -= V(p0+nb:n, 0:nb) * F(nb:, 0:nb)^T.
    const idx rest = n - p0 - nb;
    if (rest > 0) {
      gemm(Trans::No, Trans::Yes, -1.0, A.block(p0 + nb, p0, rest, nb),
           fmat.block(nb, 0, rest, nb), 1.0,
           A.block(p0 + nb, p0 + nb, rest, rest));
    }
  }
  return f;
}

Permutation prepivot_permutation(ConstMatrixView a) {
  Vector norms = column_norms(a);
  std::vector<idx> order(static_cast<std::size_t>(a.cols()));
  std::iota(order.begin(), order.end(), idx{0});
  std::stable_sort(order.begin(), order.end(), [&](idx x, idx y) {
    return norms[x] > norms[y];
  });
  return Permutation(std::move(order));
}

void gather_columns(ConstMatrixView a, const Permutation& p, MatrixView out) {
  apply_permutation(a, p, out);
}

}  // namespace dqmc::linalg
