// Blocked Householder QR (DGEQRF / DORGQR / DORMQR analogues).
//
// This is the unpivoted, fully level-3 decomposition that the pre-pivoted
// stratification (Algorithm 3 of the paper) substitutes for QRP: the panel
// factorization is level-2 but every trailing update is a compact-WY GEMM.
#pragma once

#include "linalg/householder.h"
#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Result of a QR factorization: `factors` holds R on and above the diagonal
/// and the Householder vectors below it; `tau` the reflector scalings.
struct QRFactorization {
  Matrix factors;
  Vector tau;

  idx rows() const { return factors.rows(); }
  idx cols() const { return factors.cols(); }
};

/// Default panel width for the blocked algorithm.
inline constexpr idx kQrBlock = 16;

/// Factor A = Q R (A consumed by value; move in to avoid the copy).
QRFactorization qr_factor(Matrix a, idx block = kQrBlock);

/// In-place variant: on return `a` has the factored layout and tau[i] the
/// reflector scalings (tau must have min(m,n) entries).
void qr_factor_inplace(MatrixView a, double* tau, idx block = kQrBlock);

/// Extract the upper-triangular R (min(m,n) x n).
Matrix qr_r(const QRFactorization& f);

/// Form the m x m orthogonal factor Q explicitly.
Matrix qr_q(const QRFactorization& f, idx block = kQrBlock);

/// C <- op(Q) * C without forming Q (DORMQR, left side).
void qr_apply_q_left(const QRFactorization& f, Trans trans, MatrixView c,
                     idx block = kQrBlock);

}  // namespace dqmc::linalg
