#include "linalg/gemm_kernel.h"

#include <algorithm>
#include <cstring>

namespace dqmc::linalg::detail {

namespace {

/// Depth of one tile in the blocked-transpose pack paths. The transposed
/// operand orientations read the source with stride ld; transposing one
/// kPackTile-deep tile at a time turns those into unit-stride column runs
/// while the (kMR/kNR)-strided destination tile stays cache-resident.
constexpr idx kPackTile = 64;

}  // namespace

void pack_a(ConstMatrixView a, bool trans, idx i0, idx p0, idx mc, idx kc,
            double* buf) {
  // Layout: for each strip of kMR rows, kc columns of kMR contiguous values.
  for (idx is = 0; is < mc; is += kMR) {
    const idx h = std::min(kMR, mc - is);
    if (!trans) {
      for (idx p = 0; p < kc; ++p) {
        double* dst = buf + is * kc + p * kMR;
        const double* src = &a(i0 + is, p0 + p);
        for (idx r = 0; r < h; ++r) dst[r] = src[r];
        for (idx r = h; r < kMR; ++r) dst[r] = 0.0;
      }
    } else {
      // A^T strip rows come from A columns: run the column index r outer
      // inside each p-tile so the source is read in unit-stride runs down
      // column i0+is+r instead of one ld-strided element per p.
      for (idx pt = 0; pt < kc; pt += kPackTile) {
        const idx pn = std::min(kPackTile, kc - pt);
        for (idx r = 0; r < h; ++r) {
          const double* src = &a(p0 + pt, i0 + is + r);
          double* dst = buf + is * kc + pt * kMR + r;
          for (idx p = 0; p < pn; ++p) dst[p * kMR] = src[p];
        }
      }
      if (h < kMR) {
        for (idx p = 0; p < kc; ++p) {
          double* dst = buf + is * kc + p * kMR;
          for (idx r = h; r < kMR; ++r) dst[r] = 0.0;
        }
      }
    }
  }
}

void pack_b(ConstMatrixView b, bool trans, idx p0, idx j0, idx kc, idx nc,
            double* buf) {
  // Layout: for each strip of kNR columns, kc rows of kNR contiguous values.
  for (idx js = 0; js < nc; js += kNR) {
    const idx w = std::min(kNR, nc - js);
    if (trans) {
      for (idx p = 0; p < kc; ++p) {
        double* dst = buf + js * kc + p * kNR;
        const double* src = &b(j0 + js, p0 + p);
        for (idx c = 0; c < w; ++c) dst[c] = src[c];
        for (idx c = w; c < kNR; ++c) dst[c] = 0.0;
      }
    } else {
      // Non-transposed B strips gather one element per source column when
      // walked p-outer; the same blocked transpose as pack_a keeps the
      // source reads unit-stride down each column j0+js+c.
      for (idx pt = 0; pt < kc; pt += kPackTile) {
        const idx pn = std::min(kPackTile, kc - pt);
        for (idx c = 0; c < w; ++c) {
          const double* src = &b(p0 + pt, j0 + js + c);
          double* dst = buf + js * kc + pt * kNR + c;
          for (idx p = 0; p < pn; ++p) dst[p * kNR] = src[p];
        }
      }
      if (w < kNR) {
        for (idx p = 0; p < kc; ++p) {
          double* dst = buf + js * kc + p * kNR;
          for (idx c = w; c < kNR; ++c) dst[c] = 0.0;
        }
      }
    }
  }
}

namespace {

#if defined(__GNUC__) && !defined(DQMC_NO_VECTOR_EXT)

/// One packed A-strip row as a GCC vector: kMR doubles, element alignment
/// only (the alignas(8) keeps loads/stores legal at any address, and the
/// packed buffers are 64-byte aligned anyway).
typedef double v8df __attribute__((vector_size(kMR * sizeof(double)), aligned(8)));

/// Full-tile kernel using GCC vector extensions: the kNR accumulators each
/// hold one kMR-wide register, giving the FMA throughput a plain scalar
/// loop does not reach (measured ~11x on AVX-512).
inline void kernel_full(idx kc, double alpha, const double* __restrict a,
                        const double* __restrict b, double beta,
                        double* __restrict c, idx ldc) {
  v8df acc0{}, acc1{}, acc2{}, acc3{}, acc4{}, acc5{};
  static_assert(kNR == 6, "accumulator count is tied to kNR");
  for (idx p = 0; p < kc; ++p) {
    const v8df av = *reinterpret_cast<const v8df*>(a + p * kMR);
    const double* bp = b + p * kNR;
    acc0 += av * bp[0];
    acc1 += av * bp[1];
    acc2 += av * bp[2];
    acc3 += av * bp[3];
    acc4 += av * bp[4];
    acc5 += av * bp[5];
  }
  const v8df accs[kNR] = {acc0, acc1, acc2, acc3, acc4, acc5};
  for (idx j = 0; j < kNR; ++j) {
    v8df* cj = reinterpret_cast<v8df*>(c + j * ldc);
    if (beta == 0.0) {
      *cj = alpha * accs[j];
    } else {
      // beta is either 0 or 1 in the blocked driver; general beta is applied
      // by the caller before the k-loop.
      *cj += alpha * accs[j];
    }
  }
}

#else  // portable scalar fallback

inline void kernel_full(idx kc, double alpha, const double* __restrict a,
                        const double* __restrict b, double beta,
                        double* __restrict c, idx ldc) {
  double acc[kNR][kMR] = {};
  for (idx p = 0; p < kc; ++p) {
    const double* ap = a + p * kMR;
    const double* bp = b + p * kNR;
    for (idx j = 0; j < kNR; ++j) {
      const double bv = bp[j];
      for (idx i = 0; i < kMR; ++i) acc[j][i] += ap[i] * bv;
    }
  }
  for (idx j = 0; j < kNR; ++j) {
    double* cj = c + j * ldc;
    if (beta == 0.0) {
      for (idx i = 0; i < kMR; ++i) cj[i] = alpha * acc[j][i];
    } else {
      for (idx i = 0; i < kMR; ++i) cj[i] += alpha * acc[j][i];
    }
  }
}

#endif

}  // namespace

void micro_kernel(idx kc, double alpha, const double* a, const double* b,
                  double beta, double* c, idx ldc, idx mr, idx nr) {
  if (mr == kMR && nr == kNR) {
    kernel_full(kc, alpha, a, b, beta, c, ldc);
    return;
  }
  // Edge tile: compute into a local full tile, then copy the valid part.
  double tile[kMR * kNR];
  for (idx i = 0; i < kMR * kNR; ++i) tile[i] = 0.0;
  kernel_full(kc, alpha, a, b, 0.0, tile, kMR);
  for (idx j = 0; j < nr; ++j) {
    double* cj = c + j * ldc;
    const double* tj = tile + j * kMR;
    if (beta == 0.0) {
      for (idx i = 0; i < mr; ++i) cj[i] = tj[i];
    } else {
      for (idx i = 0; i < mr; ++i) cj[i] += tj[i];
    }
  }
}

}  // namespace dqmc::linalg::detail
