// Level-1 BLAS-style vector kernels (double precision, unit or general stride).
//
// These are the building blocks of the Householder code path; nrm2 uses the
// LAPACK-style scaled accumulation so graded columns spanning many orders of
// magnitude (the whole point of stratification) neither overflow nor
// underflow.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// sum_i x[i*incx] * y[i*incy]
double dot(idx n, const double* x, idx incx, const double* y, idx incy);
/// Unit-stride convenience overload.
double dot(idx n, const double* x, const double* y);

/// Euclidean norm with overflow/underflow-safe scaling.
double nrm2(idx n, const double* x, idx incx = 1);

/// sum of |x[i]|
double asum(idx n, const double* x, idx incx = 1);

/// x <- alpha * x
void scal(idx n, double alpha, double* x, idx incx = 1);

/// y <- alpha * x + y
void axpy(idx n, double alpha, const double* x, idx incx, double* y, idx incy);
void axpy(idx n, double alpha, const double* x, double* y);

/// Exchange x and y.
void swap(idx n, double* x, idx incx, double* y, idx incy);

/// Index of the element with the largest |x[i]| (0 when n <= 0).
idx iamax(idx n, const double* x, idx incx = 1);

}  // namespace dqmc::linalg
