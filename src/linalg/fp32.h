// fp32 variants of the wrap-path hot kernels (gemm / gemm_batched packing,
// checkerboard apply, diagonal scalings).
//
// The precision policy (docs/STABILITY.md) runs the per-slice wrapping
// updates in single precision and lets the stabilization interval's fp64
// stratified recompute absorb the rounding. These kernels implement that
// contract on DOUBLE storage: every input element is rounded to IEEE float
// on read, the whole arithmetic chain runs in float, and the result widens
// back on store. Storage stays double so the rest of the pipeline (graded
// accumulation, measurements, checkpoints) is untouched, and the host and
// gpusim backends execute the SAME function — cross-backend trajectories
// remain bitwise identical in fp32 mode too.
//
// Determinism: each output element's float chain is a fixed serial
// reduction (k-loop order for GEMM, group order for the checkerboard
// replay), independent of how threads chunk the columns — the same
// contract the fp64 kernels honor.
#pragma once

#include <vector>

#include "linalg/blas3.h"
#include "linalg/cb_operator.h"
#include "linalg/matrix.h"

namespace dqmc::linalg {

/// C <- alpha * op(A) * op(B) + beta * C, computed in float (round on
/// read, widen on store). op(A)/op(B) are packed into float buffers once,
/// then columns of C are produced in parallel with a serial k-loop each.
void gemm_fp32(Trans transa, Trans transb, double alpha, ConstMatrixView a,
               ConstMatrixView b, double beta, MatrixView c);

/// Batched fp32 GEMM with the gemm_batched shared-operand convention: an
/// `a` (resp. `b`) of size 1 with count > 1 is one shared operand, packed
/// to float ONCE and streamed by every item. Item results are bitwise
/// identical to gemm_fp32 on the same operands at any worker count.
void gemm_batched_fp32(Trans transa, Trans transb, double alpha,
                       const std::vector<ConstMatrixView>& a,
                       const std::vector<ConstMatrixView>& b, double beta,
                       const std::vector<MatrixView>& c);

/// Structured checkerboard apply in float: same group replay as cb_apply
/// with every 2x2 rotation evaluated in float.
void cb_apply_fp32(const CbOperator& op, CbSide side, bool inverse,
                   MatrixView x);

/// A <- diag(d) * A in float.
void scale_rows_fp32(const double* d, MatrixView a);

/// A <- A * diag(d) in float.
void scale_cols_fp32(const double* d, MatrixView a);

/// A <- diag(r) * A * diag(c)^{-1} in float (the fused wrap scaling).
void scale_rows_cols_inv_fp32(const double* r, const double* c, MatrixView a);

/// out <- diag(d) * A in float, leaving A untouched.
void scale_rows_into_fp32(const double* d, ConstMatrixView a, MatrixView out);

}  // namespace dqmc::linalg
