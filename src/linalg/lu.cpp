#include "linalg/lu.h"

#include <algorithm>
#include <cmath>

#include "linalg/blas1.h"

namespace dqmc::linalg {

namespace {

/// Unblocked right-looking panel factorization on the m x nb panel starting
/// at global step k0. Pivot rows are searched over the whole panel height.
void lu_panel(MatrixView a, idx k0, idx nb, std::vector<idx>& piv, int& sign) {
  const idx m = a.rows();
  for (idx k = k0; k < k0 + nb; ++k) {
    // Partial pivot within column k, rows k..m.
    idx p = k + iamax(m - k, &a(k, k), 1);
    piv[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      swap(a.cols(), &a(k, 0), a.ld(), &a(p, 0), a.ld());
      sign = -sign;
    }
    const double pivot = a(k, k);
    if (pivot == 0.0) {
      throw NumericalError("lu_factor: exact zero pivot at step " +
                           std::to_string(k));
    }
    if (k + 1 < m) {
      scal(m - k - 1, 1.0 / pivot, &a(k + 1, k));
      // Rank-1 update restricted to the panel columns.
      for (idx j = k + 1; j < k0 + nb; ++j) {
        axpy(m - k - 1, -a(k, j), &a(k + 1, k), &a(k + 1, j));
      }
    }
  }
}

}  // namespace

LUFactorization lu_factor(Matrix a, idx block) {
  DQMC_CHECK_MSG(a.square(), "lu_factor requires a square matrix");
  const idx n = a.rows();
  LUFactorization f{std::move(a), std::vector<idx>(static_cast<std::size_t>(n)), 1};
  Matrix& A = f.factors;

  for (idx k0 = 0; k0 < n; k0 += block) {
    const idx nb = std::min(block, n - k0);
    // Factor panel (columns k0..k0+nb) over rows k0..n; row swaps are applied
    // across the full width inside lu_panel.
    lu_panel(A, k0, nb, f.piv, f.pivot_sign);

    if (k0 + nb < n) {
      // U12 = L11^{-1} A12 (unit lower triangular solve), then trailing
      // Schur complement A22 -= L21 U12 via GEMM — the level-3 bulk.
      ConstMatrixView l11 = A.block(k0, k0, nb, nb);
      MatrixView a12 = A.block(k0, k0 + nb, nb, n - k0 - nb);
      trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, l11, a12);
      if (k0 + nb < n) {
        ConstMatrixView l21 = A.block(k0 + nb, k0, n - k0 - nb, nb);
        MatrixView a22 = A.block(k0 + nb, k0 + nb, n - k0 - nb, n - k0 - nb);
        gemm(Trans::No, Trans::No, -1.0, l21, a12, 1.0, a22);
      }
    }
  }
  return f;
}

void lu_solve(const LUFactorization& f, Trans trans, MatrixView b) {
  const idx n = f.n();
  DQMC_CHECK(b.rows() == n);
  if (trans == Trans::No) {
    // P A = L U  =>  A X = B  <=>  L U X = P B.
    for (idx k = 0; k < n; ++k) {
      const idx p = f.piv[static_cast<std::size_t>(k)];
      if (p != k) swap(b.cols(), &b(k, 0), b.ld(), &b(p, 0), b.ld());
    }
    trsm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, f.factors, b);
    trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, f.factors, b);
  } else {
    // A^T X = B  <=>  U^T L^T P X = B: solve then un-permute.
    trsm(Side::Left, UpLo::Upper, Trans::Yes, Diag::NonUnit, 1.0, f.factors, b);
    trsm(Side::Left, UpLo::Lower, Trans::Yes, Diag::Unit, 1.0, f.factors, b);
    for (idx k = n - 1; k >= 0; --k) {
      const idx p = f.piv[static_cast<std::size_t>(k)];
      if (p != k) swap(b.cols(), &b(k, 0), b.ld(), &b(p, 0), b.ld());
    }
  }
}

Matrix lu_inverse(const LUFactorization& f) {
  Matrix inv = Matrix::identity(f.n());
  lu_solve(f, Trans::No, inv);
  return inv;
}

Matrix inverse(Matrix a) { return lu_inverse(lu_factor(std::move(a))); }

LogDet lu_logdet(const LUFactorization& f) {
  double log_abs = 0.0;
  int sign = f.pivot_sign;
  for (idx i = 0; i < f.n(); ++i) {
    const double u = f.factors(i, i);
    log_abs += std::log(std::fabs(u));
    if (u < 0.0) sign = -sign;
  }
  return {log_abs, sign};
}

}  // namespace dqmc::linalg
