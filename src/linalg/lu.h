// LU factorization with partial pivoting (DGETRF analogue) plus solves,
// explicit inversion, and log-determinant — the closing step of the
// stratified Green's function evaluation solves with
// (T^{-T} Q^T D_b + D_s)^T via this module.
#pragma once

#include <vector>

#include "linalg/blas3.h"
#include "linalg/matrix.h"

namespace dqmc::linalg {

/// P * A = L * U with unit lower L and row-pivot sequence `piv`
/// (piv[k] = row swapped with k at step k, LAPACK ipiv zero-based).
struct LUFactorization {
  Matrix factors;
  std::vector<idx> piv;
  /// +1 / -1: parity of the row swaps (for determinant sign).
  int pivot_sign = 1;

  idx n() const { return factors.rows(); }
};

/// Factor a square matrix; throws NumericalError on an exactly zero pivot.
LUFactorization lu_factor(Matrix a, idx block = 32);

/// Solve op(A) X = B in place given the factorization of A.
void lu_solve(const LUFactorization& f, Trans trans, MatrixView b);

/// Explicit inverse (used only where the algorithm genuinely needs the full
/// matrix, e.g. forming the Green's function itself).
Matrix lu_inverse(const LUFactorization& f);

/// Convenience: inverse of `a`.
Matrix inverse(Matrix a);

/// log|det A| and sign(det A) from the factorization.
struct LogDet {
  double log_abs;
  int sign;
};
LogDet lu_logdet(const LUFactorization& f);

}  // namespace dqmc::linalg
