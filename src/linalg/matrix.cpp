#include "linalg/matrix.h"

#include <algorithm>
#include <cstring>

namespace dqmc::linalg {

Matrix::Matrix(idx rows, idx cols, std::initializer_list<double> row_major)
    : Matrix(rows, cols) {
  DQMC_CHECK_MSG(static_cast<idx>(row_major.size()) == rows * cols,
                 "initializer size must equal rows*cols");
  auto it = row_major.begin();
  for (idx i = 0; i < rows; ++i)
    for (idx j = 0; j < cols; ++j) (*this)(i, j) = *it++;
}

Matrix::Matrix(const Matrix& o) : Matrix(o.rows_, o.cols_) {
  if (!empty()) std::memcpy(data(), o.data(), sizeof(double) * size());
}

Matrix& Matrix::operator=(const Matrix& o) {
  if (this != &o) {
    resize(o.rows_, o.cols_);
    if (!empty()) std::memcpy(data(), o.data(), sizeof(double) * size());
  }
  return *this;
}

Matrix Matrix::zero(idx rows, idx cols) {
  Matrix m(rows, cols);
  m.fill(0.0);
  return m;
}

Matrix Matrix::identity(idx n) {
  Matrix m = zero(n, n);
  for (idx i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::copy_of(ConstMatrixView v) {
  Matrix m(v.rows(), v.cols());
  copy(v, m);
  return m;
}

void Matrix::fill(double value) { std::fill(data(), data() + size(), value); }

void Matrix::set_identity() {
  DQMC_CHECK(square());
  fill(0.0);
  for (idx i = 0; i < rows_; ++i) (*this)(i, i) = 1.0;
}

void Matrix::resize(idx rows, idx cols) {
  if (rows == rows_ && cols == cols_) return;
  buf_ = AlignedBuffer<double>(check_size(rows, cols));
  rows_ = rows;
  cols_ = cols;
}

Vector::Vector(std::initializer_list<double> values)
    : Vector(static_cast<idx>(values.size())) {
  std::copy(values.begin(), values.end(), data());
}

Vector::Vector(const Vector& o) : Vector(o.n_) {
  if (n_) std::memcpy(data(), o.data(), sizeof(double) * static_cast<std::size_t>(n_));
}

Vector& Vector::operator=(const Vector& o) {
  if (this != &o) {
    resize(o.n_);
    if (n_) std::memcpy(data(), o.data(), sizeof(double) * static_cast<std::size_t>(n_));
  }
  return *this;
}

Vector Vector::zero(idx n) { return constant(n, 0.0); }

Vector Vector::constant(idx n, double value) {
  Vector v(n);
  v.fill(value);
  return v;
}

void Vector::fill(double value) { std::fill(begin(), end(), value); }

void Vector::resize(idx n) {
  if (n == n_) return;
  buf_ = AlignedBuffer<double>(check_size(n));
  n_ = n;
}

void copy(ConstMatrixView src, MatrixView dst) {
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  if (src.empty()) return;
  if (src.contiguous() && dst.contiguous()) {
    std::memcpy(dst.data(), src.data(),
                sizeof(double) * static_cast<std::size_t>(src.rows()) *
                    static_cast<std::size_t>(src.cols()));
    return;
  }
  for (idx j = 0; j < src.cols(); ++j) {
    std::memcpy(dst.col(j), src.col(j),
                sizeof(double) * static_cast<std::size_t>(src.rows()));
  }
}

}  // namespace dqmc::linalg
