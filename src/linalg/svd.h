// Singular value decomposition by one-sided (Hestenes) Jacobi rotations.
//
// The SVD-stack stabilizer (dqmc/svd_stack.h) factors each accumulated
// chain step C = U diag(sigma) V^T. One-sided Jacobi is the right tool for
// that workload: C is always a well-conditioned matrix times a graded
// column scaling, exactly the class for which Jacobi computes every
// singular value to high RELATIVE accuracy (Demmel & Veselic) — the tiny
// sigmas a graded chain lives on survive, where a bidiagonalization-based
// solver would smear them with absolute-error terms of order ||C||.
//
// The sweep order is cyclic and strictly serial, so the factorization is
// bitwise deterministic at any thread budget (the determinism contract of
// the rest of the hot path). Column norms use scaled sums of squares, so
// chains whose d-scales square past DBL_MAX still factor correctly.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// A = u * diag(sigma) * vt with u having orthonormal columns, sigma
/// positive and sorted descending, and vt orthogonal.
struct SVDecomposition {
  Matrix u;      ///< rows(a) x cols(a), orthonormal columns
  Vector sigma;  ///< cols(a), positive, descending
  Matrix vt;     ///< cols(a) x cols(a), orthogonal
};

/// Factor a (rows >= cols required) by cyclic one-sided Jacobi. Throws
/// NumericalError when the sweeps fail to converge or when a singular value
/// is exactly zero / non-finite (a singular chain, same contract as the
/// graded accumulator). `tol` bounds the cosine of the angle between any
/// column pair at convergence.
SVDecomposition svd(ConstMatrixView a, double tol = 1e-13,
                    int max_sweeps = 60);

}  // namespace dqmc::linalg
