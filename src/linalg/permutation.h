// Column permutations for the pivoted / pre-pivoted QR paths.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// A permutation p of {0..n-1}. Applying "forward" maps column j of the
/// source to column j of the destination taken from source column p[j]
/// (i.e. dst(:,j) = src(:,p[j]) — the LAPACK jpvt convention, so
/// A * P has columns A(:,p[0]), A(:,p[1]), ...).
class Permutation {
 public:
  Permutation() = default;
  explicit Permutation(idx n);
  explicit Permutation(std::vector<idx> map);

  idx size() const { return static_cast<idx>(map_.size()); }
  idx operator[](idx j) const { return map_[static_cast<std::size_t>(j)]; }
  idx& operator[](idx j) { return map_[static_cast<std::size_t>(j)]; }
  const std::vector<idx>& map() const { return map_; }

  void set_identity();
  bool is_identity() const;
  /// Number of positions where p[j] != j (a cheap "how much pivoting
  /// actually happened" diagnostic used by the pre-pivoting study).
  idx displacement() const;

  /// Fraction of adjacent source columns (j, j+1) whose relative order this
  /// permutation preserves: 1 for the identity, ~0.5 for a random shuffle,
  /// 0 for a full reversal. Viewing p as the sort permutation of column
  /// norms, this measures how sorted the columns already were — the
  /// premise of the paper's pre-pivoted QR (Algorithm 3). Returns 1 when
  /// size() < 2.
  double presorted_fraction() const;

  /// Inverse permutation q with q[p[j]] = j.
  Permutation inverse() const;

  /// Validate that map() is a bijection on {0..n-1}; throws otherwise.
  void check_valid() const;

 private:
  std::vector<idx> map_;
};

/// dst(:,j) = src(:,p[j])  — form A*P (gathers columns).
void apply_permutation(ConstMatrixView src, const Permutation& p,
                       MatrixView dst);

/// dst(:,p[j]) = src(:,j)  — form A*P^T (scatters columns).
void apply_permutation_transpose(ConstMatrixView src, const Permutation& p,
                                 MatrixView dst);

/// In-place x <- P^T x on a vector of values (x[p[j]] receives old x[j]).
void permute_vector_transpose(const Permutation& p, double* x);

/// In-place gather x <- (x[p[0]], x[p[1]], ...).
void permute_vector(const Permutation& p, double* x);

}  // namespace dqmc::linalg
