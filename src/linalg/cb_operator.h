// Structured checkerboard (split-bond) operator and its in-place appliers.
//
// A CbOperator represents B = diag_scale * G_{m-1} * ... * G_1 * G_0 where
// each group factor G_g is a product of independent 2x2 hyperbolic
// rotations [[cosh, sinh], [sinh, cosh]] over a set of index-disjoint bonds
// (a graph edge coloring of a lattice's hopping bonds). Applying B to an
// n x c matrix costs O(bonds * c) instead of the O(n^2 * c) of a dense
// GEMM — the large-lattice route for the DQMC propagator e^{-dtau K}.
//
// The struct lives in linalg (not hubbard) so the compute backends can
// consume it without depending on the model layer: hubbard builds the bond
// groups from a Lattice, backend replays them through cb_apply.
//
// Every variant's per-element arithmetic is a fixed chain independent of
// how the columns (left applies) or rows (right applies) are chunked over
// threads, so results are BITWISE identical for any thread budget — the
// same determinism contract the rest of the hot path honors.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// One bond of a group: indices of the two coupled sites and the
/// cosh/sinh(dtau * hop) entries of its 2x2 rotation.
struct CbBond {
  idx a, b;
  double cosh_t, sinh_t;
};

/// Which side of the operand the operator applies on.
enum class CbSide { kLeft, kRight };

struct CbOperator {
  /// Operator dimension (rows for left applies, cols for right applies).
  idx n = 0;
  /// Global diagonal factor (e^{dtau mu} for the DQMC propagator; 1 = none).
  double diag_scale = 1.0;
  /// Bond groups in application order: B = diag_scale * G_last ... G_0.
  /// Bonds within one group must be index-disjoint (no shared endpoint).
  std::vector<std::vector<CbBond>> groups;

  idx num_groups() const { return static_cast<idx>(groups.size()); }
  idx num_bonds() const;
  /// Throws InvalidArgument on out-of-range indices or a shared endpoint
  /// inside one group (the disjointness every applier relies on).
  void validate() const;
};

/// In-place structured apply.
///   kLeft:  x <- B x   (inverse: x <- B^{-1} x); requires x.rows() == op.n.
///   kRight: x <- x B   (inverse: x <- x B^{-1}); requires x.cols() == op.n.
/// The inverse is EXACT (each 2x2 factor inverts by negating its sinh), so
/// a forward/inverse round trip reproduces the input to rounding.
void cb_apply(const CbOperator& op, CbSide side, bool inverse, MatrixView x);

/// Nominal flop count of one apply to `cols` operand columns (6 flops per
/// bond per column, plus the diagonal scaling when present) — for
/// GFlop/s-style reporting, not the cost model.
double cb_apply_flops(const CbOperator& op, idx cols);

/// Device bytes one apply streams (each bond reads+writes two rows or two
/// columns of the operand; the diagonal scaling adds a full read+write
/// pass) — the memory-bound figure the gpusim cost model bills.
double cb_apply_bytes(const CbOperator& op, idx cols);

}  // namespace dqmc::linalg
