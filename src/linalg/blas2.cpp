#include "linalg/blas2.h"

#include "linalg/blas1.h"

namespace dqmc::linalg {

void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y) {
  const idx m = a.rows(), n = a.cols();
  if (trans == Trans::No) {
    // y (m) <- alpha * A x (n) + beta y: accumulate column-by-column so the
    // inner loop walks contiguous memory.
    if (beta == 0.0) {
      for (idx i = 0; i < m; ++i) y[i] = 0.0;
    } else if (beta != 1.0) {
      scal(m, beta, y);
    }
    for (idx j = 0; j < n; ++j) axpy(m, alpha * x[j], a.col(j), y);
  } else {
    // y (n) <- alpha * A^T x (m) + beta y: each output is one column dot.
    for (idx j = 0; j < n; ++j) {
      const double t = alpha * dot(m, a.col(j), x);
      y[j] = (beta == 0.0) ? t : beta * y[j] + t;
    }
  }
}

void ger(double alpha, const double* x, const double* y, MatrixView a) {
  const idx m = a.rows(), n = a.cols();
  if (alpha == 0.0) return;
  for (idx j = 0; j < n; ++j) axpy(m, alpha * y[j], x, a.col(j));
}

void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t, double* x) {
  DQMC_CHECK(t.rows() == t.cols());
  const idx n = t.rows();
  const bool unit = diag == Diag::Unit;

  if (trans == Trans::No) {
    if (uplo == UpLo::Upper) {
      // Back substitution; after computing x[j], eliminate it from rows above
      // using the contiguous column j.
      for (idx j = n - 1; j >= 0; --j) {
        if (!unit) x[j] /= t(j, j);
        axpy(j, -x[j], t.col(j), x);
      }
    } else {
      for (idx j = 0; j < n; ++j) {
        if (!unit) x[j] /= t(j, j);
        axpy(n - j - 1, -x[j], t.col(j) + j + 1, x + j + 1);
      }
    }
  } else {
    if (uplo == UpLo::Upper) {
      // T^T is lower triangular: forward substitution with column dots.
      for (idx j = 0; j < n; ++j) {
        double s = x[j] - dot(j, t.col(j), x);
        x[j] = unit ? s : s / t(j, j);
      }
    } else {
      for (idx j = n - 1; j >= 0; --j) {
        double s = x[j] - dot(n - j - 1, t.col(j) + j + 1, x + j + 1);
        x[j] = unit ? s : s / t(j, j);
      }
    }
  }
}

}  // namespace dqmc::linalg
