// Householder reflector primitives (LAPACK dlarfg/dlarf/dlarft analogues).
//
// Reflectors are stored LAPACK-style: H = I - tau * v v^T with v(0) = 1
// implicit and v(1:) kept below the diagonal of the factored matrix. The
// blocked paths aggregate nb reflectors into the compact-WY form
// Q = I - V T V^T so trailing updates run on level-3 kernels.
#pragma once

#include "linalg/blas3.h"
#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Generate a reflector annihilating x(1:n-1):
/// on return x(0) = beta, x(1:) = v(1:), and (I - tau v v^T) x_in = beta e1.
/// Returns tau (0 when x(1:) is already zero).
double make_householder(idx n, double* x);

/// Apply H = I - tau v v^T from the left to C (v has C.rows() entries,
/// v(0) treated as 1, actual v(1:) read from v+1). `work` needs C.cols().
void apply_householder_left(double tau, const double* v, MatrixView c,
                            double* work);

/// Build the nb x nb upper-triangular T of the compact-WY representation
/// from the factored panel V (m x nb, unit lower trapezoidal, reflectors in
/// columns) and taus. (dlarft, forward columnwise.)
void build_t_factor(ConstMatrixView v, const double* tau, MatrixView t);

/// Apply the compact-WY block reflector Q = I - V T V^T (or its transpose)
/// from the left to C. V is m x nb with the unit lower-trapezoidal layout of
/// a factored panel (entries on/above the panel diagonal are ignored).
void apply_block_reflector_left(ConstMatrixView v, ConstMatrixView t,
                                Trans trans, MatrixView c);

}  // namespace dqmc::linalg
