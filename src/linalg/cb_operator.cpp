#include "linalg/cb_operator.h"

#include "common/error.h"
#include "linalg/blas1.h"
#include "parallel/parallel_for.h"

namespace dqmc::linalg {

namespace {

// Bonds per group are index-disjoint, so each column (left apply) or row
// (right apply) update below is an independent chain of 2x2 rotations: the
// arithmetic per element never depends on how parallel_for chunks the
// columns/rows, which is what makes every variant bitwise reproducible
// across thread counts.
//
// Operator algebra, with B = s * G_{m-1} ... G_0 (s = diag_scale):
//   B   x : groups 0..m-1 forward, then scale by s
//   B⁻¹ x : scale by 1/s, then groups m-1..0 with sinh negated
//   x B   : x G_{m-1} first — groups m-1..0 (right-applied), then scale
//   x B⁻¹ : scale by 1/s, then groups 0..m-1 with sinh negated
// A right apply of the symmetric factor G_g touches columns a and b of x
// with the same 2x2 formula a left apply uses on rows a and b.

// Columns of x are updated independently; `x(a, j)`/`x(b, j)` walk rows.
void apply_group_left(const std::vector<CbBond>& group, bool inverse,
                      MatrixView x, idx j) {
  for (const CbBond& bond : group) {
    const double sh = inverse ? -bond.sinh_t : bond.sinh_t;
    double& va = x(bond.a, j);
    double& vb = x(bond.b, j);
    const double na = bond.cosh_t * va + sh * vb;
    const double nb = sh * va + bond.cosh_t * vb;
    va = na;
    vb = nb;
  }
}

// Rows of x are updated independently; `x(i, a)`/`x(i, b)` walk columns.
void apply_group_right(const std::vector<CbBond>& group, bool inverse,
                       MatrixView x, idx i) {
  for (const CbBond& bond : group) {
    const double sh = inverse ? -bond.sinh_t : bond.sinh_t;
    double& va = x(i, bond.a);
    double& vb = x(i, bond.b);
    const double na = bond.cosh_t * va + sh * vb;
    const double nb = sh * va + bond.cosh_t * vb;
    va = na;
    vb = nb;
  }
}

// Each column/row chain is a handful of flops per bond — far below the
// default parallel_for grain, so ask for fine chunks explicitly. Wrap
// operands are square (cols == n), which still leaves useful parallelism
// at the lattice sizes where checkerboard pays off.
constexpr par::ForOptions kApplyOptions{.grain = 16};

}  // namespace

idx CbOperator::num_bonds() const {
  idx total = 0;
  for (const auto& group : groups) total += static_cast<idx>(group.size());
  return total;
}

void CbOperator::validate() const {
  DQMC_CHECK_MSG(n > 0, "CbOperator: dimension must be positive");
  DQMC_CHECK_MSG(diag_scale != 0.0, "CbOperator: diag_scale must be nonzero");
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  for (const auto& group : groups) {
    std::fill(used.begin(), used.end(), 0);
    for (const CbBond& bond : group) {
      DQMC_CHECK_MSG(bond.a >= 0 && bond.a < n && bond.b >= 0 && bond.b < n,
                 "CbOperator: bond site out of range");
      DQMC_CHECK_MSG(bond.a != bond.b,
                     "CbOperator: bond joins a site to itself");
      DQMC_CHECK_MSG(!used[static_cast<std::size_t>(bond.a)] &&
                         !used[static_cast<std::size_t>(bond.b)],
                     "CbOperator: bonds within one group must be disjoint");
      used[static_cast<std::size_t>(bond.a)] = 1;
      used[static_cast<std::size_t>(bond.b)] = 1;
    }
  }
}

void cb_apply(const CbOperator& op, CbSide side, bool inverse, MatrixView x) {
  const idx m = op.num_groups();
  const bool scaled = op.diag_scale != 1.0;
  if (side == CbSide::kLeft) {
    DQMC_CHECK_MSG(x.rows() == op.n,
               "cb_apply(kLeft): operand rows must match operator dimension");
    par::parallel_for(
        idx{0}, x.cols(),
        [&](idx j) {
          if (inverse) {
            if (scaled) scal(x.rows(), 1.0 / op.diag_scale, &x(0, j));
            for (idx g = m - 1; g >= 0; --g) {
              apply_group_left(op.groups[static_cast<std::size_t>(g)], true, x,
                               j);
            }
          } else {
            for (idx g = 0; g < m; ++g) {
              apply_group_left(op.groups[static_cast<std::size_t>(g)], false, x,
                               j);
            }
            if (scaled) scal(x.rows(), op.diag_scale, &x(0, j));
          }
        },
        kApplyOptions);
  } else {
    DQMC_CHECK_MSG(x.cols() == op.n,
               "cb_apply(kRight): operand cols must match operator dimension");
    par::parallel_for(
        idx{0}, x.rows(),
        [&](idx i) {
          if (inverse) {
            if (scaled) {
              const double inv = 1.0 / op.diag_scale;
              for (idx j = 0; j < x.cols(); ++j) x(i, j) *= inv;
            }
            for (idx g = 0; g < m; ++g) {
              apply_group_right(op.groups[static_cast<std::size_t>(g)], true, x,
                                i);
            }
          } else {
            for (idx g = m - 1; g >= 0; --g) {
              apply_group_right(op.groups[static_cast<std::size_t>(g)], false,
                                x, i);
            }
            if (scaled) {
              for (idx j = 0; j < x.cols(); ++j) x(i, j) *= op.diag_scale;
            }
          }
        },
        kApplyOptions);
  }
}

double cb_apply_flops(const CbOperator& op, idx cols) {
  const double bond_flops =
      6.0 * static_cast<double>(op.num_bonds()) * static_cast<double>(cols);
  const double scale_flops =
      op.diag_scale != 1.0
          ? static_cast<double>(op.n) * static_cast<double>(cols)
          : 0.0;
  return bond_flops + scale_flops;
}

double cb_apply_bytes(const CbOperator& op, idx cols) {
  // Each bond streams two operand rows (read + write, 8-byte doubles):
  // 2 rows * 2 directions * 8 bytes = 32 bytes per bond per column.
  const double bond_bytes =
      32.0 * static_cast<double>(op.num_bonds()) * static_cast<double>(cols);
  const double scale_bytes =
      op.diag_scale != 1.0
          ? 16.0 * static_cast<double>(op.n) * static_cast<double>(cols)
          : 0.0;
  return bond_bytes + scale_bytes;
}

}  // namespace dqmc::linalg
