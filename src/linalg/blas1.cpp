#include "linalg/blas1.h"

#include <cmath>
#include <utility>

namespace dqmc::linalg {

double dot(idx n, const double* x, idx incx, const double* y, idx incy) {
  double acc = 0.0;
  if (incx == 1 && incy == 1) {
    for (idx i = 0; i < n; ++i) acc += x[i] * y[i];
  } else {
    for (idx i = 0; i < n; ++i) acc += x[i * incx] * y[i * incy];
  }
  return acc;
}

double dot(idx n, const double* x, const double* y) {
  return dot(n, x, 1, y, 1);
}

double nrm2(idx n, const double* x, idx incx) {
  // One-pass scaled sum of squares (cf. LAPACK dlassq): tracks the running
  // maximum `scale` and accumulates (x/scale)^2, immune to overflow for
  // |x| up to DBL_MAX and to destructive underflow for tiny graded columns.
  double scale = 0.0, ssq = 1.0;
  for (idx i = 0; i < n; ++i) {
    const double a = std::fabs(x[i * incx]);
    if (a == 0.0) continue;
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double asum(idx n, const double* x, idx incx) {
  double acc = 0.0;
  for (idx i = 0; i < n; ++i) acc += std::fabs(x[i * incx]);
  return acc;
}

void scal(idx n, double alpha, double* x, idx incx) {
  if (incx == 1) {
    for (idx i = 0; i < n; ++i) x[i] *= alpha;
  } else {
    for (idx i = 0; i < n; ++i) x[i * incx] *= alpha;
  }
}

void axpy(idx n, double alpha, const double* x, idx incx, double* y, idx incy) {
  if (alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (idx i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (idx i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
  }
}

void axpy(idx n, double alpha, const double* x, double* y) {
  axpy(n, alpha, x, 1, y, 1);
}

void swap(idx n, double* x, idx incx, double* y, idx incy) {
  for (idx i = 0; i < n; ++i) std::swap(x[i * incx], y[i * incy]);
}

idx iamax(idx n, const double* x, idx incx) {
  if (n <= 0) return 0;
  idx best = 0;
  double bestval = std::fabs(x[0]);
  for (idx i = 1; i < n; ++i) {
    const double a = std::fabs(x[i * incx]);
    if (a > bestval) {
      bestval = a;
      best = i;
    }
  }
  return best;
}

}  // namespace dqmc::linalg
