// Symmetric eigensolver: Householder tridiagonalization followed by the
// implicit-shift QL iteration (EISPACK tred2/tql2 lineage, the same
// algorithm underneath LAPACK's dsteqr).
//
// DQMC needs this once per simulation: the hopping matrix K is symmetric and
// B = e^{-dtau K} is formed exactly from its spectral decomposition. The
// U = 0 free-fermion reference solution used by the validation tests is also
// built from it.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Spectral decomposition A = V diag(w) V^T of a symmetric matrix.
struct SymmetricEigen {
  Vector eigenvalues;   ///< ascending
  Matrix eigenvectors;  ///< orthonormal columns, eigenvectors[:,i] <-> w[i]
};

/// Compute all eigenvalues and eigenvectors. `a` must be symmetric to within
/// `symmetry_tol` times its max element (checked); only the lower triangle
/// is referenced for the reduction. Throws NumericalError if the QL sweep
/// fails to converge (> 50 iterations for one eigenvalue, as in EISPACK).
SymmetricEigen eig_sym(ConstMatrixView a, double symmetry_tol = 1e-12);

}  // namespace dqmc::linalg
