#include "linalg/householder.h"

#include <cmath>

#include "linalg/blas1.h"
#include "linalg/blas2.h"

namespace dqmc::linalg {

double make_householder(idx n, double* x) {
  if (n <= 1) return 0.0;
  const double alpha = x[0];
  const double xnorm = nrm2(n - 1, x + 1);
  if (xnorm == 0.0) return 0.0;

  // beta = -sign(alpha) * ||x||, computed via hypot for overflow safety.
  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const double tau = (beta - alpha) / beta;
  scal(n - 1, 1.0 / (alpha - beta), x + 1);
  x[0] = beta;
  return tau;
}

void apply_householder_left(double tau, const double* v, MatrixView c,
                            double* work) {
  if (tau == 0.0 || c.empty()) return;
  const idx m = c.rows(), n = c.cols();
  // w = C^T v  (v(0) == 1 implicit)
  for (idx j = 0; j < n; ++j) {
    const double* cj = c.col(j);
    work[j] = cj[0] + dot(m - 1, cj + 1, v + 1);
  }
  // C -= tau * v w^T
  for (idx j = 0; j < n; ++j) {
    double* cj = c.col(j);
    const double s = tau * work[j];
    cj[0] -= s;
    axpy(m - 1, -s, v + 1, cj + 1);
  }
}

namespace {
/// In build_t_factor: t(0:i,i) <- T(0:i,0:i) * t(0:i,i), using the already
/// finished leading i x i upper triangle of T.
void triangular_update_column(MatrixView t, idx i) {
  for (idx r = 0; r < i; ++r) {
    double s = 0.0;
    for (idx k = r; k < i; ++k) s += t(r, k) * t(k, i);
    t(r, i) = s;
  }
}
}  // namespace

void build_t_factor(ConstMatrixView v, const double* tau, MatrixView t) {
  const idx m = v.rows();
  const idx nb = v.cols();
  DQMC_CHECK(t.rows() == nb && t.cols() == nb);
  for (idx i = 0; i < nb; ++i) {
    t(i, i) = tau[i];
    if (i == 0) continue;
    // t(0:i,i) = -tau_i * V(:,0:i)^T v_i, with v_i = [0...0,1,V(i+1:,i)].
    // Split at row i: the unit row and the trapezoidal tail.
    for (idx k = 0; k < i; ++k) {
      // V(:,k)^T v_i over rows i..m; V(i,k) pairs with the implicit 1.
      double s = v(i, k);
      s += dot(m - i - 1, &v(i + 1, k), &v(i + 1, i));
      t(k, i) = -tau[i] * s;
    }
    // t(0:i,i) = T(0:i,0:i) * t(0:i,i) (triangular update).
    triangular_update_column(t, i);
  }
}

void apply_block_reflector_left(ConstMatrixView v, ConstMatrixView t,
                                Trans trans, MatrixView c) {
  const idx m = c.rows(), n = c.cols();
  const idx nb = v.cols();
  if (nb == 0 || c.empty()) return;
  DQMC_CHECK(v.rows() == m && t.rows() == nb && t.cols() == nb);

  // Split V = [V1; V2]: V1 nb x nb unit lower triangular, V2 (m-nb) x nb.
  ConstMatrixView v1 = v.block(0, 0, nb, nb);
  ConstMatrixView v2 = v.block(nb, 0, m - nb, nb);
  MatrixView c1 = c.block(0, 0, nb, n);
  MatrixView c2 = c.block(nb, 0, m - nb, n);

  // W = V^T C = V1^T C1 + V2^T C2   (nb x n)
  Matrix w = Matrix::copy_of(c1);
  trmm(Side::Left, UpLo::Lower, Trans::Yes, Diag::Unit, 1.0, v1, w);
  if (m > nb) gemm(Trans::Yes, Trans::No, 1.0, v2, c2, 1.0, w);

  // W <- op(T) W
  trmm(Side::Left, UpLo::Upper, trans, Diag::NonUnit, 1.0, t, w);

  // C -= V W: C2 -= V2 W (gemm), C1 -= V1 W (trmm + subtract).
  if (m > nb) gemm(Trans::No, Trans::No, -1.0, v2, w, 1.0, c2);
  trmm(Side::Left, UpLo::Lower, Trans::No, Diag::Unit, 1.0, v1, w);
  for (idx j = 0; j < n; ++j) axpy(nb, -1.0, w.col(j), c1.col(j));
}

}  // namespace dqmc::linalg
