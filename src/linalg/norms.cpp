#include "linalg/norms.h"

#include <cmath>

#include "linalg/blas1.h"
#include "parallel/parallel_for.h"

namespace dqmc::linalg {

double frobenius_norm(ConstMatrixView a) {
  // Column-wise scaled accumulation, combined with the same scale/ssq update
  // as nrm2 so graded matrices cannot overflow the sum of squares.
  double scale = 0.0, ssq = 1.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const double cn = nrm2(a.rows(), a.col(j));
    if (cn == 0.0) continue;
    if (scale < cn) {
      const double r = scale / cn;
      ssq = 1.0 + ssq * r * r;
      scale = cn;
    } else {
      const double r = cn / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double max_abs(ConstMatrixView a) {
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::fabs(a(i, j)));
    }
  }
  return best;
}

void column_norms(ConstMatrixView a, double* out) {
  par::parallel_for(
      0, a.cols(),
      [&](par::index_t j) {
        out[j] = nrm2(a.rows(), a.col(static_cast<idx>(j)));
      },
      // A few columns per thread already amortize the fork.
      {.grain = 8});
}

Vector column_norms(ConstMatrixView a) {
  Vector v(a.cols());
  column_norms(a, v.data());
  return v;
}

double relative_difference(ConstMatrixView a, ConstMatrixView b) {
  DQMC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double scale = 0.0, ssq = 1.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      const double d = std::fabs(a(i, j) - b(i, j));
      if (d == 0.0) continue;
      if (scale < d) {
        const double r = scale / d;
        ssq = 1.0 + ssq * r * r;
        scale = d;
      } else {
        const double r = d / scale;
        ssq += r * r;
      }
    }
  }
  const double diff = scale * std::sqrt(ssq);
  const double ref = frobenius_norm(b);
  return ref > 0.0 ? diff / ref : diff;
}

}  // namespace dqmc::linalg
