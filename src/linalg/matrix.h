// Dense column-major matrix and vector containers.
//
// The whole library works in double precision with column-major layout and an
// explicit leading dimension, matching the BLAS/LAPACK conventions the paper's
// kernels (DGEMM / DGEQRF / DGEQP3) assume. Views are non-owning and cheap to
// copy; owning containers use 64-byte aligned storage (common/aligned.h).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <utility>

#include "common/aligned.h"
#include "common/error.h"

namespace dqmc::linalg {

/// Index type for all dimensions and strides. Signed, so loop arithmetic and
/// downdating expressions stay natural.
using idx = std::int64_t;

class Matrix;

/// Non-owning mutable view of a column-major block: element (i,j) lives at
/// data()[i + j*ld()].
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    DQMC_CHECK(rows >= 0 && cols >= 0 && ld >= rows);
  }

  double* data() const noexcept { return data_; }
  idx rows() const noexcept { return rows_; }
  idx cols() const noexcept { return cols_; }
  idx ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  /// True when rows()==ld(): the block is one contiguous run of memory.
  bool contiguous() const noexcept { return ld_ == rows_; }

  double& operator()(idx i, idx j) const noexcept {
    DQMC_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Pointer to the top of column j.
  double* col(idx j) const noexcept {
    DQMC_ASSERT(j >= 0 && j < cols_);
    return data_ + j * ld_;
  }

  /// Sub-block view of `r` rows and `c` columns starting at (i, j).
  MatrixView block(idx i, idx j, idx r, idx c) const {
    DQMC_CHECK(i >= 0 && j >= 0 && r >= 0 && c >= 0 && i + r <= rows_ &&
               j + c <= cols_);
    return MatrixView(data_ + i + j * ld_, r, c, ld_);
  }

 private:
  double* data_ = nullptr;
  idx rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Non-owning read-only view; see MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    DQMC_CHECK(rows >= 0 && cols >= 0 && ld >= rows);
  }
  /* implicit */ ConstMatrixView(MatrixView v)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  const double* data() const noexcept { return data_; }
  idx rows() const noexcept { return rows_; }
  idx cols() const noexcept { return cols_; }
  idx ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  bool contiguous() const noexcept { return ld_ == rows_; }

  const double& operator()(idx i, idx j) const noexcept {
    DQMC_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  const double* col(idx j) const noexcept {
    DQMC_ASSERT(j >= 0 && j < cols_);
    return data_ + j * ld_;
  }

  ConstMatrixView block(idx i, idx j, idx r, idx c) const {
    DQMC_CHECK(i >= 0 && j >= 0 && r >= 0 && c >= 0 && i + r <= rows_ &&
               j + c <= cols_);
    return ConstMatrixView(data_ + i + j * ld_, r, c, ld_);
  }

 private:
  const double* data_ = nullptr;
  idx rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Owning column-major matrix with contiguous storage (ld == rows).
class Matrix {
 public:
  Matrix() = default;
  Matrix(idx rows, idx cols) : rows_(rows), cols_(cols), buf_(check_size(rows, cols)) {}

  /// Row-major initializer for small literal matrices in tests:
  /// Matrix m(2, 2, {1, 2, 3, 4}) is [[1,2],[3,4]].
  Matrix(idx rows, idx cols, std::initializer_list<double> row_major);

  Matrix(const Matrix& o);
  Matrix& operator=(const Matrix& o);
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  static Matrix zero(idx rows, idx cols);
  static Matrix identity(idx n);
  /// Deep copy of any (possibly strided) view.
  static Matrix copy_of(ConstMatrixView v);

  idx rows() const noexcept { return rows_; }
  idx cols() const noexcept { return cols_; }
  idx ld() const noexcept { return rows_; }
  idx size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  bool square() const noexcept { return rows_ == cols_; }

  double* data() noexcept { return buf_.data(); }
  const double* data() const noexcept { return buf_.data(); }

  double& operator()(idx i, idx j) noexcept {
    DQMC_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buf_[static_cast<std::size_t>(i + j * rows_)];
  }
  const double& operator()(idx i, idx j) const noexcept {
    DQMC_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buf_[static_cast<std::size_t>(i + j * rows_)];
  }

  double* col(idx j) noexcept { return data() + j * rows_; }
  const double* col(idx j) const noexcept { return data() + j * rows_; }

  /* implicit */ operator MatrixView() {
    return MatrixView(data(), rows_, cols_, rows_);
  }
  /* implicit */ operator ConstMatrixView() const {
    return ConstMatrixView(data(), rows_, cols_, rows_);
  }
  MatrixView view() { return *this; }
  ConstMatrixView view() const { return *this; }
  MatrixView block(idx i, idx j, idx r, idx c) { return view().block(i, j, r, c); }
  ConstMatrixView block(idx i, idx j, idx r, idx c) const {
    return view().block(i, j, r, c);
  }

  /// Fill every element with `value`.
  void fill(double value);
  /// Reset to the identity (square matrices only).
  void set_identity();
  /// Resize, discarding contents (no-op when dimensions already match).
  void resize(idx rows, idx cols);

 private:
  static std::size_t check_size(idx rows, idx cols) {
    DQMC_CHECK(rows >= 0 && cols >= 0);
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  idx rows_ = 0, cols_ = 0;
  AlignedBuffer<double> buf_;
};

/// Owning dense vector (aligned, contiguous).
class Vector {
 public:
  Vector() = default;
  explicit Vector(idx n) : n_(n), buf_(check_size(n)) {}
  Vector(std::initializer_list<double> values);

  Vector(const Vector& o);
  Vector& operator=(const Vector& o);
  Vector(Vector&&) noexcept = default;
  Vector& operator=(Vector&&) noexcept = default;

  static Vector zero(idx n);
  static Vector constant(idx n, double value);

  idx size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double* data() noexcept { return buf_.data(); }
  const double* data() const noexcept { return buf_.data(); }

  double& operator[](idx i) noexcept {
    DQMC_ASSERT(i >= 0 && i < n_);
    return buf_[static_cast<std::size_t>(i)];
  }
  const double& operator[](idx i) const noexcept {
    DQMC_ASSERT(i >= 0 && i < n_);
    return buf_[static_cast<std::size_t>(i)];
  }

  double* begin() noexcept { return data(); }
  double* end() noexcept { return data() + n_; }
  const double* begin() const noexcept { return data(); }
  const double* end() const noexcept { return data() + n_; }

  void fill(double value);
  void resize(idx n);

 private:
  static std::size_t check_size(idx n) {
    DQMC_CHECK(n >= 0);
    return static_cast<std::size_t>(n);
  }
  idx n_ = 0;
  AlignedBuffer<double> buf_;
};

/// Copy src into dst (dimensions must match; views may be strided).
void copy(ConstMatrixView src, MatrixView dst);

}  // namespace dqmc::linalg
