#include "linalg/fft.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "parallel/parallel_for.h"

namespace dqmc::linalg {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Largest radix whose butterfly scratch lives on the stack; plans with a
/// bigger prime factor fall back to one heap buffer per transform.
constexpr idx kStackRadix = 16;

/// Parallel grain for the batched entry points: one plane / signal is
/// already thousands of flops, so split eagerly.
constexpr par::ForOptions kBatchOptions{.grain = 2};

inline Cplx cmul(Cplx a, Cplx b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

/// Prime factors of n, smallest first (all the 2s, then 3s, 5s, ...).
std::vector<idx> factorize(idx n) {
  std::vector<idx> fs;
  for (idx p = 2; p * p <= n; p += (p == 2) ? 1 : 2) {
    while (n % p == 0) {
      fs.push_back(p);
      n /= p;
    }
  }
  if (n > 1) fs.push_back(n);
  return fs;
}

/// Leaf order of the decimation-in-time recursion: subproblem q of a
/// radix-r split owns every r-th input starting at offset q, so the
/// iterative stages below can combine contiguous blocks bottom-up.
void build_perm(const std::vector<idx>& radices, std::size_t fi, idx off,
                idx stride, idx n, std::vector<idx>& perm) {
  if (n == 1) {
    perm.push_back(off);
    return;
  }
  const idx r = radices[fi];
  for (idx q = 0; q < r; ++q) {
    build_perm(radices, fi + 1, off + q * stride, stride * r, n / r, perm);
  }
}

}  // namespace

FftPlan::FftPlan(idx n) : n_(n) {
  DQMC_CHECK_MSG(n >= 1, "FFT size must be positive");
  if (n == 1) return;
  const std::vector<idx> radices = factorize(n);
  perm_.reserve(static_cast<std::size_t>(n));
  build_perm(radices, 0, 0, 1, n, perm_);
  // Stages run bottom-up: the factor split off LAST by the recursion is
  // the first to combine, so walk the factor list in reverse.
  stages_.reserve(radices.size());
  idx m = 1;
  for (std::size_t s = radices.size(); s-- > 0;) {
    Stage st;
    st.radix = radices[s];
    st.m = m;
    const idx span = st.radix * m;
    st.tw.resize(static_cast<std::size_t>(span));
    for (idx j = 0; j < span; ++j) {
      const double theta =
          -kTwoPi * static_cast<double>(j) / static_cast<double>(span);
      st.tw[static_cast<std::size_t>(j)] = {std::cos(theta), std::sin(theta)};
    }
    max_radix_ = std::max(max_radix_, st.radix);
    stages_.push_back(std::move(st));
    m = span;
  }
}

void FftPlan::run(const Cplx* in, Cplx* out, bool inverse) const {
  DQMC_CHECK(in != out);
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  for (idx t = 0; t < n_; ++t) out[t] = in[perm_[static_cast<std::size_t>(t)]];

  // The inverse transform conjugates every twiddle; multiplying the
  // tabulated imaginary part by -1 is exact, so forward and inverse share
  // one table.
  const double flip = inverse ? -1.0 : 1.0;
  Cplx stack_tmp[kStackRadix];
  std::vector<Cplx> heap_tmp;
  Cplx* tmp = stack_tmp;
  if (max_radix_ > kStackRadix) {
    heap_tmp.resize(static_cast<std::size_t>(max_radix_));
    tmp = heap_tmp.data();
  }

  for (const Stage& st : stages_) {
    const idx r = st.radix;
    const idx m = st.m;
    const idx span = r * m;
    const Cplx* tw = st.tw.data();
    if (r == 2) {
      for (idx base = 0; base < n_; base += span) {
        for (idx b = 0; b < m; ++b) {
          Cplx w = tw[b];
          w.im *= flip;
          const Cplx t0 = out[base + b];
          const Cplx t1 = cmul(w, out[base + m + b]);
          out[base + b] = {t0.re + t1.re, t0.im + t1.im};
          out[base + m + b] = {t0.re - t1.re, t0.im - t1.im};
        }
      }
      continue;
    }
    // Generic radix: twiddle the r inputs of one butterfly into tmp, then
    // form each output as the O(r) small-DFT combination
    //   X[a] = sum_q omega_r^{a q} tmp[q],  omega_r^j = tw[j * m].
    for (idx base = 0; base < n_; base += span) {
      for (idx b = 0; b < m; ++b) {
        tmp[0] = out[base + b];
        for (idx q = 1; q < r; ++q) {
          Cplx w = tw[q * b];
          w.im *= flip;
          tmp[q] = cmul(w, out[base + q * m + b]);
        }
        for (idx a = 0; a < r; ++a) {
          Cplx acc = tmp[0];
          for (idx q = 1; q < r; ++q) {
            Cplx w = tw[((a * q) % r) * m];
            w.im *= flip;
            const Cplx t = cmul(w, tmp[q]);
            acc.re += t.re;
            acc.im += t.im;
          }
          out[base + a * m + b] = acc;
        }
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (idx t = 0; t < n_; ++t) {
      out[t].re *= scale;
      out[t].im *= scale;
    }
  }
}

Fft2::Fft2(idx nx, idx ny) : px_(nx), py_(ny) {}

void Fft2::run(Cplx* plane, Workspace& ws, bool inverse) const {
  const idx nx = px_.size();
  const idx ny = py_.size();
  ws.row.resize(static_cast<std::size_t>(nx));
  ws.col_in.resize(static_cast<std::size_t>(ny));
  ws.col_out.resize(static_cast<std::size_t>(ny));
  for (idx y = 0; y < ny; ++y) {
    Cplx* row = plane + nx * y;
    if (inverse) {
      px_.inverse(row, ws.row.data());
    } else {
      px_.forward(row, ws.row.data());
    }
    for (idx x = 0; x < nx; ++x) row[x] = ws.row[static_cast<std::size_t>(x)];
  }
  for (idx x = 0; x < nx; ++x) {
    for (idx y = 0; y < ny; ++y) {
      ws.col_in[static_cast<std::size_t>(y)] = plane[x + nx * y];
    }
    if (inverse) {
      py_.inverse(ws.col_in.data(), ws.col_out.data());
    } else {
      py_.forward(ws.col_in.data(), ws.col_out.data());
    }
    for (idx y = 0; y < ny; ++y) {
      plane[x + nx * y] = ws.col_out[static_cast<std::size_t>(y)];
    }
  }
}

void fft_batched(const FftPlan& plan, bool inverse, const Cplx* in, Cplx* out,
                 idx count, idx stride) {
  DQMC_CHECK(count >= 0 && stride >= plan.size());
  par::parallel_for(
      0, count,
      [&](par::index_t s) {
        const Cplx* src = in + s * stride;
        Cplx* dst = out + s * stride;
        if (inverse) {
          plan.inverse(src, dst);
        } else {
          plan.forward(src, dst);
        }
      },
      kBatchOptions);
}

void fft2_batched(const Fft2& plan, bool inverse, Cplx* planes, idx count,
                  idx stride) {
  DQMC_CHECK(count >= 0 && stride >= plan.size());
  par::parallel_for_chunks(
      0, count,
      [&](par::index_t lo, par::index_t hi) {
        Fft2::Workspace ws;  // per-chunk scratch; per-plane math is fixed
        for (par::index_t p = lo; p < hi; ++p) {
          Cplx* plane = planes + p * stride;
          if (inverse) {
            plan.inverse(plane, ws);
          } else {
            plan.forward(plane, ws);
          }
        }
      },
      kBatchOptions);
}

}  // namespace dqmc::linalg
