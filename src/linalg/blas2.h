// Level-2 BLAS-style matrix-vector kernels.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Transposition selector mirroring the BLAS character argument.
enum class Trans { No, Yes };

/// y <- alpha*op(A)*x + beta*y, op(A) = A or A^T.
/// x must have op(A).cols() elements and y op(A).rows().
void gemv(Trans trans, double alpha, ConstMatrixView a, const double* x,
          double beta, double* y);

/// Rank-1 update A <- A + alpha * x * y^T.
void ger(double alpha, const double* x, const double* y, MatrixView a);

/// Upper/lower selector for triangular kernels.
enum class UpLo { Upper, Lower };
enum class Diag { NonUnit, Unit };

/// Triangular solve with a single right-hand side:
/// solves op(T) * x = b in place (x overwrites b).
void trsv(UpLo uplo, Trans trans, Diag diag, ConstMatrixView t, double* x);

}  // namespace dqmc::linalg
