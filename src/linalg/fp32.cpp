#include "linalg/fp32.h"

#include <cstddef>

#include "common/error.h"
#include "parallel/parallel_for.h"

namespace dqmc::linalg {

namespace {

// Pack op(A) (m x k) column-major into a float buffer: the rounding to
// float happens HERE, once per operand, which is both the "dtype-aware
// packing" of the fp32 path and what keeps every consumer's arithmetic
// chain identical regardless of blocking.
void pack_fp32(Trans trans, ConstMatrixView a, idx m, idx k,
               std::vector<float>& out) {
  out.resize(static_cast<std::size_t>(m) * static_cast<std::size_t>(k));
  if (trans == Trans::No) {
    for (idx j = 0; j < k; ++j) {
      const double* src = a.col(j);
      float* dst = out.data() + static_cast<std::size_t>(j * m);
      for (idx i = 0; i < m; ++i) dst[i] = static_cast<float>(src[i]);
    }
  } else {
    for (idx j = 0; j < k; ++j) {
      float* dst = out.data() + static_cast<std::size_t>(j * m);
      for (idx i = 0; i < m; ++i) dst[i] = static_cast<float>(a(j, i));
    }
  }
}

// One output column: acc = sum_l pa[:, l] * pb[l], then
// c(:, j) = alpha * acc + beta * c(:, j), all in float. Serial l-loop =
// fixed reduction order per element.
void gemm_fp32_column(const float* pa, const float* pb, idx m, idx k,
                      float alpha, float beta, double* cj, float* acc) {
  for (idx i = 0; i < m; ++i) acc[i] = 0.0f;
  for (idx l = 0; l < k; ++l) {
    const float bl = pb[l];
    const float* al = pa + static_cast<std::size_t>(l * m);
    for (idx i = 0; i < m; ++i) acc[i] += al[i] * bl;
  }
  if (beta == 0.0f) {
    for (idx i = 0; i < m; ++i) {
      cj[i] = static_cast<double>(alpha * acc[i]);
    }
  } else {
    for (idx i = 0; i < m; ++i) {
      cj[i] = static_cast<double>(alpha * acc[i] +
                                  beta * static_cast<float>(cj[i]));
    }
  }
}

void gemm_fp32_packed(const std::vector<float>& pa,
                      const std::vector<float>& pb, idx m, idx nn, idx k,
                      float alpha, float beta, MatrixView c) {
  par::parallel_for_chunks(
      0, nn,
      [&](par::index_t lo, par::index_t hi) {
        std::vector<float> acc(static_cast<std::size_t>(m));
        for (par::index_t j = lo; j < hi; ++j) {
          gemm_fp32_column(pa.data(),
                           pb.data() + static_cast<std::size_t>(j) *
                                           static_cast<std::size_t>(k),
                           m, k, alpha, beta, c.col(static_cast<idx>(j)),
                           acc.data());
        }
      },
      {.grain = 4});
}

void check_gemm_dims(Trans transa, Trans transb, ConstMatrixView a,
                     ConstMatrixView b, MatrixView c) {
  const idx m = c.rows(), nn = c.cols();
  const idx ka = transa == Trans::No ? a.cols() : a.rows();
  const idx ma = transa == Trans::No ? a.rows() : a.cols();
  const idx kb = transb == Trans::No ? b.rows() : b.cols();
  const idx nb = transb == Trans::No ? b.cols() : b.rows();
  DQMC_CHECK_MSG(ma == m && nb == nn && ka == kb,
                 "gemm_fp32: inconsistent dimensions");
}

}  // namespace

void gemm_fp32(Trans transa, Trans transb, double alpha, ConstMatrixView a,
               ConstMatrixView b, double beta, MatrixView c) {
  check_gemm_dims(transa, transb, a, b, c);
  const idx m = c.rows(), nn = c.cols();
  const idx k = transa == Trans::No ? a.cols() : a.rows();
  std::vector<float> pa, pb;
  pack_fp32(transa, a, m, k, pa);
  pack_fp32(transb, b, k, nn, pb);
  gemm_fp32_packed(pa, pb, m, nn, k, static_cast<float>(alpha),
                   static_cast<float>(beta), c);
}

void gemm_batched_fp32(Trans transa, Trans transb, double alpha,
                       const std::vector<ConstMatrixView>& a,
                       const std::vector<ConstMatrixView>& b, double beta,
                       const std::vector<MatrixView>& c) {
  const std::size_t count = c.size();
  DQMC_CHECK_MSG(count > 0, "gemm_batched_fp32: empty batch");
  DQMC_CHECK_MSG((a.size() == count || a.size() == 1) &&
                     (b.size() == count || b.size() == 1),
                 "gemm_batched_fp32: operand counts must be `count` or 1");
  const bool shared_a = a.size() == 1;
  const bool shared_b = b.size() == 1;
  const idx m = c[0].rows(), nn = c[0].cols();
  const idx k = transa == Trans::No ? a[0].cols() : a[0].rows();
  for (std::size_t i = 0; i < count; ++i) {
    check_gemm_dims(transa, transb, a[shared_a ? 0 : i], b[shared_b ? 0 : i],
                    c[i]);
  }

  // Shared operands round to float once; per-item operands pack inside the
  // item task. Item arithmetic is the serial per-column chain either way.
  std::vector<float> shared_pa, shared_pb;
  if (shared_a) pack_fp32(transa, a[0], m, k, shared_pa);
  if (shared_b) pack_fp32(transb, b[0], k, nn, shared_pb);
  const float falpha = static_cast<float>(alpha);
  const float fbeta = static_cast<float>(beta);

  par::parallel_for(
      par::index_t{0}, static_cast<par::index_t>(count),
      [&](par::index_t it) {
        const std::size_t item = static_cast<std::size_t>(it);
        std::vector<float> pa, pb;
        if (!shared_a) pack_fp32(transa, a[item], m, k, pa);
        if (!shared_b) pack_fp32(transb, b[item], k, nn, pb);
        const std::vector<float>& ua = shared_a ? shared_pa : pa;
        const std::vector<float>& ub = shared_b ? shared_pb : pb;
        std::vector<float> acc(static_cast<std::size_t>(m));
        for (idx j = 0; j < nn; ++j) {
          gemm_fp32_column(ua.data(),
                           ub.data() + static_cast<std::size_t>(j) *
                                           static_cast<std::size_t>(k),
                           m, k, falpha, fbeta, c[item].col(j), acc.data());
        }
      },
      {.grain = 1});
}

namespace {

void apply_group_left_fp32(const std::vector<CbBond>& group, bool inverse,
                           MatrixView x, idx j) {
  for (const CbBond& bond : group) {
    const float sh =
        static_cast<float>(inverse ? -bond.sinh_t : bond.sinh_t);
    const float ch = static_cast<float>(bond.cosh_t);
    const float va = static_cast<float>(x(bond.a, j));
    const float vb = static_cast<float>(x(bond.b, j));
    x(bond.a, j) = static_cast<double>(ch * va + sh * vb);
    x(bond.b, j) = static_cast<double>(sh * va + ch * vb);
  }
}

void apply_group_right_fp32(const std::vector<CbBond>& group, bool inverse,
                            MatrixView x, idx i) {
  for (const CbBond& bond : group) {
    const float sh =
        static_cast<float>(inverse ? -bond.sinh_t : bond.sinh_t);
    const float ch = static_cast<float>(bond.cosh_t);
    const float va = static_cast<float>(x(i, bond.a));
    const float vb = static_cast<float>(x(i, bond.b));
    x(i, bond.a) = static_cast<double>(ch * va + sh * vb);
    x(i, bond.b) = static_cast<double>(sh * va + ch * vb);
  }
}

constexpr par::ForOptions kCbApplyOptions{.grain = 16};

}  // namespace

void cb_apply_fp32(const CbOperator& op, CbSide side, bool inverse,
                   MatrixView x) {
  const idx m = op.num_groups();
  const bool scaled = op.diag_scale != 1.0;
  const float s = static_cast<float>(op.diag_scale);
  const float s_inv = static_cast<float>(1.0 / op.diag_scale);
  if (side == CbSide::kLeft) {
    DQMC_CHECK_MSG(x.rows() == op.n, "cb_apply_fp32(kLeft): operand rows "
                                     "must match operator dimension");
    par::parallel_for(
        idx{0}, x.cols(),
        [&](idx j) {
          if (inverse) {
            if (scaled) {
              for (idx i = 0; i < x.rows(); ++i) {
                x(i, j) =
                    static_cast<double>(static_cast<float>(x(i, j)) * s_inv);
              }
            }
            for (idx g = m - 1; g >= 0; --g) {
              apply_group_left_fp32(op.groups[static_cast<std::size_t>(g)],
                                    true, x, j);
            }
          } else {
            for (idx g = 0; g < m; ++g) {
              apply_group_left_fp32(op.groups[static_cast<std::size_t>(g)],
                                    false, x, j);
            }
            if (scaled) {
              for (idx i = 0; i < x.rows(); ++i) {
                x(i, j) = static_cast<double>(static_cast<float>(x(i, j)) * s);
              }
            }
          }
        },
        kCbApplyOptions);
  } else {
    DQMC_CHECK_MSG(x.cols() == op.n, "cb_apply_fp32(kRight): operand cols "
                                     "must match operator dimension");
    par::parallel_for(
        idx{0}, x.rows(),
        [&](idx i) {
          if (inverse) {
            if (scaled) {
              for (idx j = 0; j < x.cols(); ++j) {
                x(i, j) =
                    static_cast<double>(static_cast<float>(x(i, j)) * s_inv);
              }
            }
            for (idx g = 0; g < m; ++g) {
              apply_group_right_fp32(op.groups[static_cast<std::size_t>(g)],
                                     true, x, i);
            }
          } else {
            for (idx g = m - 1; g >= 0; --g) {
              apply_group_right_fp32(op.groups[static_cast<std::size_t>(g)],
                                     false, x, i);
            }
            if (scaled) {
              for (idx j = 0; j < x.cols(); ++j) {
                x(i, j) = static_cast<double>(static_cast<float>(x(i, j)) * s);
              }
            }
          }
        },
        kCbApplyOptions);
  }
}

void scale_rows_fp32(const double* d, MatrixView a) {
  par::parallel_for(
      idx{0}, a.cols(),
      [&](idx j) {
        double* col = &a(0, j);
        for (idx i = 0; i < a.rows(); ++i) {
          col[i] = static_cast<double>(static_cast<float>(d[i]) *
                                       static_cast<float>(col[i]));
        }
      },
      {.grain = 8});
}

void scale_cols_fp32(const double* d, MatrixView a) {
  par::parallel_for(
      idx{0}, a.cols(),
      [&](idx j) {
        const float f = static_cast<float>(d[j]);
        double* col = &a(0, j);
        for (idx i = 0; i < a.rows(); ++i) {
          col[i] = static_cast<double>(static_cast<float>(col[i]) * f);
        }
      },
      {.grain = 8});
}

void scale_rows_cols_inv_fp32(const double* r, const double* c, MatrixView a) {
  par::parallel_for(
      idx{0}, a.cols(),
      [&](idx j) {
        const float inv_c = 1.0f / static_cast<float>(c[j]);
        double* col = &a(0, j);
        for (idx i = 0; i < a.rows(); ++i) {
          col[i] = static_cast<double>(static_cast<float>(r[i]) *
                                       static_cast<float>(col[i]) * inv_c);
        }
      },
      {.grain = 8});
}

void scale_rows_into_fp32(const double* d, ConstMatrixView a, MatrixView out) {
  DQMC_CHECK(a.rows() == out.rows() && a.cols() == out.cols());
  par::parallel_for(
      idx{0}, a.cols(),
      [&](idx j) {
        const double* src = a.col(j);
        double* dst = &out(0, j);
        for (idx i = 0; i < a.rows(); ++i) {
          dst[i] = static_cast<double>(static_cast<float>(d[i]) *
                                       static_cast<float>(src[i]));
        }
      },
      {.grain = 8});
}

}  // namespace dqmc::linalg
