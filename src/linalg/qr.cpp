#include "linalg/qr.h"

#include <algorithm>
#include <vector>

#include "linalg/blas1.h"

namespace dqmc::linalg {

namespace {

/// Unblocked panel factorization on `a` (level-2), LAPACK dgeqr2.
void qr_panel(MatrixView a, double* tau, double* work) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  for (idx k = 0; k < kmax; ++k) {
    tau[k] = make_householder(m - k, &a(k, k));
    if (k + 1 < n) {
      apply_householder_left(tau[k], &a(k, k),
                             a.block(k, k + 1, m - k, n - k - 1), work);
    }
  }
}

}  // namespace

void qr_factor_inplace(MatrixView a, double* tau, idx block) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  DQMC_CHECK(block >= 1);
  std::vector<double> work(static_cast<std::size_t>(std::max<idx>(n, 1)));
  Matrix t(block, block);

  for (idx j = 0; j < kmax; j += block) {
    const idx nb = std::min(block, kmax - j);
    MatrixView panel = a.block(j, j, m - j, nb);
    qr_panel(panel, tau + j, work.data());
    if (j + nb < n) {
      // Trailing update C <- (I - V T V^T)^T C on rows j..m, cols j+nb..n.
      MatrixView tview = t.block(0, 0, nb, nb);
      build_t_factor(panel, tau + j, tview);
      apply_block_reflector_left(panel, tview, Trans::Yes,
                                 a.block(j, j + nb, m - j, n - j - nb));
    }
  }
}

QRFactorization qr_factor(Matrix a, idx block) {
  const idx k = std::min(a.rows(), a.cols());
  QRFactorization f{std::move(a), Vector(k)};
  qr_factor_inplace(f.factors, f.tau.data(), block);
  return f;
}

Matrix qr_r(const QRFactorization& f) {
  const idx m = f.rows(), n = f.cols();
  const idx k = std::min(m, n);
  Matrix r = Matrix::zero(k, n);
  for (idx j = 0; j < n; ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) r(i, j) = f.factors(i, j);
  }
  return r;
}

void qr_apply_q_left(const QRFactorization& f, Trans trans, MatrixView c,
                     idx block) {
  const idx m = f.rows();
  const idx kmax = std::min(m, f.cols());
  DQMC_CHECK(c.rows() == m);
  if (kmax == 0 || c.empty()) return;

  Matrix t(block, block);
  // Q = H_0 H_1 ... H_{k-1}. Q^T C applies panels first-to-last; Q C
  // last-to-first. Each panel only touches rows j..m.
  std::vector<idx> starts;
  for (idx j = 0; j < kmax; j += block) starts.push_back(j);
  if (trans == Trans::No) std::reverse(starts.begin(), starts.end());

  for (idx j : starts) {
    const idx nb = std::min(block, kmax - j);
    ConstMatrixView panel = f.factors.block(j, j, m - j, nb);
    MatrixView tview = t.block(0, 0, nb, nb);
    build_t_factor(panel, f.tau.data() + j, tview);
    apply_block_reflector_left(panel, tview, trans,
                               c.block(j, 0, m - j, c.cols()));
  }
}

Matrix qr_q(const QRFactorization& f, idx block) {
  Matrix q = Matrix::identity(f.rows());
  qr_apply_q_left(f, Trans::No, q, block);
  return q;
}

}  // namespace dqmc::linalg
