#include "linalg/qr.h"

#include <algorithm>
#include <vector>

#include "linalg/blas1.h"
#include "parallel/task_runtime.h"

namespace dqmc::linalg {

namespace {

/// Unblocked panel factorization on `a` (level-2), LAPACK dgeqr2.
void qr_panel(MatrixView a, double* tau, double* work) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  for (idx k = 0; k < kmax; ++k) {
    tau[k] = make_householder(m - k, &a(k, k));
    if (k + 1 < n) {
      apply_householder_left(tau[k], &a(k, k),
                             a.block(k, k + 1, m - k, n - k - 1), work);
    }
  }
}

}  // namespace

void qr_factor_inplace(MatrixView a, double* tau, idx block) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  DQMC_CHECK(block >= 1);
  std::vector<double> work(static_cast<std::size_t>(std::max<idx>(n, 1)));
  Matrix t(block, block);

  // Look-ahead pipeline: after factoring panel j, only the next panel's
  // columns must be up to date before panel j+nb can factor. So the trailing
  // update is split — the next-panel columns are updated inline, the rest of
  // the trailing matrix is spawned as a task, and the next panel factors
  // concurrently with that GEMM-heavy update. The block reflector acts on
  // each column independently, so the split produces bitwise the same
  // factors as one fused update.
  idx j = 0;
  idx nb = std::min(block, kmax);
  qr_panel(a.block(j, j, m, nb), tau, work.data());

  par::TaskGroup lookahead;
  while (j + nb < n) {
    MatrixView panel = a.block(j, j, m - j, nb);
    MatrixView tview = t.block(0, 0, nb, nb);
    build_t_factor(panel, tau + j, tview);

    const idx jn = j + nb;
    if (jn >= kmax) {
      // No next panel to factor — just update the remaining columns.
      apply_block_reflector_left(panel, tview, Trans::Yes,
                                 a.block(j, jn, m - j, n - jn));
      break;
    }

    const idx next_nb = std::min(block, kmax - jn);
    apply_block_reflector_left(panel, tview, Trans::Yes,
                               a.block(j, jn, m - j, next_nb));
    const idx rest = n - jn - next_nb;
    if (rest > 0) {
      lookahead.run([panel, tview, &a, j, jn, next_nb, rest, m] {
        apply_block_reflector_left(panel, tview, Trans::Yes,
                                   a.block(j, jn + next_nb, m - j, rest));
      });
    }
    qr_panel(a.block(jn, jn, m - jn, next_nb), tau + jn, work.data());
    // The shared T buffer and the next trailing columns are reused next
    // iteration, so the look-ahead task must be done before continuing.
    lookahead.wait();

    j = jn;
    nb = next_nb;
  }
}

QRFactorization qr_factor(Matrix a, idx block) {
  const idx k = std::min(a.rows(), a.cols());
  QRFactorization f{std::move(a), Vector(k)};
  qr_factor_inplace(f.factors, f.tau.data(), block);
  return f;
}

Matrix qr_r(const QRFactorization& f) {
  const idx m = f.rows(), n = f.cols();
  const idx k = std::min(m, n);
  Matrix r = Matrix::zero(k, n);
  for (idx j = 0; j < n; ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) r(i, j) = f.factors(i, j);
  }
  return r;
}

void qr_apply_q_left(const QRFactorization& f, Trans trans, MatrixView c,
                     idx block) {
  const idx m = f.rows();
  const idx kmax = std::min(m, f.cols());
  DQMC_CHECK(c.rows() == m);
  if (kmax == 0 || c.empty()) return;

  Matrix t(block, block);
  // Q = H_0 H_1 ... H_{k-1}. Q^T C applies panels first-to-last; Q C
  // last-to-first. Each panel only touches rows j..m.
  std::vector<idx> starts;
  for (idx j = 0; j < kmax; j += block) starts.push_back(j);
  if (trans == Trans::No) std::reverse(starts.begin(), starts.end());

  for (idx j : starts) {
    const idx nb = std::min(block, kmax - j);
    ConstMatrixView panel = f.factors.block(j, j, m - j, nb);
    MatrixView tview = t.block(0, 0, nb, nb);
    build_t_factor(panel, f.tau.data() + j, tview);
    apply_block_reflector_left(panel, tview, trans,
                               c.block(j, 0, m - j, c.cols()));
  }
}

Matrix qr_q(const QRFactorization& f, idx block) {
  const idx m = f.rows();
  Matrix q = Matrix::identity(m);
  const idx kmax = std::min(m, f.cols());
  if (kmax == 0) return q;

  // dorgqr-style trailing-identity build: applying the panels last-to-first,
  // panel j only needs to touch the trailing q(j:m, j:m) block — columns
  // left of j are still identity columns supported on rows < j (a reflector
  // supported on rows >= j maps them to themselves), and panels processed so
  // far never wrote to rows < j. Restricting the update roughly halves the
  // flops of the explicit-Q build versus applying to the full m x m identity
  // while producing bitwise the same matrix.
  Matrix t(block, block);
  for (idx j = (kmax - 1) / block * block;; j -= block) {
    const idx nb = std::min(block, kmax - j);
    ConstMatrixView panel = f.factors.block(j, j, m - j, nb);
    MatrixView tview = t.block(0, 0, nb, nb);
    build_t_factor(panel, f.tau.data() + j, tview);
    apply_block_reflector_left(panel, tview, Trans::No,
                               q.block(j, j, m - j, m - j));
    if (j == 0) break;
  }
  return q;
}

}  // namespace dqmc::linalg
