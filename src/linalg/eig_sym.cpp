#include "linalg/eig_sym.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/norms.h"

namespace dqmc::linalg {

namespace {

/// Householder reduction of a symmetric matrix held in `z` to tridiagonal
/// form, accumulating the orthogonal transformation in `z` itself
/// (EISPACK tred2). On return d holds the diagonal, e the subdiagonal
/// (e[0] unused).
void tridiagonalize(Matrix& z, Vector& d, Vector& e) {
  const idx n = z.rows();
  for (idx i = n - 1; i >= 1; --i) {
    const idx l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (idx k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (idx k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (idx j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (idx k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (idx k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (idx j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (idx k = 0; k <= j; ++k)
            z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate transformations.
  for (idx i = 0; i < n; ++i) {
    const idx l = i - 1;
    if (d[i] != 0.0) {
      for (idx j = 0; j <= l; ++j) {
        double g = 0.0;
        for (idx k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (idx k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (idx j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on the tridiagonal (d, e), rotating the
/// eigenvector matrix z along (EISPACK tql2).
void ql_implicit(Vector& d, Vector& e, Matrix& z) {
  const idx n = d.size();
  for (idx i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (idx l = 0; l < n; ++l) {
    int iter = 0;
    idx m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 + std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m != l) {
        if (++iter > 50) {
          throw NumericalError("eig_sym: QL iteration failed to converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        bool underflow = false;
        for (idx i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Rotation annihilated early: recover and restart the sweep.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (idx k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, carrying eigenvectors (selection sort; n is small).
  for (idx i = 0; i < n - 1; ++i) {
    idx kmin = i;
    for (idx j = i + 1; j < n; ++j)
      if (d[j] < d[kmin]) kmin = j;
    if (kmin != i) {
      std::swap(d[kmin], d[i]);
      for (idx r2 = 0; r2 < n; ++r2) std::swap(z(r2, kmin), z(r2, i));
    }
  }
}

}  // namespace

SymmetricEigen eig_sym(ConstMatrixView a, double symmetry_tol) {
  DQMC_CHECK(a.rows() == a.cols());
  const idx n = a.rows();
  DQMC_CHECK(n >= 1);

  // Symmetry contract check.
  const double scale = max_abs(a);
  for (idx j = 0; j < n; ++j) {
    for (idx i = j + 1; i < n; ++i) {
      DQMC_CHECK_MSG(std::fabs(a(i, j) - a(j, i)) <=
                         symmetry_tol * std::max(1.0, scale),
                     "eig_sym: matrix is not symmetric");
    }
  }

  SymmetricEigen out{Vector(n), Matrix::copy_of(a)};
  Vector e(n);
  if (n == 1) {
    out.eigenvalues[0] = a(0, 0);
    out.eigenvectors(0, 0) = 1.0;
    return out;
  }
  tridiagonalize(out.eigenvectors, out.eigenvalues, e);
  ql_implicit(out.eigenvalues, e, out.eigenvectors);
  return out;
}

}  // namespace dqmc::linalg
