// GEMM micro-kernel and packing routines (internal to blas3.cpp and exposed
// for the kernel-level unit tests).
//
// The implementation follows the Goto/BLIS decomposition: the operands are
// packed into contiguous panels shaped for an MR x NR register-tile
// micro-kernel, giving the level-3 arithmetic intensity that the paper's
// DGEMM-vs-DGEQP3 comparison (Fig. 1) is about.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg::detail {

/// Register-tile shape. 8x6 doubles keeps all accumulators in AVX2 registers
/// (12 ymm accumulators + operands) while remaining plain portable C++.
inline constexpr idx kMR = 8;
inline constexpr idx kNR = 6;

/// Cache-blocking parameters (elements): A-panel is kMC x kKC (~L2-sized),
/// B-panel kKC x kNC (~L3-sized). Overridable at configure time
/// (-DDQMC_GEMM_MC=...) so bench/micro_kernels can sweep candidate blockings
/// without editing the source; the defaults below are the best of the sweeps
/// recorded in docs/PERFORMANCE.md.
#ifndef DQMC_GEMM_MC
#define DQMC_GEMM_MC 192
#endif
#ifndef DQMC_GEMM_KC
#define DQMC_GEMM_KC 256
#endif
#ifndef DQMC_GEMM_NC
#define DQMC_GEMM_NC 2048
#endif
inline constexpr idx kMC = DQMC_GEMM_MC;
inline constexpr idx kKC = DQMC_GEMM_KC;
inline constexpr idx kNC = DQMC_GEMM_NC;

/// Pack the `mc x kc` block A(i0:i0+mc, p0:p0+kc) (or its transpose when
/// `trans`) into `buf` as column-strips of height kMR, zero-padded to a
/// multiple of kMR rows. buf must hold round_up(mc,kMR)*kc doubles.
void pack_a(ConstMatrixView a, bool trans, idx i0, idx p0, idx mc, idx kc,
            double* buf);

/// Pack the `kc x nc` block B(p0:p0+kc, j0:j0+nc) (or its transpose when
/// `trans`) into `buf` as row-strips of width kNR, zero-padded to a multiple
/// of kNR columns. buf must hold kc*round_up(nc,kNR) doubles.
void pack_b(ConstMatrixView b, bool trans, idx p0, idx j0, idx kc, idx nc,
            double* buf);

/// C(mr x nr) <- alpha * Apanel * Bpanel + beta_is_one? C : beta*C  over a
/// kc-long inner product. `a` points at one packed kMR-strip, `b` at one
/// packed kNR-strip. mr <= kMR, nr <= kNR handle edge tiles.
void micro_kernel(idx kc, double alpha, const double* a, const double* b,
                  double beta, double* c, idx ldc, idx mr, idx nr);

inline idx round_up(idx x, idx m) { return (x + m - 1) / m * m; }

}  // namespace dqmc::linalg::detail
