#include "linalg/util.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/diag.h"
#include "linalg/qr.h"

namespace dqmc::linalg {

Matrix transpose(ConstMatrixView a) {
  Matrix t(a.cols(), a.rows());
  // Blocked to keep both the read and write streams cache-resident.
  constexpr idx kB = 64;
  for (idx jb = 0; jb < a.cols(); jb += kB) {
    for (idx ib = 0; ib < a.rows(); ib += kB) {
      const idx jmax = std::min(jb + kB, a.cols());
      const idx imax = std::min(ib + kB, a.rows());
      for (idx j = jb; j < jmax; ++j)
        for (idx i = ib; i < imax; ++i) t(j, i) = a(i, j);
    }
  }
  return t;
}

Matrix add(ConstMatrixView a, ConstMatrixView b, double alpha) {
  DQMC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  for (idx j = 0; j < a.cols(); ++j)
    for (idx i = 0; i < a.rows(); ++i) c(i, j) = a(i, j) + alpha * b(i, j);
  return c;
}

void add_identity(MatrixView a, double alpha) {
  DQMC_CHECK(a.rows() == a.cols());
  for (idx i = 0; i < a.rows(); ++i) a(i, i) += alpha;
}

std::uint64_t MatrixRng::next_u64() {
  // splitmix64: tiny, high-quality, and reproducible everywhere.
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double MatrixRng::uniform(double lo, double hi) {
  const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

double MatrixRng::normal() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = uniform(), u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Matrix MatrixRng::uniform_matrix(idx rows, idx cols) {
  Matrix m(rows, cols);
  for (idx j = 0; j < cols; ++j)
    for (idx i = 0; i < rows; ++i) m(i, j) = uniform(-1.0, 1.0);
  return m;
}

Matrix MatrixRng::gaussian_matrix(idx rows, idx cols) {
  Matrix m(rows, cols);
  for (idx j = 0; j < cols; ++j)
    for (idx i = 0; i < rows; ++i) m(i, j) = normal();
  return m;
}

Matrix MatrixRng::orthogonal_matrix(idx n) {
  return qr_q(qr_factor(gaussian_matrix(n, n)));
}

Matrix MatrixRng::graded_matrix(idx n, double grade) {
  Matrix m = gaussian_matrix(n, n);
  Vector scales(n);
  double s = 1.0;
  for (idx j = 0; j < n; ++j) {
    scales[j] = s;
    s *= grade;
  }
  scale_cols(scales.data(), m);
  return m;
}

}  // namespace dqmc::linalg
