// Small dense utilities shared by tests, benches, and the DQMC engine.
#pragma once

#include <cstdint>

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Out-of-place transpose.
Matrix transpose(ConstMatrixView a);

/// C = A + alpha * B (fresh matrix).
Matrix add(ConstMatrixView a, ConstMatrixView b, double alpha = 1.0);

/// A <- A + alpha * I (square).
void add_identity(MatrixView a, double alpha = 1.0);

/// Deterministic pseudo-random test matrices (splitmix64-based, so results
/// are identical across platforms and independent of std:: distributions).
class MatrixRng {
 public:
  explicit MatrixRng(std::uint64_t seed) : state_(seed) {}

  /// Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);
  /// Standard normal (Box-Muller on the uniform stream).
  double normal();

  /// Matrix with iid uniform [-1, 1) entries.
  Matrix uniform_matrix(idx rows, idx cols);
  /// Matrix with iid standard normal entries.
  Matrix gaussian_matrix(idx rows, idx cols);
  /// Random orthogonal matrix (QR of a Gaussian matrix).
  Matrix orthogonal_matrix(idx n);
  /// Column-graded matrix: column j scaled by `grade^j` — the shape the
  /// stratification loop produces and pre-pivoting exploits.
  Matrix graded_matrix(idx n, double grade);

 private:
  std::uint64_t next_u64();
  std::uint64_t state_;
};

}  // namespace dqmc::linalg
