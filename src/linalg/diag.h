// Diagonal scaling kernels: the "fine-grain operations" of Section IV-B.
//
// Every B-matrix application in DQMC is a row scaling (B_l = V_l * B with
// V_l diagonal), every graded step a column scaling by D_i, and the wrapping
// update a combined row+column scaling. These are memory-bound level-2
// operations, so they are threaded over rows/columns with parallel_for — the
// same OpenMP treatment the paper gives them.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// A <- diag(d) * A  (scales row i by d[i]; d has A.rows() elements).
void scale_rows(const double* d, MatrixView a);

/// A <- A * diag(d)  (scales column j by d[j]; d has A.cols() elements).
void scale_cols(const double* d, MatrixView a);

/// A <- diag(r) * A * diag(c)^{-1}: the wrapping scaling
/// (Algorithm 7 of the paper, CPU version).
void scale_rows_cols_inv(const double* r, const double* c, MatrixView a);

/// out <- diag(d) * A, leaving A untouched.
void scale_rows_into(const double* d, ConstMatrixView a, MatrixView out);

/// Extract the diagonal of a square matrix.
Vector diagonal(ConstMatrixView a);

/// Reciprocal of every entry (checked against zero).
Vector reciprocal(const Vector& d);

}  // namespace dqmc::linalg
