#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace dqmc::linalg {

namespace {

// Overflow-safe 2-norm of a contiguous column (LAPACK dnrm2 scheme): graded
// chains carry entries near e^{+-beta W/2}, whose squares can pass DBL_MAX
// long before the norms themselves do.
double column_norm_safe(const double* x, idx n) {
  double scale = 0.0, ssq = 1.0;
  for (idx i = 0; i < n; ++i) {
    const double ax = std::fabs(x[i]);
    if (ax == 0.0) continue;
    if (scale < ax) {
      const double r = scale / ax;
      ssq = 1.0 + ssq * r * r;
      scale = ax;
    } else {
      const double r = ax / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

// Cosine of the angle between two columns, each pre-scaled by its own norm
// so the products stay O(1) regardless of grading.
double scaled_cosine(const double* xp, const double* xq, idx n, double inv_p,
                     double inv_q) {
  double acc = 0.0;
  for (idx i = 0; i < n; ++i) acc += (xp[i] * inv_p) * (xq[i] * inv_q);
  return acc;
}

}  // namespace

SVDecomposition svd(ConstMatrixView a, double tol, int max_sweeps) {
  const idx m = a.rows();
  const idx n = a.cols();
  DQMC_CHECK_MSG(m >= n && n >= 1, "svd: need rows >= cols >= 1");
  DQMC_CHECK_MSG(tol > 0.0 && max_sweeps >= 1, "svd: bad tolerance/sweeps");

  Matrix work = Matrix::copy_of(a);
  Matrix v = Matrix::identity(n);
  std::vector<double> norms(static_cast<std::size_t>(n));
  for (idx j = 0; j < n; ++j) {
    norms[static_cast<std::size_t>(j)] = column_norm_safe(work.col(j), m);
  }

  // Cyclic sweeps over all column pairs; converged when every pair's cosine
  // is below tol. Serial by design: the rotation applied to pair (p, q)
  // depends on every earlier rotation of the sweep.
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    double max_cosine = 0.0;
    for (idx p = 0; p < n - 1; ++p) {
      for (idx q = p + 1; q < n; ++q) {
        const double ap = norms[static_cast<std::size_t>(p)];
        const double aq = norms[static_cast<std::size_t>(q)];
        if (ap == 0.0 || aq == 0.0) continue;
        double* colp = work.col(p);
        double* colq = work.col(q);
        const double cpq = scaled_cosine(colp, colq, m, 1.0 / ap, 1.0 / aq);
        max_cosine = std::max(max_cosine, std::fabs(cpq));
        if (std::fabs(cpq) <= tol) continue;
        // Rutishauser rotation in norm-scaled form: with r = aq/ap,
        // zeta = (aq^2 - ap^2) / (2 a_p.a_q) = (r - 1/r) / (2 cos). When r
        // itself over/underflows the columns are >300 orders apart and the
        // exact rotation is indistinguishable from identity — skip.
        const double r = aq / ap;
        if (!std::isfinite(r) || r == 0.0) continue;
        const double zeta = (r - 1.0 / r) / (2.0 * cpq);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (idx i = 0; i < m; ++i) {
          const double wp = colp[i];
          const double wq = colq[i];
          colp[i] = cs * wp - sn * wq;
          colq[i] = sn * wp + cs * wq;
        }
        double* vp = v.col(p);
        double* vq = v.col(q);
        for (idx i = 0; i < n; ++i) {
          const double xp = vp[i];
          const double xq = vq[i];
          vp[i] = cs * xp - sn * xq;
          vq[i] = sn * xp + cs * xq;
        }
        norms[static_cast<std::size_t>(p)] = column_norm_safe(colp, m);
        norms[static_cast<std::size_t>(q)] = column_norm_safe(colq, m);
      }
    }
    converged = max_cosine <= tol;
  }
  if (!converged) {
    throw NumericalError("svd: one-sided Jacobi failed to converge");
  }

  for (idx j = 0; j < n; ++j) {
    const double s = norms[static_cast<std::size_t>(j)];
    if (s == 0.0 || !std::isfinite(s)) {
      throw NumericalError("svd: zero or non-finite singular value (column " +
                           std::to_string(j) + ")");
    }
  }

  // Descending sigma; stable on ties so the factorization is a pure
  // function of the input values.
  std::vector<idx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), idx{0});
  std::stable_sort(order.begin(), order.end(), [&](idx x, idx y) {
    return norms[static_cast<std::size_t>(x)] >
           norms[static_cast<std::size_t>(y)];
  });

  SVDecomposition out;
  out.u.resize(m, n);
  out.sigma.resize(n);
  out.vt.resize(n, n);
  for (idx j = 0; j < n; ++j) {
    const idx src = order[static_cast<std::size_t>(j)];
    const double s = norms[static_cast<std::size_t>(src)];
    out.sigma[j] = s;
    const double inv = 1.0 / s;
    const double* wc = work.col(src);
    double* uc = out.u.col(j);
    for (idx i = 0; i < m; ++i) uc[i] = wc[i] * inv;
    const double* vc = v.col(src);
    for (idx i = 0; i < n; ++i) out.vt(j, i) = vc[i];
  }
  return out;
}

}  // namespace dqmc::linalg
