// Matrix norms and the threaded column-norm kernel used by pre-pivoting.
//
// Section IV-B of the paper notes that computing all column norms through
// level-1 BLAS calls leaves parallelism on the table; here the columns are
// distributed across threads (one norm per task), which is exactly the
// OpenMP scheme the paper describes.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Frobenius norm (overflow-safe).
double frobenius_norm(ConstMatrixView a);

/// Max-abs element.
double max_abs(ConstMatrixView a);

/// 2-norm of every column, written to out[0..cols). Threaded over columns.
void column_norms(ConstMatrixView a, double* out);
Vector column_norms(ConstMatrixView a);

/// ||a - b||_F / ||b||_F; the Fig. 2 accuracy metric. Returns the absolute
/// norm of `a - b` when ||b|| == 0.
double relative_difference(ConstMatrixView a, ConstMatrixView b);

}  // namespace dqmc::linalg
