#include "linalg/permutation.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace dqmc::linalg {

Permutation::Permutation(idx n) : map_(static_cast<std::size_t>(n)) {
  DQMC_CHECK(n >= 0);
  set_identity();
}

Permutation::Permutation(std::vector<idx> map) : map_(std::move(map)) {
  check_valid();
}

void Permutation::set_identity() {
  std::iota(map_.begin(), map_.end(), idx{0});
}

bool Permutation::is_identity() const {
  for (idx j = 0; j < size(); ++j)
    if (map_[static_cast<std::size_t>(j)] != j) return false;
  return true;
}

idx Permutation::displacement() const {
  idx d = 0;
  for (idx j = 0; j < size(); ++j)
    if (map_[static_cast<std::size_t>(j)] != j) ++d;
  return d;
}

double Permutation::presorted_fraction() const {
  if (size() < 2) return 1.0;
  // pos[v] = destination slot of source column v.
  std::vector<idx> pos(map_.size());
  for (idx j = 0; j < size(); ++j)
    pos[static_cast<std::size_t>(map_[static_cast<std::size_t>(j)])] = j;
  idx kept = 0;
  for (idx v = 0; v + 1 < size(); ++v) {
    if (pos[static_cast<std::size_t>(v)] < pos[static_cast<std::size_t>(v + 1)])
      ++kept;
  }
  return static_cast<double>(kept) / static_cast<double>(size() - 1);
}

Permutation Permutation::inverse() const {
  Permutation q(size());
  for (idx j = 0; j < size(); ++j) q[(*this)[j]] = j;
  return q;
}

void Permutation::check_valid() const {
  std::vector<bool> seen(map_.size(), false);
  for (idx v : map_) {
    DQMC_CHECK_MSG(v >= 0 && v < size(), "permutation entry out of range");
    DQMC_CHECK_MSG(!seen[static_cast<std::size_t>(v)],
                   "permutation entry repeated");
    seen[static_cast<std::size_t>(v)] = true;
  }
}

void apply_permutation(ConstMatrixView src, const Permutation& p,
                       MatrixView dst) {
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  DQMC_CHECK(p.size() == src.cols());
  DQMC_CHECK_MSG(src.data() != dst.data(), "apply_permutation must be out of place");
  for (idx j = 0; j < src.cols(); ++j) {
    std::memcpy(dst.col(j), src.col(p[j]),
                sizeof(double) * static_cast<std::size_t>(src.rows()));
  }
}

void apply_permutation_transpose(ConstMatrixView src, const Permutation& p,
                                 MatrixView dst) {
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  DQMC_CHECK(p.size() == src.cols());
  DQMC_CHECK_MSG(src.data() != dst.data(),
                 "apply_permutation_transpose must be out of place");
  for (idx j = 0; j < src.cols(); ++j) {
    std::memcpy(dst.col(p[j]), src.col(j),
                sizeof(double) * static_cast<std::size_t>(src.rows()));
  }
}

void permute_vector_transpose(const Permutation& p, double* x) {
  std::vector<double> tmp(static_cast<std::size_t>(p.size()));
  for (idx j = 0; j < p.size(); ++j) tmp[static_cast<std::size_t>(p[j])] = x[j];
  std::copy(tmp.begin(), tmp.end(), x);
}

void permute_vector(const Permutation& p, double* x) {
  std::vector<double> tmp(static_cast<std::size_t>(p.size()));
  for (idx j = 0; j < p.size(); ++j) tmp[static_cast<std::size_t>(j)] = x[p[j]];
  std::copy(tmp.begin(), tmp.end(), x);
}

}  // namespace dqmc::linalg
