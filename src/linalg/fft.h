// Deterministic mixed-radix FFT plans (the measurement-pipeline transform).
//
// FftPlan factors n into primes (radix-2 hardcoded, generic O(r^2) kernel
// for 3, 5 and any larger prime, so every lattice edge length works — odd
// L included) and precomputes the digit-reversal permutation plus one
// twiddle table per butterfly stage. A transform is then a fixed serial
// chain of arithmetic per signal: no in-loop trig, no std::complex (whose
// libcall NaN fixups are an ABI wildcard), just {re, im} pairs — so the
// same binary produces bitwise-identical spectra everywhere the rest of
// the hot path does.
//
// Fft2 composes two plans into the row-column transform over an lx x ly
// lattice plane. The batched entry points parallelize over whole signals /
// planes on the task runtime; each signal's arithmetic is independent of
// how the batch is chunked over threads, so results are BITWISE identical
// for any thread budget — the repo-wide determinism contract.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace dqmc::linalg {

/// Plain complex value. Deliberately not std::complex: arithmetic is
/// spelled out in the kernels so the instruction sequence is fixed.
struct Cplx {
  double re = 0.0;
  double im = 0.0;
};

/// Precomputed 1-D transform of a fixed size n >= 1 (any n: mixed radix
/// with a generic prime kernel). Plans are immutable after construction
/// and safe to share across threads.
class FftPlan {
 public:
  explicit FftPlan(idx n);

  idx size() const { return n_; }

  /// Out-of-place transforms; `out` must not alias `in`.
  ///   forward: X[k] = sum_t e^{-2 pi i k t / n} x[t]
  ///   inverse: x[t] = (1/n) sum_k e^{+2 pi i k t / n} X[k]
  void forward(const Cplx* in, Cplx* out) const { run(in, out, false); }
  void inverse(const Cplx* in, Cplx* out) const { run(in, out, true); }

 private:
  struct Stage {
    idx radix = 0;
    idx m = 0;                ///< butterflies per block (span = radix * m)
    std::vector<Cplx> tw;     ///< omega_span^j = e^{-2 pi i j / span}
  };

  void run(const Cplx* in, Cplx* out, bool inverse) const;

  idx n_ = 1;
  idx max_radix_ = 1;
  std::vector<idx> perm_;     ///< out[t] starts as in[perm_[t]]
  std::vector<Stage> stages_;
};

/// Row-column 2-D transform over an nx x ny plane stored x-fastest
/// (index x + nx * y — the Lattice in-plane site order).
class Fft2 {
 public:
  /// Per-call scratch so one immutable plan serves many threads. Any
  /// default-constructed Workspace works with any plan; the first use
  /// sizes it.
  struct Workspace {
    std::vector<Cplx> row, col_in, col_out;
  };

  Fft2(idx nx, idx ny);

  idx nx() const { return px_.size(); }
  idx ny() const { return py_.size(); }
  idx size() const { return px_.size() * py_.size(); }

  /// In-place transforms of one plane (nx * ny values).
  void forward(Cplx* plane, Workspace& ws) const { run(plane, ws, false); }
  void inverse(Cplx* plane, Workspace& ws) const { run(plane, ws, true); }

 private:
  void run(Cplx* plane, Workspace& ws, bool inverse) const;

  FftPlan px_, py_;
};

/// Batched 1-D transforms: `count` signals of plan.size() values each,
/// signal s starting at in + s * stride (same layout for out, which must
/// not overlap in). Parallel over signals with chunk-independent
/// per-signal arithmetic.
void fft_batched(const FftPlan& plan, bool inverse, const Cplx* in, Cplx* out,
                 idx count, idx stride);

/// Batched in-place 2-D transforms over `count` planes of plan.size()
/// values, plane p starting at planes + p * stride. Parallel over planes
/// with chunk-independent per-plane arithmetic.
void fft2_batched(const Fft2& plan, bool inverse, Cplx* planes, idx count,
                  idx stride);

}  // namespace dqmc::linalg
