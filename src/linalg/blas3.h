// Level-3 BLAS-style kernels: GEMM (blocked/packed/threaded), TRSM, TRMM.
//
// gemm is the library's DGEMM stand-in: a Goto-style blocked implementation
// with operand packing and OpenMP threading over row panels. Everything
// level-3 in the DQMC pipeline (clustering, wrapping, delayed-update flushes,
// blocked QR updates) funnels through it, so the Fig. 1/4 performance
// comparisons measure the same kernel the simulation runs on.
#pragma once

#include <vector>

#include "linalg/blas2.h"
#include "linalg/matrix.h"

namespace dqmc::linalg {

/// C <- alpha * op(A) * op(B) + beta * C.
/// Dimensions must satisfy op(A): m x k, op(B): k x n, C: m x n.
void gemm(Trans transa, Trans transb, double alpha, ConstMatrixView a,
          ConstMatrixView b, double beta, MatrixView c);

/// Batched GEMM over count = c.size() same-shape problems:
///   C_i <- alpha * op(A_i) * op(B_i) + beta * C_i.
/// An `a` (resp. `b`) argument of size 1 with count > 1 designates one
/// SHARED operand read by every item — the walker-crowd case where
/// exp(-dtau K) is the same left/right factor for all W x 2 wraps. The
/// shared panel is packed ONCE per cache block and every item's GEBP
/// passes stream over it; per-item panels are packed per item.
///
/// Each item runs the exact jc/pc/ic blocking of gemm() over identical
/// packed buffer contents, so the result of item i is BITWISE identical
/// to gemm(transa, transb, alpha, a_i, b_i, beta, c_i) at any worker
/// count. All items must share op-dimensions (m, n, k); outputs must not
/// alias each other or any input.
void gemm_batched(Trans transa, Trans transb, double alpha,
                  const std::vector<ConstMatrixView>& a,
                  const std::vector<ConstMatrixView>& b, double beta,
                  const std::vector<MatrixView>& c);

/// Convenience: returns op(A) * op(B) as a fresh matrix.
Matrix matmul(ConstMatrixView a, ConstMatrixView b, Trans transa = Trans::No,
              Trans transb = Trans::No);

/// Side selector for triangular multiply/solve.
enum class Side { Left, Right };

/// Triangular solve with multiple right-hand sides:
///   Side::Left :  op(T) * X = alpha * B,  X overwrites B (T is m x m)
///   Side::Right:  X * op(T) = alpha * B,  X overwrites B (T is n x n)
void trsm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

/// Triangular matrix multiply:
///   Side::Left :  B <- alpha * op(T) * B
///   Side::Right:  B <- alpha * B * op(T)
void trmm(Side side, UpLo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView t, MatrixView b);

}  // namespace dqmc::linalg
