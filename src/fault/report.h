// Fault-recovery accounting: every fault the walker supervisor observed,
// what it did about it, and the summary counters that land in the run
// manifest's "fault" section (and the golden regression fixtures).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dqmc::fault {

/// One observed fault (or recovery decision) on a chain's timeline.
struct FaultEvent {
  std::string site;         ///< fail-point site, "health", or "checkpoint"
  std::string fault_class;  ///< fault_class_name() of the classification
  /// What the supervisor did: "retry" | "restart" | "degrade" |
  /// "degrade-precision" | "retry-checkpoint" | "skip-checkpoint" |
  /// "disable-health" | "abort".
  std::string action;
  std::int64_t sweep = 0;   ///< global sweep index of the segment boundary
  int attempt = 0;          ///< 1-based attempt number within the segment
  double backoff_ms = 0.0;  ///< deterministic backoff scheduled before retry
  std::string detail;       ///< exception message
};

/// Per-chain (or chain-merged) recovery summary.
struct FaultReport {
  std::vector<FaultEvent> events;
  std::uint64_t faults = 0;       ///< faults observed (all classes)
  std::uint64_t retries = 0;      ///< same-backend restart attempts
  std::uint64_t restarts = 0;     ///< checkpoint restorations performed
  std::uint64_t degradations = 0; ///< gpusim -> host backend switches
  /// fp32 -> fp64 precision-policy switches (health trips that exhausted
  /// the retry budget while the run was on fp32 wraps).
  std::uint64_t precision_degradations = 0;
  std::uint64_t health_trips = 0; ///< health-monitor trips (injected or real)
  std::uint64_t checkpoints = 0;  ///< recovery checkpoints taken
  std::uint64_t checkpoint_faults = 0;  ///< checkpoint I/O failures absorbed
  bool degraded = false;          ///< finished on a different backend
  std::string final_backend;      ///< backend the run finished on

  /// Fold another chain's report into this one (counters add, events
  /// append in order, degraded ORs).
  FaultReport& operator+=(const FaultReport& other);

  /// {"faults","retries",...,"degraded","final_backend","events":[...]}.
  obs::Json json_value() const;

  /// Bit-exact text round trip (hexio format). load() replaces the whole
  /// report, events included.
  void save(std::ostream& out) const;
  void load(std::istream& in);
};

}  // namespace dqmc::fault
