#include "fault/failpoint.h"

#include "common/env.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace dqmc::fault {

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kDeviceFault: return "device";
    case FaultClass::kIoError: return "io";
    case FaultClass::kNumericalFault: return "numerical";
    case FaultClass::kHealthTrip: return "health";
  }
  return "unknown";
}

FaultClass fault_class_for_site(const std::string& site) {
  const auto has_prefix = [&site](const char* p) {
    return site.rfind(p, 0) == 0;
  };
  if (has_prefix("checkpoint.") || has_prefix("fleet.io"))
    return FaultClass::kIoError;
  if (has_prefix("graded.") || has_prefix("strat."))
    return FaultClass::kNumericalFault;
  if (has_prefix("supervisor.") || has_prefix("health."))
    return FaultClass::kHealthTrip;
  return FaultClass::kDeviceFault;
}

InjectedFault::InjectedFault(std::string site, FaultClass cls,
                             std::uint64_t hit)
    : Error("injected " + std::string(fault_class_name(cls)) +
            " fault at fail point '" + site + "' (hit " +
            std::to_string(hit) + ")"),
      site_(std::move(site)),
      class_(cls),
      hit_(hit) {}

FailPointRegistry& FailPointRegistry::global() {
  static FailPointRegistry* registry = [] {
    auto* r = new FailPointRegistry();
    if (const auto spec = env_string("DQMC_FAILPOINTS")) r->arm_spec(*spec);
    // Crash dumps carry the registry state; registering here (first use)
    // keeps obs -> fault dependency-free while every run that touches a
    // fail point gets the section.
    obs::flight_recorder().register_section("failpoints", [r] {
      obs::Json sites = obs::Json::object();
      for (const auto& [site, st] : r->sites()) {
        sites.set(site, obs::Json::object()
                            .set("hits", st.hits)
                            .set("trigger_at", st.trigger_at)
                            .set("fired", st.fired)
                            .set("armed", st.armed));
      }
      return obs::Json::object()
          .set("total_fired", r->total_fired())
          .set("sites", std::move(sites));
    });
    return r;
  }();
  return *registry;
}

void FailPointRegistry::arm(const std::string& site, std::uint64_t nth,
                            std::uint64_t count) {
  DQMC_CHECK_MSG(!site.empty(), "fail-point site name must not be empty");
  DQMC_CHECK_MSG(nth >= 1, "fail-point trigger hit is 1-based");
  DQMC_CHECK_MSG(count >= 1, "fail-point fire count must be >= 1");
  std::lock_guard lock(mutex_);
  FailPointState& st = sites_[site];
  if (!st.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  st = FailPointState{};
  st.trigger_at = nth;
  st.fire_count = count;
  st.armed = true;
}

void FailPointRegistry::arm_spec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace.
    const auto first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = entry.find_last_not_of(" \t");
    entry = entry.substr(first, last - first + 1);

    const auto colon = entry.find(':');
    DQMC_CHECK_MSG(colon != std::string::npos && colon > 0,
                   "fail-point spec entry is not 'site:N': '" + entry + "'");
    const std::string site = entry.substr(0, colon);
    std::string rest = entry.substr(colon + 1);
    std::uint64_t count = 1;
    if (!rest.empty() && rest.back() == '+') {
      count = kPersistent;
      rest.pop_back();
    } else if (const auto colon2 = rest.find(':');
               colon2 != std::string::npos) {
      const std::string count_str = rest.substr(colon2 + 1);
      rest = rest.substr(0, colon2);
      try {
        count = std::stoull(count_str);
      } catch (const std::exception&) {
        throw InvalidArgument("fail-point spec count is not a number: '" +
                              entry + "'");
      }
    }
    std::uint64_t nth = 0;
    try {
      nth = std::stoull(rest);
    } catch (const std::exception&) {
      throw InvalidArgument("fail-point spec hit is not a number: '" + entry +
                            "'");
    }
    arm(site, nth, count);
  }
}

void FailPointRegistry::disarm(const std::string& site) {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FailPointRegistry::disarm_all() {
  std::lock_guard lock(mutex_);
  int armed = 0;
  for (const auto& [site, st] : sites_) {
    if (st.armed) ++armed;
  }
  sites_.clear();
  total_fired_ = 0;
  armed_sites_.fetch_sub(armed, std::memory_order_relaxed);
}

bool FailPointRegistry::fire(const char* site, std::uint64_t* hit_out) {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;  // never armed: no bookkeeping
  FailPointState& st = it->second;
  ++st.hits;
  if (!st.armed || st.hits < st.trigger_at) return false;
  ++st.fired;
  ++total_fired_;
  if (st.fire_count != kPersistent && st.fired >= st.fire_count) {
    // Exhausted: restore the zero-overhead fast path.
    st.armed = false;
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (hit_out) *hit_out = st.hits;
  obs::metrics().count(std::string("fault.fired.") + site);
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kFailpoint, site,
                    fault_class_name(fault_class_for_site(site)),
                    static_cast<double>(st.hits),
                    static_cast<double>(st.fired));
  return true;
}

void FailPointRegistry::hit(const char* site) {
  std::uint64_t hitno = 0;
  if (fire(site, &hitno)) {
    throw InjectedFault(site, fault_class_for_site(site), hitno);
  }
}

FailPointState FailPointRegistry::state(const std::string& site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second : FailPointState{};
}

std::vector<std::pair<std::string, FailPointState>>
FailPointRegistry::sites() const {
  std::lock_guard lock(mutex_);
  return {sites_.begin(), sites_.end()};
}

std::uint64_t FailPointRegistry::total_fired() const {
  std::lock_guard lock(mutex_);
  return total_fired_;
}

}  // namespace dqmc::fault
