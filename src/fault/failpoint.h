// Deterministic fail-point injection for the fault-recovery subsystem.
//
// A fail point is a NAMED site in the code (see docs/RELIABILITY.md for the
// catalog) that can be armed to raise an InjectedFault on its Nth hit —
// letting tests and operators exercise failure paths (device faults, I/O
// errors, health trips) reproducibly: the same arm spec against the same
// run always fires at the same point of the trajectory.
//
// Zero-overhead contract: a DQMC_FAILPOINT in a hot path costs exactly one
// relaxed atomic load while nothing is armed (and compiles out entirely
// under -DDQMC_NO_FAILPOINTS; bench/obs_overhead measures both). Hit
// counters only tick for armed sites, so the registry does no bookkeeping
// for sites nobody asked about.
//
// Activation:
//   * env:    DQMC_FAILPOINTS="backend.enqueue:3,checkpoint.save:1"
//             (read once, on first registry use)
//   * CLI:    dqmc_run --failpoint=<site>:<n>
//   * config: failpoints = <spec> in the input file
//   * code:   fault::failpoints().arm("graded.qr", 5)
//
// Spec grammar, per comma-separated entry:
//   site:N      fire once, on the Nth hit (1-based)
//   site:N+     fire on the Nth hit and every hit after it (persistent)
//   site:N:M    fire on hits N .. N+M-1 (M consecutive failures)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace dqmc::fault {

/// Failure taxonomy the walker supervisor recovers by (see
/// dqmc/supervisor.h for the class -> recovery-action mapping).
enum class FaultClass {
  kDeviceFault,     ///< backend / device stream failure -> retry, degrade
  kIoError,         ///< checkpoint read/write failure -> retry, skip
  kNumericalFault,  ///< graded QR / stabilization blow-up -> restart
  kHealthTrip,      ///< health-monitor anomaly -> restart, then disable
};

const char* fault_class_name(FaultClass c);

/// Class of a (known or unknown) site, by prefix: checkpoint.* -> I/O,
/// graded.*/strat.* -> numerical, supervisor.*/health.* -> health trip,
/// everything else (backend.*, gpusim.*) -> device fault.
FaultClass fault_class_for_site(const std::string& site);

/// The exception an armed fail point raises when it fires.
class InjectedFault : public Error {
 public:
  InjectedFault(std::string site, FaultClass cls, std::uint64_t hit);

  const std::string& site() const { return site_; }
  FaultClass fault_class() const { return class_; }
  /// Which hit of the site fired (1-based).
  std::uint64_t hit() const { return hit_; }

 private:
  std::string site_;
  FaultClass class_;
  std::uint64_t hit_;
};

/// Observable state of one armed (or exhausted) site.
struct FailPointState {
  std::uint64_t hits = 0;        ///< hits observed since arming
  std::uint64_t trigger_at = 0;  ///< first firing hit (1-based)
  std::uint64_t fire_count = 1;  ///< consecutive firings (kPersistent = all)
  std::uint64_t fired = 0;       ///< times it actually fired
  bool armed = false;            ///< still able to fire
};

class FailPointRegistry {
 public:
  /// fire_count sentinel: fire on every hit from trigger_at on.
  static constexpr std::uint64_t kPersistent = ~std::uint64_t{0};

  FailPointRegistry() = default;
  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

  /// The process-wide registry DQMC_FAILPOINT reports to. On first use it
  /// arms itself from the DQMC_FAILPOINTS environment spec (if set).
  static FailPointRegistry& global();

  /// Arm `site` to fire on hits [nth, nth + count) (nth is 1-based;
  /// count = kPersistent never exhausts). Re-arming a site resets its
  /// counters.
  void arm(const std::string& site, std::uint64_t nth,
           std::uint64_t count = 1);
  /// Arm from a comma-separated spec (see file comment for the grammar).
  /// Empty spec is a no-op; malformed entries throw InvalidArgument.
  void arm_spec(const std::string& spec);
  void disarm(const std::string& site);
  /// Forget every site (state AND counters) — tests call this between cases.
  void disarm_all();

  /// True while at least one site can still fire. This is the single
  /// relaxed load the DQMC_FAILPOINT macro pays on the hot path.
  bool any_armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Count a hit at `site`; returns true when the site fires. Non-throwing
  /// on the fire path — contexts that must not throw (the gpusim stream
  /// thread) use this and surface the fault themselves. `hit_out`, when
  /// non-null, receives the 1-based hit number.
  bool fire(const char* site, std::uint64_t* hit_out = nullptr);

  /// Count a hit and throw InjectedFault when the site fires.
  void hit(const char* site);

  /// Snapshot of a site's counters (zeros when never armed).
  FailPointState state(const std::string& site) const;
  /// All sites ever armed since the last disarm_all(), in name order.
  std::vector<std::pair<std::string, FailPointState>> sites() const;
  /// Total firings across all sites since the last disarm_all().
  std::uint64_t total_fired() const;

 private:
  std::atomic<int> armed_sites_{0};
  mutable std::mutex mutex_;
  std::map<std::string, FailPointState> sites_;
  std::uint64_t total_fired_ = 0;
};

/// Shorthand for FailPointRegistry::global().
inline FailPointRegistry& failpoints() { return FailPointRegistry::global(); }

}  // namespace dqmc::fault

#if defined(DQMC_NO_FAILPOINTS)
/// Compiled out: the site costs nothing (tests/fault/test_failpoint_compileout
/// proves it stays dead even with the registry armed).
#define DQMC_FAILPOINT(site) ((void)0)
#define DQMC_FAILPOINT_FIRE(site) (false)
#else
/// Throwing fail point: one relaxed atomic load when nothing is armed.
#define DQMC_FAILPOINT(site)                        \
  do {                                              \
    if (::dqmc::fault::failpoints().any_armed())    \
      ::dqmc::fault::failpoints().hit(site);        \
  } while (0)
/// Non-throwing fail point for code that surfaces faults asynchronously.
#define DQMC_FAILPOINT_FIRE(site)                   \
  (::dqmc::fault::failpoints().any_armed() &&       \
   ::dqmc::fault::failpoints().fire(site))
#endif
