#include "fault/report.h"

#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/hexio.h"

namespace dqmc::fault {

FaultReport& FaultReport::operator+=(const FaultReport& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  faults += other.faults;
  retries += other.retries;
  restarts += other.restarts;
  degradations += other.degradations;
  precision_degradations += other.precision_degradations;
  health_trips += other.health_trips;
  checkpoints += other.checkpoints;
  checkpoint_faults += other.checkpoint_faults;
  degraded = degraded || other.degraded;
  if (final_backend.empty()) final_backend = other.final_backend;
  return *this;
}

obs::Json FaultReport::json_value() const {
  obs::Json evs = obs::Json::array();
  for (const FaultEvent& e : events) {
    evs.push_back(obs::Json::object()
                      .set("site", e.site)
                      .set("class", e.fault_class)
                      .set("action", e.action)
                      .set("sweep", e.sweep)
                      .set("attempt", e.attempt)
                      .set("backoff_ms", e.backoff_ms)
                      .set("detail", e.detail));
  }
  obs::Json j = obs::Json::object()
      .set("faults", faults)
      .set("retries", retries)
      .set("restarts", restarts)
      .set("degradations", degradations);
  // Conditional so fp64-only runs (and the pre-existing golden fixtures)
  // keep their manifest bytes.
  if (precision_degradations > 0) {
    j.set("precision_degradations", precision_degradations);
  }
  return j.set("health_trips", health_trips)
      .set("checkpoints", checkpoints)
      .set("checkpoint_faults", checkpoint_faults)
      .set("degraded", degraded)
      .set("final_backend", final_backend)
      .set("events", std::move(evs));
}

void FaultReport::save(std::ostream& out) const {
  out << "fault-report\n";
  hexio::put_u64(out, faults);
  hexio::put_u64(out, retries);
  hexio::put_u64(out, restarts);
  hexio::put_u64(out, degradations);
  hexio::put_u64(out, precision_degradations);
  hexio::put_u64(out, health_trips);
  hexio::put_u64(out, checkpoints);
  hexio::put_u64(out, checkpoint_faults);
  hexio::put_u64(out, degraded ? 1 : 0);
  hexio::put_block(out, final_backend);
  hexio::put_u64(out, events.size());
  for (const FaultEvent& e : events) {
    hexio::put_block(out, e.site);
    hexio::put_block(out, e.fault_class);
    hexio::put_block(out, e.action);
    hexio::put_u64(out, static_cast<std::uint64_t>(e.sweep));
    hexio::put_u64(out, static_cast<std::uint64_t>(e.attempt));
    hexio::put_double(out, e.backoff_ms);
    hexio::put_block(out, e.detail);
  }
}

void FaultReport::load(std::istream& in) {
  hexio::expect(in, "fault-report");
  faults = hexio::get_u64(in);
  retries = hexio::get_u64(in);
  restarts = hexio::get_u64(in);
  degradations = hexio::get_u64(in);
  precision_degradations = hexio::get_u64(in);
  health_trips = hexio::get_u64(in);
  checkpoints = hexio::get_u64(in);
  checkpoint_faults = hexio::get_u64(in);
  degraded = hexio::get_u64(in) != 0;
  final_backend = hexio::get_block(in);
  const std::uint64_t n = hexio::get_u64(in);
  // Payloads cross a process boundary; bound the count before resizing so
  // a corrupted frame cannot drive an absurd allocation.
  DQMC_CHECK_MSG(n <= 1u << 20, "FaultReport::load: implausible event count");
  events.assign(static_cast<std::size_t>(n), FaultEvent{});
  for (FaultEvent& e : events) {
    e.site = hexio::get_block(in);
    e.fault_class = hexio::get_block(in);
    e.action = hexio::get_block(in);
    e.sweep = static_cast<std::int64_t>(hexio::get_u64(in));
    e.attempt = static_cast<int>(hexio::get_u64(in));
    e.backoff_ms = hexio::get_double(in);
    e.detail = hexio::get_block(in);
  }
}

}  // namespace dqmc::fault
