#include "fault/report.h"

namespace dqmc::fault {

FaultReport& FaultReport::operator+=(const FaultReport& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  faults += other.faults;
  retries += other.retries;
  restarts += other.restarts;
  degradations += other.degradations;
  precision_degradations += other.precision_degradations;
  health_trips += other.health_trips;
  checkpoints += other.checkpoints;
  checkpoint_faults += other.checkpoint_faults;
  degraded = degraded || other.degraded;
  if (final_backend.empty()) final_backend = other.final_backend;
  return *this;
}

obs::Json FaultReport::json_value() const {
  obs::Json evs = obs::Json::array();
  for (const FaultEvent& e : events) {
    evs.push_back(obs::Json::object()
                      .set("site", e.site)
                      .set("class", e.fault_class)
                      .set("action", e.action)
                      .set("sweep", e.sweep)
                      .set("attempt", e.attempt)
                      .set("backoff_ms", e.backoff_ms)
                      .set("detail", e.detail));
  }
  obs::Json j = obs::Json::object()
      .set("faults", faults)
      .set("retries", retries)
      .set("restarts", restarts)
      .set("degradations", degradations);
  // Conditional so fp64-only runs (and the pre-existing golden fixtures)
  // keep their manifest bytes.
  if (precision_degradations > 0) {
    j.set("precision_degradations", precision_degradations);
  }
  return j.set("health_trips", health_trips)
      .set("checkpoints", checkpoints)
      .set("checkpoint_faults", checkpoint_faults)
      .set("degraded", degraded)
      .set("final_backend", final_backend)
      .set("events", std::move(evs));
}

}  // namespace dqmc::fault
