// Minimal JSON document model shared by the observability exporters.
//
// Every obs artifact (Chrome trace, metrics snapshot, run manifest) is built
// as a Json tree and serialized with dump(); parse() gives tests and the
// ctest smoke validator a round-trip check without external dependencies.
// Objects preserve insertion order so emitted documents are deterministic.
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.h"

namespace dqmc::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Json(T v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json object() { Json j; j.type_ = Type::kObject; return j; }
  static Json array() { Json j; j.type_ = Type::kArray; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool boolean() const;
  double number() const;
  const std::string& str() const;

  /// Object member access. set() replaces an existing key and returns *this
  /// so documents can be built by chaining.
  Json& set(const std::string& key, Json value);
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Null when absent (object-typed values only).
  const Json* find(const std::string& key) const;
  /// Throws InvalidArgument when the key is absent.
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Array access.
  void push_back(Json value);
  std::size_t size() const;
  const Json& operator[](std::size_t i) const;

  /// Serialize. indent < 0 emits compact single-line JSON; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws InvalidArgument (with the byte
  /// offset) on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> items_;                            // array
};

}  // namespace dqmc::obs
