#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace dqmc::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() : epoch_(Clock::now()), id_(next_tracer_id()) {}

Tracer& Tracer::global() {
  // Leaked so worker threads may emit during static destruction.
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::set_buffer_capacity(std::size_t events) {
  DQMC_CHECK_MSG(events >= 1, "trace buffer capacity must be >= 1");
  std::lock_guard lock(registry_mutex_);
  capacity_ = events;
}

void Tracer::ThreadBuffer::push(const TraceEvent& e) {
  std::lock_guard buf_lock(mutex);
  if (ring.empty()) ring.reserve(capacity);
  if (count < capacity) {
    ring.push_back(e);
    ++count;
  } else {
    // Overwrite the oldest event (ring policy) and account the loss.
    ring[head] = e;
    head = (head + 1) % capacity;
    ++dropped;
  }
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Per-thread cache of (tracer id -> buffer). Tracer ids are never reused,
  // so a stale entry can never alias a new tracer instance.
  struct CacheEntry {
    std::uint64_t tracer_id;
    ThreadBuffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.tracer_id == id_) return *e.buffer;
  }
  std::lock_guard lock(registry_mutex_);
  const int tid = static_cast<int>(buffers_.size());
  buffers_.push_back(std::make_unique<ThreadBuffer>(tid, capacity_));
  ThreadBuffer* buf = buffers_.back().get();
  cache.push_back({id_, buf});
  return *buf;
}

void Tracer::complete(const char* name, const char* cat, double ts_us,
                      double dur_us, const char* arg_name, double arg_value) {
  if (!enabled()) return;
  local_buffer().push({name, cat, ts_us, dur_us, 'X', arg_name, arg_value});
}

void Tracer::instant(const char* name, const char* cat, const char* arg_name,
                     double arg_value) {
  if (!enabled()) return;
  local_buffer().push({name, cat, now_us(), 0.0, 'i', arg_name, arg_value});
}

void Tracer::counter(const char* name, const char* cat, const char* series,
                     double value) {
  if (!enabled()) return;
  local_buffer().push({name, cat, now_us(), 0.0, 'C', series, value});
}

void Tracer::set_current_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  buf.name = name;
}

std::size_t Tracer::recorded() const {
  std::lock_guard lock(registry_mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mutex);
    total += buf->count;
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

Json Tracer::trace_json() const {
  struct Tagged {
    TraceEvent event;
    int tid;
  };
  std::vector<Tagged> events;
  std::vector<std::pair<int, std::string>> names;
  {
    std::lock_guard lock(registry_mutex_);
    for (const auto& buf : buffers_) {
      std::lock_guard buf_lock(buf->mutex);
      for (std::size_t i = 0; i < buf->count; ++i) {
        const TraceEvent& e = buf->ring[(buf->head + i) % buf->capacity];
        events.push_back({e, buf->tid});
      }
      names.emplace_back(buf->tid, buf->name.empty()
                                       ? "thread-" + std::to_string(buf->tid)
                                       : buf->name);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.event.ts_us < b.event.ts_us;
                   });

  Json list = Json::array();
  for (const auto& [tid, name] : names) {
    Json meta = Json::object();
    meta.set("name", "thread_name").set("ph", "M").set("pid", 1).set("tid", tid);
    meta.set("args", Json::object().set("name", name));
    list.push_back(std::move(meta));
  }
  for (const Tagged& t : events) {
    const TraceEvent& e = t.event;
    Json ev = Json::object();
    ev.set("name", e.name).set("cat", e.cat);
    ev.set("ph", std::string(1, e.ph));
    ev.set("ts", e.ts_us);
    if (e.ph == 'X') ev.set("dur", e.dur_us);
    if (e.ph == 'i') ev.set("s", "t");  // thread-scoped instant
    ev.set("pid", 1).set("tid", t.tid);
    if (e.arg_name != nullptr) {
      ev.set("args", Json::object().set(e.arg_name, e.arg_value));
    }
    list.push_back(std::move(ev));
  }

  Json doc = Json::object();
  doc.set("traceEvents", std::move(list));
  doc.set("displayTimeUnit", "ms");
  doc.set("droppedEvents", dropped());
  return doc;
}

void Tracer::write_json(const std::string& path) const {
  const std::string text = json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open trace output file: " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    throw Error("short write to trace output file: " + path);
  }
}

void Tracer::reset() {
  std::lock_guard lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mutex);
    buf->ring.clear();
    buf->head = 0;
    buf->count = 0;
    buf->dropped = 0;
  }
  epoch_ = Clock::now();
}

}  // namespace dqmc::obs
