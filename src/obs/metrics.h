// Metrics registry: named counters, gauges, and histograms with JSON
// export, shared by the DQMC engine, the gpusim device queue, and the CLI.
//
// The registry is disabled by default; recording helpers (count / set /
// observe) are no-ops while disabled so instrumented hot paths pay one
// relaxed atomic load. Metric objects returned by counter()/gauge()/
// histogram() have registry lifetime, so call sites may cache references.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dqmc::obs {

/// Monotonically increasing event count (thread-safe).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (thread-safe).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary: count/sum/min/max plus geometric (decade) buckets
/// over the absolute value, prometheus-style cumulative on export.
class Histogram {
 public:
  /// Bucket upper bounds 10^kMinExp .. 10^kMaxExp plus an overflow bucket.
  static constexpr int kMinExp = -12;
  static constexpr int kMaxExp = 12;
  static constexpr int kBuckets = kMaxExp - kMinExp + 2;
  /// Sliding sample window behind quantile(): the decade buckets are far
  /// too coarse for p50/p95/p99, so the last kQuantileWindow raw samples
  /// are retained and order-selected on demand.
  static constexpr std::size_t kQuantileWindow = 256;

  void observe(double v);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double mean() const;  ///< 0 when empty

  /// Nearest-rank quantile (q in [0,1]) over the most recent
  /// kQuantileWindow samples; 0 when empty. q=0 is the window minimum,
  /// q=1 the window maximum.
  double quantile(double q) const;

  /// {"count","sum","mean","min","max","p50","p95","p99",
  ///  "buckets":[{"le","count"},...]}
  /// (only non-empty buckets; min/max/quantiles omitted when empty).
  Json json_value() const;
  void reset();

 private:
  double quantile_locked(double q) const;  ///< caller holds mutex_

  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t buckets_[kBuckets] = {};
  std::vector<double> window_;     ///< ring of recent samples
  std::size_t window_next_ = 0;    ///< next ring slot once full
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the pipeline instrumentation reports to.
  static MetricsRegistry& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime. A name registers as exactly one kind; re-registering it as
  /// another kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Recording helpers: no-ops while the registry is disabled.
  void count(const std::string& name, std::uint64_t delta = 1) {
    if (enabled()) counter(name).add(delta);
  }
  void set(const std::string& name, double value) {
    if (enabled()) gauge(name).set(value);
  }
  void observe(const std::string& name, double value) {
    if (enabled()) histogram(name).observe(value);
  }

  /// Lookup without creation; nullptr when the name is not registered (or
  /// registered as a different kind).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} sorted by name.
  Json json_value() const;
  std::string json() const { return json_value().dump(); }

  /// Human-readable name/value table (counters and gauges one line each,
  /// histograms as count/mean/min/max).
  std::string report() const;

  /// Zero every metric; registrations are kept.
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace dqmc::obs
