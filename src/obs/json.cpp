#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dqmc::obs {

bool Json::boolean() const {
  DQMC_CHECK_MSG(is_bool(), "Json value is not a bool");
  return bool_;
}

double Json::number() const {
  DQMC_CHECK_MSG(is_number(), "Json value is not a number");
  return number_;
}

const std::string& Json::str() const {
  DQMC_CHECK_MSG(is_string(), "Json value is not a string");
  return string_;
}

Json& Json::set(const std::string& key, Json value) {
  DQMC_CHECK_MSG(is_object(), "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  DQMC_CHECK_MSG(v != nullptr, "Json key not found: " + key);
  return *v;
}

void Json::push_back(Json value) {
  DQMC_CHECK_MSG(is_array(), "Json::push_back on a non-array");
  items_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  return 0;
}

const Json& Json::operator[](std::size_t i) const {
  DQMC_CHECK_MSG(is_array() && i < items_.size(), "Json array index out of range");
  return items_[i];
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // JSON has no NaN/Inf; emit null so exported documents always parse.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles but writes 1 as "1"; keep integers compact.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, number_); return;
    case Type::kString: append_escaped(out, string_); return;
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at byte " + std::to_string(pos_) +
                          ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the exporters never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace dqmc::obs
