// Live progress streaming: aggregates per-walker sweep completions from
// the drivers (single chain, parallel chains, walker crowds) into
// throughput / ETA / acceptance / backend-queue gauges, emitted as
// periodic JSONL telemetry records and an optional single-line human
// progress display.
//
// The reporter lives in the obs layer and knows nothing about the engine:
// drivers call on_sweep() once per completed chain-sweep unit (a crowd of
// W walkers completes W units per lockstep sweep) and the reporter pulls
// everything else (accept rate, queue depth, GEMM quantiles) from the
// global MetricsRegistry. Thread-safe — concurrent chains may report from
// worker threads.
//
// Record schema (one JSON object per line, telemetry_version 1):
//   {"telemetry_version":1,"label":...,"seq":N,"ts_ms":...,
//    "phase":"warmup"|"measure"|"done","sweeps_done":...,
//    "sweeps_total":...,"walkers":...,"sweeps_per_sec":...,
//    "eta_seconds":...,"accept_rate":...,"queue_depth":...,
//    "gemm_gflops_p50":...,"gemm_gflops_p95":...,"gemm_gflops_p99":...}
// Every key is always present; validate_record() is the schema authority
// shared by the tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/json.h"

namespace dqmc::obs {

struct ProgressOptions {
  std::string jsonl_path;     ///< empty: no JSONL stream
  double interval_ms = 250.0; ///< min spacing between periodic records
  bool human = false;         ///< render a live single-line progress bar
  std::string label = "dqmc"; ///< stamped into every record
  std::uint64_t total_sweeps = 0;  ///< aggregate chain-sweep units expected
  std::uint64_t warmup_sweeps = 0; ///< units belonging to the warmup phase
  int walkers = 1;            ///< lockstep crowd width (1 = chains)
};

class ProgressReporter {
 public:
  explicit ProgressReporter(ProgressOptions options);
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// One completed chain-sweep unit. `warmup` tags the phase of the unit.
  /// Emits a record when interval_ms has elapsed since the previous one.
  void on_sweep(bool warmup);

  /// Force the final record (phase "done", eta_seconds 0) and finish the
  /// human line. Idempotent; the destructor calls it.
  void finish();

  std::uint64_t sweeps_done() const;
  std::uint64_t records_emitted() const;

  /// Schema authority for one telemetry record; on failure returns false
  /// and explains in *error (may be null).
  static bool validate_record(const Json& record, std::string* error);

 private:
  void emit_locked(bool final);

  const ProgressOptions options_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::FILE* jsonl_ = nullptr;
  std::uint64_t done_ = 0;
  std::uint64_t warmup_done_ = 0;
  bool last_was_warmup_ = false;
  std::uint64_t records_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point last_emit_;
};

}  // namespace dqmc::obs
