#include "obs/health.h"

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace dqmc::obs {

Json RunningStat::json_value() const {
  Json j = Json::object();
  j.set("count", count);
  j.set("mean", mean());
  if (count > 0) {
    j.set("min", min);
    j.set("max", max);
  }
  return j;
}

HealthMonitor& HealthMonitor::global() {
  // Leaked so instrumented code may record during static destruction.
  static HealthMonitor* instance = new HealthMonitor();
  return *instance;
}

void HealthMonitor::set_thresholds(const HealthThresholds& t) {
  std::lock_guard lock(mutex_);
  thresholds_ = t;
}

HealthThresholds HealthMonitor::thresholds() const {
  std::lock_guard lock(mutex_);
  return thresholds_;
}

void HealthMonitor::violation(const char* what, double value) {
  // Called with mutex_ held; the tracer and the flight recorder have their
  // own synchronization.
  ++state_.violations;
  Tracer::global().instant(what, "health", "value", value);
  DQMC_FLIGHT_EVENT(FlightEventKind::kHealth, what, "violation", value);
}

void HealthMonitor::record_wrap_drift(double drift, bool fp32) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  state_.wrap_drift.add(drift);
  if (fp32) fp32_drift_seen_ = true;
  const double limit =
      fp32 ? thresholds_.max_wrap_drift_fp32 : thresholds_.max_wrap_drift;
  if (drift > limit) {
    violation("health.wrap_drift_warn", drift);
  }
}

void HealthMonitor::record_sortedness(double sortedness) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  state_.sortedness.add(sortedness);
  if (sortedness < thresholds_.min_sortedness) {
    violation("health.sortedness_warn", sortedness);
  }
}

void HealthMonitor::record_sign(int sign) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  ++state_.sign_samples;
  state_.sign_sum += static_cast<double>(sign);
  // The running average is a property of the whole stream, not one sample:
  // warn once per crossing instead of on every subsequent configuration.
  if (state_.sign_samples >= thresholds_.min_sign_samples) {
    const double avg = state_.average_sign();
    if (avg < thresholds_.min_avg_sign) {
      if (!sign_warned_) violation("health.sign_warn", avg);
      sign_warned_ = true;
    } else {
      sign_warned_ = false;
    }
  }
}

HealthMonitor::Summary HealthMonitor::summary() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::uint64_t HealthMonitor::violations() const {
  std::lock_guard lock(mutex_);
  return state_.violations;
}

Json HealthMonitor::json_value() const {
  std::lock_guard lock(mutex_);
  Json j = Json::object();
  j.set("enabled", enabled());
  j.set("wrap_drift", state_.wrap_drift.json_value());
  j.set("sortedness", state_.sortedness.json_value());
  j.set("average_sign", state_.average_sign());
  j.set("sign_samples", state_.sign_samples);
  j.set("violations", state_.violations);
  Json t = Json::object();
  t.set("max_wrap_drift", thresholds_.max_wrap_drift);
  // Emitted only when an fp32 sample actually arrived, so fp64-only runs
  // keep their manifest bytes (same pattern as the conditional config keys).
  if (fp32_drift_seen_) {
    t.set("max_wrap_drift_fp32", thresholds_.max_wrap_drift_fp32);
  }
  t.set("min_sortedness", thresholds_.min_sortedness);
  t.set("min_avg_sign", thresholds_.min_avg_sign);
  t.set("min_sign_samples", thresholds_.min_sign_samples);
  j.set("thresholds", std::move(t));
  return j;
}

void HealthMonitor::reset() {
  std::lock_guard lock(mutex_);
  state_ = Summary{};
  sign_warned_ = false;
  fp32_drift_seen_ = false;
}

}  // namespace dqmc::obs
