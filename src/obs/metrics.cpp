#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dqmc::obs {

namespace {

/// Bucket index for |v|: decades 10^kMinExp..10^kMaxExp, then overflow.
int bucket_index(double v) {
  const double a = std::fabs(v);
  if (a <= std::pow(10.0, Histogram::kMinExp)) return 0;
  const int exp = static_cast<int>(std::ceil(std::log10(a)));
  if (exp > Histogram::kMaxExp) return Histogram::kBuckets - 1;
  return exp - Histogram::kMinExp;
}

}  // namespace

void Histogram::observe(double v) {
  if (!std::isfinite(v)) return;  // non-finite samples would poison sum/mean
  std::lock_guard lock(mutex_);
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++buckets_[bucket_index(v)];
  if (window_.size() < kQuantileWindow) {
    window_.push_back(v);
  } else {
    window_[window_next_] = v;
    window_next_ = (window_next_ + 1) % kQuantileWindow;
  }
}

double Histogram::quantile(double q) const {
  std::lock_guard lock(mutex_);
  return quantile_locked(q);
}

double Histogram::quantile_locked(double q) const {
  if (window_.empty()) return 0.0;
  std::vector<double> samples = window_;
  std::sort(samples.begin(), samples.end());
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const std::size_t last = samples.size() - 1;
  std::size_t rank =
      static_cast<std::size_t>(clamped * static_cast<double>(samples.size()));
  if (rank > last) rank = last;
  return samples[rank];
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard lock(mutex_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard lock(mutex_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

Json Histogram::json_value() const {
  std::lock_guard lock(mutex_);
  Json j = Json::object();
  j.set("count", count_);
  j.set("sum", sum_);
  j.set("mean", count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0);
  if (count_ > 0) {
    j.set("min", min_);
    j.set("max", max_);
    j.set("p50", quantile_locked(0.50));
    j.set("p95", quantile_locked(0.95));
    j.set("p99", quantile_locked(0.99));
  }
  Json buckets = Json::array();
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    Json b = Json::object();
    if (i == kBuckets - 1) {
      b.set("le", "inf");
    } else {
      b.set("le", std::pow(10.0, kMinExp + i));
    }
    b.set("count", cumulative);
    buckets.push_back(std::move(b));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  for (auto& b : buckets_) b = 0;
  window_.clear();
  window_next_ = 0;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked so instrumented code may record during static destruction.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  DQMC_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric '" + name + "' already registered as another kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  DQMC_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric '" + name + "' already registered as another kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  DQMC_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                 "metric '" + name + "' already registered as another kind");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

Json MetricsRegistry::json_value() const {
  std::lock_guard lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) histograms.set(name, h->json_value());
  Json j = Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

std::string MetricsRegistry::report() const {
  std::lock_guard lock(mutex_);
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "%-32s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof line, "%-32s %20.6g\n", name.c_str(),
                  g->value());
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof line,
                  "%-32s count=%llu mean=%.6g min=%.6g max=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->count() > 0 ? h->min() : 0.0,
                  h->count() > 0 ? h->max() : 0.0);
    out += line;
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dqmc::obs
