// Numerical-health monitoring for the DQMC pipeline.
//
// Tracks the three stability signals that matter at large beta:
//   * wrap drift    — ‖G_wrap − G_fresh‖_max at every stratified recompute:
//                     how far the wrapped/updated Green's function has
//                     drifted from the numerically clean one (the quantity
//                     behind Fig. 2 of the paper);
//   * sortedness    — how close the graded chain's column norms already are
//                     to descending order before pre-pivoting (the premise
//                     of Algorithm 3: "very few interchanges");
//   * average sign  — the sign-problem severity of the run.
// Each sample is checked against configurable thresholds; a violation emits
// an instant event on the global tracer and increments the violation count.
//
// Disabled by default: the engine skips the O(N^2) drift difference (and
// everything else here) unless monitoring is on.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>

#include "obs/json.h"

namespace dqmc::obs {

struct HealthThresholds {
  /// Warn when ‖G_wrap − G_fresh‖_max exceeds this.
  double max_wrap_drift = 1e-6;
  /// Drift threshold for samples produced by fp32 wraps (the precision
  /// policy, docs/STABILITY.md): single-precision rounding re-injected at
  /// every wrap and amplified through the B-chain puts the HEALTHY fp32
  /// drift near 1e-2 at beta ~ 4 — far above max_wrap_drift — so fp32
  /// samples are judged against this looser bound instead. 0.5 is half the
  /// natural O(1) scale of Green's-function entries: beyond it the wrapped
  /// G no longer resembles the fresh one AT ALL, i.e. the narrowed wraps
  /// genuinely lost the trajectory rather than its last float digits (the
  /// supervisor reacts by degrading the run back to fp64).
  double max_wrap_drift_fp32 = 0.5;
  /// Warn when the pre-pivot adjacent-order fraction falls below this.
  double min_sortedness = 0.75;
  /// Warn when the running average sign falls below this (after a minimum
  /// number of samples so early noise does not trigger).
  double min_avg_sign = 0.05;
  std::uint64_t min_sign_samples = 50;
};

/// count/sum/min/max of a sample stream.
struct RunningStat {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// {"count","mean","min","max"} (min/max omitted when empty).
  Json json_value() const;
};

class HealthMonitor {
 public:
  HealthMonitor() = default;
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// The process-wide monitor the engine and graded accumulator report to.
  static HealthMonitor& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void set_thresholds(const HealthThresholds& t);
  HealthThresholds thresholds() const;

  /// One ‖G_wrap − G_fresh‖_max sample (per stratified recompute).
  /// `fp32` marks samples from fp32-policy wraps, judged against the
  /// looser max_wrap_drift_fp32 threshold.
  void record_wrap_drift(double drift, bool fp32 = false);
  /// One pre-pivot sortedness sample in [0, 1] (per graded QR step).
  void record_sortedness(double sortedness);
  /// One configuration sign (±1, per sweep).
  void record_sign(int sign);

  struct Summary {
    RunningStat wrap_drift;
    RunningStat sortedness;
    std::uint64_t sign_samples = 0;
    double sign_sum = 0.0;
    std::uint64_t violations = 0;

    double average_sign() const {
      return sign_samples > 0 ? sign_sum / static_cast<double>(sign_samples)
                              : 1.0;
    }
  };
  Summary summary() const;
  std::uint64_t violations() const;

  /// {"enabled","wrap_drift":{...},"sortedness":{...},"average_sign",
  ///  "sign_samples","violations","thresholds":{...}}
  Json json_value() const;

  /// Drop all samples and violation counts; thresholds and enablement kept.
  void reset();

 private:
  void violation(const char* what, double value);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  HealthThresholds thresholds_;
  Summary state_;
  bool sign_warned_ = false;
  // True once any fp32-flagged drift sample arrived; gates the fp32
  // threshold's appearance in json_value() so fp64-only runs emit
  // byte-identical manifests.
  bool fp32_drift_seen_ = false;
};

/// Shorthand for HealthMonitor::global().
inline HealthMonitor& health() { return HealthMonitor::global(); }

}  // namespace dqmc::obs
