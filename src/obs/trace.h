// Structured tracing: thread-safe event collection exported as Chrome
// trace / Perfetto JSON (chrome://tracing "trace event format").
//
// Each thread appends to its own fixed-capacity ring buffer (oldest events
// are overwritten on overflow and counted as dropped), so emission never
// contends across threads beyond one uncontended mutex. Tracing is disabled
// by default; a disabled Tracer costs one relaxed atomic load per span, so
// instrumentation can stay in the hot paths permanently.
//
// Event names and categories must be string literals (or otherwise outlive
// the tracer): only the pointer is stored.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dqmc::obs {

/// One trace event. ph follows the Chrome trace format: 'X' = complete
/// (ts + dur), 'i' = instant, 'C' = counter sample.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  char ph = 'X';
  const char* arg_name = nullptr;  ///< optional single argument
  double arg_value = 0.0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;  ///< per thread

  Tracer();
  ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer used by ScopedPhase / TraceSpan default
  /// constructors. Never destroyed.
  static Tracer& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Per-thread ring capacity for buffers registered AFTER this call.
  void set_buffer_capacity(std::size_t events);

  /// Microseconds since the tracer epoch (construction or last reset()).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  /// Record a complete ('X') event. No-op while disabled.
  void complete(const char* name, const char* cat, double ts_us, double dur_us,
                const char* arg_name = nullptr, double arg_value = 0.0);
  /// Record an instant ('i') event stamped now. No-op while disabled.
  void instant(const char* name, const char* cat,
               const char* arg_name = nullptr, double arg_value = 0.0);
  /// Record a counter ('C') sample stamped now. No-op while disabled.
  void counter(const char* name, const char* cat, const char* series,
               double value);

  /// Label the calling thread in the exported trace (stored even while
  /// disabled so names survive a later enable).
  void set_current_thread_name(const std::string& name);

  /// Events currently held across all thread buffers.
  std::size_t recorded() const;
  /// Events lost to ring-buffer overflow since the last reset().
  std::uint64_t dropped() const;

  /// The trace as a Chrome-trace JSON document
  /// ({"traceEvents": [...], ...}), events sorted by timestamp, one
  /// thread_name metadata record per registered thread.
  Json trace_json() const;
  std::string json() const { return trace_json().dump(); }
  /// Write json() to `path`; throws dqmc::Error on I/O failure.
  void write_json(const std::string& path) const;

  /// Drop all recorded events and restart the clock epoch. Thread
  /// registrations (and names) are kept.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  struct ThreadBuffer {
    ThreadBuffer(int tid_, std::size_t capacity_)
        : tid(tid_), capacity(capacity_) {}

    mutable std::mutex mutex;
    const int tid;
    const std::size_t capacity;
    std::string name;
    std::vector<TraceEvent> ring;  ///< allocated lazily on first event
    std::size_t head = 0;          ///< oldest event when full
    std::size_t count = 0;
    std::uint64_t dropped = 0;

    void push(const TraceEvent& e);
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;
  const std::uint64_t id_;  ///< process-unique, for thread-local caching
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
};

/// RAII span: records a complete event over its lifetime on the tracer that
/// was enabled at construction (zero work when disabled).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "dqmc")
      : TraceSpan(Tracer::global(), name, cat) {}
  TraceSpan(Tracer& tracer, const char* name, const char* cat = "dqmc")
      : name_(name), cat_(cat) {
    if (tracer.enabled()) {
      tracer_ = &tracer;
      start_us_ = tracer.now_us();
    }
  }
  ~TraceSpan() {
    if (tracer_) {
      tracer_->complete(name_, cat_, start_us_, tracer_->now_us() - start_us_,
                        arg_name_, arg_value_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach one numeric argument to the emitted event (literal name).
  void arg(const char* name, double value) {
    arg_name_ = name;
    arg_value_ = value;
  }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
};

}  // namespace dqmc::obs
