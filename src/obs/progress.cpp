#include "obs/progress.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dqmc::obs {

namespace {

double gauge_value(const char* name) {
  const Gauge* g = metrics().find_gauge(name);
  return g != nullptr ? g->value() : 0.0;
}

double histogram_quantile(const char* name, double q) {
  const Histogram* h = metrics().find_histogram(name);
  return h != nullptr ? h->quantile(q) : 0.0;
}

}  // namespace

ProgressReporter::ProgressReporter(ProgressOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      last_emit_(start_ - std::chrono::hours(1)) {
  if (!options_.jsonl_path.empty()) {
    jsonl_ = std::fopen(options_.jsonl_path.c_str(), "wb");
  }
}

ProgressReporter::~ProgressReporter() {
  finish();
  if (jsonl_ != nullptr) std::fclose(jsonl_);
}

void ProgressReporter::on_sweep(bool warmup) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  ++done_;
  if (warmup) ++warmup_done_;
  last_was_warmup_ = warmup;
  const auto now = std::chrono::steady_clock::now();
  const double since_last_ms =
      std::chrono::duration<double, std::milli>(now - last_emit_).count();
  if (since_last_ms < options_.interval_ms) return;
  last_emit_ = now;
  emit_locked(/*final=*/false);
}

void ProgressReporter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  emit_locked(/*final=*/true);
  if (options_.human) std::fputc('\n', stderr);
}

std::uint64_t ProgressReporter::sweeps_done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::uint64_t ProgressReporter::records_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void ProgressReporter::emit_locked(bool final) {
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate = elapsed_s > 0.0
                          ? static_cast<double>(done_) / elapsed_s
                          : 0.0;
  const std::uint64_t total = std::max(options_.total_sweeps, done_);
  const std::uint64_t remaining = total - done_;
  double eta_s = 0.0;
  if (!final && remaining > 0) {
    // Before the first completed unit there is no rate to extrapolate.
    eta_s = rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;
  }
  const char* phase =
      final ? "done" : (last_was_warmup_ ? "warmup" : "measure");

  const Json record =
      Json::object()
          .set("telemetry_version", 1)
          .set("label", options_.label)
          .set("seq", static_cast<double>(records_))
          .set("ts_ms", elapsed_s * 1e3)
          .set("phase", phase)
          .set("sweeps_done", static_cast<double>(done_))
          .set("sweeps_total", static_cast<double>(total))
          .set("walkers", options_.walkers)
          .set("sweeps_per_sec", rate)
          .set("eta_seconds", eta_s)
          .set("accept_rate", gauge_value("metropolis.accept_rate"))
          .set("queue_depth", gauge_value("gpusim.queue_depth"))
          .set("gemm_gflops_p50", histogram_quantile("gemm.gflops", 0.50))
          .set("gemm_gflops_p95", histogram_quantile("gemm.gflops", 0.95))
          .set("gemm_gflops_p99", histogram_quantile("gemm.gflops", 0.99));
  ++records_;

  if (jsonl_ != nullptr) {
    const std::string line = record.dump() + "\n";
    std::fwrite(line.data(), 1, line.size(), jsonl_);
    std::fflush(jsonl_);
  }
  if (options_.human) {
    std::fprintf(stderr,
                 "\r[%s] %llu/%llu sweeps (%s)  %.1f sweeps/s  ETA %.0fs   ",
                 options_.label.c_str(),
                 static_cast<unsigned long long>(done_),
                 static_cast<unsigned long long>(total), phase, rate, eta_s);
    std::fflush(stderr);
  }
}

bool ProgressReporter::validate_record(const Json& record,
                                      std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!record.is_object()) return fail("record is not a JSON object");
  const char* number_keys[] = {
      "telemetry_version", "seq",         "ts_ms",
      "sweeps_done",       "sweeps_total", "walkers",
      "sweeps_per_sec",    "eta_seconds",  "accept_rate",
      "queue_depth",       "gemm_gflops_p50", "gemm_gflops_p95",
      "gemm_gflops_p99"};
  for (const char* key : number_keys) {
    const Json* v = record.find(key);
    if (v == nullptr || !v->is_number()) {
      return fail(std::string("missing or non-numeric key '") + key + "'");
    }
  }
  const Json* label = record.find("label");
  if (label == nullptr || !label->is_string()) {
    return fail("missing or non-string key 'label'");
  }
  const Json* phase = record.find("phase");
  if (phase == nullptr || !phase->is_string()) {
    return fail("missing or non-string key 'phase'");
  }
  const std::string& p = phase->str();
  if (p != "warmup" && p != "measure" && p != "done") {
    return fail("phase '" + p + "' is not warmup|measure|done");
  }
  if (record.at("telemetry_version").number() != 1.0) {
    return fail("telemetry_version is not 1");
  }
  if (record.at("sweeps_done").number() >
      record.at("sweeps_total").number()) {
    return fail("sweeps_done exceeds sweeps_total");
  }
  if (record.at("eta_seconds").number() < 0.0) {
    return fail("eta_seconds is negative");
  }
  return true;
}

}  // namespace dqmc::obs
