#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dqmc::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Truncating copy into a fixed inline field (always NUL-terminated).
template <std::size_t N>
void copy_field(char (&dst)[N], const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < N && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kNote: return "note";
    case FlightEventKind::kSpanBegin: return "span_begin";
    case FlightEventKind::kSpanEnd: return "span_end";
    case FlightEventKind::kFailpoint: return "failpoint";
    case FlightEventKind::kRecovery: return "recovery";
    case FlightEventKind::kEnqueue: return "enqueue";
    case FlightEventKind::kHealth: return "health";
    case FlightEventKind::kCheckpoint: return "checkpoint";
    case FlightEventKind::kProgress: return "progress";
  }
  return "unknown";
}

Json FlightEvent::json_value() const {
  Json e = Json::object()
               .set("ts_us", ts_us)
               .set("kind", flight_event_kind_name(kind))
               .set("site", std::string(site));
  if (detail[0] != '\0') e.set("detail", std::string(detail));
  if (walker >= 0) e.set("walker", static_cast<double>(walker));
  if (crowd >= 0) e.set("crowd", static_cast<double>(crowd));
  if (a != 0.0) e.set("a", a);
  if (b != 0.0) e.set("b", b);
  return e;
}

/// Single-writer ring: only the owning thread stores; readers copy the tail
/// under acquire ordering and may observe a torn in-flight slot at worst.
struct FlightRecorder::ThreadBuffer {
  explicit ThreadBuffer(std::size_t cap)
      : capacity(cap > 0 ? cap : 1), ring(capacity) {}

  const std::size_t capacity;
  std::vector<FlightEvent> ring;
  std::atomic<std::uint64_t> count{0};
};

FlightRecorder::FlightRecorder() {
  static std::atomic<std::uint64_t> next_id{1};
  instance_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

FlightRecorder::~FlightRecorder() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (ThreadBuffer* b : buffers_) delete b;
  buffers_.clear();
}

FlightRecorder& FlightRecorder::global() {
  // Leaked: events from detached worker threads may arrive during process
  // teardown (same pattern as Tracer/MetricsRegistry).
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::set_buffer_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  capacity_ = capacity > 0 ? capacity : 1;
}

FlightRecorder::ThreadBuffer* FlightRecorder::local_buffer() {
  // The cache is keyed by the recorder's generation so reset() (which bumps
  // it) invalidates every thread's pointer without thread coordination.
  struct CacheEntry {
    const FlightRecorder* owner = nullptr;
    std::uint64_t generation = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local CacheEntry cache;
  const std::uint64_t gen = instance_id_;
  if (cache.owner == this && cache.generation == gen &&
      cache.buffer != nullptr) {
    return cache.buffer;
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto* buffer = new ThreadBuffer(capacity_);
  buffers_.push_back(buffer);
  cache = {this, gen, buffer};
  return buffer;
}

void FlightRecorder::record(FlightEventKind kind, const char* site,
                            const char* detail, double a, double b,
                            std::int32_t walker) {
  if (!enabled()) return;
  ThreadBuffer* buf = local_buffer();
  FlightEvent e;
  e.ts_us = now_us();
  e.a = a;
  e.b = b;
  e.walker =
      walker >= 0 ? walker : ctx_walker_.load(std::memory_order_relaxed);
  e.crowd = ctx_crowd_.load(std::memory_order_relaxed);
  e.kind = kind;
  copy_field(e.site, site);
  copy_field(e.detail, detail);
  const std::uint64_t c = buf->count.load(std::memory_order_relaxed);
  buf->ring[c % buf->capacity] = e;
  buf->count.store(c + 1, std::memory_order_release);
}

void FlightRecorder::set_context(std::int32_t walker, std::int32_t crowd) {
  ctx_walker_.store(walker, std::memory_order_relaxed);
  ctx_crowd_.store(crowd, std::memory_order_relaxed);
}

void FlightRecorder::set_sweep(std::int64_t sweep) {
  ctx_sweep_.store(sweep, std::memory_order_relaxed);
}

void FlightRecorder::set_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  dump_path_ = path;
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return dump_path_;
}

void FlightRecorder::set_export_paths(const std::string& trace_path,
                                      const std::string& metrics_path) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  trace_export_path_ = trace_path;
  metrics_export_path_ = metrics_path;
}

void FlightRecorder::register_section(const std::string& name,
                                      std::function<Json()> fn) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& [existing, provider] : sections_) {
    if (existing == name) {
      provider = std::move(fn);
      return;
    }
  }
  sections_.emplace_back(name, std::move(fn));
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const ThreadBuffer* buf : buffers_) {
      const std::uint64_t count = buf->count.load(std::memory_order_acquire);
      const std::uint64_t kept =
          std::min<std::uint64_t>(count, buf->capacity);
      for (std::uint64_t i = count - kept; i < count; ++i) {
        events.push_back(buf->ring[i % buf->capacity]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& lhs, const FlightEvent& rhs) {
                     return lhs.ts_us < rhs.ts_us;
                   });
  return events;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const ThreadBuffer* buf : buffers_) {
    total += buf->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const ThreadBuffer* buf : buffers_) {
    const std::uint64_t count = buf->count.load(std::memory_order_acquire);
    if (count > buf->capacity) total += count - buf->capacity;
  }
  return total;
}

double FlightRecorder::now_us() const {
  return static_cast<double>(steady_now_ns() -
                             epoch_ns_.load(std::memory_order_relaxed)) /
         1000.0;
}

void FlightRecorder::reset() {
  static std::atomic<std::uint64_t> next_id{1u << 20};
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (ThreadBuffer* b : buffers_) delete b;
  buffers_.clear();
  instance_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  ctx_walker_.store(-1, std::memory_order_relaxed);
  ctx_crowd_.store(-1, std::memory_order_relaxed);
  ctx_sweep_.store(-1, std::memory_order_relaxed);
}

Json FlightRecorder::crash_dump_json(const std::string& reason) const {
  Json context = Json::object();
  const std::int32_t walker = ctx_walker_.load(std::memory_order_relaxed);
  const std::int32_t crowd = ctx_crowd_.load(std::memory_order_relaxed);
  const std::int64_t sweep = ctx_sweep_.load(std::memory_order_relaxed);
  if (walker >= 0) context.set("walker", static_cast<double>(walker));
  if (crowd >= 0) context.set("crowd", static_cast<double>(crowd));
  if (sweep >= 0) context.set("sweep", static_cast<double>(sweep));

  Json events = Json::array();
  for (const FlightEvent& e : snapshot()) events.push_back(e.json_value());

  Json dump = Json::object()
                  .set("crash_dump_version", 1)
                  .set("reason", reason)
                  .set("context", std::move(context))
                  .set("recorded", static_cast<double>(recorded()))
                  .set("dropped", static_cast<double>(dropped()))
                  .set("events", std::move(events))
                  .set("metrics", metrics().json_value())
                  .set("health", health().json_value());

  std::vector<std::pair<std::string, std::function<Json()>>> sections;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    sections = sections_;
  }
  for (const auto& [name, provider] : sections) {
    if (provider) dump.set(name, provider());
  }
  return dump;
}

bool FlightRecorder::write_crash_dump(const std::string& reason) noexcept {
  // Best-effort by design: this runs from terminate handlers and fatal
  // signal handlers, where nothing is guaranteed. Rendering JSON is not
  // async-signal-safe, but a partial/failed dump on a dying process is
  // strictly better than losing the tail.
  try {
    std::string dump_path, trace_path, metrics_path;
    {
      std::lock_guard<std::mutex> lock(registry_mutex_);
      dump_path = dump_path_;
      trace_path = trace_export_path_;
      metrics_path = metrics_export_path_;
    }
    if (dump_path.empty() && trace_path.empty() && metrics_path.empty()) {
      return false;
    }
    if (!trace_path.empty() && Tracer::global().recorded() > 0) {
      try {
        Tracer::global().write_json(trace_path);
      } catch (...) {
      }
    }
    if (!metrics_path.empty()) {
      const std::string text = Json::object()
                                   .set("metrics", metrics().json_value())
                                   .set("health", health().json_value())
                                   .dump(2) +
                               "\n";
      if (std::FILE* f = std::fopen(metrics_path.c_str(), "wb")) {
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      }
    }
    if (dump_path.empty()) return false;
    const std::string text = crash_dump_json(reason).dump(2) + "\n";
    std::FILE* f = std::fopen(dump_path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
  } catch (...) {
    return false;
  }
}

namespace {

std::terminate_handler previous_terminate = nullptr;

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
  }
  return "signal";
}

void fatal_signal_handler(int sig) {
  FlightRecorder::global().write_crash_dump(std::string("signal:") +
                                            signal_name(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

[[noreturn]] void terminate_with_dump() {
  std::string reason = "terminate";
  if (std::exception_ptr ex = std::current_exception()) {
    try {
      std::rethrow_exception(ex);
    } catch (const std::exception& e) {
      reason = std::string("uncaught exception: ") + e.what();
    } catch (...) {
      reason = "uncaught exception (non-std)";
    }
  }
  FlightRecorder::global().write_crash_dump(reason);
  if (previous_terminate != nullptr) previous_terminate();
  std::abort();
}

}  // namespace

void FlightRecorder::install_crash_handlers() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  previous_terminate = std::set_terminate(&terminate_with_dump);
  const int fatal_signals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL,
                               SIGABRT, SIGTERM, SIGINT};
  for (const int sig : fatal_signals) {
    std::signal(sig, &fatal_signal_handler);
  }
}

}  // namespace dqmc::obs
