// Flight recorder: a fixed-size, lock-free, per-thread ring of structured
// events (failpoint trips, supervisor recovery decisions, backend enqueues,
// health verdicts, checkpoints) kept in memory at all times and flushed to
// a crash_dump.json from a fatal-signal/terminate handler or from the
// supervisor's fault-classification path. Where the Tracer answers "where
// did the time go", the flight recorder answers "what were the last things
// the run did before it died".
//
// Contract mirrors the tracer/metrics/failpoint layers:
//   - disarmed cost is one relaxed atomic load per DQMC_FLIGHT_EVENT site;
//   - armed cost is one SPSC ring store (no locks, no allocation);
//   - DQMC_NO_FLIGHT_RECORDER compiles every macro site out entirely.
//
// Each thread owns a single-writer ring: record() stores into slot
// (count % capacity) and publishes the new count with release order. The
// dump path reads counts with acquire order and copies the tails; a write
// racing the dump can tear at most the one in-flight slot, which is an
// acceptable trade for a signal-safe, lock-free forensic artifact.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dqmc::obs {

enum class FlightEventKind : std::uint8_t {
  kNote = 0,        ///< free-form marker (walker faults, driver milestones)
  kSpanBegin = 1,   ///< phase span opened
  kSpanEnd = 2,     ///< phase span closed
  kFailpoint = 3,   ///< an armed fail point fired
  kRecovery = 4,    ///< supervisor recovery decision (action in detail)
  kEnqueue = 5,     ///< backend kernel/transfer enqueued
  kHealth = 6,      ///< health monitor verdict/violation
  kCheckpoint = 7,  ///< checkpoint saved/restored
  kProgress = 8,    ///< sweep-level progress mark
};

const char* flight_event_kind_name(FlightEventKind kind);

/// POD event record: fixed-size, no heap, safe to copy from a signal
/// handler. Strings are truncating inline copies.
struct FlightEvent {
  double ts_us = 0.0;      ///< microseconds since recorder construction/reset
  double a = 0.0;          ///< kind-specific payload (hit count, sweep, ...)
  double b = 0.0;          ///< second payload (attempt, queue depth, ...)
  std::int32_t walker = -1;  ///< active walker id, -1 when not walker-scoped
  std::int32_t crowd = -1;   ///< active crowd id, -1 outside crowd runs
  FlightEventKind kind = FlightEventKind::kNote;
  char site[47] = {};      ///< event site/name, truncated
  char detail[32] = {};    ///< short annotation (action, class), truncated

  Json json_value() const;
};

/// Lock-free single-writer event ring with crash-dump rendering and
/// fatal-signal/terminate flush hooks. Thread-safe; one global instance
/// (`flight_recorder()`) serves the whole pipeline, like Tracer.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static FlightRecorder& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Per-thread ring capacity. Only affects threads that record their first
  /// event after the call; call before arming.
  void set_buffer_capacity(std::size_t capacity);

  /// Append one event to the calling thread's ring (no-op when disabled).
  /// `walker` < 0 means "use the ambient context walker".
  void record(FlightEventKind kind, const char* site, const char* detail = "",
              double a = 0.0, double b = 0.0, std::int32_t walker = -1);

  /// Ambient walker/crowd/sweep identity stamped into subsequent events and
  /// into the crash-dump header. Negative clears a field.
  void set_context(std::int32_t walker, std::int32_t crowd);
  void set_sweep(std::int64_t sweep);

  /// Where write_crash_dump() lands. Empty path disables file dumps
  /// (crash_dump_json() still works for in-process consumers).
  void set_dump_path(const std::string& path);
  std::string dump_path() const;

  /// Companion artifacts flushed alongside the dump on abnormal exit: the
  /// tracer buffer and a metrics/health snapshot, so an uncaught exception
  /// no longer loses the whole trace (satellite: abnormal-exit export).
  void set_export_paths(const std::string& trace_path,
                        const std::string& metrics_path);

  /// Attach a named JSON section rendered into every crash dump. Higher
  /// layers use this to contribute state without a dependency cycle (the
  /// fault registry registers a "failpoints" section on first use).
  /// Re-registering a name replaces its provider.
  void register_section(const std::string& name, std::function<Json()> fn);

  /// Full forensic document: {crash_dump_version, reason, context, events
  /// (merged tail, time-ordered), dropped, metrics, health, + registered
  /// sections}.
  Json crash_dump_json(const std::string& reason) const;

  /// Render and write the dump (and any export companions). Never throws;
  /// returns false when the path is empty or the write failed. Safe to call
  /// repeatedly — each call overwrites with a fresher tail.
  bool write_crash_dump(const std::string& reason) noexcept;

  /// Install SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT/SIGTERM/SIGINT handlers
  /// and a std::terminate hook that flush the dump, then re-raise/chain.
  /// Idempotent per process.
  void install_crash_handlers();

  /// Time-ordered copy of the merged event tail (testing/inspection).
  std::vector<FlightEvent> snapshot() const;

  std::uint64_t recorded() const;  ///< events ever written (all threads)
  std::uint64_t dropped() const;   ///< events overwritten by ring wrap
  double now_us() const;

  /// Drop all events and restart the clock; keeps enablement, context,
  /// and paths.
  void reset();

 private:
  struct ThreadBuffer;

  ThreadBuffer* local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> instance_id_{0};  ///< generation for caches
  std::atomic<std::int64_t> epoch_ns_{0};
  std::atomic<std::int32_t> ctx_walker_{-1};
  std::atomic<std::int32_t> ctx_crowd_{-1};
  std::atomic<std::int64_t> ctx_sweep_{-1};

  mutable std::mutex registry_mutex_;  // guards buffers_/paths/sections
  std::vector<ThreadBuffer*> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  std::string dump_path_;
  std::string trace_export_path_;
  std::string metrics_export_path_;
  std::vector<std::pair<std::string, std::function<Json()>>> sections_;
};

/// Shorthand for FlightRecorder::global().
inline FlightRecorder& flight_recorder() { return FlightRecorder::global(); }

}  // namespace dqmc::obs

// Instrumentation macro: compiled out under DQMC_NO_FLIGHT_RECORDER,
// otherwise one relaxed load while the recorder is disarmed.
#if defined(DQMC_NO_FLIGHT_RECORDER)
#define DQMC_FLIGHT_EVENT(...) \
  do {                         \
  } while (false)
#else
#define DQMC_FLIGHT_EVENT(...)                                      \
  do {                                                              \
    ::dqmc::obs::FlightRecorder& fr_ = ::dqmc::obs::flight_recorder(); \
    if (fr_.enabled()) fr_.record(__VA_ARGS__);                      \
  } while (false)
#endif
