#include "parallel/task_runtime.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/topology.h"

namespace dqmc::par {

namespace detail {

/// Join state shared by a TaskGroup and its in-flight tasks.
struct GroupState {
  std::atomic<std::size_t> pending{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first failure, guarded by mutex

  void task_done() {
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: take the lock so a waiter between its predicate
      // check and its sleep cannot miss the notification.
      std::lock_guard lock(mutex);
      done_cv.notify_all();
    }
  }

  void capture(std::exception_ptr e) {
    std::lock_guard lock(mutex);
    if (!error) error = std::move(e);
  }
};

}  // namespace detail

namespace {

using detail::GroupState;

struct Task {
  std::function<void()> fn;
  std::shared_ptr<GroupState> group;

  explicit operator bool() const { return static_cast<bool>(fn); }
};

/// One double-ended queue per lane. A mutex per deque keeps the runtime
/// portable and ThreadSanitizer-clean; tasks are coarse (GEMM tile chunks,
/// whole spin chains), so the lock is never the bottleneck.
struct Lane {
  std::mutex mutex;
  std::deque<Task> deque;
};

/// Hard cap on worker threads (so the lane table never reallocates while
/// other threads scan it). Far above any sane DQMC_THREADS setting.
constexpr int kMaxWorkers = 128;

/// Lane index of the current thread: 0 for external threads (they share the
/// submission lane), 1..workers for pool threads.
thread_local int t_lane = 0;

}  // namespace

struct TaskRuntime::Impl {
  // lanes_[0] is the shared submission lane of external threads;
  // lanes_[1 + i] belongs to worker i. Allocated once, never resized.
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
  std::mutex pool_mutex_;
  std::condition_variable work_cv_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> helped_{0};
  std::atomic<std::uint64_t> groups_{0};

  TaskRuntime* owner_ = nullptr;

  /// Pop from the back of the current lane (LIFO: freshest task, best cache
  /// locality) or steal from the front of another lane (oldest task, the
  /// classic work-stealing order).
  bool try_get(Task& out) {
    const int lanes = 1 + owner_->workers();
    const int self = t_lane < lanes ? t_lane : 0;
    {
      Lane& mine = *lanes_[static_cast<std::size_t>(self)];
      std::lock_guard lock(mine.mutex);
      if (!mine.deque.empty()) {
        out = std::move(mine.deque.back());
        mine.deque.pop_back();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    for (int off = 1; off < lanes; ++off) {
      Lane& victim = *lanes_[static_cast<std::size_t>((self + off) % lanes)];
      std::lock_guard lock(victim.mutex);
      if (!victim.deque.empty()) {
        out = std::move(victim.deque.front());
        victim.deque.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void execute(Task& task) {
    obs::MetricsRegistry& reg = obs::metrics();
    const bool timed = reg.enabled();
    Stopwatch watch;
    try {
      task.fn();
    } catch (...) {
      task.group->capture(std::current_exception());
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (timed) reg.observe("runtime.task_us", watch.seconds() * 1e6);
    task.group->task_done();
    task.fn = nullptr;
    task.group.reset();
  }

  void worker_loop(int index) {
    t_lane = 1 + index;
    obs::Tracer::global().set_current_thread_name("task-worker-" +
                                                  std::to_string(index));
    for (;;) {
      Task task;
      if (try_get(task)) {
        execute(task);
        continue;
      }
      std::unique_lock lock(pool_mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               queued_.load(std::memory_order_relaxed) > 0;
      });
      if (stopping_.load(std::memory_order_relaxed) &&
          queued_.load(std::memory_order_relaxed) == 0) {
        return;
      }
    }
  }

  /// Grow the pool so `target` workers are alive (clamped to kMaxWorkers).
  void ensure_workers(int target) {
    target = std::min(target, kMaxWorkers);
    if (owner_->workers() >= target) return;
    std::lock_guard lock(pool_mutex_);
    int alive = owner_->workers_alive_.load(std::memory_order_relaxed);
    while (alive < target) {
      const int index = alive;
      threads_.emplace_back([this, index] { worker_loop(index); });
      ++alive;
      // Release-publish so lane scans never index an unconstructed lane.
      owner_->workers_alive_.store(alive, std::memory_order_release);
    }
  }
};

TaskRuntime& TaskRuntime::global() {
  static TaskRuntime runtime;
  return runtime;
}

TaskRuntime::TaskRuntime() : impl_(std::make_unique<Impl>()) {
  impl_->owner_ = this;
  impl_->lanes_.reserve(1 + kMaxWorkers);
  for (int i = 0; i < 1 + kMaxWorkers; ++i) {
    impl_->lanes_.push_back(std::make_unique<Lane>());
  }
}

TaskRuntime::~TaskRuntime() {
  impl_->stopping_.store(true, std::memory_order_relaxed);
  impl_->work_cv_.notify_all();
  for (std::thread& t : impl_->threads_) t.join();
}

RuntimeStats TaskRuntime::stats() const {
  RuntimeStats s;
  s.tasks_spawned = impl_->spawned_.load(std::memory_order_relaxed);
  s.tasks_executed = impl_->executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = impl_->stolen_.load(std::memory_order_relaxed);
  s.tasks_helped = impl_->helped_.load(std::memory_order_relaxed);
  s.groups = impl_->groups_.load(std::memory_order_relaxed);
  return s;
}

void TaskRuntime::spawn(std::function<void()> fn,
                        std::shared_ptr<detail::GroupState> g) {
  impl_->spawned_.fetch_add(1, std::memory_order_relaxed);
  g->pending.fetch_add(1, std::memory_order_relaxed);

  const int budget = num_threads();
  if (budget <= 1) {
    // Single-threaded budget: no pool, no deque round-trip — run now, in
    // spawn order, on the spawning thread.
    Task task{std::move(fn), std::move(g)};
    impl_->execute(task);
    return;
  }
  impl_->ensure_workers(budget - 1);

  const int lanes = 1 + workers();
  const int lane = t_lane < lanes ? t_lane : 0;
  {
    Lane& mine = *impl_->lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard lock(mine.mutex);
    mine.deque.push_back(Task{std::move(fn), std::move(g)});
  }
  {
    // The increment must be ordered with the workers' predicate check under
    // pool_mutex_: without the lock a worker can evaluate queued_ == 0,
    // have this notify fire before it blocks, and sleep through the task.
    std::lock_guard lock(impl_->pool_mutex_);
    impl_->queued_.fetch_add(1, std::memory_order_release);
  }
  impl_->work_cv_.notify_one();
}

void TaskRuntime::wait(detail::GroupState& g) {
  while (g.pending.load(std::memory_order_acquire) > 0) {
    Task task;
    if (impl_->try_get(task)) {
      // Help-first scheduling: execute whatever is runnable (not only this
      // group's tasks) so a waiting thread is never idle while work exists
      // and recursive groups cannot starve each other.
      impl_->helped_.fetch_add(1, std::memory_order_relaxed);
      impl_->execute(task);
      continue;
    }
    std::unique_lock lock(g.mutex);
    g.done_cv.wait(lock, [this, &g] {
      return g.pending.load(std::memory_order_acquire) == 0 ||
             impl_->queued_.load(std::memory_order_relaxed) > 0;
    });
  }
  impl_->groups_.fetch_add(1, std::memory_order_relaxed);
}

TaskGroup::TaskGroup() : state_(std::make_shared<detail::GroupState>()) {}

TaskGroup::~TaskGroup() {
  if (state_->pending.load(std::memory_order_acquire) > 0) {
    TaskRuntime::global().wait(*state_);
  }
  // Release the captured error here, on the owner's thread. A worker can
  // still hold the GroupState for an instant after its final task_done()
  // (task.group.reset() comes after), and if that release were the last
  // one it would run the exception's destructor concurrently with a catch
  // handler that is still reading the object — ordered only by refcount
  // atomics inside uninstrumented libstdc++, which TSan cannot see.
  std::exception_ptr err;
  {
    std::lock_guard lock(state_->mutex);
    err = std::move(state_->error);
  }
}

void TaskGroup::run(std::function<void()> fn) {
  DQMC_CHECK_MSG(static_cast<bool>(fn), "TaskGroup::run with empty function");
  TaskRuntime::global().spawn(std::move(fn), state_);
}

void TaskGroup::wait() {
  TaskRuntime& rt = TaskRuntime::global();
  obs::MetricsRegistry& reg = obs::metrics();
  const bool timed = reg.enabled();
  Stopwatch watch;
  rt.wait(*state_);
  if (timed) reg.observe("runtime.group_wait_us", watch.seconds() * 1e6);
  // Rethrow a copy of the stored pointer (the error stays sticky for later
  // waits); the stored reference itself is released in ~TaskGroup, on the
  // owner's thread — see the note there.
  std::exception_ptr err;
  {
    std::lock_guard lock(state_->mutex);
    err = state_->error;
  }
  if (err) std::rethrow_exception(std::move(err));
}

}  // namespace dqmc::par
