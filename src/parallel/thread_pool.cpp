#include "parallel/thread_pool.h"

#include <string>

#include "obs/trace.h"

namespace dqmc::par {

ThreadPool::ThreadPool(int threads) {
  DQMC_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int index) {
  obs::Tracer::global().set_current_thread_name("worker-" +
                                                std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace dqmc::par
