// Data-parallel loop primitives.
//
// All fine-grain parallelism in the library (row/column scalings, column
// norms, packing) goes through parallel_for, mirroring the paper's OpenMP
// parallelization of level-2 fringe operations (Section IV-B). A grain-size
// heuristic keeps tiny problems serial: for the small matrices typical of
// DQMC (N <= 1024) thread fork/join overhead easily exceeds the work.
#pragma once

#include <cstdint>
#include <functional>

#include "common/error.h"

namespace dqmc::par {

using index_t = std::int64_t;

/// Tuning knobs for a parallel loop.
struct ForOptions {
  /// Minimum number of iterations that justifies spawning one extra worker.
  /// A loop with fewer than 2*grain iterations runs serially.
  index_t grain = 1024;
  /// Cap on the number of workers (0 = library default, see topology.h).
  int max_threads = 0;
};

namespace detail {
void parallel_for_impl(index_t begin, index_t end, const ForOptions& opt,
                       const std::function<void(index_t, index_t)>& body);
}

/// Run `body(i)` for i in [begin, end), potentially on multiple threads.
/// `body` must be safe to invoke concurrently for distinct i.
template <class Body>
void parallel_for(index_t begin, index_t end, Body&& body,
                  ForOptions opt = {}) {
  DQMC_CHECK(begin <= end);
  detail::parallel_for_impl(begin, end, opt,
                            [&body](index_t lo, index_t hi) {
                              for (index_t i = lo; i < hi; ++i) body(i);
                            });
}

/// Run `body(lo, hi)` on contiguous chunks covering [begin, end).
/// Chunked variant: lets the body amortize per-chunk setup (e.g. pointers).
template <class Body>
void parallel_for_chunks(index_t begin, index_t end, Body&& body,
                         ForOptions opt = {}) {
  DQMC_CHECK(begin <= end);
  detail::parallel_for_impl(begin, end, opt,
                            [&body](index_t lo, index_t hi) { body(lo, hi); });
}

/// Parallel reduction: sums body(i) over [begin, end).
double parallel_sum(index_t begin, index_t end,
                    const std::function<double(index_t)>& term,
                    ForOptions opt = {});

}  // namespace dqmc::par
