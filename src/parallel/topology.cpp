#include "parallel/topology.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/env.h"

namespace dqmc::par {

namespace {
std::atomic<int> g_override{0};

int default_threads() {
  const long env = env_long("DQMC_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}
}  // namespace

int num_threads() {
  const int o = g_override.load(std::memory_order_relaxed);
  return o > 0 ? o : default_threads();
}

void set_num_threads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

}  // namespace dqmc::par
