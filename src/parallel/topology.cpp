#include "parallel/topology.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/env.h"

namespace dqmc::par {

namespace {
std::atomic<int> g_override{0};
thread_local bool t_serial = false;

int default_threads() {
  const long env = env_long("DQMC_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}
}  // namespace

int num_threads() {
  if (t_serial) return 1;
  const int o = g_override.load(std::memory_order_relaxed);
  return o > 0 ? o : default_threads();
}

void set_num_threads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void set_thread_serial(bool serial) { t_serial = serial; }

bool thread_is_serial() { return t_serial; }

}  // namespace dqmc::par
