// Thread-count policy for the whole library.
//
// The paper's multicore results depend on using all cores of the two-socket
// Westmere node; here the worker count defaults to the hardware concurrency
// and can be overridden globally (DQMC_THREADS env var or set_num_threads),
// which the bench harness uses for thread-scaling sweeps.
#pragma once

namespace dqmc::par {

/// Number of worker threads the library will use for data-parallel regions.
/// Resolution order: set_num_threads() override > DQMC_THREADS env var >
/// std::thread::hardware_concurrency() (min 1).
int num_threads();

/// Override the worker count for subsequent parallel regions (0 = reset to
/// the default policy). The task runtime grows its worker pool lazily the
/// next time a parallel region runs under the new budget.
void set_num_threads(int n);

/// Mark the current thread as serial: num_threads() reports 1 on it, so
/// every parallel region entered from this thread runs inline and the
/// thread never spawns into or steals from the shared task runtime.
///
/// The gpusim stream thread needs this. A runtime task may legitimately
/// block in Device wait_idle() until the stream drains; if the stream
/// thread itself waited on the runtime (nested parallel GEMM tiles), the
/// help-first scheduler could hand it exactly such a task and the stream
/// would wait on itself — a deadlock cycle through wait_idle(). Bitwise
/// safe: every parallel kernel partitions disjoint writes and keeps the
/// per-element arithmetic independent of the worker count.
void set_thread_serial(bool serial);

/// True if set_thread_serial(true) is in effect on the current thread.
bool thread_is_serial();

}  // namespace dqmc::par
