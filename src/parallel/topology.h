// Thread-count policy for the whole library.
//
// The paper's multicore results depend on using all cores of the two-socket
// Westmere node; here the worker count defaults to the hardware concurrency
// and can be overridden globally (DQMC_THREADS env var or set_num_threads),
// which the bench harness uses for thread-scaling sweeps.
#pragma once

namespace dqmc::par {

/// Number of worker threads the library will use for data-parallel regions.
/// Resolution order: set_num_threads() override > DQMC_THREADS env var >
/// std::thread::hardware_concurrency() (min 1).
int num_threads();

/// Override the worker count for subsequent parallel regions (0 = reset to
/// the default policy). The task runtime grows its worker pool lazily the
/// next time a parallel region runs under the new budget.
void set_num_threads(int n);

}  // namespace dqmc::par
