// A small fixed-size thread pool.
//
// The dense kernels use OpenMP directly (parallel_for.h); this pool serves
// components that need *persistent* asynchronous workers with futures — most
// importantly the simulated GPU device, whose single worker thread models the
// device executing a command stream asynchronously from the host.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace dqmc::par {

/// Fixed-size FIFO thread pool. Tasks are executed in submission order when
/// the pool has a single thread (the gpusim "stream" relies on this).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      DQMC_CHECK_MSG(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  int active_ = 0;
  bool stopping_ = false;
};

}  // namespace dqmc::par
