// Persistent work-stealing task runtime.
//
// The library's coarse task parallelism (spin-level Green's pipelines, QR
// look-ahead) and its fine loop parallelism (parallel_for.h, which is built
// on top of this runtime) share one pool of persistent workers with
// per-worker deques. Two properties matter for DQMC:
//
//   * Nested parallelism COMPOSES. A thread that waits on a TaskGroup does
//     not block: it executes pending tasks (its own deque first, then steals
//     from the other lanes), so a parallel_for inside a spawned task — e.g.
//     the GEMM tiles of one spin's stratification chain — runs on the same
//     workers instead of serializing, and recursive groups cannot deadlock.
//   * Scheduling never changes results. Tasks own disjoint outputs and every
//     task performs the same arithmetic regardless of which lane runs it, so
//     results are bitwise identical for any worker count (the determinism
//     contract tests/parallel/test_multithreaded.cpp pins down).
//
// Exceptions thrown inside a task are captured and rethrown from the
// spawning group's wait(). Steal/execution counters are exported through
// stats() and surface as the `runtime.*` section of the run manifest; per
// task latency is recorded into the `runtime.task_us` histogram when the
// global metrics registry is enabled (see docs/PERFORMANCE.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/error.h"

namespace dqmc::par {

/// Cumulative scheduling counters since process start (all lanes).
struct RuntimeStats {
  std::uint64_t tasks_spawned = 0;   ///< TaskGroup::run() calls
  std::uint64_t tasks_executed = 0;  ///< tasks run to completion
  std::uint64_t tasks_stolen = 0;    ///< executed from another lane's deque
  std::uint64_t tasks_helped = 0;    ///< executed by a thread inside wait()
  std::uint64_t groups = 0;          ///< TaskGroup waits completed
};

namespace detail {
struct GroupState;
}

/// The process-wide worker pool. Workers are spawned lazily on first use and
/// grown when par::set_num_threads raises the thread budget; a budget of 1
/// (the default on single-core hosts) spawns no workers at all and every
/// task executes inline in its spawning thread, in spawn order.
class TaskRuntime {
 public:
  static TaskRuntime& global();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  /// Worker threads currently alive (excludes the calling thread).
  int workers() const { return workers_alive_.load(std::memory_order_acquire); }

  RuntimeStats stats() const;

 private:
  friend class TaskGroup;
  struct Impl;

  TaskRuntime();
  ~TaskRuntime();

  /// Enqueue onto the current lane's deque (lane 0 for external threads)
  /// and wake a worker. Executes inline when the thread budget is 1.
  void spawn(std::function<void()> fn, std::shared_ptr<detail::GroupState> g);

  /// Help until `g` has no pending tasks: run own/stolen tasks, block on the
  /// group only when no task is runnable anywhere.
  void wait(detail::GroupState& g);

  std::unique_ptr<Impl> impl_;
  std::atomic<int> workers_alive_{0};
};

/// A set of tasks joined by one wait. Usage:
///
///   TaskGroup g;
///   g.run([&] { ... spin Down ... });
///   g.run([&] { ... spin Up ... });
///   g.wait();   // helps execute; rethrows the first captured exception
///
/// run() may be called from inside one of the group's own tasks
/// (spawn-from-task); calling run() from an unrelated thread concurrently
/// with wait() is not supported. The destructor waits for stragglers but
/// DISCARDS any captured exception — call wait() to observe failures.
class TaskGroup {
 public:
  TaskGroup();
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedule `fn` on the runtime (or run it inline under a budget of 1).
  void run(std::function<void()> fn);

  /// Block until every task of this group finished, executing pending work
  /// while waiting. Rethrows the first exception any task raised. The group
  /// is reusable after wait() returns (a captured exception is sticky and
  /// rethrown by subsequent waits).
  void wait();

 private:
  std::shared_ptr<detail::GroupState> state_;
};

}  // namespace dqmc::par
