#include "parallel/parallel_for.h"

#include <omp.h>

#include <algorithm>

#include "parallel/topology.h"

namespace dqmc::par {

namespace detail {

namespace {
/// Number of workers a loop of `n` iterations should use given the options.
int plan_workers(index_t n, const ForOptions& opt) {
  int workers = opt.max_threads > 0 ? std::min(opt.max_threads, num_threads())
                                    : num_threads();
  const index_t grain = std::max<index_t>(1, opt.grain);
  return static_cast<int>(
      std::min<index_t>(workers, std::max<index_t>(1, n / grain)));
}
}  // namespace

void parallel_for_impl(index_t begin, index_t end, const ForOptions& opt,
                       const std::function<void(index_t, index_t)>& body) {
  const index_t n = end - begin;
  if (n <= 0) return;

  const int workers = plan_workers(n, opt);
  if (workers <= 1) {
    body(begin, end);
    return;
  }

  // Static partition into `workers` nearly-equal chunks. OpenMP reuses its
  // worker pool across regions, so repeated small launches stay cheap.
  const index_t chunk = (n + workers - 1) / workers;
#pragma omp parallel num_threads(workers)
  {
    const index_t t = omp_get_thread_num();
    const index_t lo = begin + t * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi);
  }
}

}  // namespace detail

double parallel_sum(index_t begin, index_t end,
                    const std::function<double(index_t)>& term,
                    ForOptions opt) {
  DQMC_CHECK(begin <= end);
  const index_t n = end - begin;
  if (n <= 0) return 0.0;

  const int workers = detail::plan_workers(n, opt);
  if (workers <= 1) {
    double acc = 0.0;
    for (index_t i = begin; i < end; ++i) acc += term(i);
    return acc;
  }

  double total = 0.0;
  const index_t chunk = (n + workers - 1) / workers;
#pragma omp parallel num_threads(workers) reduction(+ : total)
  {
    const index_t t = omp_get_thread_num();
    const index_t lo = begin + t * chunk;
    const index_t hi = std::min(end, lo + chunk);
    for (index_t i = lo; i < hi; ++i) total += term(i);
  }
  return total;
}

}  // namespace dqmc::par
