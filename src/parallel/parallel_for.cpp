#include "parallel/parallel_for.h"

#include <algorithm>
#include <vector>

#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::par {

namespace detail {

namespace {
/// Number of workers a loop of `n` iterations should use given the options.
int plan_workers(index_t n, const ForOptions& opt) {
  int workers = opt.max_threads > 0 ? std::min(opt.max_threads, num_threads())
                                    : num_threads();
  const index_t grain = std::max<index_t>(1, opt.grain);
  return static_cast<int>(
      std::min<index_t>(workers, std::max<index_t>(1, n / grain)));
}
}  // namespace

void parallel_for_impl(index_t begin, index_t end, const ForOptions& opt,
                       const std::function<void(index_t, index_t)>& body) {
  const index_t n = end - begin;
  if (n <= 0) return;

  const int workers = plan_workers(n, opt);
  if (workers <= 1) {
    body(begin, end);
    return;
  }

  // Static partition into `workers` nearly-equal chunks. The chunk
  // boundaries depend only on (n, workers), and every chunk performs the
  // same arithmetic whichever lane executes it, so threaded results match
  // the serial ones bitwise. The spawning thread takes chunk 0 itself and
  // then helps with the rest inside wait() — a nested parallel_for (e.g.
  // GEMM tiles inside a spawned spin task) composes instead of serializing.
  const index_t chunk = (n + workers - 1) / workers;
  TaskGroup group;
  for (int t = 1; t < workers; ++t) {
    const index_t lo = begin + static_cast<index_t>(t) * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo < hi) group.run([lo, hi, &body] { body(lo, hi); });
  }
  body(begin, std::min(end, begin + chunk));
  group.wait();
}

}  // namespace detail

double parallel_sum(index_t begin, index_t end,
                    const std::function<double(index_t)>& term,
                    ForOptions opt) {
  DQMC_CHECK(begin <= end);
  const index_t n = end - begin;
  if (n <= 0) return 0.0;

  const int workers = detail::plan_workers(n, opt);
  if (workers <= 1) {
    double acc = 0.0;
    for (index_t i = begin; i < end; ++i) acc += term(i);
    return acc;
  }

  // Per-chunk partials combined in fixed chunk order, so the reduction is
  // deterministic for a given worker count.
  const index_t chunk = (n + workers - 1) / workers;
  std::vector<double> partial(static_cast<std::size_t>(workers), 0.0);
  TaskGroup group;
  for (int t = 0; t < workers; ++t) {
    const index_t lo = begin + static_cast<index_t>(t) * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    double* slot = &partial[static_cast<std::size_t>(t)];
    group.run([lo, hi, slot, &term] {
      double acc = 0.0;
      for (index_t i = lo; i < hi; ++i) acc += term(i);
      *slot = acc;
    });
  }
  group.wait();
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace dqmc::par
