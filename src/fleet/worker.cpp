#include "fleet/worker.h"

#include <csignal>
#include <poll.h>
#include <sstream>
#include <unistd.h>

#include <memory>
#include <vector>

#include "common/hexio.h"
#include "dqmc/crowd_supervisor.h"
#include "fault/failpoint.h"
#include "fleet/serial.h"
#include "fleet/wire.h"
#include "obs/flight_recorder.h"
#include "obs/progress.h"
#include "parallel/topology.h"

namespace dqmc::fleet {

namespace hx = dqmc::hexio;

using core::CrowdBoundary;
using core::CrowdSupervisor;
using core::ProgressFn;
using core::WalkerHandoff;

std::string worker_unique_path(const std::string& base, int worker_index,
                               long pid) {
  const std::string tag =
      ".w" + std::to_string(worker_index) + ".p" + std::to_string(pid);
  for (const char* ext : {".jsonl", ".json"}) {
    const std::size_t n = std::string(ext).size();
    if (base.size() > n && base.compare(base.size() - n, n, ext) == 0) {
      return base.substr(0, base.size() - n) + tag + ext;
    }
  }
  return base + tag;
}

namespace {

class Worker {
 public:
  Worker(const SimulationConfig& config, const SupervisorPolicy& policy,
         const FleetConfig& fleet, int index, int read_fd, int write_fd,
         obs::ProgressReporter* reporter)
      : config_(config),
        policy_(policy),
        fleet_(fleet),
        index_(index),
        read_fd_(read_fd),
        write_fd_(write_fd),
        reporter_(reporter) {
    progress_ = [this](core::idx, core::idx, bool warmup) {
      // Deterministic kill/wedge probes for the determinism suite: the
      // progress stream ticks once per walker per lockstep sweep, so an
      // armed "fleet.worker.kill:N" dies at the same point of the
      // trajectory every run — mid-segment, scratch uncommitted.
      if (DQMC_FAILPOINT_FIRE("fleet.worker.kill")) ::raise(SIGKILL);
      if (DQMC_FAILPOINT_FIRE("fleet.worker.wedge")) {
        for (;;) ::pause();
      }
      if (reporter_) reporter_->on_sweep(warmup);
    };
  }

  int run() {
    {
      std::ostringstream hello;
      hx::put_u64(hello, static_cast<std::uint64_t>(index_));
      hx::put_u64(hello, static_cast<std::uint64_t>(::getpid()));
      write_frame(write_fd_, FrameType::kHello, 0, hello.str());
    }
    if (!fleet_.crash_dump_path.empty() || !fleet_.telemetry_path.empty()) {
      // Artifact fan-in: tell the coordinator where this worker's unique
      // forensic files live so the fleet report can collect them.
      std::ostringstream art;
      hx::put_block(art, dump_path_);
      hx::put_block(art, telemetry_path_);
      write_frame(write_fd_, FrameType::kTelemetry, 0, art.str());
    }
    for (;;) {
      for (;;) {
        std::optional<Frame> frame = decoder_.next();
        if (!frame) break;
        const int rc = handle(*frame);
        if (rc >= 0) return rc;
      }
      if (!read_into(read_fd_, decoder_)) return 1;  // coordinator died
    }
  }

  std::string dump_path_;
  std::string telemetry_path_;

 private:
  /// Returns -1 to continue, >= 0 to exit with that code.
  int handle(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kAssign:
        run_shard(frame.shard, decode_shard_state(frame.payload));
        return -1;
      case FrameType::kShutdown:
        return 0;
      case FrameType::kSteal: {
        // No shard running: nothing to yield.
        ShardState decline;
        write_frame(write_fd_, FrameType::kYield, frame.shard,
                    encode_shard_state(decline));
        return -1;
      }
      default:
        return -1;  // coordinator-bound frame types are never valid here
    }
  }

  void run_shard(std::uint32_t shard_id, const ShardState& assignment) {
    shard_id_ = shard_id;
    shard_first_ = assignment.first;
    boundaries_ = 0;
    partials_.clear();
    partials_.resize(static_cast<std::size_t>(assignment.walkers));
    sup_ = std::make_unique<CrowdSupervisor>(config_, policy_,
                                             assignment.first,
                                             assignment.walkers, progress_,
                                             partials_, 0);
    if (!assignment.checkpoints.empty()) {
      sup_->set_resume(assignment.checkpoints, assignment.done);
      // Re-prime the committed samples that travelled with the handoff.
      for (std::size_t w = 0; w < assignment.partials.size(); ++w) {
        if (!assignment.partials[w].empty()) {
          deserialize_chain_partial(assignment.partials[w], *partials_[w]);
        }
      }
    }
    sup_->set_boundary_hook(
        [this](const CrowdBoundary& b) { on_boundary(b); });

    try {
      sup_->run();
    } catch (const std::exception& e) {
      write_frame(write_fd_, FrameType::kFail, shard_id_, e.what());
      sup_.reset();
      return;
    }

    ShardState result;
    result.first = shard_first_;
    result.walkers = sup_->walkers();  // yields may have shrunk the shard
    result.done = sup_->done();
    for (core::idx w = 0; w < sup_->walkers(); ++w) {
      result.partials.push_back(serialize_chain_partial(
          *partials_[static_cast<std::size_t>(w)]));
    }
    write_frame(write_fd_, FrameType::kResult, shard_id_,
                encode_shard_state(result));
    sup_.reset();
  }

  void on_boundary(const CrowdBoundary& b) {
    ++boundaries_;
    drain_control(b);
    {
      std::ostringstream p;
      hx::put_u64(p, static_cast<std::uint64_t>(sup_->done()));
      hx::put_u64(p, static_cast<std::uint64_t>(sup_->walkers()));
      write_frame(write_fd_, FrameType::kProgress, shard_id_, p.str());
    }
    if (b.done < b.total && sup_->checkpoint_sweep() == sup_->done() &&
        boundaries_ % fleet_.snapshot_interval == 0) {
      write_frame(write_fd_, FrameType::kSnapshot, shard_id_,
                  encode_shard_state(current_state()));
    }
  }

  /// Resume state for the chains still owned by this shard.
  ShardState current_state() const {
    ShardState state;
    state.first = shard_first_;
    state.walkers = sup_->walkers();
    state.done = sup_->checkpoint_sweep();
    state.checkpoints = sup_->checkpoints();
    for (core::idx w = 0; w < sup_->walkers(); ++w) {
      state.partials.push_back(serialize_chain_partial(
          *partials_[static_cast<std::size_t>(w)]));
    }
    return state;
  }

  /// Answer control frames that arrived while the crowd was sweeping. Only
  /// complete frames are handled; a request split across pipe reads is
  /// answered at the next boundary.
  void drain_control(const CrowdBoundary& b) {
    for (;;) {
      struct pollfd pfd {};
      pfd.fd = read_fd_;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 0);
      if (rc <= 0 || !(pfd.revents & (POLLIN | POLLHUP))) break;
      if (!read_into(read_fd_, decoder_)) ::_exit(1);  // coordinator died
      for (;;) {
        std::optional<Frame> frame = decoder_.next();
        if (!frame) break;
        handle_mid_shard(*frame, b);
      }
    }
  }

  void handle_mid_shard(const Frame& frame, const CrowdBoundary& b) {
    switch (frame.type) {
      case FrameType::kSteal: {
        std::istringstream in(frame.payload);
        const core::idx want = static_cast<core::idx>(hx::get_u64(in));
        if (!b.can_split || sup_->walkers() < 2 ||
            sup_->checkpoint_sweep() != sup_->done() || want < 1) {
          ShardState decline;
          write_frame(write_fd_, FrameType::kYield, shard_id_,
                      encode_shard_state(decline));
          return;
        }
        const core::idx take = std::min(want, sup_->walkers() - 1);
        const core::idx keep = sup_->walkers() - take;
        WalkerHandoff handoff = sup_->split_tail(take);
        ShardState yielded;
        yielded.first = handoff.first_chain;
        yielded.walkers = handoff.walkers;
        yielded.done = handoff.done;
        yielded.checkpoints = std::move(handoff.checkpoints);
        for (core::idx i = 0; i < take; ++i) {
          yielded.partials.push_back(serialize_chain_partial(
              *partials_[static_cast<std::size_t>(keep + i)]));
        }
        write_frame(write_fd_, FrameType::kYield, shard_id_,
                    encode_shard_state(yielded));
        return;
      }
      case FrameType::kShutdown:
        ::_exit(0);
      default:
        return;
    }
  }

  const SimulationConfig& config_;
  const SupervisorPolicy& policy_;
  const FleetConfig& fleet_;
  int index_;
  int read_fd_;
  int write_fd_;
  obs::ProgressReporter* reporter_;
  ProgressFn progress_;
  FrameDecoder decoder_;
  std::uint32_t shard_id_ = 0;
  core::idx shard_first_ = 0;
  core::idx boundaries_ = 0;
  std::vector<std::unique_ptr<core::SimulationResults>> partials_;
  std::unique_ptr<CrowdSupervisor> sup_;
};

}  // namespace

void worker_main(const SimulationConfig& config,
                 const SupervisorPolicy& policy, const FleetConfig& fleet,
                 int worker_index, int read_fd, int write_fd) {
  // Only the forking thread survives into the child: run every task-runtime
  // spawn inline on this thread instead of waking a pool that no longer
  // exists (the inherited TaskRuntime object is never touched).
  par::set_thread_serial(true);
  std::signal(SIGPIPE, SIG_IGN);

  // The registry state crossed the fork; this worker's arming is exactly
  // fleet.worker_failpoints (on the targeted worker), nothing inherited.
  fault::failpoints().disarm_all();
  if (!fleet.worker_failpoints.empty() &&
      (fleet.failpoint_worker < 0 || fleet.failpoint_worker == worker_index)) {
    fault::failpoints().arm_spec(fleet.worker_failpoints);
  }

  const long pid = static_cast<long>(::getpid());
  std::string dump_path, telemetry_path;
  if (!fleet.crash_dump_path.empty()) {
    dump_path = worker_unique_path(fleet.crash_dump_path, worker_index, pid);
    obs::flight_recorder().set_enabled(true);
    obs::flight_recorder().set_dump_path(dump_path);
  }
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (!fleet.telemetry_path.empty()) {
    telemetry_path =
        worker_unique_path(fleet.telemetry_path, worker_index, pid);
    obs::ProgressOptions opt;
    opt.jsonl_path = telemetry_path;
    opt.label = "fleet-w" + std::to_string(worker_index);
    opt.walkers = static_cast<int>(std::max<idx>(config.walker_batch, 1));
    opt.warmup_sweeps = static_cast<std::uint64_t>(config.warmup_sweeps);
    opt.total_sweeps = static_cast<std::uint64_t>(config.warmup_sweeps +
                                                  config.measurement_sweeps);
    reporter = std::make_unique<obs::ProgressReporter>(opt);
  }

  int code = 2;
  try {
    Worker worker(config, policy, fleet, worker_index, read_fd, write_fd,
                  reporter.get());
    worker.dump_path_ = dump_path;
    worker.telemetry_path_ = telemetry_path;
    code = worker.run();
  } catch (const std::exception& e) {
    obs::flight_recorder().write_crash_dump(std::string("fleet.worker: ") +
                                            e.what());
    try {
      write_frame(write_fd, FrameType::kFail, 0, e.what());
    } catch (...) {
    }
    code = 2;
  }
  if (reporter) reporter->finish();
  reporter.reset();
  // _exit: never run the parent's atexit handlers / static destructors in
  // the child (they belong to the coordinator process).
  ::_exit(code);
}

}  // namespace dqmc::fleet
