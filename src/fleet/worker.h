// Fleet worker: the child-process side of the coordinator/worker runtime.
//
// A worker is forked by run_fleet, speaks wire.h frames over two pipes, and
// runs each assigned shard through the SAME CrowdSupervisor the
// single-process path uses — per-worker fault ladder included. Between
// committed segments (the crowd's lockstep boundaries) it drains its
// control pipe: steal requests split the crowd's tail walkers off as a
// bitwise handoff, and resume snapshots flow up so the coordinator can
// replay this worker's shard elsewhere if the process dies.
#pragma once

#include "dqmc/supervisor.h"
#include "fleet/options.h"

namespace dqmc::fleet {

using core::SimulationConfig;
using core::SupervisorPolicy;

/// Child-process entry point; never returns (terminates with _exit so the
/// parent's atexit/static-destructor state is never run twice). `read_fd` /
/// `write_fd` are the coordinator pipes. Must be called immediately after
/// fork(): it serializes the task runtime for the single surviving thread,
/// re-arms fail points from fleet.worker_failpoints, and redirects crash
/// dumps and telemetry to worker-unique paths before touching any physics.
[[noreturn]] void worker_main(const SimulationConfig& config,
                              const SupervisorPolicy& policy,
                              const FleetConfig& fleet, int worker_index,
                              int read_fd, int write_fd);

/// The worker-unique forensic path for `base`: inserts ".w<index>.p<pid>"
/// before a trailing ".json"/".jsonl" extension (appends otherwise).
/// Exposed for the path-uniqueness tests.
std::string worker_unique_path(const std::string& base, int worker_index,
                               long pid);

}  // namespace dqmc::fleet
