#include "fleet/coordinator.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>

#include "common/hexio.h"
#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "fleet/serial.h"
#include "fleet/wire.h"
#include "fleet/worker.h"
#include "obs/metrics.h"

namespace dqmc::fleet {

namespace hx = dqmc::hexio;

obs::Json FleetReport::json_value() const {
  obs::Json evs = obs::Json::array();
  for (const fault::FaultEvent& e : events) {
    evs.push_back(obs::Json::object()
                      .set("site", e.site)
                      .set("class", e.fault_class)
                      .set("action", e.action)
                      .set("detail", e.detail));
  }
  obs::Json ws = obs::Json::array();
  for (const WorkerSummary& w : worker_summaries) {
    obs::Json jw = obs::Json::object()
                       .set("index", static_cast<std::int64_t>(w.index))
                       .set("pid", static_cast<std::int64_t>(w.pid))
                       .set("shards_completed", w.shards_completed)
                       .set("frames_received", w.frames_received)
                       .set("fate", w.fate);
    if (!w.crash_dump_path.empty()) jw.set("crash_dump", w.crash_dump_path);
    if (!w.telemetry_path.empty()) jw.set("telemetry", w.telemetry_path);
    ws.push_back(std::move(jw));
  }
  return obs::Json::object()
      .set("workers", static_cast<std::int64_t>(workers))
      .set("shards", static_cast<std::int64_t>(shards))
      .set("frames_received", frames_received)
      .set("bytes_received", bytes_received)
      .set("snapshots", snapshots)
      .set("steals", steals)
      .set("steals_declined", steals_declined)
      .set("worker_deaths", worker_deaths)
      .set("reassignments", reassignments)
      .set("protocol_faults", protocol_faults)
      .set("events", std::move(evs))
      .set("worker_table", std::move(ws));
}

namespace {

using Clock = std::chrono::steady_clock;

struct ShardRecord {
  ShardState state;  ///< latest resume point (fresh: no checkpoints)
  int owner = -1;    ///< worker index, -1 when unassigned
  int reassigns = 0;
  bool completed = false;
  core::idx progress_done = 0;  ///< sweeps already surfaced to progress
};

struct WorkerRecord {
  long pid = 0;
  int to_fd = -1;    ///< coordinator -> worker
  int from_fd = -1;  ///< worker -> coordinator
  FrameDecoder decoder;
  int shard = -1;  ///< index into shards_, -1 when idle
  bool alive = true;
  bool helloed = false;
  bool steal_outstanding = false;
  Clock::time_point last_heard;
  WorkerSummary summary;
};

/// Restores the previous SIGPIPE disposition on scope exit (a worker dying
/// mid-write must surface as EPIPE, not kill the coordinator).
class SigpipeGuard {
 public:
  SigpipeGuard() { old_ = std::signal(SIGPIPE, SIG_IGN); }
  ~SigpipeGuard() { std::signal(SIGPIPE, old_); }

 private:
  void (*old_)(int);
};

class Coordinator {
 public:
  Coordinator(const SimulationConfig& config, const SupervisorPolicy& policy,
              const FleetConfig& fleet, core::idx chains,
              const ProgressFn& progress)
      : config_(config),
        policy_(policy),
        fleet_(fleet),
        chains_(chains),
        progress_(progress),
        total_sweeps_(config.warmup_sweeps + config.measurement_sweeps),
        crowd_(std::max<core::idx>(config.walker_batch, 1)) {}

  ~Coordinator() {
    // Never leak children: SIGKILL + reap anything still alive (normal
    // completion has already reaped everyone by shutdown()).
    for (WorkerRecord& w : workers_) {
      if (!w.alive) continue;
      ::kill(static_cast<pid_t>(w.pid), SIGKILL);
      int status = 0;
      ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
      close_fds(w);
    }
  }

  FleetResult run() {
    Stopwatch watch;
    make_shards();
    fork_workers();
    report_.workers = fleet_.workers;
    report_.shards = static_cast<idx>(shards_.size());

    while (!all_completed()) {
      dispatch();
      maybe_steal();
      poll_once();
      check_wedges();
    }
    shutdown();

    FleetResult out(config_);
    out.results.profiler.reset();
    for (core::idx c = 0; c < chains_; ++c) {
      const auto& partial = chain_partials_[static_cast<std::size_t>(c)];
      DQMC_CHECK_MSG(partial != nullptr, "fleet finished with a chain hole");
      out.chain_hashes.push_back(partial->trajectory_hash);
      core::merge_chain_results(out.results, *partial);
    }
    out.results.batch_walkers = crowd_;
    out.results.batch_crowds = report_.shards;
    out.results.elapsed_seconds = watch.seconds();
    out.fleet = report_;

    obs::metrics().count("fleet.runs");
    obs::metrics().count("fleet.shards", static_cast<std::uint64_t>(
                                             report_.shards));
    obs::metrics().count("fleet.snapshots", report_.snapshots);
    obs::metrics().count("fleet.steals", report_.steals);
    obs::metrics().count("fleet.worker_deaths", report_.worker_deaths);
    obs::metrics().count("fleet.reassignments", report_.reassignments);
    obs::metrics().count("fleet.protocol_faults", report_.protocol_faults);
    return out;
  }

 private:
  void make_shards() {
    chain_partials_.resize(static_cast<std::size_t>(chains_));
    for (core::idx first = 0; first < chains_; first += crowd_) {
      ShardRecord shard;
      shard.state.first = first;
      shard.state.walkers = std::min(crowd_, chains_ - first);
      shards_.push_back(std::move(shard));
    }
  }

  void fork_workers() {
    workers_.resize(static_cast<std::size_t>(fleet_.workers));
    for (idx i = 0; i < fleet_.workers; ++i) {
      int to_child[2], to_parent[2];
      DQMC_CHECK_MSG(::pipe(to_child) == 0 && ::pipe(to_parent) == 0,
                     "fleet: pipe() failed");
      const pid_t pid = ::fork();
      DQMC_CHECK_MSG(pid >= 0, "fleet: fork() failed");
      if (pid == 0) {
        // Child: drop every parent-side fd inherited from earlier forks so
        // a dead sibling's pipe actually reaches EOF at the coordinator.
        for (idx j = 0; j < i; ++j) {
          close_fds(workers_[static_cast<std::size_t>(j)]);
        }
        ::close(to_child[1]);
        ::close(to_parent[0]);
        worker_main(config_, policy_, fleet_, static_cast<int>(i),
                    to_child[0], to_parent[1]);  // never returns
      }
      ::close(to_child[0]);
      ::close(to_parent[1]);
      WorkerRecord& w = workers_[static_cast<std::size_t>(i)];
      w.pid = static_cast<long>(pid);
      w.to_fd = to_child[1];
      w.from_fd = to_parent[0];
      w.last_heard = Clock::now();
      w.summary.index = static_cast<int>(i);
      w.summary.pid = w.pid;
    }
  }

  static void close_fds(WorkerRecord& w) {
    if (w.to_fd >= 0) ::close(w.to_fd);
    if (w.from_fd >= 0) ::close(w.from_fd);
    w.to_fd = w.from_fd = -1;
  }

  bool all_completed() const {
    for (const ShardRecord& s : shards_) {
      if (!s.completed) return false;
    }
    return true;
  }

  int pending_shard() const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s].completed && shards_[s].owner < 0)
        return static_cast<int>(s);
    }
    return -1;
  }

  void dispatch() {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerRecord& w = workers_[i];
      if (!w.alive || !w.helloed || w.shard >= 0) continue;
      const int s = pending_shard();
      if (s < 0) return;
      try {
        write_frame(w.to_fd, FrameType::kAssign,
                    static_cast<std::uint32_t>(s),
                    encode_shard_state(shards_[static_cast<std::size_t>(s)]
                                           .state));
      } catch (const FleetProtocolError& e) {
        // The pipe is gone: the worker died between polls. Its EOF is (or
        // will be) readable; dispose of it now and keep the shard pending.
        dispose_worker(static_cast<int>(i), "fleet.worker.send",
                       std::string("assign failed: ") + e.what());
        continue;
      }
      shards_[static_cast<std::size_t>(s)].owner = static_cast<int>(i);
      w.shard = s;
    }
  }

  void maybe_steal() {
    if (!fleet_.steal || pending_shard() >= 0) return;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerRecord& idle = workers_[i];
      if (!idle.alive || !idle.helloed || idle.shard >= 0) continue;
      // Victim: busiest running shard (most remaining sweeps, ties to the
      // lowest shard id) with at least two walkers and no steal in flight.
      int victim_shard = -1;
      core::idx victim_remaining = 0;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        const ShardRecord& shard = shards_[s];
        if (shard.completed || shard.owner < 0) continue;
        const WorkerRecord& owner =
            workers_[static_cast<std::size_t>(shard.owner)];
        if (owner.steal_outstanding || shard.state.walkers < 2) continue;
        const core::idx remaining = total_sweeps_ - shard.progress_done;
        if (remaining <= 0) continue;
        if (victim_shard < 0 || remaining > victim_remaining) {
          victim_shard = static_cast<int>(s);
          victim_remaining = remaining;
        }
      }
      if (victim_shard < 0) return;
      ShardRecord& shard = shards_[static_cast<std::size_t>(victim_shard)];
      WorkerRecord& owner = workers_[static_cast<std::size_t>(shard.owner)];
      std::ostringstream p;
      hx::put_u64(p, static_cast<std::uint64_t>(shard.state.walkers / 2));
      try {
        write_frame(owner.to_fd, FrameType::kSteal,
                    static_cast<std::uint32_t>(victim_shard), p.str());
        owner.steal_outstanding = true;
      } catch (const FleetProtocolError& e) {
        dispose_worker(shard.owner, "fleet.worker.send",
                       std::string("steal failed: ") + e.what());
      }
      return;  // one steal in flight at a time keeps the ledger simple
    }
  }

  void poll_once() {
    std::vector<struct pollfd> fds;
    std::vector<int> owner;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      struct pollfd pfd {};
      pfd.fd = workers_[i].from_fd;
      pfd.events = POLLIN;
      fds.push_back(pfd);
      owner.push_back(static_cast<int>(i));
    }
    DQMC_CHECK_MSG(!fds.empty(), "fleet: all workers died");
    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0) {
      DQMC_CHECK_MSG(errno == EINTR, "fleet: poll() failed");
      return;
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      service_worker(owner[k]);
    }
  }

  void service_worker(int wi) {
    WorkerRecord& w = workers_[static_cast<std::size_t>(wi)];
    if (!w.alive) return;
    bool eof = false;
    try {
      eof = !read_into(w.from_fd, w.decoder);
      if (!eof) {
        w.last_heard = Clock::now();
        for (;;) {
          std::optional<Frame> frame = w.decoder.next();
          if (!frame) break;
          ++w.summary.frames_received;
          ++report_.frames_received;
          report_.bytes_received += kWireHeaderSize + frame->payload.size();
          handle_frame(wi, *frame);
        }
      }
    } catch (const fault::InjectedFault& e) {
      // An armed coordinator-side protocol fail point classifies like real
      // malformed traffic: io fault, dispose of the peer, recover.
      protocol_fault(wi, e.site(), e.what());
      return;
    } catch (const FleetProtocolError& e) {
      protocol_fault(wi, FleetProtocolError::site(), e.what());
      return;
    }
    if (eof) worker_eof(wi);
  }

  void handle_frame(int wi, const Frame& frame) {
    WorkerRecord& w = workers_[static_cast<std::size_t>(wi)];
    switch (frame.type) {
      case FrameType::kHello: {
        std::istringstream in(frame.payload);
        (void)hx::get_u64(in);  // worker index, already known positionally
        w.summary.pid = static_cast<long>(hx::get_u64(in));
        w.helloed = true;
        return;
      }
      case FrameType::kTelemetry: {
        std::istringstream in(frame.payload);
        w.summary.crash_dump_path = hx::get_block(in);
        w.summary.telemetry_path = hx::get_block(in);
        return;
      }
      case FrameType::kProgress: {
        ShardRecord& shard = shard_for(frame.shard);
        std::istringstream in(frame.payload);
        const core::idx done = static_cast<core::idx>(hx::get_u64(in));
        const core::idx walkers = static_cast<core::idx>(hx::get_u64(in));
        // Replayed sweeps (done <= already-reported) stay silent: committed
        // work is surfaced exactly once, like the accumulators themselves.
        for (core::idx g = shard.progress_done + 1; g <= done; ++g) {
          if (!progress_) break;
          for (core::idx k = 0; k < walkers; ++k) {
            progress_(g, total_sweeps_, g <= config_.warmup_sweeps);
          }
        }
        shard.progress_done = std::max(shard.progress_done, done);
        return;
      }
      case FrameType::kSnapshot: {
        ShardRecord& shard = shard_for(frame.shard);
        shard.state = decode_shard_state(frame.payload);
        ++report_.snapshots;
        return;
      }
      case FrameType::kYield: {
        w.steal_outstanding = false;
        ShardState yielded = decode_shard_state(frame.payload);
        if (yielded.walkers == 0) {
          ++report_.steals_declined;
          return;
        }
        ShardRecord& victim = shard_for(frame.shard);
        // The victim keeps the chain prefix [first, yielded.first); its
        // stored resume state must never cover the migrated tail, or a
        // later victim death would fork those chains onto two workers.
        const core::idx kept = yielded.first - victim.state.first;
        DQMC_CHECK_MSG(kept >= 1 && kept < victim.state.walkers + 1,
                       "fleet: yield splits outside the victim shard");
        victim.state.walkers = std::min(victim.state.walkers, kept);
        if (static_cast<core::idx>(victim.state.checkpoints.size()) > kept) {
          victim.state.checkpoints.resize(static_cast<std::size_t>(kept));
        }
        if (static_cast<core::idx>(victim.state.partials.size()) > kept) {
          victim.state.partials.resize(static_cast<std::size_t>(kept));
        }
        ShardRecord fresh;
        fresh.state = std::move(yielded);
        fresh.progress_done = fresh.state.done;
        shards_.push_back(std::move(fresh));
        ++report_.steals;
        return;
      }
      case FrameType::kResult: {
        ShardRecord& shard = shard_for(frame.shard);
        const ShardState result = decode_shard_state(frame.payload);
        for (core::idx i = 0; i < result.walkers; ++i) {
          const core::idx chain = result.first + i;
          DQMC_CHECK_MSG(chain >= 0 && chain < chains_,
                         "fleet: result chain out of range");
          auto& slot = chain_partials_[static_cast<std::size_t>(chain)];
          DQMC_CHECK_MSG(slot == nullptr,
                         "fleet: chain completed twice (split ledger bug)");
          slot = make_chain_partial(config_, chain);
          deserialize_chain_partial(
              result.partials[static_cast<std::size_t>(i)], *slot);
        }
        shard.completed = true;
        shard.owner = -1;
        shard.progress_done = total_sweeps_;
        w.shard = -1;
        w.steal_outstanding = false;
        ++w.summary.shards_completed;
        return;
      }
      case FrameType::kFail:
        throw Error("fleet: worker " + std::to_string(wi) +
                    " reported a terminal shard failure: " + frame.payload);
      default:
        throw FleetProtocolError(std::string("unexpected ") +
                                 frame_type_name(frame.type) +
                                 " frame from a worker");
    }
  }

  ShardRecord& shard_for(std::uint32_t id) {
    DQMC_CHECK_MSG(id < shards_.size(), "fleet: frame names an unknown shard");
    return shards_[id];
  }

  /// Reap `wi`, classify its end, and reassign its shard. `site`/`detail`
  /// describe why the coordinator is disposing of it (empty site = the
  /// worker closed its pipe on its own).
  void dispose_worker(int wi, const std::string& site,
                      const std::string& detail) {
    WorkerRecord& w = workers_[static_cast<std::size_t>(wi)];
    if (!w.alive) return;
    int status = 0;
    ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
    std::string fate;
    if (WIFSIGNALED(status)) {
      fate = "killed (signal " + std::to_string(WTERMSIG(status)) + ")";
    } else if (WIFEXITED(status)) {
      fate = "exit (code " + std::to_string(WEXITSTATUS(status)) + ")";
    } else {
      fate = "unknown";
    }
    if (!site.empty()) fate += " [" + site + "]";
    w.summary.fate = fate;
    close_fds(w);
    w.alive = false;

    if (shutdown_phase_) return;
    ++report_.worker_deaths;
    if (w.decoder.mid_frame()) {
      // Died mid-frame: the stream was truncated — record the io fault
      // alongside the death itself.
      ++report_.protocol_faults;
      report_.events.push_back(fault::FaultEvent{
          "fleet.io.truncated",
          fault::fault_class_name(fault::FaultClass::kIoError), "drop", 0, 1,
          0.0, "pipe closed mid-frame"});
    }
    const std::string event_site = site.empty() ? "fleet.worker" : site;
    report_.events.push_back(fault::FaultEvent{
        event_site, fault::fault_class_name(fault::fault_class_for_site(
                        event_site)),
        w.shard >= 0 ? "reassign" : "drop", 0, 1, 0.0,
        "worker " + std::to_string(wi) + ": " + fate +
            (detail.empty() ? "" : (": " + detail))});
    obs::metrics().count("fleet.worker_deaths");

    if (w.shard >= 0) {
      ShardRecord& shard = shards_[static_cast<std::size_t>(w.shard)];
      shard.owner = -1;
      w.shard = -1;
      ++report_.reassignments;
      DQMC_CHECK_MSG(++shard.reassigns <= fleet_.max_reassigns,
                     "fleet: shard exceeded max_reassigns");
      // The shard replays from its latest snapshot (or from scratch when
      // none arrived) on the next dispatch — bitwise-identical either way.
    }
  }

  void worker_eof(int wi) { dispose_worker(wi, "", ""); }

  void protocol_fault(int wi, const std::string& site,
                      const std::string& detail) {
    WorkerRecord& w = workers_[static_cast<std::size_t>(wi)];
    ++report_.protocol_faults;
    report_.events.push_back(fault::FaultEvent{
        site, fault::fault_class_name(fault::FaultClass::kIoError), "dispose",
        0, 1, 0.0, detail});
    obs::metrics().count("fleet.protocol_faults");
    // A peer speaking garbage is not recoverable in place: kill it and let
    // the standard death path reassign its shard.
    ::kill(static_cast<pid_t>(w.pid), SIGKILL);
    dispose_worker(wi, site, detail);
  }

  void check_wedges() {
    if (fleet_.wedge_timeout_ms <= 0) return;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerRecord& w = workers_[i];
      if (!w.alive || w.shard < 0) continue;
      const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - w.last_heard)
                              .count();
      if (silent < static_cast<long long>(fleet_.wedge_timeout_ms)) continue;
      ::kill(static_cast<pid_t>(w.pid), SIGKILL);
      dispose_worker(static_cast<int>(i), "fleet.worker.wedged",
                     "no frame for " + std::to_string(silent) + " ms");
    }
  }

  void shutdown() {
    shutdown_phase_ = true;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerRecord& w = workers_[i];
      if (!w.alive) continue;
      try {
        write_frame(w.to_fd, FrameType::kShutdown, 0, "");
      } catch (const FleetProtocolError&) {
      }
      int status = 0;
      ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        w.summary.fate = "completed";
      } else if (WIFSIGNALED(status)) {
        w.summary.fate =
            "killed (signal " + std::to_string(WTERMSIG(status)) + ")";
      } else {
        w.summary.fate =
            "exit (code " + std::to_string(WEXITSTATUS(status)) + ")";
      }
      close_fds(w);
      w.alive = false;
    }
    for (WorkerRecord& w : workers_) {
      report_.worker_summaries.push_back(w.summary);
    }
  }

  const SimulationConfig& config_;
  const SupervisorPolicy& policy_;
  const FleetConfig& fleet_;
  core::idx chains_;
  const ProgressFn& progress_;
  core::idx total_sweeps_;
  core::idx crowd_;
  std::vector<ShardRecord> shards_;
  std::vector<WorkerRecord> workers_;
  std::vector<std::unique_ptr<SimulationResults>> chain_partials_;
  FleetReport report_;
  bool shutdown_phase_ = false;
};

}  // namespace

FleetResult run_fleet(const SimulationConfig& config,
                      const SupervisorPolicy& policy, const FleetConfig& fleet,
                      idx chains, const ProgressFn& progress) {
  DQMC_CHECK_MSG(chains >= 1, "fleet needs at least one chain");
  DQMC_CHECK_MSG(config.walker_batch >= 1,
                 "fleet sharding requires walker_batch >= 1 (a shard is a "
                 "walker crowd)");
  policy.validate();
  fleet.validate();
  SigpipeGuard sigpipe;
  Coordinator coordinator(config, policy, fleet, chains, progress);
  return coordinator.run();
}

}  // namespace dqmc::fleet
