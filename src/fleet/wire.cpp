#include "fleet/wire.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace dqmc::fleet {

namespace {

void put_le(std::string& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_le(const std::string& in, std::size_t at, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

bool valid_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(FrameType::kHello) &&
         t <= static_cast<std::uint16_t>(FrameType::kTelemetry);
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kAssign: return "assign";
    case FrameType::kResult: return "result";
    case FrameType::kSnapshot: return "snapshot";
    case FrameType::kSteal: return "steal";
    case FrameType::kYield: return "yield";
    case FrameType::kProgress: return "progress";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kFail: return "fail";
    case FrameType::kTelemetry: return "telemetry";
  }
  return "unknown";
}

std::string encode_frame(FrameType type, std::uint32_t shard,
                         const std::string& payload) {
  std::string out;
  out.reserve(kWireHeaderSize + payload.size());
  put_le(out, kWireMagic, 4);
  put_le(out, static_cast<std::uint16_t>(type), 2);
  put_le(out, 0, 2);  // flags, reserved
  put_le(out, shard, 4);
  put_le(out, payload.size(), 8);
  out += payload;
  return out;
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw FleetProtocolError("decoder poisoned by earlier fault");
  if (buffer_.size() < kWireHeaderSize) return std::nullopt;

  const std::uint32_t magic =
      static_cast<std::uint32_t>(get_le(buffer_, 0, 4));
  const std::uint16_t type = static_cast<std::uint16_t>(get_le(buffer_, 4, 2));
  const std::uint16_t flags = static_cast<std::uint16_t>(get_le(buffer_, 6, 2));
  const std::uint32_t shard =
      static_cast<std::uint32_t>(get_le(buffer_, 8, 4));
  const std::uint64_t length = get_le(buffer_, 12, 8);

  // Validate BEFORE waiting for the payload: a corrupt length field must
  // fail here, not stall the connection (or balloon the buffer) forever.
  if (magic != kWireMagic) {
    poisoned_ = true;
    throw FleetProtocolError("bad magic");
  }
  if (!valid_type(type)) {
    poisoned_ = true;
    throw FleetProtocolError("unknown frame type " + std::to_string(type));
  }
  if (flags != 0) {
    poisoned_ = true;
    throw FleetProtocolError("nonzero reserved flags");
  }
  if (length > kWireMaxPayload) {
    poisoned_ = true;
    throw FleetProtocolError("implausible payload length " +
                             std::to_string(length));
  }

  if (buffer_.size() < kWireHeaderSize + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.shard = shard;
  frame.payload = buffer_.substr(kWireHeaderSize,
                                 static_cast<std::size_t>(length));
  buffer_.erase(0, kWireHeaderSize + static_cast<std::size_t>(length));
  return frame;
}

void write_frame(int fd, FrameType type, std::uint32_t shard,
                 const std::string& payload) {
  DQMC_FAILPOINT("fleet.io.send");
  const std::string bytes = encode_frame(type, shard, payload);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw FleetProtocolError(std::string("write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

bool read_into(int fd, FrameDecoder& decoder) {
  DQMC_FAILPOINT("fleet.io.recv");
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw FleetProtocolError(std::string("read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) return false;
    decoder.feed(buf, static_cast<std::size_t>(n));
    return true;
  }
}

}  // namespace dqmc::fleet
