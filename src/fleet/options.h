// Fleet runtime knobs shared by the coordinator (fork/assign/steal policy)
// and the worker children (fail-point arming, forensic artifact paths).
#pragma once

#include <string>

#include "common/error.h"
#include "linalg/matrix.h"

namespace dqmc::fleet {

using linalg::idx;

struct FleetConfig {
  /// Worker processes to fork. Shards are dealt to idle workers in chain
  /// order, so any worker count yields the same merged result.
  idx workers = 2;
  /// Send a resume snapshot to the coordinator every this many committed
  /// segment boundaries (1 = every boundary). A dead worker's shard is
  /// replayed from its latest snapshot — or from scratch when none arrived
  /// — so larger intervals trade snapshot traffic for replay work, never
  /// correctness.
  idx snapshot_interval = 1;
  /// Steal walkers from the busiest running shard when a worker goes idle.
  bool steal = true;
  /// Declare a silent worker wedged (and SIGKILL + reassign it) after this
  /// many milliseconds without a frame while it owns a shard. 0 disables —
  /// the default, since a legitimate segment can run long.
  idx wedge_timeout_ms = 0;
  /// Reassignments a single shard survives before the run aborts (guards
  /// against a shard that kills every worker it lands on).
  int max_reassigns = 3;
  /// Fail-point spec armed INSIDE worker processes (the coordinator's own
  /// registry is not touched). Workers first disarm everything inherited
  /// over fork, so this spec is the whole worker-side arming.
  std::string worker_failpoints;
  /// Which worker index arms worker_failpoints (-1 = all workers).
  int failpoint_worker = -1;
  /// Crash-dump base path; each worker appends ".w<index>.p<pid>.json" so
  /// parallel workers never clobber each other's forensic artifacts.
  std::string crash_dump_path;
  /// Telemetry JSONL base path; per-worker suffix as above.
  std::string telemetry_path;

  void validate() const {
    DQMC_CHECK_MSG(workers >= 1, "fleet needs at least one worker");
    DQMC_CHECK_MSG(snapshot_interval >= 1, "snapshot_interval must be >= 1");
    DQMC_CHECK_MSG(max_reassigns >= 0, "max_reassigns must be >= 0");
    DQMC_CHECK_MSG(wedge_timeout_ms >= 0, "wedge_timeout_ms must be >= 0");
  }
};

}  // namespace dqmc::fleet
