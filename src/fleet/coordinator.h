// Fleet coordinator: shards a multi-chain run over forked worker processes
// and merges the results bit-for-bit with the single-process crowd path.
//
// Topology: one coordinator, FleetConfig::workers forked children, two
// pipes per child, poll(2) multiplexing — no MPI, no threads in the
// coordinator. Shards are consecutive walker crowds (walker_batch chains
// each, exactly the partition run_supervised_parallel uses) dealt to idle
// workers in chain order; per-chain seeds are config.seed + chain, so
// WHICH worker runs a shard never changes WHAT it computes.
//
// Failure semantics (docs/FLEET.md has the full state machine):
//   * a dead worker (EOF + waitpid classification) or a protocol fault
//     (malformed frame) or a wedged worker (silence past wedge_timeout_ms)
//     costs its process; the shard it owned is reassigned to a survivor
//     from the latest lockstep snapshot — or replayed from scratch — both
//     bitwise-identical outcomes, so a killed worker NEVER forks surviving
//     trajectories;
//   * an idle worker with nothing queued steals the tail walkers of the
//     busiest running shard at that shard's next checkpoint boundary
//     (kSteal -> kYield), migrating whole walkers with their checkpoints
//     and committed accumulators;
//   * a shard that exceeds max_reassigns, or a worker reporting a terminal
//     supervisor abort (kFail), aborts the run.
#pragma once

#include <string>
#include <vector>

#include "dqmc/supervisor.h"
#include "fault/report.h"
#include "fleet/options.h"
#include "obs/json.h"

namespace dqmc::fleet {

using core::ProgressFn;
using core::SimulationConfig;
using core::SimulationResults;
using core::SupervisorPolicy;

/// Per-worker lifecycle record for the fleet report.
struct WorkerSummary {
  int index = 0;
  long pid = 0;
  std::uint64_t shards_completed = 0;
  std::uint64_t frames_received = 0;
  /// "completed" | "killed (signal N)" | "exit (code N)" | "wedged" |
  /// "protocol-fault".
  std::string fate;
  std::string crash_dump_path;  ///< worker-unique forensic artifacts
  std::string telemetry_path;
};

/// What the fleet did, beyond the physics: lands in the manifest's "fleet"
/// section and mirrors the fleet.* metrics counters.
struct FleetReport {
  idx workers = 0;
  idx shards = 0;  ///< initial shards (steals add more)
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t steals = 0;    ///< kSteal requests granted (kYield accepted)
  std::uint64_t steals_declined = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t reassignments = 0;
  std::uint64_t protocol_faults = 0;
  /// Worker-death / protocol / wedge events, in the fault taxonomy.
  std::vector<fault::FaultEvent> events;
  std::vector<WorkerSummary> worker_summaries;

  obs::Json json_value() const;
};

struct FleetResult {
  SimulationResults results;  ///< merged exactly like run_supervised_parallel
  FleetReport fleet;
  /// Per-chain trajectory hashes in chain order (the flat fold of these is
  /// results.trajectory_hash) — what the kill-a-worker suite uses to show
  /// surviving chains were untouched.
  std::vector<std::uint64_t> chain_hashes;

  explicit FleetResult(const SimulationConfig& cfg) : results(cfg) {}
};

/// Run `chains` chains sharded over a fleet of forked workers. Requires
/// config.walker_batch >= 1 (a shard IS a walker crowd). Deterministic for
/// a fixed config: the merged measurements, sweep stats, and chain-order
/// trajectory-hash fold bitwise-match run_supervised_parallel with the same
/// config — with any worker count, with steals, and across worker deaths.
/// `progress` is invoked in the coordinator process from the workers'
/// boundary progress frames (so in segment-sized bursts, not per sweep).
FleetResult run_fleet(const SimulationConfig& config,
                      const SupervisorPolicy& policy, const FleetConfig& fleet,
                      idx chains, const ProgressFn& progress = nullptr);

}  // namespace dqmc::fleet
