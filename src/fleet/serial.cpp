#include "fleet/serial.h"

#include <sstream>

#include "common/error.h"
#include "common/hexio.h"

namespace dqmc::fleet {

namespace hx = dqmc::hexio;

std::string serialize_chain_partial(const SimulationResults& r) {
  std::ostringstream out;
  out << "chain-partial\n";
  hx::put_hex_u64(out, r.config.seed);
  hx::put_hex_u64(out, r.trajectory_hash);
  hx::put_u64(out, r.sweep_stats.proposed);
  hx::put_u64(out, r.sweep_stats.accepted);
  hx::put_u64(out, r.strat_stats.evaluations);
  hx::put_u64(out, r.strat_stats.steps);
  hx::put_u64(out, r.strat_stats.pivot_displacement);
  hx::put_double(out, r.backend_stats.compute_seconds);
  hx::put_double(out, r.backend_stats.transfer_seconds);
  hx::put_double(out, r.backend_stats.bytes_h2d);
  hx::put_double(out, r.backend_stats.bytes_d2h);
  hx::put_u64(out, r.backend_stats.kernel_launches);
  hx::put_u64(out, r.backend_stats.transfers);
  hx::put_double(out, r.backend_stats.exposed_wait_seconds);
  hx::put_u64(out, r.backend_stats.synchronizations);
  hx::put_u64(out, r.wrap_uploads_skipped);
  hx::put_double(out, r.elapsed_seconds);
  hx::put_block(out, r.backend_name);
  r.measurements.save(out);
  r.dynamic.save(out);
  r.fault_report.save(out);
  return out.str();
}

void deserialize_chain_partial(const std::string& blob, SimulationResults& r) {
  std::istringstream in(blob);
  hx::expect(in, "chain-partial");
  const std::uint64_t seed = hx::get_hex_u64(in);
  DQMC_CHECK_MSG(seed == r.config.seed,
                 "chain partial is for a different chain (seed mismatch)");
  r.trajectory_hash = hx::get_hex_u64(in);
  r.sweep_stats.proposed = hx::get_u64(in);
  r.sweep_stats.accepted = hx::get_u64(in);
  r.strat_stats.evaluations = hx::get_u64(in);
  r.strat_stats.steps = hx::get_u64(in);
  r.strat_stats.pivot_displacement = hx::get_u64(in);
  r.backend_stats.compute_seconds = hx::get_double(in);
  r.backend_stats.transfer_seconds = hx::get_double(in);
  r.backend_stats.bytes_h2d = hx::get_double(in);
  r.backend_stats.bytes_d2h = hx::get_double(in);
  r.backend_stats.kernel_launches = hx::get_u64(in);
  r.backend_stats.transfers = hx::get_u64(in);
  r.backend_stats.exposed_wait_seconds = hx::get_double(in);
  r.backend_stats.synchronizations = hx::get_u64(in);
  r.wrap_uploads_skipped = hx::get_u64(in);
  r.elapsed_seconds = hx::get_double(in);
  r.backend_name = hx::get_block(in);
  r.measurements.load(in);
  r.dynamic.load(in);
  r.fault_report.load(in);
}

std::string encode_shard_state(const ShardState& state) {
  std::ostringstream out;
  out << "shard-state\n";
  hx::put_u64(out, static_cast<std::uint64_t>(state.first));
  hx::put_u64(out, static_cast<std::uint64_t>(state.walkers));
  hx::put_u64(out, static_cast<std::uint64_t>(state.done));
  hx::put_u64(out, state.checkpoints.size());
  for (const std::string& c : state.checkpoints) hx::put_block(out, c);
  hx::put_u64(out, state.partials.size());
  for (const std::string& p : state.partials) hx::put_block(out, p);
  return out.str();
}

ShardState decode_shard_state(const std::string& payload) {
  std::istringstream in(payload);
  hx::expect(in, "shard-state");
  ShardState state;
  state.first = static_cast<idx>(hx::get_u64(in));
  state.walkers = static_cast<idx>(hx::get_u64(in));
  state.done = static_cast<idx>(hx::get_u64(in));
  const std::uint64_t nc = hx::get_u64(in);
  DQMC_CHECK_MSG(nc <= 1u << 16, "shard state: implausible checkpoint count");
  state.checkpoints.resize(static_cast<std::size_t>(nc));
  for (std::string& c : state.checkpoints) c = hx::get_block(in);
  const std::uint64_t np = hx::get_u64(in);
  DQMC_CHECK_MSG(np <= 1u << 16, "shard state: implausible partial count");
  state.partials.resize(static_cast<std::size_t>(np));
  for (std::string& p : state.partials) p = hx::get_block(in);
  return state;
}

std::unique_ptr<SimulationResults> make_chain_partial(
    const SimulationConfig& config, idx chain) {
  SimulationConfig chain_cfg = config;
  chain_cfg.seed = config.seed + static_cast<std::uint64_t>(chain);
  return std::make_unique<SimulationResults>(chain_cfg);
}

}  // namespace dqmc::fleet
