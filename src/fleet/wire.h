// Length-prefixed frame protocol the fleet speaks over its coordinator <->
// worker pipes (docs/FLEET.md has the frame catalog and the topology).
//
// A frame is a fixed 20-byte little-endian header followed by an opaque
// payload:
//   u32 magic   'D''Q''F''L'
//   u16 type    FrameType
//   u16 flags   must be 0 (reserved)
//   u32 shard   shard id the frame concerns (0 when not shard-scoped)
//   u64 length  payload bytes that follow
// The decoder is incremental — feed() arbitrary chunks, next() yields
// complete frames — and treats every malformed header (bad magic, unknown
// type, nonzero flags, implausible length) as a classified `io` fault
// (FleetProtocolError, site "fleet.io.decode") WITHOUT consuming further
// input: a corrupted stream can never desynchronize into garbage frames or
// unbounded allocation, it fails fast and the coordinator disposes of the
// peer. The protocol torture test fuzzes exactly this surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/error.h"
#include "fault/failpoint.h"

namespace dqmc::fleet {

enum class FrameType : std::uint16_t {
  kHello = 1,     ///< worker -> coordinator: ready (payload: worker index)
  kAssign = 2,    ///< coordinator -> worker: run a shard (ShardAssignment)
  kResult = 3,    ///< worker -> coordinator: finished shard (ShardResult)
  kSnapshot = 4,  ///< worker -> coordinator: lockstep resume state
  kSteal = 5,     ///< coordinator -> worker: yield tail walkers (count)
  kYield = 6,     ///< worker -> coordinator: stolen walkers (or declined)
  kProgress = 7,  ///< worker -> coordinator: sweep-units completed delta
  kShutdown = 8,  ///< coordinator -> worker: exit cleanly
  kFail = 9,      ///< worker -> coordinator: shard failed terminally
  kTelemetry = 10 ///< worker -> coordinator: forensic artifact line
};

const char* frame_type_name(FrameType t);

/// Magic bytes "DQFL" as the little-endian u32 the header stores.
inline constexpr std::uint32_t kWireMagic = 0x4c465144u;
/// Header size on the wire.
inline constexpr std::size_t kWireHeaderSize = 20;
/// Decoder refuses payloads above this (a plausible shard snapshot is a few
/// MiB; anything near the cap is a corrupted length field).
inline constexpr std::uint64_t kWireMaxPayload = 1ull << 30;

/// Malformed traffic, classified as an `io` fault for the recovery ladder.
class FleetProtocolError : public Error {
 public:
  explicit FleetProtocolError(const std::string& what)
      : Error("fleet.io.decode: " + what) {}
  static const char* site() { return "fleet.io.decode"; }
  static fault::FaultClass fault_class() { return fault::FaultClass::kIoError; }
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::uint32_t shard = 0;
  std::string payload;
};

/// Serialize one frame (header + payload) to raw bytes.
std::string encode_frame(FrameType type, std::uint32_t shard,
                         const std::string& payload);

/// Incremental decoder: feed() bytes as they arrive, next() yields frames.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(const std::string& bytes) { buffer_ += bytes; }

  /// The next complete frame, or nullopt when more bytes are needed.
  /// Throws FleetProtocolError on a malformed header; the decoder is then
  /// poisoned (every later call rethrows) — a corrupted peer is disposed
  /// of, never resynchronized.
  std::optional<Frame> next();

  /// Bytes of an incomplete frame are pending — EOF here means the peer
  /// died mid-frame (truncation), not a clean close.
  bool mid_frame() const { return !buffer_.empty(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

/// Write the whole frame to `fd`, retrying on EINTR and short writes.
/// Throws FleetProtocolError on a closed/failed pipe. Fail point
/// "fleet.io.send" fires before the write.
void write_frame(int fd, FrameType type, std::uint32_t shard,
                 const std::string& payload);

/// Read whatever is available on `fd` (one read(2) call) into the decoder.
/// Returns false on EOF, true otherwise. Throws FleetProtocolError on a
/// read error. Fail point "fleet.io.recv" fires before the read.
bool read_into(int fd, FrameDecoder& decoder);

}  // namespace dqmc::fleet
