// Fleet payload serialization: what crosses the coordinator <-> worker
// pipes inside wire.h frames.
//
// Two shapes carry the science:
//   * a chain partial — one chain's committed accumulator state
//     (measurements, dynamic, sweep/strat/backend stats, fault report,
//     trajectory hash), bit-exact via hexio so the coordinator's chain-order
//     merge reproduces the single-process merge_chain_results fold to the
//     last bit;
//   * a ShardState — a crowd's resume point: per-walker v1 checkpoints at a
//     lockstep boundary plus the per-chain partials committed before it.
//     The same shape serves assignment (fresh: no checkpoints), snapshot
//     (periodic resume insurance), yield (work stealing), and result
//     (done == total, no checkpoints) — one codec, four frame types.
// Both sides already share the SimulationConfig by fork inheritance, so
// payloads carry only per-chain state, never the run configuration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dqmc/simulation.h"

namespace dqmc::fleet {

using core::SimulationConfig;
using core::SimulationResults;
using core::idx;

/// One chain's committed results, bit-exact. The destination of
/// deserialize_chain_partial must be constructed with the chain's own
/// config (same lattice, bins, slices, seed) — shape mismatches throw.
std::string serialize_chain_partial(const SimulationResults& r);
void deserialize_chain_partial(const std::string& blob, SimulationResults& r);

/// A shard's position in the run, sufficient to continue it elsewhere.
struct ShardState {
  idx first = 0;    ///< global index of the shard's first chain
  idx walkers = 0;  ///< chains in the shard
  idx done = 0;     ///< sweeps committed at the boundary
  /// Per-walker v1 checkpoints at `done` (empty = start fresh / result).
  std::vector<std::string> checkpoints;
  /// Per-chain serialized partials (empty on a fresh assignment).
  std::vector<std::string> partials;
};

std::string encode_shard_state(const ShardState& state);
/// Throws dqmc::Error (or FleetProtocolError via hexio) on malformed input;
/// never trusts counts without bounds checks.
ShardState decode_shard_state(const std::string& payload);

/// Construct the partials slot for global chain `chain` the way every
/// runner (single-process and fleet alike) seeds it: config.seed + chain.
std::unique_ptr<SimulationResults> make_chain_partial(
    const SimulationConfig& config, idx chain);

}  // namespace dqmc::fleet
