#include "common/profiler.h"

#include <cstdio>

namespace dqmc {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kDelayedUpdate: return "Delayed rank-1 update";
    case Phase::kStratification: return "Stratification";
    case Phase::kClustering: return "Clustering";
    case Phase::kWrapping: return "Wrapping";
    case Phase::kMeasurement: return "Physical meas.";
    case Phase::kOther: return "Other";
    case Phase::kCount: break;
  }
  return "?";
}

void Profiler::reset() {
  seconds_.fill(0.0);
  calls_.fill(0);
}

double Profiler::total_seconds() const {
  double t = 0.0;
  for (double s : seconds_) t += s;
  return t;
}

double Profiler::percent(Phase p) const {
  const double total = total_seconds();
  return total > 0.0 ? 100.0 * seconds(p) / total : 0.0;
}

std::string Profiler::report() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-24s %12s %8s %10s\n", "phase", "seconds",
                "share", "calls");
  out += line;
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    std::snprintf(line, sizeof line, "%-24s %12.3f %7.1f%% %10llu\n",
                  phase_name(p), seconds(p), percent(p),
                  static_cast<unsigned long long>(calls(p)));
    out += line;
  }
  return out;
}

}  // namespace dqmc
