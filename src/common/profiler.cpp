#include "common/profiler.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace dqmc {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kDelayedUpdate: return "Delayed rank-1 update";
    case Phase::kStratification: return "Stratification";
    case Phase::kClustering: return "Clustering";
    case Phase::kWrapping: return "Wrapping";
    case Phase::kMeasurement: return "Physical meas.";
    case Phase::kOther: return "Other";
    case Phase::kCount: break;
  }
  return "?";
}

void Profiler::begin(Phase p) {
  stack_.push_back({p, std::chrono::steady_clock::now(), 0.0});
}

void Profiler::end() {
  DQMC_CHECK_MSG(!stack_.empty(), "Profiler::end() without begin()");
  const Frame frame = stack_.back();
  stack_.pop_back();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    frame.start)
          .count();
  const int p = static_cast<int>(frame.phase);
  inclusive_[p] += elapsed;
  // Nested brackets already billed their (inclusive) time; what is left is
  // this phase's own work. Clamp against clock jitter on empty brackets.
  exclusive_[p] += std::max(0.0, elapsed - frame.child_seconds);
  calls_[p] += 1;
  if (!stack_.empty()) stack_.back().child_seconds += elapsed;
}

void Profiler::add(Phase p, double seconds) {
  exclusive_[static_cast<int>(p)] += seconds;
  inclusive_[static_cast<int>(p)] += seconds;
  calls_[static_cast<int>(p)] += 1;
}

void Profiler::reset() {
  exclusive_.fill(0.0);
  inclusive_.fill(0.0);
  calls_.fill(0);
  stack_.clear();
}

double Profiler::total_seconds() const {
  double t = 0.0;
  for (double s : exclusive_) t += s;
  return t;
}

double Profiler::percent(Phase p) const {
  const double total = total_seconds();
  return total > 0.0 ? 100.0 * seconds(p) / total : 0.0;
}

void Profiler::merge(const Profiler& other) {
  DQMC_CHECK_MSG(stack_.empty() && other.stack_.empty(),
                 "Profiler::merge with open phase brackets");
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    exclusive_[i] += other.exclusive_[i];
    inclusive_[i] += other.inclusive_[i];
    calls_[i] += other.calls_[i];
  }
}

std::string Profiler::report() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-24s %12s %8s %12s %10s\n", "phase",
                "seconds", "share", "inclusive", "calls");
  out += line;
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    std::snprintf(line, sizeof line, "%-24s %12.3f %7.1f%% %12.3f %10llu\n",
                  phase_name(p), seconds(p), percent(p), inclusive_seconds(p),
                  static_cast<unsigned long long>(calls(p)));
    out += line;
  }
  return out;
}

}  // namespace dqmc
