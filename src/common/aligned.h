// Cache-line / SIMD aligned allocation used by all dense containers.
#pragma once

#include <cstddef>

namespace dqmc {

/// Alignment (bytes) used for matrix/vector storage. 64 covers AVX-512 loads
/// and the x86 cache-line size, so rows packed by the GEMM kernels never
/// split a vector load across lines.
inline constexpr std::size_t kAlignment = 64;

/// Allocate `bytes` of kAlignment-aligned storage. Throws std::bad_alloc.
/// The returned pointer must be released with aligned_free.
void* aligned_malloc(std::size_t bytes);

/// Release storage obtained from aligned_malloc. Null is a no-op.
void aligned_free(void* p) noexcept;

/// Minimal RAII owner for aligned storage of `T` (trivially destructible).
template <class T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) : size_(n) {
    data_ = n ? static_cast<T*>(aligned_malloc(n * sizeof(T))) : nullptr;
  }
  ~AlignedBuffer() { aligned_free(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      aligned_free(data_);
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace dqmc
