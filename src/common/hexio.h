// Bit-exact text I/O primitives shared by the serialization layers
// (checkpoints, fleet wire payloads, accumulator snapshots).
//
// Doubles travel as 16-lowercase-hex-digit IEEE-754 bit patterns and
// unsigned integers as decimal tokens, separated by whitespace — the same
// convention dqmc/checkpoint.cpp established, factored out so every layer
// that needs byte-stable round trips (a serialized value must reload to the
// SAME bits on any platform) shares one implementation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace dqmc::hexio {

/// 16 lowercase hex digits, no prefix.
std::string hex_u64(std::uint64_t v);

void put_u64(std::ostream& out, std::uint64_t v);      ///< decimal token
void put_hex_u64(std::ostream& out, std::uint64_t v);  ///< 16-hex-digit token
void put_double(std::ostream& out, double v);          ///< bit pattern token

std::uint64_t get_u64(std::istream& in);
std::uint64_t get_hex_u64(std::istream& in);
double get_double(std::istream& in);

/// Arbitrary bytes as "<len>\n<raw bytes>" (raw bytes follow the newline
/// verbatim; safe for embedded newlines and NULs).
void put_block(std::ostream& out, const std::string& bytes);
std::string get_block(std::istream& in);

/// Read one whitespace-delimited token and require it to equal `token`
/// (throws dqmc::Error naming both on mismatch or EOF).
void expect(std::istream& in, const std::string& token);

}  // namespace dqmc::hexio
