// Error handling primitives for dqmcpp.
//
// Library code reports contract violations through exceptions derived from
// dqmc::Error so callers (tests, examples, benches) can distinguish our
// failures from std:: ones. DQMC_CHECK is always on; DQMC_ASSERT compiles
// out in release builds and is reserved for internal invariants on hot paths.
#pragma once

#include <stdexcept>
#include <string>

namespace dqmc {

/// Base class of all exceptions thrown by dqmcpp.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented contract
/// (dimension mismatch, negative size, out-of-range index, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine cannot complete (singular pivot,
/// eigensolver non-convergence, overflow in a graded product, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": check `" + expr + "` failed" +
                        (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace dqmc

/// Always-on contract check; throws dqmc::InvalidArgument on failure.
#define DQMC_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) ::dqmc::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Always-on contract check with an explanatory message.
#define DQMC_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::dqmc::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Debug-only internal invariant; compiled out with NDEBUG.
#ifdef NDEBUG
#define DQMC_ASSERT(expr) ((void)0)
#else
#define DQMC_ASSERT(expr) DQMC_CHECK(expr)
#endif
