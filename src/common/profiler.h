// Phase profiler used to regenerate Table I of the paper.
//
// The DQMC driver brackets each pipeline phase (delayed update,
// stratification, clustering, wrapping, measurements) with ScopedPhase; the
// accumulated wall time per phase is then reported as a percentage of the
// total, exactly the quantity Table I tabulates.
//
// Phases may nest (e.g. a delayed-update flush inside the Metropolis span):
// the profiler keeps a phase stack and bills each phase both INCLUSIVE time
// (its whole bracket) and EXCLUSIVE time (bracket minus nested brackets), so
// nested spans are never double counted in the totals. seconds()/percent()
// report exclusive time, which sums to the true wall time.
//
// ScopedPhase also emits a span on the global obs::Tracer when tracing is
// enabled, so every Table-I phase shows up in the Chrome-trace timeline.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "obs/trace.h"

namespace dqmc {

/// The pipeline phases distinguished by Table I of the paper.
enum class Phase : int {
  kDelayedUpdate = 0,  ///< blocked rank-1 Metropolis updates
  kStratification,     ///< graded-QR Green's function recomputation
  kClustering,         ///< k-fold B-matrix products
  kWrapping,           ///< G <- B G B^{-1} slice advance
  kMeasurement,        ///< physical observables
  kOther,              ///< everything else (RNG, bookkeeping)
  kCount
};

/// Human-readable label matching the row names of Table I.
const char* phase_name(Phase p);

/// Accumulates wall time per phase. Not thread-safe by design: there is one
/// profiler per Simulation and each simulation runs on one thread; use
/// merge() to aggregate per-chain profilers afterwards.
class Profiler {
 public:
  /// Open a bracket for `p` (nesting allowed). Prefer ScopedPhase.
  void begin(Phase p);
  /// Close the innermost bracket and bill its time.
  void end();

  /// Record a leaf sample directly (no nesting interaction): `seconds` is
  /// billed to `p` both inclusively and exclusively, one call.
  void add(Phase p, double seconds);

  void reset();

  /// Exclusive time: the phase's brackets minus brackets nested inside
  /// them. Sums to total_seconds() without double counting.
  double seconds(Phase p) const { return exclusive_[static_cast<int>(p)]; }
  /// Inclusive time: the phase's whole brackets, nested work included.
  double inclusive_seconds(Phase p) const {
    return inclusive_[static_cast<int>(p)];
  }
  std::uint64_t calls(Phase p) const { return calls_[static_cast<int>(p)]; }
  double total_seconds() const;
  /// Percentage of the total accounted to `p`; 0 when nothing was recorded
  /// (the zero-total case is explicit, not a division by zero).
  double percent(Phase p) const;

  /// Fold another profiler's totals into this one (independent-chain
  /// aggregation). Both profilers must have no open brackets.
  void merge(const Profiler& other);

  /// Multi-line summary table (one row per phase with exclusive time,
  /// share, inclusive time, and calls).
  std::string report() const;

 private:
  struct Frame {
    Phase phase;
    std::chrono::steady_clock::time_point start;
    double child_seconds;  ///< time billed to brackets nested inside
  };

  std::array<double, static_cast<int>(Phase::kCount)> exclusive_{};
  std::array<double, static_cast<int>(Phase::kCount)> inclusive_{};
  std::array<std::uint64_t, static_cast<int>(Phase::kCount)> calls_{};
  std::vector<Frame> stack_;
};

/// RAII bracket crediting its lifetime to one phase of a profiler, and —
/// when tracing is enabled — emitting the same span on the global tracer.
/// A null profiler disables the profiling half (the trace span remains).
class ScopedPhase {
 public:
  ScopedPhase(Profiler* prof, Phase phase) : prof_(prof), phase_(phase) {
    if (prof_) prof_->begin(phase_);
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer_ = &tracer;
      start_us_ = tracer.now_us();
    }
  }
  ~ScopedPhase() {
    if (prof_) prof_->end();
    if (tracer_) {
      tracer_->complete(phase_name(phase_), "phase", start_us_,
                        tracer_->now_us() - start_us_);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* prof_;
  Phase phase_;
  obs::Tracer* tracer_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace dqmc
