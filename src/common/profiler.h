// Phase profiler used to regenerate Table I of the paper.
//
// The DQMC driver brackets each pipeline phase (delayed update,
// stratification, clustering, wrapping, measurements) with ScopedPhase; the
// accumulated wall time per phase is then reported as a percentage of the
// total, exactly the quantity Table I tabulates.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/stopwatch.h"

namespace dqmc {

/// The pipeline phases distinguished by Table I of the paper.
enum class Phase : int {
  kDelayedUpdate = 0,  ///< blocked rank-1 Metropolis updates
  kStratification,     ///< graded-QR Green's function recomputation
  kClustering,         ///< k-fold B-matrix products
  kWrapping,           ///< G <- B G B^{-1} slice advance
  kMeasurement,        ///< physical observables
  kOther,              ///< everything else (RNG, bookkeeping)
  kCount
};

/// Human-readable label matching the row names of Table I.
const char* phase_name(Phase p);

/// Accumulates wall time per phase. Not thread-safe by design: there is one
/// profiler per Simulation and phases never overlap within a simulation.
class Profiler {
 public:
  void add(Phase p, double seconds) {
    seconds_[static_cast<int>(p)] += seconds;
    calls_[static_cast<int>(p)] += 1;
  }
  void reset();

  double seconds(Phase p) const { return seconds_[static_cast<int>(p)]; }
  std::uint64_t calls(Phase p) const { return calls_[static_cast<int>(p)]; }
  double total_seconds() const;
  /// Percentage of the total accounted to `p`; 0 when nothing was recorded.
  double percent(Phase p) const;

  /// Multi-line summary table (one row per phase with time and share).
  std::string report() const;

 private:
  std::array<double, static_cast<int>(Phase::kCount)> seconds_{};
  std::array<std::uint64_t, static_cast<int>(Phase::kCount)> calls_{};
};

/// RAII bracket crediting its lifetime to one phase of a profiler.
/// A null profiler disables the bracket (zero cost beyond a branch).
class ScopedPhase {
 public:
  ScopedPhase(Profiler* prof, Phase phase) : prof_(prof), phase_(phase) {}
  ~ScopedPhase() {
    if (prof_) prof_->add(phase_, watch_.seconds());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* prof_;
  Phase phase_;
  Stopwatch watch_;
};

}  // namespace dqmc
