// Environment-variable configuration helpers.
//
// Benches and examples honour a few DQMC_* variables (e.g. DQMC_FULL=1 to
// run paper-scale parameters, DQMC_THREADS to pin the worker count). These
// helpers centralize the parsing so every binary behaves identically.
#pragma once

#include <optional>
#include <string>

namespace dqmc {

/// Raw lookup; nullopt when the variable is unset or empty.
std::optional<std::string> env_string(const char* name);

/// Integer lookup; `fallback` when unset or unparsable.
long env_long(const char* name, long fallback);

/// Floating-point lookup; `fallback` when unset or unparsable.
double env_double(const char* name, double fallback);

/// Boolean lookup: "1", "true", "yes", "on" (case-insensitive) are true.
bool env_flag(const char* name, bool fallback = false);

}  // namespace dqmc
