#include "common/aligned.h"

#include <cstdlib>
#include <new>

namespace dqmc {

void* aligned_malloc(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  void* p = std::aligned_alloc(kAlignment, padded);
  if (!p) throw std::bad_alloc{};
  return p;
}

void aligned_free(void* p) noexcept { std::free(p); }

}  // namespace dqmc
