#include "common/hexio.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace dqmc::hexio {

namespace {

std::string read_token(std::istream& in, const char* what) {
  std::string tok;
  if (!(in >> tok))
    throw Error(std::string("hexio: stream ended while reading ") + what);
  return tok;
}

}  // namespace

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xfull];
    v >>= 4;
  }
  return out;
}

void put_u64(std::ostream& out, std::uint64_t v) { out << v << '\n'; }

void put_hex_u64(std::ostream& out, std::uint64_t v) { out << hex_u64(v) << '\n'; }

void put_double(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_hex_u64(out, bits);
}

std::uint64_t get_u64(std::istream& in) {
  const std::string tok = read_token(in, "an integer");
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9')
      throw Error("hexio: malformed integer token `" + tok + "`");
    v = v * 10u + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::uint64_t get_hex_u64(std::istream& in) {
  const std::string tok = read_token(in, "a hex word");
  if (tok.size() != 16)
    throw Error("hexio: malformed hex token `" + tok + "`");
  std::uint64_t v = 0;
  for (char c : tok) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = 10 + (c - 'a');
    else
      throw Error("hexio: malformed hex token `" + tok + "`");
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

double get_double(std::istream& in) {
  const std::uint64_t bits = get_hex_u64(in);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void put_block(std::ostream& out, const std::string& bytes) {
  out << bytes.size() << '\n';
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out << '\n';
}

std::string get_block(std::istream& in) {
  const std::uint64_t len = get_u64(in);
  // The length token is followed by exactly one separator character.
  if (in.get() == std::char_traits<char>::eof())
    throw Error("hexio: stream ended before block payload");
  std::string bytes(static_cast<std::size_t>(len), '\0');
  if (len > 0) {
    in.read(bytes.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(in.gcount()) != len)
      throw Error("hexio: truncated block payload");
  }
  return bytes;
}

void expect(std::istream& in, const std::string& token) {
  std::string tok;
  if (!(in >> tok))
    throw Error("hexio: stream ended while expecting `" + token + "`");
  if (tok != token)
    throw Error("hexio: expected `" + token + "`, found `" + tok + "`");
}

}  // namespace dqmc::hexio
