#include "common/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace dqmc {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return std::nullopt;
  return std::string(v);
}

long env_long(const char* name, long fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  long v = std::strtol(s->c_str(), &end, 10);
  return (end && *end == '\0') ? v : fallback;
}

double env_double(const char* name, double fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  double v = std::strtod(s->c_str(), &end);
  return (end && *end == '\0') ? v : fallback;
}

bool env_flag(const char* name, bool fallback) {
  auto s = env_string(name);
  if (!s) return fallback;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

}  // namespace dqmc
