#include "common/stopwatch.h"

#include <cstdio>
#include <string>

namespace dqmc {

std::string format_seconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f us", s * 1e6);
  }
  return buf;
}

}  // namespace dqmc
