// Wall-clock stopwatch used by the profiler and the benchmark harness.
#pragma once

#include <chrono>
#include <string>

namespace dqmc {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart timing from now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Format a duration in seconds as "1.23 s" / "45.6 ms" / "789 us".
std::string format_seconds(double s);

}  // namespace dqmc
