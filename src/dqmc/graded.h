// Graded (UDT) accumulation of ill-conditioned matrix chains.
//
// Maintains chain = U * diag(d) * T with U orthogonal, d carrying the full
// dynamic range, and T well-scaled — the representation underlying both the
// equal-time stratification (stratification.h) and the time-displaced
// Green's functions (time_displaced.h). Each push() performs one graded QR
// step (pivoted or pre-pivoted per the chosen algorithm). The Stabilizer
// concept this implements, and the SVD-stack alternative, live in
// stabilizer.h / svd_stack.h.
#pragma once

#include "common/profiler.h"
#include "dqmc/stabilizer.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"

namespace dqmc::core {

class GradedAccumulator final : public Stabilizer {
 public:
  GradedAccumulator(idx n, StratAlgorithm algorithm,
                    idx qr_block = linalg::kQrBlock);

  idx n() const override { return n_; }
  StratAlgorithm algorithm() const override { return algorithm_; }
  bool empty() const override { return empty_; }
  const StratStats& stats() const override { return stats_; }

  void reset() override;
  void push(const Matrix& factor) override;

  const Matrix& u() const override;
  const Vector& d() const override;
  const Matrix& t() const override;

 private:
  void graded_step(Matrix&& c, bool first);

  idx n_;
  StratAlgorithm algorithm_;
  idx qr_block_;
  bool empty_ = true;
  StratStats stats_;
  Matrix u_;
  Vector d_;
  Matrix t_;
  Matrix work_;
};

}  // namespace dqmc::core
