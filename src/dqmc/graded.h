// Graded (UDT) accumulation of ill-conditioned matrix chains.
//
// Maintains chain = U * diag(d) * T with U orthogonal, d carrying the full
// dynamic range, and T well-scaled — the representation underlying both the
// equal-time stratification (stratification.h) and the time-displaced
// Green's functions (time_displaced.h). Each push() performs one graded QR
// step (pivoted or pre-pivoted per the chosen algorithm).
#pragma once

#include "common/profiler.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"

namespace dqmc::core {

using linalg::idx;
using linalg::Matrix;
using linalg::Vector;

enum class StratAlgorithm {
  kQRP,       ///< Algorithm 2: pivoted QR at every step (baseline)
  kPrePivot,  ///< Algorithm 3: pre-sort columns + unpivoted blocked QR
};

const char* strat_algorithm_name(StratAlgorithm a);

/// Diagnostics accumulated across graded steps.
struct StratStats {
  std::uint64_t evaluations = 0;  ///< Green's functions computed
  std::uint64_t steps = 0;        ///< graded QR steps
  /// Sum over steps of the (pre-)pivot permutation displacement — how many
  /// columns actually moved (the paper's "very few interchanges" claim).
  std::uint64_t pivot_displacement = 0;
};

/// Snapshot of the accumulated decomposition (deep copies).
struct UDT {
  Matrix u;  ///< orthogonal
  Vector d;  ///< graded diagonal (descending magnitude)
  Matrix t;  ///< well-scaled (product of scaled triangles and permutations)
};

class GradedAccumulator {
 public:
  GradedAccumulator(idx n, StratAlgorithm algorithm,
                    idx qr_block = linalg::kQrBlock);

  idx n() const { return n_; }
  StratAlgorithm algorithm() const { return algorithm_; }
  bool empty() const { return empty_; }
  const StratStats& stats() const { return stats_; }

  /// Forget the chain (chain = I conceptually; empty() becomes true).
  void reset();

  /// chain <- factor * chain (factor applied on the LEFT, i.e. later in
  /// imaginary time). factor must be n x n.
  void push(const Matrix& factor);

  /// Current decomposition components; invalid while empty().
  const Matrix& u() const;
  const Vector& d() const;
  const Matrix& t() const;

  /// Deep-copy snapshot (used to record prefix chains at every boundary).
  UDT snapshot() const;

 private:
  void graded_step(Matrix&& c, bool first);

  idx n_;
  StratAlgorithm algorithm_;
  idx qr_block_;
  bool empty_ = true;
  StratStats stats_;
  Matrix u_;
  Vector d_;
  Matrix t_;
  Matrix work_;
};

}  // namespace dqmc::core
