#include "dqmc/run_manifest.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::core {

namespace {

obs::Json config_json(const SimulationConfig& cfg) {
  obs::Json j = obs::Json::object()
      .set("lx", cfg.lx)
      .set("ly", cfg.ly)
      .set("layers", cfg.layers)
      .set("t", cfg.model.t)
      .set("t_perp", cfg.model.t_perp)
      .set("u", cfg.model.u)
      .set("mu", cfg.model.mu)
      .set("beta", cfg.model.beta)
      .set("slices", cfg.model.slices)
      .set("dtau", cfg.model.dtau())
      .set("algorithm", strat_algorithm_name(cfg.engine.algorithm))
      .set("cluster_size", cfg.engine.cluster_size)
      .set("delay_rank", cfg.engine.delay_rank)
      .set("qr_block", cfg.engine.qr_block)
      .set("backend", backend::backend_kind_name(cfg.engine.backend))
      .set("warmup_sweeps", cfg.warmup_sweeps)
      .set("measurement_sweeps", cfg.measurement_sweeps)
      .set("measure_interval", cfg.measure_interval)
      .set("measure_slice_interval", cfg.measure_slice_interval)
      .set("measure_dynamic_interval", cfg.measure_dynamic_interval)
      .set("bins", cfg.bins);
  // Emitted only for walker-crowd runs so pre-batching golden fixtures stay
  // byte-identical.
  if (cfg.walker_batch > 0) j.set("walker_batch", cfg.walker_batch);
  // Same convention for the kinetic-factor representation: only non-default
  // modes show up, keeping pre-checkerboard manifests byte-identical.
  if (cfg.engine.kinetic != hubbard::KineticKind::kDense) {
    j.set("kinetic", hubbard::kinetic_kind_name(cfg.engine.kinetic));
  }
  // Stabilization strategy and precision policy, again only when
  // non-default (the `algorithm` key above already names the strategy; this
  // spells out that a non-QR stabilizer was in play).
  if (cfg.engine.algorithm == StratAlgorithm::kSvdStack) {
    j.set("stabilizer", strat_algorithm_name(cfg.engine.algorithm));
  }
  if (cfg.engine.precision != backend::Precision::kFp64) {
    j.set("precision", backend::precision_name(cfg.engine.precision));
  }
  // Measurement kernel family: only the non-default fft mode is emitted, so
  // pre-FFT golden fixtures keep their bytes.
  if (cfg.engine.measure != MeasureKind::kDirect) {
    j.set("measure", measure_kind_name(cfg.engine.measure));
  }
  return j;
}

obs::Json phases_json(const Profiler& prof) {
  obs::Json phases = obs::Json::object();
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    const Phase phase = static_cast<Phase>(p);
    phases.set(phase_name(phase),
               obs::Json::object()
                   .set("seconds", prof.seconds(phase))
                   .set("inclusive_seconds", prof.inclusive_seconds(phase))
                   .set("percent", prof.percent(phase))
                   .set("calls", prof.calls(phase)));
  }
  phases.set("total_seconds", prof.total_seconds());
  return phases;
}

obs::Json metrics_json(const SimulationResults& r) {
  const SweepStats& sw = r.sweep_stats;
  const StratStats& st = r.strat_stats;
  obs::Json m = obs::Json::object()
                    .set("accept_rate", sw.acceptance())
                    .set("proposed", sw.proposed)
                    .set("accepted", sw.accepted)
                    .set("greens_evaluations", st.evaluations)
                    .set("qr_steps", st.steps)
                    .set("pivot_displacement", st.pivot_displacement);
  // The live registry snapshot (counters/gauges/histograms recorded by the
  // engine, gpusim device, delayed updates, ...).
  m.set("registry", obs::metrics().json_value());
  return m;
}

/// Compute-backend accounting: what the engine hot path cost on its
/// backend. `device.*` exposes the virtual-timeline view (exposed_wait is
/// stall time not hidden behind host compute — the pipelining figure of
/// merit; it is NOT compute + transfer, which would double-count work that
/// overlapped the host).
obs::Json backend_json(const SimulationResults& r) {
  const backend::BackendStats& s = r.backend_stats;
  return obs::Json::object()
      .set("name", r.backend_name)
      .set("compute_seconds", s.compute_seconds)
      .set("transfer_seconds", s.transfer_seconds)
      .set("bytes_h2d", s.bytes_h2d)
      .set("bytes_d2h", s.bytes_d2h)
      .set("kernel_launches", s.kernel_launches)
      .set("transfers", s.transfers)
      .set("synchronizations", s.synchronizations)
      .set("wrap_uploads_skipped", r.wrap_uploads_skipped)
      .set("device", obs::Json::object()
                         .set("exposed_wait_seconds", s.exposed_wait_seconds)
                         .set("pipeline_seconds", s.pipeline_seconds())
                         .set("total_seconds", s.total_seconds()));
}

/// Task-runtime scheduling counters (see docs/PERFORMANCE.md on reading
/// them: stolen/helped ≪ executed means tasks mostly ran where spawned).
obs::Json runtime_json() {
  const par::TaskRuntime& rt = par::TaskRuntime::global();
  const par::RuntimeStats st = rt.stats();
  return obs::Json::object()
      .set("thread_budget", par::num_threads())
      .set("workers_alive", rt.workers())
      .set("tasks_spawned", st.tasks_spawned)
      .set("tasks_executed", st.tasks_executed)
      .set("tasks_stolen", st.tasks_stolen)
      .set("tasks_helped", st.tasks_helped)
      .set("groups", st.groups);
}

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// {"bits": "<hex IEEE-754 pattern>", "value": <rounded readable>} — the
/// bits field is what the golden diff compares; the value is for humans.
obs::Json stable_double(double v) {
  char readable[32];
  std::snprintf(readable, sizeof(readable), "%.9g", v);
  return obs::Json::object()
      .set("bits", hex_u64(std::bit_cast<std::uint64_t>(v)))
      .set("value", std::string(readable));
}

}  // namespace

obs::Json run_manifest(const SimulationResults& results) {
  const obs::Tracer& tracer = obs::Tracer::global();
  obs::Json m = obs::Json::object()
      .set("manifest", obs::Json::object()
                           .set("program", "dqmcpp")
                           .set("format_version", 1)
                           .set("seed", results.config.seed)
                           .set("algorithm", strat_algorithm_name(
                                                 results.config.engine.algorithm))
                           .set("hardware_threads", par::num_threads())
                           .set("elapsed_seconds", results.elapsed_seconds)
                           .set("trajectory_hash",
                                hex_u64(results.trajectory_hash)))
      .set("config", config_json(results.config))
      .set("phases", phases_json(results.profiler))
      .set("metrics", metrics_json(results))
      .set("backend", backend_json(results))
      .set("runtime", runtime_json())
      .set("fault", results.fault_report.json_value())
      .set("health", obs::health().json_value())
      .set("trace", obs::Json::object()
                        .set("enabled", tracer.enabled())
                        .set("recorded", tracer.recorded())
                        .set("dropped", tracer.dropped()))
      .set("flight", obs::Json::object()
                         .set("enabled", obs::flight_recorder().enabled())
                         .set("recorded", obs::flight_recorder().recorded())
                         .set("dropped", obs::flight_recorder().dropped())
                         .set("dump_path",
                              obs::flight_recorder().dump_path()));
  // Walker-crowd shape of the run; absent for unbatched runs (keeps manifests
  // from older drivers byte-identical).
  if (results.batch_walkers > 0) {
    m.set("batch", obs::Json::object()
                       .set("walkers", results.batch_walkers)
                       .set("crowds", results.batch_crowds));
  }
  return m;
}

obs::Json golden_manifest(const SimulationResults& results) {
  const fault::FaultReport& fr = results.fault_report;
  const MeasurementAccumulator& meas = results.measurements;
  obs::Json fault_j = obs::Json::object()
                          .set("faults", fr.faults)
                          .set("retries", fr.retries)
                          .set("restarts", fr.restarts)
                          .set("degradations", fr.degradations);
  // Conditional, like the config keys: fixtures recorded before the
  // precision policy existed keep their bytes.
  if (fr.precision_degradations > 0) {
    fault_j.set("precision_degradations", fr.precision_degradations);
  }
  fault_j.set("health_trips", fr.health_trips)
      .set("checkpoints", fr.checkpoints)
      .set("checkpoint_faults", fr.checkpoint_faults)
      .set("degraded", fr.degraded)
      .set("final_backend", fr.final_backend)
      .set("events", static_cast<std::uint64_t>(fr.events.size()));
  return obs::Json::object()
      .set("golden_version", 1)
      .set("seed", results.config.seed)
      .set("config", config_json(results.config))
      .set("trajectory_hash", hex_u64(results.trajectory_hash))
      .set("samples", meas.samples())
      .set("sign", stable_double(meas.average_sign().mean))
      .set("density", stable_double(meas.density().mean))
      .set("double_occupancy", stable_double(meas.double_occupancy().mean))
      .set("kinetic_energy", stable_double(meas.kinetic_energy().mean))
      .set("moment_sq", stable_double(meas.moment_sq().mean))
      .set("fault", std::move(fault_j));
}

void write_run_manifest(const SimulationResults& results,
                        const std::string& path) {
  std::ofstream out(path);
  DQMC_CHECK_MSG(out.good(), "cannot open manifest file: " + path);
  out << run_manifest(results).dump(2) << '\n';
  out.flush();
  DQMC_CHECK_MSG(out.good(), "failed writing manifest file: " + path);
}

}  // namespace dqmc::core
