#include "dqmc/hs_field.h"

namespace dqmc::core {

HSField::HSField(idx slices, idx sites)
    : slices_(slices),
      sites_(sites),
      data_(static_cast<std::size_t>(slices) * static_cast<std::size_t>(sites),
            hs_t{1}) {
  DQMC_CHECK(slices >= 1 && sites >= 1);
}

void HSField::randomize(Rng& rng) {
  for (auto& h : data_) h = rng.coin() ? hs_t{1} : hs_t{-1};
}

}  // namespace dqmc::core
