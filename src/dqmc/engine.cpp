#include "dqmc/engine.h"

#include <cmath>
#include <utility>

#include "linalg/lu.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "parallel/task_runtime.h"

namespace dqmc::core {

void EngineConfig::validate() const {
  DQMC_CHECK_MSG(cluster_size >= 1, "cluster_size must be >= 1");
  DQMC_CHECK_MSG(delay_rank >= 1, "delay_rank must be >= 1");
  DQMC_CHECK_MSG(qr_block >= 1, "qr_block must be >= 1");
}

namespace {

// One per-spin chain matching the factory's kinetic mode: structured chains
// replay the shared bond table, dense chains keep B/B^{-1} resident. The
// chain carries the engine's wrap-precision policy.
std::unique_ptr<backend::BackendBChain> make_chain(
    backend::ComputeBackend& backend, const BMatrixFactory& factory,
    backend::Precision precision) {
  if (factory.kinetic().structured()) {
    return std::make_unique<backend::BackendBChain>(
        backend, factory.kinetic().cb(), precision);
  }
  return std::make_unique<backend::BackendBChain>(backend, factory.b(),
                                                  factory.b_inv(), precision);
}

}  // namespace

DqmcEngine::DqmcEngine(const Lattice& lattice, const ModelParams& params,
                       EngineConfig config, std::uint64_t seed,
                       backend::ComputeBackend* shared_backend)
    : lattice_(lattice),
      params_(params),
      config_(config),
      factory_(lattice, params, config.kinetic),
      field_(params.slices, lattice.num_sites()),
      rng_(seed),
      owned_backend_(shared_backend ? nullptr
                                    : backend::make_backend(config.backend)),
      backend_(shared_backend ? shared_backend : owned_backend_.get()),
      chains_{make_chain(*backend_, factory_, config.precision),
              make_chain(*backend_, factory_, config.precision)},
      clusters_(factory_, field_, config.cluster_size),
      strat_{StratificationEngine(factory_.n(), config.algorithm,
                                  config.qr_block),
             StratificationEngine(factory_.n(), config.algorithm,
                                  config.qr_block)},
      delayed_{DelayedGreens(factory_.n(), config.delay_rank),
               DelayedGreens(factory_.n(), config.delay_rank)} {
  params_.validate();
  config_.validate();
  clusters_.attach_backend(chains_[0].get(), chains_[1].get());
}

void DqmcEngine::initialize() {
  field_.randomize(rng_);
  resume();
}

void DqmcEngine::resume() {
  clusters_.rebuild_all(&profiler_);
  recompute_greens(0);
  sign_ = sign_from_scratch();
  initialized_ = true;
  resume_slice_ = std::nullopt;
}

void DqmcEngine::resume_mid_sweep(idx next_slice, linalg::Matrix gup,
                                  linalg::Matrix gdn) {
  DQMC_CHECK_MSG(next_slice >= 0 && next_slice <= slices(),
                 "resume slice out of range");
  DQMC_CHECK(gup.rows() == n() && gup.cols() == n());
  DQMC_CHECK(gdn.rows() == n() && gdn.cols() == n());
  clusters_.rebuild_all(&profiler_);
  delayed_[0].reset(std::move(gup));
  delayed_[1].reset(std::move(gdn));
  // Force the first wrap after the restore to re-upload G (the fresh
  // backend chains hold nothing); uploading identical bits is the only
  // difference from the interrupted run's residency fast path.
  wrapped_revision_[0] = wrapped_revision_[1] = ~0ull;
  sign_ = sign_from_scratch();
  initialized_ = true;
  resume_slice_ = (next_slice > 0 && next_slice < slices())
                      ? std::optional<idx>(next_slice)
                      : std::nullopt;
}

namespace {

double max_abs_diff(const linalg::Matrix& a, const linalg::Matrix& b) {
  double m = 0.0;
  const idx total = a.rows() * a.cols();
  const double* pa = a.data();
  const double* pb = b.data();
  for (idx i = 0; i < total; ++i) {
    const double d = std::fabs(pa[i] - pb[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace

void DqmcEngine::recompute_greens(idx cluster, bool record_drift) {
  const bool monitor =
      record_drift && initialized_ && obs::health().enabled();
  // The two spin chains are independent: stratify them as concurrent tasks,
  // each with its own engine, workspace and profiler (the Profiler is not
  // thread-safe; the per-spin instances are merged after the join). The
  // nested GEMM/QR parallelism inside each chain runs on the same workers.
  linalg::Matrix fresh[2];
  Profiler prof[2];
  par::TaskGroup spins;
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    spins.run([this, s, si, cluster, &fresh, &prof] {
      // Lazy factor access: a rebuild_async of the previous cluster is
      // still in flight, and that cluster is the LAST factor of this
      // rotation — the graded QR of the other factors overlaps it.
      fresh[si] = strat_[si].compute(
          clusters_.num_clusters(),
          [this, s, cluster](idx i) -> const linalg::Matrix& {
            return clusters_.factor(s, cluster, i);
          },
          &prof[si]);
    });
  }
  spins.wait();
  clusters_.drain_deferred_profile(&profiler_);
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    profiler_.merge(prof[si]);
    DelayedGreens& dg = delayed_[si];
    if (monitor) {
      // The wrapped/updated G was advanced to this same cluster boundary;
      // its distance from the clean stratified G is the wrap drift. fp32
      // wraps are judged against the policy's looser threshold.
      obs::health().record_wrap_drift(
          max_abs_diff(dg.flush(&profiler_), fresh[si]),
          config_.precision == backend::Precision::kFp32);
    }
    dg.reset(std::move(fresh[si]));
  }
}

int DqmcEngine::sign_from_scratch() {
  // sign(det M+ det M-) computed through the graded decomposition, whose
  // LU targets are well-conditioned at any beta (LU of G itself has
  // unreliable pivot signs once G's singular values reach rounding).
  // The per-spin determinants are independent: evaluate them concurrently.
  int sgn[2] = {1, 1};
  par::TaskGroup spins;
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    spins.run([this, s, si, &sgn] {
      sgn[si] = chain_det_sign(clusters_.rotation(s, 0), config_.algorithm);
    });
  }
  spins.wait();
  return sgn[0] * sgn[1];
}

StratStats DqmcEngine::strat_stats() const {
  StratStats merged = strat_[0].stats();
  const StratStats& dn = strat_[1].stats();
  merged.evaluations += dn.evaluations;
  merged.steps += dn.steps;
  merged.pivot_displacement += dn.pivot_displacement;
  return merged;
}

const linalg::Matrix& DqmcEngine::greens(Spin s) {
  return delayed_[spin_index(s)].flush(&profiler_);
}

void DqmcEngine::wrap_slice(idx slice) {
  if (backend_->async()) {
    // An asynchronous backend exposes one in-order command stream; keep the
    // spin chains sequential on it (one submitter, FIFO ordering).
    for (Spin s : hubbard::kSpins) {
      const int si = spin_index(s);
      DelayedGreens& dg = delayed_[si];
      linalg::Matrix& g = dg.flush(&profiler_);
      ScopedPhase phase(&profiler_, Phase::kWrapping);
      // G is still resident on the device from the previous wrap unless a
      // Metropolis accept (or a stratification reset) touched it since.
      const bool resident = wrapped_revision_[si] == dg.revision();
      chains_[si]->wrap(g, factory_.v_diagonal(field_.slice(slice), s),
                        /*fused_kernel=*/true, /*host_unchanged=*/resident);
      wrapped_revision_[si] = dg.revision();
    }
    return;
  }
  // Flush both spins on the sweep thread (the flush profiles into the shared
  // profiler), then wrap the two chains as concurrent tasks, each on its own
  // backend chain (a synchronous backend is thread-safe across handles).
  linalg::Matrix* g[2] = {nullptr, nullptr};
  bool resident[2] = {false, false};
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    g[si] = &delayed_[si].flush(&profiler_);
    resident[si] = wrapped_revision_[si] == delayed_[si].revision();
    wrapped_revision_[si] = delayed_[si].revision();
  }
  Profiler prof[2];
  par::TaskGroup spins;
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    spins.run([this, s, si, slice, &g, &resident, &prof] {
      ScopedPhase phase(&prof[si], Phase::kWrapping);
      chains_[si]->wrap(*g[si], factory_.v_diagonal(field_.slice(slice), s),
                        /*fused_kernel=*/true, /*host_unchanged=*/resident[si]);
    });
  }
  spins.wait();
  profiler_.merge(prof[0]);
  profiler_.merge(prof[1]);
}

void DqmcEngine::metropolis_slice(idx slice, SweepStats& stats) {
  metropolis_slice_sites(slice, stats);
  delayed_[0].flush(&profiler_);
  delayed_[1].flush(&profiler_);
}

void DqmcEngine::metropolis_slice_sites(idx slice, SweepStats& stats) {
  ScopedPhase phase(&profiler_, Phase::kDelayedUpdate);
  const double nu = factory_.nu();
  const idx nsites = n();
  DelayedGreens& gup = delayed_[0];
  DelayedGreens& gdn = delayed_[1];

  for (idx i = 0; i < nsites; ++i) {
    const double h = static_cast<double>(field_(slice, i));
    // Flip h -> -h: alpha_sigma = e^{-2 sigma nu h} - 1.
    const double aup = std::exp(-2.0 * nu * h) - 1.0;
    const double adn = std::exp(+2.0 * nu * h) - 1.0;
    const double dup = 1.0 + aup * (1.0 - gup.diag(i));
    const double ddn = 1.0 + adn * (1.0 - gdn.diag(i));
    const double r = dup * ddn;

    ++stats.proposed;
    if (rng_.uniform() < std::fabs(r)) {
      field_.flip(slice, i);
      gup.accept(aup / dup, i);
      gdn.accept(adn / ddn, i);
      if (r < 0.0) sign_ = -sign_;
      ++stats.accepted;
    }
  }
}

void DqmcEngine::quiesce() { clusters_.materialize(); }

SweepStats DqmcEngine::sweep(const SliceHook& on_slice) {
  DQMC_CHECK_MSG(initialized_, "call initialize() before sweep()");
  SweepStats stats;
  // Mid-sweep restore: finish the interrupted sweep from resume_slice_.
  // The in-flight cluster keeps the RESTORED wrapped G (no re-stratify —
  // that's the re-derivation bug this path exists to avoid); a resume
  // exactly at a cluster boundary rejoins the normal flow below, which
  // re-stratifies there just as the interrupted run was about to.
  idx first_cluster = 0;
  std::optional<idx> resume_at = std::exchange(resume_slice_, std::nullopt);
  if (resume_at) {
    while (clusters_.cluster_end(first_cluster) <= *resume_at) ++first_cluster;
    if (*resume_at == clusters_.cluster_begin(first_cluster)) {
      resume_at = std::nullopt;  // k-aligned: nothing of the cluster is done
    }
  }
  for (idx c = first_cluster; c < clusters_.num_clusters(); ++c) {
    // Fresh, numerically clean G at this cluster's boundary, built from the
    // cached (recycled) cluster products — unless we are mid-cluster on a
    // restored G, which is already positioned at resume_at's boundary.
    const bool mid_cluster_resume = resume_at && c == first_cluster;
    if (!mid_cluster_resume) recompute_greens(c, /*record_drift=*/true);
    for (idx slice =
             mid_cluster_resume ? *resume_at : clusters_.cluster_begin(c);
         slice < clusters_.cluster_end(c); ++slice) {
      wrap_slice(slice);
      metropolis_slice(slice, stats);
      if (on_slice) on_slice(slice);
    }
    // The slices of cluster c changed: rebuild its cached product so later
    // stratifications (and the next sweep) see the new field. Deferred to a
    // task-runtime task — the next cluster's stratification overlaps it
    // (the rebuilt cluster is the last factor of that rotation).
    clusters_.rebuild_async(c);
  }
  lifetime_.proposed += stats.proposed;
  lifetime_.accepted += stats.accepted;
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("sweeps");
    reg.count("metropolis.proposed", stats.proposed);
    reg.count("metropolis.accepted", stats.accepted);
    reg.set("metropolis.accept_rate", lifetime_.acceptance());
  }
  obs::health().record_sign(sign_);
  return stats;
}

}  // namespace dqmc::core
