// The DQMC engine: Metropolis sweeps over the HS field with numerically
// stable Green's function maintenance (Algorithm 1 + Sections III/IV).
//
// Pipeline per sweep, cluster by cluster (k = cluster size = wrap batch, as
// in the paper where k = l = 10):
//   1. stratification — fresh G at the cluster boundary from cached clusters
//   2. wrapping       — advance G one slice: G <- B_l G B_l^{-1}
//   3. delayed update — Metropolis site loop, rank-1 corrections batched
//   4. clustering     — rebuild the just-resampled cluster (recycled later)
// Each phase reports to the Profiler under its Table-I name.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "backend/backend.h"
#include "backend/bchain.h"
#include "common/profiler.h"
#include "dqmc/cluster_store.h"
#include "dqmc/delayed_update.h"
#include "dqmc/hs_field.h"
#include "dqmc/momentum_transform.h"
#include "dqmc/rng.h"
#include "dqmc/stratification.h"
#include "hubbard/bmatrix.h"
#include "hubbard/lattice.h"

namespace dqmc::core {

using hubbard::Lattice;
using hubbard::ModelParams;
using hubbard::Spin;

struct EngineConfig {
  StratAlgorithm algorithm = StratAlgorithm::kPrePivot;
  idx cluster_size = 10;  ///< k (= wrap batch l; Section III-B)
  idx delay_rank = 32;    ///< d: pending rank-1 updates before a GEMM flush
  idx qr_block = linalg::kQrBlock;  ///< panel width of the blocked QR
  /// Compute backend for the hot path (cluster products, wrapping): kHost
  /// runs on the task runtime, kGpuSim on the simulated device with its
  /// virtual-clock cost model (Section VI). Trajectories are bitwise
  /// identical across backends.
  backend::BackendKind backend = backend::BackendKind::kHost;
  /// Kinetic factor representation: kDense applies e^{-dtau K} by GEMM;
  /// kCheckerboard replays the split-bond factorization in O(bonds x cols)
  /// with the same O(dtau^2) error order as the Trotter splitting (config
  /// key `kinetic`, flag --kinetic). Trajectories stay bitwise identical
  /// across backends, thread counts and walker-batch widths within a mode;
  /// the two modes differ by the documented splitting error.
  hubbard::KineticKind kinetic = hubbard::KineticKind::kDense;
  /// Precision policy for the per-slice wrap updates (config key
  /// `precision`, flag --precision): kFp64 is the exact baseline; kFp32
  /// runs the wraps' GEMMs/kinetic replays/scalings in single precision
  /// (round on read, widen on store) with half the modeled traffic and
  /// twice the modeled FLOP rate. The fp64 correction is structural:
  /// cluster products and the stratified recompute at every stabilization
  /// interval stay fp64, replacing the wrapped G with a full-precision one
  /// before rounding can accumulate past the HealthMonitor's fp32 drift
  /// threshold. Identical across backends at either setting.
  backend::Precision precision = backend::Precision::kFp64;
  /// How the measurement kernels evaluate translation averages (config key
  /// `measure`, flag --measure): kDirect keeps the historical O(N^2)
  /// site-pair loops bit for bit — the golden-fixture path; kFft routes
  /// momentum projections and displacement correlators through the planned
  /// mixed-radix FFT pipeline (same observables to ~1e-12, no per-pair
  /// trig, gk_tau slices batched). Measurements never touch the Markov
  /// chain, so trajectories are bitwise identical across the two modes.
  MeasureKind measure = MeasureKind::kDirect;

  void validate() const;
};

struct SweepStats {
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  double acceptance() const {
    return proposed ? static_cast<double>(accepted) / static_cast<double>(proposed) : 0.0;
  }
};

class DqmcEngine {
 public:
  /// `shared_backend` (optional) makes the engine run on a backend owned by
  /// the caller instead of constructing its own — the walker-crowd driver
  /// puts W engines on ONE backend so their work can be batched. The engine
  /// never submits to a shared async backend concurrently with its owner:
  /// callers serialize (see WalkerBatch / quiesce()).
  DqmcEngine(const Lattice& lattice, const ModelParams& params,
             EngineConfig config, std::uint64_t seed,
             backend::ComputeBackend* shared_backend = nullptr);

  idx n() const { return factory_.n(); }
  idx slices() const { return params_.slices; }
  const ModelParams& params() const { return params_; }
  const EngineConfig& config() const { return config_; }
  const Lattice& lattice() const { return lattice_; }

  /// Randomize the field, build all clusters, compute the initial Green's
  /// functions and configuration sign. Must be called before sweep().
  void initialize();

  /// Like initialize(), but keeps the current field and RNG state — used
  /// when resuming from a checkpoint (see checkpoint.h).
  void resume();

  /// Resume at a mid-sweep slice boundary: `next_slice` is the first slice
  /// the next sweep() call still has to visit, and gup/gdn are the wrapped
  /// Green's functions exactly as they stood at that boundary (saved by
  /// save_checkpoint_mid_sweep). Clusters are rebuilt from the field — the
  /// in-flight cluster's stale cache entry is never read again before its
  /// own rebuild, so the rebuilt cache is bitwise what the interrupted run
  /// would have used — while G is RESTORED, not re-derived: re-stratifying
  /// at a non-k-aligned slice would hand the Metropolis pass a cleaner G
  /// than the wrapped one it saw originally and fork the trajectory.
  void resume_mid_sweep(idx next_slice, linalg::Matrix gup,
                        linalg::Matrix gdn);

  /// Slice the next sweep() resumes from (mid-sweep restore pending), or
  /// nullopt when the engine is at a sweep boundary.
  std::optional<idx> pending_resume_slice() const { return resume_slice_; }

  /// Called after each slice finishes its Metropolis pass; the engine's
  /// Green's functions are flushed and positioned at that slice boundary.
  using SliceHook = std::function<void(idx slice)>;

  /// One full sweep: every (slice, site) visited once. The optional hook
  /// lets callers measure on every slice (QUEST measures equal-time
  /// observables across slices, which is what gives Table I its ~18-20%
  /// measurement share).
  SweepStats sweep(const SliceHook& on_slice = nullptr);

  /// Green's function of spin `s` at the current slice boundary, with all
  /// pending corrections flushed.
  const linalg::Matrix& greens(Spin s);

  /// Sign of the current configuration weight det M+ det M-.
  int config_sign() const { return sign_; }

  HSField& field() { return field_; }
  const BMatrixFactory& factory() const { return factory_; }
  Profiler& profiler() { return profiler_; }
  /// Stratification diagnostics merged over the two spin chains.
  StratStats strat_stats() const;
  Rng& rng() { return rng_; }

  /// Cumulative acceptance across all sweeps so far.
  const SweepStats& lifetime_stats() const { return lifetime_; }

  /// The compute backend the hot path runs on (always present).
  backend::ComputeBackend& compute_backend() { return *backend_; }
  const backend::ComputeBackend& compute_backend() const { return *backend_; }

  /// Wrap uploads elided because G stayed resident on the backend between
  /// wraps (summed over both spin chains).
  std::uint64_t wrap_uploads_skipped() const {
    return chains_[0]->wrap_uploads_skipped() +
           chains_[1]->wrap_uploads_skipped();
  }

  /// Recompute G for both spins from scratch at the boundary before
  /// cluster `c` (exposed for the accuracy bench, Fig. 2). When
  /// `record_drift` is set and the global obs::HealthMonitor is enabled,
  /// ‖G_wrap − G_fresh‖_max is reported before the fresh G replaces the
  /// wrapped one.
  void recompute_greens(idx cluster = 0, bool record_drift = false);

  /// Block until the engine's deferred background work (async cluster
  /// rebuilds) has landed on the backend stream. Required between engines
  /// when several of them share one async backend: the stream accepts one
  /// submitter at a time, and a deferred rebuild is a submitter.
  void quiesce();

 private:
  friend class WalkerBatch;

  void wrap_slice(idx slice);
  void metropolis_slice(idx slice, SweepStats& stats);
  /// The Metropolis site loop of one slice WITHOUT the trailing flushes —
  /// the walker-crowd driver runs the site loops of all walkers as tasks
  /// and folds their end-of-slice flushes into one batched GEMM.
  void metropolis_slice_sites(idx slice, SweepStats& stats);
  int sign_from_scratch();

  Lattice lattice_;
  ModelParams params_;
  EngineConfig config_;
  BMatrixFactory factory_;
  HSField field_;
  Rng rng_;
  // The backend and its per-spin chains are declared BEFORE clusters_: the
  // store's destructor drains deferred rebuild tasks that still use the
  // chains, so it must run first (reverse declaration order). When the
  // engine runs on a caller-owned backend, owned_backend_ stays null and
  // backend_ points at the shared instance.
  std::unique_ptr<backend::ComputeBackend> owned_backend_;
  backend::ComputeBackend* backend_;
  std::unique_ptr<backend::BackendBChain> chains_[2];
  ClusterStore clusters_;
  // Per-spin stratification engines: the Up/Down chains run as concurrent
  // tasks, so each spin owns its scratch state.
  StratificationEngine strat_[2];
  DelayedGreens delayed_[2];
  // DelayedGreens revision each chain's resident G was downloaded at; lets
  // wrap_slice skip the upload when no flip touched G since the last wrap.
  std::uint64_t wrapped_revision_[2] = {~0ull, ~0ull};
  Profiler profiler_;
  SweepStats lifetime_;
  int sign_ = 1;
  bool initialized_ = false;
  // Set by resume_mid_sweep(); consumed by the next sweep().
  std::optional<idx> resume_slice_;
};

}  // namespace dqmc::core
