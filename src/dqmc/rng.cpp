#include "dqmc/rng.h"

namespace dqmc::core {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++ step (Blackman & Vigna).
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

}  // namespace dqmc::core
