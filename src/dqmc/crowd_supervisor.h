// Supervisor for ONE lockstep walker crowd: chains [first, first + W) of a
// parallel run, advanced through the batched WalkerBatch path in
// checkpointed segments (see supervisor.h for the recovery ladder this
// applies crowd-wide).
//
// Extracted from supervisor.cpp so out-of-process runtimes (the fleet
// coordinator/worker in src/fleet/) can drive the SAME execution path the
// single-process crowd run uses — one code path is what makes the fleet's
// bitwise-equivalence contract provable rather than aspirational. On top of
// the original supervised loop this adds the fleet's three hooks:
//   * set_resume(): start from per-walker v1 checkpoints + committed-sweep
//     count instead of initialize() — how a shard moves between processes;
//   * a boundary hook fired after every committed segment — the fleet
//     worker polls its control pipe there (steal requests, snapshots);
//   * split_tail(): give up the crowd's trailing walkers at a lockstep
//     boundary, rebuilding the batch around the kept walkers — the
//     work-stealing donor side. Splits are only legal when the recovery
//     checkpoints are current (ckpt_sweep == done), so a migrated walker
//     resumes bit-for-bit.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "dqmc/walker_batch.h"

namespace dqmc::core {

namespace detail {

/// A health-monitor trip surfaced as an exception so it routes through the
/// same per-segment recovery as thrown faults.
class HealthTripError : public Error {
 public:
  explicit HealthTripError(std::uint64_t violations)
      : Error("health monitor tripped (" + std::to_string(violations) +
              " violations)") {}
};

/// Deterministic exponential backoff: base * 2^(attempt-1), capped.
double backoff_ms(const SupervisorPolicy& policy, int attempt);

struct FaultEventBuilder {
  std::string site;
  fault::FaultClass cls;
  std::string detail;
  int attempt;
};

}  // namespace detail

/// Segment-boundary report passed to the boundary hook.
struct CrowdBoundary {
  idx done = 0;       ///< sweeps committed so far
  idx total = 0;      ///< warmup + measurement sweeps
  /// Recovery checkpoints are current (ckpt_sweep == done) and the crowd
  /// still has at least two walkers — split_tail() is legal right now.
  bool can_split = false;
};

/// Called between segments, after commit. May call split_tail() on the
/// supervisor that invoked it; must not throw to signal anything but a
/// fatal error.
using CrowdBoundaryFn = std::function<void(const CrowdBoundary&)>;

/// State handed off when walkers leave a crowd (split_tail) — everything a
/// receiving process needs to continue those chains bit-for-bit.
struct WalkerHandoff {
  idx first_chain = 0;  ///< global index of the first migrated chain
  idx walkers = 0;
  idx done = 0;  ///< sweeps committed (== the checkpoints' boundary)
  std::vector<std::string> checkpoints;  ///< per-walker v1 checkpoints
};

/// One supervised lockstep crowd. The recovery ladder is crowd-wide: any
/// fault restores ALL walkers from their lockstep in-memory checkpoints and
/// replays the segment — restores and sweeps are bitwise, so a faulting
/// walker's recovery leaves its batchmates' trajectories untouched. Device
/// faults that exhaust max_retries degrade the whole crowd gpusim -> host;
/// health-trip exhaustion disables the gate crowd-wide; a checkpoint I/O
/// failure skips the WHOLE crowd's checkpoint so the recovery points stay
/// lockstep. Fault accounting lands on the crowd's first chain's report
/// (sum-correct after the merge).
class CrowdSupervisor {
 public:
  /// Runs chains [first, first + walkers). Results land in
  /// partials[partials_offset + w], which are (re)constructed by this
  /// ctor with the chain's own seed (config.seed + first + w). The
  /// single-process path passes partials_offset == first; the fleet worker
  /// passes 0 (its partials vector covers only its own shard).
  CrowdSupervisor(const SimulationConfig& config,
                  const SupervisorPolicy& policy, idx first, idx walkers,
                  const ProgressFn& progress,
                  std::vector<std::unique_ptr<SimulationResults>>& partials,
                  idx partials_offset);

  /// Single-process convenience: partials_offset == first.
  CrowdSupervisor(const SimulationConfig& config,
                  const SupervisorPolicy& policy, idx first, idx walkers,
                  const ProgressFn& progress,
                  std::vector<std::unique_ptr<SimulationResults>>& partials)
      : CrowdSupervisor(config, policy, first, walkers, progress, partials,
                        first) {}

  /// Start from per-walker v1 checkpoints captured at sweep boundary `done`
  /// instead of initialize(): the crowd resumes as if it had committed
  /// `done` sweeps already. The caller is responsible for priming the
  /// partials with the samples committed before the handoff (their
  /// accumulators travel separately — see fleet/serial.h). Must be called
  /// before run().
  void set_resume(std::vector<std::string> checkpoints, idx done);

  /// Fire `hook` after every committed segment. Must be set before run().
  void set_boundary_hook(CrowdBoundaryFn hook) { boundary_ = std::move(hook); }

  /// Give up the crowd's last `count` walkers (1 <= count < walkers()).
  /// Only legal from inside the boundary hook when can_split is true: the
  /// migrated walkers' checkpoints ARE the current boundary, and the batch
  /// is rebuilt around the kept walkers from their own lockstep checkpoints
  /// (a bitwise restore, not a fault — no restart is recorded, though like
  /// any rebuild it resets the kept engines' profiler/stratification
  /// diagnostics). The migrated chains' partials keep their committed
  /// samples; the caller ships them with the handoff and must not count
  /// them in this crowd's finished results.
  WalkerHandoff split_tail(idx count);

  /// Run to completion (or throw after the recovery ladder gives up).
  void run();

  idx first_chain() const { return first_; }
  idx walkers() const { return walkers_; }
  idx done() const { return done_; }
  idx total_sweeps() const {
    return config_.warmup_sweeps + config_.measurement_sweeps;
  }
  /// Sweep boundary the current recovery checkpoints capture.
  idx checkpoint_sweep() const { return ckpt_sweep_; }
  /// Per-walker v1 checkpoints at checkpoint_sweep() (empty before the
  /// first boundary).
  const std::vector<std::string>& checkpoints() const { return ckpts_; }

 private:
  std::size_t index(idx w) const {
    return static_cast<std::size_t>(offset_ + w);
  }
  std::uint64_t seed(idx w) const {
    return config_.seed + static_cast<std::uint64_t>(first_ + w);
  }
  fault::FaultReport& report() { return partials_[index(0)]->fault_report; }

  EngineConfig engine_config() const;
  std::unique_ptr<WalkerBatch> make_batch() const;
  void start_batch();
  void restore();
  void load_all_from_ckpts();
  bool recover(const std::string& site, fault::FaultClass cls,
               const std::string& what, int attempt);
  void push_event(const detail::FaultEventBuilder& b, const char* action,
                  double backoff);
  void run_segment(idx g_begin, idx g_end);
  void measurement_sweep(idx m);
  void add_stats(const std::vector<SweepStats>& stats);
  void check_health();
  void take_checkpoints(idx sweep);
  void commit(idx seg_end);
  void discard_scratch();
  void finish();

  const SimulationConfig& config_;
  const SupervisorPolicy& policy_;
  const ProgressFn& progress_;
  idx first_;
  idx walkers_;
  idx offset_;  ///< partials_[offset_ + w] holds chain first_ + w
  std::vector<std::unique_ptr<SimulationResults>>& partials_;
  Lattice lattice_;
  backend::BackendKind backend_;
  backend::Precision precision_;  ///< degradable: fp32 -> fp64 on health trips
  std::unique_ptr<WalkerBatch> batch_;
  idx done_ = 0;
  idx ckpt_sweep_ = 0;
  std::vector<std::string> ckpts_;  ///< per-walker v1 ckpts at ckpt_sweep_
  bool resume_ = false;  ///< start_batch loads ckpts_ instead of initialize
  CrowdBoundaryFn boundary_;
  std::vector<std::vector<std::pair<EqualTimeSample, int>>> scratch_samples_;
  std::vector<std::vector<std::pair<DynamicSample, int>>> scratch_dynamic_;
  /// Per-walker measurement workspaces (slice hooks measure concurrently).
  std::vector<std::unique_ptr<MeasurementWorkspace>> workspaces_;
  std::vector<SweepStats> scratch_stats_;
  bool check_health_ = true;
  std::uint64_t health_baseline_ = 0;
};

}  // namespace dqmc::core
