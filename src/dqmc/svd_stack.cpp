#include "dqmc/svd_stack.h"

#include <utility>

#include "dqmc/graded.h"
#include "fault/failpoint.h"
#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/svd.h"
#include "obs/metrics.h"

namespace dqmc::core {

using linalg::Trans;

SvdStackAccumulator::SvdStackAccumulator(idx n) : n_(n) {
  DQMC_CHECK(n >= 1);
}

void SvdStackAccumulator::reset() {
  empty_ = true;
  scale_stack_.clear();
}

const Matrix& SvdStackAccumulator::u() const {
  DQMC_CHECK_MSG(!empty_, "SvdStackAccumulator is empty");
  return u_;
}
const Vector& SvdStackAccumulator::d() const {
  DQMC_CHECK_MSG(!empty_, "SvdStackAccumulator is empty");
  return d_;
}
const Matrix& SvdStackAccumulator::t() const {
  DQMC_CHECK_MSG(!empty_, "SvdStackAccumulator is empty");
  return t_;
}

void SvdStackAccumulator::push(const Matrix& factor) {
  DQMC_CHECK(factor.rows() == n_ && factor.cols() == n_);
  ++stats_.steps;
  // Same stabilization-step fail-point site as the graded QR, so the
  // supervisor's fault injection and recovery ladder exercise the SVD
  // strategy without any test scaffolding changes.
  DQMC_FAILPOINT("graded.qr");

  // C = (factor * U) * diag(d): GEMM between well-scaled operands, then the
  // graded column scaling — identical pre-step to the QR accumulator.
  Matrix c(n_, n_);
  if (empty_) {
    c = factor;
  } else {
    linalg::gemm(Trans::No, Trans::No, 1.0, factor, u_, 0.0, c);
    linalg::scale_cols(d_.data(), c);
  }

  linalg::SVDecomposition f = linalg::svd(c);
  obs::metrics().count("strat.svd_calls");

  u_ = std::move(f.u);
  d_ = std::move(f.sigma);
  if (empty_) {
    t_ = std::move(f.vt);
    empty_ = false;
  } else {
    // T_i = V'^T * T_{i-1}: both orthogonal (products of rotations), so T
    // stays perfectly scaled — no triangular growth to control.
    work_.resize(n_, n_);
    linalg::gemm(Trans::No, Trans::No, 1.0, f.vt, t_, 0.0, work_);
    std::swap(t_, work_);
  }
  scale_stack_.push_back(d_);
}

std::unique_ptr<Stabilizer> make_stabilizer(idx n, StratAlgorithm algorithm,
                                            idx qr_block) {
  if (algorithm == StratAlgorithm::kSvdStack) {
    return std::make_unique<SvdStackAccumulator>(n);
  }
  return std::make_unique<GradedAccumulator>(n, algorithm, qr_block);
}

}  // namespace dqmc::core
