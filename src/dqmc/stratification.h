// Stratified Green's function evaluation (Section III-A / IV-A).
//
// Computes G = (I + B_L B_{L-1} ... B_1)^{-1} through the graded UDT
// decomposition of Loh et al. (see graded.h): the chain is accumulated as
// Q D T so no intermediate product ever mixes magnitudes, then closed with
// the D_b/D_s splitting.
//
// Two variants, selectable per the paper:
//   * Algorithm 2 (kQRP):      every step uses QR with column pivoting —
//                              the numerically canonical but level-2-bound
//                              baseline.
//   * Algorithm 3 (kPrePivot): the paper's contribution — one threaded
//                              column-norm sort ("pre-pivoting") followed by
//                              a blocked UNpivoted QR, keeping the trailing
//                              updates entirely level-3.
//   * SVD stack (kSvdStack):   one-sided Jacobi SVD at every step
//                              (svd_stack.h) — singular-value-exact
//                              d-scales for the beta >> 32 regime.
// All three are Stabilizer strategies (stabilizer.h); the engine holds
// whichever make_stabilizer() yields for its configured algorithm.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/profiler.h"
#include "dqmc/stabilizer.h"
#include "linalg/matrix.h"

namespace dqmc::core {

class StratificationEngine {
 public:
  StratificationEngine(idx n, StratAlgorithm algorithm,
                       idx qr_block = linalg::kQrBlock);

  StratAlgorithm algorithm() const { return acc_->algorithm(); }
  idx n() const { return acc_->n(); }
  const StratStats& stats() const { return stats_; }

  /// Compute G = (I + F_{m-1} F_{m-2} ... F_0)^{-1}, with `factors` given
  /// rightmost-first (factors[0] = F_0 is applied to a state first).
  /// All factors must be n x n. `prof` (optional) is credited with
  /// Phase::kStratification.
  Matrix compute(const std::vector<const Matrix*>& factors,
                 Profiler* prof = nullptr);

  /// Convenience overload for owned matrices.
  Matrix compute(const std::vector<Matrix>& factors, Profiler* prof = nullptr);

  /// Yields factor i (rightmost-first) on demand; called once per index in
  /// increasing order.
  using FactorProvider = std::function<const Matrix&(idx)>;

  /// Lazy-provider overload: factors are requested one at a time as the
  /// graded accumulation consumes them, so a factor still being produced
  /// elsewhere (e.g. a cluster product pipelining on the device) only
  /// blocks when its turn comes — the paper's CPU/GPU overlap.
  Matrix compute(idx count, const FactorProvider& factor,
                 Profiler* prof = nullptr);

 private:
  std::unique_ptr<Stabilizer> acc_;
  StratStats stats_;
};

/// Close a graded decomposition: G = (I + U diag(d) T)^{-1} evaluated as
/// G = (D_b U^T + D_s T)^{-1} D_b U^T with the big/small splitting
/// d = D_b^{-1} D_s (every bracket term is O(1)). Exposed for the
/// time-displaced module and tests.
Matrix close_greens(const Matrix& u, const Vector& d, const Matrix& t);

/// Robust sign of det(I + F_{m-1} ... F_0), factors rightmost-first.
/// Works at ANY chain conditioning: with I + U d T = U D_b^{-1} (D_b U^T +
/// D_s T), the sign is sign(det U) * sign(d entries) ... * sign(det A) where
/// U (orthogonal) and A = D_b U^T + D_s T (O(1) elements) are both
/// well-conditioned LU targets — unlike det(G) itself, whose tiny singular
/// values make LU pivot signs unreliable at large beta.
///
/// `algorithm` is REQUIRED (no default): the caller must pass the engine's
/// configured stabilizer so sign diagnostics and stratification always run
/// the same accumulation.
int chain_det_sign(const std::vector<const Matrix*>& factors,
                   StratAlgorithm algorithm);

}  // namespace dqmc::core
