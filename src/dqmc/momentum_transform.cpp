#include "dqmc/momentum_transform.h"

#include <algorithm>

#include "common/error.h"
#include "parallel/parallel_for.h"

namespace dqmc::core {

namespace {

using linalg::Cplx;

/// One plane / signal per task is already thousands of flops.
constexpr par::ForOptions kPlaneOptions{.grain = 1};

}  // namespace

const char* measure_kind_name(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kDirect:
      return "direct";
    case MeasureKind::kFft:
      return "fft";
  }
  return "unknown";
}

MeasureKind measure_kind_from_string(const std::string& name) {
  if (name == "direct") return MeasureKind::kDirect;
  if (name == "fft") return MeasureKind::kFft;
  throw InvalidArgument("unknown measure kind '" + name +
                        "' (expected direct or fft)");
}

MomentumTransform::MomentumTransform(const hubbard::Lattice& lat)
    : lx_(lat.lx()),
      ly_(lat.ly()),
      layers_(lat.layers()),
      plane_(lat.sites_per_layer()),
      n_(lat.num_sites()),
      ndisp_(lat.num_displacements()),
      fft2_(lat.lx(), lat.ly()) {
  pair_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  for (idx j = 0; j < n_; ++j) {
    for (idx i = 0; i < n_; ++i) {
      pair_[static_cast<std::size_t>(i + n_ * j)] =
          static_cast<std::int32_t>(lat.displacement_index(j, i));
    }
  }
  plane_pair_.resize(static_cast<std::size_t>(plane_) *
                     static_cast<std::size_t>(plane_));
  for (idx jp = 0; jp < plane_; ++jp) {
    for (idx ip = 0; ip < plane_; ++ip) {
      // Same-layer pairs: layer 0 stands in for every layer (the in-plane
      // displacement only depends on the plane coordinates).
      plane_pair_[static_cast<std::size_t>(ip + plane_ * jp)] =
          static_cast<std::int32_t>(lat.displacement_index(jp, ip) -
                                    plane_ * (layers_ - 1));
    }
  }
}

void MomentumTransform::project_plane(const double* plane, double* out,
                                      Workspace& ws) const {
  ws.plane.resize(static_cast<std::size_t>(plane_));
  for (idx p = 0; p < plane_; ++p) ws.plane[static_cast<std::size_t>(p)] = {plane[p], 0.0};
  fft2_.forward(ws.plane.data(), ws.fft);
  // Real input: the forward transform's real part IS sum_d cos(k.d) f(d),
  // in the momentum order nx + Lx * ny that Lattice::momenta() uses.
  for (idx p = 0; p < plane_; ++p) out[p] = ws.plane[static_cast<std::size_t>(p)].re;
}

void MomentumTransform::project_planes(const double* planes, idx count,
                                       idx in_stride, double* out,
                                       idx out_stride) const {
  DQMC_CHECK(count >= 0 && in_stride >= plane_ && out_stride >= plane_);
  par::parallel_for_chunks(
      0, count,
      [&](par::index_t lo, par::index_t hi) {
        Workspace ws;  // per-chunk scratch; per-plane arithmetic is fixed
        for (par::index_t p = lo; p < hi; ++p) {
          project_plane(planes + p * in_stride, out + p * out_stride, ws);
        }
      },
      kPlaneOptions);
}

void MomentumTransform::correlate(const double* a, const double* b,
                                  double* out, Workspace& ws) const {
  const idx p_sz = plane_;
  const idx z_ct = layers_;
  const std::size_t spectra = static_cast<std::size_t>(z_ct * p_sz);
  ws.a_hat.resize(spectra);
  ws.b_hat.resize(spectra);
  ws.acc.resize(static_cast<std::size_t>(p_sz));

  // Forward-transform every layer of both inputs once.
  for (idx z = 0; z < z_ct; ++z) {
    Cplx* ah = ws.a_hat.data() + z * p_sz;
    Cplx* bh = ws.b_hat.data() + z * p_sz;
    const double* az = a + z * p_sz;
    const double* bz = b + z * p_sz;
    for (idx p = 0; p < p_sz; ++p) {
      ah[p] = {az[p], 0.0};
      bh[p] = {bz[p], 0.0};
    }
    fft2_.forward(ah, ws.fft);
    fft2_.forward(bh, ws.fft);
  }

  // One inverse transform per layer offset: C_dz = sum_z IFFT[conj(A_z)
  // .* B_{z+dz}], accumulated spectrally first (IFFT is linear).
  for (idx dzi = 0; dzi < 2 * z_ct - 1; ++dzi) {
    const idx dz = dzi - (z_ct - 1);
    std::fill(ws.acc.begin(), ws.acc.end(), Cplx{0.0, 0.0});
    const idx z_lo = std::max<idx>(0, -dz);
    const idx z_hi = std::min<idx>(z_ct, z_ct - dz);
    for (idx z = z_lo; z < z_hi; ++z) {
      const Cplx* ah = ws.a_hat.data() + z * p_sz;
      const Cplx* bh = ws.b_hat.data() + (z + dz) * p_sz;
      Cplx* acc = ws.acc.data();
      for (idx p = 0; p < p_sz; ++p) {
        // conj(ah) * bh
        acc[p].re += ah[p].re * bh[p].re + ah[p].im * bh[p].im;
        acc[p].im += ah[p].re * bh[p].im - ah[p].im * bh[p].re;
      }
    }
    fft2_.inverse(ws.acc.data(), ws.fft);
    double* o = out + p_sz * dzi;
    for (idx p = 0; p < p_sz; ++p) o[p] += ws.acc[static_cast<std::size_t>(p)].re;
  }
}

MeasurementWorkspace::MeasurementWorkspace(const hubbard::Lattice& lat,
                                           MeasureKind kind_in)
    : kind(kind_in),
      lx(lat.lx()),
      ly(lat.ly()),
      layers(lat.layers()),
      n(lat.num_sites()),
      transform(lat),
      momenta(lat.momenta()) {
  // d-wave neighbour table with the form-factor sign order
  // (+x, -x, +y, -y) the direct loop uses.
  const idx deltas[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  dwave_nbr.resize(static_cast<std::size_t>(n) * 4);
  for (idx i = 0; i < n; ++i) {
    for (int d = 0; d < 4; ++d) {
      dwave_nbr[static_cast<std::size_t>(i) * 4 + static_cast<std::size_t>(d)] =
          lat.neighbor(i, deltas[d][0], deltas[d][1]);
    }
  }
  nup.resize(static_cast<std::size_t>(n));
  ndn.resize(static_cast<std::size_t>(n));
  fup = linalg::Vector(lat.num_displacements());
  fdn = linalg::Vector(lat.num_displacements());
  ex = linalg::Vector(lat.num_displacements());
  mvec = linalg::Vector(n);
  colsum = linalg::Vector(n);
  eps = linalg::Vector(n);
  m0 = linalg::Vector(n);
  fdisp = linalg::Vector(lat.num_displacements());
  for (idx i = 0; i < n; ++i) {
    const auto c = lat.coord(i);
    eps[i] = ((c.x + c.y) % 2 == 0) ? 1.0 : -1.0;
  }
}

}  // namespace dqmc::core
