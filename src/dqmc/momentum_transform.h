// FFT-planned momentum projections and displacement-space correlators.
//
// Every translation-averaged observable is a circular cross-correlation
// over the periodic lattice plane: C(d) = sum_j A(j) B(j + d) is the
// inverse transform of conj(A_hat) .* B_hat, and the momentum projection
// n_k = sum_d cos(k . d) F(d) is the real part of the forward transform.
// A MomentumTransform plans both per Lattice — FFT plans for the in-plane
// Lx x Ly geometry (mixed radix, so odd edges work), explicit layer
// folding for the open z direction, and a cached site-pair ->
// displacement-index table that keeps the Lattice accumulation convention
// without per-pair div/mod arithmetic.
//
// MeasurementWorkspace bundles the transform with all per-sample scratch
// (density vectors, displacement tables, stencil matrices) so the
// measurement kernels stop churning the allocator — one workspace per
// walker, reused across every configuration it measures. The `kind` seam
// selects between the original direct loops (bit-for-bit unchanged, the
// golden-fixture path) and the FFT pipeline (same observables to ~1e-12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hubbard/lattice.h"
#include "linalg/fft.h"
#include "linalg/matrix.h"

namespace dqmc::core {

using linalg::idx;

/// How measure_equal_time / measure_dynamic evaluate the translation
/// averages: the original O(N^2) site-pair loops or the FFT pipeline.
enum class MeasureKind {
  kDirect,
  kFft,
};

const char* measure_kind_name(MeasureKind kind);
/// Parses "direct" / "fft"; throws InvalidArgument otherwise.
MeasureKind measure_kind_from_string(const std::string& name);

class MomentumTransform {
 public:
  /// Per-call scratch so one immutable transform serves many threads.
  struct Workspace {
    std::vector<linalg::Cplx> plane;        ///< one complex lattice plane
    std::vector<linalg::Cplx> acc;          ///< spectral accumulation plane
    std::vector<linalg::Cplx> a_hat, b_hat; ///< per-layer spectra
    linalg::Fft2::Workspace fft;
  };

  explicit MomentumTransform(const hubbard::Lattice& lat);

  idx plane_size() const { return plane_; }
  idx num_sites() const { return n_; }
  idx num_displacements() const { return ndisp_; }

  /// Cached lattice.displacement_index(j, i) — the displacement slot d
  /// with site i at site j + d. Layout: i + num_sites() * j.
  std::int32_t pair_index(idx i, idx j) const {
    return pair_[static_cast<std::size_t>(i + n_ * j)];
  }
  const std::int32_t* pair_data() const { return pair_.data(); }

  /// In-plane analogue for same-layer pairs: plane_pair_data()[ip +
  /// plane_size() * jp] is the in-plane displacement slot of plane sites
  /// (ip, jp) — what the layer-diagonal gk_tau gather indexes by.
  const std::int32_t* plane_pair_data() const { return plane_pair_.data(); }

  /// out[k] = sum_d cos(k . d) plane[d] for every momentum, ordered like
  /// Lattice::momenta(); `plane` is one in-plane displacement table
  /// (plane_size() values, x fastest).
  void project_plane(const double* plane, double* out, Workspace& ws) const;

  /// Batched projection of `count` planes (plane p at planes + p *
  /// in_stride, output row p at out + p * out_stride), parallel over
  /// planes with chunk-independent per-plane arithmetic.
  void project_planes(const double* planes, idx count, idx in_stride,
                      double* out, idx out_stride) const;

  /// out[d] += sum_j a(j) b(j + d) over all sites j and every displacement
  /// slot d (periodic in plane, open across layers). `a`, `b` hold
  /// num_sites() values; `out` holds num_displacements() values and is
  /// accumulated into, not overwritten.
  void correlate(const double* a, const double* b, double* out,
                 Workspace& ws) const;

 private:
  idx lx_, ly_, layers_, plane_, n_, ndisp_;
  linalg::Fft2 fft2_;
  std::vector<std::int32_t> pair_;
  std::vector<std::int32_t> plane_pair_;
};

/// All per-walker measurement state that outlives one sample: the planned
/// transform, cached momenta / neighbour tables, and reusable scratch.
/// Not thread-safe — one workspace per concurrently-measuring walker.
struct MeasurementWorkspace {
  MeasurementWorkspace(const hubbard::Lattice& lat, MeasureKind kind);

  MeasureKind kind = MeasureKind::kDirect;
  idx lx = 0, ly = 0, layers = 0, n = 0;

  MomentumTransform transform;
  MomentumTransform::Workspace mt_ws;
  std::vector<hubbard::Momentum> momenta;  ///< cached Lattice::momenta()
  std::vector<idx> dwave_nbr;              ///< n x 4 d-wave neighbour table

  // Equal-time scratch.
  std::vector<double> nup, ndn;
  linalg::Vector fup, fdn, ex, mvec, colsum;
  linalg::Matrix stencil1, stencil2;  ///< fft-path pair_d row/column passes

  // Dynamic scratch.
  linalg::Vector eps, m0, fdisp;
  std::vector<double> gk_planes;  ///< (L+1) gathered planes, batched FFT
};

}  // namespace dqmc::core
