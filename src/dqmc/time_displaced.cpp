#include "dqmc/time_displaced.h"

#include <cmath>

#include "dqmc/cluster_store.h"
#include "linalg/blas1.h"
#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/lu.h"
#include "linalg/util.h"

namespace dqmc::core {

using linalg::Trans;

namespace {

/// Big/small splitting with the stored-inverse convention of close_greens:
/// d = db^{-1} * ds elementwise, where db = 1/|d| (<= 1) for |d| > 1 else 1,
/// and ds = d for |d| <= 1 else sgn(d) (so |ds| <= 1 too).
struct Split {
  Vector db, ds;
};

Split split_diag(const Vector& d) {
  const idx n = d.size();
  Split s{Vector(n), Vector(n)};
  for (idx i = 0; i < n; ++i) {
    const double di = d[i];
    if (std::fabs(di) > 1.0) {
      s.db[i] = 1.0 / std::fabs(di);
      s.ds[i] = di > 0.0 ? 1.0 : -1.0;
    } else {
      s.db[i] = 1.0;
      s.ds[i] = di;
    }
  }
  return s;
}

/// Identity fallbacks for the chain edges.
UDT identity_udt(idx n) {
  return UDT{Matrix::identity(n), Vector::constant(n, 1.0), Matrix::identity(n)};
}
PDQ identity_pdq(idx n) {
  return PDQ{Matrix::identity(n), Vector::constant(n, 1.0), Matrix::identity(n)};
}

}  // namespace

Matrix displaced_g_tau0(const UDT* prefix, const PDQ* suffix) {
  DQMC_CHECK_MSG(prefix || suffix, "both chain parts empty");
  const idx n = prefix ? prefix->u.rows() : suffix->q.rows();
  const UDT pre = prefix ? *prefix : identity_udt(n);
  const PDQ suf = suffix ? *suffix : identity_pdq(n);

  const Split s1 = split_diag(pre.d);
  const Split s2 = split_diag(suf.d);

  // H = db1 . (U1^T Q2) . db2 + ds1 . (T1 P2) . ds2  (rows . cols scaling)
  Matrix uq = linalg::matmul(pre.u, suf.q, Trans::Yes, Trans::No);
  Matrix tp = linalg::matmul(pre.t, suf.p);
  Matrix h(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      h(i, j) = s1.db[i] * uq(i, j) * s2.db[j] +
                s1.ds[i] * tp(i, j) * s2.ds[j];
    }
  }

  // G = Q2 . diag(db2) . H^{-1} . diag(ds1) . T1
  Matrix x = pre.t;
  linalg::scale_rows(s1.ds.data(), x);
  linalg::LUFactorization hlu = linalg::lu_factor(std::move(h));
  linalg::lu_solve(hlu, Trans::No, x);
  linalg::scale_rows(s2.db.data(), x);
  return linalg::matmul(suf.q, x);
}

Matrix displaced_g_0tau(const UDT* prefix, const PDQ* suffix) {
  DQMC_CHECK_MSG(prefix || suffix, "both chain parts empty");
  const idx n = prefix ? prefix->u.rows() : suffix->q.rows();
  const UDT pre = prefix ? *prefix : identity_udt(n);
  const PDQ suf = suffix ? *suffix : identity_pdq(n);

  const Split s1 = split_diag(pre.d);
  const Split s2 = split_diag(suf.d);

  // H' = db2 . (T1 P2)^{-1} . db1 + ds2 . (Q2^T U1) . ds1
  Matrix tp = linalg::matmul(pre.t, suf.p);
  Matrix tp_inv = linalg::lu_inverse(linalg::lu_factor(std::move(tp)));
  Matrix qu = linalg::matmul(suf.q, pre.u, Trans::Yes, Trans::No);
  Matrix h(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      h(i, j) = s2.db[i] * tp_inv(i, j) * s1.db[j] +
                s2.ds[i] * qu(i, j) * s1.ds[j];
    }
  }

  // G(0,l) = - T1^{-1} . diag(db1) . H'^{-1} . diag(ds2) . Q2^T
  Matrix y = linalg::transpose(suf.q);
  linalg::scale_rows(s2.ds.data(), y);
  linalg::LUFactorization hlu = linalg::lu_factor(std::move(h));
  linalg::lu_solve(hlu, Trans::No, y);
  linalg::scale_rows(s1.db.data(), y);
  linalg::LUFactorization tlu = linalg::lu_factor(Matrix(pre.t));
  linalg::lu_solve(tlu, Trans::No, y);
  for (idx j = 0; j < n; ++j) {
    linalg::scal(n, -1.0, y.col(j));
  }
  return y;
}

Matrix displaced_g_tau_tau(const UDT* prefix, const PDQ* suffix) {
  DQMC_CHECK_MSG(prefix || suffix, "both chain parts empty");
  const idx n = prefix ? prefix->u.rows() : suffix->q.rows();
  const UDT pre = prefix ? *prefix : identity_udt(n);
  const PDQ suf = suffix ? *suffix : identity_pdq(n);

  const Split s1 = split_diag(pre.d);
  const Split s2 = split_diag(suf.d);

  // Same H as displaced_g_tau0; the equal-time inverse closes as
  // G(l,l) = M^{-1} = Q2 . diag(db2) . H^{-1} . diag(db1) . U1^T.
  Matrix uq = linalg::matmul(pre.u, suf.q, Trans::Yes, Trans::No);
  Matrix tp = linalg::matmul(pre.t, suf.p);
  Matrix h(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      h(i, j) = s1.db[i] * uq(i, j) * s2.db[j] +
                s1.ds[i] * tp(i, j) * s2.ds[j];
    }
  }

  Matrix x = linalg::transpose(pre.u);
  linalg::scale_rows(s1.db.data(), x);
  linalg::LUFactorization hlu = linalg::lu_factor(std::move(h));
  linalg::lu_solve(hlu, Trans::No, x);
  linalg::scale_rows(s2.db.data(), x);
  return linalg::matmul(suf.q, x);
}

TimeDisplacedGreens::TimeDisplacedGreens(const BMatrixFactory& factory,
                                         const HSField& field,
                                         idx cluster_size,
                                         StratAlgorithm algorithm)
    : factory_(factory), field_(field), cluster_size_(cluster_size),
      algorithm_(algorithm) {
  DQMC_CHECK(cluster_size >= 1);
  DQMC_CHECK(factory.n() == field.sites());
}

TimeDisplaced TimeDisplacedGreens::compute(Spin s) const {
  const idx nn = n();
  const idx slice_count = slices();

  ClusterStore store(factory_, field_, cluster_size_);
  store.rebuild_all();
  const idx nc = store.num_clusters();

  // Prefix snapshots A at every cluster boundary: prefixes[c] = UDT of
  // Bhat_{c-1} ... Bhat_0 (prefixes[0] is the empty chain).
  std::vector<UDT> prefixes(static_cast<std::size_t>(nc) + 1);
  {
    const auto acc = make_stabilizer(nn, algorithm_);
    for (idx c = 0; c < nc; ++c) {
      acc->push(store.cluster(s, c));
      prefixes[static_cast<std::size_t>(c) + 1] = acc->snapshot();
    }
  }

  // Suffix snapshots C at every boundary: suffixes[c] = PDQ of
  // Bhat_{nc-1} ... Bhat_c (suffixes[nc] is the empty chain). Accumulated
  // through the transposed chain so the orthogonal factor lands on the
  // right: C^T = Bhat_c^T * ... * Bhat_{nc-1}^T grows by LEFT pushes of
  // Bhat_c^T as c decreases.
  std::vector<PDQ> suffixes(static_cast<std::size_t>(nc) + 1);
  {
    const auto acc = make_stabilizer(nn, algorithm_);
    for (idx c = nc - 1; c >= 0; --c) {
      acc->push(linalg::transpose(store.cluster(s, c)));
      const UDT t = acc->snapshot();
      suffixes[static_cast<std::size_t>(c)] =
          PDQ{linalg::transpose(t.t), t.d, t.u};
    }
  }

  TimeDisplaced out;
  out.g_tau0.resize(static_cast<std::size_t>(slice_count) + 1);
  out.g_0tau.resize(static_cast<std::size_t>(slice_count) + 1);
  out.g_tautau.resize(static_cast<std::size_t>(slice_count) + 1);

  Matrix work(nn, nn);
  for (idx c = 0; c <= nc; ++c) {
    const idx boundary_slice = (c == nc) ? slice_count : store.cluster_begin(c);
    const UDT* pre = (c == 0) ? nullptr : &prefixes[static_cast<std::size_t>(c)];
    const PDQ* suf = (c == nc) ? nullptr : &suffixes[static_cast<std::size_t>(c)];

    const auto bs = static_cast<std::size_t>(boundary_slice);
    out.g_tau0[bs] = displaced_g_tau0(pre, suf);
    out.g_0tau[bs] = displaced_g_0tau(pre, suf);
    out.g_tautau[bs] = displaced_g_tau_tau(pre, suf);
  }

  // In-between slices: propagate from the last boundary below (bounded
  // error: at most cluster_size single-slice steps).
  for (idx l = 1; l <= slice_count; ++l) {
    const auto lu = static_cast<std::size_t>(l);
    if (!out.g_tau0[lu].empty()) continue;  // boundary already exact
    // G(l,0) = B_l * G(l-1,0)
    out.g_tau0[lu].resize(nn, nn);
    factory_.apply_b_left(field_.slice(l - 1), s, out.g_tau0[lu - 1],
                          out.g_tau0[lu]);
    // G(0,l) = G(0,l-1) * B_l^{-1} = (G(0,l-1) * B^{-1}) . diag(v)^{-1}
    linalg::gemm(Trans::No, Trans::No, 1.0, out.g_0tau[lu - 1],
                 factory_.b_inv(), 0.0, work);
    const Vector vinv = factory_.v_diagonal_inv(field_.slice(l - 1), s);
    linalg::scale_cols(vinv.data(), work);
    out.g_0tau[lu] = work;
    // G(l,l) = B_l G(l-1,l-1) B_l^{-1} (the wrapping update).
    out.g_tautau[lu] = out.g_tautau[lu - 1];
    factory_.wrap(field_.slice(l - 1), s, out.g_tautau[lu], work);
  }

  return out;
}

Vector TimeDisplacedGreens::local_greens(Spin s) const {
  const TimeDisplaced td = compute(s);
  Vector gloc(static_cast<idx>(td.g_tau0.size()));
  for (std::size_t l = 0; l < td.g_tau0.size(); ++l) {
    double tr = 0.0;
    for (idx i = 0; i < n(); ++i) tr += td.g_tau0[l](i, i);
    gloc[static_cast<idx>(l)] = tr / static_cast<double>(n());
  }
  return gloc;
}

}  // namespace dqmc::core
