// Dynamic (imaginary-time-displaced) measurements built on the
// time-displaced Green's functions — QUEST's "dynamic" observable class.
//
// For one configuration:
//   Gloc(tau_l)      = (1/N) tr G(l,0), spin-averaged — the local propagator
//                      whose large-beta decay encodes the spectral gap;
//   chi_AF(tau_l)    = (1/N) sum_{ij} eps_i eps_j <S_z,i(tau) S_z,j(0)>
//                      (staggered z-spin response, eps = (-1)^{x+y});
//   chi_AF integrated over tau = the antiferromagnetic susceptibility.
// Wick factorization per configuration:
//   <S_i(tau) S_j(0)> = m_i(tau) m_j(0)
//                       + sum_sigma (-G_s(0,l)_{ji}) (G_s(l,0)_{ij}),
// with m_i(tau) = n_up,i(tau) - n_dn,i(tau) from the equal-time G(l,l).
#pragma once

#include "dqmc/momentum_transform.h"
#include "dqmc/stats.h"
#include "dqmc/time_displaced.h"
#include "hubbard/lattice.h"

namespace dqmc::core {

using hubbard::Lattice;

/// Single-configuration dynamic observables (length L+1 arrays over tau).
struct DynamicSample {
  Vector gloc;    ///< spin-averaged (1/N) tr G(l,0)
  Vector chi_af;  ///< staggered spin response at displacement tau_l
  double chi_af_integrated = 0.0;  ///< trapezoidal integral over [0, beta]
  /// Momentum-resolved propagator G(k, tau_l), spin- and layer-averaged:
  /// rows indexed like Lattice::momenta(), columns l = 0..L. The tau decay
  /// of each row encodes the single-particle excitation energies.
  linalg::Matrix gk_tau;
};

/// Evaluate the dynamic observables from the two spins' displaced Green's
/// functions. `dtau` is needed for the tau integral. The workspace
/// (planned for the same lattice) selects the direct or FFT path: direct
/// keeps the historical arithmetic bit for bit; fft batches all L+1
/// gk_tau slices through the planned transform and parallelizes over
/// slices (bitwise at any thread count).
DynamicSample measure_dynamic(const Lattice& lattice, double dtau,
                              const TimeDisplaced& up,
                              const TimeDisplaced& dn,
                              MeasurementWorkspace& ws);

/// Convenience overload: plans a single-use direct workspace.
DynamicSample measure_dynamic(const Lattice& lattice, double dtau,
                              const TimeDisplaced& up,
                              const TimeDisplaced& dn);

/// Sign-weighted accumulator for DynamicSample streams.
class DynamicAccumulator {
 public:
  DynamicAccumulator(idx slices, idx bins = 16);

  void add(const DynamicSample& sample, int sign);
  idx samples() const { return chi_int_.samples(); }

  /// Fold another accumulator (same slice count and bins) into this one.
  void merge(const DynamicAccumulator& other) {
    gloc_.merge(other.gloc_);
    chi_.merge(other.chi_);
    chi_int_.merge(other.chi_int_);
  }

  /// Bit-exact text round trip (hexio format); load() requires a matching
  /// slice count and bin count.
  void save(std::ostream& out) const {
    gloc_.save(out);
    chi_.save(out);
    chi_int_.save(out);
  }
  void load(std::istream& in) {
    gloc_.load(in);
    chi_.load(in);
    chi_int_.load(in);
  }

  Estimate gloc(idx l) const { return gloc_.estimate(l); }
  Estimate chi_af(idx l) const { return chi_.estimate(l); }
  Estimate chi_af_integrated() const { return chi_int_.estimate(); }

 private:
  ArrayAccumulator gloc_, chi_;
  ScalarAccumulator chi_int_;
};

}  // namespace dqmc::core
