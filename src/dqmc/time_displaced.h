// Time-displaced (unequal-time) Green's functions — the "dynamic
// measurements" side of QUEST that the paper cites as part of the package.
//
// For a fixed HS configuration and tau_l = l * dtau:
//   G(l, 0)_{ij} =  <c_i(tau_l) c^dag_j(0)> = B_l...B_1 (I + B_L...B_1)^{-1}
//   G(0, l)_{ij} = -<c^dag_j(tau_l) c_i(0)> = -(I + C_l A_l)^{-1} C_l
// with A_l = B_l...B_1 (prefix) and C_l = B_L...B_{l+1} (suffix).
//
// Stability: prefixes are accumulated as U D T (orthogonal left factor),
// suffixes as P D Q^T (orthogonal right factor, via graded accumulation of
// the transposed chain), and the inverses are evaluated with a two-sided
// big/small splitting so every intermediate stays O(1):
//   G(l,0) = Q2 D2b^{-1} H^{-1}  D1s T1,
//   H      = D1b^{-1} (U1^T Q2) D2b^{-1} + D1s (T1 P2) D2s,
// where D = Db^{-1} Ds elementwise with |Ds| <= 1 and Db <= 1 as stored
// (Db holds the INVERSE of the big part). The same machinery with the roles
// of prefix and suffix exchanged yields G(0, l).
#pragma once

#include <vector>

#include "dqmc/graded.h"
#include "dqmc/hs_field.h"
#include "hubbard/bmatrix.h"

namespace dqmc::core {

using hubbard::BMatrixFactory;
using hubbard::Spin;

/// All time-displaced Green's functions of one configuration and spin.
struct TimeDisplaced {
  /// g_tau0[l] = G(l, 0), l = 0..L (l = 0 is the equal-time G(0,0);
  /// l = L equals I - G(0,0) by the anti-periodic boundary).
  std::vector<Matrix> g_tau0;
  /// g_0tau[l] = G(0, l) = -<c^dag(tau_l) c(0)> matrices, l = 0..L.
  std::vector<Matrix> g_0tau;
  /// g_tautau[l] = G(l, l), the equal-time Green's function at slice l
  /// (needed for densities at displaced times, e.g. the disconnected part
  /// of the spin susceptibility).
  std::vector<Matrix> g_tautau;
};

class TimeDisplacedGreens {
 public:
  /// References are retained; factory and field must outlive this object.
  /// `cluster_size` controls how often the chain is re-stratified (the
  /// paper's k = 10 default is fine).
  TimeDisplacedGreens(const BMatrixFactory& factory, const HSField& field,
                      idx cluster_size = 10,
                      StratAlgorithm algorithm = StratAlgorithm::kPrePivot);

  idx n() const { return factory_.n(); }
  idx slices() const { return field_.slices(); }

  /// Compute both families for spin `s` from the current field.
  TimeDisplaced compute(Spin s) const;

  /// Convenience for the common observable: the local time-displaced
  /// Green's function Gloc(tau_l) = (1/N) tr G(l,0), l = 0..L.
  Vector local_greens(Spin s) const;

 private:
  const BMatrixFactory& factory_;
  const HSField& field_;
  idx cluster_size_;
  StratAlgorithm algorithm_;
};

/// Suffix decomposition C = P diag(d) Q^T with Q orthogonal (obtained by
/// graded accumulation of the transposed chain: C^T = U D T gives
/// P = T^T, Q = U).
struct PDQ {
  Matrix p;  ///< well-scaled
  Vector d;  ///< graded diagonal
  Matrix q;  ///< orthogonal
};

/// Stable G(l,0) = (I + A C)^{-1} A with A = prefix (U D T), C = suffix
/// (P D Q^T). Null prefix/suffix mean the identity (l = 0 / l = L edges).
/// Exposed for tests.
Matrix displaced_g_tau0(const UDT* prefix, const PDQ* suffix);

/// Stable G(0,l) = -(I + C A)^{-1} C with the same inputs.
Matrix displaced_g_0tau(const UDT* prefix, const PDQ* suffix);

/// Stable equal-time G(l,l) = (I + A C)^{-1} with the same inputs.
Matrix displaced_g_tau_tau(const UDT* prefix, const PDQ* suffix);

}  // namespace dqmc::core
