// Walker crowds: W independent Markov chains advanced in lockstep so their
// per-slice linear algebra batches into shared-operand backend launches
// (the paper's multi-walker production axis, Section VI).
//
// Every walker is an ordinary DqmcEngine; the crowd owns ONE compute
// backend all of them run on, plus a BatchedBChain holding 2W items (item
// = spin * W + walker). Per cluster the crowd
//   1. stratifies all walkers' Green's functions as concurrent host tasks,
//   2. wraps all 2W items in one batched composite (B and B^{-1} uploaded
//      once, shared across every item),
//   3. runs the Metropolis site loops as concurrent per-walker tasks,
//   4. folds all walkers' delayed-update corrections in one batched GEMM,
//   5. rebuilds the resampled cluster for all items in one batched product.
// Each step's per-item arithmetic is bitwise identical to the single-walker
// engine path (gemm_batched <-> gemm, batched kernels <-> their single-item
// forms), so a walker's trajectory hash is independent of W, the backend,
// and the thread budget.
//
// Fault semantics: exceptions raised inside one walker's work are rethrown
// as WalkerFault carrying the walker index; faults raised by a batched
// launch (fail points "backend.enqueue*") stay crowd-level. The
// per-walker fail point "batch.wrap" fires inside walker w's guard, hit
// once per walker per wrapped slice in walker order.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "backend/bbatch.h"
#include "dqmc/engine.h"
#include "fault/failpoint.h"

namespace dqmc::core {

/// A fault attributed to one walker of a crowd. The crowd driver translates
/// per-walker exceptions (injected faults, numerical blow-ups, backend
/// errors) into this so the supervisor can report which chain faulted;
/// recovery still restores the whole crowd (restores are bitwise, so the
/// batchmates' trajectories are unperturbed).
class WalkerFault : public Error {
 public:
  WalkerFault(idx walker, fault::FaultClass cls, std::string site,
              const std::string& detail);

  idx walker() const { return walker_; }
  fault::FaultClass fault_class() const { return class_; }
  const std::string& site() const { return site_; }

 private:
  idx walker_;
  fault::FaultClass class_;
  std::string site_;
};

class WalkerBatch {
 public:
  /// One engine per seed, all on one freshly constructed backend of
  /// `config.backend` kind. The crowd's batched chain holds 2W items.
  WalkerBatch(const hubbard::Lattice& lattice,
              const hubbard::ModelParams& params, EngineConfig config,
              const std::vector<std::uint64_t>& seeds);
  ~WalkerBatch();

  idx walkers() const { return static_cast<idx>(engines_.size()); }
  DqmcEngine& engine(idx w) { return *engines_[static_cast<std::size_t>(w)]; }
  backend::ComputeBackend& compute_backend() { return *backend_; }

  /// initialize() every walker, in walker order (the shared backend accepts
  /// one submitter at a time). Walkers restored from checkpoints instead
  /// are loaded by the caller through engine(w).
  void initialize_all();

  /// Called after each slice's Metropolis pass with the walkers' Green's
  /// functions flushed at that boundary, once per walker in walker order.
  using WalkerSliceHook = std::function<void(idx walker, idx slice)>;

  /// One lockstep sweep of every walker; returns per-walker stats. All
  /// walkers run the same slice schedule (same config), so the batched
  /// composites always carry all 2W items.
  std::vector<SweepStats> sweep_all(const WalkerSliceHook& on_slice = nullptr);

  /// Wrap uploads elided for walker w because its G stayed resident in the
  /// crowd's batched chain (summed over both spins). The engine's own
  /// wrap_uploads_skipped() counts only its solo (non-crowd) wraps.
  std::uint64_t wrap_uploads_skipped(idx w) const;

 private:
  idx item(int si, idx w) const { return static_cast<idx>(si) * walkers() + w; }
  /// Run `fn` attributing any exception to walker w (see WalkerFault).
  template <typename Fn>
  void guarded(idx w, Fn&& fn);

  void wrap_all(idx slice);
  void flush_all_batched();
  void rebuild_cluster_batched(idx c);

  // The backend outlives the engines (their cluster stores drain pending
  // work through chains on it) and the batched chain (device handles).
  std::unique_ptr<backend::ComputeBackend> backend_;
  std::vector<std::unique_ptr<DqmcEngine>> engines_;
  std::unique_ptr<backend::BatchedBChain> batch_;
};

}  // namespace dqmc::core
