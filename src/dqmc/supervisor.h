// Walker supervisor: runs a simulation as a sequence of checkpointed
// segments and recovers from faults without forking the trajectory.
//
// The chain advances `checkpoint_interval` sweeps at a time. Each segment
// measures into transactional scratch accumulators that are committed only
// when the segment completes — so a replayed segment contributes exactly
// once — and ends with an in-memory v1 checkpoint of the Markov state.
// When a segment throws, the fault is classified (fault::FaultClass) and
// recovered:
//   * device / numerical / health  -> deterministic exponential backoff,
//     rebuild the engine, restore the last checkpoint, replay the segment
//     (bitwise identical to an undisturbed run, since the checkpoint is
//     bit-exact and sweeps are deterministic);
//   * device faults that exhaust max_retries on the gpusim backend ->
//     graceful degradation: the rebuilt engine uses the host backend and
//     continues from the same checkpoint (bitwise safe by backend parity);
//   * health-monitor trips that exhaust max_retries -> if the run is on
//     fp32 wraps, degrade the precision policy back to fp64 first (the
//     rebuilt engine replays the segment full-precision: the likeliest
//     anomaly source is the narrowing itself); otherwise — or if fp64
//     still trips — the supervisor stops trip-checking and continues
//     (degraded monitoring, recorded);
//   * checkpoint I/O errors -> retry once, then skip (the previous
//     checkpoint stays the recovery point), committing the segment.
// Anything still failing after that aborts with the original exception.
//
// Every decision lands in SimulationResults::fault_report (and the run
// manifest's "fault" section); recovery counters also flow into the
// metrics registry as fault.recovery.*.
#pragma once

#include "dqmc/simulation.h"

namespace dqmc::core {

struct SupervisorPolicy {
  /// Sweeps per segment (= recovery granularity). <= 0 disables segmenting:
  /// the whole run is one segment with a checkpoint only at the end.
  idx checkpoint_interval = 25;
  /// Replay attempts per segment before escalating (degrade or abort).
  int max_retries = 3;
  /// Deterministic exponential backoff: base * 2^(attempt-1), capped.
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 1000.0;
  /// Actually sleep the backoff (tests keep the schedule but not the wait).
  bool sleep_on_backoff = false;
  /// Permit gpusim -> host degradation after max_retries device faults.
  bool allow_degrade = true;
  /// Treat health-monitor violation increases as faults (restart the
  /// segment; after max_retries, disable the gate and continue). Off by
  /// default: the monitor's thresholds are warn-level — wrap drift above
  /// 1e-6 is expected at production beta — so tripping on them is a
  /// deliberate, test/operator-level choice. The "supervisor.health" fail
  /// point fires regardless of this flag (so injection coverage does not
  /// depend on it) but is silenced by a "disable-health" recovery, exactly
  /// like real trips.
  bool trip_on_health = false;

  void validate() const;
};

/// Run one supervised chain. Deterministic for a fixed config: the
/// committed trajectory, measurements, and trajectory_hash match an
/// unsupervised run_simulation of the same config even when faults are
/// injected and recovered (degradation included, by backend parity).
SimulationResults run_supervised_simulation(const SimulationConfig& config,
                                            const SupervisorPolicy& policy,
                                            const ProgressFn& progress =
                                                nullptr);

/// Supervised analogue of run_parallel_simulation: `chains` independent
/// supervised chains (seeds config.seed + c), merged in chain order with
/// their fault reports folded together. `progress` (when set) receives one
/// call per completed chain-sweep unit — a crowd of W walkers reports W
/// units per lockstep sweep — and MUST be thread-safe: unbatched chains
/// invoke it concurrently from worker threads.
SimulationResults run_supervised_parallel(const SimulationConfig& config,
                                          const SupervisorPolicy& policy,
                                          idx chains,
                                          const ProgressFn& progress =
                                              nullptr);

}  // namespace dqmc::core
