#include "dqmc/walker_batch.h"

#include <map>
#include <utility>

#include "common/stopwatch.h"
#include "linalg/blas3.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/task_runtime.h"

namespace dqmc::core {

WalkerFault::WalkerFault(idx walker, fault::FaultClass cls, std::string site,
                         const std::string& detail)
    : Error("walker " + std::to_string(walker) + " [" +
            fault::fault_class_name(cls) + " @ " + site + "]: " + detail),
      walker_(walker),
      class_(cls),
      site_(std::move(site)) {}

WalkerBatch::WalkerBatch(const hubbard::Lattice& lattice,
                         const hubbard::ModelParams& params,
                         EngineConfig config,
                         const std::vector<std::uint64_t>& seeds)
    : backend_(backend::make_backend(config.backend)) {
  DQMC_CHECK_MSG(!seeds.empty(), "walker crowd needs at least one walker");
  engines_.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    engines_.push_back(std::make_unique<DqmcEngine>(lattice, params, config,
                                                    seed, backend_.get()));
  }
  const hubbard::BMatrixFactory& factory = engines_[0]->factory();
  if (factory.kinetic().structured()) {
    batch_ = std::make_unique<backend::BatchedBChain>(
        *backend_, factory.kinetic().cb(), 2 * walkers(), config.precision);
  } else {
    batch_ = std::make_unique<backend::BatchedBChain>(
        *backend_, factory.b(), factory.b_inv(), 2 * walkers(),
        config.precision);
  }
}

WalkerBatch::~WalkerBatch() = default;

void WalkerBatch::initialize_all() {
  for (const std::unique_ptr<DqmcEngine>& e : engines_) e->initialize();
}

std::uint64_t WalkerBatch::wrap_uploads_skipped(idx w) const {
  return batch_->wrap_uploads_skipped(w) +
         batch_->wrap_uploads_skipped(walkers() + w);
}

template <typename Fn>
void WalkerBatch::guarded(idx w, Fn&& fn) {
  try {
    fn();
  } catch (const WalkerFault&) {
    throw;
  } catch (const fault::InjectedFault& e) {
    throw WalkerFault(w, e.fault_class(), e.site(), e.what());
  } catch (const NumericalError& e) {
    throw WalkerFault(w, fault::FaultClass::kNumericalFault, "numerical",
                      e.what());
  } catch (const std::exception& e) {
    throw WalkerFault(w, fault::FaultClass::kDeviceFault, "device", e.what());
  }
}

void WalkerBatch::wrap_all(idx slice) {
  const idx W = walkers();
  Stopwatch watch;
  // Deterministic walker-order injection point: the Nth "batch.wrap" hit of
  // a sweep maps to one specific (slice, walker) of the trajectory.
  for (idx w = 0; w < W; ++w) {
    guarded(w, [] { DQMC_FAILPOINT("batch.wrap"); });
  }

  std::vector<linalg::MatrixView> g;
  std::vector<linalg::Vector> vbuf;
  std::vector<const linalg::Vector*> v;
  std::vector<char> unchanged;
  std::vector<std::uint64_t> revision(static_cast<std::size_t>(2 * W));
  g.reserve(static_cast<std::size_t>(2 * W));
  vbuf.reserve(static_cast<std::size_t>(2 * W));
  unchanged.reserve(static_cast<std::size_t>(2 * W));
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    for (idx w = 0; w < W; ++w) {
      DqmcEngine& e = *engines_[static_cast<std::size_t>(w)];
      DelayedGreens& dg = e.delayed_[si];
      g.push_back(dg.flush(nullptr).view());
      vbuf.push_back(e.factory_.v_diagonal(e.field_.slice(slice), s));
      unchanged.push_back(e.wrapped_revision_[si] == dg.revision() ? 1 : 0);
      revision[static_cast<std::size_t>(item(si, w))] = dg.revision();
    }
  }
  v.reserve(vbuf.size());
  for (const linalg::Vector& vec : vbuf) v.push_back(&vec);

  batch_->wrap_batched(g, v, unchanged);

  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    for (idx w = 0; w < W; ++w) {
      engines_[static_cast<std::size_t>(w)]->wrapped_revision_[si] =
          revision[static_cast<std::size_t>(item(si, w))];
    }
  }
  const double seconds = watch.seconds();
  for (idx w = 0; w < W; ++w) {
    engines_[static_cast<std::size_t>(w)]->profiler_.add(
        Phase::kWrapping, seconds / static_cast<double>(W));
  }
}

void WalkerBatch::flush_all_batched() {
  const idx W = walkers();
  // gemm_batched needs uniform dimensions, so items fold grouped by their
  // pending rank; per item the fold is the same GEMM DelayedGreens::flush
  // would have issued (count-1 groups delegate to it outright).
  std::map<idx, std::vector<std::pair<idx, int>>> by_rank;
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    for (idx w = 0; w < W; ++w) {
      const idx rank = engines_[static_cast<std::size_t>(w)]->delayed_[si].pending();
      if (rank > 0) by_rank[rank].push_back({w, si});
    }
  }
  if (by_rank.empty()) return;

  Stopwatch watch;
  obs::TraceSpan span("delayed_flush_batched");
  const double n = static_cast<double>(engines_[0]->n());
  double flops = 0.0;
  obs::MetricsRegistry& reg = obs::metrics();
  for (const auto& [rank, items] : by_rank) {
    std::vector<linalg::ConstMatrixView> u, wt;
    std::vector<linalg::MatrixView> base;
    for (const auto& [w, si] : items) {
      DelayedGreens& dg = engines_[static_cast<std::size_t>(w)]->delayed_[si];
      u.push_back(dg.pending_u());
      wt.push_back(dg.pending_w());
      base.push_back(dg.base_for_flush().view());
    }
    linalg::gemm_batched(linalg::Trans::No, linalg::Trans::Yes, 1.0, u, wt,
                         1.0, base);
    for (const auto& [w, si] : items) {
      engines_[static_cast<std::size_t>(w)]->delayed_[si].mark_flushed();
      if (reg.enabled()) {
        reg.observe("delayed_update.flush_rank", static_cast<double>(rank));
      }
    }
    flops += static_cast<double>(items.size()) * 2.0 * n * n *
             static_cast<double>(rank);
  }
  const double seconds = watch.seconds();
  if (reg.enabled() && seconds > 0.0) {
    reg.observe("gemm.gflops", flops / seconds / 1e9);
  }
  for (idx w = 0; w < W; ++w) {
    engines_[static_cast<std::size_t>(w)]->profiler_.add(
        Phase::kDelayedUpdate, seconds / static_cast<double>(W));
  }
}

void WalkerBatch::rebuild_cluster_batched(idx c) {
  const idx W = walkers();
  ClusterStore& ref = engines_[0]->clusters_;
  const idx begin = ref.cluster_begin(c), end = ref.cluster_end(c);
  Stopwatch watch;
  obs::TraceSpan span("cluster_rebuild_batched");
  span.arg("cluster", static_cast<double>(c));

  std::vector<std::vector<linalg::Vector>> vs(static_cast<std::size_t>(2 * W));
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    for (idx w = 0; w < W; ++w) {
      DqmcEngine& e = *engines_[static_cast<std::size_t>(w)];
      std::vector<linalg::Vector>& item_vs = vs[static_cast<std::size_t>(item(si, w))];
      item_vs.reserve(static_cast<std::size_t>(end - begin));
      for (idx l = begin; l < end; ++l) {
        item_vs.push_back(e.factory_.v_diagonal(e.field_.slice(l), s));
      }
    }
  }
  std::vector<Matrix> out = batch_->cluster_product_batched(vs);
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    for (idx w = 0; w < W; ++w) {
      engines_[static_cast<std::size_t>(w)]->clusters_.install_cluster(
          s, c, std::move(out[static_cast<std::size_t>(item(si, w))]));
    }
  }

  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    const double seconds = watch.seconds();
    reg.count("cluster.rebuilds", static_cast<std::uint64_t>(W));
    reg.observe("cluster.rebuild_ms", seconds * 1e3);
    const double n = static_cast<double>(engines_[0]->n());
    const double len = static_cast<double>(end - begin);
    if (seconds > 0.0 && len > 1.0) {
      reg.observe("cluster.gflops", static_cast<double>(W) * 2.0 *
                                        (len - 1.0) * 2.0 * n * n * n /
                                        seconds / 1e9);
    }
  }
  const double seconds = watch.seconds();
  for (idx w = 0; w < W; ++w) {
    engines_[static_cast<std::size_t>(w)]->profiler_.add(
        Phase::kClustering, seconds / static_cast<double>(W));
  }
}

std::vector<SweepStats> WalkerBatch::sweep_all(const WalkerSliceHook& on_slice) {
  const idx W = walkers();
  for (idx w = 0; w < W; ++w) {
    DqmcEngine& e = *engines_[static_cast<std::size_t>(w)];
    DQMC_CHECK_MSG(e.initialized_, "call initialize() before sweep_all()");
    DQMC_CHECK_MSG(!e.pending_resume_slice().has_value(),
                   "walker crowds resume only at sweep boundaries");
  }
  std::vector<SweepStats> stats(static_cast<std::size_t>(W));
  ClusterStore& ref = engines_[0]->clusters_;
  for (idx c = 0; c < ref.num_clusters(); ++c) {
    // Fresh G at the cluster boundary for every walker: the graded-QR
    // stratifications are independent host pipelines, so the whole crowd's
    // run as concurrent tasks (2W spin chains in flight at once).
    par::TaskGroup strat;
    for (idx w = 0; w < W; ++w) {
      strat.run([this, w, c] {
        guarded(w, [this, w, c] {
          engines_[static_cast<std::size_t>(w)]->recompute_greens(
              c, /*record_drift=*/true);
        });
      });
    }
    strat.wait();

    for (idx slice = ref.cluster_begin(c); slice < ref.cluster_end(c);
         ++slice) {
      wrap_all(slice);
      par::TaskGroup sites;
      for (idx w = 0; w < W; ++w) {
        sites.run([this, w, slice, &stats] {
          guarded(w, [this, w, slice, &stats] {
            engines_[static_cast<std::size_t>(w)]->metropolis_slice_sites(
                slice, stats[static_cast<std::size_t>(w)]);
          });
        });
      }
      sites.wait();
      flush_all_batched();
      if (on_slice) {
        for (idx w = 0; w < W; ++w) on_slice(w, slice);
      }
    }
    rebuild_cluster_batched(c);
  }

  obs::MetricsRegistry& reg = obs::metrics();
  for (idx w = 0; w < W; ++w) {
    DqmcEngine& e = *engines_[static_cast<std::size_t>(w)];
    const SweepStats& s = stats[static_cast<std::size_t>(w)];
    e.lifetime_.proposed += s.proposed;
    e.lifetime_.accepted += s.accepted;
    if (reg.enabled()) {
      reg.count("sweeps");
      reg.count("metropolis.proposed", s.proposed);
      reg.count("metropolis.accepted", s.accepted);
      reg.set("metropolis.accept_rate", e.lifetime_.acceptance());
    }
    obs::health().record_sign(e.sign_);
  }
  return stats;
}

}  // namespace dqmc::core
