// Delayed (blocked) rank-1 Green's function updates (Section II-B).
//
// Accepted Metropolis flips modify G by rank-1 terms. Applying each
// immediately is a level-2 GER; instead the corrections are accumulated as
// G = G0 + U W^T and folded into G0 with one GEMM every `max_rank` accepts
// (QUEST's delayed update, credited to Jarrell in the paper [27]).
#pragma once

#include "common/profiler.h"
#include "linalg/matrix.h"

namespace dqmc::core {

using linalg::idx;
using linalg::Matrix;

class DelayedGreens {
 public:
  /// n x n Green's function with up to `max_rank` pending rank-1 terms.
  DelayedGreens(idx n, idx max_rank);

  idx n() const { return n_; }
  idx max_rank() const { return max_rank_; }
  idx pending() const { return filled_; }

  /// Bumped whenever the represented G changes VALUE: on reset() and every
  /// accept(). flush() only changes the representation (folds pending terms
  /// into the base), so it leaves the revision alone — callers holding a
  /// copy of a flushed G can use an unchanged revision to prove the copy is
  /// still current (the backend wrap skips re-uploading a resident G).
  std::uint64_t revision() const { return revision_; }

  /// Replace the base matrix and drop any pending corrections.
  void reset(Matrix g);

  /// Current G(i,i) including pending corrections — the only element the
  /// Metropolis ratio needs, O(pending) to evaluate.
  double diag(idx i) const;

  /// Current G(i,j) including pending corrections (used by tests).
  double entry(idx i, idx j) const;

  /// Record the accepted flip at site i: G <- G - coeff * u w^T with
  /// u = G e_i and w = (I - G)^T e_i (w_j = delta_ij - G(i,j)), both taken
  /// from the CURRENT G (base + pending). coeff = alpha / d.
  /// Automatically flushes when the buffer is full.
  void accept(double coeff, idx i);

  /// Fold all pending corrections into the base matrix (one GEMM) and
  /// return it. Must be called before wrapping or measuring.
  Matrix& flush(Profiler* prof = nullptr);

  /// Read-only view of the base; only valid when pending() == 0.
  const Matrix& base() const {
    DQMC_CHECK_MSG(filled_ == 0, "base() with pending corrections; flush first");
    return g_;
  }

  // Pieces of the flush GEMM, exposed so a walker-crowd driver can fold
  // several walkers' pending corrections in one linalg::gemm_batched call
  // (item arithmetic identical to flush()): G <- G + U_pending W_pending^T,
  // then mark_flushed(). Views are only valid while pending() is unchanged.
  linalg::ConstMatrixView pending_u() const {
    return u_.view().block(0, 0, n_, filled_);
  }
  linalg::ConstMatrixView pending_w() const {
    return w_.view().block(0, 0, n_, filled_);
  }
  Matrix& base_for_flush() { return g_; }
  /// Declare the pending corrections folded by an external batched flush.
  void mark_flushed() { filled_ = 0; }

 private:
  idx n_, max_rank_, filled_ = 0;
  std::uint64_t revision_ = 0;
  Matrix g_;
  Matrix u_;  // n x max_rank
  Matrix w_;  // n x max_rank
  // Transposed mirrors (max_rank x n) of the filled part of u_/w_: row m of
  // ut_/wt_ is column m of u_/w_, so the O(pending) correction dot in
  // diag()/entry() — the Metropolis hot path — walks unit-stride memory.
  Matrix ut_;
  Matrix wt_;
};

}  // namespace dqmc::core
