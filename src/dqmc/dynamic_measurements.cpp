#include "dqmc/dynamic_measurements.h"

#include <cmath>

namespace dqmc::core {

DynamicSample measure_dynamic(const Lattice& lattice, double dtau,
                              const TimeDisplaced& up,
                              const TimeDisplaced& dn) {
  const idx n = lattice.num_sites();
  const idx nl = static_cast<idx>(up.g_tau0.size());  // L + 1
  DQMC_CHECK(static_cast<idx>(dn.g_tau0.size()) == nl);
  DQMC_CHECK(nl >= 2);

  DynamicSample out;
  out.gloc = Vector::zero(nl);
  out.chi_af = Vector::zero(nl);

  // Staggered phases eps_i = (-1)^{x+y} (layer-independent).
  Vector eps(n);
  for (idx i = 0; i < n; ++i) {
    const auto c = lattice.coord(i);
    eps[i] = ((c.x + c.y) % 2 == 0) ? 1.0 : -1.0;
  }

  // m_j(0) from the l = 0 equal-time Green's functions.
  Vector m0(n);
  for (idx j = 0; j < n; ++j) {
    m0[j] = dn.g_tautau[0](j, j) - up.g_tautau[0](j, j);  // n_up - n_dn
  }
  double stag_m0 = 0.0;
  for (idx j = 0; j < n; ++j) stag_m0 += eps[j] * m0[j];

  for (idx l = 0; l < nl; ++l) {
    const auto lu = static_cast<std::size_t>(l);
    const Matrix& gu10 = up.g_tau0[lu];
    const Matrix& gd10 = dn.g_tau0[lu];
    const Matrix& gu01 = up.g_0tau[lu];
    const Matrix& gd01 = dn.g_0tau[lu];
    const Matrix& gutt = up.g_tautau[lu];
    const Matrix& gdtt = dn.g_tautau[lu];

    // Local propagator.
    double tr = 0.0;
    for (idx i = 0; i < n; ++i) tr += 0.5 * (gu10(i, i) + gd10(i, i));
    out.gloc[l] = tr / static_cast<double>(n);

    // Disconnected (staggered magnetization) part.
    double stag_mt = 0.0;
    for (idx i = 0; i < n; ++i) {
      const double mi = gdtt(i, i) - gutt(i, i);
      stag_mt += eps[i] * mi;
    }
    double chi = stag_mt * stag_m0;

    // Connected same-spin part:
    // sum_{ij} eps_i eps_j (-G(0,l)_{ji}) G(l,0)_{ij}, both spins.
    double conn = 0.0;
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        const double phase = eps[i] * eps[j];
        conn -= phase * (gu01(j, i) * gu10(i, j) + gd01(j, i) * gd10(i, j));
      }
    }
    out.chi_af[l] = (chi + conn) / static_cast<double>(n);
  }

  // Momentum-resolved propagator: Fourier transform of the translation
  // average of G(l,0), layer-diagonal displacements only.
  {
    const auto ks = lattice.momenta();
    const idx lx = lattice.lx(), ly = lattice.ly(), layers = lattice.layers();
    out.gk_tau = Matrix::zero(static_cast<idx>(ks.size()), nl);
    Vector f(lattice.num_displacements());
    for (idx l = 0; l < nl; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      // F(d) = (1/N) sum_r [G_up + G_dn]/2 (r+d, r).
      f.fill(0.0);
      for (idx j = 0; j < n; ++j) {
        for (idx i = 0; i < n; ++i) {
          f[lattice.displacement_index(j, i)] +=
              0.5 * (up.g_tau0[lu](i, j) + dn.g_tau0[lu](i, j));
        }
      }
      for (idx d = 0; d < f.size(); ++d) f[d] /= static_cast<double>(n);
      for (std::size_t kidx = 0; kidx < ks.size(); ++kidx) {
        double acc = 0.0;
        for (idx dy = 0; dy < ly; ++dy) {
          for (idx dx = 0; dx < lx; ++dx) {
            const idx d = dx + lx * (dy + ly * (layers - 1));  // dz = 0 slot
            const double phase = ks[kidx].kx * static_cast<double>(dx) +
                                 ks[kidx].ky * static_cast<double>(dy);
            acc += std::cos(phase) * f[d];
          }
        }
        out.gk_tau(static_cast<idx>(kidx), l) = acc;
      }
    }
  }

  // Trapezoidal integral over tau in [0, beta].
  double integral = 0.5 * (out.chi_af[0] + out.chi_af[nl - 1]);
  for (idx l = 1; l < nl - 1; ++l) integral += out.chi_af[l];
  out.chi_af_integrated = integral * dtau;
  return out;
}

DynamicAccumulator::DynamicAccumulator(idx slices, idx bins)
    : gloc_(slices + 1, bins), chi_(slices + 1, bins), chi_int_(bins) {}

void DynamicAccumulator::add(const DynamicSample& sample, int sign) {
  const double s = static_cast<double>(sign);
  gloc_.add(sample.gloc.data(), s);
  chi_.add(sample.chi_af.data(), s);
  chi_int_.add(sample.chi_af_integrated, s);
}

}  // namespace dqmc::core
