#include "dqmc/dynamic_measurements.h"

#include <cmath>
#include <cstdint>

#include "parallel/parallel_for.h"

namespace dqmc::core {

namespace {

/// One tau slice per task: each slice owns disjoint outputs and runs a
/// fixed serial chain, so the parallel fft path is bitwise at any thread
/// count.
constexpr par::ForOptions kSliceOptions{.grain = 1};

/// Gloc(tau_l) and chi_AF(tau_l) for one slice — identical arithmetic in
/// both evaluation paths (the direct path calls it from its serial loop,
/// the fft path from the per-slice parallel loop).
void measure_slice_local(const MeasurementWorkspace& ws, idx l,
                         const TimeDisplaced& up, const TimeDisplaced& dn,
                         double stag_m0, DynamicSample& out) {
  const idx n = ws.n;
  const auto lu = static_cast<std::size_t>(l);
  const Matrix& gu10 = up.g_tau0[lu];
  const Matrix& gd10 = dn.g_tau0[lu];
  const Matrix& gu01 = up.g_0tau[lu];
  const Matrix& gd01 = dn.g_0tau[lu];
  const Matrix& gutt = up.g_tautau[lu];
  const Matrix& gdtt = dn.g_tautau[lu];

  // Local propagator.
  double tr = 0.0;
  for (idx i = 0; i < n; ++i) tr += 0.5 * (gu10(i, i) + gd10(i, i));
  out.gloc[l] = tr / static_cast<double>(n);

  // Disconnected (staggered magnetization) part.
  double stag_mt = 0.0;
  for (idx i = 0; i < n; ++i) {
    const double mi = gdtt(i, i) - gutt(i, i);
    stag_mt += ws.eps[i] * mi;
  }
  double chi = stag_mt * stag_m0;

  // Connected same-spin part:
  // sum_{ij} eps_i eps_j (-G(0,l)_{ji}) G(l,0)_{ij}, both spins.
  double conn = 0.0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      const double phase = ws.eps[i] * ws.eps[j];
      conn -= phase * (gu01(j, i) * gu10(i, j) + gd01(j, i) * gd10(i, j));
    }
  }
  out.chi_af[l] = (chi + conn) / static_cast<double>(n);
}

/// Shared prologue: sample shells and the tau = 0 staggered moment.
double dynamic_prologue(const MeasurementWorkspace& ws, idx nl,
                        const TimeDisplaced& up, const TimeDisplaced& dn,
                        DynamicSample& out, Vector& m0) {
  const idx n = ws.n;
  out.gloc = Vector::zero(nl);
  out.chi_af = Vector::zero(nl);
  // m_j(0) from the l = 0 equal-time Green's functions.
  for (idx j = 0; j < n; ++j) {
    m0[j] = dn.g_tautau[0](j, j) - up.g_tautau[0](j, j);  // n_up - n_dn
  }
  double stag_m0 = 0.0;
  for (idx j = 0; j < n; ++j) stag_m0 += ws.eps[j] * m0[j];
  return stag_m0;
}

void finish_tau_integral(double dtau, idx nl, DynamicSample& out) {
  // Trapezoidal integral over tau in [0, beta].
  double integral = 0.5 * (out.chi_af[0] + out.chi_af[nl - 1]);
  for (idx l = 1; l < nl - 1; ++l) integral += out.chi_af[l];
  out.chi_af_integrated = integral * dtau;
}

DynamicSample measure_dynamic_direct(const Lattice& lattice, double dtau,
                                     const TimeDisplaced& up,
                                     const TimeDisplaced& dn,
                                     MeasurementWorkspace& ws) {
  const idx n = ws.n;
  const idx nl = static_cast<idx>(up.g_tau0.size());  // L + 1
  DynamicSample out;
  const double stag_m0 = dynamic_prologue(ws, nl, up, dn, out, ws.m0);

  for (idx l = 0; l < nl; ++l) {
    measure_slice_local(ws, l, up, dn, stag_m0, out);
  }

  // Momentum-resolved propagator: Fourier transform of the translation
  // average of G(l,0), layer-diagonal displacements only.
  {
    const auto& ks = ws.momenta;
    const idx lx = ws.lx, ly = ws.ly, layers = ws.layers;
    out.gk_tau = Matrix::zero(static_cast<idx>(ks.size()), nl);
    Vector& f = ws.fdisp;
    const std::int32_t* pairs = ws.transform.pair_data();
    for (idx l = 0; l < nl; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      // F(d) = (1/N) sum_r [G_up + G_dn]/2 (r+d, r).
      f.fill(0.0);
      for (idx j = 0; j < n; ++j) {
        const std::int32_t* col = pairs + n * j;
        for (idx i = 0; i < n; ++i) {
          f[col[i]] += 0.5 * (up.g_tau0[lu](i, j) + dn.g_tau0[lu](i, j));
        }
      }
      for (idx d = 0; d < f.size(); ++d) f[d] /= static_cast<double>(n);
      for (std::size_t kidx = 0; kidx < ks.size(); ++kidx) {
        double acc = 0.0;
        for (idx dy = 0; dy < ly; ++dy) {
          for (idx dx = 0; dx < lx; ++dx) {
            const idx d = dx + lx * (dy + ly * (layers - 1));  // dz = 0 slot
            const double phase = ks[kidx].kx * static_cast<double>(dx) +
                                 ks[kidx].ky * static_cast<double>(dy);
            acc += std::cos(phase) * f[d];
          }
        }
        out.gk_tau(static_cast<idx>(kidx), l) = acc;
      }
    }
  }

  finish_tau_integral(dtau, nl, out);
  return out;
}

DynamicSample measure_dynamic_fft(const Lattice& lattice, double dtau,
                                  const TimeDisplaced& up,
                                  const TimeDisplaced& dn,
                                  MeasurementWorkspace& ws) {
  const idx n = ws.n;
  const idx plane = ws.transform.plane_size();
  const idx layers = ws.layers;
  const idx nl = static_cast<idx>(up.g_tau0.size());  // L + 1
  DynamicSample out;
  const double stag_m0 = dynamic_prologue(ws, nl, up, dn, out, ws.m0);
  out.gk_tau = Matrix::zero(plane, nl);
  ws.gk_planes.resize(static_cast<std::size_t>(nl * plane));

  // Every slice is independent: local terms plus the layer-diagonal
  // displacement gather (only same-layer pairs reach in-plane momenta, so
  // the gather walks the layer-diagonal blocks, N^2 / layers pairs).
  const std::int32_t* ppairs = ws.transform.plane_pair_data();
  par::parallel_for(
      0, nl,
      [&](par::index_t l) {
        measure_slice_local(ws, l, up, dn, stag_m0, out);
        const auto lu = static_cast<std::size_t>(l);
        const Matrix& gu10 = up.g_tau0[lu];
        const Matrix& gd10 = dn.g_tau0[lu];
        double* f = ws.gk_planes.data() + l * plane;
        for (idx p = 0; p < plane; ++p) f[p] = 0.0;
        for (idx z = 0; z < layers; ++z) {
          const idx base = z * plane;
          for (idx jp = 0; jp < plane; ++jp) {
            const std::int32_t* col = ppairs + plane * jp;
            const idx j = base + jp;
            for (idx ip = 0; ip < plane; ++ip) {
              f[col[ip]] +=
                  0.5 * (gu10(base + ip, j) + gd10(base + ip, j));
            }
          }
        }
        for (idx p = 0; p < plane; ++p) f[p] /= static_cast<double>(n);
      },
      kSliceOptions);

  // One batched projection over all L+1 planes; gk_tau's columns are the
  // per-slice momentum rows (column-major, ld == num momenta).
  ws.transform.project_planes(ws.gk_planes.data(), nl, plane,
                              out.gk_tau.data(), plane);

  finish_tau_integral(dtau, nl, out);
  return out;
}

}  // namespace

DynamicSample measure_dynamic(const Lattice& lattice, double dtau,
                              const TimeDisplaced& up, const TimeDisplaced& dn,
                              MeasurementWorkspace& ws) {
  const idx nl = static_cast<idx>(up.g_tau0.size());
  DQMC_CHECK(static_cast<idx>(dn.g_tau0.size()) == nl);
  DQMC_CHECK(nl >= 2);
  DQMC_CHECK_MSG(ws.n == lattice.num_sites() && ws.lx == lattice.lx() &&
                     ws.ly == lattice.ly() && ws.layers == lattice.layers(),
                 "measurement workspace planned for a different lattice");
  if (ws.kind == MeasureKind::kFft) {
    return measure_dynamic_fft(lattice, dtau, up, dn, ws);
  }
  return measure_dynamic_direct(lattice, dtau, up, dn, ws);
}

DynamicSample measure_dynamic(const Lattice& lattice, double dtau,
                              const TimeDisplaced& up,
                              const TimeDisplaced& dn) {
  MeasurementWorkspace ws(lattice, MeasureKind::kDirect);
  return measure_dynamic(lattice, dtau, up, dn, ws);
}

DynamicAccumulator::DynamicAccumulator(idx slices, idx bins)
    : gloc_(slices + 1, bins), chi_(slices + 1, bins), chi_int_(bins) {}

void DynamicAccumulator::add(const DynamicSample& sample, int sign) {
  const double s = static_cast<double>(sign);
  gloc_.add(sample.gloc.data(), s);
  chi_.add(sample.chi_af.data(), s);
  chi_int_.add(sample.chi_af_integrated, s);
}

}  // namespace dqmc::core
