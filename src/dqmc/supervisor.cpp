#include "dqmc/supervisor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "dqmc/checkpoint.h"
#include "dqmc/crowd_supervisor.h"
#include "dqmc/walker_batch.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "parallel/task_runtime.h"

namespace dqmc::core {

void SupervisorPolicy::validate() const {
  DQMC_CHECK_MSG(max_retries >= 0, "max_retries must be >= 0");
  DQMC_CHECK_MSG(backoff_base_ms >= 0.0 && backoff_max_ms >= backoff_base_ms,
                 "backoff interval is malformed");
}

namespace {

using detail::FaultEventBuilder;
using detail::HealthTripError;
using detail::backoff_ms;

/// One supervised chain's mutable state.
class ChainSupervisor {
 public:
  ChainSupervisor(const SimulationConfig& config,
                  const SupervisorPolicy& policy, const ProgressFn& progress,
                  SimulationResults& results)
      : config_(config),
        policy_(policy),
        progress_(progress),
        results_(results),
        lattice_(config.make_lattice()),
        workspace_(lattice_, config.engine.measure),
        backend_(config.engine.backend),
        precision_(config.engine.precision) {}

  void run() {
    const idx total = config_.warmup_sweeps + config_.measurement_sweeps;
    const idx interval =
        policy_.checkpoint_interval > 0 ? policy_.checkpoint_interval : total;
    int attempt = 0;
    bool need_restore = false;

    while (done_ < total || !engine_) {
      try {
        if (!engine_) {
          start_engine();
        } else if (need_restore) {
          restore();
          need_restore = false;
        }
        if (done_ >= total) break;
        const idx seg_end = std::min(done_ + interval, total);
        run_segment(done_, seg_end);
        check_health();
        take_checkpoint(seg_end);
        commit(seg_end);
        attempt = 0;
      } catch (const fault::InjectedFault& e) {
        ++attempt;
        if (!recover(e.site(), e.fault_class(), e.what(), attempt))
          throw;
        need_restore = true;
      } catch (const HealthTripError& e) {
        ++attempt;
        if (!recover("health", fault::FaultClass::kHealthTrip, e.what(),
                     attempt))
          throw;
        need_restore = true;
      } catch (const NumericalError& e) {
        ++attempt;
        if (!recover("numerical", fault::FaultClass::kNumericalFault,
                     e.what(), attempt))
          throw;
        need_restore = true;
      } catch (const std::exception& e) {
        ++attempt;
        if (!recover("device", fault::FaultClass::kDeviceFault, e.what(),
                     attempt))
          throw;
        need_restore = true;
      }
      // A fault while restoring (or starting) loops back into the same
      // recovery ladder: need_restore stays set until a restore commits.
    }

    finish();
  }

 private:
  void start_engine() {
    engine_ = std::make_unique<DqmcEngine>(lattice_, config_.model,
                                           engine_config(), config_.seed);
    if (config_.checkpoint_in.empty()) {
      engine_->initialize();
    } else {
      load_checkpoint_file(config_.checkpoint_in, *engine_);
    }
    // The recovery point for faults before the first segment commits.
    take_checkpoint(0);
  }

  EngineConfig engine_config() const {
    EngineConfig cfg = config_.engine;
    cfg.backend = backend_;
    cfg.precision = precision_;
    return cfg;
  }

  /// Rebuild the engine on the current backend and restore the last
  /// checkpoint, then replay any sweeps committed after it (a skipped
  /// checkpoint leaves ckpt_sweep_ < done_) WITHOUT re-measuring — sweeps
  /// are deterministic and measurement never perturbs the trajectory, so
  /// the fast-forward is bitwise and the committed samples stay unique.
  void restore() {
    discard_scratch();
    engine_.reset();  // old backend drains before the new one spins up
    engine_ = std::make_unique<DqmcEngine>(lattice_, config_.model,
                                           engine_config(), config_.seed);
    if (ckpt_.empty()) {
      // Initial checkpoint was skipped: restart from the very beginning.
      if (config_.checkpoint_in.empty()) {
        engine_->initialize();
      } else {
        load_checkpoint_file(config_.checkpoint_in, *engine_);
      }
    } else {
      std::istringstream in(ckpt_);
      load_checkpoint(in, *engine_);
    }
    ++results_.fault_report.restarts;
    obs::metrics().count("fault.recovery.restarts");
    for (idx g = ckpt_sweep_; g < done_; ++g) engine_->sweep();
  }

  /// Decide and record the recovery for one caught fault. Returns false
  /// when the supervisor gives up (caller rethrows the original).
  bool recover(const std::string& site, fault::FaultClass cls,
               const std::string& detail, int attempt) {
    fault::FaultReport& report = results_.fault_report;
    ++report.faults;
    if (cls == fault::FaultClass::kHealthTrip) ++report.health_trips;
    obs::metrics().count("fault.observed");

    FaultEventBuilder event{site, cls, detail, attempt};
    if (attempt <= policy_.max_retries) {
      ++report.retries;
      obs::metrics().count("fault.recovery.retries");
      const double ms = backoff_ms(policy_, attempt);
      if (policy_.sleep_on_backoff && ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      }
      push_event(event, "retry", ms);
      return true;
    }
    if (cls == fault::FaultClass::kHealthTrip) {
      if (precision_ == backend::Precision::kFp32) {
        // A persistent health trip on fp32 wraps most likely IS the
        // narrowed precision: give back the rounding budget before giving
        // up on the monitoring. The rebuild+restore replays on fp64.
        precision_ = backend::Precision::kFp64;
        ++report.precision_degradations;
        obs::metrics().count("fault.recovery.precision_degradations");
        push_event(event, "degrade-precision", 0.0);
        return true;
      }
      // Deterministic re-trips mean the anomaly is real but the chain can
      // still run: degrade the monitoring, not the physics.
      check_health_ = false;
      push_event(event, "disable-health", 0.0);
      return true;
    }
    if (cls == fault::FaultClass::kDeviceFault && policy_.allow_degrade &&
        backend_ == backend::BackendKind::kGpuSim) {
      backend_ = backend::BackendKind::kHost;
      ++report.degradations;
      report.degraded = true;
      obs::metrics().count("fault.recovery.degradations");
      push_event(event, "degrade", 0.0);
      return true;
    }
    push_event(event, "abort", 0.0);
    return false;
  }

  void push_event(const FaultEventBuilder& b, const char* action,
                  double backoff) {
    results_.fault_report.events.push_back(fault::FaultEvent{
        b.site, fault::fault_class_name(b.cls), action, done_, b.attempt,
        backoff, b.detail});
    // Every classification decision leaves a forensic artifact: the event
    // lands in the flight recorder and, when a dump path is configured,
    // the crash dump is (re)written with the freshest tail.
    DQMC_FLIGHT_EVENT(obs::FlightEventKind::kRecovery, b.site.c_str(), action,
                      static_cast<double>(done_),
                      static_cast<double>(b.attempt));
    obs::flight_recorder().write_crash_dump("fault:" + b.site);
  }

  void run_segment(idx g_begin, idx g_end) {
    const idx total = config_.warmup_sweeps + config_.measurement_sweeps;
    for (idx g = g_begin; g < g_end; ++g) {
      if (g < config_.warmup_sweeps) {
        add_stats(engine_->sweep());
      } else {
        measurement_sweep(g - config_.warmup_sweeps);
      }
      if (progress_) progress_(g + 1, total, g < config_.warmup_sweeps);
    }
  }

  void measurement_sweep(idx m) {
    const bool measuring = m % config_.measure_interval == 0;
    auto measure_now = [&] {
      ScopedPhase phase(&engine_->profiler(), Phase::kMeasurement);
      scratch_samples_.emplace_back(
          measure_equal_time(lattice_, engine_->params(),
                             engine_->greens(Spin::Up),
                             engine_->greens(Spin::Down), workspace_),
          engine_->config_sign());
    };
    if (measuring && config_.measure_slice_interval > 0) {
      add_stats(engine_->sweep([&](idx slice) {
        if (slice % config_.measure_slice_interval == 0) measure_now();
      }));
    } else {
      add_stats(engine_->sweep());
      if (measuring) measure_now();
    }
    if (config_.measure_dynamic_interval > 0 &&
        m % config_.measure_dynamic_interval == 0) {
      ScopedPhase phase(&engine_->profiler(), Phase::kMeasurement);
      TimeDisplacedGreens tdg(engine_->factory(), engine_->field(),
                              config_.engine.cluster_size,
                              config_.engine.algorithm);
      const TimeDisplaced up = tdg.compute(Spin::Up);
      const TimeDisplaced dn = tdg.compute(Spin::Down);
      scratch_dynamic_.emplace_back(
          measure_dynamic(lattice_, config_.model.dtau(), up, dn, workspace_),
          engine_->config_sign());
    }
  }

  void add_stats(const SweepStats& s) {
    scratch_stats_.proposed += s.proposed;
    scratch_stats_.accepted += s.accepted;
  }

  /// Post-segment health gate (fail point "supervisor.health" simulates a
  /// trip). A violation-count increase since the last gate throws; the
  /// baseline advances first so the REPLAY's own samples decide whether the
  /// anomaly persists.
  void check_health() {
    // The fail point sits behind the same gate the recovery ladder
    // disables: "disable-health" must silence injected trips the way it
    // silences real ones, or a persistent arming could never converge.
    if (check_health_) DQMC_FAILPOINT("supervisor.health");
    if (!policy_.trip_on_health || !check_health_ || !obs::health().enabled())
      return;
    const std::uint64_t v = obs::health().violations();
    if (v > health_baseline_) {
      health_baseline_ = v;
      throw HealthTripError(v);
    }
    health_baseline_ = v;
  }

  /// Serialize the recovery checkpoint for sweep boundary `sweep`. A
  /// checkpoint I/O fault is absorbed: one immediate retry, then the
  /// segment commits anyway with the previous checkpoint kept as the
  /// recovery point ("skip-checkpoint").
  void take_checkpoint(idx sweep) {
    fault::FaultReport& report = results_.fault_report;
    for (int io_attempt = 1;; ++io_attempt) {
      try {
        std::ostringstream out;
        save_checkpoint(out, *engine_);
        ckpt_ = out.str();
        ckpt_sweep_ = sweep;
        ++report.checkpoints;
        DQMC_FLIGHT_EVENT(obs::FlightEventKind::kCheckpoint,
                          "checkpoint.save", "ok",
                          static_cast<double>(sweep));
        return;
      } catch (const std::exception& e) {
        ++report.faults;
        ++report.checkpoint_faults;
        obs::metrics().count("fault.checkpoint_faults");
        const bool retry = io_attempt == 1;
        report.events.push_back(fault::FaultEvent{
            "checkpoint.save",
            fault::fault_class_name(fault::FaultClass::kIoError),
            retry ? "retry-checkpoint" : "skip-checkpoint", sweep, io_attempt,
            0.0, e.what()});
        if (!retry) return;
      }
    }
  }

  void commit(idx seg_end) {
    for (const auto& [sample, sign] : scratch_samples_) {
      results_.measurements.add(sample, sign);
    }
    for (const auto& [sample, sign] : scratch_dynamic_) {
      results_.dynamic.add(sample, sign);
    }
    results_.sweep_stats.proposed += scratch_stats_.proposed;
    results_.sweep_stats.accepted += scratch_stats_.accepted;
    discard_scratch();
    done_ = seg_end;
    obs::flight_recorder().set_sweep(static_cast<std::int64_t>(done_));
  }

  void discard_scratch() {
    scratch_samples_.clear();
    scratch_dynamic_.clear();
    scratch_stats_ = SweepStats{};
  }

  void finish() {
    if (!config_.checkpoint_out.empty()) {
      fault::FaultReport& report = results_.fault_report;
      for (int io_attempt = 1;; ++io_attempt) {
        try {
          save_checkpoint_file(config_.checkpoint_out, *engine_);
          break;
        } catch (const std::exception& e) {
          ++report.faults;
          ++report.checkpoint_faults;
          const bool retry = io_attempt == 1;
          report.events.push_back(fault::FaultEvent{
              "checkpoint.save",
              fault::fault_class_name(fault::FaultClass::kIoError),
              retry ? "retry-checkpoint" : "skip-checkpoint", done_,
              io_attempt, 0.0, e.what()});
          if (!retry) break;
        }
      }
    }
    engine_->compute_backend().synchronize();
    results_.strat_stats = engine_->strat_stats();
    results_.profiler = engine_->profiler();
    results_.backend_name = engine_->compute_backend().name();
    results_.backend_stats = engine_->compute_backend().stats();
    results_.wrap_uploads_skipped = engine_->wrap_uploads_skipped();
    results_.trajectory_hash = trajectory_hash(*engine_);
    results_.fault_report.final_backend = results_.backend_name;
  }

  const SimulationConfig& config_;
  const SupervisorPolicy& policy_;
  const ProgressFn& progress_;
  SimulationResults& results_;
  Lattice lattice_;
  MeasurementWorkspace workspace_;
  backend::BackendKind backend_;
  backend::Precision precision_;  ///< degradable: fp32 -> fp64 on health trips
  std::unique_ptr<DqmcEngine> engine_;
  idx done_ = 0;        ///< sweeps committed
  idx ckpt_sweep_ = 0;  ///< sweep boundary ckpt_ captures
  std::string ckpt_;    ///< in-memory v1 checkpoint at ckpt_sweep_
  std::vector<std::pair<EqualTimeSample, int>> scratch_samples_;
  std::vector<std::pair<DynamicSample, int>> scratch_dynamic_;
  SweepStats scratch_stats_;
  bool check_health_ = true;
  std::uint64_t health_baseline_ = 0;
};

}  // namespace

SimulationResults run_supervised_simulation(const SimulationConfig& config,
                                            const SupervisorPolicy& policy,
                                            const ProgressFn& progress) {
  policy.validate();
  Stopwatch watch;
  SimulationResults results(config);
  ChainSupervisor chain(config, policy, progress, results);
  chain.run();
  results.elapsed_seconds = watch.seconds();
  return results;
}

SimulationResults run_supervised_parallel(const SimulationConfig& config,
                                          const SupervisorPolicy& policy,
                                          idx chains,
                                          const ProgressFn& progress) {
  DQMC_CHECK_MSG(chains >= 1, "need at least one chain");
  DQMC_CHECK_MSG(config.walker_batch >= 0, "walker_batch must be >= 0");
  policy.validate();
  Stopwatch watch;

  std::vector<std::unique_ptr<SimulationResults>> partials(
      static_cast<std::size_t>(chains));
  idx crowds = 0;
  if (config.walker_batch >= 1) {
    // Supervised lockstep crowds, one after another (each crowd's walkers
    // run concurrently inside the batched path; recovery is crowd-wide).
    for (idx first = 0; first < chains; first += config.walker_batch) {
      CrowdSupervisor crowd(config, policy, first,
                            std::min(config.walker_batch, chains - first),
                            progress, partials);
      crowd.run();
      ++crowds;
    }
  } else {
    par::TaskGroup group;
    for (idx c = 0; c < chains; ++c) {
      group.run([&, c] {
        SimulationConfig chain_cfg = config;
        chain_cfg.seed = config.seed + static_cast<std::uint64_t>(c);
        partials[static_cast<std::size_t>(c)] =
            std::make_unique<SimulationResults>(
                run_supervised_simulation(chain_cfg, policy, progress));
      });
    }
    group.wait();  // rethrows chain failures the supervisors gave up on
  }

  SimulationResults merged(config);
  merged.profiler.reset();
  for (idx c = 0; c < chains; ++c) {
    merge_chain_results(merged, *partials[static_cast<std::size_t>(c)]);
  }
  merged.batch_walkers = config.walker_batch;
  merged.batch_crowds = crowds;
  merged.elapsed_seconds = watch.seconds();
  return merged;
}

}  // namespace dqmc::core
