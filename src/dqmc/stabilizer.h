// Pluggable stabilization strategies for ill-conditioned matrix chains.
//
// Every stabilizer maintains chain = U * diag(d) * T with U orthogonal, d
// carrying the full dynamic range (graded descending), and T well-scaled —
// the invariants close_greens() and chain_det_sign() (stratification.h)
// rely on. Two strategies implement the concept:
//
//   * GradedAccumulator (graded.h): the paper's graded QR accumulation,
//     pivoted (Algorithm 2) or pre-pivoted (Algorithm 3).
//   * SvdStackAccumulator (svd_stack.h): a stack of U d V^T factors in the
//     spirit of Bauer, "Fast and stable determinant quantum Monte Carlo" —
//     each push re-factors through a one-sided Jacobi SVD, keeping every
//     d-scale singular-value exact. Slower per step, but accurate at
//     beta >> 32 where graded QR accumulation drifts.
//
// The engine, the time-displaced module, and the supervisor replay all
// construct through make_stabilizer(), so a strategy choice made in
// EngineConfig::algorithm flows through every Green's-function evaluation
// unchanged.
#pragma once

#include <cstdint>
#include <memory>

#include "linalg/matrix.h"
#include "linalg/qr.h"

namespace dqmc::core {

using linalg::idx;
using linalg::Matrix;
using linalg::Vector;

enum class StratAlgorithm {
  kQRP,       ///< Algorithm 2: pivoted QR at every step (baseline)
  kPrePivot,  ///< Algorithm 3: pre-sort columns + unpivoted blocked QR
  kSvdStack,  ///< SVD stack: one-sided Jacobi SVD at every step
};

const char* strat_algorithm_name(StratAlgorithm a);

/// Diagnostics accumulated across stabilization steps.
struct StratStats {
  std::uint64_t evaluations = 0;  ///< Green's functions computed
  std::uint64_t steps = 0;        ///< stabilization (QR / SVD) steps
  /// Sum over steps of the (pre-)pivot permutation displacement — how many
  /// columns actually moved (the paper's "very few interchanges" claim).
  /// The SVD stack has no pivoting and leaves this at zero.
  std::uint64_t pivot_displacement = 0;
};

/// Snapshot of the accumulated decomposition (deep copies).
struct UDT {
  Matrix u;  ///< orthogonal
  Vector d;  ///< graded diagonal (descending magnitude)
  Matrix t;  ///< well-scaled (product of scaled triangles and permutations)
};

/// The stabilization concept: left-push factors into a U diag(d) T chain.
class Stabilizer {
 public:
  virtual ~Stabilizer() = default;

  virtual idx n() const = 0;
  virtual StratAlgorithm algorithm() const = 0;
  virtual bool empty() const = 0;
  virtual const StratStats& stats() const = 0;

  /// Forget the chain (chain = I conceptually; empty() becomes true).
  virtual void reset() = 0;

  /// chain <- factor * chain (factor applied on the LEFT, i.e. later in
  /// imaginary time). factor must be n x n.
  virtual void push(const Matrix& factor) = 0;

  /// Current decomposition components; invalid while empty().
  virtual const Matrix& u() const = 0;
  virtual const Vector& d() const = 0;
  virtual const Matrix& t() const = 0;

  /// Deep-copy snapshot (used to record prefix chains at every boundary).
  UDT snapshot() const { return UDT{u(), d(), t()}; }
};

/// Construct the stabilizer for `algorithm`: a GradedAccumulator for
/// kQRP/kPrePivot, an SvdStackAccumulator for kSvdStack. `qr_block` only
/// affects the QR-based strategies.
std::unique_ptr<Stabilizer> make_stabilizer(idx n, StratAlgorithm algorithm,
                                            idx qr_block = linalg::kQrBlock);

}  // namespace dqmc::core
