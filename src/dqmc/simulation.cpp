#include "dqmc/simulation.h"

#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "dqmc/checkpoint.h"
#include "dqmc/walker_batch.h"
#include "parallel/task_runtime.h"

namespace dqmc::core {

void merge_chain_results(SimulationResults& merged,
                         const SimulationResults& p) {
  merged.measurements.merge(p.measurements);
  merged.dynamic.merge(p.dynamic);
  merged.sweep_stats.proposed += p.sweep_stats.proposed;
  merged.sweep_stats.accepted += p.sweep_stats.accepted;
  merged.strat_stats.evaluations += p.strat_stats.evaluations;
  merged.strat_stats.steps += p.strat_stats.steps;
  merged.strat_stats.pivot_displacement += p.strat_stats.pivot_displacement;
  merged.profiler.merge(p.profiler);
  merged.backend_name = p.backend_name;
  merged.backend_stats += p.backend_stats;
  merged.wrap_uploads_skipped += p.wrap_uploads_skipped;
  merged.trajectory_hash =
      mix_chain_hash(merged.trajectory_hash, p.trajectory_hash);
  merged.fault_report += p.fault_report;
}

namespace {

/// Run chains [first, first + walkers) of a parallel run as ONE lockstep
/// walker crowd, filling partials[first + w] with what run_simulation would
/// have produced for chain first + w (bitwise-identical trajectory; the
/// crowd's shared-backend stats land on the crowd's first walker so the
/// merged aggregate stays sum-correct).
void run_crowd(const SimulationConfig& config, idx first, idx walkers,
               std::vector<std::unique_ptr<SimulationResults>>& partials,
               const ProgressFn& progress = nullptr) {
  Stopwatch watch;
  const Lattice lattice = config.make_lattice();
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(walkers));
  for (idx w = 0; w < walkers; ++w) {
    seeds.push_back(config.seed + static_cast<std::uint64_t>(first + w));
  }
  WalkerBatch batch(lattice, config.model, config.engine, seeds);
  // One measurement workspace per walker: slice hooks can measure
  // different walkers concurrently, and a workspace is single-threaded.
  std::vector<std::unique_ptr<MeasurementWorkspace>> spaces;
  spaces.reserve(static_cast<std::size_t>(walkers));
  for (idx w = 0; w < walkers; ++w) {
    spaces.push_back(
        std::make_unique<MeasurementWorkspace>(lattice, config.engine.measure));
    SimulationConfig chain_cfg = config;
    chain_cfg.seed = seeds[static_cast<std::size_t>(w)];
    partials[static_cast<std::size_t>(first + w)] =
        std::make_unique<SimulationResults>(chain_cfg);
  }

  if (config.checkpoint_in.empty()) {
    batch.initialize_all();
  } else {
    for (idx w = 0; w < walkers; ++w) {
      load_checkpoint_file(config.checkpoint_in, batch.engine(w));
    }
  }

  const idx total = config.warmup_sweeps + config.measurement_sweeps;
  const auto report_progress = [&](idx done, bool warmup) {
    if (!progress) return;
    // One chain-sweep unit per walker per lockstep sweep.
    for (idx w = 0; w < walkers; ++w) progress(done, total, warmup);
  };

  for (idx sweep = 0; sweep < config.warmup_sweeps; ++sweep) {
    batch.sweep_all();
    report_progress(sweep + 1, true);
  }
  for (idx sweep = 0; sweep < config.measurement_sweeps; ++sweep) {
    const bool measuring = sweep % config.measure_interval == 0;

    auto measure_now = [&](idx w) {
      DqmcEngine& engine = batch.engine(w);
      SimulationResults& r = *partials[static_cast<std::size_t>(first + w)];
      ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
      const EqualTimeSample sample = measure_equal_time(
          lattice, engine.params(), engine.greens(Spin::Up),
          engine.greens(Spin::Down), *spaces[static_cast<std::size_t>(w)]);
      r.measurements.add(sample, engine.config_sign());
    };

    if (measuring && config.measure_slice_interval > 0) {
      batch.sweep_all([&](idx w, idx slice) {
        if (slice % config.measure_slice_interval == 0) measure_now(w);
      });
    } else {
      batch.sweep_all();
      if (measuring) {
        for (idx w = 0; w < walkers; ++w) measure_now(w);
      }
    }

    if (config.measure_dynamic_interval > 0 &&
        sweep % config.measure_dynamic_interval == 0) {
      for (idx w = 0; w < walkers; ++w) {
        DqmcEngine& engine = batch.engine(w);
        SimulationResults& r = *partials[static_cast<std::size_t>(first + w)];
        ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
        TimeDisplacedGreens tdg(engine.factory(), engine.field(),
                                config.engine.cluster_size,
                                config.engine.algorithm);
        const TimeDisplaced up = tdg.compute(Spin::Up);
        const TimeDisplaced dn = tdg.compute(Spin::Down);
        r.dynamic.add(measure_dynamic(lattice, config.model.dtau(), up, dn,
                                      *spaces[static_cast<std::size_t>(w)]),
                      engine.config_sign());
      }
    }
    report_progress(config.warmup_sweeps + sweep + 1, false);
  }

  if (!config.checkpoint_out.empty()) {
    for (idx w = 0; w < walkers; ++w) {
      save_checkpoint_file(config.checkpoint_out, batch.engine(w));
    }
  }

  batch.compute_backend().synchronize();
  for (idx w = 0; w < walkers; ++w) {
    DqmcEngine& engine = batch.engine(w);
    SimulationResults& r = *partials[static_cast<std::size_t>(first + w)];
    r.sweep_stats = engine.lifetime_stats();
    r.strat_stats = engine.strat_stats();
    r.profiler = engine.profiler();
    r.backend_name = batch.compute_backend().name();
    if (w == 0) r.backend_stats = batch.compute_backend().stats();
    r.wrap_uploads_skipped =
        engine.wrap_uploads_skipped() + batch.wrap_uploads_skipped(w);
    r.elapsed_seconds = watch.seconds();
    r.trajectory_hash = core::trajectory_hash(engine);
    r.fault_report.final_backend = r.backend_name;
  }
}

}  // namespace

void run_simulation(DqmcEngine& engine, const SimulationConfig& config,
                    SimulationResults& results, const ProgressFn& progress) {
  Stopwatch watch;
  const Lattice lattice = config.make_lattice();

  if (config.checkpoint_in.empty()) {
    engine.initialize();
  } else {
    load_checkpoint_file(config.checkpoint_in, engine);
  }
  MeasurementWorkspace ws(lattice, config.engine.measure);
  const idx total = config.warmup_sweeps + config.measurement_sweeps;

  for (idx sweep = 0; sweep < config.warmup_sweeps; ++sweep) {
    engine.sweep();
    if (progress) progress(sweep + 1, total, true);
  }
  for (idx sweep = 0; sweep < config.measurement_sweeps; ++sweep) {
    const bool measuring = sweep % config.measure_interval == 0;

    auto measure_now = [&] {
      ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
      const EqualTimeSample sample = measure_equal_time(
          lattice, engine.params(), engine.greens(Spin::Up),
          engine.greens(Spin::Down), ws);
      results.measurements.add(sample, engine.config_sign());
    };

    if (measuring && config.measure_slice_interval > 0) {
      engine.sweep([&](idx slice) {
        if (slice % config.measure_slice_interval == 0) measure_now();
      });
    } else {
      engine.sweep();
      if (measuring) measure_now();
    }

    if (config.measure_dynamic_interval > 0 &&
        sweep % config.measure_dynamic_interval == 0) {
      ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
      TimeDisplacedGreens tdg(engine.factory(), engine.field(),
                              config.engine.cluster_size,
                              config.engine.algorithm);
      const TimeDisplaced up = tdg.compute(Spin::Up);
      const TimeDisplaced dn = tdg.compute(Spin::Down);
      results.dynamic.add(
          measure_dynamic(lattice, config.model.dtau(), up, dn, ws),
          engine.config_sign());
    }
    if (progress) progress(config.warmup_sweeps + sweep + 1, total, false);
  }

  if (!config.checkpoint_out.empty()) {
    save_checkpoint_file(config.checkpoint_out, engine);
  }

  engine.compute_backend().synchronize();
  results.sweep_stats = engine.lifetime_stats();
  results.strat_stats = engine.strat_stats();
  results.profiler = engine.profiler();
  results.backend_name = engine.compute_backend().name();
  results.backend_stats = engine.compute_backend().stats();
  results.wrap_uploads_skipped = engine.wrap_uploads_skipped();
  results.elapsed_seconds = watch.seconds();
  results.trajectory_hash = core::trajectory_hash(engine);
  results.fault_report.final_backend = results.backend_name;
}

SimulationResults run_simulation(const SimulationConfig& config,
                                 const ProgressFn& progress) {
  SimulationResults results(config);
  const Lattice lattice = config.make_lattice();
  DqmcEngine engine(lattice, config.model, config.engine, config.seed);
  run_simulation(engine, config, results, progress);
  return results;
}

SimulationResults run_parallel_simulation(const SimulationConfig& config,
                                          idx chains, int max_workers,
                                          const ProgressFn& progress) {
  DQMC_CHECK_MSG(chains >= 1, "need at least one chain");
  DQMC_CHECK_MSG(config.walker_batch >= 0, "walker_batch must be >= 0");
  (void)max_workers;  // scheduling delegated to the shared task runtime
  Stopwatch watch;

  std::vector<std::unique_ptr<SimulationResults>> partials(
      static_cast<std::size_t>(chains));
  idx crowds = 0;
  if (config.walker_batch >= 1) {
    // Lockstep crowds of up to W consecutive chains; the crowds run one
    // after another (each is internally parallel across its walkers), so
    // the shared backend never has two crowds submitting at once.
    for (idx first = 0; first < chains; first += config.walker_batch) {
      run_crowd(config, first, std::min(config.walker_batch, chains - first),
                partials, progress);
      ++crowds;
    }
  } else {
    par::TaskGroup group;
    for (idx c = 0; c < chains; ++c) {
      group.run([&, c] {
        SimulationConfig chain_cfg = config;
        chain_cfg.seed = config.seed + static_cast<std::uint64_t>(c);
        partials[static_cast<std::size_t>(c)] =
            std::make_unique<SimulationResults>(
                run_simulation(chain_cfg, progress));
      });
    }
    group.wait();  // rethrows chain failures
  }

  // Merge deterministically in chain order.
  SimulationResults merged(config);
  merged.profiler.reset();
  for (idx c = 0; c < chains; ++c) {
    merge_chain_results(merged, *partials[static_cast<std::size_t>(c)]);
  }
  merged.batch_walkers = config.walker_batch;
  merged.batch_crowds = crowds;
  merged.elapsed_seconds = watch.seconds();
  return merged;
}

}  // namespace dqmc::core
