#include "dqmc/simulation.h"

#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "dqmc/checkpoint.h"
#include "parallel/task_runtime.h"

namespace dqmc::core {

void run_simulation(DqmcEngine& engine, const SimulationConfig& config,
                    SimulationResults& results, const ProgressFn& progress) {
  Stopwatch watch;
  const Lattice lattice = config.make_lattice();

  if (config.checkpoint_in.empty()) {
    engine.initialize();
  } else {
    load_checkpoint_file(config.checkpoint_in, engine);
  }
  const idx total = config.warmup_sweeps + config.measurement_sweeps;

  for (idx sweep = 0; sweep < config.warmup_sweeps; ++sweep) {
    engine.sweep();
    if (progress) progress(sweep + 1, total, true);
  }
  for (idx sweep = 0; sweep < config.measurement_sweeps; ++sweep) {
    const bool measuring = sweep % config.measure_interval == 0;

    auto measure_now = [&] {
      ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
      const EqualTimeSample sample = measure_equal_time(
          lattice, engine.params(), engine.greens(Spin::Up),
          engine.greens(Spin::Down));
      results.measurements.add(sample, engine.config_sign());
    };

    if (measuring && config.measure_slice_interval > 0) {
      engine.sweep([&](idx slice) {
        if (slice % config.measure_slice_interval == 0) measure_now();
      });
    } else {
      engine.sweep();
      if (measuring) measure_now();
    }

    if (config.measure_dynamic_interval > 0 &&
        sweep % config.measure_dynamic_interval == 0) {
      ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
      TimeDisplacedGreens tdg(engine.factory(), engine.field(),
                              config.engine.cluster_size,
                              config.engine.algorithm);
      const TimeDisplaced up = tdg.compute(Spin::Up);
      const TimeDisplaced dn = tdg.compute(Spin::Down);
      results.dynamic.add(
          measure_dynamic(lattice, config.model.dtau(), up, dn),
          engine.config_sign());
    }
    if (progress) progress(config.warmup_sweeps + sweep + 1, total, false);
  }

  if (!config.checkpoint_out.empty()) {
    save_checkpoint_file(config.checkpoint_out, engine);
  }

  engine.compute_backend().synchronize();
  results.sweep_stats = engine.lifetime_stats();
  results.strat_stats = engine.strat_stats();
  results.profiler = engine.profiler();
  results.backend_name = engine.compute_backend().name();
  results.backend_stats = engine.compute_backend().stats();
  results.wrap_uploads_skipped = engine.wrap_uploads_skipped();
  results.elapsed_seconds = watch.seconds();
  results.trajectory_hash = core::trajectory_hash(engine);
  results.fault_report.final_backend = results.backend_name;
}

SimulationResults run_simulation(const SimulationConfig& config,
                                 const ProgressFn& progress) {
  SimulationResults results(config);
  const Lattice lattice = config.make_lattice();
  DqmcEngine engine(lattice, config.model, config.engine, config.seed);
  run_simulation(engine, config, results, progress);
  return results;
}

SimulationResults run_parallel_simulation(const SimulationConfig& config,
                                          idx chains, int max_workers) {
  DQMC_CHECK_MSG(chains >= 1, "need at least one chain");
  (void)max_workers;  // scheduling delegated to the shared task runtime
  Stopwatch watch;

  std::vector<std::unique_ptr<SimulationResults>> partials(
      static_cast<std::size_t>(chains));
  par::TaskGroup group;
  for (idx c = 0; c < chains; ++c) {
    group.run([&, c] {
      SimulationConfig chain_cfg = config;
      chain_cfg.seed = config.seed + static_cast<std::uint64_t>(c);
      partials[static_cast<std::size_t>(c)] =
          std::make_unique<SimulationResults>(run_simulation(chain_cfg));
    });
  }
  group.wait();  // rethrows chain failures

  // Merge deterministically in chain order.
  SimulationResults merged(config);
  merged.profiler.reset();
  for (idx c = 0; c < chains; ++c) {
    const SimulationResults& p = *partials[static_cast<std::size_t>(c)];
    merged.measurements.merge(p.measurements);
    merged.dynamic.merge(p.dynamic);
    merged.sweep_stats.proposed += p.sweep_stats.proposed;
    merged.sweep_stats.accepted += p.sweep_stats.accepted;
    merged.strat_stats.evaluations += p.strat_stats.evaluations;
    merged.strat_stats.steps += p.strat_stats.steps;
    merged.strat_stats.pivot_displacement += p.strat_stats.pivot_displacement;
    merged.profiler.merge(p.profiler);
    merged.backend_name = p.backend_name;
    merged.backend_stats += p.backend_stats;
    merged.wrap_uploads_skipped += p.wrap_uploads_skipped;
    merged.trajectory_hash = mix_chain_hash(merged.trajectory_hash,
                                            p.trajectory_hash);
    merged.fault_report += p.fault_report;
  }
  merged.elapsed_seconds = watch.seconds();
  return merged;
}

}  // namespace dqmc::core
