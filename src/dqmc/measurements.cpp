#include "dqmc/measurements.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.h"

namespace dqmc::core {

namespace {

/// d-wave form-factor signs for the (+x, -x, +y, -y) neighbour order of
/// MeasurementWorkspace::dwave_nbr.
constexpr double kDwaveSign[4] = {+1.0, +1.0, -1.0, -1.0};

/// Columns of the pair_d stencil passes are independent chains.
constexpr par::ForOptions kStencilOptions{.grain = 8};

/// Translation-averaged <c^dag_{r'} c_{r'+d}> table over all displacements:
/// F(d) = (1/N) sum_{r'} (delta_{d,0} - G(r'+d, r')). Same arithmetic as
/// ever; the workspace supplies the table scratch and the cached
/// displacement indices (identical values to Lattice::displacement_index).
void site_pair_average(const MeasurementWorkspace& ws, const Matrix& g,
                       Vector& f) {
  const idx n = ws.n;
  f.fill(0.0);
  const std::int32_t* pairs = ws.transform.pair_data();
  for (idx j = 0; j < n; ++j) {
    const std::int32_t* col = pairs + n * j;
    for (idx i = 0; i < n; ++i) {
      f[col[i]] -= g(i, j);
    }
  }
  // The delta contributes only to the zero displacement, once per site.
  f[ws.transform.pair_index(0, 0)] += static_cast<double>(n);
  for (idx d = 0; d < f.size(); ++d) f[d] /= static_cast<double>(n);
}

/// Densities, double occupancy and kinetic energy — O(N) terms shared
/// verbatim by both evaluation paths.
void measure_local(const Lattice& lattice, const ModelParams& params,
                   const Matrix& gup, const Matrix& gdn,
                   MeasurementWorkspace& ws, EqualTimeSample& s) {
  const idx n = ws.n;
  for (idx i = 0; i < n; ++i) {
    ws.nup[static_cast<std::size_t>(i)] = 1.0 - gup(i, i);
    ws.ndn[static_cast<std::size_t>(i)] = 1.0 - gdn(i, i);
    s.density_up += ws.nup[static_cast<std::size_t>(i)];
    s.density_dn += ws.ndn[static_cast<std::size_t>(i)];
    s.double_occupancy +=
        ws.nup[static_cast<std::size_t>(i)] * ws.ndn[static_cast<std::size_t>(i)];
  }
  s.density_up /= static_cast<double>(n);
  s.density_dn /= static_cast<double>(n);
  s.double_occupancy /= static_cast<double>(n);
  s.density = s.density_up + s.density_dn;

  // Hopping energy per site: -t sum_<ab>,sigma <c^dag_a c_b + c^dag_b c_a>
  // with <c^dag_a c_b> = -G(b, a) for a != b.
  for (const auto& bond : lattice.bonds()) {
    const double hop = bond.interlayer ? params.t_perp : params.t;
    s.kinetic_energy += hop * (gup(bond.b, bond.a) + gup(bond.a, bond.b) +
                               gdn(bond.b, bond.a) + gdn(bond.a, bond.b));
  }
  s.kinetic_energy /= static_cast<double>(n);
}

/// Local moment and AF structure factor from the finished C_zz table.
void measure_staggered(MeasurementWorkspace& ws, EqualTimeSample& s) {
  s.moment_sq = s.spin_corr[ws.transform.pair_index(0, 0)];
  for (idx dz = 0; dz < 2 * ws.layers - 1; ++dz) {
    for (idx dy = 0; dy < ws.ly; ++dy) {
      for (idx dx = 0; dx < ws.lx; ++dx) {
        const idx d = dx + ws.lx * (dy + ws.ly * dz);
        const double stagger = ((dx + dy) % 2 == 0) ? 1.0 : -1.0;
        s.af_structure_factor += stagger * s.spin_corr[d];
      }
    }
  }
}

/// The historical O(N^2) evaluation, preserved operation for operation
/// (golden manifests pin its means) — only the scratch is hoisted.
EqualTimeSample measure_direct(const Lattice& lattice,
                               const ModelParams& params, const Matrix& gup,
                               const Matrix& gdn, MeasurementWorkspace& ws) {
  const idx n = ws.n;
  EqualTimeSample s;
  measure_local(lattice, params, gup, gdn, ws, s);

  // Momentum distribution (per spin, averaged over the two spins):
  // n_k = sum_d e^{-i k . d} F(d), F from the translation-averaged table.
  site_pair_average(ws, gup, ws.fup);
  site_pair_average(ws, gdn, ws.fdn);
  const auto& ks = ws.momenta;
  s.momentum_dist = Vector::zero(static_cast<idx>(ks.size()));
  const idx lx = ws.lx, ly = ws.ly, layers = ws.layers;
  for (std::size_t kidx = 0; kidx < ks.size(); ++kidx) {
    double acc = 0.0;
    for (idx dy = 0; dy < ly; ++dy) {
      for (idx dx = 0; dx < lx; ++dx) {
        // In-plane displacement, layer-diagonal (dz = 0 slot).
        const idx d = dx + lx * (dy + ly * (layers - 1));
        const double phase = ks[kidx].kx * static_cast<double>(dx) +
                             ks[kidx].ky * static_cast<double>(dy);
        acc += std::cos(phase) * 0.5 * (ws.fup[d] + ws.fdn[d]);
      }
    }
    // The F table sums over all N sites but only layer-diagonal pairs
    // contribute to in-plane momenta; renormalize to a per-layer average.
    s.momentum_dist[static_cast<idx>(kidx)] = acc;
  }

  // z-spin correlation per displacement:
  // C_zz(i,j) = sum_sigma [n_sigma(i) n_sigma(j)
  //                        + (delta_ij - G_sigma(j,i)) G_sigma(i,j)]
  //             - n_up(i) n_dn(j) - n_dn(i) n_up(j).
  s.spin_corr = Vector::zero(ws.transform.num_displacements());
  const std::int32_t* pairs = ws.transform.pair_data();
  for (idx j = 0; j < n; ++j) {
    const std::int32_t* col = pairs + n * j;
    for (idx i = 0; i < n; ++i) {
      const double delta = (i == j) ? 1.0 : 0.0;
      const auto iu = static_cast<std::size_t>(i);
      const auto ju = static_cast<std::size_t>(j);
      double czz =
          ws.nup[iu] * ws.nup[ju] + (delta - gup(j, i)) * gup(i, j) +
          ws.ndn[iu] * ws.ndn[ju] + (delta - gdn(j, i)) * gdn(i, j) -
          ws.nup[iu] * ws.ndn[ju] - ws.ndn[iu] * ws.nup[ju];
      s.spin_corr[col[i]] += czz;
    }
  }
  for (idx d = 0; d < s.spin_corr.size(); ++d)
    s.spin_corr[d] /= static_cast<double>(n);

  // Pair-field structure factors. For a fixed HS configuration the spins
  // factorize: <Delta_i Delta^dag_j> = G_up(i,j) G_dn(i,j) (s-wave on
  // site), and the d-wave bond order parameter dresses both sides with the
  // +x/+y form factor f(+-x) = +1, f(+-y) = -1.
  {
    double ps = 0.0;
    for (idx j = 0; j < n; ++j)
      for (idx i = 0; i < n; ++i) ps += gup(i, j) * gdn(i, j);
    s.pair_s = ps / static_cast<double>(n);

    const std::vector<idx>& nbr = ws.dwave_nbr;
    double pd = 0.0;
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        const double gu = gup(i, j);
        if (gu == 0.0) continue;
        double inner = 0.0;
        for (int di = 0; di < 4; ++di) {
          const idx ip = nbr[static_cast<std::size_t>(i) * 4 + di];
          for (int dj = 0; dj < 4; ++dj) {
            const idx jp = nbr[static_cast<std::size_t>(j) * 4 + dj];
            inner += kDwaveSign[di] * kDwaveSign[dj] * gdn(ip, jp);
          }
        }
        pd += gu * inner;
      }
    }
    s.pair_d = 0.25 * pd / static_cast<double>(n);
  }

  measure_staggered(ws, s);
  return s;
}

/// FFT evaluation: one fused O(N^2) gather builds every displacement
/// table (momentum F tables, exchange term, pair_s dot), the circular
/// correlations and momentum projections run through the planned
/// transform, and pair_d collapses the 16-term neighbour sum into two
/// 4-point stencil passes and an elementwise dot.
EqualTimeSample measure_fft(const Lattice& lattice, const ModelParams& params,
                            const Matrix& gup, const Matrix& gdn,
                            MeasurementWorkspace& ws) {
  const idx n = ws.n;
  const idx plane = ws.transform.plane_size();
  EqualTimeSample s;
  measure_local(lattice, params, gup, gdn, ws, s);

  // Fused site-pair gather: F_sigma(d), the spin-exchange table, and the
  // s-wave pair dot in one sweep over the two Green's functions.
  ws.fup.fill(0.0);
  ws.fdn.fill(0.0);
  ws.ex.fill(0.0);
  double ps = 0.0;
  const std::int32_t* pairs = ws.transform.pair_data();
  for (idx j = 0; j < n; ++j) {
    const std::int32_t* col = pairs + n * j;
    for (idx i = 0; i < n; ++i) {
      const double gu = gup(i, j);
      const double gd = gdn(i, j);
      const std::int32_t d = col[i];
      ws.fup[d] -= gu;
      ws.fdn[d] -= gd;
      ws.ex[d] -= gu * gup(j, i) + gd * gdn(j, i);
      ps += gu * gd;
    }
  }
  s.pair_s = ps / static_cast<double>(n);
  const idx d0 = ws.transform.pair_index(0, 0);
  ws.fup[d0] += static_cast<double>(n);
  ws.fdn[d0] += static_cast<double>(n);
  for (idx d = 0; d < ws.fup.size(); ++d) {
    ws.fup[d] /= static_cast<double>(n);
    ws.fdn[d] /= static_cast<double>(n);
  }
  // Exchange delta term sum_sigma delta_ij G_sigma(i,j) hits only d = 0.
  double diag = 0.0;
  for (idx i = 0; i < n; ++i) diag += gup(i, i) + gdn(i, i);
  ws.ex[d0] += diag;

  // n_k: forward-transform the layer-diagonal plane of the spin-averaged
  // F table instead of N x N cosine sums.
  ws.colsum.resize(n);
  {
    ws.gk_planes.resize(static_cast<std::size_t>(plane));
    const idx base = plane * (ws.layers - 1);
    for (idx p = 0; p < plane; ++p) {
      ws.gk_planes[static_cast<std::size_t>(p)] =
          0.5 * (ws.fup[base + p] + ws.fdn[base + p]);
    }
    s.momentum_dist = Vector::zero(plane);
    ws.transform.project_plane(ws.gk_planes.data(), s.momentum_dist.data(),
                               ws.mt_ws);
  }

  // C_zz: the density and up-down cross terms are one autocorrelation of
  // m = n_up - n_dn; the exchange table from the fused gather supplies
  // the rest.
  for (idx i = 0; i < n; ++i) {
    ws.mvec[i] = ws.nup[static_cast<std::size_t>(i)] -
                 ws.ndn[static_cast<std::size_t>(i)];
  }
  s.spin_corr = Vector::zero(ws.transform.num_displacements());
  ws.transform.correlate(ws.mvec.data(), ws.mvec.data(), s.spin_corr.data(),
                         ws.mt_ws);
  for (idx d = 0; d < s.spin_corr.size(); ++d) {
    s.spin_corr[d] = (s.spin_corr[d] + ws.ex[d]) / static_cast<double>(n);
  }

  // pair_d as linear stencils: P_d = (1/4N) sum_ij G_up(i,j) (S G_dn
  // S^T)(i,j) where S applies the signed 4-neighbour form factor. Rows
  // then columns, each column an independent chain (bitwise at any
  // thread count), then the elementwise dot — ~9 N^2 flops instead of
  // the direct path's 16 N^2 gather products.
  {
    ws.stencil1.resize(n, n);
    ws.stencil2.resize(n, n);
    const idx* nbr = ws.dwave_nbr.data();
    par::parallel_for(
        0, n,
        [&](par::index_t j) {
          for (idx i = 0; i < n; ++i) {
            const idx* ni = nbr + i * 4;
            ws.stencil1(i, j) = gdn(ni[0], j) + gdn(ni[1], j) -
                                gdn(ni[2], j) - gdn(ni[3], j);
          }
        },
        kStencilOptions);
    par::parallel_for(
        0, n,
        [&](par::index_t j) {
          const idx* nj = nbr + j * 4;
          double acc = 0.0;
          for (idx i = 0; i < n; ++i) {
            const double t = ws.stencil1(i, nj[0]) + ws.stencil1(i, nj[1]) -
                             ws.stencil1(i, nj[2]) - ws.stencil1(i, nj[3]);
            ws.stencil2(i, j) = t;
            acc += gup(i, j) * t;
          }
          ws.colsum[j] = acc;
        },
        kStencilOptions);
    double pd = 0.0;
    for (idx j = 0; j < n; ++j) pd += ws.colsum[j];
    s.pair_d = 0.25 * pd / static_cast<double>(n);
  }

  measure_staggered(ws, s);
  return s;
}

}  // namespace

EqualTimeSample measure_equal_time(const Lattice& lattice,
                                   const ModelParams& params,
                                   const Matrix& gup, const Matrix& gdn,
                                   MeasurementWorkspace& ws) {
  const idx n = lattice.num_sites();
  DQMC_CHECK(gup.rows() == n && gup.cols() == n);
  DQMC_CHECK(gdn.rows() == n && gdn.cols() == n);
  DQMC_CHECK_MSG(ws.n == n && ws.lx == lattice.lx() && ws.ly == lattice.ly() &&
                     ws.layers == lattice.layers(),
                 "measurement workspace planned for a different lattice");
  if (ws.kind == MeasureKind::kFft) {
    return measure_fft(lattice, params, gup, gdn, ws);
  }
  return measure_direct(lattice, params, gup, gdn, ws);
}

EqualTimeSample measure_equal_time(const Lattice& lattice,
                                   const ModelParams& params,
                                   const Matrix& gup, const Matrix& gdn) {
  MeasurementWorkspace ws(lattice, MeasureKind::kDirect);
  return measure_equal_time(lattice, params, gup, gdn, ws);
}

MeasurementAccumulator::MeasurementAccumulator(const Lattice& lattice, idx bins)
    : density_(bins),
      density_up_(bins),
      density_dn_(bins),
      double_occ_(bins),
      kinetic_(bins),
      moment_(bins),
      af_(bins),
      pair_s_(bins),
      pair_d_(bins),
      nk_(lattice.sites_per_layer(), bins),
      czz_(lattice.num_displacements(), bins) {}

void MeasurementAccumulator::merge(const MeasurementAccumulator& other) {
  density_.merge(other.density_);
  density_up_.merge(other.density_up_);
  density_dn_.merge(other.density_dn_);
  double_occ_.merge(other.double_occ_);
  kinetic_.merge(other.kinetic_);
  moment_.merge(other.moment_);
  af_.merge(other.af_);
  pair_s_.merge(other.pair_s_);
  pair_d_.merge(other.pair_d_);
  nk_.merge(other.nk_);
  czz_.merge(other.czz_);
}

void MeasurementAccumulator::save(std::ostream& out) const {
  density_.save(out);
  density_up_.save(out);
  density_dn_.save(out);
  double_occ_.save(out);
  kinetic_.save(out);
  moment_.save(out);
  af_.save(out);
  pair_s_.save(out);
  pair_d_.save(out);
  nk_.save(out);
  czz_.save(out);
}

void MeasurementAccumulator::load(std::istream& in) {
  density_.load(in);
  density_up_.load(in);
  density_dn_.load(in);
  double_occ_.load(in);
  kinetic_.load(in);
  moment_.load(in);
  af_.load(in);
  pair_s_.load(in);
  pair_d_.load(in);
  nk_.load(in);
  czz_.load(in);
}

void MeasurementAccumulator::add(const EqualTimeSample& sample, int sign) {
  const double s = static_cast<double>(sign);
  density_.add(sample.density, s);
  density_up_.add(sample.density_up, s);
  density_dn_.add(sample.density_dn, s);
  double_occ_.add(sample.double_occupancy, s);
  kinetic_.add(sample.kinetic_energy, s);
  moment_.add(sample.moment_sq, s);
  af_.add(sample.af_structure_factor, s);
  pair_s_.add(sample.pair_s, s);
  pair_d_.add(sample.pair_d, s);
  nk_.add(sample.momentum_dist.data(), s);
  czz_.add(sample.spin_corr.data(), s);
}

}  // namespace dqmc::core
