#include "dqmc/measurements.h"

#include <cmath>
#include <vector>

namespace dqmc::core {

namespace {

/// Translation-averaged <c^dag_{r'} c_{r'+d}> table over all displacements:
/// F(d) = (1/N) sum_{r'} (delta_{d,0} - G(r'+d, r')).
Vector site_pair_average(const Lattice& lat, const Matrix& g) {
  const idx n = lat.num_sites();
  Vector f = Vector::zero(lat.num_displacements());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      f[lat.displacement_index(j, i)] -= g(i, j);
    }
  }
  // The delta contributes only to the zero displacement, once per site.
  f[lat.displacement_index(0, 0)] += static_cast<double>(n);
  for (idx d = 0; d < f.size(); ++d) f[d] /= static_cast<double>(n);
  return f;
}

}  // namespace

EqualTimeSample measure_equal_time(const Lattice& lattice,
                                   const ModelParams& params,
                                   const Matrix& gup, const Matrix& gdn) {
  const idx n = lattice.num_sites();
  DQMC_CHECK(gup.rows() == n && gup.cols() == n);
  DQMC_CHECK(gdn.rows() == n && gdn.cols() == n);

  EqualTimeSample s;

  // Densities and double occupancy (opposite spins factorize for a fixed
  // HS configuration).
  std::vector<double> nup(static_cast<std::size_t>(n)), ndn(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    nup[static_cast<std::size_t>(i)] = 1.0 - gup(i, i);
    ndn[static_cast<std::size_t>(i)] = 1.0 - gdn(i, i);
    s.density_up += nup[static_cast<std::size_t>(i)];
    s.density_dn += ndn[static_cast<std::size_t>(i)];
    s.double_occupancy +=
        nup[static_cast<std::size_t>(i)] * ndn[static_cast<std::size_t>(i)];
  }
  s.density_up /= static_cast<double>(n);
  s.density_dn /= static_cast<double>(n);
  s.double_occupancy /= static_cast<double>(n);
  s.density = s.density_up + s.density_dn;

  // Hopping energy per site: -t sum_<ab>,sigma <c^dag_a c_b + c^dag_b c_a>
  // with <c^dag_a c_b> = -G(b, a) for a != b.
  for (const auto& bond : lattice.bonds()) {
    const double hop = bond.interlayer ? params.t_perp : params.t;
    s.kinetic_energy += hop * (gup(bond.b, bond.a) + gup(bond.a, bond.b) +
                               gdn(bond.b, bond.a) + gdn(bond.a, bond.b));
  }
  s.kinetic_energy /= static_cast<double>(n);

  // Momentum distribution (per spin, averaged over the two spins):
  // n_k = sum_d e^{-i k . d} F(d), F from the translation-averaged table.
  const Vector fup = site_pair_average(lattice, gup);
  const Vector fdn = site_pair_average(lattice, gdn);
  const auto ks = lattice.momenta();
  s.momentum_dist = Vector::zero(static_cast<idx>(ks.size()));
  const idx lx = lattice.lx(), ly = lattice.ly(), layers = lattice.layers();
  for (std::size_t kidx = 0; kidx < ks.size(); ++kidx) {
    double acc = 0.0;
    for (idx dy = 0; dy < ly; ++dy) {
      for (idx dx = 0; dx < lx; ++dx) {
        // In-plane displacement, layer-diagonal (dz = 0 slot).
        const idx d = dx + lx * (dy + ly * (layers - 1));
        const double phase = ks[kidx].kx * static_cast<double>(dx) +
                             ks[kidx].ky * static_cast<double>(dy);
        acc += std::cos(phase) * 0.5 * (fup[d] + fdn[d]);
      }
    }
    // The F table sums over all N sites but only layer-diagonal pairs
    // contribute to in-plane momenta; renormalize to a per-layer average.
    s.momentum_dist[static_cast<idx>(kidx)] = acc;
  }

  // z-spin correlation per displacement:
  // C_zz(i,j) = sum_sigma [n_sigma(i) n_sigma(j)
  //                        + (delta_ij - G_sigma(j,i)) G_sigma(i,j)]
  //             - n_up(i) n_dn(j) - n_dn(i) n_up(j).
  s.spin_corr = Vector::zero(lattice.num_displacements());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      const double delta = (i == j) ? 1.0 : 0.0;
      const auto iu = static_cast<std::size_t>(i);
      const auto ju = static_cast<std::size_t>(j);
      double czz = nup[iu] * nup[ju] + (delta - gup(j, i)) * gup(i, j) +
                   ndn[iu] * ndn[ju] + (delta - gdn(j, i)) * gdn(i, j) -
                   nup[iu] * ndn[ju] - ndn[iu] * nup[ju];
      s.spin_corr[lattice.displacement_index(j, i)] += czz;
    }
  }
  for (idx d = 0; d < s.spin_corr.size(); ++d)
    s.spin_corr[d] /= static_cast<double>(n);

  // Pair-field structure factors. For a fixed HS configuration the spins
  // factorize: <Delta_i Delta^dag_j> = G_up(i,j) G_dn(i,j) (s-wave on
  // site), and the d-wave bond order parameter dresses both sides with the
  // +x/+y form factor f(+-x) = +1, f(+-y) = -1.
  {
    double ps = 0.0;
    for (idx j = 0; j < n; ++j)
      for (idx i = 0; i < n; ++i) ps += gup(i, j) * gdn(i, j);
    s.pair_s = ps / static_cast<double>(n);

    // Neighbour tables with the d-wave signs.
    const idx deltas[4][3] = {
        {1, 0, +1}, {-1, 0, +1}, {0, 1, -1}, {0, -1, -1}};
    std::vector<idx> nbr(static_cast<std::size_t>(n) * 4);
    std::vector<double> sign_of(4);
    for (int d = 0; d < 4; ++d) sign_of[static_cast<std::size_t>(d)] = deltas[d][2];
    for (idx i = 0; i < n; ++i)
      for (int d = 0; d < 4; ++d)
        nbr[static_cast<std::size_t>(i) * 4 + d] =
            lattice.neighbor(i, deltas[d][0], deltas[d][1]);

    double pd = 0.0;
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i < n; ++i) {
        const double gu = gup(i, j);
        if (gu == 0.0) continue;
        double inner = 0.0;
        for (int di = 0; di < 4; ++di) {
          const idx ip = nbr[static_cast<std::size_t>(i) * 4 + di];
          for (int dj = 0; dj < 4; ++dj) {
            const idx jp = nbr[static_cast<std::size_t>(j) * 4 + dj];
            inner += sign_of[static_cast<std::size_t>(di)] *
                     sign_of[static_cast<std::size_t>(dj)] * gdn(ip, jp);
          }
        }
        pd += gu * inner;
      }
    }
    s.pair_d = 0.25 * pd / static_cast<double>(n);
  }

  // Local moment and AF structure factor (in-plane staggered phase).
  s.moment_sq = s.spin_corr[lattice.displacement_index(0, 0)];
  for (idx dz = 0; dz < 2 * layers - 1; ++dz) {
    for (idx dy = 0; dy < ly; ++dy) {
      for (idx dx = 0; dx < lx; ++dx) {
        const idx d = dx + lx * (dy + ly * dz);
        const double stagger = ((dx + dy) % 2 == 0) ? 1.0 : -1.0;
        s.af_structure_factor += stagger * s.spin_corr[d];
      }
    }
  }

  return s;
}

MeasurementAccumulator::MeasurementAccumulator(const Lattice& lattice, idx bins)
    : density_(bins),
      density_up_(bins),
      density_dn_(bins),
      double_occ_(bins),
      kinetic_(bins),
      moment_(bins),
      af_(bins),
      pair_s_(bins),
      pair_d_(bins),
      nk_(lattice.sites_per_layer(), bins),
      czz_(lattice.num_displacements(), bins) {}

void MeasurementAccumulator::merge(const MeasurementAccumulator& other) {
  density_.merge(other.density_);
  density_up_.merge(other.density_up_);
  density_dn_.merge(other.density_dn_);
  double_occ_.merge(other.double_occ_);
  kinetic_.merge(other.kinetic_);
  moment_.merge(other.moment_);
  af_.merge(other.af_);
  pair_s_.merge(other.pair_s_);
  pair_d_.merge(other.pair_d_);
  nk_.merge(other.nk_);
  czz_.merge(other.czz_);
}

void MeasurementAccumulator::save(std::ostream& out) const {
  density_.save(out);
  density_up_.save(out);
  density_dn_.save(out);
  double_occ_.save(out);
  kinetic_.save(out);
  moment_.save(out);
  af_.save(out);
  pair_s_.save(out);
  pair_d_.save(out);
  nk_.save(out);
  czz_.save(out);
}

void MeasurementAccumulator::load(std::istream& in) {
  density_.load(in);
  density_up_.load(in);
  density_dn_.load(in);
  double_occ_.load(in);
  kinetic_.load(in);
  moment_.load(in);
  af_.load(in);
  pair_s_.load(in);
  pair_d_.load(in);
  nk_.load(in);
  czz_.load(in);
}

void MeasurementAccumulator::add(const EqualTimeSample& sample, int sign) {
  const double s = static_cast<double>(sign);
  density_.add(sample.density, s);
  density_up_.add(sample.density_up, s);
  density_dn_.add(sample.density_dn, s);
  double_occ_.add(sample.double_occupancy, s);
  kinetic_.add(sample.kinetic_energy, s);
  moment_.add(sample.moment_sq, s);
  af_.add(sample.af_structure_factor, s);
  pair_s_.add(sample.pair_s, s);
  pair_d_.add(sample.pair_d, s);
  nk_.add(sample.momentum_dist.data(), s);
  czz_.add(sample.spin_corr.data(), s);
}

}  // namespace dqmc::core
