#include "dqmc/delayed_update.h"

#include "common/stopwatch.h"
#include "linalg/blas1.h"
#include "linalg/blas3.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dqmc::core {

DelayedGreens::DelayedGreens(idx n, idx max_rank)
    : n_(n), max_rank_(max_rank), u_(n, max_rank), w_(n, max_rank),
      ut_(max_rank, n), wt_(max_rank, n) {
  DQMC_CHECK(n >= 1 && max_rank >= 1);
}

void DelayedGreens::reset(Matrix g) {
  DQMC_CHECK(g.rows() == n_ && g.cols() == n_);
  g_ = std::move(g);
  filled_ = 0;
  ++revision_;
}

double DelayedGreens::diag(idx i) const {
  double v = g_(i, i);
  // + sum_m U(i,m) W(i,m): unit-stride dot down the transposed mirrors
  // (same accumulation order as the strided read of u_/w_ rows, so the
  // value is bitwise unchanged — only the memory walk is contiguous).
  if (filled_ > 0) v += linalg::dot(filled_, ut_.col(i), wt_.col(i));
  return v;
}

double DelayedGreens::entry(idx i, idx j) const {
  double v = g_(i, j);
  if (filled_ > 0) v += linalg::dot(filled_, ut_.col(i), wt_.col(j));
  return v;
}

void DelayedGreens::accept(double coeff, idx i) {
  DQMC_CHECK(i >= 0 && i < n_);
  if (filled_ == max_rank_) flush(nullptr);

  double* ucol = u_.col(filled_);
  double* wcol = w_.col(filled_);

  // u = current G(:, i) = G0(:,i) + U * W(i,:)^T
  for (idx r = 0; r < n_; ++r) ucol[r] = g_(r, i);
  for (idx m = 0; m < filled_; ++m) {
    linalg::axpy(n_, w_(i, m), u_.col(m), ucol);
  }
  // w_j = delta_ij - current G(i, j) = delta_ij - G0(i,j) - U(i,:) W(:,j)^T
  for (idx j = 0; j < n_; ++j) wcol[j] = -g_(i, j);
  for (idx m = 0; m < filled_; ++m) {
    linalg::axpy(n_, -u_(i, m), w_.col(m), wcol);
  }
  wcol[i] += 1.0;

  // Fold the -coeff into the u column so the flush is a plain GEMM.
  linalg::scal(n_, -coeff, ucol);
  // Mirror the finished columns into row `filled_` of the transposed
  // buffers; the strided write here is O(n) against the O(n * filled)
  // axpy work above, and it buys unit-stride reads in every diag() call.
  for (idx r = 0; r < n_; ++r) ut_(filled_, r) = ucol[r];
  for (idx j = 0; j < n_; ++j) wt_(filled_, j) = wcol[j];
  ++filled_;
  ++revision_;
}

Matrix& DelayedGreens::flush(Profiler* prof) {
  if (filled_ == 0) return g_;
  ScopedPhase phase(prof, Phase::kDelayedUpdate);
  obs::TraceSpan span("delayed_flush");
  span.arg("rank", static_cast<double>(filled_));

  const auto fold = [&] {
    linalg::gemm(linalg::Trans::No, linalg::Trans::Yes, 1.0,
                 u_.view().block(0, 0, n_, filled_),
                 w_.view().block(0, 0, n_, filled_), 1.0, g_);
  };
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    Stopwatch watch;
    fold();
    const double s = watch.seconds();
    reg.observe("delayed_update.flush_rank", static_cast<double>(filled_));
    // Rank-k update: 2 n^2 k flops, the GEMM rate behind Fig. 1.
    if (s > 0.0) {
      reg.observe("gemm.gflops", 2.0 * static_cast<double>(n_) * n_ * filled_ /
                                     s / 1e9);
    }
  } else {
    fold();
  }
  filled_ = 0;
  return g_;
}

}  // namespace dqmc::core
