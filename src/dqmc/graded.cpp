#include "dqmc/graded.h"

#include <cmath>
#include <utility>

#include "fault/failpoint.h"
#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/permutation.h"
#include "linalg/qrp.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "parallel/parallel_for.h"

namespace dqmc::core {

using linalg::Diag;
using linalg::Permutation;
using linalg::Side;
using linalg::Trans;
using linalg::UpLo;

const char* strat_algorithm_name(StratAlgorithm a) {
  switch (a) {
    case StratAlgorithm::kQRP: return "qrp";
    case StratAlgorithm::kPrePivot: return "prepivot";
    case StratAlgorithm::kSvdStack: return "svdstack";
  }
  return "?";
}

GradedAccumulator::GradedAccumulator(idx n, StratAlgorithm algorithm,
                                     idx qr_block)
    : n_(n), algorithm_(algorithm), qr_block_(qr_block) {
  DQMC_CHECK(n >= 1);
  DQMC_CHECK(qr_block >= 1);
  DQMC_CHECK_MSG(algorithm != StratAlgorithm::kSvdStack,
                 "GradedAccumulator: kSvdStack is SvdStackAccumulator's "
                 "algorithm (construct through make_stabilizer)");
}

void GradedAccumulator::reset() { empty_ = true; }

const Matrix& GradedAccumulator::u() const {
  DQMC_CHECK_MSG(!empty_, "GradedAccumulator is empty");
  return u_;
}
const Vector& GradedAccumulator::d() const {
  DQMC_CHECK_MSG(!empty_, "GradedAccumulator is empty");
  return d_;
}
const Matrix& GradedAccumulator::t() const {
  DQMC_CHECK_MSG(!empty_, "GradedAccumulator is empty");
  return t_;
}

void GradedAccumulator::push(const Matrix& factor) {
  DQMC_CHECK(factor.rows() == n_ && factor.cols() == n_);
  if (empty_) {
    graded_step(Matrix(factor), /*first=*/true);
    empty_ = false;
    return;
  }
  // C = (factor * U) * diag(d): GEMM between well-scaled operands, then the
  // graded column scaling (Algorithm 2/3 step 3a).
  Matrix c(n_, n_);
  linalg::gemm(Trans::No, Trans::No, 1.0, factor, u_, 0.0, c);
  linalg::scale_cols(d_.data(), c);
  graded_step(std::move(c), /*first=*/false);
}

void GradedAccumulator::graded_step(Matrix&& c, bool first) {
  ++stats_.steps;
  // Models a stabilization blow-up inside the graded QR (the same failure
  // the NumericalError below reports for a genuinely singular chain).
  DQMC_FAILPOINT("graded.qr");

  // Factor c as Q R P^T: genuinely pivoted (Algorithm 2) or pre-pivoted +
  // unpivoted blocked QR (Algorithm 3).
  Permutation perm(n_);
  linalg::QRFactorization qr;
  if (algorithm_ == StratAlgorithm::kQRP) {
    linalg::QRPFactorization f = linalg::qrp_factor(std::move(c));
    perm = std::move(f.jpvt);
    qr.factors = std::move(f.factors);
    qr.tau = std::move(f.tau);
  } else {
    perm = linalg::prepivot_permutation(c);
    if (perm.is_identity()) {
      qr = linalg::qr_factor(std::move(c), qr_block_);
    } else {
      Matrix gathered(n_, n_);
      linalg::apply_permutation(c, perm, gathered);
      qr = linalg::qr_factor(std::move(gathered), qr_block_);
    }
  }
  stats_.pivot_displacement += static_cast<std::uint64_t>(perm.displacement());
  obs::metrics().count(algorithm_ == StratAlgorithm::kQRP ? "strat.qrp_calls"
                                                          : "strat.qr_calls");
  // The permutation sorts the column norms, so its presorted fraction IS
  // the pre-pivot sortedness (Algorithm 3's "very few interchanges").
  if (obs::health().enabled()) {
    obs::health().record_sortedness(perm.presorted_fraction());
  }

  // d = diag(R); R_s = D^{-1} R (well-scaled upper triangle).
  d_ = linalg::diagonal(qr.factors);
  for (idx i = 0; i < n_; ++i) {
    if (d_[i] == 0.0 || !std::isfinite(d_[i])) {
      throw NumericalError(
          "graded step: singular or non-finite factor chain (diagonal entry " +
          std::to_string(i) + ")");
    }
  }
  // R-scaling fringe (O(N^2) level-2 work), columns in parallel: each column
  // writes its scaled upper part and zeros the strictly-lower part.
  Matrix rs(n_, n_);
  par::parallel_for(
      0, n_,
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        for (idx i = 0; i <= j; ++i) rs(i, j) = qr.factors(i, j) / d_[i];
        for (idx i = j + 1; i < n_; ++i) rs(i, j) = 0.0;
      },
      {.grain = 8});

  if (first) {
    // T_1 = (D^{-1} R) P^T: scatter columns.
    t_.resize(n_, n_);
    linalg::apply_permutation_transpose(rs, perm, t_);
  } else {
    // T_i = (D^{-1} R_i) (P_i^T T_{i-1}): gather rows (columns in parallel),
    // then triangular multiply.
    work_.resize(n_, n_);
    par::parallel_for(
        0, n_,
        [&](par::index_t jj) {
          const idx j = static_cast<idx>(jj);
          for (idx i = 0; i < n_; ++i) work_(i, j) = t_(perm[i], j);
        },
        {.grain = 8});
    linalg::trmm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, rs,
                 work_);
    std::swap(t_, work_);
  }

  u_ = linalg::qr_q(qr, qr_block_);
}

}  // namespace dqmc::core
