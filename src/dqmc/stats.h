// Monte Carlo statistics: sign-weighted, binned accumulators.
//
// DQMC observables are ratios <O s>/<s> of sign-weighted averages. Samples
// are folded into a fixed number of bins as they arrive; the error bar is
// the standard error of the per-bin ratio estimates, which also absorbs
// autocorrelation on the bin scale.
#pragma once

#include <iosfwd>
#include <vector>

#include "common/error.h"
#include "linalg/matrix.h"

namespace dqmc::core {

using linalg::idx;

/// Mean and standard error of one measured quantity.
struct Estimate {
  double mean = 0.0;
  double error = 0.0;
};

/// Scalar observable with sign weighting.
class ScalarAccumulator {
 public:
  explicit ScalarAccumulator(idx bins = 16);

  /// Record one configuration: observable value `o` and weight sign `s`.
  void add(double o, double s);

  idx samples() const { return samples_; }

  /// <O s> / <s> with a binned standard error. With fewer than 2 non-empty
  /// bins the error is reported as 0.
  Estimate estimate() const;
  /// Delete-one-bin jackknife of the same ratio: mean is the bias-corrected
  /// jackknife estimate, error the jackknife standard error — the right
  /// error bar for a ratio estimator like <O s>/<s>, where naive per-bin
  /// ratios understate the sign covariance. Falls back to estimate() with
  /// fewer than 2 usable bins.
  Estimate jackknife() const;
  /// Plain average of the sign itself.
  Estimate sign_estimate() const;

  /// Fold another accumulator's bins into this one (independent-chain
  /// merging). Both must have the same bin count.
  void merge(const ScalarAccumulator& other);

  /// Bit-exact text round trip (hexio conventions). load() replaces the
  /// accumulator's full state and requires the stored bin count to match.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  idx bins_, samples_ = 0;
  std::vector<double> os_;      // per-bin sum of O*s
  std::vector<double> s_;       // per-bin sum of s
  std::vector<idx> count_;      // per-bin sample count
};

/// Integrated autocorrelation time of a scalar Monte Carlo stream, with
/// Sokal's self-consistent windowing. Used to validate bin sizes and the
/// measure interval: error bars are only trustworthy when the bin length
/// exceeds ~2 tau_int.
class AutocorrelationEstimator {
 public:
  AutocorrelationEstimator() = default;

  void add(double x) { samples_.push_back(x); }
  idx samples() const { return static_cast<idx>(samples_.size()); }

  /// Normalized autocorrelation rho(lag); requires lag < samples().
  double rho(idx lag) const;

  /// tau_int = 1/2 + sum_{t=1}^{W} rho(t), with W the smallest window
  /// satisfying W >= c * tau_int(W) (c = 5, Sokal). Returns 0.5 for an
  /// uncorrelated stream; needs at least ~10 samples to be meaningful.
  double tau_integrated(double c = 5.0) const;

 private:
  std::vector<double> samples_;
};

/// Array observable (momentum distribution, correlation functions): one
/// sign-weighted binned accumulator per component, sharing the sign stream.
class ArrayAccumulator {
 public:
  ArrayAccumulator(idx size, idx bins = 16);

  idx size() const { return size_; }
  idx samples() const { return samples_; }

  /// `o` must have size() entries (values for one configuration).
  void add(const double* o, double s);

  Estimate estimate(idx component) const;
  /// All means at once.
  linalg::Vector means() const;
  linalg::Vector errors() const;

  /// Fold another accumulator's bins into this one (same size and bins).
  void merge(const ArrayAccumulator& other);

  /// Bit-exact text round trip; load() requires matching size and bins.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  idx size_, bins_, samples_ = 0;
  std::vector<double> os_;  // [bin * size + component]
  std::vector<double> s_;   // per-bin sum of s
  std::vector<idx> count_;
};

}  // namespace dqmc::core
