// Equal-time physical measurements (Section V of the paper).
//
// Everything is evaluated from the two equal-time Green's functions via
// Wick's theorem for a fixed HS configuration; the Monte Carlo average
// (with sign weighting) is handled by the accumulators in stats.h.
// Convention: G_sigma(i, j) = <c_i c^dag_j>, so <n_sigma(i)> = 1 - G(i, i).
#pragma once

#include "common/profiler.h"
#include "dqmc/momentum_transform.h"
#include "dqmc/stats.h"
#include "hubbard/lattice.h"
#include "hubbard/model.h"
#include "linalg/matrix.h"

namespace dqmc::core {

using hubbard::Lattice;
using hubbard::ModelParams;
using linalg::Matrix;
using linalg::Vector;

/// Single-configuration values (not yet sign-weighted or averaged).
struct EqualTimeSample {
  double density = 0.0;        ///< <n> per site, both spins
  double density_up = 0.0;
  double density_dn = 0.0;
  double double_occupancy = 0.0;  ///< <n_up n_dn> per site
  double kinetic_energy = 0.0;    ///< hopping energy per site (both spins)
  double moment_sq = 0.0;         ///< <m_z^2> per site = C_zz(0)
  Vector momentum_dist;  ///< <n_k> per spin, indexed like Lattice::momenta()
  Vector spin_corr;      ///< C_zz per displacement index (Lattice convention)
  double af_structure_factor = 0.0;  ///< S(pi,pi) = sum_d (-1)^{dx+dy} C_zz(d)
  /// Uniform s-wave pair-field structure factor
  /// P_s = (1/N) sum_{ij} <Delta_i Delta^dag_j>, Delta_i = c_{i dn} c_{i up}.
  double pair_s = 0.0;
  /// d-wave pair-field structure factor with form factor f(+-x) = +1,
  /// f(+-y) = -1 on nearest-neighbour bonds (the cuprate order parameter).
  double pair_d = 0.0;
};

/// Evaluate all equal-time observables for one configuration.
/// `gup`, `gdn` are the flushed N x N Green's functions. The workspace
/// (planned for the same lattice) supplies cached tables and reusable
/// scratch, and its kind selects the direct or FFT evaluation path; the
/// direct path reproduces the historical arithmetic bit for bit, the FFT
/// path the same observables to ~1e-12.
EqualTimeSample measure_equal_time(const Lattice& lattice,
                                   const ModelParams& params,
                                   const Matrix& gup, const Matrix& gdn,
                                   MeasurementWorkspace& ws);

/// Convenience overload: plans a single-use direct workspace. Prefer the
/// workspace overload anywhere measurements repeat.
EqualTimeSample measure_equal_time(const Lattice& lattice,
                                   const ModelParams& params,
                                   const Matrix& gup, const Matrix& gdn);

/// Sign-weighted accumulation of EqualTimeSample streams.
class MeasurementAccumulator {
 public:
  MeasurementAccumulator(const Lattice& lattice, idx bins = 16);

  void add(const EqualTimeSample& sample, int sign);
  idx samples() const { return density_.samples(); }

  /// Fold another accumulator (an independent chain on the same lattice and
  /// bin count) into this one.
  void merge(const MeasurementAccumulator& other);

  /// Bit-exact text round trip of all accumulator state (hexio format).
  /// load() requires a matching lattice shape and bin count.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  Estimate density() const { return density_.estimate(); }
  Estimate density_up() const { return density_up_.estimate(); }
  Estimate density_dn() const { return density_dn_.estimate(); }
  Estimate double_occupancy() const { return double_occ_.estimate(); }
  Estimate kinetic_energy() const { return kinetic_.estimate(); }
  Estimate moment_sq() const { return moment_.estimate(); }
  Estimate af_structure_factor() const { return af_.estimate(); }
  Estimate pair_s() const { return pair_s_.estimate(); }
  Estimate pair_d() const { return pair_d_.estimate(); }
  Estimate average_sign() const { return density_.sign_estimate(); }

  /// Delete-one-bin jackknife variants (see ScalarAccumulator::jackknife)
  /// — what the ED cross-check test compares against exact results.
  Estimate density_jackknife() const { return density_.jackknife(); }
  Estimate double_occupancy_jackknife() const {
    return double_occ_.jackknife();
  }
  Estimate kinetic_energy_jackknife() const { return kinetic_.jackknife(); }
  Estimate moment_sq_jackknife() const { return moment_.jackknife(); }

  /// <n_k> estimates, indexed like Lattice::momenta().
  Estimate momentum_dist(idx k) const { return nk_.estimate(k); }
  Vector momentum_dist_means() const { return nk_.means(); }
  Vector momentum_dist_errors() const { return nk_.errors(); }

  /// C_zz estimates per displacement index.
  Estimate spin_corr(idx d) const { return czz_.estimate(d); }
  Vector spin_corr_means() const { return czz_.means(); }
  Vector spin_corr_errors() const { return czz_.errors(); }

 private:
  ScalarAccumulator density_, density_up_, density_dn_, double_occ_, kinetic_,
      moment_, af_, pair_s_, pair_d_;
  ArrayAccumulator nk_, czz_;
};

}  // namespace dqmc::core
