// Matrix clustering with cross-sweep recycling (Sections III-A2, III-B2).
//
// Groups k consecutive B-matrices into cluster products
// Bhat_c = B_{ck+k-1} ... B_{ck} (per spin), cutting the number of graded QR
// steps by k. The clusters are CACHED: a full sweep only changes the slices
// of one cluster at a time, so only that cluster is rebuilt (the paper's
// recycling optimization, eq. (5)). Optionally the products are computed on
// the simulated GPU (Section VI-A).
#pragma once

#include <vector>

#include "common/profiler.h"
#include "dqmc/hs_field.h"
#include "gpusim/chain.h"
#include "hubbard/bmatrix.h"

namespace dqmc::core {

using hubbard::BMatrixFactory;
using hubbard::Spin;
using linalg::Matrix;

class ClusterStore {
 public:
  /// Covers all `field.slices()` slices with clusters of `cluster_size`
  /// (the paper's k = 10 default); the final cluster may be smaller when
  /// L is not a multiple of k. References to `factory` and `field` are
  /// retained; both must outlive the store.
  ClusterStore(const BMatrixFactory& factory, const HSField& field,
               idx cluster_size);

  idx num_clusters() const { return num_clusters_; }
  idx cluster_size() const { return cluster_size_; }
  /// First slice of cluster c.
  idx cluster_begin(idx c) const { return c * cluster_size_; }
  /// One-past-last slice of cluster c.
  idx cluster_end(idx c) const;
  /// Cluster containing slice s.
  idx cluster_of(idx s) const { return s / cluster_size_; }

  /// Offload cluster products to a simulated GPU (B resident on device).
  /// The chain must wrap the same B as `factory`. Null disables offload.
  void attach_gpu(gpu::GpuBChain* chain) { gpu_ = chain; }
  bool gpu_attached() const { return gpu_ != nullptr; }

  /// Recompute cluster c for both spins from the current field.
  void rebuild(idx c, Profiler* prof = nullptr);
  /// Recompute everything (initialization and after global field changes).
  void rebuild_all(Profiler* prof = nullptr);

  const Matrix& cluster(Spin s, idx c) const {
    return clusters_[spin_index(s)][static_cast<std::size_t>(c)];
  }

  /// Factor sequence for the Green's function at the boundary BEFORE
  /// cluster `start`: rightmost-first order
  /// [Bhat_start, Bhat_{start+1}, ..., Bhat_{start-1}] (cyclic).
  std::vector<const Matrix*> rotation(Spin s, idx start) const;

 private:
  Matrix cpu_cluster_product(Spin s, idx c) const;

  const BMatrixFactory& factory_;
  const HSField& field_;
  idx cluster_size_;
  idx num_clusters_;
  gpu::GpuBChain* gpu_ = nullptr;
  std::vector<Matrix> clusters_[2];  // [spin][cluster]
};

}  // namespace dqmc::core
