// Matrix clustering with cross-sweep recycling (Sections III-A2, III-B2).
//
// Groups k consecutive B-matrices into cluster products
// Bhat_c = B_{ck+k-1} ... B_{ck} (per spin), cutting the number of graded QR
// steps by k. The clusters are CACHED: a full sweep only changes the slices
// of one cluster at a time, so only that cluster is rebuilt (the paper's
// recycling optimization, eq. (5)). With a backend chain attached the
// products are computed through the ComputeBackend (Section VI-A), and
// rebuild_async defers the work to a task-runtime task that overlaps the
// caller's stratification — the paper's CPU/GPU pipelining: the rebuilt
// cluster is the LAST factor of the next rotation, so the graded QR of the
// other factors proceeds while the product is still being formed.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "backend/bchain.h"
#include "common/profiler.h"
#include "dqmc/hs_field.h"
#include "hubbard/bmatrix.h"
#include "parallel/task_runtime.h"

namespace dqmc::core {

using hubbard::BMatrixFactory;
using hubbard::Spin;
using linalg::Matrix;

class ClusterStore {
 public:
  /// Covers all `field.slices()` slices with clusters of `cluster_size`
  /// (the paper's k = 10 default); the final cluster may be smaller when
  /// L is not a multiple of k. References to `factory` and `field` are
  /// retained; both must outlive the store.
  ClusterStore(const BMatrixFactory& factory, const HSField& field,
               idx cluster_size);
  ~ClusterStore();

  idx num_clusters() const { return num_clusters_; }
  idx cluster_size() const { return cluster_size_; }
  /// First slice of cluster c.
  idx cluster_begin(idx c) const { return c * cluster_size_; }
  /// One-past-last slice of cluster c.
  idx cluster_end(idx c) const;
  /// Cluster containing slice s.
  idx cluster_of(idx s) const { return s / cluster_size_; }

  /// Route cluster products through per-spin backend chains (B resident on
  /// the backend). Both chains must wrap the same B as `factory` and must
  /// outlive the store; nulls disable the backend path.
  void attach_backend(backend::BackendBChain* up, backend::BackendBChain* dn);
  bool backend_attached() const { return chain_[0] != nullptr; }

  /// Recompute cluster c for both spins from the current field (blocking).
  void rebuild(idx c, Profiler* prof = nullptr);
  /// Recompute everything (initialization and after global field changes).
  void rebuild_all(Profiler* prof = nullptr);

  /// Deferred rebuild: the products are computed by a task-runtime task so
  /// the caller's next stratification overlaps the rebuild. Readers of
  /// cluster c (factor/rotation/cluster) block until the task lands; its
  /// wall time is billed through drain_deferred_profile().
  void rebuild_async(idx c);
  /// Block until a pending rebuild_async has landed. Thread-safe; a no-op
  /// when nothing is pending.
  void materialize();
  /// Fold Phase::kClustering wall time recorded by deferred rebuilds into
  /// `prof` (call from the profiler-owning thread).
  void drain_deferred_profile(Profiler* prof);

  /// Cluster product Bhat_c (materializes a pending rebuild of c first).
  const Matrix& cluster(Spin s, idx c);

  /// Install an externally computed product for cluster c — the batched
  /// walker driver rebuilds all walkers' clusters in one batched backend
  /// call and hands each store its slice of the result. Replaces what
  /// rebuild(c) would have produced; the caller guarantees the product was
  /// computed from the current field with the same per-item arithmetic.
  void install_cluster(Spin s, idx c, Matrix product);

  /// Factor i (rightmost-first) of the rotation starting at `start`:
  /// Bhat_{(start+i) mod m}. Thread-safe against a pending rebuild — this
  /// is the lazy access the stratification provider uses.
  const Matrix& factor(Spin s, idx start, idx i);

  /// Factor sequence for the Green's function at the boundary BEFORE
  /// cluster `start`: rightmost-first order
  /// [Bhat_start, Bhat_{start+1}, ..., Bhat_{start-1}] (cyclic).
  /// Materializes any pending rebuild up front.
  std::vector<const Matrix*> rotation(Spin s, idx start);

 private:
  Matrix cpu_cluster_product(Spin s, idx c) const;
  /// The old synchronous rebuild body (no profiler bracket): both spins,
  /// metrics included. Safe to run off-thread.
  void rebuild_now(idx c);

  const BMatrixFactory& factory_;
  const HSField& field_;
  idx cluster_size_;
  idx num_clusters_;
  backend::BackendBChain* chain_[2] = {nullptr, nullptr};
  std::vector<Matrix> clusters_[2];  // [spin][cluster]

  // Deferred-rebuild state. pending_cluster_ is -1 when nothing is in
  // flight; materialize() never holds pending_mutex_ across the group wait
  // (waiters may help-execute unrelated tasks that re-enter the store).
  std::mutex pending_mutex_;
  std::shared_ptr<par::TaskGroup> pending_group_;
  std::atomic<idx> pending_cluster_{-1};
  std::mutex profile_mutex_;
  double deferred_seconds_ = 0.0;
};

}  // namespace dqmc::core
