// Monte Carlo random number generator.
//
// xoshiro256++ — fast, high-quality, and with a tiny serializable state, so
// simulations are reproducible from a single seed across platforms
// (std:: distributions are implementation-defined and would not be).
#pragma once

#include <cstdint>

namespace dqmc::core {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initialize the state from a seed via splitmix64 (avoids the
  /// all-zero trap and decorrelates nearby seeds).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_below(std::uint64_t n);

  /// Fair coin.
  bool coin() { return (next_u64() >> 63) != 0; }

  /// Raw state access for checkpointing (4 x 64-bit words).
  void state(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void set_state(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = in[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dqmc::core
