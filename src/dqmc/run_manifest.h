// Run manifest: a single JSON document capturing everything needed to
// understand (and re-run) a simulation after the fact — the configuration,
// seed provenance, per-phase timings, the metrics-registry snapshot, and the
// numerical-health summary. The bench harness and `dqmc_run --metrics-json`
// both emit this format; tests/tools/obs_json_check validates it.
#pragma once

#include <string>

#include "dqmc/simulation.h"
#include "obs/json.h"

namespace dqmc::core {

/// Build the manifest document for `results`. Reads the GLOBAL
/// obs::MetricsRegistry / obs::HealthMonitor / obs::Tracer state, so call
/// it before resetting them. Top-level keys: "manifest", "config",
/// "phases", "metrics", "health", "trace", "fault".
obs::Json run_manifest(const SimulationResults& results);

/// The deterministic subset of the manifest used as a golden regression
/// fixture (tests/fault/test_golden_manifest): configuration echo,
/// trajectory hash, sign, key measurement means, and the fault-recovery
/// counters. No timings, no host state. Doubles are rendered as 16-digit
/// hex IEEE-754 bit patterns ("bits") next to a rounded readable value, so
/// the serialized document is byte-stable wherever the trajectory is.
obs::Json golden_manifest(const SimulationResults& results);

/// Write run_manifest(results) to `path` (pretty-printed). Throws
/// dqmc::Error on I/O failure.
void write_run_manifest(const SimulationResults& results,
                        const std::string& path);

}  // namespace dqmc::core
