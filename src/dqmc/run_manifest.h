// Run manifest: a single JSON document capturing everything needed to
// understand (and re-run) a simulation after the fact — the configuration,
// seed provenance, per-phase timings, the metrics-registry snapshot, and the
// numerical-health summary. The bench harness and `dqmc_run --metrics-json`
// both emit this format; tests/tools/obs_json_check validates it.
#pragma once

#include <string>

#include "dqmc/simulation.h"
#include "obs/json.h"

namespace dqmc::core {

/// Build the manifest document for `results`. Reads the GLOBAL
/// obs::MetricsRegistry / obs::HealthMonitor / obs::Tracer state, so call
/// it before resetting them. Top-level keys: "manifest", "config",
/// "phases", "metrics", "health", "trace".
obs::Json run_manifest(const SimulationResults& results);

/// Write run_manifest(results) to `path` (pretty-printed). Throws
/// dqmc::Error on I/O failure.
void write_run_manifest(const SimulationResults& results,
                        const std::string& path);

}  // namespace dqmc::core
