#include "dqmc/stratification.h"

#include <cmath>

#include "common/stopwatch.h"
#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/lu.h"
#include "linalg/util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"

namespace dqmc::core {

using linalg::Trans;

StratificationEngine::StratificationEngine(idx n, StratAlgorithm algorithm,
                                           idx qr_block)
    : acc_(make_stabilizer(n, algorithm, qr_block)) {}

Matrix close_greens(const Matrix& u, const Vector& d, const Matrix& t) {
  const idx n = u.rows();
  // Split d into big and small parts (Section III-A1):
  //   D_b(i) = 1/|d_i| if |d_i| > 1 else 1      (inverse of the big part)
  //   D_s(i) = d_i if |d_i| <= 1 else sgn(d_i)  (the small part)
  Vector db(n), ds(n);
  for (idx i = 0; i < n; ++i) {
    const double di = d[i];
    if (std::fabs(di) > 1.0) {
      db[i] = 1.0 / std::fabs(di);
      ds[i] = di > 0.0 ? 1.0 : -1.0;
    } else {
      db[i] = 1.0;
      ds[i] = di;
    }
  }

  // With chain = U diag(d) T and d = D_b^{-1} D_s:
  //   I + U d T = U D_b^{-1} (D_b U^T + D_s T)
  //   G = (D_b U^T + D_s T)^{-1} D_b U^T.
  // Every bracket term is O(1): D_b U^T has rows scaled DOWN by the big
  // magnitudes and D_s T rows scaled by the small ones. (Algebraically
  // verified equivalent of the paper's D_b/D_s closing step; the formula
  // as printed in the paper text does not invert I + UDT — see DESIGN.md.)
  Matrix ut = linalg::transpose(u);
  Matrix a(n, n);
  // D_b/D_s assembly fringe (O(N^2)), columns in parallel.
  par::parallel_for(
      0, n,
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        for (idx i = 0; i < n; ++i) {
          a(i, j) = db[i] * ut(i, j) + ds[i] * t(i, j);
        }
      },
      {.grain = 8});
  linalg::scale_rows(db.data(), ut);  // RHS = D_b U^T
  linalg::LUFactorization alu = linalg::lu_factor(std::move(a));
  linalg::lu_solve(alu, Trans::No, ut);
  return ut;
}

int chain_det_sign(const std::vector<const Matrix*>& factors,
                   StratAlgorithm algorithm) {
  DQMC_CHECK_MSG(!factors.empty(), "chain_det_sign needs at least one factor");
  const idx n = factors[0]->rows();
  const std::unique_ptr<Stabilizer> acc = make_stabilizer(n, algorithm);
  for (const Matrix* f : factors) acc->push(*f);

  const Matrix& u = acc->u();
  const Vector& d = acc->d();
  const Matrix& t = acc->t();

  // det M = det(U) * det(D_b^{-1}) * det(A): D_b^{-1} has positive entries
  // by construction, so only U and A contribute signs.
  Vector db(n), ds(n);
  for (idx i = 0; i < n; ++i) {
    const double di = d[i];
    if (std::fabs(di) > 1.0) {
      db[i] = 1.0 / std::fabs(di);
      ds[i] = di > 0.0 ? 1.0 : -1.0;
    } else {
      db[i] = 1.0;
      ds[i] = di;
    }
  }
  Matrix a(n, n);
  par::parallel_for(
      0, n,
      [&](par::index_t jj) {
        const idx j = static_cast<idx>(jj);
        for (idx i = 0; i < n; ++i) {
          a(i, j) = db[i] * u(j, i) + ds[i] * t(i, j);
        }
      },
      {.grain = 8});
  const int sign_a = linalg::lu_logdet(linalg::lu_factor(std::move(a))).sign;
  const int sign_u = linalg::lu_logdet(linalg::lu_factor(Matrix(u))).sign;
  return sign_a * sign_u;
}

Matrix StratificationEngine::compute(idx count, const FactorProvider& factor,
                                     Profiler* prof) {
  ScopedPhase phase(prof, Phase::kStratification);
  obs::TraceSpan span("greens_eval");
  span.arg("factors", static_cast<double>(count));
  Stopwatch watch;
  DQMC_CHECK_MSG(count > 0, "stratification needs at least one factor");

  acc_->reset();
  for (idx i = 0; i < count; ++i) {
    const Matrix& f = factor(i);
    DQMC_CHECK(f.rows() == n() && f.cols() == n());
    acc_->push(f);
  }

  // Steps/pivot counters accumulate inside the accumulator across calls;
  // the evaluation count is ours.
  const std::uint64_t evals = stats_.evaluations + 1;
  stats_ = acc_->stats();
  stats_.evaluations = evals;
  Matrix g = close_greens(acc_->u(), acc_->d(), acc_->t());
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("strat.evaluations");
    reg.observe("strat.eval_ms", watch.seconds() * 1e3);
  }
  return g;
}

Matrix StratificationEngine::compute(const std::vector<const Matrix*>& factors,
                                     Profiler* prof) {
  for (const Matrix* f : factors) DQMC_CHECK(f != nullptr);
  return compute(
      static_cast<idx>(factors.size()),
      [&factors](idx i) -> const Matrix& {
        return *factors[static_cast<std::size_t>(i)];
      },
      prof);
}

Matrix StratificationEngine::compute(const std::vector<Matrix>& factors,
                                     Profiler* prof) {
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(factors.size());
  for (const Matrix& f : factors) ptrs.push_back(&f);
  return compute(ptrs, prof);
}

}  // namespace dqmc::core
