// The Hubbard-Stratonovich auxiliary field h(l, i) in {-1, +1}.
//
// One Ising-like variable per (imaginary-time slice, lattice site); the
// Metropolis walk of Algorithm 1 flips them one at a time.
#pragma once

#include <vector>

#include "dqmc/rng.h"
#include "hubbard/bmatrix.h"
#include "linalg/matrix.h"

namespace dqmc::core {

using hubbard::hs_t;
using linalg::idx;

class HSField {
 public:
  /// slices x sites field, all entries initialized to +1.
  HSField(idx slices, idx sites);

  idx slices() const { return slices_; }
  idx sites() const { return sites_; }

  /// Randomize every entry with a fair coin.
  void randomize(Rng& rng);

  hs_t operator()(idx slice, idx site) const {
    return data_[index(slice, site)];
  }
  void flip(idx slice, idx site) {
    data_[index(slice, site)] = static_cast<hs_t>(-data_[index(slice, site)]);
  }
  void set(idx slice, idx site, hs_t v) { data_[index(slice, site)] = v; }

  /// Contiguous row of `sites()` values for one time slice — the layout the
  /// B-matrix factory consumes directly.
  const hs_t* slice(idx l) const { return data_.data() + index(l, 0); }

 private:
  std::size_t index(idx l, idx i) const {
    DQMC_ASSERT(l >= 0 && l < slices_ && i >= 0 && i < sites_);
    return static_cast<std::size_t>(l) * static_cast<std::size_t>(sites_) +
           static_cast<std::size_t>(i);
  }
  idx slices_, sites_;
  std::vector<hs_t> data_;
};

}  // namespace dqmc::core
