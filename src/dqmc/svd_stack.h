// SVD-stack stabilization: U diag(d) V^T re-factorization at every push.
//
// Follows the SVD scheme Bauer ("Fast and stable determinant quantum Monte
// Carlo") assesses as the accurate-at-any-beta baseline: the chain is kept
// as a stack of U d V^T factors whose d-scales are exact singular values.
// Each push forms C = (factor * U) * diag(d) — the same graded pre-step as
// the QR accumulator — then refactors C = U' diag(sigma) V'^T by one-sided
// Jacobi (linalg/svd.h) and folds V'^T into the running T. The exposed
// decomposition satisfies the full Stabilizer contract: U orthogonal, d
// positive descending (singular values ARE the graded scales), T a product
// of orthogonal factors, so close_greens() and chain_det_sign() consume it
// unchanged.
//
// Cost: one O(n^3)-per-sweep Jacobi factorization per push instead of one
// blocked QR — the price of singular-value-exact d-scales. Pick it when
// graded QR drifts (large beta * U; see docs/STABILITY.md).
#pragma once

#include <vector>

#include "dqmc/stabilizer.h"

namespace dqmc::core {

class SvdStackAccumulator final : public Stabilizer {
 public:
  explicit SvdStackAccumulator(idx n);

  idx n() const override { return n_; }
  StratAlgorithm algorithm() const override {
    return StratAlgorithm::kSvdStack;
  }
  bool empty() const override { return empty_; }
  const StratStats& stats() const override { return stats_; }

  void reset() override;
  void push(const Matrix& factor) override;

  const Matrix& u() const override;
  const Vector& d() const override;
  const Matrix& t() const override;

  /// The d-scales recorded at every level of the stack since the last
  /// reset(): scale_stack()[k] is d after push k. Diagnostic view of how
  /// the chain's dynamic range grows (drift plots, tests).
  const std::vector<Vector>& scale_stack() const { return scale_stack_; }

 private:
  idx n_;
  bool empty_ = true;
  StratStats stats_;
  Matrix u_;
  Vector d_;
  Matrix t_;
  Matrix work_;
  std::vector<Vector> scale_stack_;
};

}  // namespace dqmc::core
