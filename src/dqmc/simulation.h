// Full DQMC simulation driver: warmup sweeps, measurement sweeps, and
// result collection — the loop the paper runs with 1000 warmup and 2000
// measurement sweeps for the physics figures.
#pragma once

#include <functional>

#include "fault/report.h"
#include "dqmc/dynamic_measurements.h"
#include "dqmc/engine.h"
#include "dqmc/measurements.h"
#include "dqmc/time_displaced.h"

namespace dqmc::core {

struct SimulationConfig {
  idx lx = 4;
  idx ly = 4;
  idx layers = 1;
  ModelParams model;
  EngineConfig engine;
  idx warmup_sweeps = 100;
  idx measurement_sweeps = 200;
  /// Measure every this many sweeps (1 = every sweep).
  idx measure_interval = 1;
  /// When > 0, also measure every this many time slices WITHIN each
  /// measurement sweep (QUEST-style cross-slice averaging; equal-time
  /// observables are invariant under the cyclic rotation, so every slice
  /// boundary is a valid sample). 0 = measure only at sweep end.
  idx measure_slice_interval = 0;
  /// When > 0, compute the time-displaced Green's functions and dynamic
  /// observables (Gloc(tau), chi_AF(tau)) every this many measurement
  /// sweeps. Costs ~2 extra Green's-chain passes per sample; 0 = off.
  idx measure_dynamic_interval = 0;
  idx bins = 16;
  std::uint64_t seed = 1;
  /// Walker-crowd size W for run_parallel_simulation /
  /// run_supervised_parallel: 0 (default) runs each chain as its own
  /// task-runtime task on its own backend; W >= 1 partitions the chains
  /// into consecutive crowds of up to W walkers advanced in LOCKSTEP on one
  /// shared backend, their per-slice linear algebra folded into batched
  /// launches (see dqmc/walker_batch.h). Per-chain trajectories are bitwise
  /// identical across all values of walker_batch.
  idx walker_batch = 0;
  /// When non-empty, resume the Markov state from this checkpoint file
  /// instead of a fresh random field (see checkpoint.h).
  std::string checkpoint_in;
  /// When non-empty, save the final Markov state to this file.
  std::string checkpoint_out;

  Lattice make_lattice() const { return Lattice(lx, ly, layers); }
};

struct SimulationResults {
  SimulationConfig config;
  MeasurementAccumulator measurements;
  /// Populated only when config.measure_dynamic_interval > 0.
  DynamicAccumulator dynamic;
  SweepStats sweep_stats;
  StratStats strat_stats;
  Profiler profiler;
  /// Compute-backend accounting for the engine hot path ("host"/"gpusim";
  /// summed across chains in run_parallel_simulation).
  std::string backend_name;
  backend::BackendStats backend_stats;
  /// Wrap uploads elided because G stayed resident on the backend.
  std::uint64_t wrap_uploads_skipped = 0;
  double elapsed_seconds = 0.0;
  /// Digest of the final Markov state (see core::trajectory_hash); for
  /// multi-chain runs, the per-chain hashes FNV-mixed in chain order.
  std::uint64_t trajectory_hash = 0;
  /// Faults observed and recovery actions taken (empty for unsupervised
  /// runs except final_backend); lands in the manifest's "fault" section.
  fault::FaultReport fault_report;
  /// Walker-batching shape of the run: crowd size W and number of crowds
  /// the chains were partitioned into. Both 0 for unbatched runs (the
  /// manifest's "batch" section is emitted only when batch_walkers > 0).
  idx batch_walkers = 0;
  idx batch_crowds = 0;

  explicit SimulationResults(const SimulationConfig& cfg)
      : config(cfg),
        measurements(cfg.make_lattice(), cfg.bins),
        dynamic(cfg.model.slices, cfg.bins) {}
};

/// FNV-1a fold of one chain's trajectory hash into a multi-chain digest
/// (chain order sensitive; 0 accumulator seeds the offset basis).
inline std::uint64_t mix_chain_hash(std::uint64_t acc, std::uint64_t chain) {
  if (acc == 0) acc = 0xcbf29ce484222325ull;
  for (int b = 0; b < 8; ++b) {
    acc ^= (chain >> (8 * b)) & 0xff;
    acc *= 0x100000001b3ull;
  }
  return acc;
}

/// Fold one chain's partial results into a merged aggregate (chain-order
/// sensitive via mix_chain_hash); shared by run_parallel_simulation and
/// run_supervised_parallel across their unbatched and walker-crowd paths.
void merge_chain_results(SimulationResults& merged,
                         const SimulationResults& partial);

/// Progress callback: (sweeps done, total sweeps, warmup?) — return value
/// ignored; called once per sweep.
using ProgressFn = std::function<void(idx, idx, bool)>;

/// Run a complete simulation. Deterministic for a fixed config (seed
/// included). The callback may be null.
SimulationResults run_simulation(const SimulationConfig& config,
                                 const ProgressFn& progress = nullptr);

/// Lower-level variant reusing a caller-constructed engine (the benches use
/// this to attach profilers / GPU offload configs).
void run_simulation(DqmcEngine& engine, const SimulationConfig& config,
                    SimulationResults& results,
                    const ProgressFn& progress = nullptr);

/// Run `chains` statistically independent Markov chains (seeds
/// config.seed, config.seed+1, ...) concurrently as task-runtime tasks and
/// merge their accumulators — the trivially parallel axis of DQMC
/// production runs. Each chain performs the full warmup + measurement
/// schedule, so the merged result has `chains` x the samples. Deterministic
/// for a fixed config regardless of the worker count. `max_workers` is
/// retained for call-site compatibility; scheduling is delegated to the
/// shared task runtime. `progress` (when set) receives one call per
/// completed chain-sweep unit (a crowd of W walkers reports W units per
/// lockstep sweep) and must be thread-safe: unbatched chains invoke it
/// concurrently from worker threads.
SimulationResults run_parallel_simulation(const SimulationConfig& config,
                                          idx chains,
                                          int max_workers = 0,
                                          const ProgressFn& progress =
                                              nullptr);

}  // namespace dqmc::core
