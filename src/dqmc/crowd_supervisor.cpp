#include "dqmc/crowd_supervisor.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "dqmc/checkpoint.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace dqmc::core {

namespace detail {

double backoff_ms(const SupervisorPolicy& policy, int attempt) {
  double ms = policy.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) ms *= 2.0;
  return ms < policy.backoff_max_ms ? ms : policy.backoff_max_ms;
}

}  // namespace detail

CrowdSupervisor::CrowdSupervisor(
    const SimulationConfig& config, const SupervisorPolicy& policy, idx first,
    idx walkers, const ProgressFn& progress,
    std::vector<std::unique_ptr<SimulationResults>>& partials,
    idx partials_offset)
    : config_(config),
      policy_(policy),
      progress_(progress),
      first_(first),
      walkers_(walkers),
      offset_(partials_offset),
      partials_(partials),
      lattice_(config.make_lattice()),
      backend_(config.engine.backend),
      precision_(config.engine.precision) {
  DQMC_CHECK_MSG(walkers >= 1, "a crowd needs at least one walker");
  DQMC_CHECK_MSG(partials_offset >= 0 &&
                     static_cast<std::size_t>(partials_offset + walkers) <=
                         partials.size(),
                 "partials vector does not cover the crowd");
  for (idx w = 0; w < walkers_; ++w) {
    SimulationConfig chain_cfg = config_;
    chain_cfg.seed = seed(w);
    partials_[index(w)] = std::make_unique<SimulationResults>(chain_cfg);
  }
  scratch_samples_.resize(static_cast<std::size_t>(walkers_));
  scratch_dynamic_.resize(static_cast<std::size_t>(walkers_));
  scratch_stats_.resize(static_cast<std::size_t>(walkers_));
  // One workspace per walker: slice hooks measure walkers concurrently.
  workspaces_.reserve(static_cast<std::size_t>(walkers_));
  for (idx w = 0; w < walkers_; ++w) {
    workspaces_.push_back(std::make_unique<MeasurementWorkspace>(
        lattice_, config_.engine.measure));
  }
}

void CrowdSupervisor::set_resume(std::vector<std::string> checkpoints,
                                 idx done) {
  DQMC_CHECK_MSG(!batch_, "set_resume must precede run()");
  DQMC_CHECK_MSG(static_cast<idx>(checkpoints.size()) == walkers_,
                 "resume needs one checkpoint per walker");
  DQMC_CHECK_MSG(done >= 0 && done <= total_sweeps(),
                 "resume sweep count out of range");
  ckpts_ = std::move(checkpoints);
  ckpt_sweep_ = done;
  done_ = done;
  resume_ = true;
}

void CrowdSupervisor::run() {
  const idx total = total_sweeps();
  const idx interval =
      policy_.checkpoint_interval > 0 ? policy_.checkpoint_interval : total;
  int attempt = 0;
  bool need_restore = false;

  // Ambient identity for flight events and the crash-dump header while
  // this crowd drives the shared backend.
  obs::flight_recorder().set_context(
      -1, static_cast<std::int32_t>(
              first_ / std::max<idx>(config_.walker_batch, 1)));

  while (done_ < total || !batch_) {
    try {
      if (!batch_) {
        start_batch();
      } else if (need_restore) {
        restore();
        need_restore = false;
      }
      if (done_ >= total) break;
      const idx seg_end = std::min(done_ + interval, total);
      run_segment(done_, seg_end);
      check_health();
      take_checkpoints(seg_end);
      commit(seg_end);
      attempt = 0;
      if (boundary_) {
        CrowdBoundary b;
        b.done = done_;
        b.total = total;
        b.can_split = ckpt_sweep_ == done_ && walkers_ >= 2 && done_ < total;
        boundary_(b);
      }
    } catch (const WalkerFault& e) {
      // Attribute the fault to the walker before the crowd-wide recovery
      // decision is taken (the dump's event tail shows both).
      DQMC_FLIGHT_EVENT(obs::FlightEventKind::kNote, "walker.fault",
                        e.site().c_str(), 0.0, 0.0,
                        static_cast<std::int32_t>(first_ + e.walker()));
      ++attempt;
      if (!recover(e.site(), e.fault_class(), e.what(), attempt)) throw;
      need_restore = true;
    } catch (const fault::InjectedFault& e) {
      ++attempt;
      if (!recover(e.site(), e.fault_class(), e.what(), attempt)) throw;
      need_restore = true;
    } catch (const detail::HealthTripError& e) {
      ++attempt;
      if (!recover("health", fault::FaultClass::kHealthTrip, e.what(),
                   attempt))
        throw;
      need_restore = true;
    } catch (const NumericalError& e) {
      ++attempt;
      if (!recover("numerical", fault::FaultClass::kNumericalFault, e.what(),
                   attempt))
        throw;
      need_restore = true;
    } catch (const std::exception& e) {
      ++attempt;
      if (!recover("device", fault::FaultClass::kDeviceFault, e.what(),
                   attempt))
        throw;
      need_restore = true;
    }
  }

  finish();
}

WalkerHandoff CrowdSupervisor::split_tail(idx count) {
  DQMC_CHECK_MSG(count >= 1 && count < walkers_,
                 "split_tail: count must leave both sides non-empty");
  DQMC_CHECK_MSG(ckpt_sweep_ == done_ && !ckpts_.empty(),
                 "split_tail: recovery checkpoints are not at the boundary");
  const idx keep = walkers_ - count;

  WalkerHandoff handoff;
  handoff.first_chain = first_ + keep;
  handoff.walkers = count;
  handoff.done = done_;
  handoff.checkpoints.assign(ckpts_.begin() + static_cast<std::ptrdiff_t>(keep),
                             ckpts_.end());

  // Rebuild the batch around the kept walkers from their own lockstep
  // checkpoints — a bitwise restore, not a fault (no restart recorded).
  batch_.reset();
  walkers_ = keep;
  ckpts_.resize(static_cast<std::size_t>(keep));
  scratch_samples_.resize(static_cast<std::size_t>(keep));
  scratch_dynamic_.resize(static_cast<std::size_t>(keep));
  scratch_stats_.resize(static_cast<std::size_t>(keep));
  batch_ = make_batch();
  load_all_from_ckpts();
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kNote, "crowd.split", "yield",
                    static_cast<double>(done_), static_cast<double>(count));
  obs::metrics().count("fleet.walkers_migrated",
                       static_cast<std::uint64_t>(count));
  return handoff;
}

EngineConfig CrowdSupervisor::engine_config() const {
  EngineConfig cfg = config_.engine;
  cfg.backend = backend_;
  cfg.precision = precision_;
  return cfg;
}

std::unique_ptr<WalkerBatch> CrowdSupervisor::make_batch() const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(walkers_));
  for (idx w = 0; w < walkers_; ++w) seeds.push_back(seed(w));
  return std::make_unique<WalkerBatch>(lattice_, config_.model,
                                       engine_config(), seeds);
}

void CrowdSupervisor::start_batch() {
  batch_ = make_batch();
  if (resume_) {
    // The handoff checkpoints ARE the current recovery boundary: load them
    // and continue; take_checkpoints(0) would regress the boundary.
    load_all_from_ckpts();
    return;
  }
  if (config_.checkpoint_in.empty()) {
    batch_->initialize_all();
  } else {
    for (idx w = 0; w < walkers_; ++w) {
      load_checkpoint_file(config_.checkpoint_in, batch_->engine(w));
    }
  }
  take_checkpoints(0);
}

void CrowdSupervisor::load_all_from_ckpts() {
  for (idx w = 0; w < walkers_; ++w) {
    std::istringstream in(ckpts_[static_cast<std::size_t>(w)]);
    load_checkpoint(in, batch_->engine(w));
  }
}

void CrowdSupervisor::restore() {
  discard_scratch();
  batch_.reset();  // old shared backend drains before the new one
  batch_ = make_batch();
  if (ckpts_.empty()) {
    if (config_.checkpoint_in.empty()) {
      batch_->initialize_all();
    } else {
      for (idx w = 0; w < walkers_; ++w) {
        load_checkpoint_file(config_.checkpoint_in, batch_->engine(w));
      }
    }
  } else {
    load_all_from_ckpts();
  }
  ++report().restarts;
  obs::metrics().count("fault.recovery.restarts");
  for (idx g = ckpt_sweep_; g < done_; ++g) batch_->sweep_all();
}

bool CrowdSupervisor::recover(const std::string& site, fault::FaultClass cls,
                              const std::string& what, int attempt) {
  fault::FaultReport& rep = report();
  ++rep.faults;
  if (cls == fault::FaultClass::kHealthTrip) ++rep.health_trips;
  obs::metrics().count("fault.observed");

  detail::FaultEventBuilder event{site, cls, what, attempt};
  if (attempt <= policy_.max_retries) {
    ++rep.retries;
    obs::metrics().count("fault.recovery.retries");
    const double ms = detail::backoff_ms(policy_, attempt);
    if (policy_.sleep_on_backoff && ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    push_event(event, "retry", ms);
    return true;
  }
  if (cls == fault::FaultClass::kHealthTrip) {
    if (precision_ == backend::Precision::kFp32) {
      // Crowd-wide precision degrade: one shared backend, one precision
      // policy — every walker rejoins its trajectory on fp64 wraps.
      precision_ = backend::Precision::kFp64;
      ++rep.precision_degradations;
      obs::metrics().count("fault.recovery.precision_degradations");
      push_event(event, "degrade-precision", 0.0);
      return true;
    }
    check_health_ = false;
    push_event(event, "disable-health", 0.0);
    return true;
  }
  if (cls == fault::FaultClass::kDeviceFault && policy_.allow_degrade &&
      backend_ == backend::BackendKind::kGpuSim) {
    backend_ = backend::BackendKind::kHost;
    ++rep.degradations;
    rep.degraded = true;
    obs::metrics().count("fault.recovery.degradations");
    push_event(event, "degrade", 0.0);
    return true;
  }
  push_event(event, "abort", 0.0);
  return false;
}

void CrowdSupervisor::push_event(const detail::FaultEventBuilder& b,
                                 const char* action, double backoff) {
  report().events.push_back(fault::FaultEvent{
      b.site, fault::fault_class_name(b.cls), action, done_, b.attempt,
      backoff, b.detail});
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kRecovery, b.site.c_str(), action,
                    static_cast<double>(done_),
                    static_cast<double>(b.attempt));
  obs::flight_recorder().write_crash_dump("fault:" + b.site);
}

void CrowdSupervisor::run_segment(idx g_begin, idx g_end) {
  const idx total = total_sweeps();
  for (idx g = g_begin; g < g_end; ++g) {
    if (g < config_.warmup_sweeps) {
      add_stats(batch_->sweep_all());
    } else {
      measurement_sweep(g - config_.warmup_sweeps);
    }
    if (progress_) {
      // One chain-sweep unit per walker: the crowd advanced W walkers by
      // one lockstep sweep.
      for (idx w = 0; w < walkers_; ++w) {
        progress_(g + 1, total, g < config_.warmup_sweeps);
      }
    }
  }
}

void CrowdSupervisor::measurement_sweep(idx m) {
  const bool measuring = m % config_.measure_interval == 0;
  auto measure_now = [&](idx w) {
    DqmcEngine& engine = batch_->engine(w);
    ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
    scratch_samples_[static_cast<std::size_t>(w)].emplace_back(
        measure_equal_time(lattice_, engine.params(), engine.greens(Spin::Up),
                           engine.greens(Spin::Down),
                           *workspaces_[static_cast<std::size_t>(w)]),
        engine.config_sign());
  };
  if (measuring && config_.measure_slice_interval > 0) {
    add_stats(batch_->sweep_all([&](idx w, idx slice) {
      if (slice % config_.measure_slice_interval == 0) measure_now(w);
    }));
  } else {
    add_stats(batch_->sweep_all());
    if (measuring) {
      for (idx w = 0; w < walkers_; ++w) measure_now(w);
    }
  }
  if (config_.measure_dynamic_interval > 0 &&
      m % config_.measure_dynamic_interval == 0) {
    for (idx w = 0; w < walkers_; ++w) {
      DqmcEngine& engine = batch_->engine(w);
      ScopedPhase phase(&engine.profiler(), Phase::kMeasurement);
      TimeDisplacedGreens tdg(engine.factory(), engine.field(),
                              config_.engine.cluster_size,
                              config_.engine.algorithm);
      const TimeDisplaced up = tdg.compute(Spin::Up);
      const TimeDisplaced dn = tdg.compute(Spin::Down);
      scratch_dynamic_[static_cast<std::size_t>(w)].emplace_back(
          measure_dynamic(lattice_, config_.model.dtau(), up, dn,
                          *workspaces_[static_cast<std::size_t>(w)]),
          engine.config_sign());
    }
  }
}

void CrowdSupervisor::add_stats(const std::vector<SweepStats>& stats) {
  for (idx w = 0; w < walkers_; ++w) {
    scratch_stats_[static_cast<std::size_t>(w)].proposed +=
        stats[static_cast<std::size_t>(w)].proposed;
    scratch_stats_[static_cast<std::size_t>(w)].accepted +=
        stats[static_cast<std::size_t>(w)].accepted;
  }
}

void CrowdSupervisor::check_health() {
  if (check_health_) DQMC_FAILPOINT("supervisor.health");
  if (!policy_.trip_on_health || !check_health_ || !obs::health().enabled())
    return;
  const std::uint64_t v = obs::health().violations();
  if (v > health_baseline_) {
    health_baseline_ = v;
    throw detail::HealthTripError(v);
  }
  health_baseline_ = v;
}

void CrowdSupervisor::take_checkpoints(idx sweep) {
  std::vector<std::string> fresh(static_cast<std::size_t>(walkers_));
  for (idx w = 0; w < walkers_; ++w) {
    for (int io_attempt = 1;; ++io_attempt) {
      try {
        std::ostringstream out;
        save_checkpoint(out, batch_->engine(w));
        fresh[static_cast<std::size_t>(w)] = out.str();
        break;
      } catch (const std::exception& e) {
        fault::FaultReport& rep = report();
        ++rep.faults;
        ++rep.checkpoint_faults;
        obs::metrics().count("fault.checkpoint_faults");
        const bool retry = io_attempt == 1;
        rep.events.push_back(fault::FaultEvent{
            "checkpoint.save",
            fault::fault_class_name(fault::FaultClass::kIoError),
            retry ? "retry-checkpoint" : "skip-checkpoint", sweep, io_attempt,
            0.0, e.what()});
        if (!retry) return;  // keep the previous lockstep recovery point
      }
    }
  }
  ckpts_ = std::move(fresh);
  ckpt_sweep_ = sweep;
  report().checkpoints += static_cast<std::uint64_t>(walkers_);
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kCheckpoint, "checkpoint.save",
                    "crowd", static_cast<double>(sweep),
                    static_cast<double>(walkers_));
}

void CrowdSupervisor::commit(idx seg_end) {
  for (idx w = 0; w < walkers_; ++w) {
    SimulationResults& r = *partials_[index(w)];
    for (const auto& [sample, sign] :
         scratch_samples_[static_cast<std::size_t>(w)]) {
      r.measurements.add(sample, sign);
    }
    for (const auto& [sample, sign] :
         scratch_dynamic_[static_cast<std::size_t>(w)]) {
      r.dynamic.add(sample, sign);
    }
    r.sweep_stats.proposed +=
        scratch_stats_[static_cast<std::size_t>(w)].proposed;
    r.sweep_stats.accepted +=
        scratch_stats_[static_cast<std::size_t>(w)].accepted;
  }
  discard_scratch();
  done_ = seg_end;
  obs::flight_recorder().set_sweep(static_cast<std::int64_t>(done_));
}

void CrowdSupervisor::discard_scratch() {
  for (auto& s : scratch_samples_) s.clear();
  for (auto& s : scratch_dynamic_) s.clear();
  for (auto& s : scratch_stats_) s = SweepStats{};
}

void CrowdSupervisor::finish() {
  if (!config_.checkpoint_out.empty()) {
    for (idx w = 0; w < walkers_; ++w) {
      fault::FaultReport& rep = report();
      for (int io_attempt = 1;; ++io_attempt) {
        try {
          save_checkpoint_file(config_.checkpoint_out, batch_->engine(w));
          break;
        } catch (const std::exception& e) {
          ++rep.faults;
          ++rep.checkpoint_faults;
          const bool retry = io_attempt == 1;
          rep.events.push_back(fault::FaultEvent{
              "checkpoint.save",
              fault::fault_class_name(fault::FaultClass::kIoError),
              retry ? "retry-checkpoint" : "skip-checkpoint", done_,
              io_attempt, 0.0, e.what()});
          if (!retry) break;
        }
      }
    }
  }
  batch_->compute_backend().synchronize();
  for (idx w = 0; w < walkers_; ++w) {
    DqmcEngine& engine = batch_->engine(w);
    SimulationResults& r = *partials_[index(w)];
    r.strat_stats = engine.strat_stats();
    r.profiler = engine.profiler();
    r.backend_name = batch_->compute_backend().name();
    if (w == 0) r.backend_stats = batch_->compute_backend().stats();
    r.wrap_uploads_skipped =
        engine.wrap_uploads_skipped() + batch_->wrap_uploads_skipped(w);
    r.trajectory_hash = trajectory_hash(engine);
    r.fault_report.final_backend = r.backend_name;
  }
  obs::flight_recorder().set_context(-1, -1);
}

}  // namespace dqmc::core
