#include "dqmc/stats.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/hexio.h"

namespace dqmc::core {

namespace {

/// Standard error over per-bin ratio estimates r_b = os_b / s_b.
Estimate binned_ratio(const std::vector<double>& os,
                      const std::vector<double>& s,
                      const std::vector<idx>& count, idx stride, idx comp) {
  double total_os = 0.0, total_s = 0.0;
  std::vector<double> ratios;
  for (std::size_t b = 0; b < s.size(); ++b) {
    if (count[b] == 0) continue;
    const double os_b = os[b * static_cast<std::size_t>(stride) +
                           static_cast<std::size_t>(comp)];
    total_os += os_b;
    total_s += s[b];
    if (s[b] != 0.0) ratios.push_back(os_b / s[b]);
  }
  Estimate e;
  if (total_s == 0.0) return e;
  e.mean = total_os / total_s;
  if (ratios.size() >= 2) {
    double var = 0.0;
    for (double r : ratios) var += (r - e.mean) * (r - e.mean);
    var /= static_cast<double>(ratios.size() - 1);
    e.error = std::sqrt(var / static_cast<double>(ratios.size()));
  }
  return e;
}

}  // namespace

ScalarAccumulator::ScalarAccumulator(idx bins)
    : bins_(bins),
      os_(static_cast<std::size_t>(bins), 0.0),
      s_(static_cast<std::size_t>(bins), 0.0),
      count_(static_cast<std::size_t>(bins), 0) {
  DQMC_CHECK(bins >= 1);
}

void ScalarAccumulator::add(double o, double s) {
  // Streaming round-robin binning. Contiguous blocks would decorrelate
  // bins better but need the total sample count up front; round-robin is
  // the streaming compromise and is exact for the sign-weighted mean
  // regardless. Cross-check bin adequacy with AutocorrelationEstimator.
  const std::size_t b = static_cast<std::size_t>(samples_ % bins_);
  os_[b] += o * s;
  s_[b] += s;
  count_[b] += 1;
  ++samples_;
}

Estimate ScalarAccumulator::estimate() const {
  return binned_ratio(os_, s_, count_, 1, 0);
}

Estimate ScalarAccumulator::jackknife() const {
  double total_os = 0.0, total_s = 0.0;
  std::vector<std::size_t> used;
  for (std::size_t b = 0; b < s_.size(); ++b) {
    if (count_[b] == 0) continue;
    total_os += os_[b];
    total_s += s_[b];
    used.push_back(b);
  }
  if (total_s == 0.0) return Estimate{};
  const double full = total_os / total_s;
  // Leave-one-bin-out replicates; a bin whose removal zeroes the sign sum
  // cannot form a replicate and is excluded from the resample.
  std::vector<double> theta;
  for (const std::size_t b : used) {
    const double s_rest = total_s - s_[b];
    if (s_rest == 0.0) continue;
    theta.push_back((total_os - os_[b]) / s_rest);
  }
  const double n = static_cast<double>(theta.size());
  if (theta.size() < 2) return estimate();
  double bar = 0.0;
  for (const double t : theta) bar += t;
  bar /= n;
  double var = 0.0;
  for (const double t : theta) var += (t - bar) * (t - bar);
  Estimate e;
  e.mean = n * full - (n - 1.0) * bar;  // bias-corrected
  e.error = std::sqrt((n - 1.0) / n * var);
  return e;
}

Estimate ScalarAccumulator::sign_estimate() const {
  Estimate e;
  double total = 0.0;
  idx n = 0;
  std::vector<double> per_bin;
  for (std::size_t b = 0; b < s_.size(); ++b) {
    if (count_[b] == 0) continue;
    total += s_[b];
    n += count_[b];
    per_bin.push_back(s_[b] / static_cast<double>(count_[b]));
  }
  if (n == 0) return e;
  e.mean = total / static_cast<double>(n);
  if (per_bin.size() >= 2) {
    double var = 0.0;
    for (double r : per_bin) var += (r - e.mean) * (r - e.mean);
    var /= static_cast<double>(per_bin.size() - 1);
    e.error = std::sqrt(var / static_cast<double>(per_bin.size()));
  }
  return e;
}

void ScalarAccumulator::merge(const ScalarAccumulator& other) {
  DQMC_CHECK_MSG(bins_ == other.bins_, "merge: bin counts differ");
  for (std::size_t b = 0; b < os_.size(); ++b) {
    os_[b] += other.os_[b];
    s_[b] += other.s_[b];
    count_[b] += other.count_[b];
  }
  samples_ += other.samples_;
}

void ScalarAccumulator::save(std::ostream& out) const {
  out << "scalar\n";
  hexio::put_u64(out, static_cast<std::uint64_t>(bins_));
  hexio::put_u64(out, static_cast<std::uint64_t>(samples_));
  for (const double v : os_) hexio::put_double(out, v);
  for (const double v : s_) hexio::put_double(out, v);
  for (const idx c : count_) hexio::put_u64(out, static_cast<std::uint64_t>(c));
}

void ScalarAccumulator::load(std::istream& in) {
  hexio::expect(in, "scalar");
  const idx bins = static_cast<idx>(hexio::get_u64(in));
  DQMC_CHECK_MSG(bins == bins_, "ScalarAccumulator::load: bin count differs");
  samples_ = static_cast<idx>(hexio::get_u64(in));
  for (double& v : os_) v = hexio::get_double(in);
  for (double& v : s_) v = hexio::get_double(in);
  for (idx& c : count_) c = static_cast<idx>(hexio::get_u64(in));
}

double AutocorrelationEstimator::rho(idx lag) const {
  const idx n = samples();
  DQMC_CHECK(lag >= 0 && lag < n);
  double mean = 0.0;
  for (double x : samples_) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : samples_) var += (x - mean) * (x - mean);
  if (var == 0.0) return lag == 0 ? 1.0 : 0.0;
  double cov = 0.0;
  for (idx t = 0; t + lag < n; ++t) {
    cov += (samples_[static_cast<std::size_t>(t)] - mean) *
           (samples_[static_cast<std::size_t>(t + lag)] - mean);
  }
  // Biased normalization (by n) keeps the estimator positive-definite.
  return cov / var;
}

double AutocorrelationEstimator::tau_integrated(double c) const {
  const idx n = samples();
  if (n < 4) return 0.5;
  double tau = 0.5;
  const idx max_lag = n / 4;
  for (idx w = 1; w <= max_lag; ++w) {
    tau += rho(w);
    if (static_cast<double>(w) >= c * tau) break;  // Sokal window
  }
  return std::max(tau, 0.5);
}

ArrayAccumulator::ArrayAccumulator(idx size, idx bins)
    : size_(size),
      bins_(bins),
      os_(static_cast<std::size_t>(size) * static_cast<std::size_t>(bins), 0.0),
      s_(static_cast<std::size_t>(bins), 0.0),
      count_(static_cast<std::size_t>(bins), 0) {
  DQMC_CHECK(size >= 1 && bins >= 1);
}

void ArrayAccumulator::add(const double* o, double s) {
  const std::size_t b = static_cast<std::size_t>(samples_ % bins_);
  double* dst = os_.data() + b * static_cast<std::size_t>(size_);
  for (idx i = 0; i < size_; ++i) dst[i] += o[i] * s;
  s_[b] += s;
  count_[b] += 1;
  ++samples_;
}

Estimate ArrayAccumulator::estimate(idx component) const {
  DQMC_CHECK(component >= 0 && component < size_);
  return binned_ratio(os_, s_, count_, size_, component);
}

void ArrayAccumulator::merge(const ArrayAccumulator& other) {
  DQMC_CHECK_MSG(size_ == other.size_ && bins_ == other.bins_,
                 "merge: accumulator shapes differ");
  for (std::size_t i = 0; i < os_.size(); ++i) os_[i] += other.os_[i];
  for (std::size_t b = 0; b < s_.size(); ++b) {
    s_[b] += other.s_[b];
    count_[b] += other.count_[b];
  }
  samples_ += other.samples_;
}

void ArrayAccumulator::save(std::ostream& out) const {
  out << "array\n";
  hexio::put_u64(out, static_cast<std::uint64_t>(size_));
  hexio::put_u64(out, static_cast<std::uint64_t>(bins_));
  hexio::put_u64(out, static_cast<std::uint64_t>(samples_));
  for (const double v : os_) hexio::put_double(out, v);
  for (const double v : s_) hexio::put_double(out, v);
  for (const idx c : count_) hexio::put_u64(out, static_cast<std::uint64_t>(c));
}

void ArrayAccumulator::load(std::istream& in) {
  hexio::expect(in, "array");
  const idx size = static_cast<idx>(hexio::get_u64(in));
  const idx bins = static_cast<idx>(hexio::get_u64(in));
  DQMC_CHECK_MSG(size == size_ && bins == bins_,
                 "ArrayAccumulator::load: shape differs");
  samples_ = static_cast<idx>(hexio::get_u64(in));
  for (double& v : os_) v = hexio::get_double(in);
  for (double& v : s_) v = hexio::get_double(in);
  for (idx& c : count_) c = static_cast<idx>(hexio::get_u64(in));
}

linalg::Vector ArrayAccumulator::means() const {
  linalg::Vector v(size_);
  for (idx i = 0; i < size_; ++i) v[i] = estimate(i).mean;
  return v;
}

linalg::Vector ArrayAccumulator::errors() const {
  linalg::Vector v(size_);
  for (idx i = 0; i < size_; ++i) v[i] = estimate(i).error;
  return v;
}

}  // namespace dqmc::core
