#include "dqmc/cluster_store.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dqmc::core {

ClusterStore::ClusterStore(const BMatrixFactory& factory, const HSField& field,
                           idx cluster_size)
    : factory_(factory), field_(field), cluster_size_(cluster_size) {
  DQMC_CHECK(cluster_size >= 1);
  DQMC_CHECK(field.sites() == factory.n());
  num_clusters_ = (field.slices() + cluster_size - 1) / cluster_size;
  for (auto& v : clusters_)
    v.assign(static_cast<std::size_t>(num_clusters_), Matrix());
}

ClusterStore::~ClusterStore() {
  // Drain a deferred rebuild before the storage it writes goes away. The
  // group wait may rethrow a captured task error; destruction must not.
  try {
    materialize();
  } catch (...) {
  }
}

idx ClusterStore::cluster_end(idx c) const {
  return std::min(field_.slices(), (c + 1) * cluster_size_);
}

void ClusterStore::attach_backend(backend::BackendBChain* up,
                                  backend::BackendBChain* dn) {
  DQMC_CHECK_MSG((up == nullptr) == (dn == nullptr),
                 "attach_backend needs both spin chains or neither");
  if (up) {
    DQMC_CHECK(up->n() == factory_.n() && dn->n() == factory_.n());
  }
  chain_[0] = up;
  chain_[1] = dn;
}

Matrix ClusterStore::cpu_cluster_product(Spin s, idx c) const {
  const idx begin = cluster_begin(c), end = cluster_end(c);
  Matrix prod = factory_.make_b(field_.slice(begin), s);
  Matrix next(factory_.n(), factory_.n());
  for (idx l = begin + 1; l < end; ++l) {
    // prod <- B_l * prod (one GEMM + row scaling via the factory).
    factory_.apply_b_left(field_.slice(l), s, prod, next);
    std::swap(prod, next);
  }
  return prod;
}

void ClusterStore::rebuild_now(idx c) {
  obs::TraceSpan span("cluster_rebuild");
  span.arg("cluster", static_cast<double>(c));
  Stopwatch watch;
  for (Spin s : hubbard::kSpins) {
    const int si = spin_index(s);
    Matrix result;
    if (chain_[si]) {
      std::vector<linalg::Vector> vs;
      for (idx l = cluster_begin(c); l < cluster_end(c); ++l)
        vs.push_back(factory_.v_diagonal(field_.slice(l), s));
      result = chain_[si]->cluster_product(vs);
    } else {
      result = cpu_cluster_product(s, c);
    }
    clusters_[si][static_cast<std::size_t>(c)] = std::move(result);
  }
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    const double s = watch.seconds();
    reg.count("cluster.rebuilds");
    reg.observe("cluster.rebuild_ms", s * 1e3);
    // Per spin: (len-1) GEMMs of 2 n^3 flops dominate the product.
    const double n = static_cast<double>(factory_.n());
    const double len = static_cast<double>(cluster_end(c) - cluster_begin(c));
    if (s > 0.0 && len > 1.0) {
      reg.observe("cluster.gflops", 2.0 * (len - 1.0) * 2.0 * n * n * n / s / 1e9);
    }
  }
}

void ClusterStore::rebuild(idx c, Profiler* prof) {
  DQMC_CHECK(c >= 0 && c < num_clusters_);
  materialize();
  ScopedPhase phase(prof, Phase::kClustering);
  rebuild_now(c);
}

void ClusterStore::rebuild_all(Profiler* prof) {
  for (idx c = 0; c < num_clusters_; ++c) rebuild(c, prof);
}

void ClusterStore::rebuild_async(idx c) {
  DQMC_CHECK(c >= 0 && c < num_clusters_);
  materialize();
  std::lock_guard lock(pending_mutex_);
  pending_cluster_.store(c, std::memory_order_release);
  pending_group_ = std::make_shared<par::TaskGroup>();
  pending_group_->run([this, c] {
    Stopwatch watch;
    rebuild_now(c);
    std::lock_guard plock(profile_mutex_);
    deferred_seconds_ += watch.seconds();
  });
}

void ClusterStore::materialize() {
  std::shared_ptr<par::TaskGroup> group;
  {
    std::lock_guard lock(pending_mutex_);
    group = pending_group_;
  }
  if (!group) return;
  // Wait WITHOUT holding pending_mutex_: the wait helps execute queued
  // tasks, and one of those may call back into this store (the other spin's
  // stratification reaching the pending factor).
  group->wait();
  std::lock_guard lock(pending_mutex_);
  if (pending_group_ == group) {
    pending_group_.reset();
    pending_cluster_.store(-1, std::memory_order_release);
  }
}

void ClusterStore::drain_deferred_profile(Profiler* prof) {
  double seconds = 0.0;
  {
    std::lock_guard lock(profile_mutex_);
    std::swap(seconds, deferred_seconds_);
  }
  if (prof && seconds > 0.0) prof->add(Phase::kClustering, seconds);
}

void ClusterStore::install_cluster(Spin s, idx c, Matrix product) {
  DQMC_CHECK(c >= 0 && c < num_clusters_);
  DQMC_CHECK(product.rows() == factory_.n() && product.cols() == factory_.n());
  materialize();
  clusters_[spin_index(s)][static_cast<std::size_t>(c)] = std::move(product);
}

const Matrix& ClusterStore::cluster(Spin s, idx c) {
  DQMC_CHECK(c >= 0 && c < num_clusters_);
  if (pending_cluster_.load(std::memory_order_acquire) == c) materialize();
  return clusters_[spin_index(s)][static_cast<std::size_t>(c)];
}

const Matrix& ClusterStore::factor(Spin s, idx start, idx i) {
  const idx c = (start + i) % num_clusters_;
  if (pending_cluster_.load(std::memory_order_acquire) == c) materialize();
  const Matrix& m = clusters_[spin_index(s)][static_cast<std::size_t>(c)];
  DQMC_CHECK_MSG(!m.empty(), "cluster not built; call rebuild_all first");
  return m;
}

std::vector<const Matrix*> ClusterStore::rotation(Spin s, idx start) {
  DQMC_CHECK(start >= 0 && start < num_clusters_);
  materialize();
  std::vector<const Matrix*> order;
  order.reserve(static_cast<std::size_t>(num_clusters_));
  for (idx i = 0; i < num_clusters_; ++i) {
    const idx c = (start + i) % num_clusters_;
    const Matrix& m = clusters_[spin_index(s)][static_cast<std::size_t>(c)];
    DQMC_CHECK_MSG(!m.empty(), "cluster not built; call rebuild_all first");
    order.push_back(&m);
  }
  return order;
}

}  // namespace dqmc::core
