#include "dqmc/cluster_store.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dqmc::core {

ClusterStore::ClusterStore(const BMatrixFactory& factory, const HSField& field,
                           idx cluster_size)
    : factory_(factory), field_(field), cluster_size_(cluster_size) {
  DQMC_CHECK(cluster_size >= 1);
  DQMC_CHECK(field.sites() == factory.n());
  num_clusters_ = (field.slices() + cluster_size - 1) / cluster_size;
  for (auto& v : clusters_)
    v.assign(static_cast<std::size_t>(num_clusters_), Matrix());
}

idx ClusterStore::cluster_end(idx c) const {
  return std::min(field_.slices(), (c + 1) * cluster_size_);
}

Matrix ClusterStore::cpu_cluster_product(Spin s, idx c) const {
  const idx begin = cluster_begin(c), end = cluster_end(c);
  Matrix prod = factory_.make_b(field_.slice(begin), s);
  Matrix next(factory_.n(), factory_.n());
  for (idx l = begin + 1; l < end; ++l) {
    // prod <- B_l * prod (one GEMM + row scaling via the factory).
    factory_.apply_b_left(field_.slice(l), s, prod, next);
    std::swap(prod, next);
  }
  return prod;
}

void ClusterStore::rebuild(idx c, Profiler* prof) {
  DQMC_CHECK(c >= 0 && c < num_clusters_);
  ScopedPhase phase(prof, Phase::kClustering);
  obs::TraceSpan span("cluster_rebuild");
  span.arg("cluster", static_cast<double>(c));
  Stopwatch watch;
  for (Spin s : hubbard::kSpins) {
    Matrix result;
    if (gpu_) {
      std::vector<linalg::Vector> vs;
      for (idx l = cluster_begin(c); l < cluster_end(c); ++l)
        vs.push_back(factory_.v_diagonal(field_.slice(l), s));
      result = gpu_->cluster_product(vs);
    } else {
      result = cpu_cluster_product(s, c);
    }
    clusters_[spin_index(s)][static_cast<std::size_t>(c)] = std::move(result);
  }
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    const double s = watch.seconds();
    reg.count("cluster.rebuilds");
    reg.observe("cluster.rebuild_ms", s * 1e3);
    // Per spin: (len-1) GEMMs of 2 n^3 flops dominate the product.
    const double n = static_cast<double>(factory_.n());
    const double len = static_cast<double>(cluster_end(c) - cluster_begin(c));
    if (s > 0.0 && len > 1.0) {
      reg.observe("cluster.gflops", 2.0 * (len - 1.0) * 2.0 * n * n * n / s / 1e9);
    }
  }
}

void ClusterStore::rebuild_all(Profiler* prof) {
  for (idx c = 0; c < num_clusters_; ++c) rebuild(c, prof);
}

std::vector<const Matrix*> ClusterStore::rotation(Spin s, idx start) const {
  DQMC_CHECK(start >= 0 && start < num_clusters_);
  std::vector<const Matrix*> order;
  order.reserve(static_cast<std::size_t>(num_clusters_));
  for (idx i = 0; i < num_clusters_; ++i) {
    const idx c = (start + i) % num_clusters_;
    const Matrix& m = cluster(s, c);
    DQMC_CHECK_MSG(!m.empty(), "cluster not built; call rebuild_all first");
    order.push_back(&m);
  }
  return order;
}

}  // namespace dqmc::core
