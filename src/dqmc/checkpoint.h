// Checkpointing: serialize the Markov chain state (HS field + RNG + sign)
// so long runs — the paper's production simulations take 36 hours — can be
// interrupted and resumed bit-exactly.
//
// Format: a small self-describing text header followed by the field as rows
// of +/- characters. Deterministic and platform-independent.
#pragma once

#include <iosfwd>
#include <string>

#include "dqmc/engine.h"

namespace dqmc::core {

/// Serialize the engine's Markov state. Does NOT record the model/lattice
/// configuration — the loader must construct an engine with the same
/// parameters (a mismatch in dimensions is detected and throws).
void save_checkpoint(std::ostream& out, DqmcEngine& engine);
void save_checkpoint_file(const std::string& path, DqmcEngine& engine);

/// Restore state saved by save_checkpoint into `engine` (same lattice and
/// slice count required) and resume() it: clusters and Green's functions
/// are rebuilt, after which sweeps continue the original trajectory
/// bit-exactly. Throws on format or dimension mismatch.
void load_checkpoint(std::istream& in, DqmcEngine& engine);
void load_checkpoint_file(const std::string& path, DqmcEngine& engine);

}  // namespace dqmc::core
