// Checkpointing: serialize the Markov chain state (HS field + RNG + sign)
// so long runs — the paper's production simulations take 36 hours — can be
// interrupted and resumed bit-exactly.
//
// Two formats, both small self-describing text (deterministic and
// platform-independent; doubles travel as IEEE-754 bit patterns in hex):
//   v1 — sweep boundary: field + RNG + sign. Loading resume()s the engine
//        (clusters and G re-derived from the field, which is exact there).
//   v2 — mid-sweep slice boundary: v1 plus the resume position and the two
//        wrapped Green's functions. Loading RESTORES G instead of
//        re-deriving it — re-stratifying mid-cluster would hand the next
//        Metropolis pass a cleaner G than the interrupted run's wrapped one
//        and fork the trajectory (see DqmcEngine::resume_mid_sweep).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "dqmc/engine.h"

namespace dqmc::core {

/// Serialize the engine's Markov state at a sweep boundary (v1). Does NOT
/// record the model/lattice configuration — the loader must construct an
/// engine with the same parameters (a mismatch in dimensions is detected
/// and throws). Fail point: "checkpoint.save".
void save_checkpoint(std::ostream& out, DqmcEngine& engine);
void save_checkpoint_file(const std::string& path, DqmcEngine& engine);

/// Serialize mid-sweep state at the boundary after a slice's Metropolis
/// pass (v2): call from a sweep's SliceHook with `next_slice` = the hook's
/// slice + 1. The delayed-update buffers are flushed at that point, so the
/// two wrapped Green's matrices capture them completely.
void save_checkpoint_mid_sweep(std::ostream& out, DqmcEngine& engine,
                               idx next_slice);
void save_checkpoint_mid_sweep_file(const std::string& path,
                                    DqmcEngine& engine, idx next_slice);

/// Restore state saved by either save_checkpoint flavor into `engine`
/// (same lattice and slice count required): v1 resume()s, v2
/// resume_mid_sweep()s — after which sweeps continue the original
/// trajectory bit-exactly. Throws on format or dimension mismatch.
/// Fail point: "checkpoint.load".
void load_checkpoint(std::istream& in, DqmcEngine& engine);
void load_checkpoint_file(const std::string& path, DqmcEngine& engine);

/// Order-sensitive FNV-1a digest of the engine's Markov state: field, RNG
/// state, sign, and both flushed Green's functions (bit patterns). Two
/// engines on the same trajectory agree; any divergence — field flip, RNG
/// draw, one ULP in G — changes it. Recorded in the run manifest and the
/// golden regression fixtures.
std::uint64_t trajectory_hash(DqmcEngine& engine);

}  // namespace dqmc::core
