#include "dqmc/checkpoint.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace dqmc::core {

namespace {
constexpr const char* kMagic = "dqmcpp-checkpoint";
constexpr int kVersion = 1;
}  // namespace

void save_checkpoint(std::ostream& out, DqmcEngine& engine) {
  out << kMagic << " v" << kVersion << "\n";
  out << "slices " << engine.slices() << "\n";
  out << "sites " << engine.n() << "\n";
  std::uint64_t s[4];
  engine.rng().state(s);
  out << "rng " << s[0] << " " << s[1] << " " << s[2] << " " << s[3] << "\n";
  out << "sign " << engine.config_sign() << "\n";
  out << "field\n";
  const HSField& field = engine.field();
  for (idx l = 0; l < field.slices(); ++l) {
    for (idx i = 0; i < field.sites(); ++i) {
      out << (field(l, i) > 0 ? '+' : '-');
    }
    out << "\n";
  }
  DQMC_CHECK_MSG(out.good(), "checkpoint write failed");
}

void save_checkpoint_file(const std::string& path, DqmcEngine& engine) {
  std::ofstream out(path);
  DQMC_CHECK_MSG(out.good(), "cannot open checkpoint for writing: " + path);
  save_checkpoint(out, engine);
}

void load_checkpoint(std::istream& in, DqmcEngine& engine) {
  std::string magic, version;
  in >> magic >> version;
  DQMC_CHECK_MSG(magic == kMagic, "not a dqmcpp checkpoint");
  DQMC_CHECK_MSG(version == "v1", "unsupported checkpoint version " + version);

  std::string key;
  idx slices = 0, sites = 0;
  in >> key >> slices;
  DQMC_CHECK_MSG(key == "slices", "malformed checkpoint (slices)");
  in >> key >> sites;
  DQMC_CHECK_MSG(key == "sites", "malformed checkpoint (sites)");
  DQMC_CHECK_MSG(slices == engine.slices() && sites == engine.n(),
                 "checkpoint dimensions do not match the engine");

  std::uint64_t s[4];
  in >> key >> s[0] >> s[1] >> s[2] >> s[3];
  DQMC_CHECK_MSG(key == "rng", "malformed checkpoint (rng)");

  int sign = 0;
  in >> key >> sign;
  DQMC_CHECK_MSG(key == "sign" && (sign == 1 || sign == -1),
                 "malformed checkpoint (sign)");

  in >> key;
  DQMC_CHECK_MSG(key == "field", "malformed checkpoint (field)");
  HSField& field = engine.field();
  for (idx l = 0; l < slices; ++l) {
    std::string row;
    in >> row;
    DQMC_CHECK_MSG(static_cast<idx>(row.size()) == sites,
                   "malformed checkpoint field row " + std::to_string(l));
    for (idx i = 0; i < sites; ++i) {
      const char c = row[static_cast<std::size_t>(i)];
      DQMC_CHECK_MSG(c == '+' || c == '-', "bad field character");
      field.set(l, i, c == '+' ? hubbard::hs_t{1} : hubbard::hs_t{-1});
    }
  }
  DQMC_CHECK_MSG(!in.fail(), "checkpoint read failed");

  engine.rng().set_state(s);
  engine.resume();
  // resume() recomputes the sign from scratch; it must agree with the
  // recorded one (a mismatch indicates corruption).
  DQMC_CHECK_MSG(engine.config_sign() == sign,
                 "checkpoint sign mismatch after resume");
}

void load_checkpoint_file(const std::string& path, DqmcEngine& engine) {
  std::ifstream in(path);
  DQMC_CHECK_MSG(in.good(), "cannot open checkpoint: " + path);
  load_checkpoint(in, engine);
}

}  // namespace dqmc::core
