#include "dqmc/checkpoint.h"

#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fault/failpoint.h"

namespace dqmc::core {

namespace {

constexpr const char* kMagic = "dqmcpp-checkpoint";

// Doubles travel as IEEE-754 bit patterns: 16 lowercase hex digits per
// value, so the round trip is exact on any platform and the file diffs
// cleanly.
void write_matrix_hex(std::ostream& out, const linalg::Matrix& m) {
  static const char* digits = "0123456789abcdef";
  const idx total = m.rows() * m.cols();
  const double* p = m.data();
  char word[17];
  word[16] = '\0';
  for (idx i = 0; i < total; ++i) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(p[i]);
    for (int d = 15; d >= 0; --d) {
      word[d] = digits[bits & 0xf];
      bits >>= 4;
    }
    out << word << (((i + 1) % m.rows() == 0) ? '\n' : ' ');
  }
}

void read_matrix_hex(std::istream& in, linalg::Matrix& m) {
  const idx total = m.rows() * m.cols();
  double* p = m.data();
  std::string word;
  for (idx i = 0; i < total; ++i) {
    in >> word;
    DQMC_CHECK_MSG(word.size() == 16, "malformed checkpoint greens word");
    std::uint64_t bits = 0;
    for (const char c : word) {
      const int digit = c >= '0' && c <= '9'   ? c - '0'
                        : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                               : -1;
      DQMC_CHECK_MSG(digit >= 0, "malformed checkpoint greens word");
      bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    p[i] = std::bit_cast<double>(bits);
  }
}

void write_header(std::ostream& out, DqmcEngine& engine, int version) {
  out << kMagic << " v" << version << "\n";
  out << "slices " << engine.slices() << "\n";
  out << "sites " << engine.n() << "\n";
  std::uint64_t s[4];
  engine.rng().state(s);
  out << "rng " << s[0] << " " << s[1] << " " << s[2] << " " << s[3] << "\n";
  out << "sign " << engine.config_sign() << "\n";
}

void write_field(std::ostream& out, const HSField& field) {
  out << "field\n";
  for (idx l = 0; l < field.slices(); ++l) {
    for (idx i = 0; i < field.sites(); ++i) {
      out << (field(l, i) > 0 ? '+' : '-');
    }
    out << "\n";
  }
}

void read_field(std::istream& in, HSField& field, idx slices, idx sites) {
  for (idx l = 0; l < slices; ++l) {
    std::string row;
    in >> row;
    DQMC_CHECK_MSG(static_cast<idx>(row.size()) == sites,
                   "malformed checkpoint field row " + std::to_string(l));
    for (idx i = 0; i < sites; ++i) {
      const char c = row[static_cast<std::size_t>(i)];
      DQMC_CHECK_MSG(c == '+' || c == '-', "bad field character");
      field.set(l, i, c == '+' ? hubbard::hs_t{1} : hubbard::hs_t{-1});
    }
  }
}

}  // namespace

void save_checkpoint(std::ostream& out, DqmcEngine& engine) {
  DQMC_FAILPOINT("checkpoint.save");
  write_header(out, engine, /*version=*/1);
  write_field(out, engine.field());
  DQMC_CHECK_MSG(out.good(), "checkpoint write failed");
}

void save_checkpoint_file(const std::string& path, DqmcEngine& engine) {
  std::ofstream out(path);
  DQMC_CHECK_MSG(out.good(), "cannot open checkpoint for writing: " + path);
  save_checkpoint(out, engine);
}

void save_checkpoint_mid_sweep(std::ostream& out, DqmcEngine& engine,
                               idx next_slice) {
  DQMC_FAILPOINT("checkpoint.save");
  DQMC_CHECK_MSG(next_slice >= 0 && next_slice <= engine.slices(),
                 "checkpoint position out of range");
  write_header(out, engine, /*version=*/2);
  out << "position " << next_slice << "\n";
  out << "greens\n";
  write_matrix_hex(out, engine.greens(Spin::Up));
  write_matrix_hex(out, engine.greens(Spin::Down));
  write_field(out, engine.field());
  DQMC_CHECK_MSG(out.good(), "checkpoint write failed");
}

void save_checkpoint_mid_sweep_file(const std::string& path,
                                    DqmcEngine& engine, idx next_slice) {
  std::ofstream out(path);
  DQMC_CHECK_MSG(out.good(), "cannot open checkpoint for writing: " + path);
  save_checkpoint_mid_sweep(out, engine, next_slice);
}

void load_checkpoint(std::istream& in, DqmcEngine& engine) {
  DQMC_FAILPOINT("checkpoint.load");
  std::string magic, version;
  in >> magic >> version;
  DQMC_CHECK_MSG(magic == kMagic, "not a dqmcpp checkpoint");
  DQMC_CHECK_MSG(version == "v1" || version == "v2",
                 "unsupported checkpoint version " + version);
  const bool mid_sweep = version == "v2";

  std::string key;
  idx slices = 0, sites = 0;
  in >> key >> slices;
  DQMC_CHECK_MSG(key == "slices", "malformed checkpoint (slices)");
  in >> key >> sites;
  DQMC_CHECK_MSG(key == "sites", "malformed checkpoint (sites)");
  DQMC_CHECK_MSG(slices == engine.slices() && sites == engine.n(),
                 "checkpoint dimensions do not match the engine");

  std::uint64_t s[4];
  in >> key >> s[0] >> s[1] >> s[2] >> s[3];
  DQMC_CHECK_MSG(key == "rng", "malformed checkpoint (rng)");

  int sign = 0;
  in >> key >> sign;
  DQMC_CHECK_MSG(key == "sign" && (sign == 1 || sign == -1),
                 "malformed checkpoint (sign)");

  idx position = 0;
  linalg::Matrix gup, gdn;
  if (mid_sweep) {
    in >> key >> position;
    DQMC_CHECK_MSG(key == "position" && position >= 0 && position <= slices,
                   "malformed checkpoint (position)");
    in >> key;
    DQMC_CHECK_MSG(key == "greens", "malformed checkpoint (greens)");
    gup.resize(sites, sites);
    gdn.resize(sites, sites);
    read_matrix_hex(in, gup);
    read_matrix_hex(in, gdn);
  }

  in >> key;
  DQMC_CHECK_MSG(key == "field", "malformed checkpoint (field)");
  read_field(in, engine.field(), slices, sites);
  DQMC_CHECK_MSG(!in.fail(), "checkpoint read failed");

  engine.rng().set_state(s);
  if (mid_sweep) {
    engine.resume_mid_sweep(position, std::move(gup), std::move(gdn));
  } else {
    engine.resume();
  }
  // Both resume flavors recompute the sign from scratch; it must agree
  // with the recorded one (a mismatch indicates corruption).
  DQMC_CHECK_MSG(engine.config_sign() == sign,
                 "checkpoint sign mismatch after resume");
}

void load_checkpoint_file(const std::string& path, DqmcEngine& engine) {
  std::ifstream in(path);
  DQMC_CHECK_MSG(in.good(), "cannot open checkpoint: " + path);
  load_checkpoint(in, engine);
}

std::uint64_t trajectory_hash(DqmcEngine& engine) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;  // FNV prime
    }
  };
  const HSField& field = engine.field();
  for (idx l = 0; l < field.slices(); ++l) {
    for (idx i = 0; i < field.sites(); ++i) {
      mix(field(l, i) > 0 ? 1u : 0u);
    }
  }
  std::uint64_t s[4];
  engine.rng().state(s);
  for (const std::uint64_t w : s) mix(w);
  mix(engine.config_sign() > 0 ? 1u : 0u);
  for (const Spin spin : hubbard::kSpins) {
    const linalg::Matrix& g = engine.greens(spin);
    const double* p = g.data();
    const idx total = g.rows() * g.cols();
    for (idx i = 0; i < total; ++i) mix(std::bit_cast<std::uint64_t>(p[i]));
  }
  return h;
}

}  // namespace dqmc::core
