#include "gpusim/chain.h"

namespace dqmc::gpu {

GpuBChain::GpuBChain(Device& device, ConstMatrixView b, ConstMatrixView binv)
    : device_(device), n_(b.rows()) {
  DQMC_CHECK(b.rows() == b.cols());
  DQMC_CHECK(binv.rows() == n_ && binv.cols() == n_);
  b_ = device_.alloc_matrix(n_, n_);
  binv_ = device_.alloc_matrix(n_, n_);
  t_ = device_.alloc_matrix(n_, n_);
  a_ = device_.alloc_matrix(n_, n_);
  g_ = device_.alloc_matrix(n_, n_);
  v_ = device_.alloc_vector(n_);
  v_inv_ = device_.alloc_vector(n_);
  device_.set_matrix(b, b_);
  device_.set_matrix(binv, binv_);
}

Matrix GpuBChain::cluster_product(const std::vector<Vector>& vs,
                                  bool fused_kernel) {
  DQMC_CHECK_MSG(!vs.empty(), "cluster_product needs at least one factor");
  for (const Vector& v : vs) DQMC_CHECK(v.size() == n_);

  // A = diag(vs[0]) * B    (Algorithm 4/5 first step)
  device_.set_vector(vs[0].data(), n_, v_);
  if (fused_kernel) {
    device_.scale_rows_kernel(v_, b_, a_);
  } else {
    device_.scale_rows_rowwise(v_, b_, a_);
  }

  // for l = 1..k-1: T <- B * A;  A <- diag(vs[l]) * T
  for (std::size_t l = 1; l < vs.size(); ++l) {
    device_.gemm(Trans::No, Trans::No, 1.0, b_, a_, 0.0, t_);
    device_.set_vector(vs[l].data(), n_, v_);
    if (fused_kernel) {
      device_.scale_rows_kernel(v_, t_, a_);
    } else {
      device_.scale_rows_rowwise(v_, t_, a_);
    }
  }

  Matrix result(n_, n_);
  device_.get_matrix(a_, result);
  return result;
}

void GpuBChain::wrap(MatrixView g, const Vector& v, bool fused_kernel) {
  DQMC_CHECK(g.rows() == n_ && g.cols() == n_);
  DQMC_CHECK(v.size() == n_);

  device_.set_matrix(g, g_);
  device_.set_vector(v.data(), n_, v_);
  // T = B * G; G = T * B^{-1}; G = diag(v) G diag(v)^{-1}.
  device_.gemm(Trans::No, Trans::No, 1.0, b_, g_, 0.0, t_);
  device_.gemm(Trans::No, Trans::No, 1.0, t_, binv_, 0.0, g_);
  if (fused_kernel) {
    device_.wrap_scale_kernel(v_, g_);
  } else {
    // Algorithm 6: a row sweep and a column sweep of cublasDscal calls.
    device_.scale_rows_rowwise(v_, g_, g_);
    Vector vinv(n_);
    for (idx i = 0; i < n_; ++i) vinv[i] = 1.0 / v[i];
    device_.set_vector(vinv.data(), n_, v_inv_);
    // Column scaling modeled as one cublasDscal launch per column.
    device_.scale_cols_rowwise(v_inv_, g_, g_);
  }
  device_.get_matrix(g_, g);
}

double cluster_product_flops(idx n, idx k) {
  const double nn = static_cast<double>(n);
  return (static_cast<double>(k) - 1.0) * 2.0 * nn * nn * nn +
         static_cast<double>(k) * nn * nn;
}

double wrap_flops(idx n) {
  const double nn = static_cast<double>(n);
  return 2.0 * 2.0 * nn * nn * nn + 2.0 * nn * nn;
}

}  // namespace dqmc::gpu
