// The device command stream: one dedicated thread executing submitted
// commands in strict FIFO order, modeling a single CUDA stream. Replaces
// the legacy general-purpose thread pool — the stream never steals, never
// reorders, and exists for the lifetime of the Device.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace dqmc::gpu {

class StreamThread {
 public:
  StreamThread();
  ~StreamThread();

  StreamThread(const StreamThread&) = delete;
  StreamThread& operator=(const StreamThread&) = delete;

  /// Enqueue a command; it runs on the stream thread after everything
  /// submitted before it. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Block until every command submitted so far has executed.
  void wait_idle();

 private:
  void run();

  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool busy_ = false;
  bool stopping_ = false;
  // Declared last: the worker starts in the constructor and immediately
  // touches the queue state above, which must already be constructed.
  std::thread worker_;
};

}  // namespace dqmc::gpu
