// The device command stream: one dedicated thread executing submitted
// commands in strict FIFO order, modeling a single CUDA stream. Replaces
// the legacy general-purpose thread pool — the stream never steals, never
// reorders, and exists for the lifetime of the Device.
//
// The stream thread runs with par::set_thread_serial(true): it must stay a
// pure producer the task runtime can wait on (wait_idle() from a runtime
// task is legal), so it never enters the shared runtime itself.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace dqmc::gpu {

class StreamThread {
 public:
  StreamThread();
  ~StreamThread();

  StreamThread(const StreamThread&) = delete;
  StreamThread& operator=(const StreamThread&) = delete;

  /// Enqueue a command; it runs on the stream thread after everything
  /// submitted before it. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Block until every command submitted so far has executed. If the
  /// "gpusim.stream" fail point fired on the stream thread since the last
  /// wait, throws fault::InjectedFault here — the stream thread itself
  /// never throws, so injected device faults surface at the next sync
  /// point, the way a sticky CUDA async error surfaces at cudaStreamSync.
  /// The pending fault is cleared by the throw; the stream stays usable.
  void wait_idle();

 private:
  void run();

  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool busy_ = false;
  bool stopping_ = false;
  bool fault_pending_ = false;       // "gpusim.stream" fired, not yet thrown
  std::uint64_t fault_hit_ = 0;      // hit number that fired
  // Declared last: the worker starts in the constructor and immediately
  // touches the queue state above, which must already be constructed.
  std::thread worker_;
};

}  // namespace dqmc::gpu
