// Cost model of the simulated GPU device.
//
// SUBSTITUTION (see DESIGN.md): the paper's Section VI runs on an Nvidia
// Tesla C2050 through CUBLAS. This machine has no GPU, so the device here is
// *simulated*: every operation computes bit-identical results on the host,
// while a virtual clock advances by the modeled cost of the same operation
// on the device. The model captures exactly the effects the paper's Fig. 9
// and 10 are about:
//   * device GEMM is much faster than host GEMM but needs PCIe transfers,
//   * clustering amortizes one transfer over k GEMMs, wrapping over only 2,
//   * a fused scaling kernel (Alg. 5/7) is memory-bound at device bandwidth,
//   * per-row cublasDscal calls (Alg. 4) pay a launch per row and lose
//     coalescing — the inefficiency the paper's custom kernel removes.
// Default constants follow the C2050 datasheet and common PCIe 2.0 hosts.
#pragma once

#include "linalg/matrix.h"

namespace dqmc::gpu {

using linalg::idx;

/// Tunable constants of the simulated device.
struct DeviceSpec {
  /// Peak sustained DGEMM rate for large matrices (GFlop/s).
  double gemm_peak_gflops = 300.0;
  /// Matrix dimension at which DGEMM reaches half of peak (rate ramps as
  /// n^3 / (n^3 + half_rate_dim^3), matching the measured CUBLAS ramp).
  double gemm_half_rate_dim = 160.0;
  /// Device memory bandwidth for fused, coalesced kernels (GB/s).
  double mem_bandwidth_gbs = 110.0;
  /// Effective bandwidth for non-coalesced row-by-row access (GB/s) —
  /// the Algorithm 4 penalty.
  double noncoalesced_bandwidth_gbs = 14.0;
  /// Kernel / library-call launch overhead (seconds).
  double kernel_launch_s = 5e-6;
  /// Host <-> device transfer bandwidth (GB/s, PCIe 2.0 x16 effective).
  double pcie_bandwidth_gbs = 5.5;
  /// Per-transfer latency (seconds).
  double transfer_latency_s = 10e-6;

  /// Factory mirroring the paper's hardware (the defaults).
  static DeviceSpec tesla_c2050() { return DeviceSpec{}; }

  /// Modeled wall time of C(m x n) += A(m x k) B(k x n) on the device.
  double gemm_seconds(idx m, idx n, idx k) const;
  /// Modeled wall time of a cublasDgemmBatched-style call: `batch`
  /// same-shape GEMMs in ONE launch whose occupancy ramp sees the
  /// aggregate volume — small matrices that individually sit far down the
  /// n^3 ramp fill the device together. Equals gemm_seconds at batch = 1.
  double gemm_batched_seconds(idx m, idx n, idx k, idx batch) const;
  /// Modeled wall time of a fused kernel touching `bytes` of device memory.
  double fused_kernel_seconds(double bytes) const;
  /// Modeled wall time of one row-by-row dscal pass over an m x n matrix
  /// issued as m separate level-1 calls (Algorithm 4 path).
  double rowwise_scal_seconds(idx m, idx n) const;
  /// Modeled wall time of one checkerboard apply over an n x cols operand:
  /// one fused kernel per bond group (the groups are sequentially
  /// dependent), each memory-bound — every bond streams two operand
  /// rows/columns (read + write). `scaled` adds the diagonal-scale pass.
  /// O(bonds x cols) traffic, the structured alternative to gemm_seconds.
  double cb_apply_seconds(idx n, idx bonds, idx groups, idx cols,
                          bool scaled) const;
  /// Batched variant: same launch count (one kernel per group covers the
  /// whole crowd), `batch` times the traffic. Equals cb_apply_seconds at
  /// batch = 1.
  double cb_apply_batched_seconds(idx n, idx bonds, idx groups, idx cols,
                                  bool scaled, idx batch) const;
  /// Modeled wall time of moving `bytes` across PCIe (either direction).
  double transfer_seconds(double bytes) const;
};

}  // namespace dqmc::gpu
