#include "gpusim/device.h"

#include <algorithm>
#include <cstring>

#include "linalg/diag.h"
#include "linalg/fp32.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dqmc::gpu {

Device::Device(DeviceSpec spec) : spec_(spec) {}

Device::~Device() {
  // Drain outstanding work before tearing down storage the tasks reference.
  // A pending injected stream fault must not escape a destructor; anyone
  // who cares synchronized (and observed it) before letting the Device die.
  try {
    stream_.wait_idle();
  } catch (...) {
  }
}

DeviceMatrix Device::alloc_matrix(idx rows, idx cols, int element_bytes) {
  DQMC_CHECK(rows >= 0 && cols >= 0);
  DQMC_CHECK_MSG(element_bytes == 4 || element_bytes == 8,
                 "element_bytes must be 4 (fp32) or 8 (fp64)");
  return DeviceMatrix(rows, cols, element_bytes);
}

DeviceVector Device::alloc_vector(idx n, int element_bytes) {
  DQMC_CHECK(n >= 0);
  DQMC_CHECK_MSG(element_bytes == 4 || element_bytes == 8,
                 "element_bytes must be 4 (fp32) or 8 (fp64)");
  return DeviceVector(n, element_bytes);
}

DeviceKinetic Device::alloc_kinetic(const linalg::CbOperator& op) {
  op.validate();
  DeviceKinetic k(op);
  // The bond table crosses PCIe once and stays resident for the run —
  // the structured counterpart of uploading the dense e^{-dtau K}.
  account_transfer(k.bytes(), /*h2d=*/true);
  return k;
}

void Device::submit_traced(const char* kernel, std::function<void()> body) {
  if (obs::Tracer::global().enabled()) {
    stream_.submit([kernel, body = std::move(body)] {
      obs::TraceSpan span(kernel, "gpusim");
      body();
    });
  } else {
    stream_.submit(std::move(body));
  }
}

void Device::bill_compute(double modeled_seconds, std::uint64_t launches) {
  const double now = clock_.seconds();
  std::lock_guard lock(stats_mutex_);
  stats_.compute_seconds += modeled_seconds;
  stats_.kernel_launches += launches;
  device_free_at_ = std::max(device_free_at_, now) + modeled_seconds;
}

void Device::enqueue_compute(const char* kernel, double modeled_seconds,
                             std::function<void()> body) {
  bill_compute(modeled_seconds, 1);
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("gpusim.kernel_launches");
    reg.observe("gpusim.kernel_modeled_ms", modeled_seconds * 1e3);
  }
  submit_traced(kernel, std::move(body));
}

void Device::drain() {
  stream_.wait_idle();
  const double now = clock_.seconds();
  std::lock_guard lock(stats_mutex_);
  if (device_free_at_ > now) {
    stats_.exposed_wait_seconds += device_free_at_ - now;
  }
  // The host and device timelines are level again; re-anchor so a second
  // drain right after this one observes no stall.
  device_free_at_ = now;
}

void Device::account_transfer(double bytes, bool h2d) {
  {
    std::lock_guard lock(stats_mutex_);
    stats_.transfer_seconds += spec_.transfer_seconds(bytes);
    stats_.transfers += 1;
    (h2d ? stats_.bytes_h2d : stats_.bytes_d2h) += bytes;
  }
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("gpusim.transfers");
    reg.count(h2d ? "gpusim.bytes_h2d" : "gpusim.bytes_d2h",
              static_cast<std::uint64_t>(bytes));
  }
  obs::Tracer::global().instant(h2d ? "h2d" : "d2h", "gpusim", "bytes", bytes);
}

void Device::set_matrix(ConstMatrixView host, DeviceMatrix& dev) {
  DQMC_CHECK(host.rows() == dev.rows() && host.cols() == dev.cols());
  account_transfer(dev.bytes(), /*h2d=*/true);
  // Copy on the calling thread (cublasSetMatrix is host-synchronous),
  // but only after previously enqueued device work that may read the
  // destination has drained.
  drain();
  linalg::copy(host, dev.storage_);
}

void Device::get_matrix(const DeviceMatrix& dev, MatrixView host) {
  DQMC_CHECK(host.rows() == dev.rows() && host.cols() == dev.cols());
  account_transfer(dev.bytes(), /*h2d=*/false);
  drain();
  linalg::copy(dev.storage_, host);
}

void Device::set_vector(const double* host, idx n, DeviceVector& dev) {
  DQMC_CHECK(n == dev.size());
  account_transfer(dev.bytes(), /*h2d=*/true);
  drain();
  std::memcpy(dev.storage_.data(), host,
              sizeof(double) * static_cast<std::size_t>(n));
}

void Device::set_matrix_async(ConstMatrixView host, DeviceMatrix& dev) {
  DQMC_CHECK(host.rows() == dev.rows() && host.cols() == dev.cols());
  account_transfer(dev.bytes(), /*h2d=*/true);
  submit_traced("set_matrix_async",
                [host, &dev] { linalg::copy(host, dev.storage_); });
}

void Device::set_vector_async(const double* host, idx n, DeviceVector& dev) {
  DQMC_CHECK(n == dev.size());
  account_transfer(dev.bytes(), /*h2d=*/true);
  submit_traced("set_vector_async", [host, n, &dev] {
    std::memcpy(dev.storage_.data(), host,
                sizeof(double) * static_cast<std::size_t>(n));
  });
}

void Device::copy(const DeviceMatrix& src, DeviceMatrix& dst) {
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  const double seconds = spec_.fused_kernel_seconds(2.0 * src.bytes());
  enqueue_compute("copy", seconds, [&src, &dst] {
    linalg::copy(src.storage_, dst.storage_);
  });
}

void Device::gemm(Trans transa, Trans transb, double alpha,
                  const DeviceMatrix& a, const DeviceMatrix& b, double beta,
                  DeviceMatrix& c) {
  const idx m = transa == Trans::Yes ? a.cols() : a.rows();
  const idx k = transa == Trans::Yes ? a.rows() : a.cols();
  const idx n = transb == Trans::Yes ? b.rows() : b.cols();
  // Fermi runs fp32 MAD at twice the fp64 peak: halve the modeled seconds.
  const bool narrow = compute_fp32();
  const double seconds = spec_.gemm_seconds(m, n, k) * (narrow ? 0.5 : 1.0);
  enqueue_compute("gemm", seconds, [=, &a, &b, &c] {
    if (narrow) {
      linalg::gemm_fp32(transa, transb, alpha, a.storage_.view(),
                        b.storage_.view(), beta, c.storage_.view());
    } else {
      linalg::gemm(transa, transb, alpha, a.storage_, b.storage_, beta,
                   c.storage_);
    }
  });
}

void Device::scale_rows_rowwise(const DeviceVector& v, const DeviceMatrix& src,
                                DeviceMatrix& dst) {
  DQMC_CHECK(v.size() == src.rows());
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  const double seconds = spec_.rowwise_scal_seconds(src.rows(), src.cols());
  // One accounting entry, rows() modeled launches.
  bill_compute(seconds, static_cast<std::uint64_t>(src.rows()));
  obs::metrics().count("gpusim.kernel_launches",
                       static_cast<std::uint64_t>(src.rows()));
  submit_traced("scale_rows_rowwise", [narrow = compute_fp32(), &v, &src, &dst] {
    if (narrow) {
      linalg::scale_rows_into_fp32(v.storage_.data(), src.storage_.view(),
                                   dst.storage_.view());
    } else {
      linalg::scale_rows_into(v.storage_.data(), src.storage_, dst.storage_);
    }
  });
}

void Device::scale_cols_rowwise(const DeviceVector& v, const DeviceMatrix& src,
                                DeviceMatrix& dst) {
  DQMC_CHECK(v.size() == src.cols());
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  // cols() launches, each streaming one contiguous (coalesced) column.
  const double per_col_bytes = 2.0 * static_cast<double>(src.rows()) * sizeof(double);
  const double seconds =
      static_cast<double>(src.cols()) *
      (spec_.kernel_launch_s + per_col_bytes / (spec_.mem_bandwidth_gbs * 1e9));
  bill_compute(seconds, static_cast<std::uint64_t>(src.cols()));
  obs::metrics().count("gpusim.kernel_launches",
                       static_cast<std::uint64_t>(src.cols()));
  submit_traced("scale_cols_rowwise", [narrow = compute_fp32(), &v, &src, &dst] {
    if (&src != &dst) linalg::copy(src.storage_, dst.storage_);
    if (narrow) {
      linalg::scale_cols_fp32(v.storage_.data(), dst.storage_.view());
    } else {
      linalg::scale_cols(v.storage_.data(), dst.storage_);
    }
  });
}

void Device::scale_rows_kernel(const DeviceVector& v, const DeviceMatrix& src,
                               DeviceMatrix& dst) {
  DQMC_CHECK(v.size() == src.rows());
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  const double seconds = spec_.fused_kernel_seconds(2.0 * src.bytes());
  enqueue_compute("scale_rows_kernel", seconds, [narrow = compute_fp32(), &v, &src,
                                                 &dst] {
    if (narrow) {
      linalg::scale_rows_into_fp32(v.storage_.data(), src.storage_.view(),
                                   dst.storage_.view());
    } else {
      linalg::scale_rows_into(v.storage_.data(), src.storage_, dst.storage_);
    }
  });
}

void Device::wrap_scale_kernel(const DeviceVector& v, DeviceMatrix& g) {
  DQMC_CHECK(v.size() == g.rows() && g.rows() == g.cols());
  const double seconds = spec_.fused_kernel_seconds(2.0 * g.bytes());
  enqueue_compute("wrap_scale_kernel", seconds, [narrow = compute_fp32(), &v, &g] {
    if (narrow) {
      linalg::scale_rows_cols_inv_fp32(v.storage_.data(), v.storage_.data(),
                                       g.storage_.view());
    } else {
      linalg::scale_rows_cols_inv(v.storage_.data(), v.storage_.data(),
                                  g.storage_);
    }
  });
}

void Device::cb_apply_kernel(const DeviceKinetic& k, linalg::CbSide side,
                             bool inverse, DeviceMatrix& x) {
  DQMC_CHECK(side == linalg::CbSide::kLeft ? x.rows() == k.n()
                                           : x.cols() == k.n());
  const idx cols = side == linalg::CbSide::kLeft ? x.cols() : x.rows();
  // The bond replay is memory-bound on the matrix columns; fp32 halves the
  // streamed width, so the model halves the traffic term wholesale.
  const bool narrow = compute_fp32();
  const double seconds = spec_.cb_apply_seconds(k.n(), k.num_bonds(),
                                                k.num_groups(), cols,
                                                k.scaled()) *
                         (narrow ? 0.5 : 1.0);
  const std::uint64_t launches =
      static_cast<std::uint64_t>(k.num_groups()) + (k.scaled() ? 1 : 0);
  // One launch per bond group (plus the diagonal pass): bill them all, but
  // keep a single accounting entry like scale_rows_rowwise does.
  bill_compute(seconds, launches);
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("gpusim.kernel_launches", launches);
    reg.observe("gpusim.kernel_modeled_ms", seconds * 1e3);
  }
  submit_traced("cb_apply_kernel", [narrow, &k, side, inverse, &x] {
    if (narrow) {
      linalg::cb_apply_fp32(k.op_, side, inverse, x.storage_.view());
    } else {
      linalg::cb_apply(k.op_, side, inverse, x.storage_);
    }
  });
}

void Device::gemm_batched(Trans transa, Trans transb, double alpha,
                          std::vector<const DeviceMatrix*> a,
                          std::vector<const DeviceMatrix*> b, double beta,
                          std::vector<DeviceMatrix*> c) {
  const idx count = static_cast<idx>(c.size());
  DQMC_CHECK(count >= 1);
  DQMC_CHECK(a.size() == c.size() || a.size() == 1);
  DQMC_CHECK(b.size() == c.size() || b.size() == 1);
  const idx m = transa == Trans::Yes ? a[0]->cols() : a[0]->rows();
  const idx k = transa == Trans::Yes ? a[0]->rows() : a[0]->cols();
  const idx n = transb == Trans::Yes ? b[0]->rows() : b[0]->cols();
  const bool narrow = compute_fp32();
  const double seconds =
      spec_.gemm_batched_seconds(m, n, k, count) * (narrow ? 0.5 : 1.0);
  enqueue_compute(
      "gemm_batched", seconds,
      [=, a = std::move(a), b = std::move(b), c = std::move(c)] {
        std::vector<linalg::ConstMatrixView> av, bv;
        std::vector<linalg::MatrixView> cv;
        av.reserve(a.size());
        bv.reserve(b.size());
        cv.reserve(c.size());
        for (const DeviceMatrix* ai : a) av.push_back(ai->storage_);
        for (const DeviceMatrix* bi : b) bv.push_back(bi->storage_);
        for (DeviceMatrix* ci : c) cv.push_back(ci->storage_);
        if (narrow) {
          linalg::gemm_batched_fp32(transa, transb, alpha, av, bv, beta, cv);
        } else {
          linalg::gemm_batched(transa, transb, alpha, av, bv, beta, cv);
        }
      });
}

void Device::scale_rows_kernel_batched(std::vector<const DeviceVector*> v,
                                       std::vector<const DeviceMatrix*> src,
                                       std::vector<DeviceMatrix*> dst) {
  const idx count = static_cast<idx>(dst.size());
  DQMC_CHECK(count >= 1);
  DQMC_CHECK(v.size() == dst.size());
  DQMC_CHECK(src.size() == dst.size() || src.size() == 1);
  double bytes = 0.0;
  for (idx i = 0; i < count; ++i) {
    const DeviceMatrix& s = src.size() == 1 ? *src[0] : *src[i];
    DQMC_CHECK(v[i]->size() == s.rows());
    DQMC_CHECK(s.rows() == dst[i]->rows() && s.cols() == dst[i]->cols());
    bytes += 2.0 * dst[i]->bytes();
  }
  const double seconds = spec_.fused_kernel_seconds(bytes);
  enqueue_compute(
      "scale_rows_kernel_batched", seconds,
      [narrow = compute_fp32(), v = std::move(v), src = std::move(src),
       dst = std::move(dst)] {
        for (std::size_t i = 0; i < dst.size(); ++i) {
          const DeviceMatrix& s = src.size() == 1 ? *src[0] : *src[i];
          if (narrow) {
            linalg::scale_rows_into_fp32(v[i]->storage_.data(),
                                         s.storage_.view(),
                                         dst[i]->storage_.view());
          } else {
            linalg::scale_rows_into(v[i]->storage_.data(), s.storage_,
                                    dst[i]->storage_);
          }
        }
      });
}

void Device::wrap_scale_kernel_batched(std::vector<const DeviceVector*> v,
                                       std::vector<DeviceMatrix*> g) {
  const idx count = static_cast<idx>(g.size());
  DQMC_CHECK(count >= 1 && v.size() == g.size());
  double bytes = 0.0;
  for (idx i = 0; i < count; ++i) {
    DQMC_CHECK(v[i]->size() == g[i]->rows() && g[i]->rows() == g[i]->cols());
    bytes += 2.0 * g[i]->bytes();
  }
  const double seconds = spec_.fused_kernel_seconds(bytes);
  enqueue_compute("wrap_scale_kernel_batched", seconds,
                  [narrow = compute_fp32(), v = std::move(v), g = std::move(g)] {
                    for (std::size_t i = 0; i < g.size(); ++i) {
                      if (narrow) {
                        linalg::scale_rows_cols_inv_fp32(
                            v[i]->storage_.data(), v[i]->storage_.data(),
                            g[i]->storage_.view());
                      } else {
                        linalg::scale_rows_cols_inv(v[i]->storage_.data(),
                                                    v[i]->storage_.data(),
                                                    g[i]->storage_);
                      }
                    }
                  });
}

void Device::cb_apply_kernel_batched(const DeviceKinetic& k,
                                     linalg::CbSide side, bool inverse,
                                     std::vector<DeviceMatrix*> x) {
  const idx count = static_cast<idx>(x.size());
  DQMC_CHECK(count >= 1);
  for (const DeviceMatrix* xi : x) {
    DQMC_CHECK(side == linalg::CbSide::kLeft ? xi->rows() == k.n()
                                             : xi->cols() == k.n());
    DQMC_CHECK(xi->rows() == x[0]->rows() && xi->cols() == x[0]->cols());
  }
  const idx cols = side == linalg::CbSide::kLeft ? x[0]->cols() : x[0]->rows();
  const bool narrow = compute_fp32();
  const double seconds =
      spec_.cb_apply_batched_seconds(k.n(), k.num_bonds(), k.num_groups(),
                                     cols, k.scaled(), count) *
      (narrow ? 0.5 : 1.0);
  const std::uint64_t launches =
      static_cast<std::uint64_t>(k.num_groups()) + (k.scaled() ? 1 : 0);
  bill_compute(seconds, launches);
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("gpusim.kernel_launches", launches);
    reg.observe("gpusim.kernel_modeled_ms", seconds * 1e3);
  }
  submit_traced("cb_apply_kernel_batched",
                [narrow, &k, side, inverse, x = std::move(x)] {
                  // Items replay the exact single-item kernel in sequence,
                  // so per-item bits cannot depend on the batching.
                  for (DeviceMatrix* xi : x) {
                    if (narrow) {
                      linalg::cb_apply_fp32(k.op_, side, inverse,
                                            xi->storage_.view());
                    } else {
                      linalg::cb_apply(k.op_, side, inverse, xi->storage_);
                    }
                  }
                });
}

void Device::set_matrices_async(std::vector<ConstMatrixView> hosts,
                                std::vector<DeviceMatrix*> devs) {
  DQMC_CHECK(!devs.empty() && hosts.size() == devs.size());
  double bytes = 0.0;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    DQMC_CHECK(hosts[i].rows() == devs[i]->rows() &&
               hosts[i].cols() == devs[i]->cols());
    bytes += devs[i]->bytes();
  }
  account_transfer(bytes, /*h2d=*/true);
  submit_traced("set_matrices_async",
                [hosts = std::move(hosts), devs = std::move(devs)] {
                  for (std::size_t i = 0; i < devs.size(); ++i) {
                    linalg::copy(hosts[i], devs[i]->storage_);
                  }
                });
}

void Device::set_vectors_async(std::vector<const double*> hosts, idx n,
                               std::vector<DeviceVector*> devs) {
  DQMC_CHECK(!devs.empty() && hosts.size() == devs.size());
  double bytes = 0.0;
  for (DeviceVector* dev : devs) {
    DQMC_CHECK(dev->size() == n);
    bytes += dev->bytes();
  }
  account_transfer(bytes, /*h2d=*/true);
  submit_traced("set_vectors_async",
                [hosts = std::move(hosts), devs = std::move(devs), n] {
                  for (std::size_t i = 0; i < devs.size(); ++i) {
                    std::memcpy(devs[i]->storage_.data(), hosts[i],
                                sizeof(double) * static_cast<std::size_t>(n));
                  }
                });
}

void Device::get_matrices(std::vector<const DeviceMatrix*> devs,
                          std::vector<MatrixView> hosts) {
  DQMC_CHECK(!devs.empty() && hosts.size() == devs.size());
  double bytes = 0.0;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    DQMC_CHECK(hosts[i].rows() == devs[i]->rows() &&
               hosts[i].cols() == devs[i]->cols());
    bytes += devs[i]->bytes();
  }
  account_transfer(bytes, /*h2d=*/false);
  drain();
  for (std::size_t i = 0; i < devs.size(); ++i) {
    linalg::copy(devs[i]->storage_, hosts[i]);
  }
}

void Device::synchronize() {
  drain();
  std::lock_guard lock(stats_mutex_);
  stats_.synchronizations += 1;
}

DeviceStats Device::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void Device::reset_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = DeviceStats{};
}

}  // namespace dqmc::gpu
