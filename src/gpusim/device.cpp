#include "gpusim/device.h"

#include <algorithm>
#include <cstring>

#include "linalg/diag.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dqmc::gpu {

Device::Device(DeviceSpec spec) : spec_(spec) {}

Device::~Device() {
  // Drain outstanding work before tearing down storage the tasks reference.
  // A pending injected stream fault must not escape a destructor; anyone
  // who cares synchronized (and observed it) before letting the Device die.
  try {
    stream_.wait_idle();
  } catch (...) {
  }
}

DeviceMatrix Device::alloc_matrix(idx rows, idx cols) {
  DQMC_CHECK(rows >= 0 && cols >= 0);
  return DeviceMatrix(rows, cols);
}

DeviceVector Device::alloc_vector(idx n) {
  DQMC_CHECK(n >= 0);
  return DeviceVector(n);
}

void Device::submit_traced(const char* kernel, std::function<void()> body) {
  if (obs::Tracer::global().enabled()) {
    stream_.submit([kernel, body = std::move(body)] {
      obs::TraceSpan span(kernel, "gpusim");
      body();
    });
  } else {
    stream_.submit(std::move(body));
  }
}

void Device::bill_compute(double modeled_seconds, std::uint64_t launches) {
  const double now = clock_.seconds();
  std::lock_guard lock(stats_mutex_);
  stats_.compute_seconds += modeled_seconds;
  stats_.kernel_launches += launches;
  device_free_at_ = std::max(device_free_at_, now) + modeled_seconds;
}

void Device::enqueue_compute(const char* kernel, double modeled_seconds,
                             std::function<void()> body) {
  bill_compute(modeled_seconds, 1);
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("gpusim.kernel_launches");
    reg.observe("gpusim.kernel_modeled_ms", modeled_seconds * 1e3);
  }
  submit_traced(kernel, std::move(body));
}

void Device::drain() {
  stream_.wait_idle();
  const double now = clock_.seconds();
  std::lock_guard lock(stats_mutex_);
  if (device_free_at_ > now) {
    stats_.exposed_wait_seconds += device_free_at_ - now;
  }
  // The host and device timelines are level again; re-anchor so a second
  // drain right after this one observes no stall.
  device_free_at_ = now;
}

void Device::account_transfer(double bytes, bool h2d) {
  {
    std::lock_guard lock(stats_mutex_);
    stats_.transfer_seconds += spec_.transfer_seconds(bytes);
    stats_.transfers += 1;
    (h2d ? stats_.bytes_h2d : stats_.bytes_d2h) += bytes;
  }
  obs::MetricsRegistry& reg = obs::metrics();
  if (reg.enabled()) {
    reg.count("gpusim.transfers");
    reg.count(h2d ? "gpusim.bytes_h2d" : "gpusim.bytes_d2h",
              static_cast<std::uint64_t>(bytes));
  }
  obs::Tracer::global().instant(h2d ? "h2d" : "d2h", "gpusim", "bytes", bytes);
}

void Device::set_matrix(ConstMatrixView host, DeviceMatrix& dev) {
  DQMC_CHECK(host.rows() == dev.rows() && host.cols() == dev.cols());
  account_transfer(dev.bytes(), /*h2d=*/true);
  // Copy on the calling thread (cublasSetMatrix is host-synchronous),
  // but only after previously enqueued device work that may read the
  // destination has drained.
  drain();
  linalg::copy(host, dev.storage_);
}

void Device::get_matrix(const DeviceMatrix& dev, MatrixView host) {
  DQMC_CHECK(host.rows() == dev.rows() && host.cols() == dev.cols());
  account_transfer(dev.bytes(), /*h2d=*/false);
  drain();
  linalg::copy(dev.storage_, host);
}

void Device::set_vector(const double* host, idx n, DeviceVector& dev) {
  DQMC_CHECK(n == dev.size());
  account_transfer(dev.bytes(), /*h2d=*/true);
  drain();
  std::memcpy(dev.storage_.data(), host,
              sizeof(double) * static_cast<std::size_t>(n));
}

void Device::set_matrix_async(ConstMatrixView host, DeviceMatrix& dev) {
  DQMC_CHECK(host.rows() == dev.rows() && host.cols() == dev.cols());
  account_transfer(dev.bytes(), /*h2d=*/true);
  submit_traced("set_matrix_async",
                [host, &dev] { linalg::copy(host, dev.storage_); });
}

void Device::set_vector_async(const double* host, idx n, DeviceVector& dev) {
  DQMC_CHECK(n == dev.size());
  account_transfer(dev.bytes(), /*h2d=*/true);
  submit_traced("set_vector_async", [host, n, &dev] {
    std::memcpy(dev.storage_.data(), host,
                sizeof(double) * static_cast<std::size_t>(n));
  });
}

void Device::copy(const DeviceMatrix& src, DeviceMatrix& dst) {
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  const double seconds = spec_.fused_kernel_seconds(2.0 * src.bytes());
  enqueue_compute("copy", seconds, [&src, &dst] {
    linalg::copy(src.storage_, dst.storage_);
  });
}

void Device::gemm(Trans transa, Trans transb, double alpha,
                  const DeviceMatrix& a, const DeviceMatrix& b, double beta,
                  DeviceMatrix& c) {
  const idx m = transa == Trans::Yes ? a.cols() : a.rows();
  const idx k = transa == Trans::Yes ? a.rows() : a.cols();
  const idx n = transb == Trans::Yes ? b.rows() : b.cols();
  const double seconds = spec_.gemm_seconds(m, n, k);
  enqueue_compute("gemm", seconds, [=, &a, &b, &c] {
    linalg::gemm(transa, transb, alpha, a.storage_, b.storage_, beta,
                 c.storage_);
  });
}

void Device::scale_rows_rowwise(const DeviceVector& v, const DeviceMatrix& src,
                                DeviceMatrix& dst) {
  DQMC_CHECK(v.size() == src.rows());
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  const double seconds = spec_.rowwise_scal_seconds(src.rows(), src.cols());
  // One accounting entry, rows() modeled launches.
  bill_compute(seconds, static_cast<std::uint64_t>(src.rows()));
  obs::metrics().count("gpusim.kernel_launches",
                       static_cast<std::uint64_t>(src.rows()));
  submit_traced("scale_rows_rowwise", [&v, &src, &dst] {
    linalg::scale_rows_into(v.storage_.data(), src.storage_, dst.storage_);
  });
}

void Device::scale_cols_rowwise(const DeviceVector& v, const DeviceMatrix& src,
                                DeviceMatrix& dst) {
  DQMC_CHECK(v.size() == src.cols());
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  // cols() launches, each streaming one contiguous (coalesced) column.
  const double per_col_bytes = 2.0 * static_cast<double>(src.rows()) * sizeof(double);
  const double seconds =
      static_cast<double>(src.cols()) *
      (spec_.kernel_launch_s + per_col_bytes / (spec_.mem_bandwidth_gbs * 1e9));
  bill_compute(seconds, static_cast<std::uint64_t>(src.cols()));
  obs::metrics().count("gpusim.kernel_launches",
                       static_cast<std::uint64_t>(src.cols()));
  submit_traced("scale_cols_rowwise", [&v, &src, &dst] {
    if (&src != &dst) linalg::copy(src.storage_, dst.storage_);
    linalg::scale_cols(v.storage_.data(), dst.storage_);
  });
}

void Device::scale_rows_kernel(const DeviceVector& v, const DeviceMatrix& src,
                               DeviceMatrix& dst) {
  DQMC_CHECK(v.size() == src.rows());
  DQMC_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  const double seconds = spec_.fused_kernel_seconds(2.0 * src.bytes());
  enqueue_compute("scale_rows_kernel", seconds, [&v, &src, &dst] {
    linalg::scale_rows_into(v.storage_.data(), src.storage_, dst.storage_);
  });
}

void Device::wrap_scale_kernel(const DeviceVector& v, DeviceMatrix& g) {
  DQMC_CHECK(v.size() == g.rows() && g.rows() == g.cols());
  const double seconds = spec_.fused_kernel_seconds(2.0 * g.bytes());
  enqueue_compute("wrap_scale_kernel", seconds, [&v, &g] {
    linalg::scale_rows_cols_inv(v.storage_.data(), v.storage_.data(),
                                g.storage_);
  });
}

void Device::synchronize() {
  drain();
  std::lock_guard lock(stats_mutex_);
  stats_.synchronizations += 1;
}

DeviceStats Device::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void Device::reset_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = DeviceStats{};
}

}  // namespace dqmc::gpu
