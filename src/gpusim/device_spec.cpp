#include "gpusim/device_spec.h"

#include <algorithm>
#include <cmath>

namespace dqmc::gpu {

double DeviceSpec::gemm_seconds(idx m, idx n, idx k) const {
  if (m <= 0 || n <= 0 || k <= 0) return kernel_launch_s;
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  // Efficiency ramp: small problems underutilize the device. Use the
  // geometric-mean dimension so skinny products are penalized too.
  const double dim = std::cbrt(static_cast<double>(m) * n * k);
  const double d3 = dim * dim * dim;
  const double h3 = gemm_half_rate_dim * gemm_half_rate_dim * gemm_half_rate_dim;
  const double rate = gemm_peak_gflops * 1e9 * (d3 / (d3 + h3));
  return kernel_launch_s + flops / rate;
}

double DeviceSpec::gemm_batched_seconds(idx m, idx n, idx k, idx batch) const {
  if (batch <= 0) return kernel_launch_s;
  if (m <= 0 || n <= 0 || k <= 0) return kernel_launch_s;
  const double vol = static_cast<double>(m) * n * k * batch;
  const double flops = 2.0 * vol;
  // One launch; the ramp argument is the aggregate volume, so at batch = 1
  // this reduces exactly to gemm_seconds(m, n, k).
  const double h3 = gemm_half_rate_dim * gemm_half_rate_dim * gemm_half_rate_dim;
  const double rate = gemm_peak_gflops * 1e9 * (vol / (vol + h3));
  return kernel_launch_s + flops / rate;
}

double DeviceSpec::fused_kernel_seconds(double bytes) const {
  return kernel_launch_s + bytes / (mem_bandwidth_gbs * 1e9);
}

double DeviceSpec::rowwise_scal_seconds(idx m, idx n) const {
  // m separate cublasDscal launches, each reading+writing one strided row
  // (n elements) at non-coalesced bandwidth.
  const double per_row_bytes = 2.0 * static_cast<double>(n) * sizeof(double);
  const double per_row =
      kernel_launch_s + per_row_bytes / (noncoalesced_bandwidth_gbs * 1e9);
  return static_cast<double>(m) * per_row;
}

double DeviceSpec::cb_apply_seconds(idx n, idx bonds, idx groups, idx cols,
                                    bool scaled) const {
  return cb_apply_batched_seconds(n, bonds, groups, cols, scaled, 1);
}

double DeviceSpec::cb_apply_batched_seconds(idx n, idx bonds, idx groups,
                                            idx cols, bool scaled,
                                            idx batch) const {
  if (batch <= 0 || cols <= 0) return kernel_launch_s;
  // One fused kernel per group (groups are sequentially dependent; bonds
  // within a group are not, so one launch covers them — and in the batched
  // call, covers every crowd member too). Each bond reads and writes two
  // operand rows: 2 rows x 2 directions x 8 bytes = 32 bytes per column.
  const double bond_bytes = 32.0 * static_cast<double>(bonds) *
                            static_cast<double>(cols) *
                            static_cast<double>(batch);
  double seconds = static_cast<double>(std::max<idx>(groups, 1)) *
                       kernel_launch_s +
                   bond_bytes / (mem_bandwidth_gbs * 1e9);
  if (scaled) {
    // Diagonal e^{dtau mu} pass: one more launch, full read + write sweep.
    const double scale_bytes = 16.0 * static_cast<double>(n) *
                               static_cast<double>(cols) *
                               static_cast<double>(batch);
    seconds += kernel_launch_s + scale_bytes / (mem_bandwidth_gbs * 1e9);
  }
  return seconds;
}

double DeviceSpec::transfer_seconds(double bytes) const {
  return transfer_latency_s + bytes / (pcie_bandwidth_gbs * 1e9);
}

}  // namespace dqmc::gpu
