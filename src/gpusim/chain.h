// GPU-offloaded DQMC chain operations: matrix clustering (Algorithms 4/5)
// and Green's function wrapping (Algorithms 6/7) from Section VI.
//
// The fixed factors B = e^{-dtau K} and B^{-1} are uploaded once at
// construction and kept resident in device memory, exactly as the paper
// prescribes ("B is fixed and it is computed and stored at the start of the
// simulation"); per-call traffic is only the diagonal V (N doubles) and the
// result matrix.
#pragma once

#include <vector>

#include "gpusim/device.h"

namespace dqmc::gpu {

class GpuBChain {
 public:
  /// `b` is e^{-dtau K}, `binv` its inverse e^{+dtau K} (N x N).
  GpuBChain(Device& device, ConstMatrixView b, ConstMatrixView binv);

  idx n() const { return n_; }
  Device& device() { return device_; }

  /// Matrix clustering: returns A = B_{k-1} * ... * B_1 * B_0 where
  /// B_j = diag(vs[j]) * B. One V upload per factor, one download of A.
  /// fused_kernel=true uses the Algorithm 5 custom kernel for the row
  /// scalings; false uses the Algorithm 4 row-by-row cublasDscal path.
  Matrix cluster_product(const std::vector<Vector>& vs,
                         bool fused_kernel = true);

  /// Wrapping: g <- B_l g B_l^{-1} with B_l = diag(v) * B, i.e.
  /// g <- diag(v) (B g B^{-1}) diag(v)^{-1}. Uploads g and v, runs two
  /// device GEMMs plus the scaling, downloads g.
  /// fused_kernel=true uses the Algorithm 7 fused row+column kernel; false
  /// models two row/column cublasDscal sweeps (Algorithm 6).
  void wrap(MatrixView g, const Vector& v, bool fused_kernel = true);

 private:
  Device& device_;
  idx n_;
  DeviceMatrix b_, binv_;  // resident factors
  DeviceMatrix t_, a_, g_; // workspaces
  // Device-op arguments must stay alive until the stream drains, so both
  // diagonal workspaces are members rather than locals.
  DeviceVector v_, v_inv_;
};

/// Flop count of one cluster product of `k` factors of size n (for
/// GFlop/s reporting in the Fig. 9 bench): (k-1) GEMMs + k row scalings.
double cluster_product_flops(idx n, idx k);

/// Flop count of one wrap of size n: two GEMMs + the scaling.
double wrap_flops(idx n);

}  // namespace dqmc::gpu
