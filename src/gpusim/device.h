// The simulated GPU device and its CUBLAS-like command API.
//
// Commands execute asynchronously on a dedicated stream thread (FIFO order,
// like operations enqueued on one CUDA stream); get_* calls and
// synchronize() block the host. Results are computed on the host CPU with
// the library's own kernels — bit-identical to the CPU path — while a
// virtual clock advances per the DeviceSpec cost model. Benchmarks report
// performance against the virtual clock; see DESIGN.md "Substitutions".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stopwatch.h"
#include "gpusim/device_spec.h"
#include "gpusim/stream.h"
#include "linalg/blas3.h"
#include "linalg/cb_operator.h"
#include "linalg/matrix.h"

namespace dqmc::gpu {

using linalg::ConstMatrixView;
using linalg::Matrix;
using linalg::MatrixView;
using linalg::Trans;
using linalg::Vector;

class Device;

/// A matrix allocated in (simulated) device memory. Opaque to the host:
/// contents are only reachable through Device::get_matrix.
class DeviceMatrix {
 public:
  DeviceMatrix() = default;
  idx rows() const { return storage_.rows(); }
  idx cols() const { return storage_.cols(); }
  /// Modeled storage width (4 = fp32, 8 = fp64); the host-side shadow is
  /// always double, only the cost model sees the narrower footprint.
  int element_bytes() const { return element_bytes_; }
  double bytes() const {
    return static_cast<double>(rows()) * cols() * element_bytes_;
  }

 private:
  friend class Device;
  DeviceMatrix(idx rows, idx cols, int element_bytes)
      : storage_(rows, cols), element_bytes_(element_bytes) {}
  Matrix storage_;
  int element_bytes_ = 8;
};

/// A vector in device memory (diagonal scalings live here).
class DeviceVector {
 public:
  DeviceVector() = default;
  idx size() const { return storage_.size(); }
  int element_bytes() const { return element_bytes_; }
  double bytes() const {
    return static_cast<double>(size()) * element_bytes_;
  }

 private:
  friend class Device;
  DeviceVector(idx n, int element_bytes)
      : storage_(n), element_bytes_(element_bytes) {}
  Vector storage_;
  int element_bytes_ = 8;
};

/// A checkerboard bond table resident in (simulated) device memory —
/// uploaded once at construction, replayed by cb_apply_kernel. The
/// structured analogue of keeping the dense e^{-dtau K} device-resident.
class DeviceKinetic {
 public:
  DeviceKinetic() = default;
  idx n() const { return op_.n; }
  idx num_bonds() const { return op_.num_bonds(); }
  idx num_groups() const { return op_.num_groups(); }
  bool scaled() const { return op_.diag_scale != 1.0; }
  /// Bond-table footprint: two 8-byte indices + two doubles per bond.
  double bytes() const {
    return 32.0 * static_cast<double>(op_.num_bonds());
  }

 private:
  friend class Device;
  explicit DeviceKinetic(linalg::CbOperator op) : op_(std::move(op)) {}
  linalg::CbOperator op_;
};

/// Cumulative accounting of the virtual timeline.
struct DeviceStats {
  double compute_seconds = 0.0;   ///< kernels + library calls
  double transfer_seconds = 0.0;  ///< host <-> device copies
  double bytes_h2d = 0.0;
  double bytes_d2h = 0.0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t transfers = 0;
  /// Virtual-clock stall the host actually observed at drain points. Device
  /// compute that finished behind concurrent host work costs nothing here,
  /// so summing host wall time with exposed_wait_seconds never double-counts
  /// the overlap (summing with compute_seconds does).
  double exposed_wait_seconds = 0.0;
  std::uint64_t synchronizations = 0;

  /// Serial-composition total (every op end to end).
  double total_seconds() const { return compute_seconds + transfer_seconds; }
  /// What the device adds to host wall time when compute overlaps host
  /// work: exposed stalls plus host-blocking transfers.
  double pipeline_seconds() const {
    return exposed_wait_seconds + transfer_seconds;
  }
};

/// LIFETIME CONTRACT: compute methods (gemm, copy, scale_*) enqueue work
/// that runs asynchronously and holds references to the DeviceMatrix /
/// DeviceVector arguments. Every argument must stay alive until the stream
/// next drains — i.e. until synchronize(), get_matrix(), set_matrix(), or
/// set_vector() returns — exactly like device pointers across an
/// unsynchronized CUDA stream.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::tesla_c2050());
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }

  /// Allocate uninitialized device storage. `element_bytes` (4 or 8) tags
  /// the buffer's modeled storage width: fp32 buffers halve every transfer
  /// and memory-bound kernel bill that goes through bytes().
  DeviceMatrix alloc_matrix(idx rows, idx cols, int element_bytes = 8);
  DeviceVector alloc_vector(idx n, int element_bytes = 8);
  /// Upload a checkerboard bond table (validated; one accounted h2d
  /// transfer of the table bytes). The table is immutable once resident.
  DeviceKinetic alloc_kinetic(const linalg::CbOperator& op);

  /// cublasSetMatrix: host -> device.
  void set_matrix(ConstMatrixView host, DeviceMatrix& dev);
  /// cublasGetMatrix: device -> host. Blocks until the stream drains.
  void get_matrix(const DeviceMatrix& dev, MatrixView host);
  /// cublasSetVector: host -> device.
  void set_vector(const double* host, idx n, DeviceVector& dev);

  /// cublasSetMatrixAsync: the copy is enqueued on the stream instead of
  /// draining it, so it pipelines behind earlier kernels. The host storage
  /// must stay alive AND unmodified until the stream next drains (same
  /// contract as device-op arguments).
  void set_matrix_async(ConstMatrixView host, DeviceMatrix& dev);
  /// cublasSetVectorAsync, with the same lifetime contract.
  void set_vector_async(const double* host, idx n, DeviceVector& dev);

  /// cublasDcopy on matrices: dst <- src (device-side).
  void copy(const DeviceMatrix& src, DeviceMatrix& dst);

  /// cublasDgemm: C <- alpha op(A) op(B) + beta C (device-side).
  void gemm(Trans transa, Trans transb, double alpha, const DeviceMatrix& a,
            const DeviceMatrix& b, double beta, DeviceMatrix& c);

  /// Algorithm 4 path: dst <- diag(v) * src issued as rows() separate
  /// cublasDscal calls (correct but modeled as slow / non-coalesced).
  void scale_rows_rowwise(const DeviceVector& v, const DeviceMatrix& src,
                          DeviceMatrix& dst);

  /// Companion of the Algorithm 6 path: dst <- src * diag(v), issued as
  /// cols() separate cublasDscal calls. Column access is contiguous
  /// (coalesced) on the device, but still pays one launch per column.
  void scale_cols_rowwise(const DeviceVector& v, const DeviceMatrix& src,
                          DeviceMatrix& dst);

  /// Algorithm 5 custom kernel: dst <- diag(v) * src, one fused launch,
  /// coalesced accesses.
  void scale_rows_kernel(const DeviceVector& v, const DeviceMatrix& src,
                         DeviceMatrix& dst);

  /// Algorithm 7 custom kernel: g <- diag(v) * g * diag(v)^{-1}, one fused
  /// launch (texture-cached column factor).
  void wrap_scale_kernel(const DeviceVector& v, DeviceMatrix& g);

  /// Checkerboard apply: x <- B x / B^{-1} x / x B / x B^{-1} replayed from
  /// the resident bond table, one memory-bound launch per bond group
  /// instead of a GEMM — O(bonds x cols) traffic billed by
  /// DeviceSpec::cb_apply_seconds.
  void cb_apply_kernel(const DeviceKinetic& k, linalg::CbSide side,
                       bool inverse, DeviceMatrix& x);

  // ---- Batched command API (walker crowds) -------------------------------
  // Pointer-array batches in the cublas<t>gemmBatched style: one library
  // call covering c.size() same-shape items. An `a`/`b`/`src` argument of
  // size 1 designates one shared operand. Each call bills ONE launch whose
  // cost model sees the aggregate work, which is exactly the amortization
  // the batch buys on real hardware; results stay bit-identical per item to
  // the non-batched calls. Same lifetime contract as the single-item ops.

  /// cublasDgemmBatched: C_i <- alpha op(A_i) op(B_i) + beta C_i.
  void gemm_batched(Trans transa, Trans transb, double alpha,
                    std::vector<const DeviceMatrix*> a,
                    std::vector<const DeviceMatrix*> b, double beta,
                    std::vector<DeviceMatrix*> c);

  /// Batched Algorithm 5 kernel: dst_i <- diag(v_i) * src_i, one launch.
  void scale_rows_kernel_batched(std::vector<const DeviceVector*> v,
                                 std::vector<const DeviceMatrix*> src,
                                 std::vector<DeviceMatrix*> dst);

  /// Batched Algorithm 7 kernel: g_i <- diag(v_i) g_i diag(v_i)^{-1}.
  void wrap_scale_kernel_batched(std::vector<const DeviceVector*> v,
                                 std::vector<DeviceMatrix*> g);

  /// Batched checkerboard apply: one SHARED bond table replayed over every
  /// crowd member with the same launch count as a single apply (each
  /// per-group kernel covers the whole batch), batch x the traffic.
  void cb_apply_kernel_batched(const DeviceKinetic& k, linalg::CbSide side,
                               bool inverse, std::vector<DeviceMatrix*> x);

  /// Batched cublasSetMatrixAsync: one PCIe transaction for all items
  /// (single latency hit, summed bytes). Host views must stay alive and
  /// unmodified until the stream next drains.
  void set_matrices_async(std::vector<ConstMatrixView> hosts,
                          std::vector<DeviceMatrix*> devs);
  /// Batched cublasSetVectorAsync with the same contract.
  void set_vectors_async(std::vector<const double*> hosts, idx n,
                         std::vector<DeviceVector*> devs);
  /// Batched cublasGetMatrix: drains the stream, then copies all items in
  /// one accounted transfer.
  void get_matrices(std::vector<const DeviceMatrix*> devs,
                    std::vector<MatrixView> hosts);

  /// fp32 compute mode for subsequently ENQUEUED kernels: arithmetic runs
  /// the linalg/fp32.h round-on-read kernels and GEMM bills at twice the
  /// modeled FLOP rate (Fermi's fp32:fp64 peak ratio). The flag is read on
  /// the submitting thread at enqueue time — callers bracket exactly the
  /// command sequence they want narrowed; work already on the stream keeps
  /// the mode it was enqueued with.
  void set_compute_fp32(bool on) { fp32_.store(on, std::memory_order_relaxed); }
  bool compute_fp32() const { return fp32_.load(std::memory_order_relaxed); }

  /// Block the host until all enqueued work has executed.
  void synchronize();

  /// Virtual-clock accounting (valid after synchronize()).
  DeviceStats stats() const;
  /// Reset the stats (not the memory).
  void reset_stats();

 private:
  /// Enqueue `body` on the stream, bill `modeled_seconds` to the virtual
  /// clock, and (when tracing) emit a span named `kernel` on the stream
  /// thread's timeline. `kernel` must be a string literal.
  void enqueue_compute(const char* kernel, double modeled_seconds,
                       std::function<void()> body);
  /// Bill `modeled_seconds` of compute against the virtual timeline:
  /// the device becomes free at max(free, now) + modeled_seconds.
  void bill_compute(double modeled_seconds, std::uint64_t launches);
  /// Submit without compute accounting (callers bill stats themselves).
  void submit_traced(const char* kernel, std::function<void()> body);
  void account_transfer(double bytes, bool h2d);
  /// Drain the stream and bill only the stall the host actually observed:
  /// exposed_wait += max(0, device_free_at - now), then re-anchor the
  /// timeline so consecutive drains cost nothing extra.
  void drain();

  DeviceSpec spec_;
  // Compute mode captured at enqueue time. Atomic because concurrent spin
  // chains bracket the (identical) mode on one shared device; relaxed —
  // the flag itself carries no ordering.
  std::atomic<bool> fp32_{false};
  // Dedicated worker = one CUDA stream: strict FIFO execution.
  StreamThread stream_;
  // Host wall clock the virtual timeline is anchored to: enqueued work
  // completes (virtually) at device_free_at_, host "now" is clock_.seconds().
  Stopwatch clock_;
  mutable std::mutex stats_mutex_;
  double device_free_at_ = 0.0;
  DeviceStats stats_;
};

}  // namespace dqmc::gpu
