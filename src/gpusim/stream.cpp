#include "gpusim/stream.h"

#include "common/error.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/topology.h"

namespace dqmc::gpu {

StreamThread::StreamThread() : worker_([this] { run(); }) {}

StreamThread::~StreamThread() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void StreamThread::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    DQMC_CHECK_MSG(!stopping_, "submit() on a stopped StreamThread");
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  // Live queue-depth gauge for the telemetry stream. The gauge pointer is
  // cached (registry references have registry lifetime) so the armed-path
  // cost stays one atomic store.
  if (obs::metrics().enabled()) {
    static obs::Gauge* depth_gauge = &obs::metrics().gauge("gpusim.queue_depth");
    depth_gauge->set(static_cast<double>(depth));
  }
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kEnqueue, "gpusim.stream", "",
                    static_cast<double>(depth));
  cv_.notify_one();
}

void StreamThread::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  if (fault_pending_) {
    fault_pending_ = false;
    const std::uint64_t hit = fault_hit_;
    lock.unlock();
    throw fault::InjectedFault("gpusim.stream",
                               fault::FaultClass::kDeviceFault, hit);
  }
}

void StreamThread::run() {
  obs::Tracer::global().set_current_thread_name("gpusim-stream");
  // The stream thread must never wait on the shared task runtime: a stolen
  // task can block in wait_idle() until THIS thread drains the queue, so a
  // nested parallel region here (threaded GEMM tiles) can close a deadlock
  // cycle through wait_idle(). Serial execution keeps the stream a pure
  // producer the rest of the runtime may safely wait on.
  par::set_thread_serial(true);
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_, drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task();
    // Non-throwing poll: a fired "gpusim.stream" fail point becomes a
    // sticky pending fault that wait_idle() raises at the next sync.
    std::uint64_t hit = 0;
    bool fired = false;
#if !defined(DQMC_NO_FAILPOINTS)
    if (fault::failpoints().any_armed())
      fired = fault::failpoints().fire("gpusim.stream", &hit);
#endif
    lock.lock();
    if (fired && !fault_pending_) {
      fault_pending_ = true;
      fault_hit_ = hit;
    }
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace dqmc::gpu
