#include "gpusim/stream.h"

#include "common/error.h"
#include "obs/trace.h"

namespace dqmc::gpu {

StreamThread::StreamThread() : worker_([this] { run(); }) {}

StreamThread::~StreamThread() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void StreamThread::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    DQMC_CHECK_MSG(!stopping_, "submit() on a stopped StreamThread");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void StreamThread::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void StreamThread::run() {
  obs::Tracer::global().set_current_thread_name("gpusim-stream");
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_, drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task();
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace dqmc::gpu
