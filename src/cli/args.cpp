#include "cli/args.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"

namespace dqmc::cli {

Args::Args(int argc, const char* const* argv,
           std::vector<std::string> allowed)
    : program_(argc > 0 ? argv[0] : "") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DQMC_CHECK_MSG(arg.rfind("--", 0) == 0,
                   "options must start with --, got: " + arg);
    arg = arg.substr(2);

    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // Next token is the value unless it is another option or missing.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";  // bare flag
      }
    }
    if (!allowed.empty()) {
      DQMC_CHECK_MSG(std::find(allowed.begin(), allowed.end(), name) !=
                         allowed.end(),
                     "unknown option --" + name);
    }
    values_[name] = value;
  }
}

bool Args::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

long Args::get_long(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  DQMC_CHECK_MSG(end && *end == '\0', "option --" + name + " expects an integer");
  return v;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DQMC_CHECK_MSG(end && *end == '\0', "option --" + name + " expects a number");
  return v;
}

bool Args::get_flag(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes" ||
         it->second == "on";
}

}  // namespace dqmc::cli
