// Aligned text tables for bench/example output — each bench prints the
// same rows/series its paper figure or table reports.
#pragma once

#include <string>
#include <vector>

namespace dqmc::cli {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; cells beyond the header count throw.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string integer(long v);
  /// "mean +- error"
  static std::string pm(double mean, double error, int precision = 4);

  /// Render with aligned columns and a separator under the header.
  std::string str() const;
  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// ASCII heatmap of a row-major grid (used for the contour figures 6/7):
/// values are mapped onto a shade ramp; negative/positive diverging data
/// can pass symmetric=true to centre the ramp at zero.
std::string ascii_heatmap(const std::vector<double>& values, int rows,
                          int cols, bool symmetric = false);

}  // namespace dqmc::cli
