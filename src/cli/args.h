// Minimal command-line option parsing shared by examples and benches.
//
// Supports --name value, --name=value, and bare --flag booleans. Unknown
// options throw, so typos in bench sweeps fail loudly rather than silently
// running the default configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dqmc::cli {

class Args {
 public:
  /// Parse argv. `allowed` lists the recognized option names (without the
  /// leading --); pass an empty list to accept anything.
  Args(int argc, const char* const* argv,
       std::vector<std::string> allowed = {});

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long get_long(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_flag(const std::string& name, bool fallback = false) const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace dqmc::cli
