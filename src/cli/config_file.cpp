#include "cli/config_file.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.h"

namespace dqmc::cli {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    DQMC_CHECK_MSG(eq != std::string::npos,
                   "config line " + std::to_string(lineno) +
                       " is not 'key = value': " + line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    DQMC_CHECK_MSG(!key.empty(), "empty key on config line " +
                                     std::to_string(lineno));
    cfg.values_[key] = value;
  }
  return cfg;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  DQMC_CHECK_MSG(in.good(), "cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool ConfigFile::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ConfigFile::get(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

long ConfigFile::get_long(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  DQMC_CHECK_MSG(end && *end == '\0',
                 "config key '" + key + "' expects an integer, got '" +
                     it->second + "'");
  return v;
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DQMC_CHECK_MSG(end && *end == '\0',
                 "config key '" + key + "' expects a number, got '" +
                     it->second + "'");
  return v;
}

core::SimulationConfig simulation_config_from(const ConfigFile& file) {
  static const std::set<std::string> kKnown = {
      "lx", "ly", "layers", "t", "tperp", "u", "mu", "beta",
      "slices", "L", "warmup", "nwarm", "sweeps", "npass",
      "measure_interval", "measure_slice_interval", "measure_dynamic_interval",
      "bins", "seed",
      "algorithm", "stabilizer", "precision", "measure",
      "cluster_size", "north", "delay_rank", "backend", "kinetic",
      "gpu_clustering", "gpu_wrapping", "checkpoint_in", "checkpoint_out",
      "failpoints", "max_retries", "checkpoint_interval",
      "walkers", "walker_batch",
      "fleet_workers", "fleet_snapshot_interval", "fleet_steal",
      "fleet_wedge_timeout_ms", "fleet_max_reassigns"};
  for (const auto& [key, value] : file.entries()) {
    DQMC_CHECK_MSG(kKnown.count(key) > 0, "unknown config key: " + key);
    (void)value;
  }

  core::SimulationConfig cfg;
  cfg.lx = file.get_long("lx", 4);
  cfg.ly = file.get_long("ly", cfg.lx);
  cfg.layers = file.get_long("layers", 1);
  cfg.model.t = file.get_double("t", 1.0);
  cfg.model.t_perp = file.get_double("tperp", cfg.model.t);
  cfg.model.u = file.get_double("u", 4.0);
  cfg.model.mu = file.get_double("mu", 0.0);
  cfg.model.beta = file.get_double("beta", 4.0);
  cfg.model.slices = file.get_long("slices", file.get_long("L", 40));
  cfg.warmup_sweeps = file.get_long("warmup", file.get_long("nwarm", 100));
  cfg.measurement_sweeps = file.get_long("sweeps", file.get_long("npass", 200));
  cfg.measure_interval = file.get_long("measure_interval", 1);
  cfg.measure_slice_interval = file.get_long("measure_slice_interval", 0);
  cfg.measure_dynamic_interval = file.get_long("measure_dynamic_interval", 0);
  cfg.bins = file.get_long("bins", 16);
  cfg.seed = static_cast<std::uint64_t>(file.get_long("seed", 1));

  const std::string alg = file.get("algorithm", "prepivot");
  if (alg == "prepivot") {
    cfg.engine.algorithm = core::StratAlgorithm::kPrePivot;
  } else if (alg == "qrp") {
    cfg.engine.algorithm = core::StratAlgorithm::kQRP;
  } else if (alg == "svdstack") {
    cfg.engine.algorithm = core::StratAlgorithm::kSvdStack;
  } else {
    throw InvalidArgument(
        "algorithm must be 'prepivot', 'qrp' or 'svdstack', got '" + alg +
        "'");
  }
  // "stabilizer = graded|svdstack" names the stabilization strategy
  // directly: graded keeps whatever QR flavor `algorithm` chose, svdstack
  // switches the whole accumulation to the SVD stack.
  const std::string stab = file.get("stabilizer", "graded");
  if (stab == "svdstack") {
    cfg.engine.algorithm = core::StratAlgorithm::kSvdStack;
  } else if (stab != "graded") {
    throw InvalidArgument("stabilizer must be 'graded' or 'svdstack', got '" +
                          stab + "'");
  }
  // "precision = fp64|fp32" selects the wrap precision policy (fp32 wraps
  // with the structural fp64 correction; docs/STABILITY.md).
  cfg.engine.precision =
      backend::precision_from_string(file.get("precision", "fp64"));
  // "measure = direct|fft" selects the measurement kernel family: direct is
  // the historical O(N^2) site-pair path, fft routes momentum projections
  // and displacement correlators through the planned FFT pipeline
  // (docs/PERFORMANCE.md). Trajectories are identical across modes.
  cfg.engine.measure =
      core::measure_kind_from_string(file.get("measure", "direct"));
  cfg.engine.cluster_size =
      file.get_long("cluster_size", file.get_long("north", 10));
  cfg.engine.delay_rank = file.get_long("delay_rank", 32);
  // "backend = host|gpusim" selects the compute backend. The pre-backend
  // keys gpu_clustering / gpu_wrapping are kept as deprecated aliases:
  // either one non-zero maps to backend = gpusim.
  if (file.has("backend")) {
    cfg.engine.backend = backend::backend_kind_from_string(file.get("backend", "host"));
  } else if (file.get_long("gpu_clustering", 0) != 0 ||
             file.get_long("gpu_wrapping", 0) != 0) {
    cfg.engine.backend = backend::BackendKind::kGpuSim;
  }
  // "kinetic = dense|checkerboard" selects the kinetic-factor
  // representation (dense GEMM vs split-bond replay).
  cfg.engine.kinetic =
      hubbard::kinetic_kind_from_string(file.get("kinetic", "dense"));
  // Crowd size for the batched walker path (0 = per-chain tasks). The
  // companion `walkers` key — how many chains to run — is read by the
  // driver, not here: it selects between the single- and multi-chain entry
  // points rather than shaping the SimulationConfig.
  cfg.walker_batch = file.get_long("walker_batch", 0);
  DQMC_CHECK_MSG(cfg.walker_batch >= 0, "walker_batch must be >= 0");
  cfg.checkpoint_in = file.get("checkpoint_in", "");
  cfg.checkpoint_out = file.get("checkpoint_out", "");
  return cfg;
}

core::SupervisorPolicy supervisor_policy_from(const ConfigFile& file) {
  core::SupervisorPolicy policy;
  policy.max_retries =
      static_cast<int>(file.get_long("max_retries", policy.max_retries));
  policy.checkpoint_interval =
      file.get_long("checkpoint_interval", policy.checkpoint_interval);
  policy.validate();
  return policy;
}

fleet::FleetConfig fleet_config_from(const ConfigFile& file) {
  fleet::FleetConfig fc;
  fc.workers = file.get_long("fleet_workers", fc.workers);
  fc.snapshot_interval =
      file.get_long("fleet_snapshot_interval", fc.snapshot_interval);
  fc.steal = file.get_long("fleet_steal", fc.steal ? 1 : 0) != 0;
  fc.wedge_timeout_ms =
      file.get_long("fleet_wedge_timeout_ms", fc.wedge_timeout_ms);
  fc.max_reassigns =
      static_cast<int>(file.get_long("fleet_max_reassigns", fc.max_reassigns));
  fc.validate();
  return fc;
}

}  // namespace dqmc::cli
