// QUEST-style plain-text input files: "key = value" lines with '#'
// comments. The paper notes that QUEST's lattice size and physical
// parameters are "very generally configurable through an input file" —
// this module provides the same workflow for dqmcpp (see examples/dqmc_run).
#pragma once

#include <map>
#include <string>

#include "dqmc/simulation.h"
#include "dqmc/supervisor.h"
#include "fleet/options.h"

namespace dqmc::cli {

/// Parsed key/value file. Keys are case-sensitive; later duplicates win.
class ConfigFile {
 public:
  /// Parse from file contents (not a path; callers read the file).
  static ConfigFile parse(const std::string& text);
  /// Read and parse a file on disk; throws on I/O errors.
  static ConfigFile load(const std::string& path);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long get_long(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  const std::map<std::string, std::string>& entries() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Build a SimulationConfig from a config file. Recognized keys (all
/// optional, QUEST-flavoured names):
///   lx, ly, layers, t, tperp, u, mu, beta, slices (or L),
///   warmup (or nwarm), sweeps (or npass), measure_interval,
///   measure_slice_interval, bins, seed,
///   algorithm (qrp | prepivot), cluster_size (or north), delay_rank,
///   backend (host | gpusim)
/// gpu_clustering / gpu_wrapping (0/1) are accepted as deprecated aliases:
/// either one non-zero selects backend = gpusim.
/// Unknown keys throw, so typos are caught. Fault-tolerance keys:
///   failpoints (arm spec — the CALLER arms the global registry; parsing
///   a file never does), max_retries, checkpoint_interval.
core::SimulationConfig simulation_config_from(const ConfigFile& file);

/// Supervisor knobs from the same file (max_retries,
/// checkpoint_interval); everything else keeps SupervisorPolicy defaults.
core::SupervisorPolicy supervisor_policy_from(const ConfigFile& file);

/// Fleet knobs from the same file: fleet_workers, fleet_snapshot_interval,
/// fleet_steal (0/1), fleet_wedge_timeout_ms, fleet_max_reassigns;
/// everything else keeps FleetConfig defaults (fail-point arming and
/// artifact paths stay driver flags — they name per-invocation state, not
/// the simulation).
fleet::FleetConfig fleet_config_from(const ConfigFile& file);

}  // namespace dqmc::cli
