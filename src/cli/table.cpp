#include "cli/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace dqmc::cli {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DQMC_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DQMC_CHECK_MSG(cells.size() <= headers_.size(), "row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::integer(long v) { return std::to_string(v); }

std::string Table::pm(double mean, double error, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f +- %.*f", precision, mean, precision,
                error);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::string cell = cells[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < cells.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c], '-');
    if (c + 1 < headers_.size()) sep += "  ";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string ascii_heatmap(const std::vector<double>& values, int rows,
                          int cols, bool symmetric) {
  DQMC_CHECK(rows >= 1 && cols >= 1);
  DQMC_CHECK(values.size() == static_cast<std::size_t>(rows) * cols);
  static const char* kRamp = " .:-=+*#%@";
  const int levels = 10;

  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (symmetric) {
    const double m = std::max(std::fabs(lo), std::fabs(hi));
    lo = -m;
    hi = m;
  }
  const double span = (hi > lo) ? (hi - lo) : 1.0;

  std::string out;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double v = values[static_cast<std::size_t>(r) * cols + c];
      int level = static_cast<int>((v - lo) / span * (levels - 1) + 0.5);
      level = std::clamp(level, 0, levels - 1);
      out += kRamp[level];
      out += kRamp[level];  // double width: terminal cells are ~2:1
    }
    out += '\n';
  }
  char footer[96];
  std::snprintf(footer, sizeof footer, "[min %.4f  max %.4f]\n",
                symmetric ? lo : lo, symmetric ? hi : hi);
  out += footer;
  return out;
}

}  // namespace dqmc::cli
