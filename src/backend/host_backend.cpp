#include "backend/host_backend.h"

#include <cstring>

#include "common/stopwatch.h"
#include "linalg/cb_operator.h"
#include "linalg/diag.h"
#include "linalg/fp32.h"
#include "parallel/task_runtime.h"

namespace dqmc::backend {

namespace {

using linalg::Matrix;
using linalg::Vector;

class HostMatrix final : public MatrixHandle {
 public:
  HostMatrix(idx rows, idx cols, Precision precision)
      : MatrixHandle(BackendKind::kHost, rows, cols, precision),
        storage(rows, cols) {}
  Matrix storage;
};

class HostVector final : public VectorHandle {
 public:
  HostVector(idx n, Precision precision)
      : VectorHandle(BackendKind::kHost, n, precision), storage(n) {}
  Vector storage;
};

class HostKinetic final : public KineticHandle {
 public:
  explicit HostKinetic(linalg::CbOperator o)
      : KineticHandle(BackendKind::kHost, o.n, o.num_bonds(), o.num_groups()),
        op(std::move(o)) {}
  linalg::CbOperator op;
};

const HostKinetic& as_kinetic(const KineticHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kHost,
                 "kinetic handle belongs to a different backend");
  return static_cast<const HostKinetic&>(h);
}

Matrix& as(MatrixHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kHost,
                 "matrix handle belongs to a different backend");
  return static_cast<HostMatrix&>(h).storage;
}

const Matrix& as(const MatrixHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kHost,
                 "matrix handle belongs to a different backend");
  return static_cast<const HostMatrix&>(h).storage;
}

Vector& as(VectorHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kHost,
                 "vector handle belongs to a different backend");
  return static_cast<HostVector&>(h).storage;
}

const Vector& as(const VectorHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kHost,
                 "vector handle belongs to a different backend");
  return static_cast<const HostVector&>(h).storage;
}

}  // namespace

std::unique_ptr<MatrixHandle> HostBackend::alloc_matrix(idx rows, idx cols,
                                                        Precision precision) {
  DQMC_CHECK(rows >= 0 && cols >= 0);
  return std::make_unique<HostMatrix>(rows, cols, precision);
}

std::unique_ptr<VectorHandle> HostBackend::alloc_vector(idx n,
                                                        Precision precision) {
  DQMC_CHECK(n >= 0);
  return std::make_unique<HostVector>(n, precision);
}

std::unique_ptr<KineticHandle> HostBackend::alloc_kinetic(
    const linalg::CbOperator& op) {
  op.validate();
  return std::make_unique<HostKinetic>(op);
}

void HostBackend::account_compute(double seconds) {
  std::lock_guard lock(stats_mutex_);
  stats_.compute_seconds += seconds;
  stats_.kernel_launches += 1;
}

void HostBackend::account_transfer(double bytes, double seconds, bool h2d) {
  std::lock_guard lock(stats_mutex_);
  stats_.transfer_seconds += seconds;
  stats_.transfers += 1;
  (h2d ? stats_.bytes_h2d : stats_.bytes_d2h) += bytes;
}

void HostBackend::upload(ConstMatrixView host, MatrixHandle& dst) {
  Matrix& d = as(dst);
  DQMC_CHECK(host.rows() == d.rows() && host.cols() == d.cols());
  Stopwatch watch;
  linalg::copy(host, d);
  account_transfer(dst.bytes(), watch.seconds(), /*h2d=*/true);
}

void HostBackend::download(const MatrixHandle& src, MatrixView host) {
  const Matrix& s = as(src);
  DQMC_CHECK(host.rows() == s.rows() && host.cols() == s.cols());
  Stopwatch watch;
  linalg::copy(s, host);
  account_transfer(src.bytes(), watch.seconds(), /*h2d=*/false);
}

void HostBackend::upload_vector(const double* host, idx n, VectorHandle& dst) {
  DQMC_CHECK(n == dst.size());
  Stopwatch watch;
  std::memcpy(as(dst).data(), host,
              sizeof(double) * static_cast<std::size_t>(n));
  account_transfer(dst.bytes(), watch.seconds(), /*h2d=*/true);
}

void HostBackend::upload_async(ConstMatrixView host, MatrixHandle& dst) {
  // Synchronous backend: the async contract degenerates to a direct copy.
  upload(host, dst);
}

void HostBackend::upload_vector_async(const double* host, idx n,
                                      VectorHandle& dst) {
  upload_vector(host, n, dst);
}

void HostBackend::copy(const MatrixHandle& src, MatrixHandle& dst) {
  const Matrix& s = as(src);
  Matrix& d = as(dst);
  DQMC_CHECK(s.rows() == d.rows() && s.cols() == d.cols());
  Stopwatch watch;
  linalg::copy(s, d);
  account_compute(watch.seconds());
}

void HostBackend::gemm(Trans transa, Trans transb, double alpha,
                       const MatrixHandle& a, const MatrixHandle& b,
                       double beta, MatrixHandle& c) {
  Stopwatch watch;
  if (fp32()) {
    linalg::gemm_fp32(transa, transb, alpha, as(a).view(), as(b).view(), beta,
                      as(c).view());
  } else {
    linalg::gemm(transa, transb, alpha, as(a), as(b), beta, as(c));
  }
  account_compute(watch.seconds());
}

void HostBackend::scale_rows(const VectorHandle& v, const MatrixHandle& src,
                             MatrixHandle& dst, bool /*fused*/) {
  const Matrix& s = as(src);
  Matrix& d = as(dst);
  DQMC_CHECK(v.size() == s.rows());
  DQMC_CHECK(s.rows() == d.rows() && s.cols() == d.cols());
  Stopwatch watch;
  if (fp32()) {
    linalg::scale_rows_into_fp32(as(v).data(), s.view(), d.view());
  } else {
    linalg::scale_rows_into(as(v).data(), s, d);
  }
  account_compute(watch.seconds());
}

void HostBackend::scale_cols(const VectorHandle& v, const MatrixHandle& src,
                             MatrixHandle& dst) {
  const Matrix& s = as(src);
  Matrix& d = as(dst);
  DQMC_CHECK(v.size() == s.cols());
  DQMC_CHECK(s.rows() == d.rows() && s.cols() == d.cols());
  Stopwatch watch;
  if (&s != &d) linalg::copy(s, d);
  if (fp32()) {
    linalg::scale_cols_fp32(as(v).data(), d.view());
  } else {
    linalg::scale_cols(as(v).data(), d);
  }
  account_compute(watch.seconds());
}

void HostBackend::wrap_scale(const VectorHandle& v, MatrixHandle& g) {
  Matrix& m = as(g);
  DQMC_CHECK(v.size() == m.rows() && m.rows() == m.cols());
  Stopwatch watch;
  if (fp32()) {
    linalg::scale_rows_cols_inv_fp32(as(v).data(), as(v).data(), m.view());
  } else {
    linalg::scale_rows_cols_inv(as(v).data(), as(v).data(), m);
  }
  account_compute(watch.seconds());
}

void HostBackend::kinetic_apply(const KineticHandle& k, linalg::CbSide side,
                                bool inverse, MatrixHandle& x) {
  Stopwatch watch;
  if (fp32()) {
    linalg::cb_apply_fp32(as_kinetic(k).op, side, inverse, as(x).view());
  } else {
    linalg::cb_apply(as_kinetic(k).op, side, inverse, as(x).view());
  }
  account_compute(watch.seconds());
}

void HostBackend::kinetic_apply_batched(const KineticHandle& k,
                                        linalg::CbSide side, bool inverse,
                                        const std::vector<MatrixHandle*>& x) {
  DQMC_CHECK(!x.empty());
  const HostKinetic& hk = as_kinetic(k);
  const bool narrow = fp32();
  Stopwatch watch;
  // One task-runtime region over the crowd; each item runs the exact
  // single-item kernel, so per-item bits cannot depend on the batching.
  par::TaskGroup group;
  for (MatrixHandle* xi : x) {
    group.run([&hk, side, inverse, narrow, xi] {
      if (narrow) {
        linalg::cb_apply_fp32(hk.op, side, inverse, as(*xi).view());
      } else {
        linalg::cb_apply(hk.op, side, inverse, as(*xi).view());
      }
    });
  }
  group.wait();
  account_compute(watch.seconds());
}

void HostBackend::gemm_batched(Trans transa, Trans transb, double alpha,
                               const std::vector<const MatrixHandle*>& a,
                               const std::vector<const MatrixHandle*>& b,
                               double beta,
                               const std::vector<MatrixHandle*>& c) {
  std::vector<linalg::ConstMatrixView> av, bv;
  std::vector<linalg::MatrixView> cv;
  av.reserve(a.size());
  bv.reserve(b.size());
  cv.reserve(c.size());
  for (const MatrixHandle* h : a) av.push_back(as(*h).view());
  for (const MatrixHandle* h : b) bv.push_back(as(*h).view());
  for (MatrixHandle* h : c) cv.push_back(as(*h).view());
  Stopwatch watch;
  if (fp32()) {
    linalg::gemm_batched_fp32(transa, transb, alpha, av, bv, beta, cv);
  } else {
    linalg::gemm_batched(transa, transb, alpha, av, bv, beta, cv);
  }
  account_compute(watch.seconds());
}

void HostBackend::scale_rows_batched(
    const std::vector<const VectorHandle*>& v,
    const std::vector<const MatrixHandle*>& src,
    const std::vector<MatrixHandle*>& dst) {
  DQMC_CHECK(!dst.empty() && v.size() == dst.size());
  DQMC_CHECK(src.size() == dst.size() || src.size() == 1);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const Matrix& s = as(src.size() == 1 ? *src[0] : *src[i]);
    DQMC_CHECK(v[i]->size() == s.rows());
    DQMC_CHECK(s.rows() == dst[i]->rows() && s.cols() == dst[i]->cols());
  }
  const bool narrow = fp32();
  Stopwatch watch;
  // One task-runtime region over the batch; each item runs the exact
  // single-item kernel, so per-item results cannot depend on the batching.
  par::TaskGroup group;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    group.run([&, narrow, i] {
      const Matrix& s = as(src.size() == 1 ? *src[0] : *src[i]);
      if (narrow) {
        linalg::scale_rows_into_fp32(as(*v[i]).data(), s.view(),
                                     as(*dst[i]).view());
      } else {
        linalg::scale_rows_into(as(*v[i]).data(), s, as(*dst[i]));
      }
    });
  }
  group.wait();
  account_compute(watch.seconds());
}

void HostBackend::wrap_scale_batched(const std::vector<const VectorHandle*>& v,
                                     const std::vector<MatrixHandle*>& g) {
  DQMC_CHECK(!g.empty() && v.size() == g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    DQMC_CHECK(v[i]->size() == g[i]->rows() && g[i]->rows() == g[i]->cols());
  }
  const bool narrow = fp32();
  Stopwatch watch;
  par::TaskGroup group;
  for (std::size_t i = 0; i < g.size(); ++i) {
    group.run([&, narrow, i] {
      if (narrow) {
        linalg::scale_rows_cols_inv_fp32(as(*v[i]).data(), as(*v[i]).data(),
                                         as(*g[i]).view());
      } else {
        linalg::scale_rows_cols_inv(as(*v[i]).data(), as(*v[i]).data(),
                                    as(*g[i]));
      }
    });
  }
  group.wait();
  account_compute(watch.seconds());
}

void HostBackend::upload_batched_async(
    const std::vector<ConstMatrixView>& hosts,
    const std::vector<MatrixHandle*>& dst) {
  DQMC_CHECK(!dst.empty() && hosts.size() == dst.size());
  Stopwatch watch;
  double bytes = 0.0;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    Matrix& d = as(*dst[i]);
    DQMC_CHECK(hosts[i].rows() == d.rows() && hosts[i].cols() == d.cols());
    linalg::copy(hosts[i], d);
    bytes += dst[i]->bytes();
  }
  account_transfer(bytes, watch.seconds(), /*h2d=*/true);
}

void HostBackend::upload_vectors_async(const std::vector<const double*>& hosts,
                                       idx n,
                                       const std::vector<VectorHandle*>& dst) {
  DQMC_CHECK(!dst.empty() && hosts.size() == dst.size());
  Stopwatch watch;
  double bytes = 0.0;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    DQMC_CHECK(dst[i]->size() == n);
    std::memcpy(as(*dst[i]).data(), hosts[i],
                sizeof(double) * static_cast<std::size_t>(n));
    bytes += dst[i]->bytes();
  }
  account_transfer(bytes, watch.seconds(), /*h2d=*/true);
}

void HostBackend::download_batched(const std::vector<const MatrixHandle*>& src,
                                   const std::vector<MatrixView>& hosts) {
  DQMC_CHECK(!src.empty() && hosts.size() == src.size());
  Stopwatch watch;
  double bytes = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Matrix& s = as(*src[i]);
    DQMC_CHECK(hosts[i].rows() == s.rows() && hosts[i].cols() == s.cols());
    linalg::copy(s, hosts[i]);
    bytes += src[i]->bytes();
  }
  account_transfer(bytes, watch.seconds(), /*h2d=*/false);
}

void HostBackend::synchronize() {
  std::lock_guard lock(stats_mutex_);
  stats_.synchronizations += 1;
}

BackendStats HostBackend::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void HostBackend::reset_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = BackendStats{};
}

}  // namespace dqmc::backend
