// The compute-backend abstraction: one interface for the DQMC hot path
// (cluster products, Green's function wrapping) that runs either on the
// host task runtime (HostBackend) or on the simulated GPU with its
// virtual-clock cost model (GpuSimBackend) — the paper's hybrid CPU/GPU
// execution model behind a single seam (Section VI).
//
// Semantics follow the CUDA-stream model the simulated device implements:
//
//   * Matrices and vectors live in backend-owned opaque storage; the host
//     reaches contents only through upload()/download().
//   * Compute calls ENQUEUE work. On an async() backend they may return
//     before the work ran; every handle (and nothing else) referenced by an
//     enqueued op must stay alive until the stream next drains — i.e. until
//     synchronize() or any download()/upload() returns.
//   * Enqueue order is execution order (one in-order stream).
//
// Both backends compute with the library's own kernels, so for identical
// call sequences the results are BITWISE identical — the property the
// host<->gpusim parity tests pin down (tests/backend/). See
// docs/BACKENDS.md for the full contract and how to add a real CUDA
// backend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/blas3.h"
#include "linalg/cb_operator.h"
#include "linalg/matrix.h"

namespace dqmc::backend {

using linalg::ConstMatrixView;
using linalg::idx;
using linalg::MatrixView;
using linalg::Trans;

enum class BackendKind { kHost, kGpuSim };

/// "host" / "gpusim".
const char* backend_kind_name(BackendKind kind);
/// Parse "host" / "gpusim" (throws InvalidArgument otherwise).
BackendKind backend_kind_from_string(const std::string& name);

/// Scalar precision of backend storage and arithmetic. kFp32 is the
/// wrap-path policy (docs/STABILITY.md): buffers tagged fp32 model
/// half-width transfers and memory traffic, compute enqueued in fp32 mode
/// runs the linalg/fp32.h kernels (round on read, widen on store) at twice
/// the modeled FLOP rate. Results stay bitwise identical across backends
/// in either precision because both execute the same kernels.
enum class Precision { kFp64, kFp32 };

/// "fp64" / "fp32".
const char* precision_name(Precision p);
/// Parse "fp64" / "fp32" (throws InvalidArgument otherwise).
Precision precision_from_string(const std::string& name);

/// Storage width in bytes of one element at the given precision.
inline double precision_element_bytes(Precision p) {
  return p == Precision::kFp32 ? sizeof(float) : sizeof(double);
}

/// Cumulative accounting. For GpuSimBackend the seconds are virtual-clock
/// (cost-model) time; for HostBackend they are measured wall time. Either
/// way compute/transfer are the serial totals, while exposed_wait_seconds
/// is only the part of the async timeline the host actually stalled on —
/// work hidden behind concurrent host compute is not double-counted.
struct BackendStats {
  double compute_seconds = 0.0;
  double transfer_seconds = 0.0;
  double bytes_h2d = 0.0;
  double bytes_d2h = 0.0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t transfers = 0;
  /// Async stall the host observed at drain points (always 0 on a
  /// synchronous backend, where compute happens inside the call).
  double exposed_wait_seconds = 0.0;
  std::uint64_t synchronizations = 0;

  /// Serial-composition total (every op end to end).
  double total_seconds() const { return compute_seconds + transfer_seconds; }
  /// Pipelined-composition total: what the backend adds to host wall time
  /// when compute overlaps host work (transfers block the host by contract).
  double pipeline_seconds() const {
    return exposed_wait_seconds + transfer_seconds;
  }

  BackendStats& operator+=(const BackendStats& o);
};

/// Opaque backend-resident matrix. Created by ComputeBackend::alloc_matrix;
/// a handle is only valid with the backend that allocated it.
class MatrixHandle {
 public:
  virtual ~MatrixHandle() = default;
  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  /// Storage dtype the buffer was allocated with; drives the modeled
  /// transfer and memory-traffic volume below.
  Precision precision() const { return precision_; }
  double bytes() const {
    return static_cast<double>(rows_) * static_cast<double>(cols_) *
           precision_element_bytes(precision_);
  }
  BackendKind kind() const { return kind_; }

 protected:
  MatrixHandle(BackendKind kind, idx rows, idx cols,
               Precision precision = Precision::kFp64)
      : kind_(kind), rows_(rows), cols_(cols), precision_(precision) {}

 private:
  BackendKind kind_;
  idx rows_, cols_;
  Precision precision_;
};

/// Opaque backend-resident vector (diagonal scalings live here).
class VectorHandle {
 public:
  virtual ~VectorHandle() = default;
  idx size() const { return size_; }
  Precision precision() const { return precision_; }
  double bytes() const {
    return static_cast<double>(size_) * precision_element_bytes(precision_);
  }
  BackendKind kind() const { return kind_; }

 protected:
  VectorHandle(BackendKind kind, idx n,
               Precision precision = Precision::kFp64)
      : kind_(kind), size_(n), precision_(precision) {}

 private:
  BackendKind kind_;
  idx size_;
  Precision precision_;
};

/// Opaque backend-resident structured kinetic operator (a checkerboard
/// bond table). Uploaded once via ComputeBackend::alloc_kinetic and
/// replayed by kinetic_apply — the structured counterpart of keeping the
/// dense e^{-dtau K} resident in a MatrixHandle.
class KineticHandle {
 public:
  virtual ~KineticHandle() = default;
  idx n() const { return n_; }
  idx num_bonds() const { return bonds_; }
  idx num_groups() const { return groups_; }
  BackendKind kind() const { return kind_; }

 protected:
  KineticHandle(BackendKind kind, idx n, idx bonds, idx groups)
      : kind_(kind), n_(n), bonds_(bonds), groups_(groups) {}

 private:
  BackendKind kind_;
  idx n_, bonds_, groups_;
};

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_kind_name(kind()); }

  /// True when compute calls enqueue asynchronously (the CUDA-stream
  /// model): callers must keep arguments alive until the stream drains and
  /// should serialize command submission from one thread at a time.
  virtual bool async() const = 0;

  /// Allocate uninitialized backend storage. `precision` tags the buffer's
  /// storage dtype: fp32 buffers model half-width transfers and memory
  /// traffic (contents are held widened on the host side either way, so
  /// handles of different precisions mix freely in compute calls).
  virtual std::unique_ptr<MatrixHandle> alloc_matrix(
      idx rows, idx cols, Precision precision = Precision::kFp64) = 0;
  virtual std::unique_ptr<VectorHandle> alloc_vector(
      idx n, Precision precision = Precision::kFp64) = 0;

  /// Arithmetic precision of subsequently ENQUEUED compute ops. In kFp32
  /// mode gemm/scale/wrap/kinetic ops (and their batched forms) run the
  /// linalg/fp32.h kernels — round on read, float chains, widen on store —
  /// and the gpusim cost model doubles the modeled FLOP rate. The mode is
  /// captured at enqueue time on the submitting thread, so callers bracket
  /// exactly the ops they want narrowed (the wrap composites do this) and
  /// everything else stays fp64.
  virtual void set_compute_precision(Precision p) = 0;
  virtual Precision compute_precision() const = 0;

  /// Host -> backend (cublasSetMatrix). Blocks until complete.
  virtual void upload(ConstMatrixView host, MatrixHandle& dst) = 0;
  /// Backend -> host (cublasGetMatrix). Blocks until the stream drains.
  virtual void download(const MatrixHandle& src, MatrixView host) = 0;
  /// Host -> backend vector (cublasSetVector). Blocks until complete; the
  /// host buffer may be reused immediately after return.
  virtual void upload_vector(const double* host, idx n, VectorHandle& dst) = 0;

  /// Host -> backend, enqueued on the stream (cublasSetMatrixAsync): the
  /// host storage behind `host` must stay alive AND unmodified until the
  /// stream next drains. Immediate copy on a synchronous backend.
  virtual void upload_async(ConstMatrixView host, MatrixHandle& dst) = 0;
  /// Async vector upload with the same lifetime contract as upload_async.
  virtual void upload_vector_async(const double* host, idx n,
                                   VectorHandle& dst) = 0;

  /// dst <- src (backend-side).
  virtual void copy(const MatrixHandle& src, MatrixHandle& dst) = 0;

  /// C <- alpha op(A) op(B) + beta C (backend-side DGEMM).
  virtual void gemm(Trans transa, Trans transb, double alpha,
                    const MatrixHandle& a, const MatrixHandle& b, double beta,
                    MatrixHandle& c) = 0;

  /// dst <- diag(v) * src. `fused` selects the Algorithm 5 single-launch
  /// kernel; false models the Algorithm 4 row-by-row cublasDscal path
  /// (identical arithmetic, different cost model). src and dst may alias.
  virtual void scale_rows(const VectorHandle& v, const MatrixHandle& src,
                          MatrixHandle& dst, bool fused = true) = 0;

  /// dst <- src * diag(v), one launch per column (the Algorithm 6
  /// companion). src and dst may alias.
  virtual void scale_cols(const VectorHandle& v, const MatrixHandle& src,
                          MatrixHandle& dst) = 0;

  /// g <- diag(v) * g * diag(v)^{-1} in one fused launch (Algorithm 7).
  virtual void wrap_scale(const VectorHandle& v, MatrixHandle& g) = 0;

  // ---- Structured kinetic applies (checkerboard mode) --------------------
  // The checkerboard factorization of B = e^{-dtau K} replaces every GEMM
  // against the dense kinetic matrix with a replay of its bond groups:
  // O(bonds x cols) memory-bound work instead of O(n^2 x cols) flops.
  // The bond table uploads once (alloc_kinetic) and is immutable; applies
  // run in place on a resident matrix. Both backends execute the same
  // linalg::cb_apply arithmetic, so results remain bitwise identical
  // across backends — and identical to the host factory's structured path.

  /// Upload a validated checkerboard operator; one h2d transfer.
  virtual std::unique_ptr<KineticHandle> alloc_kinetic(
      const linalg::CbOperator& op) = 0;

  /// In place: x <- B x (kLeft) or x <- x B (kRight); `inverse` applies
  /// the exact inverse of the factorization.
  virtual void kinetic_apply(const KineticHandle& k, linalg::CbSide side,
                             bool inverse, MatrixHandle& x) = 0;

  // ---- Batched operations (walker crowds) --------------------------------
  // One enqueue covering count = <output>.size() same-shape items:
  // HostBackend runs the batch through the library's batched kernels inside
  // one task-runtime region; GpuSimBackend models a cuBLAS-batched launch
  // (one launch fee / one PCIe transaction, aggregate-volume occupancy).
  // An `a`/`b`/`src` argument of size 1 designates one SHARED operand read
  // by every item. Results are bitwise identical per item to issuing the
  // count non-batched calls; lifetime contract as for the single-item ops.

  /// C_i <- alpha op(A_i) op(B_i) + beta C_i (cublasDgemmBatched).
  virtual void gemm_batched(Trans transa, Trans transb, double alpha,
                            const std::vector<const MatrixHandle*>& a,
                            const std::vector<const MatrixHandle*>& b,
                            double beta,
                            const std::vector<MatrixHandle*>& c) = 0;

  /// dst_i <- diag(v_i) * src_i, fused (Algorithm 5), one launch.
  virtual void scale_rows_batched(const std::vector<const VectorHandle*>& v,
                                  const std::vector<const MatrixHandle*>& src,
                                  const std::vector<MatrixHandle*>& dst) = 0;

  /// g_i <- diag(v_i) g_i diag(v_i)^{-1} (Algorithm 7), one launch.
  virtual void wrap_scale_batched(const std::vector<const VectorHandle*>& v,
                                  const std::vector<MatrixHandle*>& g) = 0;

  /// Batched structured apply: ONE shared bond table replayed in place
  /// over every item with a single apply's launch count (each per-group
  /// kernel spans the whole crowd). Bitwise identical per item to issuing
  /// x.size() kinetic_apply calls.
  virtual void kinetic_apply_batched(const KineticHandle& k,
                                     linalg::CbSide side, bool inverse,
                                     const std::vector<MatrixHandle*>& x) = 0;

  /// Batched upload_async: one transfer transaction for all items.
  virtual void upload_batched_async(const std::vector<ConstMatrixView>& hosts,
                                    const std::vector<MatrixHandle*>& dst) = 0;
  /// Batched upload_vector_async (all vectors of length n).
  virtual void upload_vectors_async(const std::vector<const double*>& hosts,
                                    idx n,
                                    const std::vector<VectorHandle*>& dst) = 0;
  /// Batched download: drains the stream, one transfer transaction.
  virtual void download_batched(const std::vector<const MatrixHandle*>& src,
                                const std::vector<MatrixView>& hosts) = 0;

  /// Block the host until all enqueued work has executed.
  virtual void synchronize() = 0;

  virtual BackendStats stats() const = 0;
  virtual void reset_stats() = 0;
};

/// RAII bracket for the enqueue-time compute precision: sets `p` on
/// construction and restores the previous mode on scope exit, so composites
/// narrow exactly the ops they enqueue inside the bracket.
class ScopedComputePrecision {
 public:
  ScopedComputePrecision(ComputeBackend& backend, Precision p)
      : backend_(backend), prev_(backend.compute_precision()) {
    backend_.set_compute_precision(p);
  }
  ~ScopedComputePrecision() { backend_.set_compute_precision(prev_); }
  ScopedComputePrecision(const ScopedComputePrecision&) = delete;
  ScopedComputePrecision& operator=(const ScopedComputePrecision&) = delete;

 private:
  ComputeBackend& backend_;
  Precision prev_;
};

/// Construct a backend of the given kind (GpuSim uses the default
/// Tesla-C2050 cost model).
std::unique_ptr<ComputeBackend> make_backend(BackendKind kind);

}  // namespace dqmc::backend
