#include "backend/backend.h"

#include "backend/gpusim_backend.h"
#include "backend/host_backend.h"
#include "common/error.h"

namespace dqmc::backend {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kHost:
      return "host";
    case BackendKind::kGpuSim:
      return "gpusim";
  }
  throw InvalidArgument("unknown BackendKind");
}

BackendKind backend_kind_from_string(const std::string& name) {
  if (name == "host") return BackendKind::kHost;
  if (name == "gpusim") return BackendKind::kGpuSim;
  throw InvalidArgument("unknown backend '" + name +
                        "' (expected host or gpusim)");
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return "fp64";
    case Precision::kFp32:
      return "fp32";
  }
  throw InvalidArgument("unknown Precision");
}

Precision precision_from_string(const std::string& name) {
  if (name == "fp64") return Precision::kFp64;
  if (name == "fp32") return Precision::kFp32;
  throw InvalidArgument("unknown precision '" + name +
                        "' (expected fp64 or fp32)");
}

BackendStats& BackendStats::operator+=(const BackendStats& o) {
  compute_seconds += o.compute_seconds;
  transfer_seconds += o.transfer_seconds;
  bytes_h2d += o.bytes_h2d;
  bytes_d2h += o.bytes_d2h;
  kernel_launches += o.kernel_launches;
  transfers += o.transfers;
  exposed_wait_seconds += o.exposed_wait_seconds;
  synchronizations += o.synchronizations;
  return *this;
}

std::unique_ptr<ComputeBackend> make_backend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kHost:
      return std::make_unique<HostBackend>();
    case BackendKind::kGpuSim:
      return std::make_unique<GpuSimBackend>();
  }
  throw InvalidArgument("unknown BackendKind");
}

}  // namespace dqmc::backend
