// HostBackend: the ComputeBackend that runs every operation synchronously
// on the calling thread with the library's own kernels — which themselves
// fan out over the task runtime (threaded GEMM, parallel fringes). Handles
// own plain linalg storage; upload/download are deep copies so the
// ownership rules match the async backends exactly.
#pragma once

#include <mutex>

#include "backend/backend.h"

namespace dqmc::backend {

class HostBackend final : public ComputeBackend {
 public:
  HostBackend() = default;

  BackendKind kind() const override { return BackendKind::kHost; }
  bool async() const override { return false; }

  std::unique_ptr<MatrixHandle> alloc_matrix(idx rows, idx cols) override;
  std::unique_ptr<VectorHandle> alloc_vector(idx n) override;

  void upload(ConstMatrixView host, MatrixHandle& dst) override;
  void download(const MatrixHandle& src, MatrixView host) override;
  void upload_vector(const double* host, idx n, VectorHandle& dst) override;
  void upload_async(ConstMatrixView host, MatrixHandle& dst) override;
  void upload_vector_async(const double* host, idx n,
                           VectorHandle& dst) override;

  void copy(const MatrixHandle& src, MatrixHandle& dst) override;
  void gemm(Trans transa, Trans transb, double alpha, const MatrixHandle& a,
            const MatrixHandle& b, double beta, MatrixHandle& c) override;
  void scale_rows(const VectorHandle& v, const MatrixHandle& src,
                  MatrixHandle& dst, bool fused = true) override;
  void scale_cols(const VectorHandle& v, const MatrixHandle& src,
                  MatrixHandle& dst) override;
  void wrap_scale(const VectorHandle& v, MatrixHandle& g) override;

  void synchronize() override;

  BackendStats stats() const override;
  void reset_stats() override;

 private:
  void account_compute(double seconds);
  void account_transfer(double bytes, double seconds, bool h2d);

  mutable std::mutex stats_mutex_;
  BackendStats stats_;
};

}  // namespace dqmc::backend
