// HostBackend: the ComputeBackend that runs every operation synchronously
// on the calling thread with the library's own kernels — which themselves
// fan out over the task runtime (threaded GEMM, parallel fringes). Handles
// own plain linalg storage; upload/download are deep copies so the
// ownership rules match the async backends exactly.
#pragma once

#include <atomic>
#include <mutex>

#include "backend/backend.h"

namespace dqmc::backend {

class HostBackend final : public ComputeBackend {
 public:
  HostBackend() = default;

  BackendKind kind() const override { return BackendKind::kHost; }
  bool async() const override { return false; }

  std::unique_ptr<MatrixHandle> alloc_matrix(
      idx rows, idx cols, Precision precision = Precision::kFp64) override;
  std::unique_ptr<VectorHandle> alloc_vector(
      idx n, Precision precision = Precision::kFp64) override;
  std::unique_ptr<KineticHandle> alloc_kinetic(
      const linalg::CbOperator& op) override;

  void upload(ConstMatrixView host, MatrixHandle& dst) override;
  void download(const MatrixHandle& src, MatrixView host) override;
  void upload_vector(const double* host, idx n, VectorHandle& dst) override;
  void upload_async(ConstMatrixView host, MatrixHandle& dst) override;
  void upload_vector_async(const double* host, idx n,
                           VectorHandle& dst) override;

  void copy(const MatrixHandle& src, MatrixHandle& dst) override;
  void gemm(Trans transa, Trans transb, double alpha, const MatrixHandle& a,
            const MatrixHandle& b, double beta, MatrixHandle& c) override;
  void scale_rows(const VectorHandle& v, const MatrixHandle& src,
                  MatrixHandle& dst, bool fused = true) override;
  void scale_cols(const VectorHandle& v, const MatrixHandle& src,
                  MatrixHandle& dst) override;
  void wrap_scale(const VectorHandle& v, MatrixHandle& g) override;
  void kinetic_apply(const KineticHandle& k, linalg::CbSide side, bool inverse,
                     MatrixHandle& x) override;
  void kinetic_apply_batched(const KineticHandle& k, linalg::CbSide side,
                             bool inverse,
                             const std::vector<MatrixHandle*>& x) override;

  void gemm_batched(Trans transa, Trans transb, double alpha,
                    const std::vector<const MatrixHandle*>& a,
                    const std::vector<const MatrixHandle*>& b, double beta,
                    const std::vector<MatrixHandle*>& c) override;
  void scale_rows_batched(const std::vector<const VectorHandle*>& v,
                          const std::vector<const MatrixHandle*>& src,
                          const std::vector<MatrixHandle*>& dst) override;
  void wrap_scale_batched(const std::vector<const VectorHandle*>& v,
                          const std::vector<MatrixHandle*>& g) override;
  void upload_batched_async(const std::vector<ConstMatrixView>& hosts,
                            const std::vector<MatrixHandle*>& dst) override;
  void upload_vectors_async(const std::vector<const double*>& hosts, idx n,
                            const std::vector<VectorHandle*>& dst) override;
  void download_batched(const std::vector<const MatrixHandle*>& src,
                        const std::vector<MatrixView>& hosts) override;

  void synchronize() override;

  void set_compute_precision(Precision p) override {
    compute_precision_.store(p, std::memory_order_relaxed);
  }
  Precision compute_precision() const override {
    return compute_precision_.load(std::memory_order_relaxed);
  }

  BackendStats stats() const override;
  void reset_stats() override;

 private:
  bool fp32() const { return compute_precision() == Precision::kFp32; }
  void account_compute(double seconds);
  void account_transfer(double bytes, double seconds, bool h2d);

  // Atomic because concurrent spin chains bracket the (identical) mode on
  // one shared backend; relaxed — the value itself carries no ordering.
  std::atomic<Precision> compute_precision_{Precision::kFp64};
  mutable std::mutex stats_mutex_;
  BackendStats stats_;
};

}  // namespace dqmc::backend
