#include "backend/bchain.h"

#include "fault/failpoint.h"
#include "obs/flight_recorder.h"

namespace dqmc::backend {

namespace {

// Fail points at the enqueue path: the generic site plus a
// backend-qualified one, so tests can fault only the gpusim path (a
// persistent backend.enqueue.gpusim fault goes quiet after the supervisor
// degrades the chain to the host backend).
void enqueue_failpoint(const ComputeBackend& backend) {
  const bool gpusim = backend.kind() == BackendKind::kGpuSim;
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kEnqueue, "bchain.composite",
                    gpusim ? "gpusim" : "host");
  DQMC_FAILPOINT("backend.enqueue");
  DQMC_FAILPOINT(gpusim ? "backend.enqueue.gpusim" : "backend.enqueue.host");
}

}  // namespace

BackendBChain::BackendBChain(ComputeBackend& backend, ConstMatrixView b,
                             ConstMatrixView binv, Precision precision)
    : backend_(backend), n_(b.rows()), precision_(precision) {
  DQMC_CHECK(b.rows() == b.cols());
  DQMC_CHECK(binv.rows() == n_ && binv.cols() == n_);
  // Wrap-path buffers (G and the diagonals) carry the policy's storage tag;
  // the resident factors and cluster scratch stay fp64 — cluster products
  // are never narrowed. (The diagonals also serve the fp64 cluster path;
  // their O(N) footprint is noise next to the O(N^2) matrices.)
  b_ = backend_.alloc_matrix(n_, n_);
  binv_ = backend_.alloc_matrix(n_, n_);
  t_ = backend_.alloc_matrix(n_, n_);
  a_ = backend_.alloc_matrix(n_, n_);
  g_ = backend_.alloc_matrix(n_, n_, precision_);
  v_ = backend_.alloc_vector(n_, precision_);
  v_inv_ = backend_.alloc_vector(n_, precision_);
  backend_.upload(b, *b_);
  backend_.upload(binv, *binv_);
}

BackendBChain::BackendBChain(ComputeBackend& backend,
                             const linalg::CbOperator& op, Precision precision)
    : backend_(backend), n_(op.n), precision_(precision) {
  // No resident dense factors and no GEMM scratch: every kinetic factor
  // replays the bond table in place. The identity seed bootstraps cluster
  // products (A starts as I, then A <- B A per factor).
  kinetic_ = backend_.alloc_kinetic(op);
  ident_ = backend_.alloc_matrix(n_, n_);
  a_ = backend_.alloc_matrix(n_, n_);
  g_ = backend_.alloc_matrix(n_, n_, precision_);
  v_ = backend_.alloc_vector(n_, precision_);
  v_inv_ = backend_.alloc_vector(n_, precision_);
  backend_.upload(Matrix::identity(n_), *ident_);
}

Matrix BackendBChain::cluster_product(const std::vector<Vector>& vs,
                                      bool fused_kernel) {
  DQMC_CHECK_MSG(!vs.empty(), "cluster_product needs at least one factor");
  for (const Vector& v : vs) DQMC_CHECK(v.size() == n_);
  enqueue_failpoint(backend_);

  if (structured()) {
    // A starts as the identity; each factor replays the bond table in
    // place, then scales rows — no GEMM anywhere in the chain. The first
    // replay renders exactly the dense b() the factory exposes (both are
    // cb_apply on the identity), so this stays bitwise equal to the dense
    // data path fed from the same operator.
    backend_.copy(*ident_, *a_);
    backend_.kinetic_apply(*kinetic_, linalg::CbSide::kLeft, false, *a_);
    backend_.upload_vector_async(vs[0].data(), n_, *v_);
    backend_.scale_rows(*v_, *a_, *a_, fused_kernel);
    for (std::size_t l = 1; l < vs.size(); ++l) {
      backend_.kinetic_apply(*kinetic_, linalg::CbSide::kLeft, false, *a_);
      backend_.upload_vector_async(vs[l].data(), n_, *v_);
      backend_.scale_rows(*v_, *a_, *a_, fused_kernel);
    }
    Matrix result(n_, n_);
    backend_.download(*a_, result);
    return result;
  }

  // A = diag(vs[0]) * B    (Algorithm 4/5 first step)
  backend_.upload_vector_async(vs[0].data(), n_, *v_);
  backend_.scale_rows(*v_, *b_, *a_, fused_kernel);

  // for l = 1..k-1: T <- B * A;  A <- diag(vs[l]) * T
  // The V uploads are enqueued on the stream, so each one pipelines behind
  // the GEMM before it — and FIFO order makes reusing the single v_
  // workspace safe. `vs` stays alive until the download drains the stream.
  for (std::size_t l = 1; l < vs.size(); ++l) {
    backend_.gemm(Trans::No, Trans::No, 1.0, *b_, *a_, 0.0, *t_);
    backend_.upload_vector_async(vs[l].data(), n_, *v_);
    backend_.scale_rows(*v_, *t_, *a_, fused_kernel);
  }

  Matrix result(n_, n_);
  backend_.download(*a_, result);
  return result;
}

void BackendBChain::wrap(MatrixView g, const Vector& v, bool fused_kernel,
                         bool host_unchanged) {
  DQMC_CHECK(g.rows() == n_ && g.cols() == n_);
  DQMC_CHECK(v.size() == n_);
  enqueue_failpoint(backend_);

  if (host_unchanged && g_resident_) {
    // The device copy still holds exactly what the previous wrap downloaded
    // into this host matrix; skip the O(N^2) re-upload.
    ++wrap_uploads_skipped_;
  } else {
    backend_.upload_async(g, *g_);
  }
  backend_.upload_vector_async(v.data(), n_, *v_);
  {
    // The policy bracket: every compute op the wrap enqueues runs at the
    // chain's precision (kFp64 policy makes this a no-op). Uploads and the
    // download below are unaffected — transfer width follows the buffer tag.
    ScopedComputePrecision mode(backend_, precision_);
    if (structured()) {
      // G <- B G B^{-1} as two in-place bond-table replays (left forward,
      // right inverse) — the GEMM-free wrap that makes checkerboard win at
      // large N.
      backend_.kinetic_apply(*kinetic_, linalg::CbSide::kLeft, false, *g_);
      backend_.kinetic_apply(*kinetic_, linalg::CbSide::kRight, true, *g_);
    } else {
      // T = B * G; G = T * B^{-1}; then G = diag(v) G diag(v)^{-1}.
      backend_.gemm(Trans::No, Trans::No, 1.0, *b_, *g_, 0.0, *t_);
      backend_.gemm(Trans::No, Trans::No, 1.0, *t_, *binv_, 0.0, *g_);
    }
    if (fused_kernel) {
      backend_.wrap_scale(*v_, *g_);
    } else {
      // Algorithm 6: a row sweep and a column sweep of cublasDscal calls.
      backend_.scale_rows(*v_, *g_, *g_, /*fused=*/false);
      Vector vinv(n_);
      for (idx i = 0; i < n_; ++i) vinv[i] = 1.0 / v[i];
      backend_.upload_vector(vinv.data(), n_, *v_inv_);
      // Column scaling modeled as one cublasDscal launch per column.
      backend_.scale_cols(*v_inv_, *g_, *g_);
    }
  }
  backend_.download(*g_, g);
  g_resident_ = true;
}

double cluster_product_flops(idx n, idx k) {
  const double nn = static_cast<double>(n);
  return (static_cast<double>(k) - 1.0) * 2.0 * nn * nn * nn +
         static_cast<double>(k) * nn * nn;
}

double wrap_flops(idx n) {
  const double nn = static_cast<double>(n);
  return 2.0 * 2.0 * nn * nn * nn + 2.0 * nn * nn;
}

}  // namespace dqmc::backend
