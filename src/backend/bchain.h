// Backend-resident DQMC chain operations: matrix clustering (Algorithms
// 4/5) and Green's function wrapping (Algorithms 6/7) from Section VI,
// expressed against the ComputeBackend interface so the exact same call
// sequence runs on the host task runtime or the simulated GPU.
//
// The fixed factors B = e^{-dtau K} and B^{-1} are uploaded once at
// construction and kept resident, exactly as the paper prescribes ("B is
// fixed and it is computed and stored at the start of the simulation");
// per-call traffic is only the diagonal V (N doubles) and the result
// matrix — and the wrap can skip re-uploading G entirely when the host
// copy is unchanged since the previous wrap downloaded it (delayed updates
// keep G resident between wraps).
#pragma once

#include <vector>

#include "backend/backend.h"

namespace dqmc::backend {

using linalg::Matrix;
using linalg::Vector;

class BackendBChain {
 public:
  /// Dense mode: `b` is e^{-dtau K}, `binv` its inverse e^{+dtau K} (N x N).
  /// `precision` is the wrap-path policy (docs/STABILITY.md): kFp32 tags
  /// the wrap buffers (G, diagonals) fp32 — halving their modeled traffic —
  /// and brackets every wrap() enqueue in fp32 compute mode. Cluster
  /// products ALWAYS run fp64: the stratified recompute each stabilization
  /// interval consumes them, and that full-precision rebuild is exactly the
  /// fp64 correction that absorbs the wraps' rounding.
  BackendBChain(ComputeBackend& backend, ConstMatrixView b,
                ConstMatrixView binv,
                Precision precision = Precision::kFp64);
  /// Structured (checkerboard) mode: the bond table uploads once and every
  /// kinetic factor replays it in place — no resident dense B, no GEMMs.
  /// Same call sequence semantics and bitwise-identical results to the
  /// host factory's structured path.
  BackendBChain(ComputeBackend& backend, const linalg::CbOperator& op,
                Precision precision = Precision::kFp64);

  idx n() const { return n_; }
  ComputeBackend& backend() { return backend_; }
  /// Wrap-path precision policy this chain was built with.
  Precision precision() const { return precision_; }
  /// True when the kinetic factor is the structured checkerboard operator.
  bool structured() const { return kinetic_ != nullptr; }

  /// Matrix clustering: returns A = B_{k-1} * ... * B_1 * B_0 where
  /// B_j = diag(vs[j]) * B. One V upload per factor (async, pipelined
  /// behind the previous GEMM), one download of A.
  /// fused_kernel=true uses the Algorithm 5 custom kernel for the row
  /// scalings; false uses the Algorithm 4 row-by-row cublasDscal path.
  Matrix cluster_product(const std::vector<Vector>& vs,
                         bool fused_kernel = true);

  /// Wrapping: g <- B_l g B_l^{-1} with B_l = diag(v) * B, i.e.
  /// g <- diag(v) (B g B^{-1}) diag(v)^{-1}. Uploads g and v, runs two
  /// backend GEMMs plus the scaling, downloads g.
  /// fused_kernel=true uses the Algorithm 7 fused row+column kernel; false
  /// models two row/column cublasDscal sweeps (Algorithm 6).
  /// `host_unchanged=true` asserts the host g is bitwise what the previous
  /// wrap() downloaded, letting the resident copy stand in for the upload.
  void wrap(MatrixView g, const Vector& v, bool fused_kernel = true,
            bool host_unchanged = false);

  /// Wrap uploads elided because G was still resident (Section VI-B's
  /// "keep G on the device between wraps" traffic optimization).
  std::uint64_t wrap_uploads_skipped() const { return wrap_uploads_skipped_; }

 private:
  ComputeBackend& backend_;
  idx n_;
  Precision precision_;
  std::unique_ptr<MatrixHandle> b_, binv_;   // resident factors (dense mode)
  std::unique_ptr<KineticHandle> kinetic_;   // resident bond table (cb mode)
  std::unique_ptr<MatrixHandle> ident_;      // identity seed (cb clustering)
  std::unique_ptr<MatrixHandle> t_, a_, g_;  // workspaces
  // Backend-op arguments must stay alive until the stream drains, so both
  // diagonal workspaces are members rather than locals.
  std::unique_ptr<VectorHandle> v_, v_inv_;
  bool g_resident_ = false;
  std::uint64_t wrap_uploads_skipped_ = 0;
};

/// Flop count of one cluster product of `k` factors of size n (for
/// GFlop/s reporting in the Fig. 9 bench): (k-1) GEMMs + k row scalings.
double cluster_product_flops(idx n, idx k);

/// Flop count of one wrap of size n: two GEMMs + the scaling.
double wrap_flops(idx n);

}  // namespace dqmc::backend
