// GpuSimBackend: the ComputeBackend over the simulated GPU. Every compute
// call enqueues on the device's single FIFO stream and bills the
// virtual-clock cost model (async() == true: arguments must outlive the
// stream until it next drains). Arithmetic runs with the same host kernels
// as HostBackend, so identical call sequences stay bitwise identical.
#pragma once

#include "backend/backend.h"
#include "gpusim/device.h"

namespace dqmc::backend {

class GpuSimBackend final : public ComputeBackend {
 public:
  explicit GpuSimBackend(
      gpu::DeviceSpec spec = gpu::DeviceSpec::tesla_c2050());

  BackendKind kind() const override { return BackendKind::kGpuSim; }
  bool async() const override { return true; }

  std::unique_ptr<MatrixHandle> alloc_matrix(
      idx rows, idx cols, Precision precision = Precision::kFp64) override;
  std::unique_ptr<VectorHandle> alloc_vector(
      idx n, Precision precision = Precision::kFp64) override;
  std::unique_ptr<KineticHandle> alloc_kinetic(
      const linalg::CbOperator& op) override;

  void upload(ConstMatrixView host, MatrixHandle& dst) override;
  void download(const MatrixHandle& src, MatrixView host) override;
  void upload_vector(const double* host, idx n, VectorHandle& dst) override;
  void upload_async(ConstMatrixView host, MatrixHandle& dst) override;
  void upload_vector_async(const double* host, idx n,
                           VectorHandle& dst) override;

  void copy(const MatrixHandle& src, MatrixHandle& dst) override;
  void gemm(Trans transa, Trans transb, double alpha, const MatrixHandle& a,
            const MatrixHandle& b, double beta, MatrixHandle& c) override;
  void scale_rows(const VectorHandle& v, const MatrixHandle& src,
                  MatrixHandle& dst, bool fused = true) override;
  void scale_cols(const VectorHandle& v, const MatrixHandle& src,
                  MatrixHandle& dst) override;
  void wrap_scale(const VectorHandle& v, MatrixHandle& g) override;
  void kinetic_apply(const KineticHandle& k, linalg::CbSide side, bool inverse,
                     MatrixHandle& x) override;
  void kinetic_apply_batched(const KineticHandle& k, linalg::CbSide side,
                             bool inverse,
                             const std::vector<MatrixHandle*>& x) override;

  void gemm_batched(Trans transa, Trans transb, double alpha,
                    const std::vector<const MatrixHandle*>& a,
                    const std::vector<const MatrixHandle*>& b, double beta,
                    const std::vector<MatrixHandle*>& c) override;
  void scale_rows_batched(const std::vector<const VectorHandle*>& v,
                          const std::vector<const MatrixHandle*>& src,
                          const std::vector<MatrixHandle*>& dst) override;
  void wrap_scale_batched(const std::vector<const VectorHandle*>& v,
                          const std::vector<MatrixHandle*>& g) override;
  void upload_batched_async(const std::vector<ConstMatrixView>& hosts,
                            const std::vector<MatrixHandle*>& dst) override;
  void upload_vectors_async(const std::vector<const double*>& hosts, idx n,
                            const std::vector<VectorHandle*>& dst) override;
  void download_batched(const std::vector<const MatrixHandle*>& src,
                        const std::vector<MatrixView>& hosts) override;

  void synchronize() override;

  void set_compute_precision(Precision p) override {
    device_.set_compute_fp32(p == Precision::kFp32);
  }
  Precision compute_precision() const override {
    return device_.compute_fp32() ? Precision::kFp32 : Precision::kFp64;
  }

  BackendStats stats() const override;
  void reset_stats() override;

  /// The underlying simulated device (cost-model spec, raw device API).
  gpu::Device& device() { return device_; }
  const gpu::Device& device() const { return device_; }

 private:
  gpu::Device device_;
};

}  // namespace dqmc::backend
