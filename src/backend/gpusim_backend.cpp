#include "backend/gpusim_backend.h"

namespace dqmc::backend {

namespace {

class GpuSimMatrix final : public MatrixHandle {
 public:
  GpuSimMatrix(gpu::Device& device, idx rows, idx cols, Precision precision)
      : MatrixHandle(BackendKind::kGpuSim, rows, cols, precision),
        storage(device.alloc_matrix(
            rows, cols,
            static_cast<int>(precision_element_bytes(precision)))) {}
  gpu::DeviceMatrix storage;
};

class GpuSimVector final : public VectorHandle {
 public:
  GpuSimVector(gpu::Device& device, idx n, Precision precision)
      : VectorHandle(BackendKind::kGpuSim, n, precision),
        storage(device.alloc_vector(
            n, static_cast<int>(precision_element_bytes(precision)))) {}
  gpu::DeviceVector storage;
};

class GpuSimKinetic final : public KineticHandle {
 public:
  GpuSimKinetic(gpu::Device& device, const linalg::CbOperator& op)
      : KineticHandle(BackendKind::kGpuSim, op.n, op.num_bonds(),
                      op.num_groups()),
        storage(device.alloc_kinetic(op)) {}
  gpu::DeviceKinetic storage;
};

const gpu::DeviceKinetic& as_kinetic(const KineticHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kGpuSim,
                 "kinetic handle belongs to a different backend");
  return static_cast<const GpuSimKinetic&>(h).storage;
}

gpu::DeviceMatrix& as(MatrixHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kGpuSim,
                 "matrix handle belongs to a different backend");
  return static_cast<GpuSimMatrix&>(h).storage;
}

const gpu::DeviceMatrix& as(const MatrixHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kGpuSim,
                 "matrix handle belongs to a different backend");
  return static_cast<const GpuSimMatrix&>(h).storage;
}

gpu::DeviceVector& as(VectorHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kGpuSim,
                 "vector handle belongs to a different backend");
  return static_cast<GpuSimVector&>(h).storage;
}

const gpu::DeviceVector& as(const VectorHandle& h) {
  DQMC_CHECK_MSG(h.kind() == BackendKind::kGpuSim,
                 "vector handle belongs to a different backend");
  return static_cast<const GpuSimVector&>(h).storage;
}

}  // namespace

GpuSimBackend::GpuSimBackend(gpu::DeviceSpec spec) : device_(spec) {}

std::unique_ptr<MatrixHandle> GpuSimBackend::alloc_matrix(
    idx rows, idx cols, Precision precision) {
  return std::make_unique<GpuSimMatrix>(device_, rows, cols, precision);
}

std::unique_ptr<VectorHandle> GpuSimBackend::alloc_vector(idx n,
                                                          Precision precision) {
  return std::make_unique<GpuSimVector>(device_, n, precision);
}

std::unique_ptr<KineticHandle> GpuSimBackend::alloc_kinetic(
    const linalg::CbOperator& op) {
  return std::make_unique<GpuSimKinetic>(device_, op);
}

void GpuSimBackend::upload(ConstMatrixView host, MatrixHandle& dst) {
  device_.set_matrix(host, as(dst));
}

void GpuSimBackend::download(const MatrixHandle& src, MatrixView host) {
  device_.get_matrix(as(src), host);
}

void GpuSimBackend::upload_vector(const double* host, idx n,
                                  VectorHandle& dst) {
  device_.set_vector(host, n, as(dst));
}

void GpuSimBackend::upload_async(ConstMatrixView host, MatrixHandle& dst) {
  device_.set_matrix_async(host, as(dst));
}

void GpuSimBackend::upload_vector_async(const double* host, idx n,
                                        VectorHandle& dst) {
  device_.set_vector_async(host, n, as(dst));
}

void GpuSimBackend::copy(const MatrixHandle& src, MatrixHandle& dst) {
  device_.copy(as(src), as(dst));
}

void GpuSimBackend::gemm(Trans transa, Trans transb, double alpha,
                         const MatrixHandle& a, const MatrixHandle& b,
                         double beta, MatrixHandle& c) {
  device_.gemm(transa, transb, alpha, as(a), as(b), beta, as(c));
}

void GpuSimBackend::scale_rows(const VectorHandle& v, const MatrixHandle& src,
                               MatrixHandle& dst, bool fused) {
  if (fused) {
    device_.scale_rows_kernel(as(v), as(src), as(dst));
  } else {
    device_.scale_rows_rowwise(as(v), as(src), as(dst));
  }
}

void GpuSimBackend::scale_cols(const VectorHandle& v, const MatrixHandle& src,
                               MatrixHandle& dst) {
  device_.scale_cols_rowwise(as(v), as(src), as(dst));
}

void GpuSimBackend::wrap_scale(const VectorHandle& v, MatrixHandle& g) {
  device_.wrap_scale_kernel(as(v), as(g));
}

void GpuSimBackend::kinetic_apply(const KineticHandle& k, linalg::CbSide side,
                                  bool inverse, MatrixHandle& x) {
  device_.cb_apply_kernel(as_kinetic(k), side, inverse, as(x));
}

void GpuSimBackend::kinetic_apply_batched(
    const KineticHandle& k, linalg::CbSide side, bool inverse,
    const std::vector<MatrixHandle*>& x) {
  std::vector<gpu::DeviceMatrix*> xv;
  xv.reserve(x.size());
  for (MatrixHandle* h : x) xv.push_back(&as(*h));
  device_.cb_apply_kernel_batched(as_kinetic(k), side, inverse,
                                  std::move(xv));
}

void GpuSimBackend::gemm_batched(Trans transa, Trans transb, double alpha,
                                 const std::vector<const MatrixHandle*>& a,
                                 const std::vector<const MatrixHandle*>& b,
                                 double beta,
                                 const std::vector<MatrixHandle*>& c) {
  std::vector<const gpu::DeviceMatrix*> av, bv;
  std::vector<gpu::DeviceMatrix*> cv;
  av.reserve(a.size());
  bv.reserve(b.size());
  cv.reserve(c.size());
  for (const MatrixHandle* h : a) av.push_back(&as(*h));
  for (const MatrixHandle* h : b) bv.push_back(&as(*h));
  for (MatrixHandle* h : c) cv.push_back(&as(*h));
  device_.gemm_batched(transa, transb, alpha, std::move(av), std::move(bv),
                       beta, std::move(cv));
}

void GpuSimBackend::scale_rows_batched(
    const std::vector<const VectorHandle*>& v,
    const std::vector<const MatrixHandle*>& src,
    const std::vector<MatrixHandle*>& dst) {
  std::vector<const gpu::DeviceVector*> vv;
  std::vector<const gpu::DeviceMatrix*> sv;
  std::vector<gpu::DeviceMatrix*> dv;
  vv.reserve(v.size());
  sv.reserve(src.size());
  dv.reserve(dst.size());
  for (const VectorHandle* h : v) vv.push_back(&as(*h));
  for (const MatrixHandle* h : src) sv.push_back(&as(*h));
  for (MatrixHandle* h : dst) dv.push_back(&as(*h));
  device_.scale_rows_kernel_batched(std::move(vv), std::move(sv),
                                    std::move(dv));
}

void GpuSimBackend::wrap_scale_batched(
    const std::vector<const VectorHandle*>& v,
    const std::vector<MatrixHandle*>& g) {
  std::vector<const gpu::DeviceVector*> vv;
  std::vector<gpu::DeviceMatrix*> gv;
  vv.reserve(v.size());
  gv.reserve(g.size());
  for (const VectorHandle* h : v) vv.push_back(&as(*h));
  for (MatrixHandle* h : g) gv.push_back(&as(*h));
  device_.wrap_scale_kernel_batched(std::move(vv), std::move(gv));
}

void GpuSimBackend::upload_batched_async(
    const std::vector<ConstMatrixView>& hosts,
    const std::vector<MatrixHandle*>& dst) {
  std::vector<gpu::DeviceMatrix*> dv;
  dv.reserve(dst.size());
  for (MatrixHandle* h : dst) dv.push_back(&as(*h));
  device_.set_matrices_async(hosts, std::move(dv));
}

void GpuSimBackend::upload_vectors_async(
    const std::vector<const double*>& hosts, idx n,
    const std::vector<VectorHandle*>& dst) {
  std::vector<gpu::DeviceVector*> dv;
  dv.reserve(dst.size());
  for (VectorHandle* h : dst) dv.push_back(&as(*h));
  device_.set_vectors_async(hosts, n, std::move(dv));
}

void GpuSimBackend::download_batched(
    const std::vector<const MatrixHandle*>& src,
    const std::vector<MatrixView>& hosts) {
  std::vector<const gpu::DeviceMatrix*> sv;
  sv.reserve(src.size());
  for (const MatrixHandle* h : src) sv.push_back(&as(*h));
  device_.get_matrices(std::move(sv), hosts);
}

void GpuSimBackend::synchronize() { device_.synchronize(); }

BackendStats GpuSimBackend::stats() const {
  const gpu::DeviceStats d = device_.stats();
  BackendStats s;
  s.compute_seconds = d.compute_seconds;
  s.transfer_seconds = d.transfer_seconds;
  s.bytes_h2d = d.bytes_h2d;
  s.bytes_d2h = d.bytes_d2h;
  s.kernel_launches = d.kernel_launches;
  s.transfers = d.transfers;
  s.exposed_wait_seconds = d.exposed_wait_seconds;
  s.synchronizations = d.synchronizations;
  return s;
}

void GpuSimBackend::reset_stats() { device_.reset_stats(); }

}  // namespace dqmc::backend
