// Batched backend-resident chain operations for walker crowds: the
// BackendBChain cluster/wrap composites over `items` independent
// (walker, spin) chains advanced in lockstep, expressed with the batched
// ComputeBackend calls so W small GEMMs become one batched enqueue.
//
// The fixed factor B = e^{-dtau K} is spin- and walker-independent, so ONE
// resident copy (and one of B^{-1}) serves every item — the shared operand
// gemm_batched packs once per cache block. Per-item state mirrors
// BackendBChain exactly (own G/T/A workspaces, own residency flag, own
// wrap-upload-skip counter), and each item's enqueue sequence is the same
// as the non-batched chain, so per-item results are bitwise identical to
// running `items` separate BackendBChains.
#pragma once

#include <vector>

#include "backend/backend.h"

namespace dqmc::backend {

using linalg::Matrix;
using linalg::Vector;

class BatchedBChain {
 public:
  /// Dense mode: `b` is e^{-dtau K}, `binv` its inverse (N x N), shared by
  /// all items. `precision` is the wrap-path policy, applied per item
  /// exactly as in BackendBChain: fp32-tagged wrap buffers plus an fp32
  /// compute bracket around wrap_batched; cluster products stay fp64.
  BatchedBChain(ComputeBackend& backend, ConstMatrixView b,
                ConstMatrixView binv, idx items,
                Precision precision = Precision::kFp64);
  /// Structured (checkerboard) mode: ONE shared bond table replays in
  /// place over the whole crowd per kinetic factor — no resident dense B,
  /// no batched GEMMs, per-item results bitwise identical to `items`
  /// structured BackendBChains.
  BatchedBChain(ComputeBackend& backend, const linalg::CbOperator& op,
                idx items, Precision precision = Precision::kFp64);

  idx n() const { return n_; }
  idx items() const { return items_; }
  /// Wrap-path precision policy this crowd was built with.
  Precision precision() const { return precision_; }
  ComputeBackend& backend() { return backend_; }
  /// True when the kinetic factor is the structured checkerboard operator.
  bool structured() const { return kinetic_ != nullptr; }

  /// Lockstep wrap of all items: g_i <- diag(v_i) (B g_i B^{-1})
  /// diag(v_i)^{-1} with the Algorithm 7 fused kernel. Uploads only the
  /// items whose host g changed since this chain last downloaded it
  /// (`host_unchanged[i]` asserts bitwise-unchanged, as in
  /// BackendBChain::wrap), then runs two shared-operand batched GEMMs, one
  /// batched wrap kernel, and one batched download.
  void wrap_batched(const std::vector<MatrixView>& g,
                    const std::vector<const Vector*>& v,
                    const std::vector<char>& host_unchanged);

  /// Lockstep cluster products: out[i] = B_{k-1} ... B_1 B_0 for item i
  /// with B_l = diag(vs[i][l]) * B. All items must have the same factor
  /// count k; one batched V upload + scaling per level, (k-1) batched
  /// GEMMs, one batched download.
  std::vector<Matrix> cluster_product_batched(
      const std::vector<std::vector<Vector>>& vs);

  /// Wrap uploads elided for item i because its G was still resident.
  std::uint64_t wrap_uploads_skipped(idx item) const {
    return wrap_uploads_skipped_[static_cast<std::size_t>(item)];
  }

  /// Forget device residency for every item (host copies changed outside
  /// wrap_batched, e.g. after a checkpoint restore).
  void invalidate_residency();

 private:
  ComputeBackend& backend_;
  idx n_, items_;
  Precision precision_;
  std::unique_ptr<MatrixHandle> b_, binv_;  // ONE resident copy for all items
  std::unique_ptr<KineticHandle> kinetic_;  // ONE bond table (cb mode)
  std::unique_ptr<MatrixHandle> ident_;     // identity seed (cb clustering)
  std::vector<std::unique_ptr<MatrixHandle>> g_, t_, a_;
  std::vector<std::unique_ptr<VectorHandle>> v_;
  std::vector<char> g_resident_;
  std::vector<std::uint64_t> wrap_uploads_skipped_;
};

}  // namespace dqmc::backend
