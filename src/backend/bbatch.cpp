#include "backend/bbatch.h"

#include <algorithm>

#include "fault/failpoint.h"
#include "obs/flight_recorder.h"

namespace dqmc::backend {

namespace {

// Same enqueue fail-point sites as BackendBChain, hit once per batched
// composite: a fault here is attributed to the whole crowd (no single
// walker can be blamed for a batched launch).
void enqueue_failpoint(const ComputeBackend& backend) {
  const bool gpusim = backend.kind() == BackendKind::kGpuSim;
  DQMC_FLIGHT_EVENT(obs::FlightEventKind::kEnqueue, "bbatch.composite",
                    gpusim ? "gpusim" : "host");
  DQMC_FAILPOINT("backend.enqueue");
  DQMC_FAILPOINT(gpusim ? "backend.enqueue.gpusim" : "backend.enqueue.host");
}

}  // namespace

BatchedBChain::BatchedBChain(ComputeBackend& backend, ConstMatrixView b,
                             ConstMatrixView binv, idx items,
                             Precision precision)
    : backend_(backend), n_(b.rows()), items_(items), precision_(precision) {
  DQMC_CHECK(b.rows() == b.cols());
  DQMC_CHECK(binv.rows() == n_ && binv.cols() == n_);
  DQMC_CHECK(items >= 1);
  b_ = backend_.alloc_matrix(n_, n_);
  binv_ = backend_.alloc_matrix(n_, n_);
  backend_.upload(b, *b_);
  backend_.upload(binv, *binv_);
  g_.reserve(items_);
  t_.reserve(items_);
  a_.reserve(items_);
  v_.reserve(items_);
  // Per-item wrap buffers carry the policy's storage tag (as in
  // BackendBChain); shared factors and cluster scratch stay fp64.
  for (idx i = 0; i < items_; ++i) {
    g_.push_back(backend_.alloc_matrix(n_, n_, precision_));
    t_.push_back(backend_.alloc_matrix(n_, n_));
    a_.push_back(backend_.alloc_matrix(n_, n_));
    v_.push_back(backend_.alloc_vector(n_, precision_));
  }
  g_resident_.assign(static_cast<std::size_t>(items_), 0);
  wrap_uploads_skipped_.assign(static_cast<std::size_t>(items_), 0);
}

BatchedBChain::BatchedBChain(ComputeBackend& backend,
                             const linalg::CbOperator& op, idx items,
                             Precision precision)
    : backend_(backend), n_(op.n), items_(items), precision_(precision) {
  DQMC_CHECK(items >= 1);
  kinetic_ = backend_.alloc_kinetic(op);
  ident_ = backend_.alloc_matrix(n_, n_);
  backend_.upload(Matrix::identity(n_), *ident_);
  g_.reserve(items_);
  a_.reserve(items_);
  v_.reserve(items_);
  for (idx i = 0; i < items_; ++i) {
    g_.push_back(backend_.alloc_matrix(n_, n_, precision_));
    a_.push_back(backend_.alloc_matrix(n_, n_));
    v_.push_back(backend_.alloc_vector(n_, precision_));
  }
  g_resident_.assign(static_cast<std::size_t>(items_), 0);
  wrap_uploads_skipped_.assign(static_cast<std::size_t>(items_), 0);
}

void BatchedBChain::invalidate_residency() {
  std::fill(g_resident_.begin(), g_resident_.end(), 0);
}

void BatchedBChain::wrap_batched(const std::vector<MatrixView>& g,
                                 const std::vector<const Vector*>& v,
                                 const std::vector<char>& host_unchanged) {
  DQMC_CHECK(static_cast<idx>(g.size()) == items_);
  DQMC_CHECK(v.size() == g.size() && host_unchanged.size() == g.size());
  for (idx i = 0; i < items_; ++i) {
    DQMC_CHECK(g[i].rows() == n_ && g[i].cols() == n_);
    DQMC_CHECK(v[i]->size() == n_);
  }
  enqueue_failpoint(backend_);

  // Upload only the non-resident items, in one batched transaction.
  std::vector<ConstMatrixView> up_hosts;
  std::vector<MatrixHandle*> up_handles;
  for (idx i = 0; i < items_; ++i) {
    if (host_unchanged[i] && g_resident_[i]) {
      ++wrap_uploads_skipped_[static_cast<std::size_t>(i)];
    } else {
      up_hosts.push_back(g[i]);
      up_handles.push_back(g_[i].get());
    }
  }
  if (!up_handles.empty()) {
    backend_.upload_batched_async(up_hosts, up_handles);
  }

  std::vector<const double*> v_hosts;
  std::vector<VectorHandle*> v_handles;
  std::vector<const VectorHandle*> v_const;
  std::vector<const MatrixHandle*> g_const, t_const;
  std::vector<MatrixHandle*> g_mut, t_mut;
  for (idx i = 0; i < items_; ++i) {
    v_hosts.push_back(v[i]->data());
    v_handles.push_back(v_[i].get());
    v_const.push_back(v_[i].get());
    g_const.push_back(g_[i].get());
    g_mut.push_back(g_[i].get());
    if (!structured()) {
      t_const.push_back(t_[i].get());
      t_mut.push_back(t_[i].get());
    }
  }
  backend_.upload_vectors_async(v_hosts, n_, v_handles);

  {
    // Policy bracket: the batched wrap's compute ops run at the crowd's
    // precision (no-op for kFp64), exactly as in BackendBChain::wrap.
    ScopedComputePrecision mode(backend_, precision_);
    if (structured()) {
      // G_i <- B G_i B^{-1} as two crowd-wide bond-table replays (left
      // forward, right inverse) — same per-item arithmetic as the structured
      // BackendBChain::wrap, amortizing the per-group launches over the
      // whole crowd.
      backend_.kinetic_apply_batched(*kinetic_, linalg::CbSide::kLeft, false,
                                     g_mut);
      backend_.kinetic_apply_batched(*kinetic_, linalg::CbSide::kRight, true,
                                     g_mut);
    } else {
      // T_i = B * G_i (shared A), G_i = T_i * B^{-1} (shared B), then the
      // fused Algorithm 7 scaling — per item the identical sequence (and
      // bitwise the identical arithmetic) as BackendBChain::wrap.
      const std::vector<const MatrixHandle*> shared_b{b_.get()};
      const std::vector<const MatrixHandle*> shared_binv{binv_.get()};
      backend_.gemm_batched(Trans::No, Trans::No, 1.0, shared_b, g_const, 0.0,
                            t_mut);
      backend_.gemm_batched(Trans::No, Trans::No, 1.0, t_const, shared_binv,
                            0.0, g_mut);
    }
    backend_.wrap_scale_batched(v_const, g_mut);
  }
  backend_.download_batched(g_const, g);
  std::fill(g_resident_.begin(), g_resident_.end(), 1);
}

std::vector<Matrix> BatchedBChain::cluster_product_batched(
    const std::vector<std::vector<Vector>>& vs) {
  DQMC_CHECK(static_cast<idx>(vs.size()) == items_);
  const std::size_t k = vs[0].size();
  DQMC_CHECK_MSG(k >= 1, "cluster_product needs at least one factor");
  for (const std::vector<Vector>& item : vs) {
    DQMC_CHECK_MSG(item.size() == k,
                   "all crowd items must have the same factor count");
    for (const Vector& v : item) DQMC_CHECK(v.size() == n_);
  }
  enqueue_failpoint(backend_);

  std::vector<const double*> v_hosts(static_cast<std::size_t>(items_));
  std::vector<VectorHandle*> v_handles;
  std::vector<const VectorHandle*> v_const;
  std::vector<const MatrixHandle*> a_const, t_const;
  std::vector<MatrixHandle*> a_mut, t_mut;
  for (idx i = 0; i < items_; ++i) {
    v_handles.push_back(v_[i].get());
    v_const.push_back(v_[i].get());
    a_const.push_back(a_[i].get());
    a_mut.push_back(a_[i].get());
    if (!structured()) {
      t_const.push_back(t_[i].get());
      t_mut.push_back(t_[i].get());
    }
  }

  if (structured()) {
    // A_i starts as the identity; each level replays the shared bond table
    // over the whole crowd in place, then scales rows — no GEMM at any
    // level, same per-item arithmetic as the structured BackendBChain.
    for (idx i = 0; i < items_; ++i) backend_.copy(*ident_, *a_[i]);
    for (std::size_t l = 0; l < k; ++l) {
      backend_.kinetic_apply_batched(*kinetic_, linalg::CbSide::kLeft, false,
                                     a_mut);
      for (idx i = 0; i < items_; ++i)
        v_hosts[static_cast<std::size_t>(i)] = vs[i][l].data();
      backend_.upload_vectors_async(v_hosts, n_, v_handles);
      backend_.scale_rows_batched(v_const, a_const, a_mut);
    }
  } else {
    const std::vector<const MatrixHandle*> shared_b{b_.get()};

    // A_i = diag(vs[i][0]) * B, then per level one shared-operand batched
    // GEMM + batched V upload + batched scaling; FIFO order makes reusing
    // the per-item v_ workspace safe exactly as in the non-batched chain.
    for (idx i = 0; i < items_; ++i)
      v_hosts[static_cast<std::size_t>(i)] = vs[i][0].data();
    backend_.upload_vectors_async(v_hosts, n_, v_handles);
    backend_.scale_rows_batched(v_const, shared_b, a_mut);
    for (std::size_t l = 1; l < k; ++l) {
      backend_.gemm_batched(Trans::No, Trans::No, 1.0, shared_b, a_const, 0.0,
                            t_mut);
      for (idx i = 0; i < items_; ++i)
        v_hosts[static_cast<std::size_t>(i)] = vs[i][l].data();
      backend_.upload_vectors_async(v_hosts, n_, v_handles);
      backend_.scale_rows_batched(v_const, t_const, a_mut);
    }
  }

  std::vector<Matrix> out;
  std::vector<MatrixView> out_views;
  out.reserve(static_cast<std::size_t>(items_));
  for (idx i = 0; i < items_; ++i) {
    out.emplace_back(n_, n_);
    out_views.push_back(out.back().view());
  }
  backend_.download_batched(a_const, out_views);
  return out;
}

}  // namespace dqmc::backend
