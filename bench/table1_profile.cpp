// Table I: percentage of simulation time spent in each pipeline phase
// (delayed rank-1 update, stratification, clustering, wrapping, physical
// measurements) as a function of the number of sites.
//
// Paper values at N = 256..1024: stratification ~44-49%, delayed update
// ~14-17%, clustering and wrapping ~8-12% each, measurements ~18-20%.
#include <vector>

#include "bench_util.h"
#include "dqmc/simulation.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  banner("Table I", "execution-time share of each DQMC pipeline phase");

  std::vector<idx> ls = full_scale() ? std::vector<idx>{16, 20, 24, 28, 32}
                                     : std::vector<idx>{6, 8, 10, 12};
  const idx slices = full_scale() ? 160 : 48;

  // Build the table transposed, paper-style: one column per N.
  std::vector<std::string> headers = {"phase \\ sites"};
  std::vector<core::SimulationResults> results;
  for (idx l : ls) {
    core::SimulationConfig cfg;
    cfg.lx = cfg.ly = l;
    cfg.model.u = 2.0;
    cfg.model.slices = slices;
    cfg.model.beta = 0.125 * static_cast<double>(slices);
    cfg.warmup_sweeps = full_scale() ? 1000 : 3;
    cfg.measurement_sweeps = full_scale() ? 2000 : 6;
    cfg.seed = 900 + static_cast<std::uint64_t>(l);
    cfg.measure_slice_interval = 1;  // QUEST measures across slices
    results.push_back(core::run_simulation(cfg));
    headers.push_back(std::to_string(l * l));
  }
  // DQMC_MANIFEST_JSON=path records the largest run's full manifest.
  maybe_write_manifest(results.back());

  cli::Table t(headers);
  const Phase rows[] = {Phase::kDelayedUpdate, Phase::kStratification,
                        Phase::kClustering, Phase::kWrapping,
                        Phase::kMeasurement};
  for (Phase p : rows) {
    std::vector<std::string> row = {phase_name(p)};
    for (const auto& res : results) {
      row.push_back(cli::Table::num(res.profiler.percent(p), 1) + "%");
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nexpected shape (paper Table I): stratification dominates "
              "(~44-49%%), measurements ~18-20%%, clustering+wrapping grow "
              "slowly with N.\n\n");
  return 0;
}
