// Figure 8: wall time of a complete DQMC simulation vs number of sites,
// against the nominal O(N^3 L) prediction normalized at the smallest size.
//
// The paper's observation: measured time grows SLOWER than N^3 because the
// dense kernels gain efficiency as the matrices grow (1024 sites cost 28x
// the 256-site run instead of the nominal 64x).
#include <vector>

#include "bench_util.h"
#include "dqmc/simulation.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  banner("Fig. 8", "total simulation time vs N against the nominal N^3 line");

  std::vector<idx> ls = full_scale() ? std::vector<idx>{16, 20, 24, 28, 32}
                                     : std::vector<idx>{6, 8, 10, 12, 14};
  const idx slices = full_scale() ? 160 : 32;
  const idx warmup = full_scale() ? 1000 : 4;
  const idx sweeps = full_scale() ? 2000 : 8;

  cli::Table table({"N", "measured s", "nominal s (N^3)", "measured/nominal"});
  double t0 = 0.0, n0 = 0.0;
  for (idx l : ls) {
    core::SimulationConfig cfg;
    cfg.lx = cfg.ly = l;
    cfg.model.u = 2.0;
    cfg.model.slices = slices;
    cfg.model.beta = 0.125 * static_cast<double>(slices);
    cfg.warmup_sweeps = warmup;
    cfg.measurement_sweeps = sweeps;
    cfg.seed = 800 + static_cast<std::uint64_t>(l);

    Stopwatch watch;
    (void)core::run_simulation(cfg);
    const double elapsed = watch.seconds();

    const double n = static_cast<double>(l * l);
    if (t0 == 0.0) {
      t0 = elapsed;
      n0 = n;
    }
    const double nominal = t0 * (n / n0) * (n / n0) * (n / n0);
    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(elapsed, 2), cli::Table::num(nominal, 2),
                   cli::Table::num(elapsed / nominal, 3)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 8): measured/nominal < 1 and "
              "decreasing with N (kernel efficiency grows with matrix "
              "size).\n\n");
  return 0;
}
