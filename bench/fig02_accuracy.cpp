// Figure 2: distribution (box-and-whisker) of the relative difference
// ||G - G~||_F / ||G||_F between the Green's functions computed by the
// classic QRP stratification (Algorithm 2) and the pre-pivoted variant
// (Algorithm 3), for U = 2..8.
//
// Paper setup: 16x16 lattice, L = 160, dtau = 0.2 (beta = 32), 1000
// evaluations sampled from a running simulation. Scaled default: 8x8,
// L = 60 (beta = 12), 60 evaluations. Expected shape: distributions sit
// around 1e-13..1e-11 and are flat in U.
#include <vector>

#include "bench_util.h"
#include "dqmc/engine.h"
#include "linalg/norms.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  banner("Fig. 2", "relative difference between Algorithm 2 and Algorithm 3 "
                   "Green's functions");

  const idx l = full_scale() ? 16 : 8;
  const idx slices = full_scale() ? 160 : 60;
  const double dtau = 0.2;
  const idx evals = full_scale() ? 1000 : 60;

  cli::Table table({"U", "min", "Q1", "median", "Q3", "max"});
  for (double u : {2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) {
    hubbard::Lattice lat(l, l);
    hubbard::ModelParams model;
    model.u = u;
    model.slices = slices;
    model.beta = dtau * static_cast<double>(slices);

    // One engine drives the Markov chain (pre-pivot, as in production); a
    // second stratification engine recomputes the same Green's function
    // with full pivoting for comparison.
    core::EngineConfig cfg;
    core::DqmcEngine engine(lat, model, cfg, 17 + static_cast<std::uint64_t>(u));
    engine.initialize();

    core::StratificationEngine qrp(lat.num_sites(),
                                   core::StratAlgorithm::kQRP);
    core::StratificationEngine pre(lat.num_sites(),
                                   core::StratAlgorithm::kPrePivot);

    std::vector<double> diffs;
    idx sweeps_done = 0;
    while (static_cast<idx>(diffs.size()) < evals) {
      engine.sweep();
      ++sweeps_done;
      // Sample the Green's function at every cluster boundary of the
      // current configuration (both algorithms, same cached clusters).
      // This mirrors "1000 evaluations sampled from a full simulation".
      for (idx c = 0;
           c < slices / cfg.cluster_size && static_cast<idx>(diffs.size()) < evals;
           ++c) {
        // Rebuild rotation views per spin; use spin up (down is symmetric).
        // Access the cluster store through a recompute + greens call pair.
        engine.recompute_greens(c);
        // engine uses pre-pivot: this is G~.
        linalg::Matrix g_pre = engine.greens(hubbard::Spin::Up);
        (void)pre;
        // Reference with full pivoting from the same clusters: re-run the
        // stratification with the QRP engine. We cannot reach the private
        // cluster store, so recompute from the field directly.
        std::vector<linalg::Matrix> factors;
        const auto& factory = engine.factory();
        const auto& field = engine.field();
        // Factor sequence matching rotation(start = c): slices from
        // c*k .. L-1 then 0 .. c*k-1, clustered in groups of k.
        const idx k = cfg.cluster_size;
        std::vector<linalg::Matrix> chain;
        for (idx step = 0; step < slices / k; ++step) {
          const idx cc = (c + step) % (slices / k);
          linalg::Matrix prod =
              factory.make_b(field.slice(cc * k), hubbard::Spin::Up);
          linalg::Matrix next(lat.num_sites(), lat.num_sites());
          for (idx sl = cc * k + 1; sl < (cc + 1) * k; ++sl) {
            factory.apply_b_left(field.slice(sl), hubbard::Spin::Up, prod, next);
            std::swap(prod, next);
          }
          chain.push_back(std::move(prod));
        }
        linalg::Matrix g_qrp = qrp.compute(chain);
        diffs.push_back(linalg::relative_difference(g_pre, g_qrp));
        (void)factors;
      }
    }

    const FiveNumber f = five_number_summary(diffs);
    table.add_row({cli::Table::num(u, 0), cli::Table::sci(f.min),
                   cli::Table::sci(f.q1), cli::Table::sci(f.median),
                   cli::Table::sci(f.q3), cli::Table::sci(f.max)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 2): whole distributions within "
              "the 1e-14..1e-9 band, i.e. the two algorithms agree orders of "
              "magnitude beyond Monte Carlo accuracy, with no qualitative "
              "dependence on U.\n\n");
  return 0;
}
