// Figure 10: throughput of the whole Green's function evaluation on the
// hybrid CPU+GPU configuration (clustering + wrapping offloaded to the
// simulated device, stratification on the host) vs CPU-only.
//
// Two hybrid numbers are reported:
//   serial bound — host stratification wall time + the device's full
//     virtual time (no overlap assumed, the paper's synchronous CUBLAS
//     composition), and
//   pipelined — host stratification wall time + the device's *pipeline*
//     cost (transfers + exposed stalls only; modeled compute that the
//     host timeline hid is not charged twice). The bench drives the same
//     rebuild_async + lazy-factor stratification path the engine uses, so
//     the deferred cluster product genuinely overlaps the graded QR.
#include <vector>

#include "backend/bchain.h"
#include "backend/gpusim_backend.h"
#include "bench_util.h"
#include "dqmc/cluster_store.h"
#include "dqmc/hs_field.h"
#include "dqmc/stratification.h"
#include "hubbard/bmatrix.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  banner("Fig. 10", "hybrid CPU+GPU Green's function evaluation GFlop/s");

  const idx slices = full_scale() ? 160 : 80;
  const idx k = 10;
  std::vector<idx> ls = {8, 12, 16, 20};
  if (full_scale()) {
    ls.push_back(24);
    ls.push_back(32);
  }

  obs::Json rows = obs::Json::array();
  cli::Table table({"N", "cpu GF/s", "hybrid serial GF/s",
                    "hybrid pipelined GF/s", "pipelined/cpu"});
  for (idx l : ls) {
    const idx n = l * l;
    hubbard::Lattice lat(l, l);
    hubbard::ModelParams model;
    model.u = 4.0;
    model.slices = slices;
    model.beta = 0.125 * static_cast<double>(slices);
    hubbard::BMatrixFactory factory(lat, model);
    core::HSField field(slices, n);
    core::Rng rng(static_cast<std::uint64_t>(n) + 3);
    field.randomize(rng);

    const idx evals = l >= 16 ? 3 : 6;
    const double flops =
        greens_eval_flops(n, (slices + k - 1) / k) +
        // plus one cluster rebuild per evaluation (the recycled pipeline)
        backend::cluster_product_flops(n, k);

    // CPU only: wall time for cluster rebuild + stratification.
    double cpu_time;
    {
      core::ClusterStore store(factory, field, k);
      store.rebuild_all();
      core::StratificationEngine strat(n, core::StratAlgorithm::kPrePivot);
      Stopwatch watch;
      for (idx e = 0; e < evals; ++e) {
        store.rebuild(e % store.num_clusters());
        (void)strat.compute(store.rotation(hubbard::Spin::Up,
                                           e % store.num_clusters()));
      }
      cpu_time = watch.seconds() / static_cast<double>(evals);
    }

    // Hybrid: clustering on the device (virtual clock), stratification on
    // the host. rebuild_async defers the cluster product to a task that
    // overlaps the stratification — the rebuilt cluster is the LAST factor
    // of the rotation, so the provider only blocks at the very end.
    double host_strat = 0.0;
    backend::BackendStats dev;
    {
      backend::GpuSimBackend gpusim;
      backend::BackendBChain up(gpusim, factory.b(), factory.b_inv());
      backend::BackendBChain dn(gpusim, factory.b(), factory.b_inv());
      core::ClusterStore store(factory, field, k);
      store.attach_backend(&up, &dn);
      store.rebuild_all();
      core::StratificationEngine strat(n, core::StratAlgorithm::kPrePivot);

      gpusim.reset_stats();
      for (idx e = 0; e < evals; ++e) {
        const idx start = e % store.num_clusters();
        store.rebuild_async(start == 0 ? store.num_clusters() - 1 : start - 1);
        Stopwatch watch;
        (void)strat.compute(store.num_clusters(),
                            [&](idx i) -> const linalg::Matrix& {
                              return store.factor(hubbard::Spin::Up, start, i);
                            });
        host_strat += watch.seconds();
      }
      gpusim.synchronize();
      dev = gpusim.stats();
    }
    const double serial_time =
        (host_strat + dev.total_seconds()) / static_cast<double>(evals);
    const double pipelined_time =
        (host_strat + dev.pipeline_seconds()) / static_cast<double>(evals);

    rows.push_back(obs::Json::object()
                       .set("n", n)
                       .set("cpu_gflops", flops / cpu_time / 1e9)
                       .set("hybrid_serial_gflops", flops / serial_time / 1e9)
                       .set("hybrid_pipelined_gflops",
                            flops / pipelined_time / 1e9)
                       .set("device_compute_seconds", dev.compute_seconds)
                       .set("device_transfer_seconds", dev.transfer_seconds)
                       .set("device_exposed_wait_seconds",
                            dev.exposed_wait_seconds));
    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(flops / cpu_time / 1e9, 2),
                   cli::Table::num(flops / serial_time / 1e9, 2),
                   cli::Table::num(flops / pipelined_time / 1e9, 2),
                   cli::Table::num(cpu_time / pipelined_time, 2)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 10): hybrid rates above CPU-only "
              "with the gap growing with N (device clustering removes the "
              "cluster-product cost from the host); the pipelined rate is "
              ">= the serial bound because overlapped device compute is not "
              "charged twice.\n\n");
  maybe_write_bench_manifest("fig10_hybrid", rows);
  return 0;
}
