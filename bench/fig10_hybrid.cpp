// Figure 10: throughput of the whole Green's function evaluation on the
// hybrid CPU+GPU configuration (clustering + wrapping offloaded to the
// simulated device, stratification on the host) vs CPU-only.
//
// Hybrid time = host stratification wall time + device virtual time for the
// offloaded pieces (serial composition — no overlap is assumed, matching
// the paper's synchronous CUBLAS usage).
#include <vector>

#include "bench_util.h"
#include "dqmc/cluster_store.h"
#include "dqmc/hs_field.h"
#include "dqmc/stratification.h"
#include "gpusim/chain.h"
#include "hubbard/bmatrix.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  banner("Fig. 10", "hybrid CPU+GPU Green's function evaluation GFlop/s");

  const idx slices = full_scale() ? 160 : 80;
  const idx k = 10;
  std::vector<idx> ls = {8, 12, 16, 20};
  if (full_scale()) {
    ls.push_back(24);
    ls.push_back(32);
  }

  cli::Table table({"N", "cpu GF/s", "hybrid GF/s", "hybrid/cpu"});
  for (idx l : ls) {
    const idx n = l * l;
    hubbard::Lattice lat(l, l);
    hubbard::ModelParams model;
    model.u = 4.0;
    model.slices = slices;
    model.beta = 0.125 * static_cast<double>(slices);
    hubbard::BMatrixFactory factory(lat, model);
    core::HSField field(slices, n);
    core::Rng rng(static_cast<std::uint64_t>(n) + 3);
    field.randomize(rng);

    const idx evals = l >= 16 ? 3 : 6;
    const double flops =
        greens_eval_flops(n, (slices + k - 1) / k) +
        // plus one cluster rebuild per evaluation (the recycled pipeline)
        gpu::cluster_product_flops(n, k);

    // CPU only: wall time for cluster rebuild + stratification.
    double cpu_time;
    {
      core::ClusterStore store(factory, field, k);
      store.rebuild_all();
      core::StratificationEngine strat(n, core::StratAlgorithm::kPrePivot);
      Stopwatch watch;
      for (idx e = 0; e < evals; ++e) {
        store.rebuild(e % store.num_clusters());
        (void)strat.compute(store.rotation(hubbard::Spin::Up,
                                           e % store.num_clusters()));
      }
      cpu_time = watch.seconds() / static_cast<double>(evals);
    }

    // Hybrid: clustering on the device (virtual clock), stratification on
    // the host (wall clock minus the device-cluster host compute, which we
    // exclude by timing only the stratification calls).
    double hybrid_time;
    {
      gpu::Device device;
      gpu::GpuBChain chain(device, factory.b(), factory.b_inv());
      core::ClusterStore store(factory, field, k);
      store.attach_gpu(&chain);
      store.rebuild_all();
      core::StratificationEngine strat(n, core::StratAlgorithm::kPrePivot);

      double host_strat = 0.0;
      device.reset_stats();
      for (idx e = 0; e < evals; ++e) {
        store.rebuild(e % store.num_clusters());  // device virtual time
        Stopwatch watch;
        (void)strat.compute(store.rotation(hubbard::Spin::Up,
                                           e % store.num_clusters()));
        host_strat += watch.seconds();
      }
      device.synchronize();
      hybrid_time = (host_strat + device.stats().total_seconds()) /
                    static_cast<double>(evals);
    }

    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(flops / cpu_time / 1e9, 2),
                   cli::Table::num(flops / hybrid_time / 1e9, 2),
                   cli::Table::num(cpu_time / hybrid_time, 2)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 10): hybrid rate above CPU-only "
              "and the gap grows with N (device clustering removes the "
              "cluster-product cost from the host).\n\n");
  return 0;
}
