// Direct vs FFT measurement pipeline: per lattice size, wall-clock seconds
// of the equal-time and dynamic measurement kernels over the SAME synthetic
// Green's functions, the speedups, and the max absolute deviation between
// the two paths across every observable (docs/PERFORMANCE.md).
//
//   DQMC_MANIFEST_JSON=bench/BENCH_fft.json ./fft_measurements
//
// regenerates the committed baseline for the bench_regress fft suite.
// Expected shape: deviations at the 1e-12 level everywhere (the two paths
// differ only in summation order), and the FFT path at least ~2x faster
// from N = 256 up — the direct path burns N^2 cosine evaluations per
// momentum table and a 16-term neighbour gather for pair_d where the FFT
// path runs one fused O(N^2) gather, two stencil passes and O(N log N)
// transforms.
#include "bench_util.h"

int main() {
  using namespace dqmc;

  bench::banner("fft_measurements",
                "direct vs FFT measurement kernels: wall time and parity");

  const obs::Json rows = bench::fft_measurement_rows(false);

  cli::Table table({"L", "N", "eqtime direct s", "eqtime fft s", "speedup",
                    "max dev", "dynamic direct s", "dynamic fft s", "speedup",
                    "max dev"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows[i];
    table.add_row(
        {cli::Table::integer(static_cast<long>(row.at("l").number())),
         cli::Table::integer(static_cast<long>(row.at("n").number())),
         cli::Table::num(row.at("et_direct_seconds").number(), 6),
         cli::Table::num(row.at("et_fft_seconds").number(), 6),
         cli::Table::num(row.at("et_speedup").number(), 2),
         cli::Table::num(row.at("et_max_dev").number(), 14),
         cli::Table::num(row.at("dyn_direct_seconds").number(), 6),
         cli::Table::num(row.at("dyn_fft_seconds").number(), 6),
         cli::Table::num(row.at("dyn_speedup").number(), 2),
         cli::Table::num(row.at("dyn_max_dev").number(), 14)});
  }
  table.print();
  std::printf("\nexpected shape: both deviation columns at the 1e-12 level "
              "(same observables, different summation order) and the FFT "
              "column pulling ahead with N — the crossover the bench gate "
              "holds is speedup >= 1 wherever the committed baseline shows "
              ">= 2.\n\n");
  bench::maybe_write_bench_manifest("fft", rows);
  return 0;
}
