// Figure 5: mean momentum distribution <n_k> along the symmetry path
// (0,0) -> (pi,pi) -> (pi,0) -> (0,0) for several lattice sizes at
// rho = 1, U = 2.
//
// Paper: 16x16 .. 32x32 at beta = 32 (36-hour runs). Scaled default:
// 8x8 / 12x12 at beta = 6 with short sweeps — the sharp Fermi-surface
// crossing near the midpoint of (0,0)->(pi,pi) is the shape to reproduce.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "dqmc/simulation.h"

namespace {

using namespace dqmc;
using linalg::idx;

std::vector<std::pair<idx, std::string>> symmetry_path(idx l) {
  const idx half = l / 2;
  std::vector<std::pair<idx, std::string>> path;
  auto kindex = [&](idx nx, idx ny) { return nx + l * ny; };
  auto label = [&](idx nx, idx ny) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "(%.2f,%.2f)pi",
                  2.0 * static_cast<double>(nx) / static_cast<double>(l),
                  2.0 * static_cast<double>(ny) / static_cast<double>(l));
    return std::string(buf);
  };
  for (idx i = 0; i <= half; ++i) path.push_back({kindex(i, i), label(i, i)});
  for (idx i = half - 1; i >= 0; --i)
    path.push_back({kindex(half, i), label(half, i)});
  for (idx i = half - 1; i >= 1; --i) path.push_back({kindex(i, 0), label(i, 0)});
  path.push_back({kindex(0, 0), label(0, 0)});
  return path;
}

}  // namespace

int main() {
  using namespace dqmc::bench;
  banner("Fig. 5", "momentum distribution <n_k> along "
                   "(0,0)->(pi,pi)->(pi,0)->(0,0), rho=1, U=2");

  std::vector<idx> sizes = full_scale() ? std::vector<idx>{16, 20, 24, 28, 32}
                                        : std::vector<idx>{8, 12};
  for (idx l : sizes) {
    core::SimulationConfig cfg;
    cfg.lx = cfg.ly = l;
    cfg.model.u = 2.0;
    cfg.model.beta = full_scale() ? 32.0 : 6.0;
    cfg.model.slices = full_scale() ? 160 : 48;
    cfg.warmup_sweeps = full_scale() ? 1000 : (l >= 12 ? 20 : 40);
    cfg.measurement_sweeps = full_scale() ? 2000 : (l >= 12 ? 40 : 80);
    cfg.seed = 500 + static_cast<std::uint64_t>(l);

    // Same chain under both measurement kernels: the trajectories are
    // bitwise identical (measurements never touch the Markov chain), so
    // the two <n_k> columns differ only by the paths' summation order.
    Stopwatch watch;
    cfg.engine.measure = core::MeasureKind::kDirect;
    core::SimulationResults res = core::run_simulation(cfg);
    const double direct_wall = watch.seconds();
    Stopwatch watch_fft;
    cfg.engine.measure = core::MeasureKind::kFft;
    core::SimulationResults res_fft = core::run_simulation(cfg);
    const double fft_wall = watch_fft.seconds();
    const double direct_meas =
        res.profiler.inclusive_seconds(Phase::kMeasurement);
    const double fft_meas =
        res_fft.profiler.inclusive_seconds(Phase::kMeasurement);

    std::printf("\n%lldx%lld lattice (beta=%.1f, %lld+%lld sweeps; "
                "direct %s, fft %s):\n",
                static_cast<long long>(l), static_cast<long long>(l),
                cfg.model.beta, static_cast<long long>(cfg.warmup_sweeps),
                static_cast<long long>(cfg.measurement_sweeps),
                format_seconds(direct_wall).c_str(),
                format_seconds(fft_wall).c_str());
    cli::Table table({"k", "<n_k> direct", "err", "<n_k> fft", "|dev|"});
    double max_dev = 0.0;
    for (const auto& [k, label] : symmetry_path(l)) {
      const auto est = res.measurements.momentum_dist(k);
      const auto est_fft = res_fft.measurements.momentum_dist(k);
      const double dev = std::abs(est.mean - est_fft.mean);
      max_dev = std::max(max_dev, dev);
      table.add_row({label, cli::Table::num(est.mean, 4),
                     cli::Table::num(est.error, 4),
                     cli::Table::num(est_fft.mean, 4),
                     cli::Table::num(dev, 12)});
    }
    table.print();
    std::printf("measurement phase: direct %s, fft %s (%.2fx); "
                "max |direct - fft| over the path: %.3e\n",
                format_seconds(direct_meas).c_str(),
                format_seconds(fft_meas).c_str(),
                fft_meas > 0.0 ? direct_meas / fft_meas : 0.0, max_dev);
  }
  std::printf("\nexpected shape (paper Fig. 5): n_k ~ 1 near (0,0), sharp "
              "drop near the middle of (0,0)->(pi,pi), ~0.5 at (pi,0); "
              "larger lattices resolve the crossing more finely. The fft "
              "column tracks direct to ~1e-12 with a shrinking share of "
              "wall time as L grows.\n\n");
  return 0;
}
