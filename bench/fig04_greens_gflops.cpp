// Figure 4: throughput (GFlop/s) of the improved Green's function
// evaluation vs N, compared against DGEMM and DGEQRF at the same size.
//
// The paper's claim: the pre-pivoted evaluation runs at ~70% of DGEMM and
// ABOVE the blocked QR rate (because most of its flops are the GEMMs of the
// C = (B Q) D products).
#include <vector>

#include "bench_util.h"
#include "dqmc/cluster_store.h"
#include "dqmc/hs_field.h"
#include "dqmc/stratification.h"
#include "hubbard/bmatrix.h"
#include "linalg/blas3.h"
#include "linalg/qr.h"
#include "linalg/util.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  banner("Fig. 4", "Green's function evaluation GFlop/s vs N (pre-pivot engine)");

  const idx slices = full_scale() ? 160 : 80;
  const idx k = 10;
  std::vector<idx> ls = {8, 12, 16, 20};
  if (full_scale()) {
    ls.push_back(24);
    ls.push_back(32);
  }

  cli::Table table({"N", "greens GF/s", "dgemm GF/s", "dgeqrf GF/s",
                    "greens/gemm"});
  obs::Json rows = obs::Json::array();
  for (idx l : ls) {
    const idx n = l * l;
    hubbard::Lattice lat(l, l);
    hubbard::ModelParams model;
    model.u = 4.0;
    model.slices = slices;
    model.beta = 0.125 * static_cast<double>(slices);
    hubbard::BMatrixFactory factory(lat, model);
    core::HSField field(slices, n);
    core::Rng rng(static_cast<std::uint64_t>(n));
    field.randomize(rng);
    core::ClusterStore store(factory, field, k);
    store.rebuild_all();
    core::StratificationEngine pre(n, core::StratAlgorithm::kPrePivot);

    const idx evals = l >= 20 ? 3 : 8;
    Stopwatch watch;
    for (idx e = 0; e < evals; ++e) {
      (void)pre.compute(store.rotation(hubbard::Spin::Up,
                                       e % store.num_clusters()));
    }
    const double t_greens = watch.seconds() / static_cast<double>(evals);
    const double gf_greens =
        greens_eval_flops(n, store.num_clusters()) / t_greens / 1e9;

    // Reference kernels at the same size.
    linalg::MatrixRng mrng(static_cast<std::uint64_t>(n));
    const linalg::Matrix a = mrng.uniform_matrix(n, n);
    const linalg::Matrix b = mrng.uniform_matrix(n, n);
    linalg::Matrix c = linalg::Matrix::zero(n, n);
    Stopwatch wg;
    int reps = 0;
    do {
      linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, a, b, 0.0, c);
      ++reps;
    } while (wg.seconds() < 0.2);
    const double gf_gemm = gemm_flops(n) * reps / wg.seconds() / 1e9;

    Stopwatch wq;
    reps = 0;
    do {
      (void)linalg::qr_factor(a);
      ++reps;
    } while (wq.seconds() < 0.2);
    const double gf_qr = qr_flops(n) * reps / wq.seconds() / 1e9;

    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(gf_greens, 2), cli::Table::num(gf_gemm, 2),
                   cli::Table::num(gf_qr, 2),
                   cli::Table::num(gf_greens / gf_gemm, 3)});
    rows.push_back(obs::Json::object()
                       .set("n", n)
                       .set("greens_gflops", gf_greens)
                       .set("dgemm_gflops", gf_gemm)
                       .set("dgeqrf_gflops", gf_qr)
                       .set("greens_over_gemm", gf_greens / gf_gemm));
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 4): greens rate ~0.7x dgemm and "
              "above dgeqrf for the larger sizes.\n\n");
  maybe_write_bench_manifest("fig04_greens_gflops", rows);
  return 0;
}
