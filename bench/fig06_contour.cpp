// Figure 6: colour contour of the mean momentum distribution <n_k> over the
// full Brillouin zone, small vs large lattice (paper: 12x12 vs 32x32) —
// showing how the larger lattice resolves the Fermi surface.
//
// Rendered as ASCII heatmaps over the (kx, ky) grid (dark = occupied).
#include <vector>

#include "bench_util.h"
#include "dqmc/simulation.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  banner("Fig. 6", "contour of <n_k> over the Brillouin zone, small vs "
                   "large lattice, rho=1, U=2");

  std::vector<idx> sizes =
      full_scale() ? std::vector<idx>{12, 32} : std::vector<idx>{8, 16};
  for (idx l : sizes) {
    core::SimulationConfig cfg;
    cfg.lx = cfg.ly = l;
    cfg.model.u = 2.0;
    cfg.model.beta = full_scale() ? 32.0 : 6.0;
    cfg.model.slices = full_scale() ? 160 : 48;
    cfg.warmup_sweeps = full_scale() ? 1000 : (l >= 16 ? 10 : 30);
    cfg.measurement_sweeps = full_scale() ? 2000 : (l >= 16 ? 20 : 60);
    cfg.seed = 600 + static_cast<std::uint64_t>(l);

    Stopwatch watch;
    core::SimulationResults res = core::run_simulation(cfg);

    // n_k grid with k ordered so the zone centre (0,0) sits at the middle
    // of the plot: shift indices by l/2 (periodic in the BZ).
    std::vector<double> grid(static_cast<std::size_t>(l) * l);
    for (idx ny = 0; ny < l; ++ny) {
      for (idx nx = 0; nx < l; ++nx) {
        const idx sx = (nx + l / 2) % l;
        const idx sy = (ny + l / 2) % l;
        grid[static_cast<std::size_t>(ny) * l + nx] =
            res.measurements.momentum_dist(sx + l * sy).mean;
      }
    }
    std::printf("\n%lldx%lld lattice (%s), kx,ky in [-pi,pi), dark=empty:\n",
                static_cast<long long>(l), static_cast<long long>(l),
                format_seconds(watch.seconds()).c_str());
    std::fputs(cli::ascii_heatmap(grid, static_cast<int>(l),
                                  static_cast<int>(l)).c_str(),
               stdout);
  }
  std::printf("\nexpected shape (paper Fig. 6): a filled (bright) diamond "
              "around the zone centre bounded by the rho=1 Fermi surface; "
              "the larger lattice shows a much smoother boundary.\n\n");
  return 0;
}
