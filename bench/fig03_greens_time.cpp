// Figure 3: average wall time per Green's function evaluation vs number of
// sites N, comparing the baseline (Algorithm 2, clusters rebuilt every
// evaluation — the "previous QUEST" behaviour) against the improved engine
// (Algorithm 3 pre-pivoting + cluster recycling, k = l = 10).
//
// Paper: N = 256..1024, L = 160 on 12 Westmere cores; ~3x speedup.
// Scaled default: N up to 400, L = 80 on this host. The speedup factor is
// the quantity to compare.
#include <vector>

#include "bench_util.h"
#include "dqmc/cluster_store.h"
#include "dqmc/hs_field.h"
#include "dqmc/stratification.h"
#include "hubbard/bmatrix.h"

namespace {

using namespace dqmc;
using namespace dqmc::bench;

struct Timing {
  double baseline_s;  // QRP + cluster rebuild per evaluation
  double improved_s;  // pre-pivot + recycled clusters
};

Timing time_greens(idx l, idx slices, idx k, idx evals) {
  hubbard::Lattice lat(l, l);
  hubbard::ModelParams model;
  model.u = 4.0;
  model.slices = slices;
  model.beta = 0.125 * static_cast<double>(slices);
  hubbard::BMatrixFactory factory(lat, model);
  core::HSField field(slices, lat.num_sites());
  core::Rng rng(static_cast<std::uint64_t>(l * 1000 + slices));
  field.randomize(rng);

  core::ClusterStore store(factory, field, k);
  store.rebuild_all();

  core::StratificationEngine qrp(lat.num_sites(), core::StratAlgorithm::kQRP);
  core::StratificationEngine pre(lat.num_sites(),
                                 core::StratAlgorithm::kPrePivot);

  Timing t{};
  {
    // Baseline: pivoted QR everywhere and clusters NOT recycled — they are
    // recomputed before every evaluation, as a per-evaluation cost.
    Stopwatch watch;
    for (idx e = 0; e < evals; ++e) {
      store.rebuild_all();
      (void)qrp.compute(store.rotation(hubbard::Spin::Up,
                                       e % store.num_clusters()));
    }
    t.baseline_s = watch.seconds() / static_cast<double>(evals);
  }
  {
    // Improved: pre-pivoted QR, clusters cached — only one cluster changes
    // per boundary in a real sweep, so rebuild exactly one per evaluation.
    Stopwatch watch;
    for (idx e = 0; e < evals; ++e) {
      store.rebuild(e % store.num_clusters());
      (void)pre.compute(store.rotation(hubbard::Spin::Up,
                                       e % store.num_clusters()));
    }
    t.improved_s = watch.seconds() / static_cast<double>(evals);
  }
  return t;
}

}  // namespace

int main() {
  banner("Fig. 3", "average time per Green's function evaluation vs N");

  const idx slices = full_scale() ? 160 : 80;
  const idx k = 10;
  std::vector<idx> ls = {8, 12, 16, 20};
  if (full_scale()) {
    ls.push_back(24);
    ls.push_back(32);
  }

  cli::Table table({"N", "baseline ms", "improved ms", "speedup"});
  for (idx l : ls) {
    const idx evals = l >= 20 ? 3 : (l >= 16 ? 5 : 10);
    const Timing t = time_greens(l, slices, k, evals);
    table.add_row({cli::Table::integer(static_cast<long>(l * l)),
                   cli::Table::num(t.baseline_s * 1e3, 1),
                   cli::Table::num(t.improved_s * 1e3, 1),
                   cli::Table::num(t.baseline_s / t.improved_s, 2)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 3): improved engine ~3x faster "
              "at every N (pre-pivoting + cluster recycling).\n\n");
  return 0;
}
