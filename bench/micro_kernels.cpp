// google-benchmark micro-benchmarks of the dense kernels underlying every
// figure: GEMM, blocked QR, pivoted QR, the pre-pivot column-norm sort, and
// the fine-grain scaling kernels of Section IV-B.
//
// Complements the per-figure harness binaries with statistically robust
// per-kernel timings (use --benchmark_filter=... to select).
#include <benchmark/benchmark.h>

#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/norms.h"
#include "linalg/qr.h"
#include "linalg/qrp.h"
#include "linalg/util.h"

namespace {

using namespace dqmc::linalg;

void BM_Gemm(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n));
  const Matrix a = rng.uniform_matrix(n, n);
  const Matrix b = rng.uniform_matrix(n, n);
  Matrix c = Matrix::zero(n, n);
  for (auto _ : state) {
    gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

void BM_QrBlocked(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 1);
  const Matrix a = rng.uniform_matrix(n, n);
  for (auto _ : state) {
    QRFactorization f = qr_factor(a);
    benchmark::DoNotOptimize(f.factors.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      4.0 / 3.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_QrBlocked)->Arg(128)->Arg(256)->Arg(512);

void BM_QrPivoted(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 2);
  const Matrix a = rng.uniform_matrix(n, n);
  for (auto _ : state) {
    QRPFactorization f = qrp_factor(a);
    benchmark::DoNotOptimize(f.factors.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      4.0 / 3.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_QrPivoted)->Arg(128)->Arg(256)->Arg(512);

void BM_PrePivotSort(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 3);
  const Matrix a = rng.graded_matrix(n, 0.97);
  for (auto _ : state) {
    Permutation p = prepivot_permutation(a);
    benchmark::DoNotOptimize(p.map().data());
  }
}
BENCHMARK(BM_PrePivotSort)->Arg(256)->Arg(1024);

void BM_ColumnNorms(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 4);
  const Matrix a = rng.uniform_matrix(n, n);
  Vector out(n);
  for (auto _ : state) {
    column_norms(a, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ColumnNorms)->Arg(256)->Arg(1024);

void BM_ScaleRows(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 5);
  Matrix a = rng.uniform_matrix(n, n);
  Vector d(n);
  for (idx i = 0; i < n; ++i) d[i] = rng.uniform(0.9, 1.1);
  for (auto _ : state) {
    scale_rows(d.data(), a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_ScaleRows)->Arg(256)->Arg(1024);

void BM_WrapScaling(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 6);
  Matrix a = rng.uniform_matrix(n, n);
  Vector d(n);
  for (idx i = 0; i < n; ++i) d[i] = rng.uniform(0.9, 1.1);
  for (auto _ : state) {
    scale_rows_cols_inv(d.data(), d.data(), a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_WrapScaling)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
