// google-benchmark micro-benchmarks of the dense kernels underlying every
// figure: GEMM, blocked QR, pivoted QR, the pre-pivot column-norm sort, and
// the fine-grain scaling kernels of Section IV-B.
//
// Complements the per-figure harness binaries with statistically robust
// per-kernel timings (use --benchmark_filter=... to select).
#include <benchmark/benchmark.h>

#include "linalg/blas3.h"
#include "linalg/diag.h"
#include "linalg/norms.h"
#include "linalg/qr.h"
#include "linalg/qrp.h"
#include "linalg/util.h"

namespace {

using namespace dqmc::linalg;

void BM_Gemm(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n));
  const Matrix a = rng.uniform_matrix(n, n);
  const Matrix b = rng.uniform_matrix(n, n);
  Matrix c = Matrix::zero(n, n);
  for (auto _ : state) {
    gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

// Transposed-operand variants: these exercise the strided reads in
// pack_a (transA) / pack_b (transB), which the blocked-transpose tiling in
// gemm_kernel.cpp turns into contiguous row-segment copies. Regressing
// these toward BM_Gemm's GFlops is the point of that satellite.
void BM_GemmTrans(benchmark::State& state) {
  const idx n = state.range(0);
  const bool ta = state.range(1) != 0;
  const bool tb = state.range(2) != 0;
  MatrixRng rng(static_cast<std::uint64_t>(n));
  const Matrix a = rng.uniform_matrix(n, n);
  const Matrix b = rng.uniform_matrix(n, n);
  Matrix c = Matrix::zero(n, n);
  for (auto _ : state) {
    gemm(ta ? Trans::Yes : Trans::No, tb ? Trans::Yes : Trans::No, 1.0, a, b,
         0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_GemmTrans)
    ->ArgNames({"n", "transA", "transB"})
    ->Args({128, 1, 0})
    ->Args({256, 1, 0})
    ->Args({512, 1, 0})
    ->Args({128, 0, 1})
    ->Args({256, 0, 1})
    ->Args({512, 0, 1})
    ->Args({128, 1, 1})
    ->Args({256, 1, 1})
    ->Args({512, 1, 1});

// Batched GEMM with the shared left operand of the walker-crowd wrap:
// one resident B streamed against `batch` per-walker panels.
void BM_GemmBatchedShared(benchmark::State& state) {
  const idx n = state.range(0);
  const idx batch = state.range(1);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 7);
  const Matrix shared = rng.uniform_matrix(n, n);
  std::vector<Matrix> bs, cs;
  for (idx i = 0; i < batch; ++i) {
    bs.push_back(rng.uniform_matrix(n, n));
    cs.push_back(Matrix::zero(n, n));
  }
  const std::vector<ConstMatrixView> av{shared};
  const std::vector<ConstMatrixView> bv(bs.begin(), bs.end());
  std::vector<MatrixView> cv(cs.begin(), cs.end());
  for (auto _ : state) {
    gemm_batched(Trans::No, Trans::No, 1.0, av, bv, 0.0, cv);
    benchmark::DoNotOptimize(cs.front().data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * static_cast<double>(batch) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_GemmBatchedShared)
    ->ArgNames({"n", "batch"})
    ->Args({64, 8})
    ->Args({128, 8})
    ->Args({128, 16})
    ->Args({256, 8});

void BM_QrBlocked(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 1);
  const Matrix a = rng.uniform_matrix(n, n);
  for (auto _ : state) {
    QRFactorization f = qr_factor(a);
    benchmark::DoNotOptimize(f.factors.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      4.0 / 3.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_QrBlocked)->Arg(128)->Arg(256)->Arg(512);

void BM_QrPivoted(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 2);
  const Matrix a = rng.uniform_matrix(n, n);
  for (auto _ : state) {
    QRPFactorization f = qrp_factor(a);
    benchmark::DoNotOptimize(f.factors.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      4.0 / 3.0 * static_cast<double>(n) * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_QrPivoted)->Arg(128)->Arg(256)->Arg(512);

void BM_PrePivotSort(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 3);
  const Matrix a = rng.graded_matrix(n, 0.97);
  for (auto _ : state) {
    Permutation p = prepivot_permutation(a);
    benchmark::DoNotOptimize(p.map().data());
  }
}
BENCHMARK(BM_PrePivotSort)->Arg(256)->Arg(1024);

void BM_ColumnNorms(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 4);
  const Matrix a = rng.uniform_matrix(n, n);
  Vector out(n);
  for (auto _ : state) {
    column_norms(a, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ColumnNorms)->Arg(256)->Arg(1024);

void BM_ScaleRows(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 5);
  Matrix a = rng.uniform_matrix(n, n);
  Vector d(n);
  for (idx i = 0; i < n; ++i) d[i] = rng.uniform(0.9, 1.1);
  for (auto _ : state) {
    scale_rows(d.data(), a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_ScaleRows)->Arg(256)->Arg(1024);

void BM_WrapScaling(benchmark::State& state) {
  const idx n = state.range(0);
  MatrixRng rng(static_cast<std::uint64_t>(n) + 6);
  Matrix a = rng.uniform_matrix(n, n);
  Vector d(n);
  for (idx i = 0; i < n; ++i) d[i] = rng.uniform(0.9, 1.1);
  for (auto _ : state) {
    scale_rows_cols_inv(d.data(), d.data(), a);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_WrapScaling)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
