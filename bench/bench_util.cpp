#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>

#include "backend/bchain.h"
#include "common/error.h"
#include "dqmc/dynamic_measurements.h"
#include "dqmc/hs_field.h"
#include "dqmc/measurements.h"
#include "dqmc/rng.h"
#include "dqmc/run_manifest.h"
#include "dqmc/stabilizer.h"
#include "hubbard/bmatrix.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::bench {

void maybe_write_manifest(const core::SimulationResults& results) {
  if (const auto path = env_string("DQMC_MANIFEST_JSON")) {
    core::write_run_manifest(results, *path);
    std::printf("manifest written to %s\n", path->c_str());
  }
}

void maybe_write_bench_manifest(const std::string& bench,
                                const obs::Json& results) {
  const auto path = env_string("DQMC_MANIFEST_JSON");
  if (!path) return;
  const par::RuntimeStats st = par::TaskRuntime::global().stats();
  const obs::Json doc =
      obs::Json::object()
          .set("manifest", obs::Json::object()
                               .set("program", "dqmcpp-bench")
                               .set("bench", bench)
                               .set("format_version", 1)
                               .set("hardware_threads", par::num_threads()))
          .set("results", results)
          .set("runtime", obs::Json::object()
                              .set("workers_alive",
                                   par::TaskRuntime::global().workers())
                              .set("tasks_spawned", st.tasks_spawned)
                              .set("tasks_executed", st.tasks_executed)
                              .set("tasks_stolen", st.tasks_stolen)
                              .set("tasks_helped", st.tasks_helped)
                              .set("groups", st.groups))
          .set("metrics", obs::metrics().json_value());
  std::ofstream out(*path);
  DQMC_CHECK_MSG(out.good(), "cannot open manifest file: " + *path);
  out << doc.dump(2) << '\n';
  out.flush();
  DQMC_CHECK_MSG(out.good(), "failed writing manifest file: " + *path);
  std::printf("manifest written to %s\n", path->c_str());
}

obs::Json checkerboard_device_rows(bool quick) {
  constexpr idx kWraps = 8;
  constexpr idx kClusterK = 10;
  const std::vector<idx> ls =
      quick ? std::vector<idx>{8} : std::vector<idx>{8, 12, 16, 24};
  obs::Json rows = obs::Json::array();
  for (idx l : ls) {
    const hubbard::Lattice lat(l, l);
    hubbard::ModelParams p;
    p.beta = 4.0;
    p.slices = 40;  // dtau = 0.1
    const idx n = lat.num_sites();

    // Any valid diagonal will do — the virtual clock bills from shapes —
    // but keep it deterministic so downloaded results are too.
    linalg::Vector v(n);
    for (idx i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
    }
    const std::vector<linalg::Vector> vs(static_cast<std::size_t>(kClusterK),
                                         v);
    const auto run = [&](backend::BackendBChain& chain,
                         backend::ComputeBackend& be) {
      linalg::Matrix g = linalg::Matrix::identity(n);
      for (idx w = 0; w < kWraps; ++w) {
        chain.wrap(g, v, /*fused_kernel=*/true, /*host_unchanged=*/w > 0);
      }
      (void)chain.cluster_product(vs);
      return be.stats().compute_seconds;
    };

    const hubbard::BMatrixFactory dense(lat, p, hubbard::KineticKind::kDense);
    const hubbard::BMatrixFactory cb(lat, p,
                                     hubbard::KineticKind::kCheckerboard);
    const auto dense_be = backend::make_backend(backend::BackendKind::kGpuSim);
    backend::BackendBChain dense_chain(*dense_be, dense.b(), dense.b_inv());
    const double dense_seconds = run(dense_chain, *dense_be);
    const auto cb_be = backend::make_backend(backend::BackendKind::kGpuSim);
    backend::BackendBChain cb_chain(*cb_be, cb.kinetic().cb());
    const double cb_seconds = run(cb_chain, *cb_be);

    rows.push_back(obs::Json::object()
                       .set("l", l)
                       .set("n", n)
                       .set("bonds", cb.kinetic().checkerboard().num_bonds())
                       .set("groups", cb.kinetic().cb().num_groups())
                       .set("dense_device_seconds", dense_seconds)
                       .set("cb_device_seconds", cb_seconds)
                       .set("speedup", dense_seconds / cb_seconds));
  }
  return rows;
}

namespace {

/// Worst |log d_i - log sigma_i| of an accumulated stabilizer against the
/// analytic singular spectrum of the pinned large-beta free chain — the
/// same oracle tests/dqmc/test_stability.cpp asserts both sides of.
double pinned_log_scale_drift(core::StratAlgorithm algorithm) {
  const double beta = 40.0;
  const idx slices = 80;
  const hubbard::Lattice lat(4, 4);
  hubbard::ModelParams p;
  p.u = 0.0;
  p.beta = beta;
  p.slices = slices;
  const hubbard::BMatrixFactory factory(lat, p);
  const core::HSField h(slices, lat.num_sites());  // irrelevant at U = 0
  const idx n = lat.num_sites();
  auto stab = core::make_stabilizer(n, algorithm);
  for (idx l = 0; l < slices; ++l) {
    stab->push(factory.make_b(h.slice(l), hubbard::Spin::Up));
  }
  std::vector<double> exact;  // log sigma_i, descending
  for (idx i = 0; i < n; ++i) {
    exact.push_back(-beta * factory.kinetic_eig().eigenvalues[i]);
  }
  std::sort(exact.begin(), exact.end(), std::greater<double>());
  double worst = 0.0;
  for (idx i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(std::log(stab->d()[i]) -
                                     exact[static_cast<std::size_t>(i)]));
  }
  return worst;
}

}  // namespace

obs::Json stability_policy_rows(bool quick) {
  const std::vector<double> betas =
      quick ? std::vector<double>{2.0} : std::vector<double>{2.0, 6.0};
  const struct {
    const char* name;
    core::StratAlgorithm algorithm;
  } stabilizers[] = {{"graded", core::StratAlgorithm::kPrePivot},
                     {"svdstack", core::StratAlgorithm::kSvdStack}};

  // One short interacting run per policy; the gpusim clock bills from
  // shapes and dtype alone, so the seconds are deterministic.
  const auto run_policy = [](double beta, core::StratAlgorithm algorithm,
                             backend::Precision precision,
                             double* wrap_drift_max) {
    core::SimulationConfig cfg;
    cfg.lx = 4;
    cfg.ly = 4;
    cfg.model.u = 4.0;
    cfg.model.beta = beta;
    cfg.model.slices = static_cast<idx>(beta * 10.0);  // dtau = 0.1
    cfg.engine.cluster_size = 10;
    cfg.engine.algorithm = algorithm;
    cfg.engine.precision = precision;
    cfg.engine.backend = backend::BackendKind::kGpuSim;
    cfg.warmup_sweeps = 1;
    cfg.measurement_sweeps = 2;
    cfg.bins = 2;
    cfg.seed = 17;
    obs::health().reset();
    obs::health().set_enabled(true);
    const core::SimulationResults res = core::run_simulation(cfg);
    const obs::HealthMonitor::Summary hs = obs::health().summary();
    obs::health().set_enabled(false);
    obs::health().reset();
    *wrap_drift_max = hs.wrap_drift.max;
    return res.backend_stats.total_seconds();
  };

  obs::Json rows = obs::Json::array();
  for (const double beta : betas) {
    for (const auto& stab : stabilizers) {
      double drift64 = 0.0, drift32 = 0.0;
      const double fp64_seconds =
          run_policy(beta, stab.algorithm, backend::Precision::kFp64, &drift64);
      const double fp32_seconds =
          run_policy(beta, stab.algorithm, backend::Precision::kFp32, &drift32);
      rows.push_back(obs::Json::object()
                         .set("beta", beta)
                         .set("slices", static_cast<idx>(beta * 10.0))
                         .set("stabilizer", stab.name)
                         .set("fp64_device_seconds", fp64_seconds)
                         .set("fp32_device_seconds", fp32_seconds)
                         .set("fp32_speedup", fp64_seconds / fp32_seconds)
                         .set("fp64_wrap_drift_max", drift64)
                         .set("fp32_wrap_drift_max", drift32)
                         .set("log_scale_drift",
                              pinned_log_scale_drift(stab.algorithm)));
    }
  }
  return rows;
}

namespace {

/// Deterministic synthetic Green's function: a near-free-fermion diagonal
/// with seeded off-diagonal noise, so both measurement paths see the same
/// bytes on every run and the parity columns are replay-exact.
linalg::Matrix synthetic_greens(core::Rng& rng, idx n) {
  linalg::Matrix g(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      g(i, j) = (i == j ? 0.5 : 0.0) + 0.2 * (rng.uniform() - 0.5);
    }
  }
  return g;
}

double max_abs_dev(const linalg::Vector& a, const linalg::Vector& b) {
  double dev = 0.0;
  for (idx i = 0; i < a.size(); ++i) dev = std::max(dev, std::abs(a[i] - b[i]));
  return dev;
}

double equal_time_dev(const core::EqualTimeSample& a,
                      const core::EqualTimeSample& b) {
  double dev = std::max({std::abs(a.density - b.density),
                         std::abs(a.density_up - b.density_up),
                         std::abs(a.density_dn - b.density_dn),
                         std::abs(a.double_occupancy - b.double_occupancy),
                         std::abs(a.kinetic_energy - b.kinetic_energy),
                         std::abs(a.moment_sq - b.moment_sq),
                         std::abs(a.af_structure_factor - b.af_structure_factor),
                         std::abs(a.pair_s - b.pair_s),
                         std::abs(a.pair_d - b.pair_d)});
  dev = std::max(dev, max_abs_dev(a.momentum_dist, b.momentum_dist));
  dev = std::max(dev, max_abs_dev(a.spin_corr, b.spin_corr));
  return dev;
}

double dynamic_dev(const core::DynamicSample& a, const core::DynamicSample& b) {
  double dev = std::abs(a.chi_af_integrated - b.chi_af_integrated);
  dev = std::max(dev, max_abs_dev(a.gloc, b.gloc));
  dev = std::max(dev, max_abs_dev(a.chi_af, b.chi_af));
  for (idx j = 0; j < a.gk_tau.cols(); ++j) {
    for (idx i = 0; i < a.gk_tau.rows(); ++i) {
      dev = std::max(dev, std::abs(a.gk_tau(i, j) - b.gk_tau(i, j)));
    }
  }
  return dev;
}

}  // namespace

obs::Json fft_measurement_rows(bool quick) {
  constexpr idx kSlices = 8;       // dynamic families carry kSlices + 1 taus
  constexpr double kDtau = 0.125;  // only scales the trapezoid weights
  const std::vector<idx> sizes =
      quick ? std::vector<idx>{16} : std::vector<idx>{8, 12, 16, 20, 24};

  obs::Json rows = obs::Json::array();
  for (const idx l : sizes) {
    const hubbard::Lattice lat(l, l);
    const hubbard::ModelParams params;
    const idx n = lat.num_sites();
    core::Rng rng(0xF5EED0 + static_cast<std::uint64_t>(l));
    const linalg::Matrix gup = synthetic_greens(rng, n);
    const linalg::Matrix gdn = synthetic_greens(rng, n);
    core::TimeDisplaced up, dn;
    for (idx s = 0; s <= kSlices; ++s) {
      up.g_tau0.push_back(synthetic_greens(rng, n));
      up.g_0tau.push_back(synthetic_greens(rng, n));
      up.g_tautau.push_back(synthetic_greens(rng, n));
      dn.g_tau0.push_back(synthetic_greens(rng, n));
      dn.g_0tau.push_back(synthetic_greens(rng, n));
      dn.g_tautau.push_back(synthetic_greens(rng, n));
    }

    core::MeasurementWorkspace direct_ws(lat, core::MeasureKind::kDirect);
    core::MeasurementWorkspace fft_ws(lat, core::MeasureKind::kFft);

    // Enough repetitions that even the FFT path's equal-time pass takes
    // a resolvable slice of wall clock on the smallest lattice.
    const idx reps = std::max<idx>(3, 3000000 / (n * n));
    const idx dyn_reps = std::max<idx>(2, reps / 4);

    const core::EqualTimeSample et_direct =
        core::measure_equal_time(lat, params, gup, gdn, direct_ws);
    const core::EqualTimeSample et_fft =
        core::measure_equal_time(lat, params, gup, gdn, fft_ws);
    const core::DynamicSample dyn_direct =
        core::measure_dynamic(lat, kDtau, up, dn, direct_ws);
    const core::DynamicSample dyn_fft =
        core::measure_dynamic(lat, kDtau, up, dn, fft_ws);

    Stopwatch w_et_direct;
    for (idx r = 0; r < reps; ++r) {
      core::measure_equal_time(lat, params, gup, gdn, direct_ws);
    }
    const double et_direct_seconds = w_et_direct.seconds() / reps;
    Stopwatch w_et_fft;
    for (idx r = 0; r < reps; ++r) {
      core::measure_equal_time(lat, params, gup, gdn, fft_ws);
    }
    const double et_fft_seconds = w_et_fft.seconds() / reps;

    Stopwatch w_dyn_direct;
    for (idx r = 0; r < dyn_reps; ++r) {
      core::measure_dynamic(lat, kDtau, up, dn, direct_ws);
    }
    const double dyn_direct_seconds = w_dyn_direct.seconds() / dyn_reps;
    Stopwatch w_dyn_fft;
    for (idx r = 0; r < dyn_reps; ++r) {
      core::measure_dynamic(lat, kDtau, up, dn, fft_ws);
    }
    const double dyn_fft_seconds = w_dyn_fft.seconds() / dyn_reps;

    rows.push_back(obs::Json::object()
                       .set("l", l)
                       .set("n", n)
                       .set("et_direct_seconds", et_direct_seconds)
                       .set("et_fft_seconds", et_fft_seconds)
                       .set("et_speedup", et_direct_seconds / et_fft_seconds)
                       .set("et_max_dev", equal_time_dev(et_direct, et_fft))
                       .set("dyn_direct_seconds", dyn_direct_seconds)
                       .set("dyn_fft_seconds", dyn_fft_seconds)
                       .set("dyn_speedup", dyn_direct_seconds / dyn_fft_seconds)
                       .set("dyn_max_dev", dynamic_dev(dyn_direct, dyn_fft)));
  }
  return rows;
}

FiveNumber five_number_summary(std::vector<double> samples) {
  DQMC_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  return {samples.front(), quantile(0.25), quantile(0.5), quantile(0.75),
          samples.back()};
}

}  // namespace dqmc::bench
