#include "bench_util.h"

#include <algorithm>

#include "common/error.h"
#include "dqmc/run_manifest.h"

namespace dqmc::bench {

void maybe_write_manifest(const core::SimulationResults& results) {
  if (const auto path = env_string("DQMC_MANIFEST_JSON")) {
    core::write_run_manifest(results, *path);
    std::printf("manifest written to %s\n", path->c_str());
  }
}

FiveNumber five_number_summary(std::vector<double> samples) {
  DQMC_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  return {samples.front(), quantile(0.25), quantile(0.5), quantile(0.75),
          samples.back()};
}

}  // namespace dqmc::bench
