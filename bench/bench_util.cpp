#include "bench_util.h"

#include <algorithm>
#include <fstream>

#include "backend/bchain.h"
#include "common/error.h"
#include "dqmc/run_manifest.h"
#include "hubbard/bmatrix.h"
#include "obs/metrics.h"
#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::bench {

void maybe_write_manifest(const core::SimulationResults& results) {
  if (const auto path = env_string("DQMC_MANIFEST_JSON")) {
    core::write_run_manifest(results, *path);
    std::printf("manifest written to %s\n", path->c_str());
  }
}

void maybe_write_bench_manifest(const std::string& bench,
                                const obs::Json& results) {
  const auto path = env_string("DQMC_MANIFEST_JSON");
  if (!path) return;
  const par::RuntimeStats st = par::TaskRuntime::global().stats();
  const obs::Json doc =
      obs::Json::object()
          .set("manifest", obs::Json::object()
                               .set("program", "dqmcpp-bench")
                               .set("bench", bench)
                               .set("format_version", 1)
                               .set("hardware_threads", par::num_threads()))
          .set("results", results)
          .set("runtime", obs::Json::object()
                              .set("workers_alive",
                                   par::TaskRuntime::global().workers())
                              .set("tasks_spawned", st.tasks_spawned)
                              .set("tasks_executed", st.tasks_executed)
                              .set("tasks_stolen", st.tasks_stolen)
                              .set("tasks_helped", st.tasks_helped)
                              .set("groups", st.groups))
          .set("metrics", obs::metrics().json_value());
  std::ofstream out(*path);
  DQMC_CHECK_MSG(out.good(), "cannot open manifest file: " + *path);
  out << doc.dump(2) << '\n';
  out.flush();
  DQMC_CHECK_MSG(out.good(), "failed writing manifest file: " + *path);
  std::printf("manifest written to %s\n", path->c_str());
}

obs::Json checkerboard_device_rows(bool quick) {
  constexpr idx kWraps = 8;
  constexpr idx kClusterK = 10;
  const std::vector<idx> ls =
      quick ? std::vector<idx>{8} : std::vector<idx>{8, 12, 16, 24};
  obs::Json rows = obs::Json::array();
  for (idx l : ls) {
    const hubbard::Lattice lat(l, l);
    hubbard::ModelParams p;
    p.beta = 4.0;
    p.slices = 40;  // dtau = 0.1
    const idx n = lat.num_sites();

    // Any valid diagonal will do — the virtual clock bills from shapes —
    // but keep it deterministic so downloaded results are too.
    linalg::Vector v(n);
    for (idx i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
    }
    const std::vector<linalg::Vector> vs(static_cast<std::size_t>(kClusterK),
                                         v);
    const auto run = [&](backend::BackendBChain& chain,
                         backend::ComputeBackend& be) {
      linalg::Matrix g = linalg::Matrix::identity(n);
      for (idx w = 0; w < kWraps; ++w) {
        chain.wrap(g, v, /*fused_kernel=*/true, /*host_unchanged=*/w > 0);
      }
      (void)chain.cluster_product(vs);
      return be.stats().compute_seconds;
    };

    const hubbard::BMatrixFactory dense(lat, p, hubbard::KineticKind::kDense);
    const hubbard::BMatrixFactory cb(lat, p,
                                     hubbard::KineticKind::kCheckerboard);
    const auto dense_be = backend::make_backend(backend::BackendKind::kGpuSim);
    backend::BackendBChain dense_chain(*dense_be, dense.b(), dense.b_inv());
    const double dense_seconds = run(dense_chain, *dense_be);
    const auto cb_be = backend::make_backend(backend::BackendKind::kGpuSim);
    backend::BackendBChain cb_chain(*cb_be, cb.kinetic().cb());
    const double cb_seconds = run(cb_chain, *cb_be);

    rows.push_back(obs::Json::object()
                       .set("l", l)
                       .set("n", n)
                       .set("bonds", cb.kinetic().checkerboard().num_bonds())
                       .set("groups", cb.kinetic().cb().num_groups())
                       .set("dense_device_seconds", dense_seconds)
                       .set("cb_device_seconds", cb_seconds)
                       .set("speedup", dense_seconds / cb_seconds));
  }
  return rows;
}

FiveNumber five_number_summary(std::vector<double> samples) {
  DQMC_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  return {samples.front(), quantile(0.25), quantile(0.5), quantile(0.75),
          samples.back()};
}

}  // namespace dqmc::bench
