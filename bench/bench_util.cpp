#include "bench_util.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"
#include "dqmc/run_manifest.h"
#include "obs/metrics.h"
#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::bench {

void maybe_write_manifest(const core::SimulationResults& results) {
  if (const auto path = env_string("DQMC_MANIFEST_JSON")) {
    core::write_run_manifest(results, *path);
    std::printf("manifest written to %s\n", path->c_str());
  }
}

void maybe_write_bench_manifest(const std::string& bench,
                                const obs::Json& results) {
  const auto path = env_string("DQMC_MANIFEST_JSON");
  if (!path) return;
  const par::RuntimeStats st = par::TaskRuntime::global().stats();
  const obs::Json doc =
      obs::Json::object()
          .set("manifest", obs::Json::object()
                               .set("program", "dqmcpp-bench")
                               .set("bench", bench)
                               .set("format_version", 1)
                               .set("hardware_threads", par::num_threads()))
          .set("results", results)
          .set("runtime", obs::Json::object()
                              .set("workers_alive",
                                   par::TaskRuntime::global().workers())
                              .set("tasks_spawned", st.tasks_spawned)
                              .set("tasks_executed", st.tasks_executed)
                              .set("tasks_stolen", st.tasks_stolen)
                              .set("tasks_helped", st.tasks_helped)
                              .set("groups", st.groups))
          .set("metrics", obs::metrics().json_value());
  std::ofstream out(*path);
  DQMC_CHECK_MSG(out.good(), "cannot open manifest file: " + *path);
  out << doc.dump(2) << '\n';
  out.flush();
  DQMC_CHECK_MSG(out.good(), "failed writing manifest file: " + *path);
  std::printf("manifest written to %s\n", path->c_str());
}

FiveNumber five_number_summary(std::vector<double> samples) {
  DQMC_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  return {samples.front(), quantile(0.25), quantile(0.5), quantile(0.75),
          samples.back()};
}

}  // namespace dqmc::bench
