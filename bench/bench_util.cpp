#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>

#include "backend/bchain.h"
#include "common/error.h"
#include "dqmc/hs_field.h"
#include "dqmc/run_manifest.h"
#include "dqmc/stabilizer.h"
#include "hubbard/bmatrix.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "parallel/task_runtime.h"
#include "parallel/topology.h"

namespace dqmc::bench {

void maybe_write_manifest(const core::SimulationResults& results) {
  if (const auto path = env_string("DQMC_MANIFEST_JSON")) {
    core::write_run_manifest(results, *path);
    std::printf("manifest written to %s\n", path->c_str());
  }
}

void maybe_write_bench_manifest(const std::string& bench,
                                const obs::Json& results) {
  const auto path = env_string("DQMC_MANIFEST_JSON");
  if (!path) return;
  const par::RuntimeStats st = par::TaskRuntime::global().stats();
  const obs::Json doc =
      obs::Json::object()
          .set("manifest", obs::Json::object()
                               .set("program", "dqmcpp-bench")
                               .set("bench", bench)
                               .set("format_version", 1)
                               .set("hardware_threads", par::num_threads()))
          .set("results", results)
          .set("runtime", obs::Json::object()
                              .set("workers_alive",
                                   par::TaskRuntime::global().workers())
                              .set("tasks_spawned", st.tasks_spawned)
                              .set("tasks_executed", st.tasks_executed)
                              .set("tasks_stolen", st.tasks_stolen)
                              .set("tasks_helped", st.tasks_helped)
                              .set("groups", st.groups))
          .set("metrics", obs::metrics().json_value());
  std::ofstream out(*path);
  DQMC_CHECK_MSG(out.good(), "cannot open manifest file: " + *path);
  out << doc.dump(2) << '\n';
  out.flush();
  DQMC_CHECK_MSG(out.good(), "failed writing manifest file: " + *path);
  std::printf("manifest written to %s\n", path->c_str());
}

obs::Json checkerboard_device_rows(bool quick) {
  constexpr idx kWraps = 8;
  constexpr idx kClusterK = 10;
  const std::vector<idx> ls =
      quick ? std::vector<idx>{8} : std::vector<idx>{8, 12, 16, 24};
  obs::Json rows = obs::Json::array();
  for (idx l : ls) {
    const hubbard::Lattice lat(l, l);
    hubbard::ModelParams p;
    p.beta = 4.0;
    p.slices = 40;  // dtau = 0.1
    const idx n = lat.num_sites();

    // Any valid diagonal will do — the virtual clock bills from shapes —
    // but keep it deterministic so downloaded results are too.
    linalg::Vector v(n);
    for (idx i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
    }
    const std::vector<linalg::Vector> vs(static_cast<std::size_t>(kClusterK),
                                         v);
    const auto run = [&](backend::BackendBChain& chain,
                         backend::ComputeBackend& be) {
      linalg::Matrix g = linalg::Matrix::identity(n);
      for (idx w = 0; w < kWraps; ++w) {
        chain.wrap(g, v, /*fused_kernel=*/true, /*host_unchanged=*/w > 0);
      }
      (void)chain.cluster_product(vs);
      return be.stats().compute_seconds;
    };

    const hubbard::BMatrixFactory dense(lat, p, hubbard::KineticKind::kDense);
    const hubbard::BMatrixFactory cb(lat, p,
                                     hubbard::KineticKind::kCheckerboard);
    const auto dense_be = backend::make_backend(backend::BackendKind::kGpuSim);
    backend::BackendBChain dense_chain(*dense_be, dense.b(), dense.b_inv());
    const double dense_seconds = run(dense_chain, *dense_be);
    const auto cb_be = backend::make_backend(backend::BackendKind::kGpuSim);
    backend::BackendBChain cb_chain(*cb_be, cb.kinetic().cb());
    const double cb_seconds = run(cb_chain, *cb_be);

    rows.push_back(obs::Json::object()
                       .set("l", l)
                       .set("n", n)
                       .set("bonds", cb.kinetic().checkerboard().num_bonds())
                       .set("groups", cb.kinetic().cb().num_groups())
                       .set("dense_device_seconds", dense_seconds)
                       .set("cb_device_seconds", cb_seconds)
                       .set("speedup", dense_seconds / cb_seconds));
  }
  return rows;
}

namespace {

/// Worst |log d_i - log sigma_i| of an accumulated stabilizer against the
/// analytic singular spectrum of the pinned large-beta free chain — the
/// same oracle tests/dqmc/test_stability.cpp asserts both sides of.
double pinned_log_scale_drift(core::StratAlgorithm algorithm) {
  const double beta = 40.0;
  const idx slices = 80;
  const hubbard::Lattice lat(4, 4);
  hubbard::ModelParams p;
  p.u = 0.0;
  p.beta = beta;
  p.slices = slices;
  const hubbard::BMatrixFactory factory(lat, p);
  const core::HSField h(slices, lat.num_sites());  // irrelevant at U = 0
  const idx n = lat.num_sites();
  auto stab = core::make_stabilizer(n, algorithm);
  for (idx l = 0; l < slices; ++l) {
    stab->push(factory.make_b(h.slice(l), hubbard::Spin::Up));
  }
  std::vector<double> exact;  // log sigma_i, descending
  for (idx i = 0; i < n; ++i) {
    exact.push_back(-beta * factory.kinetic_eig().eigenvalues[i]);
  }
  std::sort(exact.begin(), exact.end(), std::greater<double>());
  double worst = 0.0;
  for (idx i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(std::log(stab->d()[i]) -
                                     exact[static_cast<std::size_t>(i)]));
  }
  return worst;
}

}  // namespace

obs::Json stability_policy_rows(bool quick) {
  const std::vector<double> betas =
      quick ? std::vector<double>{2.0} : std::vector<double>{2.0, 6.0};
  const struct {
    const char* name;
    core::StratAlgorithm algorithm;
  } stabilizers[] = {{"graded", core::StratAlgorithm::kPrePivot},
                     {"svdstack", core::StratAlgorithm::kSvdStack}};

  // One short interacting run per policy; the gpusim clock bills from
  // shapes and dtype alone, so the seconds are deterministic.
  const auto run_policy = [](double beta, core::StratAlgorithm algorithm,
                             backend::Precision precision,
                             double* wrap_drift_max) {
    core::SimulationConfig cfg;
    cfg.lx = 4;
    cfg.ly = 4;
    cfg.model.u = 4.0;
    cfg.model.beta = beta;
    cfg.model.slices = static_cast<idx>(beta * 10.0);  // dtau = 0.1
    cfg.engine.cluster_size = 10;
    cfg.engine.algorithm = algorithm;
    cfg.engine.precision = precision;
    cfg.engine.backend = backend::BackendKind::kGpuSim;
    cfg.warmup_sweeps = 1;
    cfg.measurement_sweeps = 2;
    cfg.bins = 2;
    cfg.seed = 17;
    obs::health().reset();
    obs::health().set_enabled(true);
    const core::SimulationResults res = core::run_simulation(cfg);
    const obs::HealthMonitor::Summary hs = obs::health().summary();
    obs::health().set_enabled(false);
    obs::health().reset();
    *wrap_drift_max = hs.wrap_drift.max;
    return res.backend_stats.total_seconds();
  };

  obs::Json rows = obs::Json::array();
  for (const double beta : betas) {
    for (const auto& stab : stabilizers) {
      double drift64 = 0.0, drift32 = 0.0;
      const double fp64_seconds =
          run_policy(beta, stab.algorithm, backend::Precision::kFp64, &drift64);
      const double fp32_seconds =
          run_policy(beta, stab.algorithm, backend::Precision::kFp32, &drift32);
      rows.push_back(obs::Json::object()
                         .set("beta", beta)
                         .set("slices", static_cast<idx>(beta * 10.0))
                         .set("stabilizer", stab.name)
                         .set("fp64_device_seconds", fp64_seconds)
                         .set("fp32_device_seconds", fp32_seconds)
                         .set("fp32_speedup", fp64_seconds / fp32_seconds)
                         .set("fp64_wrap_drift_max", drift64)
                         .set("fp32_wrap_drift_max", drift32)
                         .set("log_scale_drift",
                              pinned_log_scale_drift(stab.algorithm)));
    }
  }
  return rows;
}

FiveNumber five_number_summary(std::vector<double> samples) {
  DQMC_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  return {samples.front(), quantile(0.25), quantile(0.5), quantile(0.75),
          samples.back()};
}

}  // namespace dqmc::bench
