// Bench-regression gate: re-run a committed bench workload and compare the
// fresh numbers against its checked-in BENCH_*.json baseline, failing with a
// structured report when any row drifts past the noise tolerance.
//
//   ./bench_regress [--suite batched|checkerboard|stability|fleet|fft]
//                   [--baseline bench/BENCH_<suite>.json]
//                   [--tolerance 0.10] [--quick] [--report gate_report.json]
//                   [--inject-slowdown F] [--write-baseline FILE]
//
// The batched suite replays the exact batched_walkers workload (same config,
// same seed) on the gpusim virtual clock, so the modeled device seconds are
// deterministic: a row drifting past the tolerance means the execution model
// changed, not the machine. The checkerboard suite replays the
// ablation_checkerboard device workload (dense vs structured BackendBChain,
// bench_util's checkerboard_device_rows) against BENCH_checkerboard.json and
// additionally fails when a lattice whose baseline shows the checkerboard
// beating dense (speedup >= 1) no longer does. The stability suite replays
// the stability_policies workload (bench_util's stability_policy_rows)
// against BENCH_stability.json: the modeled fp64/fp32 device seconds are
// compared relatively (the virtual clock is codegen-independent), while the
// drift columns are held to ABSOLUTE contracts — fp32 wrap drift under the
// health threshold, graded log-scale drift above 1e-8 and svdstack below it
// — because measured drifts shift with codegen the way the golden
// trajectories do. The fleet suite replays a steal-free 4-worker fleet run
// (docs/FLEET.md) against BENCH_fleet.json: the merged gpusim virtual-clock
// device seconds compare relatively, the protocol frame count exactly, and
// the trajectory hash must bitwise-match the single-process crowd baseline
// computed in the same invocation — a fleet that silently forks a
// trajectory fails the gate before any timing is compared. The fft suite
// replays the fft_measurements workload (bench_util's fft_measurement_rows)
// against BENCH_fft.json: the direct/fft parity columns are held to an
// ABSOLUTE 1e-10 contract (they are replay-exact — same synthetic Green's
// functions, deterministic kernels), while the wall-clock speedups are only
// crossover-gated — any lattice whose baseline shows the FFT path winning
// by >= 2x must still win at all — because wall seconds, unlike the other
// suites' virtual-clock bills, vary with the machine. --quick
// restricts each suite to its smallest rows for the opt-in ctest gates
// (label: bench-gate); --inject-slowdown multiplies the measured batched /
// checkerboard / fp32 / fleet device seconds (fft: the measured fft-path
// wall seconds) by F, a test hook that lets
// the WILL_FAIL ctest entries prove the gates actually trip on a
// regression. --write-baseline (fleet suite only) runs the workload and
// writes a fresh baseline file instead of comparing.
//
// Exit status: 0 all rows within tolerance, 1 regression detected, 2 bad
// usage / unreadable baseline.
#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "backend/backend.h"
#include "cli/args.h"
#include "dqmc/supervisor.h"
#include "fleet/coordinator.h"
#include "obs/health.h"

namespace {

using namespace dqmc;
using linalg::idx;

struct Shape {
  idx lx, ly;
};

// MUST match batched_walkers.cpp's base_config in scaled-down mode — the
// baseline is committed from that mode, so the gate always replays it
// scaled-down regardless of DQMC_FULL.
core::SimulationConfig base_config(const Shape& s) {
  core::SimulationConfig cfg;
  cfg.lx = s.lx;
  cfg.ly = s.ly;
  cfg.model.u = 4.0;
  cfg.model.beta = 2.0;
  cfg.model.slices = 8;
  cfg.engine.cluster_size = 4;
  cfg.engine.delay_rank = 16;
  cfg.engine.backend = backend::BackendKind::kGpuSim;
  cfg.warmup_sweeps = 1;
  cfg.measurement_sweeps = 2;
  cfg.bins = 2;
  cfg.seed = 17;
  return cfg;
}

const obs::Json* find_baseline_row(const obs::Json& rows, idx n, idx w) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows[i];
    if (static_cast<idx>(row.at("n").number()) == n &&
        static_cast<idx>(row.at("walkers").number()) == w) {
      return &row;
    }
  }
  return nullptr;
}

const obs::Json* find_baseline_row_n(const obs::Json& rows, idx n) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows[i];
    if (static_cast<idx>(row.at("n").number()) == n) return &row;
  }
  return nullptr;
}

const obs::Json* find_baseline_row_policy(const obs::Json& rows, double beta,
                                          const std::string& stabilizer) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows[i];
    if (row.at("beta").number() == beta &&
        row.at("stabilizer").str() == stabilizer) {
      return &row;
    }
  }
  return nullptr;
}

double relative_error(double measured, double baseline) {
  const double denom = std::abs(baseline);
  if (denom == 0.0) return std::abs(measured) == 0.0 ? 0.0 : 1e30;
  return std::abs(measured - baseline) / denom;
}

const obs::Json* find_baseline_row_fleet(const obs::Json& rows, idx n,
                                         idx workers) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows[i];
    if (static_cast<idx>(row.at("n").number()) == n &&
        static_cast<idx>(row.at("workers").number()) == workers) {
      return &row;
    }
  }
  return nullptr;
}

struct FleetBenchRow {
  idx n = 0;
  idx workers = 0;
  bool hash_match = false;
  double device_seconds = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t snapshots = 0;
};

/// One deterministic fleet replay: steal-free (stealing is wall-clock
/// timing, not physics, so the protocol trace would not be reproducible),
/// gpusim virtual clock, with the single-process crowd run of the SAME
/// config as the bitwise oracle.
FleetBenchRow run_fleet_row(const Shape& shape, idx workers) {
  core::SimulationConfig cfg = base_config(shape);
  cfg.walker_batch = 2;
  const idx chains = 8;  // 4 shards of 2 chains
  core::SupervisorPolicy policy;
  policy.checkpoint_interval = 2;  // one mid-run boundary => one snapshot

  const core::SimulationResults single =
      core::run_supervised_parallel(cfg, policy, chains);

  fleet::FleetConfig fc;
  fc.workers = workers;
  fc.steal = false;
  fc.snapshot_interval = 1;
  const fleet::FleetResult fleet =
      fleet::run_fleet(cfg, policy, fc, chains);

  FleetBenchRow row;
  row.n = cfg.lx * cfg.ly;
  row.workers = workers;
  row.hash_match = fleet.results.trajectory_hash == single.trajectory_hash;
  row.device_seconds = fleet.results.backend_stats.total_seconds();
  row.frames = fleet.fleet.frames_received;
  row.bytes = fleet.fleet.bytes_received;
  row.snapshots = fleet.fleet.snapshots;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv, {"suite", "baseline", "tolerance", "quick",
                              "report", "inject-slowdown", "write-baseline"});

  const std::string suite = args.get("suite", "batched");
  if (suite != "batched" && suite != "checkerboard" && suite != "stability" &&
      suite != "fleet" && suite != "fft") {
    std::fprintf(stderr,
                 "bench_regress: unknown suite '%s' (have: batched, "
                 "checkerboard, stability, fleet, fft)\n",
                 suite.c_str());
    return 2;
  }
  const std::string baseline_path =
      args.get("baseline", "bench/BENCH_" + suite + ".json");
  const double tolerance = args.get_double("tolerance", 0.10);
  const bool quick = args.get_flag("quick");
  const double slowdown = args.get_double("inject-slowdown", 1.0);
  if (tolerance <= 0.0 || slowdown <= 0.0) {
    std::fprintf(stderr, "bench_regress: --tolerance and --inject-slowdown "
                         "must be > 0\n");
    return 2;
  }

  const std::vector<std::pair<Shape, idx>> fleet_full_spec = {
      {{8, 8}, 2}, {{8, 8}, 4}, {{16, 8}, 4}};
  const std::vector<std::pair<Shape, idx>> fleet_rows_spec =
      quick ? std::vector<std::pair<Shape, idx>>{{{8, 8}, 4}}
            : fleet_full_spec;

  if (suite == "fleet" && args.has("write-baseline")) {
    // Regenerate the committed baseline from a fresh replay (always the
    // full row set: the quick gate reads a subset of the same file).
    obs::Json rows = obs::Json::array();
    for (const auto& [shape, workers] : fleet_full_spec) {
      const FleetBenchRow row = run_fleet_row(shape, workers);
      if (!row.hash_match) {
        std::fprintf(stderr, "bench_regress: fleet hash mismatch at n=%lld "
                             "— refusing to write a corrupt baseline\n",
                     static_cast<long long>(row.n));
        return 1;
      }
      rows.push_back(obs::Json::object()
                         .set("n", row.n)
                         .set("workers", row.workers)
                         .set("fleet_device_seconds", row.device_seconds)
                         .set("frames", row.frames)
                         .set("bytes", row.bytes)
                         .set("snapshots", row.snapshots));
    }
    const obs::Json doc =
        obs::Json::object()
            .set("manifest", obs::Json::object()
                                 .set("program", "dqmcpp-bench")
                                 .set("bench", "fleet")
                                 .set("format_version", 1))
            .set("results", std::move(rows));
    const std::string out_path = args.get("write-baseline", "");
    std::ofstream out(out_path);
    out << doc.dump(2) << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "bench_regress: failed writing %s\n",
                   out_path.c_str());
      return 2;
    }
    std::printf("fleet baseline written to %s\n", out_path.c_str());
    return 0;
  }

  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::fprintf(stderr, "bench_regress: cannot open baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  obs::Json baseline;
  try {
    baseline = obs::Json::parse(text.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_regress: malformed baseline %s: %s\n",
                 baseline_path.c_str(), e.what());
    return 2;
  }
  const obs::Json* baseline_rows = baseline.find("results");
  if (baseline_rows == nullptr || !baseline_rows->is_array()) {
    std::fprintf(stderr, "bench_regress: baseline %s has no results array\n",
                 baseline_path.c_str());
    return 2;
  }

  bench::banner("bench_regress",
                "re-run committed benches against BENCH_*.json baselines");
  std::printf("suite: %s  baseline: %s  tolerance: %.0f%%%s%s\n\n",
              suite.c_str(), baseline_path.c_str(), 100.0 * tolerance,
              quick ? "  (quick subset)" : "",
              slowdown != 1.0 ? "  [synthetic slowdown injected]" : "");

  obs::Json report_rows = obs::Json::array();
  int failures = 0;

  if (suite == "fleet") {
    // Deterministic replay of the steal-free multi-process fleet: the
    // merged virtual-clock device seconds compare relatively, the protocol
    // frame count exactly (the frame schedule is a structural invariant of
    // the coordinator/worker handshake), and the trajectory hash must
    // bitwise-match the single-process crowd run before timing is even
    // considered.
    cli::Table table({"N", "workers", "fleet s (base)", "fleet s (now)",
                      "frames (base)", "frames (now)", "max rel err",
                      "status"});
    for (const auto& [shape, workers] : fleet_rows_spec) {
      FleetBenchRow fresh = run_fleet_row(shape, workers);
      // The injection hook scales the modeled device bill the way a real
      // slowdown in the sharded hot path would.
      fresh.device_seconds *= slowdown;

      obs::Json row =
          obs::Json::object().set("n", fresh.n).set("workers", workers);
      std::string status;
      double max_err = 0.0;
      if (!fresh.hash_match) {
        status = "TRAJECTORY MISMATCH";
        ++failures;
        table.add_row({cli::Table::integer(static_cast<long>(fresh.n)),
                       cli::Table::integer(static_cast<long>(workers)), "-",
                       "-", "-", "-", "-", status});
      } else {
        const obs::Json* base =
            find_baseline_row_fleet(*baseline_rows, fresh.n, workers);
        if (base == nullptr) {
          status = "NO BASELINE ROW";
          ++failures;
          table.add_row({cli::Table::integer(static_cast<long>(fresh.n)),
                         cli::Table::integer(static_cast<long>(workers)), "-",
                         "-", "-", "-", "-", status});
        } else {
          const double base_seconds =
              base->at("fleet_device_seconds").number();
          const auto base_frames =
              static_cast<std::uint64_t>(base->at("frames").number());
          max_err = relative_error(fresh.device_seconds, base_seconds);
          bool ok = max_err <= tolerance;
          status = ok ? "ok" : "REGRESSION";
          if (fresh.frames != base_frames) {
            status = "PROTOCOL DRIFT";
            ok = false;
          }
          if (!ok) ++failures;
          row.set("baseline_fleet_device_seconds", base_seconds)
              .set("measured_fleet_device_seconds", fresh.device_seconds)
              .set("baseline_frames", base_frames)
              .set("measured_frames", fresh.frames)
              .set("measured_bytes", fresh.bytes)
              .set("measured_snapshots", fresh.snapshots)
              .set("relative_error_seconds", max_err);
          table.add_row({cli::Table::integer(static_cast<long>(fresh.n)),
                         cli::Table::integer(static_cast<long>(workers)),
                         cli::Table::num(base_seconds, 6),
                         cli::Table::num(fresh.device_seconds, 6),
                         cli::Table::integer(static_cast<long>(base_frames)),
                         cli::Table::integer(static_cast<long>(fresh.frames)),
                         cli::Table::num(max_err, 4), status});
        }
      }
      row.set("max_relative_error", max_err).set("status", status);
      report_rows.push_back(std::move(row));
    }
    table.print();

    const bool pass = failures == 0;
    const obs::Json report =
        obs::Json::object()
            .set("gate_version", 1)
            .set("suite", suite)
            .set("baseline", baseline_path)
            .set("tolerance", tolerance)
            .set("quick", quick)
            .set("injected_slowdown", slowdown)
            .set("rows", report_rows)
            .set("failures", failures)
            .set("status", pass ? "pass" : "fail");
    const std::string report_path = args.get("report", "");
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      out << report.dump(2) << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "bench_regress: failed writing report %s\n",
                     report_path.c_str());
        return 2;
      }
    }
    std::printf("\nbench gate: %s (%d row%s outside the %.0f%% tolerance)\n",
                pass ? "PASS" : "FAIL", failures, failures == 1 ? "" : "s",
                100.0 * tolerance);
    return pass ? 0 : 1;
  }

  if (suite == "fft") {
    // Deterministic replay of the fft_measurements workload: the parity
    // columns are absolute contracts (the synthetic inputs and both
    // kernels are deterministic, so any drift means the arithmetic
    // changed), the wall-clock speedups only hold the crossover — a
    // lattice whose committed baseline shows the FFT path >= 2x faster
    // must not fall below parity speed.
    constexpr double kParityLimit = 1e-10;
    constexpr double kCrossoverAt = 2.0;
    const obs::Json rows = bench::fft_measurement_rows(quick);
    cli::Table table({"N", "eqtime speedup (base)", "eqtime speedup (now)",
                      "dyn speedup (base)", "dyn speedup (now)", "max dev",
                      "status"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const obs::Json& fresh = rows[i];
      const idx n = static_cast<idx>(fresh.at("n").number());
      // The injection hook slows only the FFT path, the way a regression
      // in the planned transforms or the fused gathers would.
      const double et_fft = fresh.at("et_fft_seconds").number() * slowdown;
      const double dyn_fft = fresh.at("dyn_fft_seconds").number() * slowdown;
      const double et_speedup = fresh.at("et_direct_seconds").number() / et_fft;
      const double dyn_speedup =
          fresh.at("dyn_direct_seconds").number() / dyn_fft;
      const double max_dev = std::max(fresh.at("et_max_dev").number(),
                                      fresh.at("dyn_max_dev").number());

      obs::Json row = obs::Json::object().set("n", n);
      std::string status;
      const obs::Json* base = find_baseline_row_n(*baseline_rows, n);
      if (base == nullptr) {
        status = "NO BASELINE ROW";
        ++failures;
        table.add_row({cli::Table::integer(static_cast<long>(n)), "-", "-",
                       "-", "-", "-", status});
      } else {
        const double base_et = base->at("et_speedup").number();
        const double base_dyn = base->at("dyn_speedup").number();
        bool ok = true;
        status = "ok";
        if (max_dev > kParityLimit) {
          status = "PARITY DRIFT";
          ok = false;
        }
        if ((base_et >= kCrossoverAt && et_speedup < 1.0) ||
            (base_dyn >= kCrossoverAt && dyn_speedup < 1.0)) {
          status = "CROSSOVER LOST";
          ok = false;
        }
        if (!ok) ++failures;
        row.set("baseline_et_speedup", base_et)
            .set("measured_et_speedup", et_speedup)
            .set("baseline_dyn_speedup", base_dyn)
            .set("measured_dyn_speedup", dyn_speedup)
            .set("measured_et_fft_seconds", et_fft)
            .set("measured_dyn_fft_seconds", dyn_fft)
            .set("measured_max_dev", max_dev);
        table.add_row({cli::Table::integer(static_cast<long>(n)),
                       cli::Table::num(base_et, 2),
                       cli::Table::num(et_speedup, 2),
                       cli::Table::num(base_dyn, 2),
                       cli::Table::num(dyn_speedup, 2),
                       cli::Table::num(max_dev, 12), status});
      }
      row.set("max_relative_error", 0.0).set("status", status);
      report_rows.push_back(std::move(row));
    }
    table.print();

    const bool pass = failures == 0;
    const obs::Json report =
        obs::Json::object()
            .set("gate_version", 1)
            .set("suite", suite)
            .set("baseline", baseline_path)
            .set("tolerance", tolerance)
            .set("quick", quick)
            .set("injected_slowdown", slowdown)
            .set("rows", report_rows)
            .set("failures", failures)
            .set("status", pass ? "pass" : "fail");
    const std::string report_path = args.get("report", "");
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      out << report.dump(2) << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "bench_regress: failed writing report %s\n",
                     report_path.c_str());
        return 2;
      }
    }
    std::printf("\nbench gate: %s (%d row%s failed the parity/crossover "
                "contracts)\n",
                pass ? "PASS" : "FAIL", failures, failures == 1 ? "" : "s");
    return pass ? 0 : 1;
  }

  if (suite == "checkerboard") {
    // Deterministic replay of the ablation_checkerboard device workload:
    // compare the structured-chain seconds and the dense/cb speedup against
    // the committed baseline, and hold the crossover — any lattice whose
    // baseline says the checkerboard wins must still win.
    const obs::Json rows = bench::checkerboard_device_rows(quick);
    cli::Table table({"N", "cb s (base)", "cb s (now)", "speedup (base)",
                      "speedup (now)", "max rel err", "status"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const obs::Json& fresh = rows[i];
      const idx n = static_cast<idx>(fresh.at("n").number());
      const double dense_seconds = fresh.at("dense_device_seconds").number();
      // The injection hook slows only the structured path, the way a
      // regression in the bond-table replay would.
      const double cb_seconds =
          fresh.at("cb_device_seconds").number() * slowdown;
      const double speedup = dense_seconds / cb_seconds;

      obs::Json row = obs::Json::object().set("n", n);
      std::string status;
      double max_err = 0.0;
      const obs::Json* base = find_baseline_row_n(*baseline_rows, n);
      if (base == nullptr) {
        status = "NO BASELINE ROW";
        ++failures;
        table.add_row({cli::Table::integer(static_cast<long>(n)), "-", "-",
                       "-", "-", "-", status});
      } else {
        const double base_seconds = base->at("cb_device_seconds").number();
        const double base_speedup = base->at("speedup").number();
        const double err_seconds = relative_error(cb_seconds, base_seconds);
        const double err_speedup = relative_error(speedup, base_speedup);
        max_err = std::max(err_seconds, err_speedup);
        bool ok = max_err <= tolerance;
        status = ok ? "ok" : "REGRESSION";
        if (base_speedup >= 1.0 && speedup < 1.0) {
          status = "CROSSOVER LOST";
          ok = false;
        }
        if (!ok) ++failures;
        row.set("baseline_cb_device_seconds", base_seconds)
            .set("measured_cb_device_seconds", cb_seconds)
            .set("measured_dense_device_seconds", dense_seconds)
            .set("baseline_speedup", base_speedup)
            .set("measured_speedup", speedup)
            .set("relative_error_seconds", err_seconds)
            .set("relative_error_speedup", err_speedup);
        table.add_row({cli::Table::integer(static_cast<long>(n)),
                       cli::Table::num(base_seconds, 6),
                       cli::Table::num(cb_seconds, 6),
                       cli::Table::num(base_speedup, 2),
                       cli::Table::num(speedup, 2),
                       cli::Table::num(max_err, 4), status});
      }
      row.set("max_relative_error", max_err).set("status", status);
      report_rows.push_back(std::move(row));
    }
    table.print();

    const bool pass = failures == 0;
    const obs::Json report =
        obs::Json::object()
            .set("gate_version", 1)
            .set("suite", suite)
            .set("baseline", baseline_path)
            .set("tolerance", tolerance)
            .set("quick", quick)
            .set("injected_slowdown", slowdown)
            .set("rows", report_rows)
            .set("failures", failures)
            .set("status", pass ? "pass" : "fail");
    const std::string report_path = args.get("report", "");
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      out << report.dump(2) << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "bench_regress: failed writing report %s\n",
                     report_path.c_str());
        return 2;
      }
    }
    std::printf("\nbench gate: %s (%d row%s outside the %.0f%% tolerance)\n",
                pass ? "PASS" : "FAIL", failures, failures == 1 ? "" : "s",
                100.0 * tolerance);
    return pass ? 0 : 1;
  }

  if (suite == "stability") {
    // Deterministic replay of the stability_policies workload: the modeled
    // seconds compare relatively against the committed baseline, the drift
    // columns against absolute contracts (they shift with codegen), and the
    // fp32 speedup must never fall below 1 where the baseline had it above.
    const obs::Json rows = bench::stability_policy_rows(quick);
    const double fp32_drift_limit = obs::HealthThresholds{}.max_wrap_drift_fp32;
    const double kLogDriftThreshold = 1e-8;  // matches tests/dqmc/test_stability
    cli::Table table({"beta", "stabilizer", "fp32 s (base)", "fp32 s (now)",
                      "speedup (base)", "speedup (now)", "max rel err",
                      "status"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const obs::Json& fresh = rows[i];
      const double beta = fresh.at("beta").number();
      const std::string& stab = fresh.at("stabilizer").str();
      const double fp64_seconds = fresh.at("fp64_device_seconds").number();
      // The injection hook slows only the fp32 path, the way a regression
      // in the narrowed kernels (or a silent fall-back to fp64 buffers)
      // would.
      const double fp32_seconds =
          fresh.at("fp32_device_seconds").number() * slowdown;
      const double speedup = fp64_seconds / fp32_seconds;
      const double fp32_drift = fresh.at("fp32_wrap_drift_max").number();
      const double scale_drift = fresh.at("log_scale_drift").number();

      obs::Json row =
          obs::Json::object().set("beta", beta).set("stabilizer", stab);
      std::string status;
      double max_err = 0.0;
      const obs::Json* base = find_baseline_row_policy(*baseline_rows, beta,
                                                       stab);
      if (base == nullptr) {
        status = "NO BASELINE ROW";
        ++failures;
        table.add_row({cli::Table::num(beta, 0), stab, "-", "-", "-", "-",
                       "-", status});
      } else {
        const double base_fp32 = base->at("fp32_device_seconds").number();
        const double base_speedup = base->at("fp32_speedup").number();
        const double err_fp64 = relative_error(
            fp64_seconds, base->at("fp64_device_seconds").number());
        const double err_fp32 = relative_error(fp32_seconds, base_fp32);
        const double err_speedup = relative_error(speedup, base_speedup);
        max_err = std::max({err_fp64, err_fp32, err_speedup});
        bool ok = max_err <= tolerance;
        status = ok ? "ok" : "REGRESSION";
        if (base_speedup >= 1.0 && speedup < 1.0) {
          status = "SPEEDUP LOST";
          ok = false;
        }
        if (fp32_drift >= fp32_drift_limit) {
          status = "DRIFT OVER THRESHOLD";
          ok = false;
        }
        const bool scale_ok = stab == "svdstack"
                                  ? scale_drift < kLogDriftThreshold
                                  : scale_drift > kLogDriftThreshold;
        if (!scale_ok) {
          status = "SCALE DRIFT CONTRACT";
          ok = false;
        }
        if (!ok) ++failures;
        row.set("baseline_fp32_device_seconds", base_fp32)
            .set("measured_fp32_device_seconds", fp32_seconds)
            .set("measured_fp64_device_seconds", fp64_seconds)
            .set("baseline_fp32_speedup", base_speedup)
            .set("measured_fp32_speedup", speedup)
            .set("measured_fp32_wrap_drift_max", fp32_drift)
            .set("measured_log_scale_drift", scale_drift)
            .set("relative_error_seconds", std::max(err_fp64, err_fp32))
            .set("relative_error_speedup", err_speedup);
        table.add_row({cli::Table::num(beta, 0), stab,
                       cli::Table::num(base_fp32, 6),
                       cli::Table::num(fp32_seconds, 6),
                       cli::Table::num(base_speedup, 2),
                       cli::Table::num(speedup, 2),
                       cli::Table::num(max_err, 4), status});
      }
      row.set("max_relative_error", max_err).set("status", status);
      report_rows.push_back(std::move(row));
    }
    table.print();

    const bool pass = failures == 0;
    const obs::Json report =
        obs::Json::object()
            .set("gate_version", 1)
            .set("suite", suite)
            .set("baseline", baseline_path)
            .set("tolerance", tolerance)
            .set("quick", quick)
            .set("injected_slowdown", slowdown)
            .set("rows", report_rows)
            .set("failures", failures)
            .set("status", pass ? "pass" : "fail");
    const std::string report_path = args.get("report", "");
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      out << report.dump(2) << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "bench_regress: failed writing report %s\n",
                     report_path.c_str());
        return 2;
      }
    }
    std::printf("\nbench gate: %s (%d row%s outside the %.0f%% tolerance)\n",
                pass ? "PASS" : "FAIL", failures, failures == 1 ? "" : "s",
                100.0 * tolerance);
    return pass ? 0 : 1;
  }

  const std::vector<Shape> shapes =
      quick ? std::vector<Shape>{{8, 8}} : std::vector<Shape>{{8, 8}, {16, 8},
                                                              {16, 16}};
  const std::vector<idx> crowd_sizes =
      quick ? std::vector<idx>{1, 8} : std::vector<idx>{1, 4, 8, 16};

  cli::Table table({"N", "W", "batched s (base)", "batched s (now)",
                    "speedup (base)", "speedup (now)", "max rel err",
                    "status"});

  for (const Shape& shape : shapes) {
    for (const idx w : crowd_sizes) {
      core::SimulationConfig cfg = base_config(shape);
      const idx n = cfg.lx * cfg.ly;
      const double walker_sweeps = static_cast<double>(w) *
                                   static_cast<double>(cfg.warmup_sweeps +
                                                       cfg.measurement_sweeps);

      cfg.walker_batch = 0;
      const core::SimulationResults seq =
          core::run_parallel_simulation(cfg, w);
      const double seq_seconds = seq.backend_stats.total_seconds();

      cfg.walker_batch = w;
      const core::SimulationResults crowd =
          core::run_parallel_simulation(cfg, w);
      // The injection hook scales the modeled device bill the way a real
      // slowdown would, so the comparison below sees a genuine drift.
      const double batched_seconds =
          crowd.backend_stats.total_seconds() * slowdown;

      obs::Json row = obs::Json::object().set("n", n).set("walkers", w);
      std::string status;
      double max_err = 0.0;
      if (seq.trajectory_hash != crowd.trajectory_hash) {
        status = "TRAJECTORY MISMATCH";
        ++failures;
      } else {
        const obs::Json* base = find_baseline_row(*baseline_rows, n, w);
        if (base == nullptr) {
          status = "NO BASELINE ROW";
          ++failures;
        } else {
          const double base_seconds =
              base->at("batched_device_seconds").number();
          const double base_speedup = base->at("speedup").number();
          const double speedup =
              (walker_sweeps / batched_seconds) / (walker_sweeps / seq_seconds);
          const double err_seconds =
              relative_error(batched_seconds, base_seconds);
          const double err_speedup = relative_error(speedup, base_speedup);
          max_err = std::max(err_seconds, err_speedup);
          const bool ok = max_err <= tolerance;
          if (!ok) ++failures;
          status = ok ? "ok" : "REGRESSION";
          row.set("baseline_batched_device_seconds", base_seconds)
              .set("measured_batched_device_seconds", batched_seconds)
              .set("baseline_speedup", base_speedup)
              .set("measured_speedup", speedup)
              .set("relative_error_seconds", err_seconds)
              .set("relative_error_speedup", err_speedup);
          table.add_row({cli::Table::integer(static_cast<long>(n)),
                         cli::Table::integer(static_cast<long>(w)),
                         cli::Table::num(base_seconds, 6),
                         cli::Table::num(batched_seconds, 6),
                         cli::Table::num(base_speedup, 2),
                         cli::Table::num(speedup, 2),
                         cli::Table::num(max_err, 4), status});
        }
      }
      if (row.find("measured_batched_device_seconds") == nullptr) {
        table.add_row({cli::Table::integer(static_cast<long>(n)),
                       cli::Table::integer(static_cast<long>(w)), "-", "-",
                       "-", "-", "-", status});
      }
      row.set("max_relative_error", max_err).set("status", status);
      report_rows.push_back(std::move(row));
    }
  }
  table.print();

  const bool pass = failures == 0;
  const obs::Json report =
      obs::Json::object()
          .set("gate_version", 1)
          .set("suite", suite)
          .set("baseline", baseline_path)
          .set("tolerance", tolerance)
          .set("quick", quick)
          .set("injected_slowdown", slowdown)
          .set("rows", report_rows)
          .set("failures", failures)
          .set("status", pass ? "pass" : "fail");
  const std::string report_path = args.get("report", "");
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << report.dump(2) << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "bench_regress: failed writing report %s\n",
                   report_path.c_str());
      return 2;
    }
  }

  std::printf("\nbench gate: %s (%d row%s outside the %.0f%% tolerance)\n",
              pass ? "PASS" : "FAIL", failures, failures == 1 ? "" : "s",
              100.0 * tolerance);
  return pass ? 0 : 1;
}
