// Ablation bench for the design constants the paper fixes without data:
// cluster size k (= wrap batch), delayed-update depth d, and the QR panel
// width — each swept independently around the paper defaults (k = 10,
// d = 32), reporting sweep time and the numerical drift of the Green's
// function against a from-scratch stratification.
#include <vector>

#include "bench_util.h"
#include "dqmc/engine.h"
#include "linalg/norms.h"

namespace {

using namespace dqmc;
using namespace dqmc::bench;
using linalg::idx;

struct Row {
  double sweep_seconds;
  double greens_drift;
  double acceptance;
};

Row run_case(idx l, idx slices, core::EngineConfig cfg) {
  hubbard::Lattice lat(l, l);
  hubbard::ModelParams model;
  model.u = 4.0;
  model.slices = slices;
  model.beta = 0.125 * static_cast<double>(slices);

  core::DqmcEngine engine(lat, model, cfg, 1234);
  engine.initialize();
  engine.sweep();  // warm

  Stopwatch watch;
  core::SweepStats stats = engine.sweep();
  const double t = watch.seconds();

  // Numerical drift: wrapped/updated G vs fresh stratification.
  linalg::Matrix g_engine = engine.greens(hubbard::Spin::Up);
  engine.recompute_greens(0);
  const double drift = linalg::relative_difference(
      g_engine, engine.greens(hubbard::Spin::Up));
  return {t, drift, stats.acceptance()};
}

}  // namespace

int main() {
  banner("Ablation", "design-constant sweeps: cluster size k, delay depth d, "
                     "QR panel width");

  const idx l = full_scale() ? 16 : 10;
  const idx slices = full_scale() ? 160 : 40;

  {
    cli::Table table({"k (cluster/wrap)", "sweep s", "G drift", "acceptance"});
    for (idx k : {1, 2, 5, 10, 20}) {
      if (k > slices) continue;
      core::EngineConfig cfg;
      cfg.cluster_size = k;
      const Row r = run_case(l, slices, cfg);
      table.add_row({cli::Table::integer(static_cast<long>(k)),
                     cli::Table::num(r.sweep_seconds, 3),
                     cli::Table::sci(r.greens_drift),
                     cli::Table::num(r.acceptance, 3)});
    }
    std::printf("\ncluster size k (paper default 10): larger k = fewer QR "
                "steps but longer unstabilized wrap stretches.\n");
    table.print();
  }
  {
    cli::Table table({"d (delay depth)", "sweep s", "G drift", "acceptance"});
    for (idx d : {1, 4, 8, 16, 32, 64}) {
      core::EngineConfig cfg;
      cfg.delay_rank = d;
      const Row r = run_case(l, slices, cfg);
      table.add_row({cli::Table::integer(static_cast<long>(d)),
                     cli::Table::num(r.sweep_seconds, 3),
                     cli::Table::sci(r.greens_drift),
                     cli::Table::num(r.acceptance, 3)});
    }
    std::printf("\ndelayed-update depth d (paper default 32): batches rank-1 "
                "corrections into GEMMs.\n");
    table.print();
  }
  {
    cli::Table table({"QR panel", "sweep s", "G drift", "acceptance"});
    for (idx nb : {8, 16, 32, 64}) {
      core::EngineConfig cfg;
      cfg.qr_block = nb;
      const Row r = run_case(l, slices, cfg);
      table.add_row({cli::Table::integer(static_cast<long>(nb)),
                     cli::Table::num(r.sweep_seconds, 3),
                     cli::Table::sci(r.greens_drift),
                     cli::Table::num(r.acceptance, 3)});
    }
    std::printf("\nblocked-QR panel width (default 32).\n");
    table.print();
  }
  std::printf("\nexpected: time improves up to k ~ 10 and d ~ 32, drift "
              "stays <= ~1e-8 throughout (stability is insensitive to the "
              "performance knobs).\n\n");
  return 0;
}
