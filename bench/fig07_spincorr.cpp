// Figure 7: real-space z-spin correlation C_zz(r) chessboard, small vs
// large lattice (paper: 12x12 vs 32x32), rho=1, U=2, cold system.
//
// Rendered as signed ASCII heatmaps; the long-distance staggered value
// C_zz(L/2, L/2) (the bulk-extrapolation quantity) is tabulated.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.h"
#include "dqmc/simulation.h"

int main() {
  using namespace dqmc;
  using namespace dqmc::bench;
  using linalg::idx;
  banner("Fig. 7", "z-spin correlation C_zz(r) chessboard, small vs large "
                   "lattice");

  std::vector<idx> sizes =
      full_scale() ? std::vector<idx>{12, 32} : std::vector<idx>{8, 12};
  cli::Table summary({"lattice", "measure", "C_zz(1,0)", "C_zz(L/2,L/2)",
                      "S(pi,pi)", "meas. phase"});

  for (idx l : sizes) {
    core::SimulationConfig cfg;
    cfg.lx = cfg.ly = l;
    cfg.model.u = full_scale() ? 2.0 : 4.0;  // stronger U shows order sooner
    cfg.model.beta = full_scale() ? 32.0 : 6.0;
    cfg.model.slices = full_scale() ? 160 : 48;
    cfg.warmup_sweeps = full_scale() ? 1000 : (l >= 12 ? 20 : 40);
    cfg.measurement_sweeps = full_scale() ? 2000 : (l >= 12 ? 40 : 80);
    cfg.seed = 700 + static_cast<std::uint64_t>(l);

    // Both measurement kernels over the SAME trajectory (bitwise-identical
    // chains): the fft summary row must track the direct one to ~1e-12.
    Stopwatch watch;
    cfg.engine.measure = core::MeasureKind::kDirect;
    core::SimulationResults res = core::run_simulation(cfg);
    cfg.engine.measure = core::MeasureKind::kFft;
    core::SimulationResults res_fft = core::run_simulation(cfg);

    // C_zz over (dx, dy), displacement (0,0) centred.
    std::vector<double> grid(static_cast<std::size_t>(l) * l);
    for (idx dy = 0; dy < l; ++dy) {
      for (idx dx = 0; dx < l; ++dx) {
        const idx sx = (dx + l / 2) % l;
        const idx sy = (dy + l / 2) % l;
        grid[static_cast<std::size_t>(dy) * l + dx] =
            res.measurements.spin_corr(sx + l * sy).mean;
      }
    }
    std::printf("\n%lldx%lld lattice (%s), displacement origin at centre:\n",
                static_cast<long long>(l), static_cast<long long>(l),
                format_seconds(watch.seconds()).c_str());
    std::fputs(cli::ascii_heatmap(grid, static_cast<int>(l),
                                  static_cast<int>(l), /*symmetric=*/true)
                   .c_str(),
               stdout);

    const idx dmax = (l / 2) + l * (l / 2);
    char lat_label[16];
    std::snprintf(lat_label, sizeof lat_label, "%lldx%lld",
                  static_cast<long long>(l), static_cast<long long>(l));
    for (const auto* r : {&res, &res_fft}) {
      const auto& m = r->measurements;
      summary.add_row(
          {lat_label,
           core::measure_kind_name(r == &res ? core::MeasureKind::kDirect
                                             : core::MeasureKind::kFft),
           cli::Table::pm(m.spin_corr(1).mean, m.spin_corr(1).error),
           cli::Table::pm(m.spin_corr(dmax).mean, m.spin_corr(dmax).error),
           cli::Table::pm(m.af_structure_factor().mean,
                          m.af_structure_factor().error),
           format_seconds(
               r->profiler.inclusive_seconds(Phase::kMeasurement))});
    }
    double max_dev = 0.0;
    for (idx d = 0; d < l * l; ++d) {
      max_dev = std::max(max_dev,
                         std::abs(res.measurements.spin_corr(d).mean -
                                  res_fft.measurements.spin_corr(d).mean));
    }
    std::printf("max |direct - fft| over all C_zz displacements: %.3e\n",
                max_dev);
  }
  std::printf("\n");
  summary.print();
  std::printf("\nexpected shape (paper Fig. 7): alternating-sign chessboard "
              "(antiferromagnetic order); C_zz(1,0) < 0, C_zz(L/2,L/2) > 0.\n\n");
  return 0;
}
