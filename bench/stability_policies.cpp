// Stabilizer strategies and the precision policy on the gpusim virtual
// clock: per (beta, stabilizer) pair, the modeled device seconds of a short
// interacting run under fp64 vs fp32 wraps, the observed max wrap drift of
// each, and the pinned large-beta log-scale spectrum drift that separates
// graded QR from the SVD stack (docs/STABILITY.md).
//
//   DQMC_MANIFEST_JSON=bench/BENCH_stability.json ./stability_policies
//
// regenerates the committed baseline for the bench_regress stability suite.
// Expected shape: fp32 speedup > 1 everywhere (half the bytes, twice the
// modeled FLOP rate), fp32 drift well above fp64's but under the 0.5 health
// threshold, and log_scale_drift ~ O(1) for graded vs ~ 1e-14 for svdstack.
#include "bench_util.h"

int main() {
  using namespace dqmc;

  bench::banner("stability_policies",
                "stabilizer x precision policy: modeled device time and "
                "drift");

  const obs::Json rows = bench::stability_policy_rows(false);

  cli::Table table({"beta", "stabilizer", "fp64 s", "fp32 s", "fp32 speedup",
                    "fp64 drift", "fp32 drift", "scale drift"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows[i];
    table.add_row({cli::Table::num(row.at("beta").number(), 0),
                   std::string(row.at("stabilizer").str()),
                   cli::Table::num(row.at("fp64_device_seconds").number(), 6),
                   cli::Table::num(row.at("fp32_device_seconds").number(), 6),
                   cli::Table::num(row.at("fp32_speedup").number(), 2),
                   cli::Table::num(row.at("fp64_wrap_drift_max").number(), 3),
                   cli::Table::num(row.at("fp32_wrap_drift_max").number(), 3),
                   cli::Table::num(row.at("log_scale_drift").number(), 3)});
  }
  table.print();
  std::printf("\nexpected shape: fp32 halves the modeled bytes and doubles "
              "the FLOP rate, so its speedup sits above 1 for every row; its "
              "wrap drift is visibly fp32 (~1e-2) yet bounded by the fp64 "
              "structural correction; graded QR's d-scales drift at the "
              "pinned beta = 40 while the SVD stack's stay exact.\n\n");
  bench::maybe_write_bench_manifest("stability_policies", rows);
  return 0;
}
