// Figure 1: performance of DGEMM vs DGEQRF (blocked, unpivoted QR) vs
// DGEQP3 (pivoted QR) as a function of matrix size.
//
// The paper's point — GEMM is fast even for small matrices, blocked QR
// sits below it, and pivoted QR is far slower because the pivot-norm
// updates are level-2 — must reproduce in shape with our own kernels.
#include "bench_util.h"
#include "linalg/blas3.h"
#include "linalg/qr.h"
#include "linalg/qrp.h"
#include "linalg/util.h"

namespace {

using namespace dqmc;
using namespace dqmc::bench;
using linalg::Matrix;

/// Time `body` enough times to fill ~0.3 s, returning seconds per call.
template <class F>
double time_call(F&& body, double min_seconds = 0.3) {
  body();  // warm-up
  Stopwatch watch;
  int reps = 0;
  do {
    body();
    ++reps;
  } while (watch.seconds() < min_seconds);
  return watch.seconds() / reps;
}

}  // namespace

int main() {
  banner("Fig. 1", "DGEMM vs DGEQRF vs DGEQP3 throughput (GFlop/s)");

  std::vector<idx> sizes = {128, 192, 256, 384, 512, 768};
  if (full_scale()) sizes.push_back(1024);

  cli::Table table({"n", "dgemm GF/s", "dgeqrf GF/s", "dgeqp3 GF/s",
                    "dgeqp2 GF/s", "qrp/qr ratio"});
  for (idx n : sizes) {
    linalg::MatrixRng rng(static_cast<std::uint64_t>(n));
    const Matrix a = rng.uniform_matrix(n, n);
    const Matrix b = rng.uniform_matrix(n, n);
    Matrix c = Matrix::zero(n, n);

    const double t_gemm = time_call([&] {
      linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0, a, b, 0.0, c);
    });
    const double t_qr = time_call([&] { (void)linalg::qr_factor(a); });
    const double t_qrp =
        time_call([&] { (void)linalg::qrp_factor(a); },
                  n >= 512 ? 0.1 : 0.3);
    const double t_qp2 =
        time_call([&] { (void)linalg::qrp_factor_unblocked(a); },
                  n >= 512 ? 0.1 : 0.3);

    const double gf_gemm = gemm_flops(n) / t_gemm / 1e9;
    const double gf_qr = qr_flops(n) / t_qr / 1e9;
    const double gf_qrp = qr_flops(n) / t_qrp / 1e9;
    const double gf_qp2 = qr_flops(n) / t_qp2 / 1e9;
    table.add_row({cli::Table::integer(static_cast<long>(n)),
                   cli::Table::num(gf_gemm, 2), cli::Table::num(gf_qr, 2),
                   cli::Table::num(gf_qrp, 2), cli::Table::num(gf_qp2, 2),
                   cli::Table::num(gf_qrp / gf_qr, 3)});
  }
  table.print();
  std::printf("\nexpected shape (paper Fig. 1): gemm > qr >> qrp at every "
              "size; the qrp/qr gap is the pre-pivoting motivation.\n\n");
  return 0;
}
